(* Case 2 of the paper: the tool's regions tell the user that one loop in
   rhs touches only u(1:3,1:5,1:10,1:4) (row-major view), so offloading
   that subarray instead of the whole 10 MB array slashes host-to-GPU
   transfers.  The paper measured this on a 24-core cluster with PGI
   directives (Table IV); here the transfer cost model plays the link.

   Run with: dune exec examples/gpu_offload.exe *)

let corner_rows rows =
  (* the corner loop's rows: u USE regions whose bounds start 1:3, 1:5, 1:10 *)
  List.filter
    (fun (r : Rgnfile.Row.t) ->
      r.Rgnfile.Row.array = "u"
      && r.Rgnfile.Row.mode = "USE"
      && r.Rgnfile.Row.file = "rhs.o"
      && String.length r.Rgnfile.Row.ub >= 6
      && String.sub r.Rgnfile.Row.ub 0 6 = "3|5|10")
    rows

let () =
  List.iter
    (fun cls ->
      let result = Engine.analyze_sources (Corpus.Nas_lu.files ~cls ()) in
      let rows = result.Ipa.Analyze.r_rows in
      let project =
        Dragon.Project.make ~name:"lu" ~dgn:result.Ipa.Analyze.r_dgn ~rows
          ~sources:(Corpus.Nas_lu.files ~cls ()) ()
      in
      match corner_rows rows with
      | [] -> Printf.printf "class %c: corner loop rows not found\n" cls
      | (r0 : Rgnfile.Row.t) :: _ as corner ->
        let lines =
          List.map (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.line) corner
        in
        let first_line = List.fold_left min max_int lines in
        let last_line = List.fold_left max 0 lines in
        (match
           Dragon.Advisor.copyin_for_lines project ~array:"u" ~first_line
             ~last_line
         with
        | None -> Printf.printf "class %c: no copyin advice\n" cls
        | Some advice ->
          Printf.printf "class %c: insert %s before the loop at line %d\n" cls
            advice.Dragon.Advisor.ci_directive first_line;
          Printf.printf
            "         whole-array copyin moves %d bytes, subarray %d bytes\n"
            advice.Dragon.Advisor.ci_bytes_full
            advice.Dragon.Advisor.ci_bytes_region;
          let t_full =
            Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2
              ~bytes:advice.Dragon.Advisor.ci_bytes_full
          in
          let t_sub =
            Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2
              ~bytes:advice.Dragon.Advisor.ci_bytes_region
          in
          Printf.printf
            "         modeled transfer: %.6f s -> %.6f s (speedup %.1fx)\n"
            t_full t_sub
            (Gpu.Offload.speedup ~baseline:t_full ~improved:t_sub));
        ignore r0)
    Corpus.Nas_lu.classes
