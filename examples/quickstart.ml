(* Quickstart: analyze a small program end to end and look at everything the
   toolkit produces — the array-analysis table, the call graph, a procedure
   summary, and the advisor's guidance.

   Run with: dune exec examples/quickstart.exe *)

let source =
  ( "demo.f",
    {|      program demo
      integer a(1:100)
      integer b(1:100, 1:100)
      integer i
      do i = 1, 50
        a(i) = i
      end do
      call smooth(b, 40)
      do i = 2, 50, 2
        a(i) = a(i - 1) + b(i, i)
      end do
      print *, a(1)
      end

      subroutine smooth(grid, n)
      integer grid(1:100, 1:100)
      integer n, i, j
      do i = 1, n
        do j = 1, n
          grid(i, j) = i + j
        end do
      end do
      end
|} )

let () =
  (* 1. front end + WHIRL lowering + region analysis in one call *)
  let result = Engine.analyze_sources [ source ] in

  (* 2. the array-analysis table (what Dragon displays) *)
  let project =
    Dragon.Project.make ~name:"demo" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows ~sources:[ source ] ()
  in
  print_endline "### Array analysis table";
  print_string (Dragon.Table.render project);

  (* 3. the call graph *)
  print_endline "### Call graph";
  print_string (Ipa.Callgraph.to_ascii_tree result.Ipa.Analyze.r_callgraph);

  (* 4. what does `smooth` do to its first argument?  (side-effect summary) *)
  print_endline "### Summary of smooth";
  let m = result.Ipa.Analyze.r_module in
  let pu = Option.get (Whirl.Ir.find_pu m "smooth") in
  Format.printf "%a@." (Ipa.Summary.pp m pu) (Ipa.Analyze.summary_of result "smooth");

  (* 5. guidance *)
  print_endline "### Advisor";
  print_string (Dragon.Advisor.render project)
