(* The paper's Fig 1 scenario: two procedures called in the same loop touch
   disjoint halves of a shared array, so they can run concurrently — and the
   analysis proves it interprocedurally.

   Run with: dune exec examples/autoparallel.exe *)

let () =
  let result = Engine.analyze_sources [ Corpus.Small.fig1_f ] in
  let m = result.Ipa.Analyze.r_module in
  let summaries = result.Ipa.Analyze.r_summaries in

  (* the DEF/USE regions each callee contributes, as the tool displays them *)
  print_endline "### Interprocedural regions (triplet notation)";
  List.iter
    (fun proc ->
      let pu = Option.get (Whirl.Ir.find_pu m proc) in
      Format.printf "@[<v 2>%s:@,%a@]@." proc (Ipa.Summary.pp m pu)
        (Ipa.Analyze.summary_of result proc))
    [ "p1"; "p2"; "add" ];

  (* Bernstein's conditions over the translated summaries at the two call
     sites inside add's j-loop *)
  let info = List.assoc "add" result.Ipa.Analyze.r_infos in
  let caller = info.Ipa.Collect.p_pu in
  (match info.Ipa.Collect.p_sites with
  | [ s1; s2 ] ->
    let conflicts = Ipa.Parallel.sites_independent m summaries ~caller s1 s2 in
    if conflicts = [] then
      print_endline
        "call p1(a, j) and call p2(a, j) are INDEPENDENT: both procedures \
         can concurrently and safely be parallelized (Fig 1's conclusion)"
    else begin
      print_endline "conflicts found:";
      List.iter
        (fun c ->
          Format.printf "  %s: %s region %a vs %s region %a@."
            c.Ipa.Parallel.c_array
            (Regions.Mode.to_string c.Ipa.Parallel.c_mode1)
            Regions.Region.pp c.Ipa.Parallel.c_region1
            (Regions.Mode.to_string c.Ipa.Parallel.c_mode2)
            Regions.Region.pp c.Ipa.Parallel.c_region2)
        conflicts
    end
  | _ -> prerr_endline "unexpected call-site structure");

  (* loop-level verdicts *)
  print_endline "### Loop parallelism";
  List.iter
    (fun proc ->
      let pu = Option.get (Whirl.Ir.find_pu m proc) in
      let loop = ref None in
      Whirl.Wn.preorder
        (fun w ->
          if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP && !loop = None then
            loop := Some w)
        pu.Whirl.Ir.pu_body;
      match !loop with
      | None -> ()
      | Some l ->
        let v = Ipa.Parallel.loop_parallel m summaries pu l in
        Format.printf "outer loop of %-5s parallelizable=%b" proc
          v.Ipa.Parallel.lv_parallel;
        if v.Ipa.Parallel.lv_private_scalars <> [] then
          Format.printf " (privatize: %s)"
            (String.concat ", " v.Ipa.Parallel.lv_private_scalars);
        Format.printf "@.")
    [ "p1"; "p2"; "add" ]
