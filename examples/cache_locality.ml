(* Case 1 of the paper: the table shows xcr's region [1:5] USEd in two
   separate loops of verify; merging them (guided by the tool) improves
   cache behaviour and halves the number of OpenMP parallel regions.

   Here both variants are real programs: the interpreter executes them and
   the cache simulator counts misses, so the claim is measured, not
   asserted.  A small direct-mapped cache makes the capacity effect visible
   at this toy size; the OpenMP model prices the region-launch saving.

   Run with: dune exec examples/cache_locality.exe *)

let unfused =
  ( "unfused.f",
    {|      program unfused
      double precision xcr(64), xcrref(64), xcrdif(64)
      double precision work(1024)
      integer m, i
      do m = 1, 64
        xcr(m) = 1.0d0 + m
        xcrref(m) = 1.0d0
      end do
c     first loop over xcr
      do m = 1, 64
        xcrdif(m) = abs((xcr(m) - xcrref(m)) / xcrref(m))
      end do
c     unrelated traffic between the two loops
      do i = 1, 1024
        work(i) = i
      end do
c     second loop over xcr
      do m = 1, 64
        if (xcr(m) .gt. 0.0d0) then
          xcrdif(m) = xcrdif(m) + xcr(m) + xcr(m) * 0.5d0
        end if
      end do
      print *, xcrdif(1)
      end
|} )

let fused =
  ( "fused.f",
    {|      program fused
      double precision xcr(64), xcrref(64), xcrdif(64)
      double precision work(1024)
      integer m, i
      do m = 1, 64
        xcr(m) = 1.0d0 + m
        xcrref(m) = 1.0d0
      end do
c     merged loop: xcr is touched once per element while it is resident
      do m = 1, 64
        xcrdif(m) = abs((xcr(m) - xcrref(m)) / xcrref(m))
        if (xcr(m) .gt. 0.0d0) then
          xcrdif(m) = xcrdif(m) + xcr(m) + xcr(m) * 0.5d0
        end if
      end do
      do i = 1, 1024
        work(i) = i
      end do
      print *, xcrdif(1)
      end
|} )

let misses_of source =
  let prog = Lang.Frontend.load ~files:[ source ] in
  let m = Whirl.Lower.lower prog in
  let cache = Cache.create (Cache.two_way ~line_bytes:32 ~lines:64) in
  let _ =
    Interp.run
      ~observer:(fun ev ->
        Cache.access cache ~write:ev.Interp.ev_write ~addr:ev.Interp.ev_addr
          ~bytes:ev.Interp.ev_bytes)
      m
  in
  Cache.stats cache

let () =
  (* the tool's own evidence: same region at two lines = fusion candidate *)
  let result = Engine.analyze_sources [ unfused ] in
  let project =
    Dragon.Project.make ~name:"case1" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows ~sources:[ unfused ] ()
  in
  print_endline "### Fusion candidates reported by the advisor";
  List.iter
    (fun f ->
      Printf.printf "  %s region [%s] used at lines %s\n"
        f.Dragon.Advisor.fu_array f.Dragon.Advisor.fu_region
        (String.concat ", " (List.map string_of_int f.Dragon.Advisor.fu_lines)))
    (Dragon.Advisor.fusion_suggestions project);

  print_endline "### Measured cache behaviour (2-way, 64 x 32 B lines = 2 KB)";
  let before = misses_of unfused in
  let after = misses_of fused in
  Format.printf "  before fusion: %a@." Cache.pp_stats before;
  Format.printf "  after fusion:  %a@." Cache.pp_stats after;
  Printf.printf "  misses: %d -> %d\n" (Cache.misses before) (Cache.misses after);

  print_endline "### OpenMP parallel-region overhead (24 threads)";
  let saving =
    Gpu.Omp.fusion_saving Gpu.Omp.default_2012 ~threads:24 ~regions_before:2
      ~regions_after:1
  in
  Printf.printf
    "  one parallel do instead of two saves %.2f us per verify call\n"
    (saving *. 1e6)
