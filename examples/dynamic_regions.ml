(* The paper's future-work item, implemented: "enhancing our tool and
   OpenUH to provide dynamic array region information, in order to better
   understand the actual array access patterns."

   The interpreter records the regular section each array actually touches
   at run time; comparing it with the static table shows where the static
   over-approximation is exact and where control flow makes it conservative.

   Run with: dune exec examples/dynamic_regions.exe *)

let source =
  ( "dyn.f",
    {|      program dyn
      integer a(1:64)
      integer i, n
      n = 40
c     statically 1:n (symbolic); dynamically 1:40
      do i = 1, n
        a(i) = i
      end do
c     conditional touches only even elements up to 20
      do i = 1, 20
        if (mod(i, 2) .eq. 0) then
          a(i) = a(i) + 1
        end if
      end do
      print *, a(1)
      end
|} )

let () =
  let result = Engine.analyze_sources [ source ] in
  let m = result.Ipa.Analyze.r_module in

  print_endline "### Static regions (compile time)";
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      if r.Rgnfile.Row.array = "a" then
        Printf.printf "  a %-4s [%s:%s:%s] at line %d\n" r.Rgnfile.Row.mode
          r.Rgnfile.Row.lb r.Rgnfile.Row.ub r.Rgnfile.Row.stride
          r.Rgnfile.Row.line)
    result.Ipa.Analyze.r_rows;

  print_endline "### Dynamic regions (run time)";
  let outcome = Interp.run m in
  List.iter
    (fun dr ->
      if dr.Interp.dr_array = "a" then
        Format.printf "  a %-4s %a (%d accesses)@."
          (Regions.Mode.to_string dr.Interp.dr_mode)
          Regions.Methods.Section.pp dr.Interp.dr_section dr.Interp.dr_count)
    outcome.Interp.out_regions;

  print_endline
    "(dynamic sections are zero-based internal coordinates; static rows are \
     shown in source coordinates)"
