(* The LNO layer driven by region analysis: loop-level summaries, legality-
   checked fusion and interchange, and OpenMP auto-parallelization with
   reduction recognition.

   Run with: dune exec examples/loop_transforms.exe *)

let source =
  ( "transforms.f",
    {|      program transforms
      double precision a(1:64), b(1:64), c(1:64, 1:64)
      double precision total
      integer i, j
c     two fusable loops over the same range
      do i = 1, 64
        a(i) = i * 1.5d0
      end do
      do i = 1, 64
        b(i) = a(i) + 1.0d0
      end do
c     a column-order nest that can be interchanged
      do i = 1, 64
        do j = 1, 64
          c(i, j) = a(i) * b(j)
        end do
      end do
c     a reduction
      total = 0.0d0
      do i = 1, 64
        total = total + b(i)
      end do
      print *, total
      end
|} )

let () =
  let result = Engine.analyze_sources [ source ] in
  let m = result.Ipa.Analyze.r_module in
  let summaries = result.Ipa.Analyze.r_summaries in
  let pu = Option.get (Whirl.Ir.find_pu m "transforms") in

  print_endline "### Loop-level summaries (paper Sec I: loop-level granularity)";
  print_string (Ipa.Loopsum.render m pu (Ipa.Loopsum.of_pu m summaries pu));

  print_endline "### Fusion (Case 1's transformation, applied automatically)";
  let fused, n = Ipa.Lno.fuse_pu m summaries pu in
  Printf.printf "fused %d adjacent loop pair(s)\n" n;
  let before = Interp.run m in
  let after = Interp.run { m with Whirl.Ir.m_pus = [ fused ] } in
  Printf.printf "output unchanged: %b\n"
    (String.equal before.Interp.out_text after.Interp.out_text);

  print_endline "### Interchange (make j the outer loop where legal)";
  let swapped, ni =
    Ipa.Lno.interchange_pu m summaries pu ~want:(fun ~outer_ivar ~inner_ivar ->
        outer_ivar = "i" && inner_ivar = "j")
  in
  Printf.printf "interchanged %d nest(s)\n" ni;
  let after_swap = Interp.run { m with Whirl.Ir.m_pus = [ swapped ] } in
  Printf.printf "output unchanged: %b\n"
    (String.equal before.Interp.out_text after_swap.Interp.out_text);

  print_endline "### Auto-parallelization (APO continuation)";
  let report = Ipa.Autopar.plan m summaries in
  print_string (Ipa.Autopar.render report);

  print_endline "### Annotated source";
  print_string (Ipa.Autopar.annotate report ~file:"transforms.f" (snd source))
