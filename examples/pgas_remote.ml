(* The paper's future-work PGAS extension, implemented: coarray remote
   accesses get their own access modes (RDEF for x(i)[p] = ..., RUSE for
   ... = x(i)[p]) and appear in the table with their regions, so a CAF user
   can see exactly which slices cross the network — the communication-
   optimization use case Section VI describes.

   Run with: dune exec examples/pgas_remote.exe *)

let () =
  let result = Engine.analyze_sources [ Corpus.Small.caf_f ] in
  let project =
    Dragon.Project.make ~name:"caf" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows
      ~sources:[ Corpus.Small.caf_f ] ()
  in

  print_endline "### Array analysis table (RDEF/RUSE = remote accesses)";
  print_string (Dragon.Table.render project);

  (* what crosses the network: remote rows with their byte volumes *)
  print_endline "### Communication summary";
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      if r.Rgnfile.Row.mode = "RDEF" || r.Rgnfile.Row.mode = "RUSE" then begin
        let bounds =
          List.map2
            (fun lb ub -> (int_of_string_opt lb, int_of_string_opt ub))
            (String.split_on_char '|' r.Rgnfile.Row.lb)
            (String.split_on_char '|' r.Rgnfile.Row.ub)
        in
        let elems =
          List.fold_left
            (fun acc b ->
              match acc, b with
              | Some a, (Some l, Some u) -> Some (a * (u - l + 1))
              | _ -> None)
            (Some 1) bounds
        in
        match elems with
        | Some n ->
          Printf.printf
            "  %s of %s [%s:%s] moves %d elements (%d bytes) per execution\n"
            r.Rgnfile.Row.mode r.Rgnfile.Row.array r.Rgnfile.Row.lb
            r.Rgnfile.Row.ub n (n * r.Rgnfile.Row.element_size)
        | None ->
          Printf.printf "  %s of %s: symbolic extent\n" r.Rgnfile.Row.mode
            r.Rgnfile.Row.array
      end)
    result.Ipa.Analyze.r_rows;

  (* single-image execution still works: remote branches are dead *)
  print_endline "### Single-image run";
  let o = Interp.run result.Ipa.Analyze.r_module in
  print_string o.Interp.out_text
