(* The evaluation harness: one section per table/figure of the paper,
   each regenerating the corresponding rows/series from scratch, followed
   by a Bechamel timing suite over the analysis kernels.

   Paper-vs-measured numbers are recorded in EXPERIMENTS.md; this binary is
   what produces the "measured" column. *)

let header title =
  Printf.printf "\n================ %s ================\n" title

let row_line (r : Rgnfile.Row.t) =
  Printf.sprintf "%-6s %-10s %-6s %4d %3d  %-10s %-10s %-8s %3d %-7s %-12s %9d %10d %9s %4d"
    r.Rgnfile.Row.array r.Rgnfile.Row.file r.Rgnfile.Row.mode
    r.Rgnfile.Row.references r.Rgnfile.Row.dimensions r.Rgnfile.Row.lb
    r.Rgnfile.Row.ub r.Rgnfile.Row.stride r.Rgnfile.Row.element_size
    r.Rgnfile.Row.data_type r.Rgnfile.Row.dim_size r.Rgnfile.Row.tot_size
    r.Rgnfile.Row.size_bytes r.Rgnfile.Row.mem_loc r.Rgnfile.Row.acc_density

let print_rows rows =
  Printf.printf
    "array  file       mode   refs dim  LB         UB         stride   esz type    dim_size      tot_size size_bytes   mem_loc dens\n";
  List.iter (fun r -> print_endline (row_line r)) rows

let rows_matching result pred =
  List.filter pred result.Ipa.Analyze.r_rows

(* Every section analyzes through the engine pipeline; the deprecated
   [analyze_sources] entry point stays test-only. *)
let analyze_module m = (Engine.run (Engine.config ()) m).Engine.e_result

let analyze_sources files =
  analyze_module (Whirl.Lower.lower (Lang.Frontend.load ~files))

(* ------------------------------------------------------------------ *)
(* Fig 1: interprocedural access analysis example *)

let bench_fig1 () =
  header "Fig 1: interprocedural DEF/USE regions and independence";
  let result = analyze_sources [ Corpus.Small.fig1_f ] in
  let m = result.Ipa.Analyze.r_module in
  List.iter
    (fun proc ->
      let pu = Option.get (Whirl.Ir.find_pu m proc) in
      Format.printf "@[<v 2>%s side effects:@,%a@]@." proc
        (Ipa.Summary.pp m pu)
        (Ipa.Analyze.summary_of result proc))
    [ "p1"; "p2" ];
  let info = List.assoc "add" result.Ipa.Analyze.r_infos in
  (match info.Ipa.Collect.p_sites with
  | [ s1; s2 ] ->
    let conflicts =
      Ipa.Parallel.sites_independent m result.Ipa.Analyze.r_summaries
        ~caller:info.Ipa.Collect.p_pu s1 s2
    in
    Printf.printf
      "paper: P1 defines A(1:100,1:100), P2 uses A(101:200,101:200) => parallelizable\n";
    Printf.printf "measured: %d conflicts => %s\n" (List.length conflicts)
      (if conflicts = [] then "parallelizable" else "NOT parallelizable")
  | _ -> print_endline "unexpected call sites")

(* ------------------------------------------------------------------ *)
(* Fig 2: array analysis techniques, efficiency vs accuracy *)

(* each pattern: name, enumerated points, and the convex region as the ARA
   method would build it from the loop nest that generates the pattern *)
let patterns =
  let open Regions in
  let open Linear in
  let aff e = Affine.Affine e in
  let v x = Expr.var x in
  let c n = Expr.of_int n in
  let ivar name = Var.fresh ~name Var.Ivar in
  let dense_convex () =
    let i = ivar "i" in
    Region.of_subscripts ~extents:[ Some 256 ]
      ~loops:[ { Region.lc_var = i; lc_lo = aff (c 0); lc_hi = aff (c 63); lc_step = Some 1 } ]
      [ aff (v i) ]
  in
  let strided_convex () =
    let i = ivar "i" in
    Region.of_subscripts ~extents:[ Some 256 ]
      ~loops:[ { Region.lc_var = i; lc_lo = aff (c 0); lc_hi = aff (c 60); lc_step = Some 4 } ]
      [ aff (v i) ]
  in
  let block_convex () =
    let i = ivar "i" and j = ivar "j" in
    Region.of_subscripts ~extents:[ Some 64; Some 64 ]
      ~loops:
        [
          { Region.lc_var = i; lc_lo = aff (c 16); lc_hi = aff (c 31); lc_step = Some 1 };
          { Region.lc_var = j; lc_lo = aff (c 16); lc_hi = aff (c 31); lc_step = Some 1 };
        ]
      [ aff (v i); aff (v j) ]
  in
  let triangle_convex () =
    (* do i = 0, 31; do j = 0, i: the inner bound is affine in i, which is
       exactly what the convex method captures and the triplet cannot *)
    let i = ivar "i" and j = ivar "j" in
    Region.of_subscripts ~extents:[ Some 64; Some 64 ]
      ~loops:
        [
          { Region.lc_var = i; lc_lo = aff (c 0); lc_hi = aff (c 31); lc_step = Some 1 };
          { Region.lc_var = j; lc_lo = aff (c 0); lc_hi = aff (v i); lc_step = Some 1 };
        ]
      [ aff (v i); aff (v j) ]
  in
  let scattered_convex () =
    (* b(idx(i)): the subscript is not affine -> MESSY, clamped to the
       declared extent *)
    Region.of_subscripts ~extents:[ Some 256 ] ~loops:[] [ Affine.Messy ]
  in
  [
    ("dense-1d", List.init 64 (fun i -> [ i ]), dense_convex ());
    ("strided-1d", List.init 16 (fun i -> [ 4 * i ]), strided_convex ());
    ( "block-2d",
      List.concat_map (fun i -> List.init 16 (fun j -> [ 16 + i; 16 + j ]))
        (List.init 16 Fun.id),
      block_convex () );
    ( "triangle-2d",
      List.concat_map
        (fun i -> List.filter_map (fun j -> if j <= i then Some [ i; j ] else None)
                    (List.init 32 Fun.id))
        (List.init 32 Fun.id),
      triangle_convex () );
    ("scattered", List.init 40 (fun i -> [ (i * 37) mod 256 ]), scattered_convex ());
  ]

let universe ndims =
  (* bounded grid to measure over-approximation against *)
  if ndims = 1 then List.init 256 (fun i -> [ i ])
  else
    List.concat_map (fun i -> List.init 64 (fun j -> [ i; j ]))
      (List.init 64 Fun.id)

let bench_fig2 () =
  header "Fig 2: summarization methods, storage vs accuracy";
  Printf.printf "%-12s %-9s %10s %10s %10s\n" "pattern" "method" "bytes"
    "accuracy" "covered";
  List.iter
    (fun (name, points, convex) ->
      let ndims = List.length (List.hd points) in
      let exact = List.sort_uniq compare points in
      let n_exact = List.length exact in
      let accuracy described =
        if described = 0 then 0.0
        else float_of_int n_exact /. float_of_int described
      in
      (* reference list *)
      let reflist =
        List.fold_left
          (fun acc p -> Regions.Methods.Reflist.add p acc)
          (Regions.Methods.Reflist.empty ndims)
          points
      in
      (* regular section *)
      let section =
        List.fold_left
          (fun acc p -> Regions.Methods.Section.add p acc)
          (Regions.Methods.Section.empty ndims)
          points
      in
      let convex_count =
        List.length
          (List.filter (Regions.Region.contains_point convex) (universe ndims))
      in
      (* classic: whole array (the universe) *)
      let classic =
        Regions.Methods.Classic.add Regions.Mode.USE
          (Regions.Methods.Classic.empty ndims)
      in
      ignore classic;
      let print_method mname bytes described =
        Printf.printf "%-12s %-9s %10d %9.2f%% %10d\n" name mname bytes
          (100.0 *. accuracy described)
          described
      in
      print_method "classic" 1 (List.length (universe ndims));
      print_method "reflist"
        (Regions.Methods.Reflist.storage_bytes reflist)
        (Regions.Methods.Reflist.cardinal reflist);
      print_method "triplet"
        (Regions.Methods.Section.storage_bytes section)
        (Regions.Methods.Section.cardinal section);
      print_method "convex"
        (24 * ndims * Linear.System.size (convex : Regions.Region.t).Regions.Region.sys)
        convex_count)
    patterns;
  print_endline
    "paper (Fig 2): reference-list most accurate & most storage; classic\n\
     cheapest & coarsest; triplet and convex in between (convex tighter on\n\
     non-rectangular shapes like triangle-2d)"

(* ------------------------------------------------------------------ *)
(* Fig 8 / Fig 9: matrix.c — access density and the aarr rows *)

let bench_fig9 () =
  header "Fig 9: the aarr rows of matrix.c (with Fig 8's access density)";
  let result = analyze_sources [ Corpus.Small.matrix_c ] in
  print_rows
    (rows_matching result (fun r ->
         r.Rgnfile.Row.array = "aarr"
         && (r.Rgnfile.Row.mode = "DEF" || r.Rgnfile.Row.mode = "USE")));
  print_endline
    "paper: DEF refs 2 over [0:7:1] and [1:8:1]; USE refs 3 over [0:7:1] x2\n\
     and [2:6:2]; int, esize 4, 20 elems, 80 bytes, density DEF=2 USE=3";
  (* the advice the paper derives *)
  let project =
    Dragon.Project.make ~name:"matrix" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows
      ~sources:[ Corpus.Small.matrix_c ] ()
  in
  List.iter
    (fun c ->
      Printf.printf "advice: %s\n" c.Dragon.Advisor.ci_directive)
    (Dragon.Advisor.copyin_suggestions project);
  List.iter
    (fun r ->
      Printf.printf
        "advice: shrink %s from %d to %d elements (paper: aarr[20] -> aarr[9])\n"
        r.Dragon.Advisor.rs_array
        (List.fold_left ( * ) 1 r.Dragon.Advisor.rs_declared)
        (List.fold_left (fun a (l, u) -> a * (u - l + 1)) 1
           r.Dragon.Advisor.rs_accessed))
    (Dragon.Advisor.resize_suggestions project)

(* ------------------------------------------------------------------ *)
(* Fig 8: the access-density concept, as a chart *)

let bench_fig8 () =
  header "Fig 8: access density (references per allocated byte, as %)";
  let result = analyze_sources (Corpus.Nas_lu.files ()) in
  (* one bar per (array, mode) with nonzero density, highest first *)
  let seen = Hashtbl.create 32 in
  let entries =
    List.filter_map
      (fun (r : Rgnfile.Row.t) ->
        let key = (r.Rgnfile.Row.array, r.Rgnfile.Row.mode) in
        if Hashtbl.mem seen key || r.Rgnfile.Row.acc_density = 0 then None
        else begin
          Hashtbl.add seen key ();
          Some (r.Rgnfile.Row.array, r.Rgnfile.Row.mode, r.Rgnfile.Row.acc_density)
        end)
      result.Ipa.Analyze.r_rows
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  List.iter
    (fun (array, mode, d) ->
      let bar = String.make (min 60 (max 1 (d / 15))) '#' in
      Printf.printf "%-10s %-6s %5d %s
" array mode d bar)
    (List.filteri (fun i _ -> i < 12) entries);
  print_endline
    "paper: density flags hotspot arrays (CLASS 900, XCR 10) regardless of
     their absolute size"

(* ------------------------------------------------------------------ *)
(* Fig 11: the LU call graph *)

let bench_fig11 () =
  header "Fig 11: Dragon call graph for NAS LU";
  let result = analyze_sources (Corpus.Nas_lu.files ()) in
  let cg = result.Ipa.Analyze.r_callgraph in
  print_string (Ipa.Callgraph.to_ascii_tree cg);
  Printf.printf "paper: 24 procedures; measured: %d procedures, %d edges\n"
    (Ipa.Callgraph.node_count cg) (Ipa.Callgraph.edge_count cg)

(* ------------------------------------------------------------------ *)
(* Table II / Fig 12: XCR in verify *)

let bench_tab2 () =
  header "Table II / Fig 12: one-dimensional arrays in verify (NAS LU)";
  let result = analyze_sources (Corpus.Nas_lu.files ()) in
  print_rows
    (rows_matching result (fun r ->
         (r.Rgnfile.Row.array = "xcr" && r.Rgnfile.Row.scope = "verify")
         || r.Rgnfile.Row.array = "class"));
  print_endline
    "paper: XCR USE refs 4, bounds 1:5, 40 bytes, density 10; XCR FORMAL\n\
     density 2; CLASS char DEF refs 9, 1 byte, density 900"

(* ------------------------------------------------------------------ *)
(* Table III / Fig 14: the 4-D array u in rhs *)

let bench_tab3 () =
  header "Table III / Fig 14: multidimensional array u in rhs (NAS LU)";
  let result = analyze_sources (Corpus.Nas_lu.files ()) in
  let u_rows =
    rows_matching result (fun r ->
        r.Rgnfile.Row.array = "u" && r.Rgnfile.Row.file = "rhs.o"
        && r.Rgnfile.Row.mode = "USE")
  in
  Printf.printf "u USE rows in rhs.o: %d; References column: %d\n"
    (List.length u_rows)
    (match u_rows with r :: _ -> r.Rgnfile.Row.references | [] -> 0);
  (* the corner-loop rows the paper screenshots *)
  let corner =
    List.filter
      (fun (r : Rgnfile.Row.t) ->
        String.length r.Rgnfile.Row.ub >= 6
        && String.sub r.Rgnfile.Row.ub 0 6 = "3|5|10")
      u_rows
  in
  print_rows corner;
  print_endline
    "paper: u is 4-D double, dims 64|65|65|5, 1352000 elems, 10816000 bytes,\n\
     USEd 110 times in rhs.o, density 0; one loop accesses regions\n\
     (1:3, 1:5, 1:10) with the last dimension accessed separately (1..4)"

(* ------------------------------------------------------------------ *)
(* Table IV: GPU subarray offload speedup (Case 2) *)

let bench_tab4 () =
  header "Table IV: whole-array vs subarray copyin (cost model)";
  Printf.printf "%-6s %14s %13s %12s %12s %9s\n" "class" "whole bytes"
    "region bytes" "t(whole) s" "t(region) s" "speedup";
  List.iter
    (fun cls ->
      let result = analyze_sources (Corpus.Nas_lu.files ~cls ()) in
      let project =
        Dragon.Project.make ~name:"lu" ~dgn:result.Ipa.Analyze.r_dgn
          ~rows:result.Ipa.Analyze.r_rows
          ~sources:(Corpus.Nas_lu.files ~cls ()) ()
      in
      let corner_lines =
        List.filter_map
          (fun (r : Rgnfile.Row.t) ->
            if
              r.Rgnfile.Row.array = "u" && r.Rgnfile.Row.mode = "USE"
              && String.length r.Rgnfile.Row.ub >= 6
              && String.sub r.Rgnfile.Row.ub 0 6 = "3|5|10"
            then Some r.Rgnfile.Row.line
            else None)
          result.Ipa.Analyze.r_rows
      in
      match corner_lines with
      | [] -> Printf.printf "%c      (corner loop not found)\n" cls
      | lines -> (
        let first_line = List.fold_left min max_int lines in
        let last_line = List.fold_left max 0 lines in
        match
          Dragon.Advisor.copyin_for_lines project ~array:"u" ~first_line
            ~last_line
        with
        | None -> Printf.printf "%c      (no advice)\n" cls
        | Some a ->
          let t_full =
            Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2
              ~bytes:a.Dragon.Advisor.ci_bytes_full
          in
          let t_sub =
            Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2
              ~bytes:a.Dragon.Advisor.ci_bytes_region
          in
          Printf.printf "%c      %14d %13d %12.6f %12.6f %8.1fx\n" cls
            a.Dragon.Advisor.ci_bytes_full a.Dragon.Advisor.ci_bytes_region
            t_full t_sub
            (Gpu.Offload.speedup ~baseline:t_full ~improved:t_sub)))
    Corpus.Nas_lu.classes;
  print_endline
    "paper (Table IV): subarray offload guided by the tool yields a large\n\
     speedup over whole-array copyin on the 24-core cluster; the factor\n\
     grows with the array (class) size -- same shape here"

(* ------------------------------------------------------------------ *)
(* Case 1: measured fusion effect (cache + OpenMP overhead) *)

let case1_unfused =
  ( "unfused.f",
    {|      program unfused
      double precision xcr(64), xcrref(64), xcrdif(64)
      double precision work(1024)
      integer m, i
      do m = 1, 64
        xcr(m) = 1.0d0 + m
        xcrref(m) = 1.0d0
      end do
      do m = 1, 64
        xcrdif(m) = abs((xcr(m) - xcrref(m)) / xcrref(m))
      end do
      do i = 1, 1024
        work(i) = i
      end do
      do m = 1, 64
        if (xcr(m) .gt. 0.0d0) then
          xcrdif(m) = xcrdif(m) + xcr(m) + xcr(m) * 0.5d0
        end if
      end do
      print *, xcrdif(1)
      end
|} )

let case1_fused =
  ( "fused.f",
    {|      program fused
      double precision xcr(64), xcrref(64), xcrdif(64)
      double precision work(1024)
      integer m, i
      do m = 1, 64
        xcr(m) = 1.0d0 + m
        xcrref(m) = 1.0d0
      end do
      do m = 1, 64
        xcrdif(m) = abs((xcr(m) - xcrref(m)) / xcrref(m))
        if (xcr(m) .gt. 0.0d0) then
          xcrdif(m) = xcrdif(m) + xcr(m) + xcr(m) * 0.5d0
        end if
      end do
      do i = 1, 1024
        work(i) = i
      end do
      print *, xcrdif(1)
      end
|} )

let case1_misses source =
  let prog = Lang.Frontend.load ~files:[ source ] in
  let m = Whirl.Lower.lower prog in
  let cache = Cache.create (Cache.two_way ~line_bytes:32 ~lines:64) in
  let _ =
    Interp.run
      ~observer:(fun ev ->
        Cache.access cache ~write:ev.Interp.ev_write ~addr:ev.Interp.ev_addr
          ~bytes:ev.Interp.ev_bytes)
      m
  in
  Cache.stats cache

let case1_hierarchy source =
  let prog = Lang.Frontend.load ~files:[ source ] in
  let m = Whirl.Lower.lower prog in
  let h =
    Cache.Hierarchy.create
      ~l1:(Cache.two_way ~line_bytes:32 ~lines:64)
      ~l2:(Cache.two_way ~line_bytes:64 ~lines:512)
  in
  let _ =
    Interp.run
      ~observer:(fun ev ->
        Cache.Hierarchy.access h ~write:ev.Interp.ev_write
          ~addr:ev.Interp.ev_addr ~bytes:ev.Interp.ev_bytes)
      m
  in
  Cache.Hierarchy.stats h

let bench_case1 () =
  header "Case 1: loop fusion guided by the XCR rows";
  let before = case1_misses case1_unfused in
  let after = case1_misses case1_fused in
  Format.printf "misses before fusion: %d, after fusion: %d (2-way 2 KB cache)@."
    (Cache.misses before) (Cache.misses after);
  let hb = case1_hierarchy case1_unfused and ha = case1_hierarchy case1_fused in
  Format.printf
    "two-level hierarchy AMAT: %.2f -> %.2f cycles/access (L1 2 KB, L2 32 KB)@."
    (Cache.Hierarchy.amat hb) (Cache.Hierarchy.amat ha);
  let saving =
    Gpu.Omp.fusion_saving Gpu.Omp.default_2012 ~threads:24 ~regions_before:2
      ~regions_after:1
  in
  Printf.printf "OpenMP: one parallel do instead of two saves %.2f us per call\n"
    (saving *. 1e6);
  print_endline
    "paper: merging the two XCR loops improves cache utilization and\n\
     removes one parallel-region startup -- same direction here"

(* ------------------------------------------------------------------ *)
(* Applications sweep: "Our tool has been tested on many HPC applications" *)

let bench_apps () =
  header "Applications: analysis summary across the corpus";
  Printf.printf "%-10s %6s %6s %6s %9s  %s\n" "app" "procs" "edges" "rows"
    "par.loops" "top hotspot";
  let apps =
    Corpus.Apps.all
    @ [ ("matrix.c", [ Corpus.Small.matrix_c ]); ("nas-lu", Corpus.Nas_lu.files ()) ]
  in
  List.iter
    (fun (name, files) ->
      let r = analyze_sources files in
      let m = r.Ipa.Analyze.r_module in
      (* count dependence-free DO loops across all procedures *)
      let parallel = ref 0 and total = ref 0 in
      List.iter
        (fun pu ->
          Whirl.Wn.preorder
            (fun w ->
              if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP then begin
                incr total;
                let v =
                  Ipa.Parallel.loop_parallel m r.Ipa.Analyze.r_summaries pu w
                in
                if v.Ipa.Parallel.lv_parallel then incr parallel
              end)
            pu.Whirl.Ir.pu_body)
        m.Whirl.Ir.m_pus;
      let project =
        Dragon.Project.make ~name ~dgn:r.Ipa.Analyze.r_dgn
          ~rows:r.Ipa.Analyze.r_rows ~sources:files ()
      in
      let hotspot =
        match Dragon.Advisor.hotspots ~top:1 project with
        | h :: _ ->
          Printf.sprintf "%s %s (density %d)" h.Dragon.Advisor.hs_array
            h.Dragon.Advisor.hs_mode h.Dragon.Advisor.hs_density
        | [] -> "-"
      in
      Printf.printf "%-10s %6d %6d %6d %5d/%-3d  %s\n" name
        (Ipa.Callgraph.node_count r.Ipa.Analyze.r_callgraph)
        (Ipa.Callgraph.edge_count r.Ipa.Analyze.r_callgraph)
        (List.length r.Ipa.Analyze.r_rows)
        !parallel !total hotspot)
    apps

(* ------------------------------------------------------------------ *)
(* Ablations: what each design ingredient buys *)

let is_int s = int_of_string_opt s <> None

let constant_row (r : Rgnfile.Row.t) =
  List.for_all is_int (String.split_on_char '|' r.Rgnfile.Row.lb)
  && List.for_all is_int (String.split_on_char '|' r.Rgnfile.Row.ub)

let ablation_src =
  ( "abl.f",
    {|      program abl
      integer a(1:128), b(1:128), c(1:128)
      integer i, n, m, k
      n = 64
      m = n / 2
      k = 100
      do i = 1, n
        a(i) = i
      end do
      do i = 1, m
        b(i) = a(i)
      end do
      do i = 2, k, 2
        c(i) = b(i / 2)
      end do
      print *, a(1), b(1), c(2)
      end
|} )

let bench_ablation () =
  header "Ablation 1: WOPT constant propagation vs region precision";
  let count files wopt =
    let m = Whirl.Lower.lower (Lang.Frontend.load ~files) in
    let m = if wopt then fst (Wopt.Const_prop.run m) else m in
    let rows = (analyze_module m).Ipa.Analyze.r_rows in
    let const = List.length (List.filter constant_row rows) in
    (const, List.length rows)
  in
  List.iter
    (fun (name, files) ->
      let c0, t0 = count files false in
      let c1, t1 = count files true in
      Printf.printf
        "%-10s without wopt: %d/%d rows fully constant; with wopt: %d/%d\n"
        name c0 t0 c1 t1)
    [ ("abl.f", [ ablation_src ]); ("stride.f", [ Corpus.Small.stride_f ]) ];
  print_endline
    "shape: constant propagation turns symbolic bounds (n, m, k) into the\n\
     exact triplets the paper's tables show";
  header "Ablation 2: interprocedural summaries vs opaque call effects";
  let r = analyze_sources [ Corpus.Small.fig1_f ] in
  let m = r.Ipa.Analyze.r_module in
  let info = List.assoc "add" r.Ipa.Analyze.r_infos in
  (match info.Ipa.Collect.p_sites with
  | [ s1; s2 ] ->
    let with_regions =
      Ipa.Parallel.sites_independent m r.Ipa.Analyze.r_summaries
        ~caller:info.Ipa.Collect.p_pu s1 s2
    in
    (* opaque: what a tool without region summaries must assume *)
    let opaque =
      List.map
        (fun pu -> (pu.Whirl.Ir.pu_name, Ipa.Summary.opaque m pu))
        m.Whirl.Ir.m_pus
    in
    let with_opaque =
      Ipa.Parallel.sites_independent m opaque ~caller:info.Ipa.Collect.p_pu s1
        s2
    in
    Printf.printf
      "Fig 1 call pair: %d conflicts with region summaries, %d with opaque\n"
      (List.length with_regions) (List.length with_opaque);
    print_endline
      "shape: without the paper's interprocedural regions the two calls\n\
       cannot be proven independent (whole-array conflict reported)"
  | _ -> print_endline "unexpected sites")

(* ------------------------------------------------------------------ *)
(* PGAS / coarray future-work extension *)

let bench_pgas () =
  header "PGAS extension: remote coarray access rows (paper future work)";
  let r = analyze_sources [ Corpus.Small.caf_f ] in
  print_rows
    (rows_matching r (fun row ->
         row.Rgnfile.Row.mode = "RUSE" || row.Rgnfile.Row.mode = "RDEF"));
  print_endline
    "paper (Sec VI): \"we plan to extend our array analysis tool to support\n\
     the analysis and visualization of remote array accesses\" -- RDEF/RUSE\n\
     rows above are that extension"

(* ------------------------------------------------------------------ *)
(* Locality: interchange guided by the region/layout analysis *)

let locality_src =
  ( "loc.f",
    {|      program loc
      double precision g(1:96, 1:96), h(1:96, 1:96)
      integer i, j
      do j = 1, 96
        do i = 1, 96
          g(j, i) = i + j
          h(j, i) = i - j
        end do
      end do
      print *, g(1, 1), h(2, 2)
      end
|} )

let bench_locality () =
  header "Locality: layout-aware interchange (use case 1, measured)";
  let result = analyze_sources [ locality_src ] in
  let m = result.Ipa.Analyze.r_module in
  let pu = List.hd m.Whirl.Ir.m_pus in
  List.iter
    (fun s ->
      Printf.printf
        "suggestion: interchange (%s, %s) nest at line %d (%d stride-heavy refs, legal=%b)\n"
        s.Ipa.Lno.loc_outer s.Ipa.Lno.loc_inner s.Ipa.Lno.loc_line
        s.Ipa.Lno.loc_bad_refs s.Ipa.Lno.loc_legal)
    (Ipa.Lno.locality_suggestions m result.Ipa.Analyze.r_summaries pu);
  let misses mm =
    let cache = Cache.create (Cache.two_way ~line_bytes:64 ~lines:128) in
    let _ =
      Interp.run
        ~observer:(fun ev ->
          Cache.access cache ~write:ev.Interp.ev_write ~addr:ev.Interp.ev_addr
            ~bytes:ev.Interp.ev_bytes)
        mm
    in
    Cache.misses (Cache.stats cache)
  in
  let before = misses m in
  let swapped, n =
    Ipa.Lno.interchange_pu m result.Ipa.Analyze.r_summaries pu
      ~want:(fun ~outer_ivar:_ ~inner_ivar:_ -> true)
  in
  let after = misses { m with Whirl.Ir.m_pus = [ swapped ] } in
  Printf.printf
    "interchanged %d nest(s): misses %d -> %d (%.1fx fewer; 8 KB 2-way cache)\n"
    n before after
    (float_of_int before /. float_of_int (max 1 after));
  print_endline
    "paper use case: \"Identify transformations based on Dragon feedback to\n\
     improve locality and reduce cache misses\""

(* ------------------------------------------------------------------ *)
(* Miss-rate curve: the cache-configuration view of the related work the
   paper builds on ([9]: "miss rate changes across programs and cache
   configurations") *)

let bench_misscurve () =
  header "Miss-rate vs cache size (jacobi2d, 2-way, 32 B lines)";
  let prog = Lang.Frontend.load ~files:[ Corpus.Apps.jacobi2d ] in
  let m = Whirl.Lower.lower prog in
  Printf.printf "%10s %10s %10s
" "capacity" "miss-rate" "";
  List.iter
    (fun lines ->
      let cache = Cache.create (Cache.two_way ~line_bytes:32 ~lines) in
      let _ =
        Interp.run
          ~observer:(fun ev ->
            Cache.access cache ~write:ev.Interp.ev_write ~addr:ev.Interp.ev_addr
              ~bytes:ev.Interp.ev_bytes)
          m
      in
      let rate = Cache.miss_rate (Cache.stats cache) in
      let bar = String.make (max 1 (int_of_float (rate *. 400.0))) '#' in
      Printf.printf "%8d B %9.4f%% %s
"
        (Cache.capacity_bytes (Cache.two_way ~line_bytes:32 ~lines))
        (rate *. 100.0) bar)
    [ 8; 16; 32; 64; 128; 256; 512; 1024 ];
  print_endline
    "shape: the miss rate falls in steps as the working set (two 34x34
     double grids ~ 18 KB) begins to fit"

(* ------------------------------------------------------------------ *)
(* Engine: parallel fan-out and the incremental summary cache *)

let bench_engine () =
  header "Engine: parallel + incremental analysis (NAS LU)";
  let files = Corpus.Nas_lu.files () in
  let lower () = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  (* one throwaway run so frontend/layout code paths are hot *)
  ignore (Engine.run (Engine.config ()) (lower ()));
  let best f =
    let t = ref infinity in
    for _ = 1 to 5 do
      t := min !t (f ()).Engine.e_stats.Engine.Stats.s_total_wall
    done;
    !t
  in
  let cores = Engine_pool.recommended () in
  let serial = best (fun () -> Engine.run (Engine.config ()) (lower ())) in
  let par =
    best (fun () -> Engine.run (Engine.config ~jobs:4 ()) (lower ()))
  in
  Printf.printf
    "no cache: serial %.4fs, 4 domains %.4fs (%.2fx; host has %d core%s)\n"
    serial par (serial /. par) cores
    (if cores = 1 then "" else "s");
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "uhc_bench_cache_%d" (Unix.getpid ()))
  in
  let rm () =
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
  in
  let with_store () =
    Engine.run (Engine.config ~store:(Engine_store.create ~dir ()) ()) (lower ())
  in
  let cold =
    best (fun () ->
        rm ();
        with_store ())
  in
  (* warm: every run hits a cache fully populated by the previous one *)
  let warm = best with_store in
  rm ();
  Printf.printf "disk cache: cold %.4fs, warm %.4fs (%.1fx)\n" cold warm
    (cold /. warm);
  print_endline
    "warm runs skip collection and summary propagation entirely;\n\
     outputs are byte-identical in every mode (checked by test_engine)"

(* ------------------------------------------------------------------ *)
(* Solver: before/after micro-benchmarks and end-to-end feasible time *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bench_solver ~json ~out () =
  header "Solver: packed integer FM, pruning, memoized queries (NAS LU)";
  let files = Corpus.Nas_lu.files () in
  let lower () = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  (* throwaway run so frontend/layout paths are hot *)
  ignore (analyze_module (lower ()));
  (* ---- end-to-end: total feasible-query wall time per solver core *)
  let run_mode core =
    Linear.System.set_solver_core core;
    Linear.System.clear_cache ();
    let s0 = Linear.Solver_stats.snapshot () in
    let t0 = Unix.gettimeofday () in
    let res = analyze_module (lower ()) in
    let wall = Unix.gettimeofday () -. t0 in
    let d = Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) s0 in
    Linear.System.set_solver_core `Learned;
    (res, wall, d)
  in
  let query_ns core (d : Linear.Solver_stats.t) =
    if core = `Reference then d.Linear.Solver_stats.wall_reference_ns
    else d.Linear.Solver_stats.wall_fast_ns
  in
  let best_run core =
    let best = ref None in
    for _ = 1 to 3 do
      let (_, _, d) as r = run_mode core in
      match !best with
      | Some (_, _, d') when query_ns core d' <= query_ns core d -> ()
      | _ -> best := Some r
    done;
    Option.get !best
  in
  let _, wall_ref, d_ref = best_run `Reference in
  let _, wall_fast, d_fast = best_run `Packed in
  let res, wall_learned, d_learned = best_run `Learned in
  let open Linear.Solver_stats in
  let ref_ns = d_ref.wall_reference_ns and fast_ns = d_fast.wall_fast_ns in
  let learned_ns = d_learned.wall_fast_ns in
  let speedup = float_of_int ref_ns /. float_of_int (max 1 fast_ns) in
  Printf.printf
    "end-to-end (feasible queries): reference %d queries %.3f ms, packed %d \
     queries %.3f ms => %.1fx, learned %d queries %.3f ms\n"
    d_ref.queries
    (float_of_int ref_ns /. 1e6)
    d_fast.queries
    (float_of_int fast_ns /. 1e6)
    speedup d_learned.queries
    (float_of_int learned_ns /. 1e6);
  Printf.printf
    "fast-path breakdown: %d cache hit / %d miss, %d box-refuted, %d \
     syntactic, %d FM runs (%d rows built, %d pruned), fallbacks: %d \
     tighten / %d overflow; small path: %d\n"
    d_fast.cache_hits d_fast.cache_misses d_fast.box_refutations
    d_fast.syntactic_hits d_fast.fm_runs d_fast.fm_rows_built
    d_fast.fm_rows_pruned d_fast.tighten_fallbacks d_fast.overflow_fallbacks
    d_fast.small_runs;
  Printf.printf
    "learned core: %d contexts, %d cut hits, %d bound hits, %d proj hits, \
     %d elims, %d reorders, %d L1 hits\n"
    d_learned.ctx_contexts d_learned.ctx_cut_hits d_learned.ctx_bound_hits
    d_learned.ctx_proj_hits d_learned.ctx_elims
    d_learned.ctx_activity_reorders d_learned.implies_l1_hits;
  Printf.printf "analysis wall: reference %.4fs, packed %.4fs, learned %.4fs\n"
    wall_ref wall_fast wall_learned;
  (* ---- micro: harvested region systems through each query, each mode *)
  let systems =
    List.concat_map
      (fun (_, info) ->
        List.map
          (fun (a : Ipa.Collect.access) ->
            a.Ipa.Collect.ac_region.Regions.Region.sys)
          info.Ipa.Collect.p_accesses)
      res.Ipa.Analyze.r_infos
  in
  let rec adjacent = function
    | a :: (b :: _ as tl) -> (a, b) :: adjacent tl
    | _ -> []
  in
  let pairs = adjacent systems in
  let passes = 5 in
  let wall f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to passes do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let timed_mode ~core ~cache f =
    Linear.System.set_solver_core core;
    Linear.System.set_cache_enabled cache;
    Linear.System.clear_cache ();
    let s0 = Linear.Solver_stats.snapshot () in
    let t = wall f in
    let d = Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) s0 in
    Linear.System.set_solver_core `Learned;
    Linear.System.set_cache_enabled true;
    (t, d)
  in
  let feas_run () =
    List.iter (fun s -> ignore (Linear.System.feasible s)) systems
  in
  let impl_run () =
    List.iter
      (fun (a, b) ->
        List.iter
          (fun c -> ignore (Linear.System.implies a c))
          (Linear.System.to_list b))
      pairs
  in
  let proj_run () =
    List.iter
      (fun s ->
        let keep =
          Linear.Var.Set.filter Linear.Var.is_subscript (Linear.System.vars s)
        in
        ignore (Linear.System.project_onto keep s))
      systems
  in
  let feas_reference, _ = timed_mode ~core:`Reference ~cache:false feas_run in
  let feas_packed, d_feas_packed =
    timed_mode ~core:`Packed ~cache:false feas_run
  in
  let feas_memo, _ = timed_mode ~core:`Packed ~cache:true feas_run in
  let impl_reference, _ = timed_mode ~core:`Reference ~cache:false impl_run in
  let impl_fast, _ = timed_mode ~core:`Packed ~cache:true impl_run in
  let impl_learned, d_impl_learned =
    timed_mode ~core:`Learned ~cache:true impl_run
  in
  let proj, _ = timed_mode ~core:`Learned ~cache:true proj_run in
  let small_runs = d_feas_packed.small_runs in
  Printf.printf
    "micro (%d systems x %d passes):\n\
    \  feasible: reference %.4fs, packed %.4fs (%d small-path), packed+memo \
     %.4fs\n\
    \  implies:  reference %.4fs, packed %.4fs, learned %.4fs (%d cut hits, \
     %d bound hits, %d L1 hits)\n\
    \  project:  %.4fs (exact eliminator, context-memoized)\n"
    (List.length systems) passes feas_reference feas_packed small_runs
    feas_memo impl_reference impl_fast impl_learned
    d_impl_learned.ctx_cut_hits d_impl_learned.ctx_bound_hits
    d_impl_learned.implies_l1_hits proj;
  (* ---- machine-readable record *)
  if json || out <> None then begin
    let path = Option.value out ~default:"BENCH_solver.json" in
    let b = Buffer.create 2048 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "{\n";
    bpf "  \"bench\": \"%s\",\n" (json_escape "solver");
    bpf "  \"corpus\": \"nas-lu\",\n";
    bpf "  \"solver\": {\n";
    bpf "    \"end_to_end\": {\n";
    bpf "      \"reference\": {\n";
    bpf "        \"feasible_queries\": %d,\n" d_ref.queries;
    bpf "        \"feasible_wall_ns\": %d,\n" ref_ns;
    bpf "        \"analysis_wall_s\": %.6f\n" wall_ref;
    bpf "      },\n";
    bpf "      \"fast\": {\n";
    bpf "        \"feasible_queries\": %d,\n" d_fast.queries;
    bpf "        \"feasible_wall_ns\": %d,\n" fast_ns;
    bpf "        \"analysis_wall_s\": %.6f,\n" wall_fast;
    bpf "        \"cache_hits\": %d,\n" d_fast.cache_hits;
    bpf "        \"cache_misses\": %d,\n" d_fast.cache_misses;
    bpf "        \"box_refutations\": %d,\n" d_fast.box_refutations;
    bpf "        \"syntactic_hits\": %d,\n" d_fast.syntactic_hits;
    bpf "        \"fm_runs\": %d,\n" d_fast.fm_runs;
    bpf "        \"fm_rows_built\": %d,\n" d_fast.fm_rows_built;
    bpf "        \"fm_rows_pruned\": %d,\n" d_fast.fm_rows_pruned;
    bpf "        \"tighten_fallbacks\": %d,\n" d_fast.tighten_fallbacks;
    bpf "        \"overflow_fallbacks\": %d,\n" d_fast.overflow_fallbacks;
    bpf "        \"small_runs\": %d\n" d_fast.small_runs;
    bpf "      },\n";
    bpf "      \"learned\": {\n";
    bpf "        \"feasible_queries\": %d,\n" d_learned.queries;
    bpf "        \"feasible_wall_ns\": %d,\n" learned_ns;
    bpf "        \"analysis_wall_s\": %.6f,\n" wall_learned;
    bpf "        \"small_runs\": %d,\n" d_learned.small_runs;
    bpf "        \"implies_l1_hits\": %d,\n" d_learned.implies_l1_hits;
    bpf "        \"ctx_contexts\": %d,\n" d_learned.ctx_contexts;
    bpf "        \"ctx_cut_hits\": %d,\n" d_learned.ctx_cut_hits;
    bpf "        \"ctx_bound_hits\": %d,\n" d_learned.ctx_bound_hits;
    bpf "        \"ctx_proj_hits\": %d,\n" d_learned.ctx_proj_hits;
    bpf "        \"ctx_elims\": %d,\n" d_learned.ctx_elims;
    bpf "        \"ctx_activity_reorders\": %d\n"
      d_learned.ctx_activity_reorders;
    bpf "      },\n";
    bpf "      \"feasible_speedup\": %.2f,\n" speedup;
    bpf "      \"feasible_speedup_floor\": %.2f\n" 2.0;
    bpf "    },\n";
    bpf "    \"micro\": {\n";
    bpf "      \"systems\": %d,\n" (List.length systems);
    bpf "      \"passes\": %d,\n" passes;
    bpf "      \"feasible_reference_s\": %.6f,\n" feas_reference;
    bpf "      \"feasible_packed_s\": %.6f,\n" feas_packed;
    bpf "      \"feasible_memo_s\": %.6f,\n" feas_memo;
    bpf "      \"small_runs\": %d,\n" small_runs;
    bpf "      \"implies_reference_s\": %.6f,\n" impl_reference;
    bpf "      \"implies_fast_s\": %.6f,\n" impl_fast;
    bpf "      \"implies_learned_s\": %.6f,\n" impl_learned;
    bpf "      \"project_s\": %.6f\n" proj;
    bpf "    }\n";
    bpf "  }\n";
    bpf "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Bounds: the bounds-checking client on every corpus — verdict counts
   (how many runtime checks the analysis eliminates) and what the extra
   implies queries cost *)

let bench_bounds ~json ~out () =
  header "Bounds: three-valued verdicts and check elimination (all corpora)";
  let corpora =
    [
      ("fig1", [ Corpus.Small.fig1_f ]);
      ("matrix", [ Corpus.Small.matrix_c ]);
      ("stride", [ Corpus.Small.stride_f ]);
      ("lu", Corpus.Nas_lu.files ());
      (* the pinned seed-42 scale workload: hundreds of generated files,
         thousands of PUs, with index-array property directives *)
      ("gen", Corpus.Gen.(generate (standard ())));
    ]
  in
  (* the regression floor for property-refined sparse accesses proven safe
     on the gen corpus; recorded into the JSON next to the measured value
     so check-json can gate on it *)
  let sparse_proven_floor = 3000 in
  let per_corpus =
    List.map
      (fun (name, files) ->
        let m = Whirl.Lower.lower (Lang.Frontend.load ~files) in
        let result = analyze_module m in
        let ctx =
          { Analyses.Analysis.ctx_module = m; Analyses.Analysis.ctx_result = result }
        in
        let s0 = Linear.Solver_stats.snapshot () in
        let t0 = Unix.gettimeofday () in
        let report, _diags = Analyses.Bounds.run ctx in
        let wall = Unix.gettimeofday () -. t0 in
        let d = Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) s0 in
        let count key =
          match List.assoc_opt key report.Analyses.Report.r_summary with
          | Some v -> int_of_string v
          | None -> 0
        in
        (name, count, wall, d))
      corpora
  in
  Printf.printf
    "corpus  accesses safe unsafe maybe eliminated residual sparse proven  implies  implies_ms  wall_ms\n";
  List.iter
    (fun (name, count, wall, (d : Linear.Solver_stats.t)) ->
      Printf.printf "%-7s %8d %4d %6d %5d %10d %8d %6d %6d %8d %11.3f %8.3f\n"
        name (count "accesses") (count "safe") (count "unsafe") (count "maybe")
        (count "checks_eliminated") (count "residual_checks")
        (count "sparse_accesses") (count "sparse_proven")
        d.Linear.Solver_stats.implies_queries
        (float_of_int d.Linear.Solver_stats.implies_wall_ns /. 1e6)
        (wall *. 1e3))
    per_corpus;
  if json || out <> None then begin
    let path = Option.value out ~default:"BENCH_bounds.json" in
    let b = Buffer.create 2048 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "{\n";
    bpf "  \"bench\": \"%s\",\n" (json_escape "bounds");
    bpf "  \"schema_version\": %d,\n" Analyses.Report.schema_version;
    bpf "  \"bounds\": {\n";
    bpf "    \"corpora\": [\n";
    let n = List.length per_corpus in
    List.iteri
      (fun i (name, count, wall, (d : Linear.Solver_stats.t)) ->
        bpf "      {\n";
        bpf "        \"corpus\": \"%s\",\n" (json_escape name);
        bpf "        \"accesses\": %d,\n" (count "accesses");
        bpf "        \"safe\": %d,\n" (count "safe");
        bpf "        \"unsafe\": %d,\n" (count "unsafe");
        bpf "        \"maybe\": %d,\n" (count "maybe");
        bpf "        \"checks_eliminated\": %d,\n" (count "checks_eliminated");
        bpf "        \"residual_checks\": %d,\n" (count "residual_checks");
        bpf "        \"sparse_accesses\": %d,\n" (count "sparse_accesses");
        bpf "        \"sparse_proven\": %d,\n" (count "sparse_proven");
        bpf "        \"inspector_entries\": %d,\n" (count "inspector_entries");
        if name = "gen" then
          bpf "        \"sparse_proven_floor\": %d,\n" sparse_proven_floor;
        bpf "        \"implies_queries\": %d,\n"
          d.Linear.Solver_stats.implies_queries;
        bpf "        \"implies_wall_ns\": %d,\n"
          d.Linear.Solver_stats.implies_wall_ns;
        bpf "        \"analysis_wall_s\": %.6f\n" wall;
        bpf "      }%s\n" (if i = n - 1 then "" else ",")
      )
      per_corpus;
    bpf "    ]\n";
    bpf "  }\n";
    bpf "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Gen: the seeded corpus generator — config, determinism digest, scale,
   and the differential harness (static verdicts vs one interpreted run)
   on the pinned seed-42 standard workload *)

let bench_gen ~json ~out () =
  header "Gen: pinned seed-42 scale corpus + differential harness";
  let cfg = Corpus.Gen.standard () in
  let t0 = Unix.gettimeofday () in
  let files = Corpus.Gen.generate cfg in
  let gen_wall = Unix.gettimeofday () -. t0 in
  let bytes =
    List.fold_left (fun acc (_, src) -> acc + String.length src) 0 files
  in
  let digest =
    Digest.to_hex (Digest.string (String.concat "\x00" (List.map snd files)))
  in
  Printf.printf "%s\n" (Corpus.Gen.describe cfg);
  Printf.printf "files %d  pus %d  bytes %d  digest %s  gen %.1f ms\n"
    (List.length files) (Corpus.Gen.pu_count cfg) bytes digest
    (gen_wall *. 1e3);
  let t0 = Unix.gettimeofday () in
  let m = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  let result = analyze_module m in
  let analysis_wall = Unix.gettimeofday () -. t0 in
  let ctx =
    { Analyses.Analysis.ctx_module = m; Analyses.Analysis.ctx_result = result }
  in
  let bounds, _ = Analyses.Bounds.run ctx in
  let diff, _ = Analyses.Diffcheck.run ctx in
  let count (r : Analyses.Report.t) key =
    match List.assoc_opt key r.Analyses.Report.r_summary with
    | Some v -> v
    | None -> "0"
  in
  let sparse_proven_floor = 3000 in
  Printf.printf
    "analysis %.1f ms  sparse %s/%s proven (floor %d)  inspector entries %s\n"
    (analysis_wall *. 1e3)
    (count bounds "sparse_proven")
    (count bounds "sparse_accesses")
    sparse_proven_floor
    (count bounds "inspector_entries");
  Printf.printf
    "diffcheck: steps %s  oob %s  covered %s  uncovered %s  safe_faults %s  \
     ok %s\n"
    (count diff "steps") (count diff "oob_events") (count diff "covered")
    (count diff "uncovered") (count diff "safe_faults") (count diff "ok");
  if json || out <> None then begin
    let path = Option.value out ~default:"BENCH_gen.json" in
    let b = Buffer.create 2048 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "{\n";
    bpf "  \"bench\": \"%s\",\n" (json_escape "gen");
    bpf "  \"schema_version\": %d,\n" Analyses.Report.schema_version;
    bpf "  \"gen\": {\n";
    bpf "    \"config\": \"%s\",\n" (json_escape (Corpus.Gen.describe cfg));
    bpf "    \"seed\": %d,\n" cfg.Corpus.Gen.g_seed;
    bpf "    \"files\": %d,\n" (List.length files);
    bpf "    \"pus\": %d,\n" (Corpus.Gen.pu_count cfg);
    bpf "    \"bytes\": %d,\n" bytes;
    bpf "    \"digest\": \"%s\",\n" (json_escape digest);
    bpf "    \"gen_wall_s\": %.6f,\n" gen_wall;
    bpf "    \"analysis_wall_s\": %.6f,\n" analysis_wall;
    bpf "    \"sparse_accesses\": %s,\n" (count bounds "sparse_accesses");
    bpf "    \"sparse_proven\": %s,\n" (count bounds "sparse_proven");
    bpf "    \"sparse_proven_floor\": %d,\n" sparse_proven_floor;
    bpf "    \"inspector_entries\": %s,\n" (count bounds "inspector_entries");
    bpf "    \"diffcheck\": {\n";
    bpf "      \"steps\": %s,\n" (count diff "steps");
    bpf "      \"oob_events\": %s,\n" (count diff "oob_events");
    bpf "      \"covered\": %s,\n" (count diff "covered");
    bpf "      \"uncovered\": %s,\n" (count diff "uncovered");
    bpf "      \"safe_faults\": %s,\n" (count diff "safe_faults");
    bpf "      \"ok\": %s\n" (count diff "ok");
    bpf "    }\n";
    bpf "  }\n";
    bpf "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Regions: hash-consed join path (interned systems, n-way unions, the
   implies memo) against the pre-interning reference fold, on the joins
   the NAS LU summary construction actually performs *)

let bench_regions ~json ~out () =
  header "Regions: interned terms, n-way joins, implies memo (NAS LU)";
  let files = Corpus.Nas_lu.files () in
  let lower () = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  let res = analyze_module (lower ()) in
  (* join workload: every (procedure, array, mode) bucket of harvested
     access regions with at least two members — the groups the summary
     layer unions (and collapses past the per-slot cap) *)
  let groups : (string * int * Regions.Mode.t, Regions.Region.t list) Hashtbl.t
      =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (pu, (info : Ipa.Collect.pu_info)) ->
      List.iter
        (fun (a : Ipa.Collect.access) ->
          let k = (pu, a.Ipa.Collect.ac_st, a.Ipa.Collect.ac_mode) in
          match Hashtbl.find_opt groups k with
          | None ->
            order := k :: !order;
            Hashtbl.replace groups k [ a.Ipa.Collect.ac_region ]
          | Some rs ->
            Hashtbl.replace groups k (a.Ipa.Collect.ac_region :: rs))
        info.Ipa.Collect.p_accesses)
    res.Ipa.Analyze.r_infos;
  let buckets =
    List.filter_map
      (fun k ->
        match Hashtbl.find groups k with
        | [] | [ _ ] -> None
        | rs -> Some (List.rev rs))
      (List.rev !order)
  in
  let total_regions = List.fold_left (fun a rs -> a + List.length rs) 0 buckets in
  let passes = 5 in
  let fold_joins () =
    List.map
      (fun rs ->
        List.fold_left Regions.Region.union_approx (List.hd rs) (List.tl rs))
      buckets
  in
  let many_joins () = List.map Regions.Region.union_many buckets in
  let set_mode fast =
    Regions.Region.set_fast_join fast;
    Linear.System.set_implies_memo_enabled fast
  in
  let cget name = Obs.Metrics.Counter.get (Obs.Metrics.counter name) in
  let run_mode ~fast ~core f =
    set_mode fast;
    Linear.System.set_solver_core core;
    Linear.System.clear_cache ();
    let s0 = Linear.Solver_stats.snapshot () in
    let u0 = cget "regions.union.calls" in
    let m0 = cget "regions.union_many.calls" in
    let sv0 = cget "regions.union.implies_saved" in
    let t0 = Unix.gettimeofday () in
    let r = ref [] in
    for _ = 1 to passes do
      r := f ()
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let d = Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) s0 in
    let counters =
      ( cget "regions.union.calls" - u0,
        cget "regions.union_many.calls" - m0,
        cget "regions.union.implies_saved" - sv0 )
    in
    set_mode true;
    Linear.System.set_solver_core `Learned;
    (!r, wall, d, counters)
  in
  let ref_res, ref_wall, d_ref, _ =
    run_mode ~fast:false ~core:`Packed fold_joins
  in
  let fast_res, fast_wall, d_fast, (unions, many, saved) =
    run_mode ~fast:true ~core:`Packed many_joins
  in
  let learned_res, learned_wall, d_learned, _ =
    run_mode ~fast:true ~core:`Learned many_joins
  in
  (* the knobs trade nothing for speed: every path must build the very
     same regions (interning makes that one id comparison per system) *)
  let same =
    List.for_all2
      (fun (a : Regions.Region.t) (b : Regions.Region.t) ->
        Regions.Region.equal_display a b
        && Linear.System.equal a.Regions.Region.sys b.Regions.Region.sys
        && a.Regions.Region.exact = b.Regions.Region.exact)
  in
  let identical = same ref_res fast_res && same fast_res learned_res in
  let open Linear.Solver_stats in
  let speedup =
    float_of_int d_ref.implies_wall_ns
    /. float_of_int (max 1 d_fast.implies_wall_ns)
  in
  let learned_speedup =
    float_of_int d_fast.implies_wall_ns
    /. float_of_int (max 1 d_learned.implies_wall_ns)
  in
  Printf.printf
    "join workload: %d buckets, %d regions, %d passes\n"
    (List.length buckets) total_regions passes;
  Printf.printf
    "reference fold: %d implies queries, %.3f ms implies wall (%.4fs total)\n"
    d_ref.implies_queries
    (float_of_int d_ref.implies_wall_ns /. 1e6)
    ref_wall;
  Printf.printf
    "packed fast:    %d implies queries (%d memo hits, %d saved by interned \
     ids), %.3f ms implies wall (%.4fs total) => %.1fx%s\n"
    d_fast.implies_queries d_fast.implies_memo_hits saved
    (float_of_int d_fast.implies_wall_ns /. 1e6)
    fast_wall speedup
    (if speedup >= 2. then "" else "  (< 2x!)");
  Printf.printf
    "learned core:   %d implies queries (%d memo hits, %d L1 hits; %d cut \
     hits, %d bound hits, %d elims, %d reorders), %.3f ms implies wall \
     (%.4fs total) => %.1fx over packed%s\n"
    d_learned.implies_queries d_learned.implies_memo_hits
    d_learned.implies_l1_hits d_learned.ctx_cut_hits d_learned.ctx_bound_hits
    d_learned.ctx_elims d_learned.ctx_activity_reorders
    (float_of_int d_learned.implies_wall_ns /. 1e6)
    learned_wall learned_speedup
    (if learned_speedup >= 2. then "" else "  (< 2x!)");
  Printf.printf "union_approx calls: %d via %d union_many; results %s\n" unions
    many
    (if identical then "identical" else "DIFFER");
  (* ---- end-to-end: whole NAS LU analysis under each join path/core *)
  let run_analysis ~fast ~core =
    set_mode fast;
    Linear.System.set_solver_core core;
    Linear.System.clear_cache ();
    let s0 = Linear.Solver_stats.snapshot () in
    let t0 = Unix.gettimeofday () in
    ignore (analyze_module (lower ()));
    let wall = Unix.gettimeofday () -. t0 in
    let d = Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) s0 in
    set_mode true;
    Linear.System.set_solver_core `Learned;
    (wall, d)
  in
  let e2e_ref_wall, e2e_ref = run_analysis ~fast:false ~core:`Packed in
  let e2e_fast_wall, e2e_fast = run_analysis ~fast:true ~core:`Packed in
  let e2e_learned_wall, e2e_learned = run_analysis ~fast:true ~core:`Learned in
  Printf.printf
    "end-to-end: reference %d implies queries %.3f ms (%.4fs), packed %d \
     queries %.3f ms (%.4fs), learned %d queries %.3f ms (%.4fs)\n"
    e2e_ref.implies_queries
    (float_of_int e2e_ref.implies_wall_ns /. 1e6)
    e2e_ref_wall e2e_fast.implies_queries
    (float_of_int e2e_fast.implies_wall_ns /. 1e6)
    e2e_fast_wall e2e_learned.implies_queries
    (float_of_int e2e_learned.implies_wall_ns /. 1e6)
    e2e_learned_wall;
  (* ---- interner effectiveness (process lifetime: tables never drop) *)
  let intern name =
    let h = cget (Printf.sprintf "linear.intern.%s.hits" name) in
    let m = cget (Printf.sprintf "linear.intern.%s.misses" name) in
    let rate = float_of_int h /. float_of_int (max 1 (h + m)) in
    (h, m, rate)
  in
  let eh, em, er = intern "expr" in
  let ch, cm, cr = intern "constr" in
  let sh, sm, sr = intern "system" in
  Printf.printf
    "intern hit rates: expr %.1f%% (%d/%d), constr %.1f%% (%d/%d), system \
     %.1f%% (%d/%d)\n"
    (100. *. er) eh (eh + em) (100. *. cr) ch (ch + cm) (100. *. sr) sh
    (sh + sm);
  if json || out <> None then begin
    let path = Option.value out ~default:"BENCH_regions.json" in
    let b = Buffer.create 2048 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "{\n";
    bpf "  \"bench\": \"%s\",\n" (json_escape "regions");
    bpf "  \"corpus\": \"nas-lu\",\n";
    bpf "  \"regions\": {\n";
    bpf "    \"join\": {\n";
    bpf "      \"buckets\": %d,\n" (List.length buckets);
    bpf "      \"regions\": %d,\n" total_regions;
    bpf "      \"passes\": %d,\n" passes;
    bpf "      \"reference\": {\n";
    bpf "        \"implies_queries\": %d,\n" d_ref.implies_queries;
    bpf "        \"implies_wall_ns\": %d,\n" d_ref.implies_wall_ns;
    bpf "        \"wall_s\": %.6f\n" ref_wall;
    bpf "      },\n";
    bpf "      \"fast\": {\n";
    bpf "        \"implies_queries\": %d,\n" d_fast.implies_queries;
    bpf "        \"implies_memo_hits\": %d,\n" d_fast.implies_memo_hits;
    bpf "        \"implies_wall_ns\": %d,\n" d_fast.implies_wall_ns;
    bpf "        \"implies_saved\": %d,\n" saved;
    bpf "        \"union_calls\": %d,\n" unions;
    bpf "        \"union_many_calls\": %d,\n" many;
    bpf "        \"wall_s\": %.6f\n" fast_wall;
    bpf "      },\n";
    bpf "      \"learned\": {\n";
    bpf "        \"implies_queries\": %d,\n" d_learned.implies_queries;
    bpf "        \"implies_memo_hits\": %d,\n" d_learned.implies_memo_hits;
    bpf "        \"implies_l1_hits\": %d,\n" d_learned.implies_l1_hits;
    bpf "        \"implies_wall_ns\": %d,\n" d_learned.implies_wall_ns;
    bpf "        \"ctx_contexts\": %d,\n" d_learned.ctx_contexts;
    bpf "        \"ctx_cut_hits\": %d,\n" d_learned.ctx_cut_hits;
    bpf "        \"ctx_bound_hits\": %d,\n" d_learned.ctx_bound_hits;
    bpf "        \"ctx_proj_hits\": %d,\n" d_learned.ctx_proj_hits;
    bpf "        \"ctx_elims\": %d,\n" d_learned.ctx_elims;
    bpf "        \"ctx_activity_reorders\": %d,\n"
      d_learned.ctx_activity_reorders;
    bpf "        \"wall_s\": %.6f\n" learned_wall;
    bpf "      },\n";
    bpf "      \"implies_speedup\": %.2f,\n" speedup;
    bpf "      \"implies_speedup_floor\": %.2f,\n" 2.0;
    bpf "      \"learned_speedup\": %.2f,\n" learned_speedup;
    bpf "      \"learned_speedup_floor\": %.2f,\n" 2.0;
    bpf "      \"speedup_ok\": %b,\n" (speedup >= 2.);
    bpf "      \"learned_speedup_ok\": %b,\n" (learned_speedup >= 2.);
    bpf "      \"identical\": %b\n" identical;
    bpf "    },\n";
    bpf "    \"end_to_end\": {\n";
    bpf "      \"reference\": {\n";
    bpf "        \"implies_queries\": %d,\n" e2e_ref.implies_queries;
    bpf "        \"implies_wall_ns\": %d,\n" e2e_ref.implies_wall_ns;
    bpf "        \"analysis_wall_s\": %.6f\n" e2e_ref_wall;
    bpf "      },\n";
    bpf "      \"fast\": {\n";
    bpf "        \"implies_queries\": %d,\n" e2e_fast.implies_queries;
    bpf "        \"implies_memo_hits\": %d,\n" e2e_fast.implies_memo_hits;
    bpf "        \"implies_wall_ns\": %d,\n" e2e_fast.implies_wall_ns;
    bpf "        \"analysis_wall_s\": %.6f\n" e2e_fast_wall;
    bpf "      },\n";
    bpf "      \"learned\": {\n";
    bpf "        \"implies_queries\": %d,\n" e2e_learned.implies_queries;
    bpf "        \"implies_memo_hits\": %d,\n" e2e_learned.implies_memo_hits;
    bpf "        \"implies_l1_hits\": %d,\n" e2e_learned.implies_l1_hits;
    bpf "        \"implies_wall_ns\": %d,\n" e2e_learned.implies_wall_ns;
    bpf "        \"analysis_wall_s\": %.6f\n" e2e_learned_wall;
    bpf "      }\n";
    bpf "    },\n";
    bpf "    \"intern\": {\n";
    bpf "      \"expr\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f },\n"
      eh em er;
    bpf
      "      \"constr\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f \
       },\n"
      ch cm cr;
    bpf "      \"system\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f }\n"
      sh sm sr;
    bpf "    }\n";
    bpf "  }\n";
    bpf "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* check-json: validate emitted JSON files (bench records, uhc --trace
   traces, uhc --metrics dumps) without external deps.  The shape is
   detected from the top-level key; traces additionally go through
   [Obs.Trace.parse], which enforces monotone per-track timestamps and
   matched, properly nested begin/end pairs. *)

exception Check_fail of string

let check_fail fmt = Printf.ksprintf (fun msg -> raise (Check_fail msg)) fmt

(* a regression gate: the recorded speedup must stay at or above the floor
   recorded next to it (the floor is part of the schema, so an old record
   without one fails the check rather than silently passing) *)
let check_gate obj ~where name =
  let num field =
    match Option.bind (Obs.Json.member field obj) Obs.Json.to_float with
    | Some v -> v
    | None -> check_fail "%s.%s missing" where field
  in
  let v = num name in
  let floor = num (name ^ "_floor") in
  if v < floor then
    check_fail "%s.%s %.2f regressed below floor %.2f" where name v floor;
  (v, floor)

let check_solver_json path doc =
  match Obs.Json.member "end_to_end" doc, Obs.Json.member "micro" doc with
  | Some (Obs.Json.Obj _ as e2e), Some (Obs.Json.Obj _ as micro) ->
    (match Obs.Json.member "learned" e2e with
    | Some (Obs.Json.Obj _ as l) ->
      List.iter
        (fun field ->
          match Option.bind (Obs.Json.member field l) Obs.Json.to_float with
          | Some _ -> ()
          | None -> check_fail "solver.end_to_end.learned.%s missing" field)
        [
          "feasible_wall_ns"; "small_runs"; "implies_l1_hits"; "ctx_contexts";
          "ctx_cut_hits"; "ctx_bound_hits"; "ctx_proj_hits"; "ctx_elims";
          "ctx_activity_reorders";
        ]
    | _ -> check_fail "solver.end_to_end.learned missing");
    (match Option.bind (Obs.Json.member "implies_learned_s" micro) Obs.Json.to_float with
    | Some _ -> ()
    | None -> check_fail "solver.micro.implies_learned_s missing");
    let speedup, floor =
      check_gate e2e ~where:"solver.end_to_end" "feasible_speedup"
    in
    Printf.printf
      "check-json: %s OK (solver section; feasible_speedup %.2f >= floor \
       %.2f)\n"
      path speedup floor
  | _ -> check_fail "solver.end_to_end / solver.micro missing"

let check_regions_json path doc =
  match
    ( Obs.Json.member "join" doc,
      Obs.Json.member "end_to_end" doc,
      Obs.Json.member "intern" doc )
  with
  | Some (Obs.Json.Obj _ as join), Some (Obs.Json.Obj _), Some (Obs.Json.Obj _)
    ->
    (match Obs.Json.member "identical" join with
    | Some (Obs.Json.Bool true) -> ()
    | _ -> check_fail "regions.join.identical is not true");
    (match Obs.Json.member "learned" join with
    | Some (Obs.Json.Obj _ as l) ->
      List.iter
        (fun field ->
          match Option.bind (Obs.Json.member field l) Obs.Json.to_float with
          | Some _ -> ()
          | None -> check_fail "regions.join.learned.%s missing" field)
        [
          "implies_queries"; "implies_memo_hits"; "implies_l1_hits";
          "implies_wall_ns"; "ctx_contexts"; "ctx_cut_hits"; "ctx_bound_hits";
          "ctx_elims"; "ctx_activity_reorders";
        ]
    | _ -> check_fail "regions.join.learned missing");
    let sp, spf = check_gate join ~where:"regions.join" "implies_speedup" in
    let lsp, lspf = check_gate join ~where:"regions.join" "learned_speedup" in
    Printf.printf
      "check-json: %s OK (regions; implies_speedup %.2f >= floor %.2f, \
       learned_speedup %.2f >= floor %.2f)\n"
      path sp spf lsp lspf
  | _ -> check_fail "regions.join / regions.end_to_end / regions.intern missing"

let check_trace_json path raw =
  match Obs.Trace.parse raw with
  | Error e -> check_fail "%s" e
  | Ok spans ->
    List.iter
      (fun (sp : Obs.Trace.span) ->
        if sp.Obs.Trace.sp_dur_us < 0. then
          check_fail "span %S has negative duration" sp.Obs.Trace.sp_name)
      spans;
    Printf.printf "check-json: %s OK (trace, %d spans)\n" path
      (List.length spans)

let check_metrics_json path entries =
  let kinds = [ "counter"; "gauge"; "histogram" ] in
  let last_name = ref "" in
  let n = ref 0 in
  List.iter
    (fun entry ->
      incr n;
      let str field =
        match Option.bind (Obs.Json.member field entry) Obs.Json.to_string with
        | Some s -> s
        | None -> check_fail "metric without %S string" field
      in
      let num field =
        match Option.bind (Obs.Json.member field entry) Obs.Json.to_float with
        | Some v -> v
        | None -> check_fail "metric %S lacks number %S" (str "name") field
      in
      let name = str "name" in
      if name <= !last_name then
        check_fail "metric names not sorted/unique at %S (after %S)" name
          !last_name;
      last_name := name;
      let kind = str "kind" in
      if not (List.mem kind kinds) then
        check_fail "metric %S has unknown kind %S" name kind;
      if kind = "histogram" then begin
        let count = num "count" in
        ignore (num "sum");
        List.iter (fun p -> ignore (num p)) [ "p50"; "p95"; "p99" ];
        let buckets =
          match
            Option.bind (Obs.Json.member "buckets" entry) Obs.Json.to_list
          with
          | Some l -> l
          | None -> check_fail "histogram %S lacks buckets" name
        in
        let bucket_total =
          List.fold_left
            (fun acc b ->
              let bnum f =
                match Option.bind (Obs.Json.member f b) Obs.Json.to_float with
                | Some v -> v
                | None -> check_fail "histogram %S bucket lacks %S" name f
              in
              let lo = bnum "lo" and hi = bnum "hi" in
              if hi >= 0. && hi < lo then
                check_fail "histogram %S bucket hi < lo" name;
              acc +. bnum "count")
            0. buckets
        in
        if bucket_total <> count then
          check_fail "histogram %S bucket counts sum to %g, count %g" name
            bucket_total count
      end
      else ignore (num "value"))
    entries;
  Printf.printf "check-json: %s OK (metrics, %d instruments)\n" path !n

let check_schema_version ~what ~expected doc =
  match Option.bind (Obs.Json.member "schema_version" doc) Obs.Json.to_int with
  | None -> check_fail "%s file without schema_version" what
  | Some v when v <> expected ->
    check_fail "%s file has unknown schema_version %d (expected %d)" what v
      expected
  | Some _ -> ()

let check_bounds_json path top doc =
  check_schema_version ~what:"bounds" ~expected:Analyses.Report.schema_version
    top;
  match Option.bind (Obs.Json.member "corpora" doc) Obs.Json.to_list with
  | None | Some [] -> check_fail "bounds.corpora missing or empty"
  | Some entries ->
    List.iter
      (fun entry ->
        let corpus =
          match
            Option.bind (Obs.Json.member "corpus" entry) Obs.Json.to_string
          with
          | Some s -> s
          | None -> check_fail "bounds corpus entry without corpus name"
        in
        let num field =
          match Option.bind (Obs.Json.member field entry) Obs.Json.to_int with
          | Some n when n >= 0 -> n
          | Some n -> check_fail "bounds %s: %s is negative (%d)" corpus field n
          | None -> check_fail "bounds %s: missing %s" corpus field
        in
        let accesses = num "accesses" in
        let safe = num "safe" and unsafe = num "unsafe" and maybe = num "maybe" in
        if safe + unsafe + maybe <> accesses then
          check_fail "bounds %s: safe+unsafe+maybe = %d, accesses = %d" corpus
            (safe + unsafe + maybe) accesses;
        if num "checks_eliminated" <> safe then
          check_fail "bounds %s: checks_eliminated disagrees with safe" corpus;
        if num "residual_checks" <> maybe then
          check_fail "bounds %s: residual_checks disagrees with maybe" corpus;
        let sparse = num "sparse_accesses" and proven = num "sparse_proven" in
        if proven > sparse then
          check_fail "bounds %s: sparse_proven %d exceeds sparse_accesses %d"
            corpus proven sparse;
        if num "inspector_entries" <> maybe then
          check_fail
            "bounds %s: inspector_entries disagrees with maybe (every \
             undecidable access gets an inspector entry)"
            corpus;
        (* the gen corpus records a floor next to the measured value *)
        if Obs.Json.member "sparse_proven_floor" entry <> None then
          ignore (check_gate entry ~where:("bounds." ^ corpus) "sparse_proven");
        ignore (num "implies_queries");
        ignore (num "implies_wall_ns"))
      entries;
    Printf.printf "check-json: %s OK (bounds, %d corpora)\n" path
      (List.length entries)

let check_gen_json path top doc =
  check_schema_version ~what:"gen" ~expected:Analyses.Report.schema_version top;
  let num field =
    match Option.bind (Obs.Json.member field doc) Obs.Json.to_int with
    | Some n -> n
    | None -> check_fail "gen.%s missing" field
  in
  if num "files" < 200 then check_fail "gen.files below the 200-file scale floor";
  if num "pus" < 2000 then check_fail "gen.pus below the 2000-PU scale floor";
  (match Option.bind (Obs.Json.member "digest" doc) Obs.Json.to_string with
  | Some d when String.length d = 32 -> ()
  | _ -> check_fail "gen.digest missing or not an md5 hex string");
  let proven, floor = check_gate doc ~where:"gen" "sparse_proven" in
  let diff =
    match Obs.Json.member "diffcheck" doc with
    | Some (Obs.Json.Obj _ as d) -> d
    | _ -> check_fail "gen.diffcheck missing"
  in
  let dnum field =
    match Option.bind (Obs.Json.member field diff) Obs.Json.to_int with
    | Some n -> n
    | None -> check_fail "gen.diffcheck.%s missing" field
  in
  if dnum "safe_faults" <> 0 then
    check_fail "gen.diffcheck.safe_faults: a proven-safe access faulted";
  if dnum "uncovered" <> 0 then
    check_fail "gen.diffcheck.uncovered: a runtime fault has no inspector row";
  if dnum "covered" <> dnum "oob_events" then
    check_fail "gen.diffcheck: covered disagrees with oob_events";
  (match Obs.Json.member "ok" diff with
  | Some (Obs.Json.Bool true) -> ()
  | _ -> check_fail "gen.diffcheck.ok is not true");
  Printf.printf
    "check-json: %s OK (gen; sparse_proven %.0f >= floor %.0f, diffcheck \
     clean over %d oob events)\n"
    path proven floor (dnum "oob_events")

let check_reports_json path top entries =
  check_schema_version ~what:"reports" ~expected:Analyses.Report.schema_version
    top;
  List.iter
    (fun report ->
      let analysis =
        match
          Option.bind (Obs.Json.member "analysis" report) Obs.Json.to_string
        with
        | Some s when s <> "" -> s
        | _ -> check_fail "report without analysis name"
      in
      (match Obs.Json.member "summary" report with
      | Some (Obs.Json.Obj kvs) ->
        List.iter
          (fun (k, v) ->
            match Obs.Json.to_string v with
            | Some _ -> ()
            | None ->
              check_fail "report %s: summary %S is not a string" analysis k)
          kvs
      | _ -> check_fail "report %s: missing summary object" analysis);
      let columns =
        match Option.bind (Obs.Json.member "columns" report) Obs.Json.to_list with
        | Some cs when cs <> [] -> cs
        | _ -> check_fail "report %s: missing columns" analysis
      in
      match Option.bind (Obs.Json.member "rows" report) Obs.Json.to_list with
      | None -> check_fail "report %s: missing rows" analysis
      | Some rows ->
        List.iteri
          (fun i row ->
            match Obs.Json.to_list row with
            | Some cells when List.length cells = List.length columns -> ()
            | Some cells ->
              check_fail "report %s: row %d has %d cells for %d columns"
                analysis i (List.length cells) (List.length columns)
            | None -> check_fail "report %s: row %d is not a list" analysis i)
          rows)
    entries;
  Printf.printf "check-json: %s OK (reports, %d analyses)\n" path
    (List.length entries)

let check_diagnostics_json path entries =
  let severities = [ "error"; "warning" ] in
  let n = ref 0 in
  List.iter
    (fun entry ->
      incr n;
      let str field =
        match Option.bind (Obs.Json.member field entry) Obs.Json.to_string with
        | Some s -> s
        | None -> check_fail "diagnostic %d without %S string" !n field
      in
      let site = str "site" in
      if site = "" then check_fail "diagnostic %d has empty site" !n;
      let severity = str "severity" in
      if not (List.mem severity severities) then
        check_fail "diagnostic %d (site %S) has unknown severity %S" !n site
          severity;
      if str "pu" = "" then
        check_fail "diagnostic %d (site %S) has empty pu" !n site;
      if str "action" = "" then
        check_fail "diagnostic %d (site %S) has empty recovery action" !n site;
      ignore (str "detail"))
    entries;
  Printf.printf "check-json: %s OK (diagnostics, %d entries)\n" path !n

(* One run-ledger record (a line of <cache-dir>/ledger/<run_id>.jsonl,
   written by Pipeline whenever --cache-dir is set). *)
let check_ledger_record idx record =
  let ctx = Printf.sprintf "ledger record %d" idx in
  let mem f = Obs.Json.member f record in
  let str f =
    match Option.bind (mem f) Obs.Json.to_string with
    | Some s -> s
    | None -> check_fail "%s lacks string %S" ctx f
  in
  let num f =
    match Option.bind (mem f) Obs.Json.to_float with
    | Some v -> v
    | None -> check_fail "%s lacks number %S" ctx f
  in
  let int_ f =
    match Option.bind (mem f) Obs.Json.to_int with
    | Some v -> v
    | None -> check_fail "%s lacks integer %S" ctx f
  in
  let list_ f =
    match Option.bind (mem f) Obs.Json.to_list with
    | Some l -> l
    | None -> check_fail "%s lacks list %S" ctx f
  in
  check_schema_version ~what:ctx ~expected:Obs.Ledger.schema_version record;
  if str "run_id" = "" then check_fail "%s has empty run_id" ctx;
  ignore (num "ts");
  if String.length (str "config_digest") <> 32 then
    check_fail "%s config_digest is not a 32-char hex digest" ctx;
  ignore (str "corpus_digest");
  ignore (int_ "exit_code");
  if num "wall_s" < 0. then check_fail "%s has negative wall_s" ctx;
  ignore (int_ "jobs");
  ignore (list_ "analyses");
  ignore (list_ "outputs");
  let analyzed =
    match mem "analyzed" with
    | Some (Obs.Json.Bool b) -> b
    | _ -> check_fail "%s lacks boolean \"analyzed\"" ctx
  in
  if analyzed then begin
    ignore (int_ "pus_analyzed");
    List.iter
      (fun p ->
        match Option.bind (Obs.Json.member "name" p) Obs.Json.to_string with
        | None -> check_fail "%s phase without name" ctx
        | Some name -> (
          match
            Option.bind (Obs.Json.member "wall_s" p) Obs.Json.to_float
          with
          | Some w when w >= 0. -> ()
          | _ -> check_fail "%s phase %S lacks wall_s" ctx name))
      (list_ "phases");
    let cache =
      match mem "cache" with
      | Some (Obs.Json.Obj _ as c) -> c
      | _ -> check_fail "%s lacks cache section" ctx
    in
    List.iter
      (fun f ->
        match Option.bind (Obs.Json.member f cache) Obs.Json.to_int with
        | Some n when n >= 0 -> ()
        | _ -> check_fail "%s cache section lacks counter %S" ctx f)
      [ "collect_hits"; "collect_misses"; "summary_hits"; "summary_misses" ];
    match mem "solver" with
    | Some (Obs.Json.Obj kvs) ->
      List.iter
        (fun (k, v) ->
          if Obs.Json.to_int v = None then
            check_fail "%s solver counter %S is not an integer" ctx k)
        kvs
    | _ -> check_fail "%s lacks solver section" ctx
  end;
  (match mem "verdicts" with
  | Some (Obs.Json.Obj _) -> ()
  | _ -> check_fail "%s lacks verdicts object" ctx);
  if int_ "diagnostics" < 0 then check_fail "%s negative diagnostics" ctx;
  ignore (list_ "metrics");
  List.iter
    (fun p ->
      List.iter
        (fun f -> ignore (Option.bind (Obs.Json.member f p) Obs.Json.to_string))
        [ "name"; "file"; "key1"; "key2" ];
      match Option.bind (Obs.Json.member "name" p) Obs.Json.to_string with
      | Some _ -> ()
      | None -> check_fail "%s pu entry without name" ctx)
    (list_ "pus")

let check_ledger_jsonl path raw =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' raw)
  in
  if lines = [] then check_fail "empty ledger file";
  List.iteri
    (fun i line ->
      match Obs.Json.parse line with
      | Error e -> check_fail "ledger record %d: %s" (i + 1) e
      | Ok record -> check_ledger_record (i + 1) record)
    lines;
  Printf.printf "check-json: %s OK (ledger, %d record(s))\n" path
    (List.length lines)

let check_shard_json path top doc =
  check_schema_version ~what:"shard" ~expected:Analyses.Report.schema_version
    top;
  let identical, _ = check_gate doc ~where:"shard" "identical" in
  if identical < 1. then
    check_fail "shard.identical: some topology produced different output";
  ignore (check_gate doc ~where:"shard" "warm_hit_rate");
  let measured, _ = check_gate doc ~where:"shard" "topologies_measured" in
  (match Obs.Json.member "topologies" doc with
  | Some (Obs.Json.List entries) ->
    if List.length entries <> int_of_float measured then
      check_fail "shard.topologies length disagrees with topologies_measured";
    List.iter
      (fun e ->
        List.iter
          (fun field ->
            match Option.bind (Obs.Json.member field e) Obs.Json.to_float with
            | Some _ -> ()
            | None -> check_fail "shard.topologies[].%s missing" field)
          [ "workers"; "wall_s"; "spawned"; "tasks"; "steals" ])
      entries
  | _ -> check_fail "shard.topologies missing");
  Printf.printf "check-json: %s OK (shard, %d topologies)\n" path
    (int_of_float measured)

let check_json_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  try
    if Filename.check_suffix path ".jsonl" then check_ledger_jsonl path raw
    else
    match Obs.Json.parse raw with
    | Error e -> check_fail "%s" e
    | Ok v -> (
      match v with
      | Obs.Json.Obj _ when Obs.Json.member "run_id" v <> None ->
        (* a ledger record extracted to a plain .json file; the "solver"
           counter section would otherwise shadow the dispatch below *)
        check_ledger_record 1 v;
        Printf.printf "check-json: %s OK (ledger, 1 record(s))\n" path
      | Obs.Json.Obj _ -> (
        match
          ( Obs.Json.member "solver" v,
            Obs.Json.member "regions" v,
            Obs.Json.member "traceEvents" v,
            Obs.Json.member "metrics" v,
            Obs.Json.member "obs" v,
            Obs.Json.member "bounds" v,
            Obs.Json.member "reports" v,
            Obs.Json.member "diagnostics" v )
        with
        | Some (Obs.Json.Obj _ as doc), _, _, _, _, _, _, _ ->
          check_solver_json path doc
        | _, Some (Obs.Json.Obj _ as doc), _, _, _, _, _, _ ->
          check_regions_json path doc
        | _, _, Some (Obs.Json.List _), _, _, _, _, _ -> check_trace_json path raw
        | _, _, _, Some (Obs.Json.List entries), _, _, _, _ ->
          check_metrics_json path entries
        | _, _, _, _, Some (Obs.Json.Obj _), _, _, _ ->
          Printf.printf "check-json: %s OK (obs section present)\n" path
        | _, _, _, _, _, Some (Obs.Json.Obj _ as doc), _, _ ->
          check_bounds_json path v doc
        | _, _, _, _, _, _, Some (Obs.Json.List entries), _ ->
          check_reports_json path v entries
        | _, _, _, _, _, _, _, Some (Obs.Json.List entries) ->
          check_schema_version ~what:"diagnostics"
            ~expected:Fault.Diag.schema_version v;
          check_diagnostics_json path entries
        | _ -> (
          match (Obs.Json.member "gen" v, Obs.Json.member "shard" v) with
          | Some (Obs.Json.Obj _ as doc), _ -> check_gen_json path v doc
          | _, Some (Obs.Json.Obj _ as doc) -> check_shard_json path v doc
          | _ ->
            check_fail
              "no recognized top-level section \
               (solver/regions/traceEvents/metrics/obs/bounds/gen/shard/\
               reports/diagnostics)"))
      | _ -> check_fail "top-level value is not an object")
  with Check_fail msg ->
    Printf.eprintf "check-json: %s in %s\n" msg path;
    exit 1

(* ------------------------------------------------------------------ *)
(* obs: tracing/metrics overhead on the NAS LU pipeline *)

let bench_obs ~json ~out () =
  header "Obs: tracing and metrics overhead (NAS LU)";
  let files = Corpus.Nas_lu.files () in
  let lower () = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  ignore (analyze_module (lower ()));
  let best f =
    let t = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      t := min !t (Unix.gettimeofday () -. t0)
    done;
    !t
  in
  let analysis () = analyze_module (lower ()) in
  let disabled = best analysis in
  Obs.Span.set_enabled true;
  Obs.Metrics.set_enabled true;
  Obs.Trace.clear ();
  let enabled = best analysis in
  Obs.Span.set_enabled false;
  Obs.Metrics.set_enabled false;
  let span_count =
    match Obs.Trace.parse (Obs.Trace.export ()) with
    | Ok spans -> List.length spans
    | Error _ -> 0
  in
  Obs.Trace.clear ();
  (* micro: the cost of one disabled Span.with_ — the only thing the
     instrumentation adds to hot paths when observability is off *)
  let iters = 10_000_000 in
  let sink = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    Obs.Span.with_ ~name:"noop" (fun () -> sink := !sink + i)
  done;
  let per_call_ns = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9 in
  let overhead = (enabled -. disabled) /. disabled in
  Printf.printf "analysis wall: disabled %.4fs, enabled %.4fs (%+.2f%%)\n"
    disabled enabled (100. *. overhead);
  Printf.printf "trace recorded %d spans per run\n" span_count;
  Printf.printf "disabled Span.with_: %.2f ns/call (%d calls)\n" per_call_ns
    iters;
  (* the disabled-path bound the tentpole requires: even if every recorded
     span were on the hot path, the disabled checks cost a vanishing
     fraction of the analysis *)
  let disabled_cost =
    float_of_int span_count *. per_call_ns /. 1e9 /. disabled
  in
  Printf.printf "disabled-path cost bound: %.4f%% of analysis wall (< 2%% %s)\n"
    (100. *. disabled_cost)
    (if disabled_cost < 0.02 then "OK" else "VIOLATED");
  if json || out <> None then begin
    let path = Option.value out ~default:"BENCH_obs.json" in
    let b = Buffer.create 512 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "{\n";
    bpf "  \"bench\": \"obs\",\n";
    bpf "  \"corpus\": \"nas-lu\",\n";
    bpf "  \"obs\": {\n";
    bpf "    \"disabled_wall_s\": %.6f,\n" disabled;
    bpf "    \"enabled_wall_s\": %.6f,\n" enabled;
    bpf "    \"enabled_overhead\": %.6f,\n" overhead;
    bpf "    \"spans_per_run\": %d,\n" span_count;
    bpf "    \"disabled_span_ns\": %.3f,\n" per_call_ns;
    bpf "    \"disabled_cost_fraction\": %.8f,\n" disabled_cost;
    bpf "    \"disabled_cost_ok\": %b\n" (disabled_cost < 0.02);
    bpf "  }\n";
    bpf "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Shard: multi-process summarize on a reduced gen corpus — byte-identity
   across worker counts, and zero recomputation on a warm shared tier *)

let bench_shard ~json ~out () =
  header "Shard: multi-process summarize (reduced gen corpus)";
  let cfg =
    { (Corpus.Gen.standard ()) with Corpus.Gen.g_files = 16; g_pus_per_file = 5 }
  in
  let files = Corpus.Gen.generate cfg in
  let lower () = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  (* the exact .rgn/.dgn/.cfg contents uhc would write, as one string *)
  let render (r : Ipa.Analyze.result) =
    let blocks =
      List.concat_map
        (fun (proc, c) ->
          Array.to_list
            (Array.map
               (fun (b : Cfg.block) ->
                 {
                   Rgnfile.Files.cb_proc = proc;
                   cb_id = b.Cfg.id;
                   cb_label = b.Cfg.label;
                   cb_succs = b.Cfg.succs;
                 })
               c.Cfg.blocks))
        r.Ipa.Analyze.r_cfgs
    in
    String.concat "\x00"
      [
        Rgnfile.Files.write_rgn r.Ipa.Analyze.r_rows;
        Rgnfile.Files.write_dgn r.Ipa.Analyze.r_dgn;
        Rgnfile.Files.write_cfg blocks;
      ]
  in
  Printf.printf "corpus: %d files, %d PUs (seed %d)\n" (List.length files)
    (Corpus.Gen.pu_count cfg) cfg.Corpus.Gen.g_seed;
  let run_at workers =
    let t0 = Unix.gettimeofday () in
    let r = Engine.run (Engine.config ~workers ()) (lower ()) in
    (Unix.gettimeofday () -. t0, r)
  in
  let baseline = render (snd (run_at 0)).Engine.e_result in
  let rows =
    List.map
      (fun w ->
        let wall, r = run_at w in
        let same = render r.Engine.e_result = baseline in
        let spawned, tasks, steals, busy =
          match r.Engine.e_stats.Engine.Stats.s_shard with
          | None -> (0, 0, 0, [])
          | Some s ->
            ( s.Engine_shard.st_spawned,
              s.Engine_shard.st_tasks,
              s.Engine_shard.st_steals,
              List.map
                (fun (ws : Engine_shard.worker_stat) ->
                  ws.Engine_shard.ws_busy_ns)
                s.Engine_shard.st_workers )
        in
        Printf.printf
          "workers %d: %.4fs  %d spawned, %d tasks (%d stolen)  %s\n" w wall
          spawned tasks steals
          (if same then "byte-identical" else "OUTPUT DIFFERS");
        (w, wall, same, spawned, tasks, steals, busy))
      [ 0; 1; 2; 4; 8 ]
  in
  let identical =
    if List.for_all (fun (_, _, s, _, _, _, _) -> s) rows then 1 else 0
  in
  (* warm shared tier: a cold sharded run publishes every summary into the
     shared --cache-dir tier as it lands, so a second sharded run over
     unchanged content recomputes nothing (and spawns no worker) *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "uhc_bench_shard_%d" (Unix.getpid ()))
  in
  let rm () =
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
  in
  rm ();
  let run_store () =
    Engine.run
      (Engine.config ~workers:4 ~store:(Engine_store.create ~dir ()) ())
      (lower ())
  in
  let cold = run_store () in
  let warm = run_store () in
  rm ();
  let hits (r : Engine.result) = r.Engine.e_stats.Engine.Stats.s_summary_hits in
  let pus (r : Engine.result) = r.Engine.e_stats.Engine.Stats.s_pus in
  let warm_hit_rate =
    float_of_int (hits warm) /. float_of_int (max 1 (pus warm))
  in
  let warm_identical = render warm.Engine.e_result = baseline in
  Printf.printf
    "shared tier, 4 workers: cold %d/%d summary hits, warm %d/%d (hit rate \
     %.2f)%s\n"
    (hits cold) (pus cold) (hits warm) (pus warm) warm_hit_rate
    (if warm_identical then "" else "  OUTPUT DIFFERS");
  if json || out <> None then begin
    let path = Option.value out ~default:"BENCH_shard.json" in
    let b = Buffer.create 2048 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    bpf "{\n";
    bpf "  \"bench\": \"shard\",\n";
    bpf "  \"schema_version\": %d,\n" Analyses.Report.schema_version;
    bpf "  \"shard\": {\n";
    bpf "    \"files\": %d,\n" (List.length files);
    bpf "    \"pus\": %d,\n" (Corpus.Gen.pu_count cfg);
    bpf "    \"topologies\": [\n";
    List.iteri
      (fun i (w, wall, same, spawned, tasks, steals, busy) ->
        bpf
          "      {\"workers\": %d, \"wall_s\": %.6f, \"identical\": %b, \
           \"spawned\": %d, \"tasks\": %d, \"steals\": %d, \"busy_ns\": [%s]}%s\n"
          w wall same spawned tasks steals
          (String.concat ", " (List.map string_of_int busy))
          (if i < List.length rows - 1 then "," else ""))
      rows;
    bpf "    ],\n";
    bpf "    \"topologies_measured\": %d,\n" (List.length rows);
    bpf "    \"topologies_measured_floor\": %d,\n" (List.length rows);
    bpf "    \"identical\": %d,\n"
      (if identical = 1 && warm_identical then 1 else 0);
    bpf "    \"identical_floor\": 1,\n";
    bpf "    \"warm_hit_rate\": %.4f,\n" warm_hit_rate;
    bpf "    \"warm_hit_rate_floor\": 1.0\n";
    bpf "  }\n";
    bpf "}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Bechamel timings of the analysis kernels *)

let timing_suite () =
  header "Timing (Bechamel): analysis kernels";
  let open Bechamel in
  let fm_system () =
    let open Linear in
    let i = Var.fresh ~name:"i" Var.Ivar and j = Var.fresh ~name:"j" Var.Ivar in
    let d0 = Var.subscript 0 and d1 = Var.subscript 1 in
    System.of_list
      [
        Constr.eq (Expr.var d0) (Expr.add (Expr.var i) (Expr.var j));
        Constr.eq (Expr.var d1) (Expr.sub (Expr.var i) (Expr.var j));
        Constr.ge (Expr.var i) (Expr.of_int 1);
        Constr.le (Expr.var i) (Expr.of_int 100);
        Constr.ge (Expr.var j) (Expr.of_int 1);
        Constr.le (Expr.var j) (Expr.of_int 100);
      ]
  in
  let test_fm =
    Test.make ~name:"fourier-motzkin projection"
      (Staged.stage (fun () ->
           let s = fm_system () in
           let vars =
             Linear.Var.Set.elements
               (Linear.Var.Set.filter Linear.Var.is_ivar (Linear.System.vars s))
           in
           ignore (Linear.System.eliminate_all vars s)))
  in
  let test_region =
    Test.make ~name:"region of strided reference"
      (Staged.stage (fun () ->
           let i = Linear.Var.fresh ~name:"i" Linear.Var.Ivar in
           let loop =
             {
               Regions.Region.lc_var = i;
               lc_lo = Regions.Affine.Affine (Linear.Expr.of_int 2);
               lc_hi = Regions.Affine.Affine (Linear.Expr.of_int 199);
               lc_step = Some 3;
             }
           in
           ignore
             (Regions.Region.of_subscripts ~extents:[ Some 256 ] ~loops:[ loop ]
                [ Regions.Affine.Affine (Linear.Expr.var i) ])))
  in
  let test_matrix =
    Test.make ~name:"matrix.c full pipeline"
      (Staged.stage (fun () ->
           ignore (analyze_sources [ Corpus.Small.matrix_c ])))
  in
  let test_lu =
    Test.make ~name:"NAS LU class A full pipeline"
      (Staged.stage (fun () ->
           ignore (analyze_sources (Corpus.Nas_lu.files ()))))
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        instance results
    in
    ols
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-32s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        results)
    [ test_fm; test_region; test_matrix; test_lu ]

(* ------------------------------------------------------------------ *)

let () =
  Engine_shard.worker_check_argv ();
  let rec parse (json, out, sections) = function
    | [] -> (json, out, List.rev sections)
    | "--json" :: rest -> parse (true, out, sections) rest
    | "--out" :: path :: rest -> parse (json, Some path, sections) rest
    | s :: rest -> parse (json, out, s :: sections) rest
  in
  let json, out, sections =
    parse (false, None, []) (List.tl (Array.to_list Sys.argv))
  in
  match sections with
  | "check-json" :: files -> List.iter check_json_file files
  | _ ->
    let only name = List.mem name sections in
    let all = sections = [] in
    if all || only "fig1" then bench_fig1 ();
    if all || only "fig2" then bench_fig2 ();
    if all || only "fig8" then bench_fig8 ();
    if all || only "fig9" then bench_fig9 ();
    if all || only "fig11" then bench_fig11 ();
    if all || only "tab2" || only "fig12" then bench_tab2 ();
    if all || only "tab3" || only "fig14" then bench_tab3 ();
    if all || only "tab4" then bench_tab4 ();
    if all || only "case1" then bench_case1 ();
    if all || only "apps" then bench_apps ();
    if all || only "ablation" then bench_ablation ();
    if all || only "pgas" then bench_pgas ();
    if all || only "misscurve" then bench_misscurve ();
    if all || only "locality" then bench_locality ();
    if all || only "engine" then bench_engine ();
    if all || only "solver" then bench_solver ~json ~out ();
    if all || only "bounds" then bench_bounds ~json ~out ();
    if all || only "gen" then bench_gen ~json ~out ();
    if all || only "regions" then bench_regions ~json ~out ();
    if all || only "obs" then bench_obs ~json ~out ();
    if all || only "shard" then bench_shard ~json ~out ();
    if all || only "timing" then timing_suite ()
