open Whirl

let lower_src files = Lower.lower (Lang.Frontend.load ~files)

let fortran_2d =
  ( "t.f",
    {|      program t
      double precision u(5, 65, 65, 64)
      common /cv/ u
      integer i, j, k, m
      do k = 1, 3
        do j = 1, 5
          do i = 1, 10
            do m = 1, 4
              u(m, i, j, k) = 1.0d0
            end do
          end do
        end do
      end do
      end
|} )

let c_2d =
  ( "t.c",
    {|double g[10][20];
void f(int n) {
  int i, j;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 20; j++) {
      g[i][j] = n;
    }
  }
}
int main() { f(3); return 0; }
|} )

let find_array_node pu =
  let found = ref None in
  Wn.preorder
    (fun w -> if w.Wn.operator = Wn.OPR_ARRAY && !found = None then found := Some w)
    pu.Ir.pu_body;
  Option.get !found

let test_array_convention_fortran () =
  let m = lower_src [ fortran_2d ] in
  let pu = Option.get (Ir.find_pu m "t") in
  let arr = find_array_node pu in
  (* u(m,i,j,k) with u(5,65,65,64): row-major means kid order reverses *)
  Alcotest.(check int) "num_dim from kid_count >> 1" 4 (Wn.num_dim arr);
  Alcotest.(check int) "kid_count = 1 + 2n" 9 (Wn.kid_count arr);
  Alcotest.(check int) "elem size 8" 8 arr.Wn.elem_size;
  let dims = List.init 4 (fun k -> (Wn.array_dim arr k).Wn.const_val) in
  Alcotest.(check (list int)) "row-major extents" [ 64; 65; 65; 5 ] dims;
  (* index 0 corresponds to the last Fortran subscript k, zero-based *)
  let idx0 = Wn.array_index arr 0 in
  Alcotest.(check bool) "index is (k - 1)" true
    (idx0.Wn.operator = Wn.OPR_SUB
    && (Wn.kid idx0 1).Wn.operator = Wn.OPR_INTCONST
    && (Wn.kid idx0 1).Wn.const_val = 1)

let test_array_convention_c () =
  let m = lower_src [ c_2d ] in
  let pu = Option.get (Ir.find_pu m "f") in
  let arr = find_array_node pu in
  Alcotest.(check int) "rank 2" 2 (Wn.num_dim arr);
  let dims = List.init 2 (fun k -> (Wn.array_dim arr k).Wn.const_val) in
  (* C is already row-major: declaration order preserved *)
  Alcotest.(check (list int)) "extents" [ 10; 20 ] dims;
  (* zero-based already: the index expression is the plain LDID *)
  let idx0 = Wn.array_index arr 0 in
  Alcotest.(check bool) "no shift" true (idx0.Wn.operator = Wn.OPR_LDID)

let test_global_symbol_shared () =
  let m = lower_src [ fortran_2d ] in
  let pu = Option.get (Ir.find_pu m "t") in
  let arr = find_array_node pu in
  let base = Wn.array_base arr in
  Alcotest.(check bool) "base is LDA" true (base.Wn.operator = Wn.OPR_LDA);
  Alcotest.(check bool) "global-encoded" true (Ir.is_global_idx base.Wn.st_idx);
  Alcotest.(check string) "name" "u" (Ir.st_name m pu base.Wn.st_idx)

let test_symtab_interning () =
  let st = Symtab.create () in
  let t1 = Symtab.intern_ty st (Symtab.Ty_scalar Lang.Ast.Int_t) in
  let t2 = Symtab.intern_ty st (Symtab.Ty_scalar Lang.Ast.Int_t) in
  let t3 = Symtab.intern_ty st (Symtab.Ty_scalar Lang.Ast.Double_t) in
  Alcotest.(check int) "same kind same idx" t1 t2;
  Alcotest.(check bool) "different kind" true (t1 <> t3);
  let arr =
    Symtab.intern_ty st
      (Symtab.Ty_array
         { elem = Lang.Ast.Double_t; dims = [ (Some 1, Some 10) ];
           contiguous = true })
  in
  Alcotest.(check int) "elem size" 8 (Symtab.elem_size st arr);
  Alcotest.(check int) "total" 10 (Symtab.total_elems st arr);
  Alcotest.(check int) "bytes" 80 (Symtab.size_bytes st arr)

let test_variable_length_zero () =
  let st = Symtab.create () in
  let arr =
    Symtab.intern_ty st
      (Symtab.Ty_array
         { elem = Lang.Ast.Real_t; dims = [ (Some 1, None); (Some 1, Some 5) ];
           contiguous = true })
  in
  Alcotest.(check int) "unknown extent -> 0 total" 0 (Symtab.total_elems st arr);
  Alcotest.(check int) "0 bytes" 0 (Symtab.size_bytes st arr)

let test_layout_deterministic () =
  let m1 = lower_src [ fortran_2d ] in
  let m2 = lower_src [ fortran_2d ] in
  Layout.assign m1;
  Layout.assign m2;
  let addr m =
    let idx = Option.get (Symtab.find_st m.Ir.m_global "u") in
    (Symtab.st m.Ir.m_global idx).Symtab.st_mem_loc
  in
  Alcotest.(check int) "same address across runs" (addr m1) (addr m2);
  Alcotest.(check bool) "16-aligned" true (addr m1 mod 16 = 0)

let test_wn_counts () =
  let m = lower_src [ fortran_2d ] in
  let pu = Option.get (Ir.find_pu m "t") in
  let loops = Wn.count (fun w -> w.Wn.operator = Wn.OPR_DO_LOOP) pu.Ir.pu_body in
  Alcotest.(check int) "4 nested loops" 4 loops;
  let stores = Wn.count (fun w -> w.Wn.operator = Wn.OPR_ISTORE) pu.Ir.pu_body in
  Alcotest.(check int) "1 store" 1 stores

let test_address_formula_docs () =
  (* address = base + z * sum_i (y_i * prod_{j>i} h_j): check via a concrete
     computation mirrored by the interpreter's flat index *)
  let dims = [| 64; 65; 65; 5 |] in
  let coords = [| 2; 4; 9; 3 |] in
  let flat = ref 0 in
  Array.iteri (fun k y -> flat := (!flat * dims.(k)) + y) coords;
  (* manual expansion *)
  let expected =
    (2 * 65 * 65 * 5) + (4 * 65 * 5) + (9 * 5) + 3
  in
  Alcotest.(check int) "row-major flattening" expected !flat

let test_whirl2src_roundtrip_text () =
  let m = lower_src [ fortran_2d ] in
  let s = Whirl2src.module_to_string m in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "subscripts back in source order" true
    (contains "u(m, i, j, k)");
  Alcotest.(check bool) "do loop rendered" true (contains "do k = 1, 3")

let suite =
  [
    Alcotest.test_case "ARRAY convention (Fortran)" `Quick test_array_convention_fortran;
    Alcotest.test_case "ARRAY convention (C)" `Quick test_array_convention_c;
    Alcotest.test_case "global symbols shared" `Quick test_global_symbol_shared;
    Alcotest.test_case "symtab interning" `Quick test_symtab_interning;
    Alcotest.test_case "variable-length size 0" `Quick test_variable_length_zero;
    Alcotest.test_case "layout deterministic" `Quick test_layout_deterministic;
    Alcotest.test_case "WN counting" `Quick test_wn_counts;
    Alcotest.test_case "address formula" `Quick test_address_formula_docs;
    Alcotest.test_case "whirl2src restores source view" `Quick test_whirl2src_roundtrip_text;
  ]
