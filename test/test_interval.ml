open Numeric

let itv =
  Alcotest.testable Interval.pp Interval.equal

let itv_opt = Alcotest.(option itv)

let mk l h =
  match Interval.of_ints l h with
  | Some t -> t
  | None -> Alcotest.failf "unexpected empty interval [%d,%d]" l h

let test_make () =
  Alcotest.check itv_opt "empty" None (Interval.of_ints 3 2);
  Alcotest.check itv_opt "singleton" (Some (Interval.point 3)) (Interval.of_ints 3 3);
  Alcotest.check_raises "make_exn empty" (Invalid_argument "Interval.make_exn: empty interval")
    (fun () -> ignore (Interval.make_exn (Interval.Finite 1) (Interval.Finite 0)))

let test_contains () =
  let t = mk 2 5 in
  Alcotest.(check bool) "in" true (Interval.contains t 2);
  Alcotest.(check bool) "in" true (Interval.contains t 5);
  Alcotest.(check bool) "out lo" false (Interval.contains t 1);
  Alcotest.(check bool) "out hi" false (Interval.contains t 6);
  Alcotest.(check bool) "full contains" true (Interval.contains Interval.full 1000)

let test_size () =
  Alcotest.(check (option int)) "size" (Some 4) (Interval.size (mk 2 5));
  Alcotest.(check (option int)) "point size" (Some 1) (Interval.size (Interval.point 7));
  Alcotest.(check (option int)) "unbounded" None (Interval.size Interval.full)

let test_join_meet () =
  Alcotest.check itv "join overlap" (mk 1 7) (Interval.join (mk 1 4) (mk 3 7));
  Alcotest.check itv "join gap is convex" (mk 1 10) (Interval.join (mk 1 2) (mk 9 10));
  Alcotest.check itv_opt "meet" (Some (mk 3 4)) (Interval.meet (mk 1 4) (mk 3 7));
  Alcotest.check itv_opt "meet empty" None (Interval.meet (mk 1 2) (mk 4 5));
  Alcotest.check itv_opt "meet with full" (Some (mk 1 4))
    (Interval.meet (mk 1 4) Interval.full)

let test_subset_disjoint () =
  Alcotest.(check bool) "subset" true (Interval.subset (mk 2 3) (mk 1 4));
  Alcotest.(check bool) "not subset" false (Interval.subset (mk 0 3) (mk 1 4));
  Alcotest.(check bool) "subset of full" true (Interval.subset (mk 0 3) Interval.full);
  Alcotest.(check bool) "full not subset" false (Interval.subset Interval.full (mk 0 3));
  Alcotest.(check bool) "disjoint" true (Interval.disjoint (mk 1 2) (mk 3 4));
  Alcotest.(check bool) "not disjoint" false (Interval.disjoint (mk 1 3) (mk 3 4))

let test_shift () =
  Alcotest.check itv "shift" (mk 4 7) (Interval.shift (mk 1 4) 3);
  Alcotest.check itv "shift full" Interval.full (Interval.shift Interval.full 5)

let gen_itv =
  QCheck2.Gen.(
    map2
      (fun l len -> Interval.make_exn (Finite l) (Finite (l + len)))
      (int_range (-100) 100) (int_range 0 50))

let print_itv t = Format.asprintf "%a" Interval.pp t

let prop_join_upper_bound =
  QCheck2.Test.make ~name:"join contains both" ~count:300
    QCheck2.Gen.(pair gen_itv gen_itv)
    ~print:QCheck2.Print.(pair print_itv print_itv)
    (fun (a, b) ->
      let j = Interval.join a b in
      Interval.subset a j && Interval.subset b j)

let prop_meet_lower_bound =
  QCheck2.Test.make ~name:"meet within both" ~count:300
    QCheck2.Gen.(pair gen_itv gen_itv)
    ~print:QCheck2.Print.(pair print_itv print_itv)
    (fun (a, b) ->
      match Interval.meet a b with
      | None -> Interval.disjoint a b
      | Some m -> Interval.subset m a && Interval.subset m b)

let prop_subset_partial_order =
  QCheck2.Test.make ~name:"subset antisymmetry" ~count:300
    QCheck2.Gen.(pair gen_itv gen_itv)
    ~print:QCheck2.Print.(pair print_itv print_itv)
    (fun (a, b) ->
      if Interval.subset a b && Interval.subset b a then Interval.equal a b
      else true)

let suite =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "join/meet" `Quick test_join_meet;
    Alcotest.test_case "subset/disjoint" `Quick test_subset_disjoint;
    Alcotest.test_case "shift" `Quick test_shift;
    QCheck_alcotest.to_alcotest prop_join_upper_bound;
    QCheck_alcotest.to_alcotest prop_meet_lower_bound;
    QCheck_alcotest.to_alcotest prop_subset_partial_order;
  ]
