(* Loop-level summaries: the paper's "summarize array accesses at both
   loop-level and statement level". *)

let setup files =
  let r = Engine.analyze_sources files in
  (r, r.Ipa.Analyze.r_module)

let find_ls lss proc line_pred =
  List.find
    (fun ls -> ls.Ipa.Loopsum.ls_proc = proc && line_pred ls.Ipa.Loopsum.ls_line)
    lss

let dim_triplets region =
  List.map
    (fun d ->
      Format.asprintf "%a:%a" Regions.Region.pp_bound d.Regions.Region.lb
        Regions.Region.pp_bound d.Regions.Region.ub)
    (Regions.Region.dim_list region)

let test_outer_loop_totals () =
  let r, m = setup [ Corpus.Small.fig1_f ] in
  let pu = Option.get (Whirl.Ir.find_pu m "p1") in
  let lss = Ipa.Loopsum.of_pu m r.Ipa.Analyze.r_summaries pu in
  Alcotest.(check int) "two loops" 2 (List.length lss);
  let outer = List.hd lss in
  Alcotest.(check int) "outer depth 0" 0 outer.Ipa.Loopsum.ls_depth;
  (match outer.Ipa.Loopsum.ls_entries with
  | [ e ] ->
    Alcotest.(check string) "array a" "a" e.Ipa.Loopsum.le_array;
    Alcotest.(check bool) "DEF" true
      (Regions.Mode.equal e.Ipa.Loopsum.le_mode Regions.Mode.DEF);
    Alcotest.(check (list string)) "full square" [ "0:99"; "0:99" ]
      (dim_triplets e.Ipa.Loopsum.le_region)
  | _ -> Alcotest.fail "expected one entry");
  (* the inner loop's summary keeps the outer ivar symbolic *)
  let inner = List.nth lss 1 in
  match inner.Ipa.Loopsum.ls_entries with
  | [ e ] ->
    Alcotest.(check bool) "inner second dim symbolic" true
      (match List.nth (Regions.Region.dim_list e.Ipa.Loopsum.le_region) 1 with
      | { Regions.Region.lb = Regions.Region.Bsym _; _ } -> true
      | _ -> false)
  | _ -> Alcotest.fail "expected one inner entry"

let test_interprocedural_loop_summary () =
  (* add's j loop: the callees' DEF and USE both appear *)
  let r, m = setup [ Corpus.Small.fig1_f ] in
  let pu = Option.get (Whirl.Ir.find_pu m "add") in
  let lss = Ipa.Loopsum.of_pu m r.Ipa.Analyze.r_summaries pu in
  let j = List.hd lss in
  let modes =
    List.map (fun e -> Regions.Mode.to_string e.Ipa.Loopsum.le_mode)
      j.Ipa.Loopsum.ls_entries
    |> List.sort compare
  in
  Alcotest.(check (list string)) "DEF and USE through calls" [ "DEF"; "USE" ]
    modes

let test_lu_corner_loop () =
  (* the Case 2 loop: its loop-level summary of u is (1:3,1:5,1:10,1:4),
     i.e. internal box 0:2 / 0:4 / 0:9 / 0:3 *)
  let r, m = setup (Corpus.Nas_lu.files ()) in
  let pu = Option.get (Whirl.Ir.find_pu m "rhs") in
  let lss = Ipa.Loopsum.of_pu m r.Ipa.Analyze.r_summaries pu in
  (* the corner nest is the last outermost loop of rhs *)
  let outers =
    List.filter (fun ls -> ls.Ipa.Loopsum.ls_depth = 0) lss
  in
  let corner = List.nth outers (List.length outers - 1) in
  let u_use =
    List.find
      (fun e ->
        e.Ipa.Loopsum.le_array = "u"
        && Regions.Mode.equal e.Ipa.Loopsum.le_mode Regions.Mode.USE)
      corner.Ipa.Loopsum.ls_entries
  in
  Alcotest.(check int) "four reference sites" 4 u_use.Ipa.Loopsum.le_refs;
  Alcotest.(check (list string)) "union box = the paper's copyin region"
    [ "0:2"; "0:4"; "0:9"; "0:3" ]
    (dim_triplets u_use.Ipa.Loopsum.le_region)

let test_module_wide () =
  let r, m = setup [ Corpus.Apps.matmul ] in
  let lss = Ipa.Loopsum.of_module m r.Ipa.Analyze.r_summaries in
  (* 2 loops in main + 3 in dgemm *)
  Alcotest.(check int) "five loops" 5 (List.length lss)

let suite =
  [
    Alcotest.test_case "outer loop totals" `Quick test_outer_loop_totals;
    Alcotest.test_case "interprocedural" `Quick test_interprocedural_loop_summary;
    Alcotest.test_case "LU corner loop (Case 2)" `Quick test_lu_corner_loop;
    Alcotest.test_case "module-wide" `Quick test_module_wide;
  ]
