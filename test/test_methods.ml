(* The Fig 2 summarization methods. *)

open Regions

let test_classic () =
  let c = Methods.Classic.empty 1 in
  Alcotest.(check bool) "fresh: no use" false (Methods.Classic.accessed Mode.USE c);
  let c = Methods.Classic.add Mode.USE c in
  Alcotest.(check bool) "use" true (Methods.Classic.accessed Mode.USE c);
  Alcotest.(check bool) "no def" false (Methods.Classic.accessed Mode.DEF c);
  Alcotest.(check int) "2 bits ~ 1 byte" 1 (Methods.Classic.storage_bytes c);
  Alcotest.(check bool) "whole-array membership" true
    (Methods.Classic.contains c [ 123 ])

let test_reflist () =
  let r = Methods.Reflist.empty 2 in
  let r = Methods.Reflist.add [ 1; 2 ] r in
  let r = Methods.Reflist.add [ 3; 4 ] r in
  let r = Methods.Reflist.add [ 1; 2 ] r in
  Alcotest.(check int) "dedup" 2 (Methods.Reflist.cardinal r);
  Alcotest.(check bool) "member" true (Methods.Reflist.contains r [ 3; 4 ]);
  Alcotest.(check bool) "non-member" false (Methods.Reflist.contains r [ 2; 1 ]);
  Alcotest.(check int) "bytes = 2 refs * 2 dims * 8" 32
    (Methods.Reflist.storage_bytes r);
  Alcotest.check_raises "arity" (Invalid_argument "Reflist.add: wrong arity")
    (fun () -> ignore (Methods.Reflist.add [ 1 ] r))

let test_section_stride_detection () =
  (* feed 0,4,8,12 *)
  let s =
    List.fold_left
      (fun acc x -> Methods.Section.add [ x ] acc)
      (Methods.Section.empty 1)
      [ 0; 4; 8; 12 ]
  in
  (match Methods.Section.dims s with
  | Some [ d ] ->
    Alcotest.(check int) "lo" 0 d.Methods.Section.lo;
    Alcotest.(check int) "hi" 12 d.Methods.Section.hi;
    Alcotest.(check int) "stride discovered" 4 d.Methods.Section.stride
  | _ -> Alcotest.fail "expected one dim");
  Alcotest.(check int) "cardinal" 4 (Methods.Section.cardinal s);
  Alcotest.(check bool) "member" true (Methods.Section.contains s [ 8 ]);
  Alcotest.(check bool) "off-lattice" false (Methods.Section.contains s [ 6 ])

let test_section_stride_widening () =
  let s =
    List.fold_left
      (fun acc x -> Methods.Section.add [ x ] acc)
      (Methods.Section.empty 1)
      [ 0; 4; 6 ]
  in
  match Methods.Section.dims s with
  | Some [ d ] ->
    Alcotest.(check int) "gcd(4,6)" 2 d.Methods.Section.stride
  | _ -> Alcotest.fail "expected one dim"

let test_section_singleton () =
  let s = Methods.Section.add [ 7 ] (Methods.Section.empty 1) in
  Alcotest.(check int) "cardinal 1" 1 (Methods.Section.cardinal s);
  Alcotest.(check bool) "member" true (Methods.Section.contains s [ 7 ]);
  Alcotest.(check bool) "non-member" false (Methods.Section.contains s [ 8 ]);
  Alcotest.(check int) "empty cardinal" 0
    (Methods.Section.cardinal (Methods.Section.empty 1))

(* property: a Section over-approximates the points fed to it; a Reflist is
   exact; the section is never larger than the bounding box *)
let prop_section_sound =
  QCheck2.Test.make ~name:"section covers inputs, reflist exact" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 0 63))
    ~print:QCheck2.Print.(list int)
    (fun xs ->
      let section =
        List.fold_left
          (fun acc x -> Methods.Section.add [ x ] acc)
          (Methods.Section.empty 1)
          xs
      in
      let reflist =
        List.fold_left
          (fun acc x -> Methods.Reflist.add [ x ] acc)
          (Methods.Reflist.empty 1)
          xs
      in
      List.for_all (fun x -> Methods.Section.contains section [ x ]) xs
      && List.for_all (fun x -> Methods.Reflist.contains reflist [ x ]) xs
      && Methods.Section.cardinal section >= Methods.Reflist.cardinal reflist)

let suite =
  [
    Alcotest.test_case "classic bits" `Quick test_classic;
    Alcotest.test_case "reference list" `Quick test_reflist;
    Alcotest.test_case "section stride detection" `Quick test_section_stride_detection;
    Alcotest.test_case "section stride widening" `Quick test_section_stride_widening;
    Alcotest.test_case "section singleton" `Quick test_section_singleton;
    QCheck_alcotest.to_alcotest prop_section_sound;
  ]
