open Numeric
open Linear

let r = Rat.of_int

let ropt =
  Alcotest.(option (testable Rat.pp Rat.equal))

(* Helper variables.  Fresh per call site would defeat structural checks, so
   build a tiny fixed universe. *)
let x = Var.fresh ~name:"x" Var.Ivar
let y = Var.fresh ~name:"y" Var.Ivar
let z = Var.fresh ~name:"z" Var.Ivar
let n = Var.fresh ~name:"n" Var.Sym

let e_of_int = Expr.of_int

let test_expr_basic () =
  let e = Expr.add (Expr.monom (r 2) x) (Expr.add (Expr.var y) (e_of_int 3)) in
  Alcotest.(check bool) "coeff x" true (Rat.equal (r 2) (Expr.coeff x e));
  Alcotest.(check bool) "coeff y" true (Rat.equal (r 1) (Expr.coeff y e));
  Alcotest.(check bool) "coeff z" true (Rat.equal (r 0) (Expr.coeff z e));
  Alcotest.(check bool) "constant" true (Rat.equal (r 3) (Expr.constant e));
  Alcotest.(check int) "vars" 2 (List.length (Expr.vars e));
  Alcotest.(check bool) "mem" true (Expr.mem x e);
  Alcotest.(check bool) "not mem" false (Expr.mem z e)

let test_expr_cancellation () =
  let e = Expr.sub (Expr.var x) (Expr.var x) in
  Alcotest.(check bool) "x - x = 0" true (Expr.is_const e);
  Alcotest.(check bool) "equals zero" true (Expr.equal Expr.zero e)

let test_expr_subst () =
  (* x := y + 1 in 2x + 3  gives  2y + 5 *)
  let e = Expr.add (Expr.monom (r 2) x) (e_of_int 3) in
  let s = Expr.subst x (Expr.add (Expr.var y) (e_of_int 1)) e in
  Alcotest.(check bool) "subst coeff" true (Rat.equal (r 2) (Expr.coeff y s));
  Alcotest.(check bool) "subst const" true (Rat.equal (r 5) (Expr.constant s));
  Alcotest.(check bool) "x gone" false (Expr.mem x s)

let test_expr_eval () =
  let e = Expr.add (Expr.monom (r 2) x) (Expr.add (Expr.monom (r (-1)) y) (e_of_int 7)) in
  let v var = if Var.equal var x then r 3 else r 4 in
  Alcotest.(check bool) "eval" true (Rat.equal (r 9) (Expr.eval v e))

let test_constr_normalization () =
  (* x/2 + 1/3 <= 0 normalizes to 3x + 2 <= 0 *)
  let e = Expr.add (Expr.monom (Rat.make 1 2) x) (Expr.const (Rat.make 1 3)) in
  let c = Constr.make e Constr.Le in
  Alcotest.(check bool) "int coeff" true
    (Rat.equal (r 3) (Expr.coeff x (Constr.expr c)));
  Alcotest.(check bool) "int const" true
    (Rat.equal (r 2) (Expr.constant (Constr.expr c)));
  (* scaled versions are structurally equal *)
  let c2 = Constr.make (Expr.scale (r 6) e) Constr.Le in
  Alcotest.(check bool) "scale-invariant" true (Constr.equal c c2)

let test_constr_trivial () =
  Alcotest.(check (option bool)) "true" (Some true)
    (Constr.is_trivial (Constr.make (e_of_int (-1)) Constr.Le));
  Alcotest.(check (option bool)) "false" (Some false)
    (Constr.is_trivial (Constr.make (e_of_int 1) Constr.Le));
  Alcotest.(check (option bool)) "eq false" (Some false)
    (Constr.is_trivial (Constr.make (e_of_int 1) Constr.Eq));
  Alcotest.(check (option bool)) "nontrivial" None
    (Constr.is_trivial (Constr.make (Expr.var x) Constr.Le))

(* System describing a loop nest:  1 <= x <= 10,  x <= y <= x + 2. *)
let loopish =
  System.of_list
    [
      Constr.ge (Expr.var x) (e_of_int 1);
      Constr.le (Expr.var x) (e_of_int 10);
      Constr.ge (Expr.var y) (Expr.var x);
      Constr.le (Expr.var y) (Expr.add (Expr.var x) (e_of_int 2));
    ]

let test_feasible () =
  Alcotest.(check bool) "loopish feasible" true (System.feasible loopish);
  Alcotest.(check bool) "top feasible" true (System.feasible System.top);
  Alcotest.(check bool) "bottom infeasible" false (System.feasible System.bottom);
  let contradiction =
    System.of_list
      [ Constr.ge (Expr.var x) (e_of_int 5); Constr.le (Expr.var x) (e_of_int 4) ]
  in
  Alcotest.(check bool) "x>=5 & x<=4" false (System.feasible contradiction)

let test_eliminate_bounds () =
  (* Eliminating x from loopish must leave 1 <= y <= 12. *)
  let s = System.eliminate x loopish in
  let lo, hi = System.bounds y s in
  Alcotest.check ropt "y lower" (Some (r 1)) lo;
  Alcotest.check ropt "y upper" (Some (r 12)) hi

let test_bounds_subscript () =
  (* d0 = 2x + 3 with 1 <= x <= 10: d0 in [5, 23]. *)
  let d0 = Var.subscript 0 in
  let s =
    System.of_list
      [
        Constr.eq (Expr.var d0) (Expr.add (Expr.monom (r 2) x) (e_of_int 3));
        Constr.ge (Expr.var x) (e_of_int 1);
        Constr.le (Expr.var x) (e_of_int 10);
      ]
  in
  let lo, hi = System.bounds d0 s in
  Alcotest.check ropt "lb" (Some (r 5)) lo;
  Alcotest.check ropt "ub" (Some (r 23)) hi

let test_bounds_symbolic () =
  (* 1 <= x <= n: no constant bounds on x above, constant 1 below after
     projecting n away leaves nothing: check unbounded reported. *)
  let s =
    System.of_list
      [ Constr.ge (Expr.var x) (e_of_int 1); Constr.le (Expr.var x) (Expr.var n) ]
  in
  let lo, hi = System.bounds x s in
  Alcotest.check ropt "lb" (Some (r 1)) lo;
  Alcotest.check ropt "ub unbounded" None hi

let test_equality_substitution () =
  (* x = y + 1 and y = 3 force x = 4. *)
  let s =
    System.of_list
      [
        Constr.eq (Expr.var x) (Expr.add (Expr.var y) (e_of_int 1));
        Constr.eq (Expr.var y) (e_of_int 3);
      ]
  in
  let lo, hi = System.bounds x s in
  Alcotest.check ropt "x = 4 lo" (Some (r 4)) lo;
  Alcotest.check ropt "x = 4 hi" (Some (r 4)) hi

let test_implies_includes () =
  let box lo hi =
    System.of_list
      [ Constr.ge (Expr.var x) (e_of_int lo); Constr.le (Expr.var x) (e_of_int hi) ]
  in
  Alcotest.(check bool) "smaller box included" true
    (System.includes (box 1 10) (box 2 5));
  Alcotest.(check bool) "larger box not included" false
    (System.includes (box 2 5) (box 1 10));
  Alcotest.(check bool) "self included" true
    (System.includes (box 1 10) (box 1 10));
  Alcotest.(check bool) "implies member" true
    (System.implies (box 2 5) (Constr.le (Expr.var x) (e_of_int 7)));
  Alcotest.(check bool) "not implies" false
    (System.implies (box 2 5) (Constr.le (Expr.var x) (e_of_int 4)))

let test_disjoint () =
  let box v lo hi =
    System.of_list
      [ Constr.ge (Expr.var v) (e_of_int lo); Constr.le (Expr.var v) (e_of_int hi) ]
  in
  Alcotest.(check bool) "disjoint boxes" true
    (System.disjoint (box x 1 5) (box x 6 10));
  Alcotest.(check bool) "touching boxes overlap" false
    (System.disjoint (box x 1 5) (box x 5 10));
  (* different variables: product space, never disjoint *)
  Alcotest.(check bool) "independent vars" false
    (System.disjoint (box x 1 5) (box y 6 10))

let test_sample () =
  match System.sample loopish with
  | None -> Alcotest.fail "loopish should be feasible"
  | Some v ->
    List.iter
      (fun c ->
        Alcotest.(check bool)
          (Format.asprintf "sample satisfies %a" Constr.pp c)
          true (Constr.holds v c))
      (System.to_list loopish)

let test_sample_infeasible () =
  Alcotest.(check bool) "no sample" true (System.sample System.bottom = None)

(* Property: Fourier-Motzkin projection is sound and (rationally) exact on
   random box+diagonal systems.  We verify with brute-force integer
   enumeration over a small grid: a point satisfies the projection iff some
   integer extension nearly satisfies the original -- the "if" direction is
   rational-only, so we only check soundness (projection keeps all shadows)
   plus feasibility agreement. *)

let gen_coeff = QCheck2.Gen.int_range (-3) 3

let gen_system =
  QCheck2.Gen.(
    let gen_constr =
      map3
        (fun a b c ->
          Constr.make
            (Expr.add
               (Expr.monom (r a) x)
               (Expr.add (Expr.monom (r b) y) (e_of_int c)))
            Constr.Le)
        gen_coeff gen_coeff (int_range (-8) 8)
    in
    map
      (fun cs ->
        System.meet (System.of_list cs)
          (System.of_list
             [
               Constr.ge (Expr.var x) (e_of_int (-6));
               Constr.le (Expr.var x) (e_of_int 6);
               Constr.ge (Expr.var y) (e_of_int (-6));
               Constr.le (Expr.var y) (e_of_int 6);
             ]))
      (list_size (int_range 0 4) gen_constr))

let print_system s = Format.asprintf "%a" System.pp s

let holds_at s vx vy =
  let v var = if Var.equal var x then r vx else r vy in
  List.for_all (Constr.holds v) (System.to_list s)

let prop_projection_sound =
  QCheck2.Test.make ~name:"FM projection keeps every shadow" ~count:150
    gen_system ~print:print_system (fun s ->
      let proj = System.eliminate y s in
      let ok = ref true in
      for vx = -6 to 6 do
        for vy = -6 to 6 do
          if holds_at s vx vy then
            if not (holds_at proj vx 0 (* y gone *)) then ok := false
        done
      done;
      !ok)

let prop_projection_rationally_exact =
  QCheck2.Test.make ~name:"FM projection feasibility agrees" ~count:150
    gen_system ~print:print_system (fun s ->
      let proj = System.eliminate y (System.eliminate x s) in
      System.feasible s = System.feasible proj)

let prop_includes_reflexive =
  QCheck2.Test.make ~name:"includes reflexive" ~count:100 gen_system
    ~print:print_system (fun s -> System.includes s s)

let prop_sample_satisfies =
  QCheck2.Test.make ~name:"sample satisfies system" ~count:150 gen_system
    ~print:print_system (fun s ->
      match System.sample s with
      | None -> not (System.feasible s)
      | Some v -> List.for_all (Constr.holds v) (System.to_list s))

let test_simplify () =
  (* x <= 10 is implied by x <= 5 *)
  let s =
    System.of_list
      [
        Constr.le (Expr.var x) (e_of_int 10);
        Constr.le (Expr.var x) (e_of_int 5);
        Constr.ge (Expr.var x) (e_of_int 0);
      ]
  in
  let s' = System.simplify s in
  Alcotest.(check int) "redundant dropped" 2 (System.size s');
  Alcotest.(check bool) "same solutions" true (System.equal_semantic s s');
  (* idempotent *)
  Alcotest.(check int) "idempotent" 2 (System.size (System.simplify s'));
  (* nothing redundant: unchanged *)
  Alcotest.(check int) "minimal unchanged" (System.size loopish)
    (System.size (System.simplify loopish))

let prop_simplify_preserves =
  QCheck2.Test.make ~name:"simplify preserves solutions" ~count:100 gen_system
    ~print:print_system (fun s ->
      System.equal_semantic s (System.simplify s))

let suite =
  [
    Alcotest.test_case "simplify" `Quick test_simplify;
    QCheck_alcotest.to_alcotest prop_simplify_preserves;
    Alcotest.test_case "expr basics" `Quick test_expr_basic;
    Alcotest.test_case "expr cancellation" `Quick test_expr_cancellation;
    Alcotest.test_case "expr subst" `Quick test_expr_subst;
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "constr normalization" `Quick test_constr_normalization;
    Alcotest.test_case "constr trivial" `Quick test_constr_trivial;
    Alcotest.test_case "feasible" `Quick test_feasible;
    Alcotest.test_case "eliminate + bounds" `Quick test_eliminate_bounds;
    Alcotest.test_case "bounds of subscript" `Quick test_bounds_subscript;
    Alcotest.test_case "symbolic upper bound" `Quick test_bounds_symbolic;
    Alcotest.test_case "equality substitution" `Quick test_equality_substitution;
    Alcotest.test_case "implies/includes" `Quick test_implies_includes;
    Alcotest.test_case "disjoint" `Quick test_disjoint;
    Alcotest.test_case "sample" `Quick test_sample;
    Alcotest.test_case "sample infeasible" `Quick test_sample_infeasible;
    QCheck_alcotest.to_alcotest prop_projection_sound;
    QCheck_alcotest.to_alcotest prop_projection_rationally_exact;
    QCheck_alcotest.to_alcotest prop_includes_reflexive;
    QCheck_alcotest.to_alcotest prop_sample_satisfies;
  ]
