(* WOPT: constant propagation and DCE over WHIRL. *)

let lower files = Whirl.Lower.lower (Lang.Frontend.load ~files)

let rows_of_module m =
  (Engine.analyze m).Ipa.Analyze.r_rows

let find_row rows array mode =
  List.find_opt
    (fun (r : Rgnfile.Row.t) ->
      r.Rgnfile.Row.array = array && r.Rgnfile.Row.mode = mode)
    rows

let test_bounds_sharpened () =
  let src =
    ( "t.f",
      {|      program t
      integer a(1:64)
      integer i, n
      n = 32
      do i = 1, n
        a(i) = i
      end do
      end
|} )
  in
  let m = lower [ src ] in
  (* without wopt: symbolic upper bound *)
  (match find_row (rows_of_module m) "a" "DEF" with
  | Some r -> Alcotest.(check string) "symbolic before" "n" r.Rgnfile.Row.ub
  | None -> Alcotest.fail "no DEF row");
  (* with wopt: exact *)
  let m', stats = Wopt.Const_prop.run (lower [ src ]) in
  Alcotest.(check bool) "folded something" true
    (stats.Wopt.Const_prop.folded_loads >= 1);
  match find_row (rows_of_module m') "a" "DEF" with
  | Some r -> Alcotest.(check string) "constant after" "32" r.Rgnfile.Row.ub
  | None -> Alcotest.fail "no DEF row after wopt"

let test_branch_folding () =
  let src =
    ( "t.f",
      {|      program t
      integer x, c
      c = 1
      if (c .gt. 0) then
        x = 10
      else
        x = 20
      end if
      print *, x
      end
|} )
  in
  let m, stats = Wopt.Const_prop.run (lower [ src ]) in
  Alcotest.(check int) "one branch folded" 1 stats.Wopt.Const_prop.folded_branches;
  let o = Interp.run m in
  Alcotest.(check string) "semantics preserved" "10\n" o.Interp.out_text

let test_call_kills_globals () =
  let src =
    ( "t.f",
      {|      program t
      integer a(1:64)
      integer g
      integer i
      common /c/ g
      g = 8
      call touch
      do i = 1, g
        a(i) = i
      end do
      end

      subroutine touch
      integer g
      common /c/ g
      g = 16
      end
|} )
  in
  let m, _ = Wopt.Const_prop.run (lower [ src ]) in
  match find_row (rows_of_module m) "a" "DEF" with
  | Some r ->
    Alcotest.(check string) "g stays symbolic across the call" "g"
      r.Rgnfile.Row.ub
  | None -> Alcotest.fail "no DEF row"

let test_loop_kills_modified () =
  let src =
    ( "t.f",
      {|      program t
      integer a(1:64)
      integer i, k
      k = 1
      do i = 1, 10
        k = k + 3
        a(k) = i
      end do
      end
|} )
  in
  let m, _ = Wopt.Const_prop.run (lower [ src ]) in
  match find_row (rows_of_module m) "a" "DEF" with
  | Some r ->
    Alcotest.(check string) "k not treated as 1" "k" r.Rgnfile.Row.lb
  | None -> Alcotest.fail "no DEF row"

let test_dce_dead_store_and_unreachable () =
  let src =
    ( "t.f",
      {|      subroutine s(x)
      integer x
      integer dead
      dead = 42
      x = 1
      return
      x = 2
      end
|} )
  in
  let m = lower [ src ] in
  let m', stats = Wopt.Dce.run m in
  Alcotest.(check int) "dead store removed" 1 stats.Wopt.Dce.removed_stores;
  Alcotest.(check int) "unreachable removed" 1 stats.Wopt.Dce.removed_stmts;
  let pu = Option.get (Whirl.Ir.find_pu m' "s") in
  let stids =
    Whirl.Wn.count (fun w -> w.Whirl.Wn.operator = Whirl.Wn.OPR_STID)
      pu.Whirl.Ir.pu_body
  in
  Alcotest.(check int) "only the live store remains" 1 stids

let test_dce_keeps_observable () =
  let src =
    ( "t.f",
      {|      program t
      integer x
      x = 5
      print *, x
      end
|} )
  in
  let m, stats = Wopt.Dce.run (lower [ src ]) in
  Alcotest.(check int) "nothing removed" 0 stats.Wopt.Dce.removed_stores;
  let o = Interp.run m in
  Alcotest.(check string) "still prints" "5\n" o.Interp.out_text

let semantics_preserved src =
  let before = Interp.run (lower [ src ]) in
  let m1, _ = Wopt.Const_prop.run (lower [ src ]) in
  let m2, _ = Wopt.Dce.run m1 in
  let after = Interp.run m2 in
  Alcotest.(check string) "same output" before.Interp.out_text
    after.Interp.out_text

let test_call_in_rhs_kills_globals () =
  (* regression: a function call inside an assignment's RHS clobbers
     globals, so earlier constants must not survive it *)
  let src =
    ( "t.f",
      {|      program t
      integer a(1:64)
      integer g, x
      common /c/ g
      g = 8
      x = bump() + 1
      call use(a, g)
      end

      integer function bump()
      integer g
      common /c/ g
      g = 16
      bump = 1
      end

      subroutine use(b, n)
      integer b(1:64)
      integer n, i
      do i = 1, n
        b(i) = i
      end do
      end
|} )
  in
  let m, _ = Wopt.Const_prop.run (lower [ src ]) in
  (* the DEF effect of `use` propagated into t must keep g symbolic: with
     the stale fold it would be the constant region 0:7 *)
  let r = Engine.analyze m in
  let table =
    List.find (fun t -> t.Ipa.Analyze.t_proc = "t") r.Ipa.Analyze.r_tables
  in
  let via_def =
    List.find
      (fun (a : Ipa.Collect.access) ->
        a.Ipa.Collect.ac_via <> None
        && Regions.Mode.equal a.Ipa.Collect.ac_mode Regions.Mode.DEF)
      table.Ipa.Analyze.t_accesses
  in
  (match Regions.Region.dim_list via_def.Ipa.Collect.ac_region with
  | [ d ] ->
    Alcotest.(check bool) "ub stays symbolic (g clobbered by bump())" true
      (match d.Regions.Region.ub with
      | Regions.Region.Bsym _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "expected a 1-D region");
  (* and execution agrees before/after wopt *)
  semantics_preserved src

let test_semantics_matrix () = semantics_preserved Corpus.Small.matrix_c
let test_semantics_fig1 () = semantics_preserved Corpus.Small.fig1_f

let test_semantics_mixed () =
  semantics_preserved
    ( "t.f",
      {|      program t
      integer a(1:16)
      integer i, n, s
      n = 4
      s = 0
      do i = 1, n * 2
        if (mod(i, 2) .eq. 0) then
          a(i) = i * 3
        else
          a(i) = i
        end if
      end do
      do i = 1, 8
        s = s + a(i)
      end do
      print *, s, n
      end
|} )

let suite =
  [
    Alcotest.test_case "bounds sharpened" `Quick test_bounds_sharpened;
    Alcotest.test_case "branch folding" `Quick test_branch_folding;
    Alcotest.test_case "call kills globals" `Quick test_call_kills_globals;
    Alcotest.test_case "loop kills modified scalars" `Quick test_loop_kills_modified;
    Alcotest.test_case "DCE: dead store + unreachable" `Quick
      test_dce_dead_store_and_unreachable;
    Alcotest.test_case "DCE keeps observable" `Quick test_dce_keeps_observable;
    Alcotest.test_case "call in rhs kills globals" `Quick
      test_call_in_rhs_kills_globals;
    Alcotest.test_case "semantics preserved (matrix.c)" `Quick test_semantics_matrix;
    Alcotest.test_case "semantics preserved (fig1.f)" `Quick test_semantics_fig1;
    Alcotest.test_case "semantics preserved (mixed)" `Quick test_semantics_mixed;
  ]
