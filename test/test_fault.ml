(* The fault-tolerance contract: injection is a pure function of
   (seed, site, key); corrupted cache entries are quarantined and healed by
   recomputation with byte-identical output; a poisoned PU degrades to an
   opaque summary without touching its neighbours; exhausted store writes
   leave the run correct but unpersisted; and a zero-rate spec changes
   nothing at all. *)

let mget name = Obs.Metrics.Counter.get (Obs.Metrics.counter name)

let with_specs raw f =
  match Fault.parse_specs raw with
  | Error e -> Alcotest.failf "parse_specs %s: %s" (String.concat " " raw) e
  | Ok specs ->
    Fault.configure specs;
    Fun.protect ~finally:Fault.clear f

(* ------------------------------------------------------------------ *)
(* spec grammar *)

let test_spec_parsing () =
  (match Fault.parse_spec "pool:0.5:42" with
  | Ok [ s ] ->
    Alcotest.(check string) "site" "pool" (Fault.site_name s.Fault.sp_site);
    Alcotest.(check (float 0.)) "rate" 0.5 s.Fault.sp_rate;
    Alcotest.(check int) "seed" 42 s.Fault.sp_seed;
    Alcotest.(check (option string)) "only" None s.Fault.sp_only
  | Ok _ -> Alcotest.fail "pool spec expands to one entry"
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "store.read:1.0:0:lu" with
  | Ok [ s ] ->
    Alcotest.(check (option string)) "only" (Some "lu") s.Fault.sp_only
  | _ -> Alcotest.fail "ONLY filter parses");
  (match Fault.parse_spec "all:0.1:7" with
  | Ok specs ->
    Alcotest.(check int) "all expands to every site"
      (List.length Fault.all_sites) (List.length specs)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.parse_spec bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "bogus:0.5:1"; "pool:2.0:1"; "pool:-0.1:1"; "pool:x:1"; "pool:0.5"; "" ]

(* ------------------------------------------------------------------ *)
(* determinism of the firing decision *)

let test_fires_deterministic () =
  let keys = List.init 200 (Printf.sprintf "pu:%d") in
  let draw rate seed =
    with_specs [ Printf.sprintf "pool:%g:%d" rate seed ] @@ fun () ->
    List.map (fun k -> Fault.fires Fault.Pool ~key:k) keys
  in
  Alcotest.(check (list bool))
    "same (rate, seed) fires identically" (draw 0.5 42) (draw 0.5 42);
  let count l = List.length (List.filter Fun.id l) in
  let at30 = draw 0.3 42 and at70 = draw 0.7 42 in
  (* the uniform draw per key is seed-determined, so the firing set is
     monotone in the rate — not merely the count *)
  List.iter2
    (fun lo hi ->
      if lo && not hi then
        Alcotest.fail "firing set not monotone in the rate")
    at30 at70;
  Alcotest.(check bool) "rate 0.3 fires less than 0.7" true
    (count at30 < count at70);
  Alcotest.(check int) "rate 0 never fires" 0 (count (draw 0.0 42));
  Alcotest.(check int) "rate 1 always fires" (List.length keys)
    (count (draw 1.0 42));
  Alcotest.(check bool) "different seeds differ" true (draw 0.5 1 <> draw 0.5 2);
  (* the ONLY filter restricts eligibility by substring *)
  with_specs [ "pool:1.0:0:pu:7" ] @@ fun () ->
  Alcotest.(check bool) "only: match fires" true
    (Fault.fires Fault.Pool ~key:"pu:7");
  Alcotest.(check bool) "only: non-match spared" false
    (Fault.fires Fault.Pool ~key:"pu:8");
  Alcotest.(check bool) "only: other site spared" false
    (Fault.fires Fault.Solver ~key:"pu:7")

(* ------------------------------------------------------------------ *)
(* cache self-healing: corrupted entries are quarantined and recomputed *)

let corrupt_file path =
  (* garble the tail so both the seal checksum and (if the header were
     somehow accepted) the Marshal payload are damaged *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc (max 0 (len / 2));
  output_string oc "garbage-not-a-cache-entry";
  close_out oc

let truncate_file path =
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 path in
  output_string oc "UH";
  close_out oc

(* entries live under a schema-token subdirectory of the cache dir *)
let store_subdir dir =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Sys.is_directory (Filename.concat dir f))
  with
  | [ sub ] -> Filename.concat dir sub
  | _ -> Alcotest.failf "expected one schema subdirectory in %s" dir

let bin_entries dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bin")

let test_cache_self_healing () =
  let files = Test_engine.corpus_files "lu" in
  let dir = Test_engine.fresh_dir () in
  let run () =
    Engine.run
      (Engine.config ~jobs:2 ~store:(Engine_store.create ~dir ()) ())
      (Test_engine.lower files)
  in
  let cold = run () in
  let sub = store_subdir dir in
  let entries = bin_entries sub in
  Alcotest.(check bool) "cold run persisted entries" true (entries <> []);
  List.iteri
    (fun i f ->
      let p = Filename.concat sub f in
      if i mod 2 = 0 then corrupt_file p else truncate_file p)
    entries;
  let q0 = mget "store.quarantined" in
  let warm = run () in
  Test_engine.check_same_output "healed"
    (Test_engine.render cold.Engine.e_result)
    (Test_engine.render warm.Engine.e_result);
  Alcotest.(check bool) "corrupt entries quarantined" true
    (mget "store.quarantined" - q0 > 0);
  let quarantined =
    Sys.readdir sub |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".quarantined")
  in
  Alcotest.(check bool) "evidence kept aside" true (quarantined <> []);
  (* third run: the healed cache hits for every PU again *)
  let third = run () in
  Alcotest.(check int) "healed cache misses" 0
    third.Engine.e_stats.Engine.Stats.s_collect_misses

(* ------------------------------------------------------------------ *)
(* per-PU isolation: one poisoned PU of N degrades alone *)

let summaries_of m (r : Engine.result) =
  List.filter_map
    (fun (name, s) ->
      match Whirl.Ir.find_pu m name with
      | None -> None
      | Some pu ->
        Some (name, Format.asprintf "%a" (Ipa.Summary.pp m pu) s))
    r.Engine.e_result.Ipa.Analyze.r_summaries

let test_pu_isolation () =
  let src = Test_engine.chain_src ~g_bound:10 ~f_bound:20 in
  let m_clean = Test_engine.lower [ src ] in
  let clean =
    summaries_of m_clean
      (Engine.run (Engine.config ~jobs:2 ()) m_clean)
  in
  (* poison exactly "main" — the top caller, so no other summary depends on
     the degraded one *)
  with_specs [ "pool:1.0:0:main" ] @@ fun () ->
  let m = Test_engine.lower [ src ] in
  let r = Engine.run (Engine.config ~jobs:2 ~keep_going:true ()) m in
  let faulted = summaries_of m r in
  Alcotest.(check int) "same PU count" (List.length clean)
    (List.length faulted);
  let opaque_main =
    match Whirl.Ir.find_pu m "main" with
    | Some pu ->
      Format.asprintf "%a" (Ipa.Summary.pp m pu) (Ipa.Summary.opaque m pu)
    | None -> Alcotest.fail "main missing"
  in
  List.iter
    (fun (name, printed) ->
      if name = "main" then
        Alcotest.(check string) "main degraded to the opaque summary"
          opaque_main printed
      else
        Alcotest.(check string)
          (name ^ " byte-identical to the clean run")
          (List.assoc name clean) printed)
    faulted;
  Alcotest.(check bool) "isolation produced diagnostics" true
    (r.Engine.e_diags <> []);
  List.iter
    (fun (d : Fault.Diag.t) ->
      Alcotest.(check string) "diagnostic names the poisoned PU" "main"
        d.Fault.Diag.d_pu)
    r.Engine.e_diags

(* without --keep-going the same fault aborts: isolation is opt-in *)
let test_isolation_opt_in () =
  let src = Test_engine.chain_src ~g_bound:10 ~f_bound:20 in
  with_specs [ "pool:1.0:0:main" ] @@ fun () ->
  let m = Test_engine.lower [ src ] in
  match Engine.run (Engine.config ~jobs:2 ()) m with
  | exception Fault.Injected (Fault.Pool, _) -> ()
  | _ -> Alcotest.fail "fault should escape without keep_going"

(* ------------------------------------------------------------------ *)
(* retry exhaustion: persistent write failure degrades to memory-only *)

let test_write_retry_exhaustion () =
  let files = Test_engine.corpus_files "matrix" in
  let dir = Test_engine.fresh_dir () in
  let w0 = mget "store.write_errors" and t0 = mget "store.retries" in
  let clean =
    Test_engine.render
      (Engine.run (Engine.config ~jobs:1 ()) (Test_engine.lower files))
        .Engine.e_result
  in
  with_specs [ "store.write:1.0:3" ] @@ fun () ->
  let r =
    Engine.run
      (Engine.config ~jobs:1 ~keep_going:true
         ~store:(Engine_store.create ~dir ()) ())
      (Test_engine.lower files)
  in
  Test_engine.check_same_output "unpersisted run still correct" clean
    (Test_engine.render r.Engine.e_result);
  Alcotest.(check bool) "write errors counted" true
    (mget "store.write_errors" - w0 > 0);
  Alcotest.(check bool) "retries attempted" true (mget "store.retries" - t0 > 0);
  Alcotest.(check (list string)) "nothing persisted" []
    (bin_entries (store_subdir dir))

(* ------------------------------------------------------------------ *)
(* a zero-rate spec under --keep-going changes nothing, on every corpus *)

let test_zero_rate_identity () =
  List.iter
    (fun corpus ->
      let files = Test_engine.corpus_files corpus in
      let plain =
        Test_engine.render
          (Engine.run (Engine.config ~jobs:2 ()) (Test_engine.lower files))
            .Engine.e_result
      in
      with_specs [ "all:0.0:1" ] @@ fun () ->
      let r =
        Engine.run
          (Engine.config ~jobs:2 ~keep_going:true ())
          (Test_engine.lower files)
      in
      Test_engine.check_same_output (corpus ^ " zero-rate") plain
        (Test_engine.render r.Engine.e_result);
      Alcotest.(check int)
        (corpus ^ " no diagnostics")
        0
        (List.length r.Engine.e_diags))
    [ "lu"; "matrix"; "fig1"; "stride" ]

(* ------------------------------------------------------------------ *)
(* the solver budget degrades conservatively and resets cleanly *)

let test_solver_budget () =
  let files = Test_engine.corpus_files "lu" in
  let exact =
    Test_engine.render
      (Engine.run (Engine.config ~jobs:1 ()) (Test_engine.lower files))
        .Engine.e_result
  in
  let d0 = mget "solver.degraded" in
  Linear.System.set_step_budget (Some 1);
  Linear.System.clear_cache ();
  Fun.protect ~finally:(fun () ->
      Linear.System.set_step_budget None;
      Linear.System.clear_cache ())
  @@ fun () ->
  let r = Engine.run (Engine.config ~jobs:1 ()) (Test_engine.lower files) in
  ignore (Test_engine.render r.Engine.e_result);
  Alcotest.(check bool) "budget 1 degrades queries" true
    (mget "solver.degraded" - d0 > 0);
  (* regions may only have grown: every exact row survives into the
     degraded .rgn (the conservative direction of the interval box) *)
  Linear.System.set_step_budget None;
  Linear.System.clear_cache ();
  let again =
    Test_engine.render
      (Engine.run (Engine.config ~jobs:1 ()) (Test_engine.lower files))
        .Engine.e_result
  in
  Test_engine.check_same_output "budget resets cleanly" exact again

let suite =
  [
    Alcotest.test_case "spec grammar" `Quick test_spec_parsing;
    Alcotest.test_case "firing is pure in (seed, site, key)" `Quick
      test_fires_deterministic;
    Alcotest.test_case "cache corruption self-heals byte-identically" `Slow
      test_cache_self_healing;
    Alcotest.test_case "poisoned PU isolates to an opaque summary" `Quick
      test_pu_isolation;
    Alcotest.test_case "isolation is opt-in (no keep_going: abort)" `Quick
      test_isolation_opt_in;
    Alcotest.test_case "write retry exhaustion: correct but unpersisted"
      `Quick test_write_retry_exhaustion;
    Alcotest.test_case "zero-rate spec is byte-identical on all corpora"
      `Slow test_zero_rate_identity;
    Alcotest.test_case "solver budget degrades and resets" `Slow
      test_solver_budget;
  ]
