open Numeric

let rat = Alcotest.testable Rat.pp Rat.equal

let check_rat = Alcotest.check rat

let test_make_normalizes () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  check_rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.check_raises "den 0" Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_arith () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "1/2 / 1/4" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check_rat "neg" (Rat.make (-1) 2) (Rat.neg (Rat.make 1 2));
  check_rat "abs" (Rat.make 1 2) (Rat.abs (Rat.make (-1) 2));
  check_rat "inv" (Rat.make (-2) 1) (Rat.inv (Rat.make (-1) 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true Rat.(make 1 2 < make 2 3);
  Alcotest.(check bool) "-1/2 < 1/3" true Rat.(make (-1) 2 < make 1 3);
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (Rat.make (-3) 7));
  Alcotest.(check int) "sign zero" 0 (Rat.sign Rat.zero);
  check_rat "min" (Rat.make 1 3) (Rat.min (Rat.make 1 3) (Rat.make 1 2));
  check_rat "max" (Rat.make 1 2) (Rat.max (Rat.make 1 3) (Rat.make 1 2))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "floor 4" 4 (Rat.floor (Rat.of_int 4));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "ceil -4" (-4) (Rat.ceil (Rat.of_int (-4)))

let test_to_int () =
  Alcotest.(check int) "to_int" 5 (Rat.to_int (Rat.of_int 5));
  Alcotest.(check bool) "is_integer 5" true (Rat.is_integer (Rat.of_int 5));
  Alcotest.(check bool) "is_integer 1/2" false (Rat.is_integer (Rat.make 1 2))

let test_gcd_lcm () =
  Alcotest.(check int) "gcd 12 18" 6 (Rat.gcd 12 18);
  Alcotest.(check int) "gcd -12 18" 6 (Rat.gcd (-12) 18);
  Alcotest.(check int) "gcd 0 0" 0 (Rat.gcd 0 0);
  Alcotest.(check int) "gcd 0 5" 5 (Rat.gcd 0 5);
  Alcotest.(check int) "lcm 4 6" 12 (Rat.lcm 4 6)

let test_overflow () =
  Alcotest.check_raises "mul overflow" Rat.Overflow (fun () ->
      ignore (Rat.mul (Rat.of_int max_int) (Rat.of_int 2)))

(* [compare] must stay total near [max_int]: the naive cross-multiplication
   n1*d2 vs n2*d1 overflows native ints for every pair below. *)
let test_compare_huge () =
  let m = max_int in
  Alcotest.(check int) "(m-1)/m > (m-2)/(m-1)" 1
    (Rat.compare (Rat.make (m - 1) m) (Rat.make (m - 2) (m - 1)));
  Alcotest.(check int) "(m-2)/(m-1) < (m-1)/m" (-1)
    (Rat.compare (Rat.make (m - 2) (m - 1)) (Rat.make (m - 1) m));
  Alcotest.(check int) "1/m < 1/(m-1)" (-1)
    (Rat.compare (Rat.make 1 m) (Rat.make 1 (m - 1)));
  Alcotest.(check int) "m/1 > (m-1)/1" 1
    (Rat.compare (Rat.of_int m) (Rat.of_int (m - 1)));
  Alcotest.(check int) "-(m-1)/m < -(m-2)/(m-1)" (-1)
    (Rat.compare (Rat.make (-(m - 1)) m) (Rat.make (-(m - 2)) (m - 1)));
  Alcotest.(check int) "-x < y" (-1)
    (Rat.compare (Rat.make (-(m - 1)) m) (Rat.make (m - 2) (m - 1)));
  Alcotest.(check int) "equal huge" 0
    (Rat.compare (Rat.make (m - 1) m) (Rat.make (m - 1) m));
  Alcotest.(check int) "huge vs half" 1
    (Rat.compare (Rat.make (m - 1) m) (Rat.make 1 2));
  Alcotest.(check int) "m/(m-1) > (m-1)/m" 1
    (Rat.compare (Rat.make m (m - 1)) (Rat.make (m - 1) m))

let test_pp () =
  Alcotest.(check string) "int render" "5" (Rat.to_string (Rat.of_int 5));
  Alcotest.(check string) "frac render" "-3/2" (Rat.to_string (Rat.make 3 (-2)))

(* Property tests: field laws on small rationals. *)

let gen_rat =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-1000) 1000)
      (int_range 1 50))

let print_rat = Rat.to_string

let prop_add_comm =
  QCheck2.Test.make ~name:"rat add commutative" ~count:500
    QCheck2.Gen.(pair gen_rat gen_rat)
    ~print:QCheck2.Print.(pair print_rat print_rat)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_add_assoc =
  QCheck2.Test.make ~name:"rat add associative" ~count:500
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    ~print:QCheck2.Print.(triple print_rat print_rat print_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)))

let prop_mul_distrib =
  QCheck2.Test.make ~name:"rat mul distributes over add" ~count:500
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    ~print:QCheck2.Print.(triple print_rat print_rat print_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_inv =
  QCheck2.Test.make ~name:"rat x * 1/x = 1" ~count:500 gen_rat ~print:print_rat
    (fun a ->
      QCheck2.assume (not (Rat.equal a Rat.zero));
      Rat.equal (Rat.mul a (Rat.inv a)) Rat.one)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"floor <= x <= ceil, within 1" ~count:500 gen_rat
    ~print:print_rat (fun a ->
      let f = Rat.floor a and c = Rat.ceil a in
      Rat.(of_int f <= a)
      && Rat.(a <= of_int c)
      && c - f <= 1
      && (Rat.is_integer a = (f = c)))

let prop_compare_total =
  QCheck2.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck2.Gen.(pair gen_rat gen_rat)
    ~print:QCheck2.Print.(pair print_rat print_rat)
    (fun (a, b) -> Rat.compare a b = -Rat.compare b a)

let prop_compare_sub =
  QCheck2.Test.make ~name:"compare agrees with sign of difference" ~count:500
    QCheck2.Gen.(pair gen_rat gen_rat)
    ~print:QCheck2.Print.(pair print_rat print_rat)
    (fun (a, b) -> Rat.compare a b = Rat.sign (Rat.sub a b))

let suite =
  [
    Alcotest.test_case "make normalizes" `Quick test_make_normalizes;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
    Alcotest.test_case "to_int" `Quick test_to_int;
    Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
    Alcotest.test_case "overflow" `Quick test_overflow;
    Alcotest.test_case "compare near max_int" `Quick test_compare_huge;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_add_assoc;
    QCheck_alcotest.to_alcotest prop_mul_distrib;
    QCheck_alcotest.to_alcotest prop_inv;
    QCheck_alcotest.to_alcotest prop_floor_ceil;
    QCheck_alcotest.to_alcotest prop_compare_total;
    QCheck_alcotest.to_alcotest prop_compare_sub;
  ]
