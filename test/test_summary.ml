(* Unit tests of the interprocedural summary machinery: merging, capping,
   formal-to-actual translation variants. *)

open Ipa

let setup src =
  let r = Engine.analyze_sources [ ("t.f", src) ] in
  (r, r.Analyze.r_module)

(* effects propagated into a procedure's table from its call sites (the
   exported summary drops caller-local arrays, which is where most of these
   land) *)
let propagated r proc mode =
  let table =
    List.find (fun t -> t.Analyze.t_proc = proc) r.Analyze.r_tables
  in
  List.filter
    (fun (a : Collect.access) ->
      a.Collect.ac_via <> None && Regions.Mode.equal a.Collect.ac_mode mode)
    table.Analyze.t_accesses

let region_triplets region =
  List.map
    (fun d ->
      Format.asprintf "%a:%a:%a" Regions.Region.pp_bound d.Regions.Region.lb
        Regions.Region.pp_bound d.Regions.Region.ub Regions.Region.pp_stride
        d.Regions.Region.stride)
    (Regions.Region.dim_list region)

let test_scalar_substitution_through_call () =
  (* callee's region depends on its scalar formal; the caller passes a
     constant: the translated region must be concrete *)
  let r, _m =
    setup
      {|      program t
      integer a(1:64)
      call fill(a, 10)
      end

      subroutine fill(b, n)
      integer b(1:64)
      integer n, i
      do i = 1, n
        b(i) = i
      end do
      end
|}
  in
  match propagated r "t" Regions.Mode.DEF with
  | [] -> Alcotest.fail "no DEF propagated to main"
  | a :: _ ->
    (* internal zero-based: 1..10 -> 0..9 *)
    Alcotest.(check (list string)) "constant after substitution"
      [ "0:9:1" ]
      (region_triplets a.Collect.ac_region)

let test_nested_translation () =
  (* two levels: grandparent sees the grandchild's region through the
     middle procedure, with both substitutions composed *)
  let r, _m =
    setup
      {|      program t
      integer a(1:64)
      call mid(a, 5)
      end

      subroutine mid(b, k)
      integer b(1:64)
      integer k
      call leaf(b, k + 2)
      end

      subroutine leaf(c, n)
      integer c(1:64)
      integer n, i
      do i = 1, n
        c(i) = i
      end do
      end
|}
  in
  match propagated r "t" Regions.Mode.DEF with
  | [ a ] ->
    (* n = k + 2 = 7: region 1..7 -> internal 0..6 *)
    Alcotest.(check (list string)) "composed substitution" [ "0:6:1" ]
      (region_triplets a.Collect.ac_region)
  | l -> Alcotest.failf "expected one DEF entry, got %d" (List.length l)

let test_element_arg_falls_back_to_whole () =
  (* Fortran sequence association: passing a(5) as an array argument makes
     the callee's view unanalyzable -> whole array, inexact *)
  let r, _m =
    setup
      {|      program t
      integer a(1:64)
      call fill(a(5))
      end

      subroutine fill(b)
      integer b(1:8)
      integer i
      do i = 1, 8
        b(i) = i
      end do
      end
|}
  in
  match propagated r "t" Regions.Mode.DEF with
  | [ a ] ->
    Alcotest.(check (list string)) "whole array" [ "0:63:1" ]
      (region_triplets a.Collect.ac_region);
    Alcotest.(check bool) "inexact" false
      (Regions.Region.is_exact a.Collect.ac_region)
  | l -> Alcotest.failf "expected one DEF entry, got %d" (List.length l)

let test_rank_mismatch_falls_back () =
  (* 1-D formal onto 2-D actual: whole-array fallback *)
  let r, _m =
    setup
      {|      program t
      integer a(1:8, 1:8)
      call fill(a)
      end

      subroutine fill(b)
      integer b(1:64)
      integer i
      do i = 1, 8
        b(i) = i
      end do
      end
|}
  in
  match propagated r "t" Regions.Mode.DEF with
  | [ a ] ->
    Alcotest.(check (list string)) "2-D whole" [ "0:7:1"; "0:7:1" ]
      (region_triplets a.Collect.ac_region)
  | l -> Alcotest.failf "expected one DEF entry, got %d" (List.length l)

let test_merge_and_cap () =
  (* identical display regions merge; distinct ones accumulate up to the
     cap, then collapse into a union *)
  let i = Linear.Var.fresh ~name:"i" Linear.Var.Ivar in
  let mk lo hi =
    Regions.Region.of_subscripts ~extents:[ Some 256 ]
      ~loops:
        [
          {
            Regions.Region.lc_var = i;
            lc_lo = Regions.Affine.Affine (Linear.Expr.of_int lo);
            lc_hi = Regions.Affine.Affine (Linear.Expr.of_int hi);
            lc_step = Some 1;
          };
        ]
      [ Regions.Affine.Affine (Linear.Expr.var i) ]
  in
  let entry lo hi =
    {
      Summary.e_key = Summary.Kformal 0;
      e_mode = Regions.Mode.DEF;
      e_region = mk lo hi;
      e_count = 1;
    }
  in
  (* same region twice: merged with count 2 *)
  let s = Summary.add_entry (Summary.add_entry [] (entry 0 7)) (entry 0 7) in
  (match s with
  | [ e ] -> Alcotest.(check int) "merged count" 2 e.Summary.e_count
  | _ -> Alcotest.fail "expected one merged entry");
  (* exceed the cap with distinct regions *)
  let s =
    List.fold_left
      (fun acc k -> Summary.add_entry acc (entry (10 * k) ((10 * k) + 5)))
      []
      (List.init (Summary.max_regions_per_key + 3) Fun.id)
  in
  Alcotest.(check bool) "capped" true
    (List.length s <= Summary.max_regions_per_key + 1)

let suite =
  [
    Alcotest.test_case "scalar substitution" `Quick
      test_scalar_substitution_through_call;
    Alcotest.test_case "nested translation" `Quick test_nested_translation;
    Alcotest.test_case "element arg fallback" `Quick
      test_element_arg_falls_back_to_whole;
    Alcotest.test_case "rank mismatch fallback" `Quick
      test_rank_mismatch_falls_back;
    Alcotest.test_case "merge and cap" `Quick test_merge_and_cap;
  ]
