(* The PGAS extension (the paper's future work): coarray declarations,
   remote accesses, RUSE/RDEF rows, and single-image execution. *)

let result = lazy (Engine.analyze_sources [ Corpus.Small.caf_f ])

let rows pred = List.filter pred (Lazy.force result).Ipa.Analyze.r_rows

let test_parse_codimension () =
  let u = Lang.Parser_f.parse ~file:"caf.f" (snd Corpus.Small.caf_f) in
  let p = List.hd u.Lang.Ast.unit_procs in
  let halo =
    List.find (fun d -> d.Lang.Ast.decl_name = "halo") p.Lang.Ast.proc_decls
  in
  Alcotest.(check bool) "halo is a coarray" true halo.Lang.Ast.decl_coarray;
  let i = List.find (fun d -> d.Lang.Ast.decl_name = "i") p.Lang.Ast.proc_decls in
  Alcotest.(check bool) "i is not" false i.Lang.Ast.decl_coarray

let test_remote_write_rows () =
  let rdefs = rows (fun r -> r.Rgnfile.Row.mode = "RDEF") in
  match rdefs with
  | [ r ] ->
    Alcotest.(check string) "halo" "halo" r.Rgnfile.Row.array;
    Alcotest.(check string) "region 1:8" "1" r.Rgnfile.Row.lb;
    Alcotest.(check string) "region 1:8" "8" r.Rgnfile.Row.ub
  | l -> Alcotest.failf "expected one RDEF row, got %d" (List.length l)

let test_remote_read_rows () =
  let ruses = rows (fun r -> r.Rgnfile.Row.mode = "RUSE") in
  match ruses with
  | [ r ] ->
    Alcotest.(check string) "work" "work" r.Rgnfile.Row.array;
    Alcotest.(check string) "region 1:8" "1" r.Rgnfile.Row.lb;
    Alcotest.(check string) "region 1:8" "8" r.Rgnfile.Row.ub
  | l -> Alcotest.failf "expected one RUSE row, got %d" (List.length l)

let test_local_rows_unaffected () =
  (* work is also DEFined locally: 1:32 and 25:32 *)
  let defs =
    rows (fun r -> r.Rgnfile.Row.array = "work" && r.Rgnfile.Row.mode = "DEF")
  in
  Alcotest.(check int) "two local DEF rows" 2 (List.length defs)

let test_single_image_execution () =
  let m = (Lazy.force result).Ipa.Analyze.r_module in
  let o = Interp.run m in
  (* this_image() = num_images() = 1: the remote branches do not run *)
  Alcotest.(check string) "output" "1\n" o.Interp.out_text

let test_remote_to_other_image_traps () =
  let src =
    ( "t.f",
      {|      program t
      double precision x(1:4)[*]
      x(1)[2] = 1.0d0
      end
|} )
  in
  let m = Whirl.Lower.lower (Lang.Frontend.load ~files:[ src ]) in
  try
    ignore (Interp.run m);
    Alcotest.fail "expected a runtime error for image 2"
  with Interp.Runtime_error (msg, _) ->
    Alcotest.(check bool) "mentions image" true
      (String.length msg > 0)

let test_non_coarray_rejected () =
  let src =
    ( "t.f",
      {|      program t
      double precision x(1:4)
      x(1)[2] = 1.0d0
      end
|} )
  in
  try
    ignore (Lang.Frontend.load ~files:[ src ]);
    Alcotest.fail "expected a sema error"
  with Lang.Diag.Frontend_error d ->
    Alcotest.(check string) "message" "x is not a coarray" d.Lang.Diag.message

let test_whirl2src_renders_remote () =
  let m = (Lazy.force result).Ipa.Analyze.r_module in
  let pu = Option.get (Whirl.Ir.find_pu m "cafhalo") in
  let s = Whirl.Whirl2src.pu_to_string m pu in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "remote write rendered" true
    (contains "halo(i)[(me + 1)]")

let test_dragon_shows_remote_modes () =
  let r = Lazy.force result in
  let p =
    Dragon.Project.make ~name:"caf" ~dgn:r.Ipa.Analyze.r_dgn
      ~rows:r.Ipa.Analyze.r_rows ~sources:[ Corpus.Small.caf_f ] ()
  in
  let out = Dragon.Table.render p in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "RDEF visible" true (contains "RDEF");
  Alcotest.(check bool) "RUSE visible" true (contains "RUSE")

let suite =
  [
    Alcotest.test_case "parse codimension" `Quick test_parse_codimension;
    Alcotest.test_case "remote write rows (RDEF)" `Quick test_remote_write_rows;
    Alcotest.test_case "remote read rows (RUSE)" `Quick test_remote_read_rows;
    Alcotest.test_case "local rows unaffected" `Quick test_local_rows_unaffected;
    Alcotest.test_case "single-image execution" `Quick test_single_image_execution;
    Alcotest.test_case "remote to image 2 traps" `Quick test_remote_to_other_image_traps;
    Alcotest.test_case "non-coarray rejected" `Quick test_non_coarray_rejected;
    Alcotest.test_case "whirl2src renders remote" `Quick test_whirl2src_renders_remote;
    Alcotest.test_case "Dragon shows RDEF/RUSE" `Quick test_dragon_shows_remote_modes;
  ]
