(* Randomized whole-pipeline soundness: generate random affine loop-nest
   programs, then check

   1. every element the interpreter actually touches lies inside some static
      region of the same (array, mode) — the core soundness claim of the
      region analysis;
   2. WOPT (constant propagation + DCE) preserves program output;
   3. the analysis is deterministic.

   The generator keeps subscripts within declared bounds by construction so
   runs never trap. *)

open QCheck2

(* ------------------------------------------------------------------ *)
(* Program generator *)

type sub = Svar of string * int  (* var + offset *) | Srev of string (* 21 - var *)

let sub_str = function
  | Svar (v, 0) -> v
  | Svar (v, c) -> Printf.sprintf "%s + %d" v c
  | Srev v -> Printf.sprintf "21 - %s" v

type stmt =
  | Loop of string * int * int * int * stmt list  (* var, lo, hi, step *)
  | Store1 of string * sub * string  (* arr, sub, rhs-ish *)
  | Store2 of sub * sub * string     (* c(s1, s2) = ... *)
  | Accum of string * sub            (* s = s + arr(sub) *)
  | Cond of string * int * stmt list

let rec render indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Loop (v, lo, hi, step, body) ->
    let head =
      if step = 1 then Printf.sprintf "%sdo %s = %d, %d\n" pad v lo hi
      else Printf.sprintf "%sdo %s = %d, %d, %d\n" pad v lo hi step
    in
    head
    ^ String.concat "" (List.map (render (indent + 2)) body)
    ^ Printf.sprintf "%send do\n" pad
  | Store1 (arr, sub, rhs) ->
    Printf.sprintf "%s%s(%s) = %s\n" pad arr (sub_str sub) rhs
  | Store2 (s1, s2, rhs) ->
    Printf.sprintf "%sc(%s, %s) = %s\n" pad (sub_str s1) (sub_str s2) rhs
  | Accum (arr, sub) ->
    Printf.sprintf "%ss = s + %s(%s)\n" pad arr (sub_str sub)
  | Cond (v, k, body) ->
    Printf.sprintf "%sif (mod(%s, %d) .eq. 0) then\n" pad v (k + 1)
    ^ String.concat "" (List.map (render (indent + 2)) body)
    ^ Printf.sprintf "%send if\n" pad

let program stmts =
  "      program fuzz\n" ^ "      integer a(1:24), b(1:24), c(1:24, 1:24)\n"
  ^ "      integer s, i, j, k\n" ^ "      s = 0\n"
  ^ String.concat "" (List.map (render 6) stmts)
  ^ "      print *, s\n" ^ "      end\n"

(* subscripts valid for any loop var ranging within [1, 20] *)
let gen_sub vars =
  Gen.(
    let* v = oneofl vars in
    oneof
      [
        (let* c = int_range 0 4 in
         return (Svar (v, c)));
        return (Srev v);
      ])

let gen_rhs vars =
  Gen.(
    oneof
      [
        map string_of_int (int_range 0 9);
        return "s";
        (let* v = oneofl vars in
         return v);
        (let* arr = oneofl [ "a"; "b" ] in
         let* s = gen_sub vars in
         return (Printf.sprintf "%s(%s) + 1" arr (sub_str s)));
      ])

(* NOTE: QCheck2's [oneofl] raises on an empty list at generator
   construction time, so sub-generators that need loop variables are only
   built when [vars] is non-empty. *)
let rec gen_stmt depth vars =
  Gen.(
    let unused =
      List.filter (fun v -> not (List.mem v vars)) [ "i"; "j"; "k" ]
    in
    let loop_gen () =
      let* v = oneofl unused in
      let* lo = int_range 1 4 in
      let* len = int_range 0 12 in
      let* step = oneofl [ 1; 1; 2; 3 ] in
      let hi = min 20 (lo + len) in
      let* body = list_size (int_range 1 3) (gen_stmt (depth - 1) (v :: vars)) in
      return (Loop (v, lo, hi, step, body))
    in
    if vars = [] then loop_gen ()
    else
      let leaf =
        oneof
          [
            (let* arr = oneofl [ "a"; "b" ] in
             let* s = gen_sub vars in
             let* rhs = gen_rhs vars in
             return (Store1 (arr, s, rhs)));
            (let* s1 = gen_sub vars in
             let* s2 = gen_sub vars in
             let* rhs = gen_rhs vars in
             return (Store2 (s1, s2, rhs)));
            (let* arr = oneofl [ "a"; "b" ] in
             let* s = gen_sub vars in
             return (Accum (arr, s)));
          ]
      in
      if depth = 0 || unused = [] then leaf
      else
        let cond_gen =
          let* v = oneofl vars in
          let* k = int_range 1 3 in
          let* body = list_size (int_range 1 2) (gen_stmt (depth - 1) vars) in
          return (Cond (v, k, body))
        in
        frequency [ (2, leaf); (3, loop_gen ()); (1, cond_gen) ])

let gen_program =
  Gen.(
    let* top = list_size (int_range 1 4) (gen_stmt 2 []) in
    (* top-level statements must not reference loop vars: wrap free leaves in
       a loop when they mention vars.  Easier: only allow loops at top. *)
    let top =
      List.map
        (function
          | Loop _ as l -> l
          | other -> Loop ("i", 1, 8, 1, [ other ]))
        top
    in
    return (program top))

(* ------------------------------------------------------------------ *)

let prop_static_covers_dynamic =
  Test.make ~name:"static regions cover dynamic accesses" ~count:60
    gen_program ~print:(fun s -> s)
    (fun src ->
      let result = Engine.analyze_sources [ ("fuzz.f", src) ] in
      let m = result.Ipa.Analyze.r_module in
      (* static accesses by (name, is_write) *)
      let static =
        List.concat_map
          (fun (_, (info : Ipa.Collect.pu_info)) ->
            List.filter_map
              (fun (a : Ipa.Collect.access) ->
                let name =
                  Whirl.Ir.st_name m info.Ipa.Collect.p_pu a.Ipa.Collect.ac_st
                in
                match a.Ipa.Collect.ac_mode with
                | Regions.Mode.USE -> Some ((name, false), a.Ipa.Collect.ac_region)
                | Regions.Mode.DEF -> Some ((name, true), a.Ipa.Collect.ac_region)
                | _ -> None)
              info.Ipa.Collect.p_accesses)
          result.Ipa.Analyze.r_infos
      in
      let failures = ref 0 in
      let events = ref 0 in
      let _ =
        Interp.run
          ~observer:(fun ev ->
            incr events;
            if !events <= 20_000 then begin
              let key = (ev.Interp.ev_array, ev.Interp.ev_write) in
              let covered =
                List.exists
                  (fun (k, region) ->
                    k = key
                    && Regions.Region.contains_point region ev.Interp.ev_coords)
                  static
              in
              if not covered then incr failures
            end)
          m
      in
      !failures = 0)

let prop_wopt_preserves_output =
  Test.make ~name:"wopt preserves output" ~count:60 gen_program
    ~print:(fun s -> s)
    (fun src ->
      let lower () =
        Whirl.Lower.lower (Lang.Frontend.load ~files:[ ("fuzz.f", src) ])
      in
      let before = (Interp.run (lower ())).Interp.out_text in
      let m1, _ = Wopt.Const_prop.run (lower ()) in
      let m2, _ = Wopt.Dce.run m1 in
      let after = (Interp.run m2).Interp.out_text in
      String.equal before after)

let prop_analysis_deterministic =
  Test.make ~name:"analysis deterministic" ~count:30 gen_program
    ~print:(fun s -> s)
    (fun src ->
      let rows () =
        (Engine.analyze_sources [ ("fuzz.f", src) ]).Ipa.Analyze.r_rows
        |> List.map Rgnfile.Row.to_fields
      in
      rows () = rows ())

let prop_rgn_roundtrip =
  Test.make ~name:".rgn round-trips on random programs" ~count:40 gen_program
    ~print:(fun s -> s)
    (fun src ->
      let rows =
        (Engine.analyze_sources [ ("fuzz.f", src) ]).Ipa.Analyze.r_rows
      in
      match Rgnfile.Files.parse_rgn (Rgnfile.Files.write_rgn rows) with
      | Ok rows' ->
        List.length rows = List.length rows'
        && List.for_all2 Rgnfile.Row.equal rows rows'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Fault tolerance: whatever fault spec is installed, [Pipeline.run] under
   --keep-going terminates with an exit code — no exception escapes any
   recovery layer. *)

let gen_fault_spec =
  Gen.(
    let* site =
      oneofl
        [ "store.read"; "store.write"; "store.marshal"; "pool"; "solver"; "all" ]
    in
    let* rate = oneofl [ 0.0; 0.1; 0.5; 1.0 ] in
    let* seed = int_range 0 99 in
    return (Printf.sprintf "%s:%g:%d" site rate seed))

(* the pipeline prints its reports to stdout; silence them without losing
   the QCheck progress output (stderr) *)
let with_quiet_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let prop_faults_never_escape =
  Test.make ~name:"injected faults never escape Pipeline.run" ~count:25
    Gen.(pair gen_program gen_fault_spec)
    ~print:(fun (src, spec) -> spec ^ "\n" ^ src)
    (fun (src, spec) ->
      let tmp = Filename.temp_file "fuzz" ".f" in
      let oc = open_out_bin tmp in
      output_string oc src;
      close_out oc;
      Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
      let cfg =
        Pipeline.make ~paths:[ tmp ] ~keep_going:true ~fault_specs:[ spec ]
          ~cache_dir:(Test_engine.fresh_dir ()) ~jobs:2 ()
      in
      match (with_quiet_stdout (fun () -> Pipeline.run cfg)).Pipeline.r_code with
      | 0 | 1 -> true
      | code ->
        Printf.eprintf "Pipeline.run returned %d under %s\n" code spec;
        false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rgn_roundtrip;
    QCheck_alcotest.to_alcotest prop_static_covers_dynamic;
    QCheck_alcotest.to_alcotest prop_wopt_preserves_output;
    QCheck_alcotest.to_alcotest prop_analysis_deterministic;
    QCheck_alcotest.to_alcotest prop_faults_never_escape;
  ]
