(* End-to-end CLI tests: the uhc and dragon binaries as processes, through
   the on-disk project workflow of the paper's Section V-B. *)

let exe name =
  (* tests run from _build/default/test; the binaries are siblings *)
  Filename.concat (Filename.concat ".." "bin") (name ^ ".exe")

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let temp_dir () =
  let d = Filename.temp_file "cli" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let binaries_present () =
  Sys.file_exists (exe "uhc") && Sys.file_exists (exe "dragon")

let test_uhc_project_workflow () =
  if not (binaries_present ()) then ()
  else begin
    let dir = temp_dir () in
    let status, out =
      run_capture
        (Printf.sprintf "%s --corpus matrix -o %s -p matrix" (exe "uhc") dir)
    in
    Alcotest.(check bool) "uhc exits 0" true (status = Unix.WEXITED 0);
    Alcotest.(check bool) "reports rows" true (contains out "array-region rows");
    Alcotest.(check bool) ".rgn written" true
      (Sys.file_exists (Filename.concat dir "matrix.rgn"));
    Alcotest.(check bool) ".dgn written" true
      (Sys.file_exists (Filename.concat dir "matrix.dgn"));
    Alcotest.(check bool) ".cfg written" true
      (Sys.file_exists (Filename.concat dir "matrix.cfg"));
    Alcotest.(check bool) "source copied" true
      (Sys.file_exists (Filename.concat dir "matrix.c"));
    (* dragon over the project *)
    let status, out =
      run_capture
        (Printf.sprintf "%s table -d %s -p matrix --find aarr" (exe "dragon") dir)
    in
    Alcotest.(check bool) "dragon exits 0" true (status = Unix.WEXITED 0);
    Alcotest.(check bool) "find reports" true (contains out "5 row(s)");
    let _, out =
      run_capture (Printf.sprintf "%s advise -d %s -p matrix" (exe "dragon") dir)
    in
    Alcotest.(check bool) "advisor output" true (contains out "copyin");
    let _, out =
      run_capture
        (Printf.sprintf "%s callgraph -d %s -p matrix --dot" (exe "dragon") dir)
    in
    Alcotest.(check bool) "dot graph" true (contains out "digraph")
  end

let test_uhc_error_handling () =
  if not (binaries_present ()) then ()
  else begin
    let status, _ = run_capture (exe "uhc") in
    Alcotest.(check bool) "no inputs: nonzero exit" true
      (status <> Unix.WEXITED 0);
    let bad = Filename.temp_file "bad" ".f" in
    let oc = open_out bad in
    output_string oc "      program broken\n      do i = \n      end\n";
    close_out oc;
    let status, out = run_capture (Printf.sprintf "%s %s" (exe "uhc") bad) in
    Alcotest.(check bool) "syntax error: exit 1" true (status = Unix.WEXITED 1);
    Alcotest.(check bool) "diagnostic printed" true (contains out "error")
  end

let test_dragon_missing_project () =
  if not (binaries_present ()) then ()
  else begin
    let dir = temp_dir () in
    let status, out =
      run_capture (Printf.sprintf "%s table -d %s -p nope" (exe "dragon") dir)
    in
    Alcotest.(check bool) "exit 1" true (status = Unix.WEXITED 1);
    Alcotest.(check bool) "mentions missing" true (contains out "missing")
  end

let test_uhc_run_flag () =
  if not (binaries_present ()) then ()
  else begin
    let status, out =
      run_capture (Printf.sprintf "%s --corpus matrix --run" (exe "uhc"))
    in
    Alcotest.(check bool) "exit 0" true (status = Unix.WEXITED 0);
    Alcotest.(check bool) "program output" true
      (contains out "statements executed")
  end

let suite =
  [
    Alcotest.test_case "uhc project workflow" `Quick test_uhc_project_workflow;
    Alcotest.test_case "uhc error handling" `Quick test_uhc_error_handling;
    Alcotest.test_case "dragon missing project" `Quick test_dragon_missing_project;
    Alcotest.test_case "uhc --run" `Quick test_uhc_run_flag;
  ]
