(* Dependence tests and the loop-nest transformations built on them. *)

let analyze files = Engine.analyze_sources files

let find_loops pu =
  let loops = ref [] in
  Whirl.Wn.preorder
    (fun w ->
      if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP then loops := w :: !loops)
    pu.Whirl.Ir.pu_body;
  List.rev !loops

let top_loops pu =
  (* loops that are direct statements of the function body block *)
  let body = Whirl.Wn.kid pu.Whirl.Ir.pu_body 0 in
  Array.to_list body.Whirl.Wn.kids
  |> List.filter (fun w -> w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP)

let setup src proc =
  let result = analyze [ ("t.f", src) ] in
  let m = result.Ipa.Analyze.r_module in
  let pu = Option.get (Whirl.Ir.find_pu m proc) in
  (result, m, pu)

(* ------------------------------------------------------------------ *)
(* fusion legality *)

let legal_fusion_src =
  {|      program t
      integer a(1:64), b(1:64)
      integer i
      do i = 1, 64
        a(i) = i
      end do
      do i = 1, 64
        b(i) = a(i - 1 + 1)
      end do
      end
|}

let illegal_fusion_src =
  {|      program t
      integer a(1:64), b(1:64)
      integer i
      do i = 1, 63
        a(i) = i
      end do
      do i = 1, 63
        b(i) = a(i + 1)
      end do
      end
|}

let test_fusion_legal () =
  let result, m, pu = setup legal_fusion_src "t" in
  match top_loops pu with
  | [ l1; l2 ] ->
    Alcotest.(check bool) "headers compatible" true
      (Ipa.Lno.headers_compatible l1 l2);
    Alcotest.(check (list string)) "no preventing deps" []
      (Ipa.Deps.fusion_preventing m result.Ipa.Analyze.r_summaries pu
         ~first:l1 ~second:l2)
  | _ -> Alcotest.fail "expected two top-level loops"

let test_fusion_illegal () =
  let result, m, pu = setup illegal_fusion_src "t" in
  match top_loops pu with
  | [ l1; l2 ] ->
    Alcotest.(check (list string)) "a prevents fusion" [ "a" ]
      (Ipa.Deps.fusion_preventing m result.Ipa.Analyze.r_summaries pu
         ~first:l1 ~second:l2)
  | _ -> Alcotest.fail "expected two top-level loops"

let test_fuse_pu_transforms () =
  let result, m, pu = setup legal_fusion_src "t" in
  let pu', n = Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu in
  Alcotest.(check int) "one fusion" 1 n;
  Alcotest.(check int) "one loop remains" 1 (List.length (find_loops pu'));
  (* and the fused program computes the same thing *)
  let m' = { m with Whirl.Ir.m_pus = [ pu' ] } in
  let before = Interp.run m and after = Interp.run m' in
  Alcotest.(check string) "same output" before.Interp.out_text
    after.Interp.out_text

let test_fuse_pu_refuses_illegal () =
  let result, m, pu = setup illegal_fusion_src "t" in
  let _, n = Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu in
  Alcotest.(check int) "no fusion" 0 n

let test_fuse_incompatible_headers () =
  let src =
    {|      program t
      integer a(1:64)
      integer i
      do i = 1, 32
        a(i) = i
      end do
      do i = 1, 64
        a(i) = a(i) + 1
      end do
      end
|}
  in
  let result, m, pu = setup src "t" in
  let _, n = Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu in
  Alcotest.(check int) "different bounds: no fusion" 0 n

(* ------------------------------------------------------------------ *)
(* loop dependences *)

let test_loop_dependences () =
  let src =
    {|      program t
      integer a(1:64)
      integer i
      do i = 2, 63
        a(i) = a(i - 1) + a(i + 1)
      end do
      end
|}
  in
  let result, m, pu = setup src "t" in
  match find_loops pu with
  | [ loop ] ->
    let deps =
      Ipa.Deps.loop_dependences m result.Ipa.Analyze.r_summaries pu loop
    in
    let carried_kinds =
      List.filter_map
        (fun d ->
          if d.Ipa.Deps.dep_carried then Some d.Ipa.Deps.dep_kind else None)
        deps
      |> List.sort_uniq compare
    in
    (* a(i-1) read after write: flow; a(i+1) read before write: anti *)
    Alcotest.(check bool) "flow carried" true
      (List.mem Ipa.Deps.Flow carried_kinds);
    Alcotest.(check bool) "anti carried" true
      (List.mem Ipa.Deps.Anti carried_kinds)
  | _ -> Alcotest.fail "expected one loop"

let test_no_dependence_parallel_loop () =
  let src =
    {|      program t
      integer a(1:64), b(1:64)
      integer i
      do i = 1, 64
        a(i) = b(i)
      end do
      end
|}
  in
  let result, m, pu = setup src "t" in
  match find_loops pu with
  | [ loop ] ->
    let deps =
      Ipa.Deps.loop_dependences m result.Ipa.Analyze.r_summaries pu loop
    in
    Alcotest.(check bool) "no carried dependence" true
      (List.for_all (fun d -> not d.Ipa.Deps.dep_carried) deps)
  | _ -> Alcotest.fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* interchange *)

let interchange_illegal_src =
  {|      program t
      integer a(1:64, 1:64)
      integer i, j
      do i = 2, 63
        do j = 2, 63
          a(i, j) = a(i - 1, j + 1)
        end do
      end do
      end
|}

let interchange_legal_src =
  {|      program t
      integer a(1:64, 1:64)
      integer i, j
      do i = 2, 63
        do j = 2, 63
          a(i, j) = a(i - 1, j)
        end do
      end do
      end
|}

let test_interchange_illegal () =
  let result, m, pu = setup interchange_illegal_src "t" in
  match top_loops pu with
  | [ outer ] ->
    let inner = Option.get (Ipa.Lno.is_perfect_nest outer) in
    Alcotest.(check (list string)) "(<,>) dependence found" [ "a" ]
      (Ipa.Deps.interchange_preventing m result.Ipa.Analyze.r_summaries pu
         ~outer ~inner)
  | _ -> Alcotest.fail "expected one top loop"

let test_interchange_legal_and_transform () =
  let result, m, pu = setup interchange_legal_src "t" in
  match top_loops pu with
  | [ outer ] ->
    let inner = Option.get (Ipa.Lno.is_perfect_nest outer) in
    Alcotest.(check (list string)) "legal" []
      (Ipa.Deps.interchange_preventing m result.Ipa.Analyze.r_summaries pu
         ~outer ~inner);
    let pu', n =
      Ipa.Lno.interchange_pu m result.Ipa.Analyze.r_summaries pu
        ~want:(fun ~outer_ivar ~inner_ivar ->
          outer_ivar = "i" && inner_ivar = "j")
    in
    Alcotest.(check int) "one interchange" 1 n;
    (* the outer loop's ivar is now j *)
    (match top_loops pu' with
    | [ new_outer ] ->
      let name =
        Whirl.Ir.st_name m pu' (Whirl.Wn.kid new_outer 0).Whirl.Wn.st_idx
      in
      Alcotest.(check string) "j outermost" "j" name
    | _ -> Alcotest.fail "expected one top loop after interchange");
    (* semantics preserved *)
    let m' = { m with Whirl.Ir.m_pus = [ pu' ] } in
    let before = Interp.run m and after = Interp.run m' in
    Alcotest.(check string) "same output" before.Interp.out_text
      after.Interp.out_text
  | _ -> Alcotest.fail "expected one top loop"

let test_interchange_pu_respects_legality () =
  let result, m, pu = setup interchange_illegal_src "t" in
  let _, n =
    Ipa.Lno.interchange_pu m result.Ipa.Analyze.r_summaries pu
      ~want:(fun ~outer_ivar:_ ~inner_ivar:_ -> true)
  in
  Alcotest.(check int) "illegal nest untouched" 0 n

let test_negative_step_dependences_sound () =
  (* regression: a downward loop must not get an empty iteration space in
     the dependence tests (lo/hi inversion) *)
  let src =
    {|      program t
      integer a(1:64)
      integer i
      do i = 63, 2, -1
        a(i) = a(i - 1) + 1
      end do
      end
|}
  in
  let result, m, pu = setup src "t" in
  (match find_loops pu with
  | [ loop ] ->
    let v = Ipa.Parallel.loop_parallel m result.Ipa.Analyze.r_summaries pu loop in
    Alcotest.(check bool) "downward loop with carried dep NOT parallel" false
      v.Ipa.Parallel.lv_parallel
  | _ -> Alcotest.fail "expected one loop");
  (* and two downward loops with a backward dependence must not fuse *)
  let src2 =
    {|      program t
      integer a(1:64), b(1:64)
      integer i
      do i = 63, 1, -1
        a(i) = i
      end do
      do i = 63, 1, -1
        b(i) = a(i + 1)
      end do
      end
|}
  in
  let result, m, pu = setup src2 "t" in
  let _, n = Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu in
  Alcotest.(check int) "illegal downward fusion refused" 0 n;
  (* a genuinely independent downward loop still parallelizes *)
  let src3 =
    {|      program t
      integer a(1:64)
      integer i
      do i = 64, 1, -1
        a(i) = i
      end do
      end
|}
  in
  let result, m, pu = setup src3 "t" in
  match find_loops pu with
  | [ loop ] ->
    let v = Ipa.Parallel.loop_parallel m result.Ipa.Analyze.r_summaries pu loop in
    Alcotest.(check bool) "independent downward loop parallel" true
      v.Ipa.Parallel.lv_parallel
  | _ -> Alcotest.fail "expected one loop"

let locality_bad_src =
  {|      program loc
      double precision g(1:64, 1:64)
      integer i, j
      do j = 1, 64
        do i = 1, 64
          g(j, i) = i + j
        end do
      end do
      print *, g(1, 1)
      end
|}

let test_locality_suggestion () =
  let result, m, pu = setup locality_bad_src "loc" in
  (match Ipa.Lno.locality_suggestions m result.Ipa.Analyze.r_summaries pu with
  | [ s ] ->
    Alcotest.(check string) "outer" "j" s.Ipa.Lno.loc_outer;
    Alcotest.(check string) "inner" "i" s.Ipa.Lno.loc_inner;
    Alcotest.(check bool) "legal" true s.Ipa.Lno.loc_legal;
    Alcotest.(check int) "one bad ref" 1 s.Ipa.Lno.loc_bad_refs
  | l -> Alcotest.failf "expected one suggestion, got %d" (List.length l));
  (* the well-ordered version raises no suggestion *)
  let good =
    {|      program loc
      double precision g(1:64, 1:64)
      integer i, j
      do i = 1, 64
        do j = 1, 64
          g(j, i) = i + j
        end do
      end do
      print *, g(1, 1)
      end
|}
  in
  let result, m, pu = setup good "loc" in
  Alcotest.(check int) "no suggestion for good order" 0
    (List.length (Ipa.Lno.locality_suggestions m result.Ipa.Analyze.r_summaries pu))

let test_locality_interchange_reduces_misses () =
  let misses pu_transform =
    let prog = Lang.Frontend.load ~files:[ ("loc.f", locality_bad_src) ] in
    let m = Whirl.Lower.lower prog in
    let m =
      match pu_transform with
      | None -> m
      | Some f -> { m with Whirl.Ir.m_pus = List.map f m.Whirl.Ir.m_pus }
    in
    let cache = Cache.create (Cache.two_way ~line_bytes:64 ~lines:64) in
    let _ =
      Interp.run
        ~observer:(fun ev ->
          Cache.access cache ~write:ev.Interp.ev_write ~addr:ev.Interp.ev_addr
            ~bytes:ev.Interp.ev_bytes)
        m
    in
    Cache.misses (Cache.stats cache)
  in
  let result = Engine.analyze_sources [ ("loc.f", locality_bad_src) ] in
  let m = result.Ipa.Analyze.r_module in
  let before = misses None in
  let after =
    misses
      (Some
         (fun pu ->
           fst
             (Ipa.Lno.interchange_pu m result.Ipa.Analyze.r_summaries pu
                ~want:(fun ~outer_ivar:_ ~inner_ivar:_ -> true))))
  in
  Alcotest.(check bool)
    (Printf.sprintf "interchange reduces misses (%d -> %d)" before after)
    true
    (after * 4 < before)

(* fusing the Case 1 pattern automatically *)
let test_case1_auto_fusion () =
  let src =
    {|      program t
      double precision xcr(5), xcrref(5), xcrdif(5)
      integer m
      do m = 1, 5
        xcrdif(m) = abs((xcr(m) - xcrref(m)) / xcrref(m))
      end do
      do m = 1, 5
        xcrdif(m) = xcrdif(m) + xcr(m)
      end do
      print *, xcrdif(1)
      end
|}
  in
  let result, m, pu = setup src "t" in
  let pu', n = Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu in
  Alcotest.(check int) "the two XCR loops fuse" 1 n;
  Alcotest.(check int) "single loop left" 1 (List.length (find_loops pu'))

let suite =
  [
    Alcotest.test_case "fusion legal" `Quick test_fusion_legal;
    Alcotest.test_case "fusion illegal (a(i+1))" `Quick test_fusion_illegal;
    Alcotest.test_case "fuse_pu transforms + preserves" `Quick test_fuse_pu_transforms;
    Alcotest.test_case "fuse_pu refuses illegal" `Quick test_fuse_pu_refuses_illegal;
    Alcotest.test_case "incompatible headers" `Quick test_fuse_incompatible_headers;
    Alcotest.test_case "loop dependences (flow+anti)" `Quick test_loop_dependences;
    Alcotest.test_case "parallel loop: none carried" `Quick test_no_dependence_parallel_loop;
    Alcotest.test_case "interchange illegal (<,>)" `Quick test_interchange_illegal;
    Alcotest.test_case "interchange legal + transform" `Quick test_interchange_legal_and_transform;
    Alcotest.test_case "interchange respects legality" `Quick test_interchange_pu_respects_legality;
    Alcotest.test_case "Case 1 auto-fusion" `Quick test_case1_auto_fusion;
    Alcotest.test_case "negative-step dependences sound" `Quick
      test_negative_step_dependences_sound;
    Alcotest.test_case "locality suggestion" `Quick test_locality_suggestion;
    Alcotest.test_case "interchange reduces misses" `Quick
      test_locality_interchange_reduces_misses;
  ]
