let () =
  Alcotest.run "array_analysis"
    [
      ("rat", Test_rat.suite);
      ("interval", Test_interval.suite);
      ("linear", Test_linear.suite);
      ("lang", Test_lang.suite);
      ("region", Test_region.suite);
      ("pipeline", Test_pipeline.suite);
      ("whirl", Test_whirl.suite);
      ("cache", Test_cache.suite);
      ("interp", Test_interp.suite);
      ("cfg", Test_cfg.suite);
      ("methods", Test_methods.suite);
      ("gpu", Test_gpu.suite);
      ("dragon", Test_dragon.suite);
      ("nas-lu", Test_nas_lu.suite);
      ("wopt", Test_wopt.suite);
      ("lno", Test_lno.suite);
      ("coarray", Test_coarray.suite);
      ("fuzz", Test_fuzz.suite);
      ("analyses", Test_analyses.suite);
      ("fault", Test_fault.suite);
      ("iplfile", Test_iplfile.suite);
      ("apps", Test_apps.suite);
      ("robustness", Test_robustness.suite);
      ("autopar", Test_autopar.suite);
      ("whirl-io", Test_whirl_io.suite);
      ("loopsum", Test_loopsum.suite);
      ("summary", Test_summary.suite);
      ("cli", Test_cli.suite);
      ("engine", Test_engine.suite);
      ("solver", Test_solver.suite);
      ("regions-join", Test_regions_join.suite);
      ("obs", Test_obs.suite);
      ("ledger", Test_ledger.suite);
    ]
