open Lang

let fortran_src =
  {|
      program main
      integer, dimension :: a(1:200, 1:200)
      double precision u(5, 65, 65, 64)
      common /cvar/ u
      integer i, j, m
      parameter (m = 10)
c     a comment line
      do j = 1, m
        call p1(a, j)
        call p2(a, j)   ! trailing comment
      end do
      do i = 1, 200, 2
        a(i, 1) = a(i, 1) + mod(i, 3)
      end do
      if (a(1,1) .gt. 0 .and. m .le. 100) then
        a(1, 2) = 0
      else
        a(1, 2) = 1
      end if
      print *, a(1, 1)
      end

      subroutine p1(b, k)
      integer b(1:200, 1:200)
      integer k, i, j
      do i = 1, 100
        do j = 1, 100
          b(i, j) = i + j + k
        end do
      end do
      return
      end

      subroutine p2(b, k)
      integer b(1:200, 1:200)
      integer k, i, j, s
      s = 0
      do i = 101, 200
        do j = 101, 200
          s = s + b(i, j)
        end do
      end do
      end
|}

let c_src =
  {|
#include <stdio.h>
#define N 20

int aarr[N];

void fill(int n) {
  int i;
  for (i = 0; i <= 7; i++) {
    aarr[i] = i * 2;
  }
}

int main() {
  int i, s = 0;
  fill(8);
  for (i = 0; i < 8; i++) {
    s += aarr[i];
  }
  /* strided read */
  for (i = 2; i <= 6; i += 2) {
    s += aarr[i];
  }
  printf("%d\n", s);
  return 0;
}
|}

let parse_f () = Parser_f.parse ~file:"main.f" fortran_src
let parse_c () = Parser_c.parse ~file:"matrix.c" c_src

let find_proc u name =
  match
    List.find_opt (fun p -> String.equal p.Ast.proc_name name) u.Ast.unit_procs
  with
  | Some p -> p
  | None -> Alcotest.failf "procedure %s not found" name

let test_f_structure () =
  let u = parse_f () in
  Alcotest.(check int) "three procedures" 3 (List.length u.Ast.unit_procs);
  let main = find_proc u "main" in
  Alcotest.(check bool) "main is program" true (main.Ast.proc_kind = Ast.Program);
  let p1 = find_proc u "p1" in
  Alcotest.(check (list string)) "p1 params" [ "b"; "k" ] p1.Ast.proc_params;
  (* u is in COMMON *)
  let udecl =
    List.find (fun d -> d.Ast.decl_name = "u") main.Ast.proc_decls
  in
  Alcotest.(check (option string)) "common block" (Some "cvar") udecl.Ast.decl_common;
  Alcotest.(check int) "u rank 4" 4 (List.length udecl.Ast.decl_dims)

let test_f_do_loops () =
  let u = parse_f () in
  let main = find_proc u "main" in
  let dos =
    List.filter_map
      (function Ast.Do d -> Some d | _ -> None)
      main.Ast.proc_body
  in
  Alcotest.(check int) "two do loops" 2 (List.length dos);
  let strided = List.nth dos 1 in
  Alcotest.(check bool) "step 2" true
    (match strided.Ast.do_step with Some (Ast.Int_lit 2) -> true | _ -> false)

let test_f_if () =
  let u = parse_f () in
  let main = find_proc u "main" in
  let ifs =
    List.filter_map
      (function Ast.If (c, t, e, _) -> Some (c, t, e) | _ -> None)
      main.Ast.proc_body
  in
  match ifs with
  | [ (Ast.Binop (Ast.And, _, _), [ _ ], [ _ ]) ] -> ()
  | _ -> Alcotest.fail "expected one if with .and. condition and else branch"

let test_f_dotted_ops () =
  let toks = Lexer_f.tokenize ~file:"t.f" "x .lt. y .and. a .ne. b\n" in
  let puncts =
    List.filter_map
      (function { Token.tok = Token.Punct p; _ } -> Some p | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "dotted ops" [ "<"; "&&"; "!=" ] puncts

let test_f_double_literal () =
  let toks = Lexer_f.tokenize ~file:"t.f" "x = 1.5d0 + 2.0e-1\n" in
  let floats =
    List.filter_map
      (function { Token.tok = Token.Float f; _ } -> Some f | _ -> None)
      toks
  in
  Alcotest.(check int) "two floats" 2 (List.length floats);
  Alcotest.(check bool) "d-exponent value" true (List.nth floats 0 = 1.5);
  Alcotest.(check bool) "e-exponent value" true (abs_float (List.nth floats 1 -. 0.2) < 1e-12)

let test_f_continuation () =
  let src = "      x = 1 +   &\n     2\n" in
  let u = Parser_f.parse ~file:"t.f" ("      program t\n      integer x\n" ^ src ^ "      end\n") in
  let main = find_proc u "t" in
  match main.Ast.proc_body with
  | [ Ast.Assign (_, Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Int_lit 2), _) ] -> ()
  | _ -> Alcotest.fail "continuation line not joined"

let test_c_structure () =
  let u = parse_c () in
  Alcotest.(check int) "two procs" 2 (List.length u.Ast.unit_procs);
  Alcotest.(check int) "one global" 1 (List.length u.Ast.unit_globals);
  let g = List.hd u.Ast.unit_globals in
  Alcotest.(check string) "global name" "aarr" g.Ast.decl_name;
  (* N resolves via #define at sema time; bounds stay expressions here *)
  Alcotest.(check int) "one const" 1 (List.length u.Ast.unit_consts);
  let main = find_proc u "main" in
  Alcotest.(check bool) "main kind" true (main.Ast.proc_kind = Ast.Program)

let test_c_for_normalization () =
  let u = parse_c () in
  let main = find_proc u "main" in
  let rec count_dos acc = function
    | Ast.Do d -> List.fold_left count_dos (acc + 1) d.Ast.do_body
    | Ast.If (_, t, e, _) ->
      List.fold_left count_dos (List.fold_left count_dos acc t) e
    | Ast.While (_, b, _) -> List.fold_left count_dos acc b
    | _ -> acc
  in
  let n = List.fold_left count_dos 0 main.Ast.proc_body in
  Alcotest.(check int) "both fors normalized to do" 2 n;
  (* the strided one has step 2 and bounds 2..6 *)
  let rec find_strided = function
    | Ast.Do d when d.Ast.do_step <> None -> Some d
    | Ast.Do d -> List.find_map find_strided d.Ast.do_body
    | Ast.If (_, t, e, _) ->
      (match List.find_map find_strided t with
      | Some x -> Some x
      | None -> List.find_map find_strided e)
    | _ -> None
  in
  match List.find_map find_strided main.Ast.proc_body with
  | Some d ->
    Alcotest.(check bool) "lo 2" true (d.Ast.do_lo = Ast.Int_lit 2);
    Alcotest.(check bool) "hi 6" true (d.Ast.do_hi = Ast.Int_lit 6)
  | None -> Alcotest.fail "strided loop not found"

let test_c_compound_assign () =
  let u = parse_c () in
  let main = find_proc u "main" in
  let rec has_s_plus_eq = function
    | Ast.Assign (Ast.Lvar ("s", _), Ast.Binop (Ast.Add, Ast.Var_ref ("s", _), _), _)
      ->
      true
    | Ast.Do d -> List.exists has_s_plus_eq d.Ast.do_body
    | Ast.If (_, t, e, _) ->
      List.exists has_s_plus_eq t || List.exists has_s_plus_eq e
    | _ -> false
  in
  Alcotest.(check bool) "s += desugared" true
    (List.exists has_s_plus_eq main.Ast.proc_body)

let test_sema_fortran () =
  let prog = Frontend.load ~files:[ ("main.f", fortran_src) ] in
  Alcotest.(check int) "3 procs" 3 (List.length prog.Sema.prog_order);
  (* u is global, a is local to main *)
  Alcotest.(check bool) "u global" true
    (Sema.String_map.mem "u" prog.Sema.prog_globals);
  let main = Sema.String_map.find "main" prog.Sema.prog_procs in
  (match Sema.String_map.find "a" main.Sema.pi_symbols with
  | Sema.Sym_array (s, Sema.Local) ->
    Alcotest.(check int) "a rank" 2 (List.length s.Sema.a_dims);
    Alcotest.(check bool) "a bounds" true
      (s.Sema.a_dims = [ (Some 1, Some 200); (Some 1, Some 200) ])
  | _ -> Alcotest.fail "a should be a local array");
  (* m folded *)
  (match Sema.String_map.find "m" main.Sema.pi_symbols with
  | Sema.Sym_const 10 -> ()
  | _ -> Alcotest.fail "m should fold to 10");
  (* mod(i, 3) rewritten to a call *)
  let p = main.Sema.pi_proc in
  let rec has_mod_call = function
    | Ast.Assign (_, e, _) -> expr_has e
    | Ast.Do d -> List.exists has_mod_call d.Ast.do_body
    | Ast.If (_, t, e, _) ->
      List.exists has_mod_call t || List.exists has_mod_call e
    | _ -> false
  and expr_has = function
    | Ast.Call_expr ("mod", _, _) -> true
    | Ast.Binop (_, a, b) -> expr_has a || expr_has b
    | Ast.Unop (_, e) -> expr_has e
    | Ast.Array_ref (_, idx, _) -> List.exists expr_has idx
    | _ -> false
  in
  Alcotest.(check bool) "mod is a call" true
    (List.exists has_mod_call p.Ast.proc_body)

let test_sema_formal_class () =
  let prog = Frontend.load ~files:[ ("main.f", fortran_src) ] in
  let p1 = Sema.String_map.find "p1" prog.Sema.prog_procs in
  match Sema.String_map.find "b" p1.Sema.pi_symbols with
  | Sema.Sym_array (_, Sema.Formal) -> ()
  | _ -> Alcotest.fail "b should be a formal array"

let test_sema_c_define () =
  let prog = Frontend.load ~files:[ ("matrix.c", c_src) ] in
  match Sema.String_map.find_opt "aarr" prog.Sema.prog_globals with
  | Some (s, _) ->
    Alcotest.(check bool) "aarr bounds 0..19" true
      (s.Sema.a_dims = [ (Some 0, Some 19) ])
  | None -> Alcotest.fail "aarr should be global"

let test_sema_rank_error () =
  let bad =
    "      program t\n      integer a(5, 5)\n      a(1) = 0\n      end\n"
  in
  Alcotest.check_raises "rank mismatch"
    (Diag.Frontend_error
       {
         Diag.severity = Diag.Error;
         loc = Loc.make ~file:"t.f" ~line:3 ~col:7;
         message = "array a has rank 2 but is indexed with 1 subscripts";
       })
    (fun () -> ignore (Frontend.load ~files:[ ("t.f", bad) ]))

let test_sema_undeclared_c () =
  let bad = "int main() { x = 1; return 0; }\n" in
  (try
     ignore (Frontend.load ~files:[ ("t.c", bad) ]);
     Alcotest.fail "expected undeclared identifier error"
   with Diag.Frontend_error d ->
     Alcotest.(check bool) "mentions x" true
       (String.length d.Diag.message > 0))

let test_write_statement () =
  let src =
    "      program t\n      integer x\n      x = 3\n      write (*, *) x, x + 1\n      write (*, *)\n      end\n"
  in
  let u = Parser_f.parse ~file:"t.f" src in
  let main = find_proc u "t" in
  let prints =
    List.filter (function Ast.Print _ -> true | _ -> false) main.Ast.proc_body
  in
  Alcotest.(check int) "two writes as prints" 2 (List.length prints);
  match List.hd prints with
  | Ast.Print (args, _) -> Alcotest.(check int) "two items" 2 (List.length args)
  | _ -> Alcotest.fail "unexpected"

let test_object_name () =
  let prog = Frontend.load ~files:[ ("main.f", fortran_src) ] in
  let main = Sema.String_map.find "main" prog.Sema.prog_procs in
  Alcotest.(check string) "object" "main.o" main.Sema.pi_object

let suite =
  [
    Alcotest.test_case "fortran structure" `Quick test_f_structure;
    Alcotest.test_case "fortran do loops" `Quick test_f_do_loops;
    Alcotest.test_case "fortran if/else" `Quick test_f_if;
    Alcotest.test_case "fortran dotted ops" `Quick test_f_dotted_ops;
    Alcotest.test_case "fortran double literals" `Quick test_f_double_literal;
    Alcotest.test_case "fortran continuation" `Quick test_f_continuation;
    Alcotest.test_case "c structure" `Quick test_c_structure;
    Alcotest.test_case "c for normalization" `Quick test_c_for_normalization;
    Alcotest.test_case "c compound assignment" `Quick test_c_compound_assign;
    Alcotest.test_case "sema fortran" `Quick test_sema_fortran;
    Alcotest.test_case "sema formal class" `Quick test_sema_formal_class;
    Alcotest.test_case "sema c defines" `Quick test_sema_c_define;
    Alcotest.test_case "sema rank error" `Quick test_sema_rank_error;
    Alcotest.test_case "sema undeclared (C)" `Quick test_sema_undeclared_c;
    Alcotest.test_case "write statement" `Quick test_write_statement;
    Alcotest.test_case "object naming" `Quick test_object_name;
  ]
