let mk_direct lines = Cache.create (Cache.direct_mapped ~line_bytes:16 ~lines)

let test_cold_miss_then_hit () =
  let c = mk_direct 4 in
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  Cache.access c ~write:false ~addr:4 ~bytes:4;
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 (Cache.misses s);
  Alcotest.(check int) "one hit" 1 (Cache.hits s)

let test_conflict_eviction () =
  let c = mk_direct 4 in
  (* addresses 0 and 64 map to the same set in a 4-line 16-byte cache *)
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  Cache.access c ~write:false ~addr:64 ~bytes:4;
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  let s = Cache.stats c in
  Alcotest.(check int) "three misses" 3 (Cache.misses s);
  Alcotest.(check int) "two evictions" 2 s.Cache.evictions

let test_two_way_avoids_conflict () =
  let c = Cache.create (Cache.two_way ~line_bytes:16 ~lines:4) in
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  Cache.access c ~write:false ~addr:32 ~bytes:4;  (* same set, other way *)
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  let s = Cache.stats c in
  Alcotest.(check int) "two misses only" 2 (Cache.misses s);
  Alcotest.(check int) "one hit" 1 (Cache.hits s)

let test_lru_order () =
  let c = Cache.create (Cache.two_way ~line_bytes:16 ~lines:4) in
  (* set 0 candidates: 0, 32, 64 *)
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  Cache.access c ~write:false ~addr:32 ~bytes:4;
  Cache.access c ~write:false ~addr:0 ~bytes:4;  (* 32 is now LRU *)
  Cache.access c ~write:false ~addr:64 ~bytes:4; (* evicts 32 *)
  Cache.access c ~write:false ~addr:0 ~bytes:4;  (* still resident *)
  let s = Cache.stats c in
  Alcotest.(check int) "misses" 3 (Cache.misses s);
  Alcotest.(check int) "hits" 2 (Cache.hits s)

let test_straddling_access () =
  let c = mk_direct 4 in
  (* 8 bytes starting at 12 touch lines 0 and 1 *)
  Cache.access c ~write:true ~addr:12 ~bytes:8;
  let s = Cache.stats c in
  Alcotest.(check int) "two line touches" 2 s.Cache.writes;
  Alcotest.(check int) "two write misses" 2 s.Cache.write_misses

let test_reset () =
  let c = mk_direct 4 in
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  Cache.reset c;
  let s = Cache.stats c in
  Alcotest.(check int) "no reads" 0 s.Cache.reads;
  Cache.access c ~write:false ~addr:0 ~bytes:4;
  Alcotest.(check int) "cold again" 1 (Cache.misses (Cache.stats c))

let test_validation () =
  Alcotest.check_raises "bad line size"
    (Invalid_argument "Cache.create: line_bytes must be a power of two")
    (fun () -> ignore (Cache.create { Cache.line_bytes = 24; sets = 4; ways = 1 }));
  Alcotest.check_raises "bad ways"
    (Invalid_argument "Cache.create: ways must be >= 1")
    (fun () -> ignore (Cache.create { Cache.line_bytes = 16; sets = 4; ways = 0 }))

let test_capacity () =
  Alcotest.(check int) "capacity" 2048
    (Cache.capacity_bytes (Cache.two_way ~line_bytes:32 ~lines:64))

(* property: miss count never exceeds access count; sequential sweep of N
   distinct lines gives exactly N misses on first pass, 0 on second when it
   fits *)
let prop_sweep =
  QCheck2.Test.make ~name:"sweep misses = distinct lines when resident"
    ~count:100
    QCheck2.Gen.(int_range 1 16)
    ~print:string_of_int
    (fun nlines ->
      let c = Cache.create (Cache.direct_mapped ~line_bytes:16 ~lines:16) in
      for i = 0 to nlines - 1 do
        Cache.access c ~write:false ~addr:(i * 16) ~bytes:4
      done;
      let first = Cache.misses (Cache.stats c) in
      for i = 0 to nlines - 1 do
        Cache.access c ~write:false ~addr:(i * 16) ~bytes:4
      done;
      let second = Cache.misses (Cache.stats c) in
      first = nlines && second = nlines)

let test_hierarchy () =
  let h =
    Cache.Hierarchy.create
      ~l1:(Cache.direct_mapped ~line_bytes:16 ~lines:2)
      ~l2:(Cache.two_way ~line_bytes:16 ~lines:8)
  in
  (* two addresses conflicting in L1 but coexisting in L2 *)
  Cache.Hierarchy.access h ~write:false ~addr:0 ~bytes:4;
  Cache.Hierarchy.access h ~write:false ~addr:32 ~bytes:4;
  Cache.Hierarchy.access h ~write:false ~addr:0 ~bytes:4;
  Cache.Hierarchy.access h ~write:false ~addr:32 ~bytes:4;
  let s = Cache.Hierarchy.stats h in
  Alcotest.(check int) "L1 misses all four" 4 (Cache.misses s.Cache.Hierarchy.l1);
  Alcotest.(check int) "L2 absorbs the refetches" 2
    (Cache.misses s.Cache.Hierarchy.l2);
  Alcotest.(check int) "L2 sees only L1 misses" 4
    (s.Cache.Hierarchy.l2.Cache.reads + s.Cache.Hierarchy.l2.Cache.writes);
  (* amat between the L2-hit and memory latencies *)
  let t = Cache.Hierarchy.amat s in
  Alcotest.(check bool) "amat sensible" true (t > 10.0 && t < 111.0);
  Cache.Hierarchy.reset h;
  let s = Cache.Hierarchy.stats h in
  Alcotest.(check int) "reset" 0
    (s.Cache.Hierarchy.l1.Cache.reads + s.Cache.Hierarchy.l2.Cache.reads)

let suite =
  [
    Alcotest.test_case "two-level hierarchy" `Quick test_hierarchy;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "conflict eviction" `Quick test_conflict_eviction;
    Alcotest.test_case "2-way avoids conflict" `Quick test_two_way_avoids_conflict;
    Alcotest.test_case "LRU order" `Quick test_lru_order;
    Alcotest.test_case "straddling access" `Quick test_straddling_access;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "config validation" `Quick test_validation;
    Alcotest.test_case "capacity" `Quick test_capacity;
    QCheck_alcotest.to_alcotest prop_sweep;
  ]
