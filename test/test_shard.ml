(* The shard subsystem's contract: the wire protocol round-trips exactly,
   outputs are byte-identical at every worker topology (including degraded
   solver cores and under fault isolation), and the shared cache tier is
   published exactly once — concurrent writers and corrupted entries
   self-heal without ever changing an output. *)

let lower = Test_engine.lower
let render = Test_engine.render
let check_same_output = Test_engine.check_same_output

let gen_small = lazy (Corpus.Gen.generate Corpus.Gen.default)

let corpus_files = function
  | "gen-small" -> Lazy.force gen_small
  | other -> Test_engine.corpus_files other

let temp_dir () =
  let d = Filename.temp_file "shard" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* every file under [dir], recursively *)
let rec files_under dir =
  List.concat_map
    (fun name ->
      let p = Filename.concat dir name in
      if Sys.is_directory p then files_under p else [ p ])
    (Array.to_list (Sys.readdir dir))

let check_no_litter where dir =
  List.iter
    (fun p ->
      let base = Filename.basename p in
      let has sub =
        let n = String.length base and m = String.length sub in
        let rec go i = i + m <= n && (String.sub base i m = sub || go (i + 1)) in
        go 0
      in
      if has ".tmp." then
        Alcotest.failf "%s: unpublished temp file %s left behind" where p;
      if has ".quarantined" then
        Alcotest.failf "%s: quarantined entry %s" where p)
    (files_under dir)

(* ---- wire protocol -------------------------------------------------- *)

let test_proto_roundtrip () =
  let msgs =
    [
      Engine_proto.Hello (1234, "abcdef012345");
      Engine_proto.Init
        {
          Engine_proto.in_module = "MODULE image\nwith lines\n";
          in_keep_going = true;
          in_fault_specs = [ "pool:0.5:7:main"; "io_read:1:0" ];
          in_solver_budget = Some 42;
          in_solver_core = "packed";
          in_fast_join = false;
          in_implies_memo = true;
          in_cache_dir = Some "/tmp/shared-tier";
        };
      Engine_proto.Init
        {
          Engine_proto.in_module = "";
          in_keep_going = false;
          in_fault_specs = [];
          in_solver_budget = None;
          in_solver_core = "learned";
          in_fast_join = true;
          in_implies_memo = false;
          in_cache_dir = None;
        };
      Engine_proto.Task
        {
          Engine_proto.t_id = 3;
          t_members =
            [
              {
                Engine_proto.mb_name = "f";
                mb_poisoned = false;
                mb_collect = "\x00\x01collect-image\xff";
                mb_key = String.make 16 '\x01';
              };
              {
                Engine_proto.mb_name = "g";
                mb_poisoned = true;
                mb_collect = "";
                mb_key = "";
              };
            ];
          t_callees = [ ("h", "summary-image"); ("k", "\x00binary\x00") ];
        };
      Engine_proto.Result
        {
          Engine_proto.r_id = 3;
          r_busy_ns = 98765;
          r_degraded = 2;
          r_solver = "\x00\x01marshal-blob";
          r_outcomes =
            [
              ("f", Engine_proto.O_summary "SUM");
              ("g", Engine_proto.O_opaque);
              ("h", Engine_proto.O_poisoned ("summarize", "pool", "boom"));
              ("k", Engine_proto.O_failed ("fatal", Some ("pool", "summarize:k")));
              ("l", Engine_proto.O_failed ("fatal2", None));
            ];
        };
      Engine_proto.Shutdown;
    ]
  in
  let rd, wr = Unix.pipe () in
  List.iter (Engine_proto.write_msg wr) msgs;
  Unix.close wr;
  List.iteri
    (fun i expect ->
      match Engine_proto.read_msg rd with
      | Some got ->
        Alcotest.(check bool)
          (Printf.sprintf "message %d round-trips" i)
          true (got = expect)
      | None -> Alcotest.failf "premature end of stream at message %d" i)
    msgs;
  Alcotest.(check bool) "clean EOF" true (Engine_proto.read_msg rd = None);
  Unix.close rd

(* ---- byte-identity across topologies -------------------------------- *)

let test_workers_identical () =
  List.iter
    (fun corpus ->
      let files = corpus_files corpus in
      let serial =
        render (Engine.run (Engine.config ()) (lower files)).Engine.e_result
      in
      let topologies =
        if corpus = "lu" then [ (1, 1); (2, 1); (2, 4) ] else [ (2, 1) ]
      in
      List.iter
        (fun (workers, jobs) ->
          let r = Engine.run (Engine.config ~jobs ~workers ()) (lower files) in
          check_same_output
            (Printf.sprintf "%s workers=%d jobs=%d" corpus workers jobs)
            serial
            (render r.Engine.e_result);
          match r.Engine.e_stats.Engine.Stats.s_shard with
          | Some s ->
            Alcotest.(check int)
              (corpus ^ " requested workers")
              workers s.Engine_shard.st_requested
          | None -> Alcotest.fail (corpus ^ ": shard stats missing"))
        topologies)
    [ "matrix"; "stride"; "fig1"; "lu"; "gen-small" ]

let test_cores_identical () =
  let files = corpus_files "matrix" in
  let serial =
    render (Engine.run (Engine.config ()) (lower files)).Engine.e_result
  in
  List.iter
    (fun (core, name) ->
      Linear.System.set_solver_core core;
      Linear.System.clear_cache ();
      Fun.protect ~finally:(fun () ->
          Linear.System.set_solver_core `Learned;
          Linear.System.clear_cache ())
      @@ fun () ->
      let r = Engine.run (Engine.config ~workers:2 ()) (lower files) in
      check_same_output
        (Printf.sprintf "matrix workers=2 core=%s" name)
        serial
        (render r.Engine.e_result))
    [ (`Packed, "packed"); (`Reference, "reference") ]

(* ---- fault isolation parity ------------------------------------------ *)

let with_specs raw f =
  match Fault.parse_specs raw with
  | Error e -> Alcotest.failf "parse_specs: %s" e
  | Ok specs ->
    Fault.configure specs;
    Fun.protect ~finally:Fault.clear f

let test_fault_parity () =
  let files = corpus_files "gen-small" in
  with_specs [ "pool:0.3:7" ] @@ fun () ->
  let run workers =
    Engine.run (Engine.config ~workers ~keep_going:true ()) (lower files)
  in
  let a = run 0 in
  let b = run 2 in
  check_same_output "pool faults workers 0 vs 2"
    (render a.Engine.e_result)
    (render b.Engine.e_result);
  let norm (r : Engine.result) =
    List.sort compare
      (List.map
         (fun (d : Fault.Diag.t) ->
           (d.Fault.Diag.d_site, d.Fault.Diag.d_pu, d.Fault.Diag.d_action))
         r.Engine.e_diags)
  in
  Alcotest.(check bool) "some PU was isolated" true (norm a <> []);
  Alcotest.(check bool)
    "identical isolation diagnostics across topologies" true
    (norm a = norm b)

(* ---- shared-tier publish discipline ---------------------------------- *)

let test_publish_exactly_once () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let files = corpus_files "gen-small" in
  let pub = Obs.Metrics.counter "store.publishes" in
  let skip = Obs.Metrics.counter "store.publish_skips" in
  let p0 = Obs.Metrics.Counter.get pub in
  let s0 = Obs.Metrics.Counter.get skip in
  let run () =
    Engine.run
      (Engine.config ~workers:2 ~store:(Engine_store.create ~dir ()) ())
      (lower files)
  in
  let cold = run () in
  Alcotest.(check bool) "cold run computed summaries" true
    (cold.Engine.e_stats.Engine.Stats.s_summary_misses > 0);
  (* the workers published every summary they computed into the shared
     tier before returning it, so the coordinator's end-of-run persist
     pass finds the files already present and skips the writes *)
  Alcotest.(check bool) "coordinator skipped already-published entries" true
    (Obs.Metrics.Counter.get skip - s0 > 0);
  Alcotest.(check bool) "coordinator still published collect entries" true
    (Obs.Metrics.Counter.get pub - p0 > 0);
  check_no_litter "cold shared tier" dir;
  (* a warm run through a fresh handle reads everything back: nothing is
     recomputed at any worker count, and no process is even spawned *)
  let warm = run () in
  Alcotest.(check int) "warm full summary hits"
    warm.Engine.e_stats.Engine.Stats.s_pus
    warm.Engine.e_stats.Engine.Stats.s_summary_hits;
  match warm.Engine.e_stats.Engine.Stats.s_shard with
  | Some s ->
    Alcotest.(check int) "warm run spawned no worker" 0
      s.Engine_shard.st_spawned
  | None -> Alcotest.fail "shard stats missing"

let exe name =
  Filename.concat (Filename.concat ".." "bin") (name ^ ".exe")

let drain_and_close ic =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (Unix.close_process_in ic, Buffer.contents buf)

let test_concurrent_writers () =
  if not (Sys.file_exists (exe "uhc")) then ()
  else begin
    let dir = temp_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let cache = Filename.concat dir "cache" in
    let spawn n =
      let out = Filename.concat dir ("o" ^ string_of_int n) in
      Unix.open_process_in
        (Printf.sprintf
           "%s --corpus gen-small --workers 2 --cache-dir %s -o %s -p gs 2>&1"
           (exe "uhc") (Filename.quote cache) (Filename.quote out))
    in
    (* two coordinators (each with two workers) race to publish the same
       content-addressed entries into one shared tier *)
    let p1 = spawn 1 in
    let p2 = spawn 2 in
    let st1, out1 = drain_and_close p1 in
    let st2, out2 = drain_and_close p2 in
    Alcotest.(check bool) "writer 1 exits 0" true (st1 = Unix.WEXITED 0);
    Alcotest.(check bool) "writer 2 exits 0" true (st2 = Unix.WEXITED 0);
    ignore out1;
    ignore out2;
    List.iter
      (fun f ->
        let read p =
          let ic = open_in_bin p in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        Alcotest.(check bool)
          (f ^ " identical across concurrent writers")
          true
          (read (Filename.concat (Filename.concat dir "o1") f)
          = read (Filename.concat (Filename.concat dir "o2") f)))
      [ "gs.rgn"; "gs.dgn"; "gs.cfg" ];
    check_no_litter "racing shared tier" cache
  end

let test_quarantine_then_heal () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let files = corpus_files "matrix" in
  let run () =
    Engine.run
      (Engine.config ~workers:2 ~store:(Engine_store.create ~dir ()) ())
      (lower files)
  in
  let cold = run () in
  let baseline = render cold.Engine.e_result in
  (* corrupt one summary entry in place *)
  let victim =
    match
      List.find_opt
        (fun p ->
          let b = Filename.basename p in
          String.length b > 2 && String.sub b 0 2 = "s-")
        (files_under dir)
    with
    | Some p -> p
    | None -> Alcotest.fail "no summary entry on disk"
  in
  let oc = open_out_bin victim in
  output_string oc "garbage, not a marshal image";
  close_out oc;
  let healed = run () in
  check_same_output "healed run" baseline (render healed.Engine.e_result);
  Alcotest.(check bool) "corrupt entry was quarantined" true
    (List.exists
       (fun (d : Fault.Diag.t) -> d.Fault.Diag.d_action = "quarantined")
       healed.Engine.e_diags);
  (* the entry was republished: a third run through a fresh handle is
     fully warm again *)
  let warm = run () in
  Alcotest.(check int) "healed tier is fully warm"
    warm.Engine.e_stats.Engine.Stats.s_pus
    warm.Engine.e_stats.Engine.Stats.s_summary_hits;
  check_same_output "warm healed run" baseline (render warm.Engine.e_result)

let suite =
  [
    Alcotest.test_case "wire protocol round-trips over a pipe" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "outputs byte-identical across worker counts" `Quick
      test_workers_identical;
    Alcotest.test_case "solver cores byte-identical at workers 2" `Quick
      test_cores_identical;
    Alcotest.test_case "fault isolation parity workers 0 vs 2" `Quick
      test_fault_parity;
    Alcotest.test_case "shared tier published exactly once" `Quick
      test_publish_exactly_once;
    Alcotest.test_case "concurrent writers converge, no litter" `Quick
      test_concurrent_writers;
    Alcotest.test_case "corrupt entry quarantines then heals" `Quick
      test_quarantine_then_heal;
  ]
