(* The client-analysis layer (lib/analyses): bounds verdicts, permission
   preconditions, the report schema, and the differential soundness of the
   bounds client against the interpreter's ground truth. *)

let ctx_of (result : Ipa.Analyze.result) =
  {
    Analyses.Analysis.ctx_module = result.Ipa.Analyze.r_module;
    Analyses.Analysis.ctx_result = result;
  }

let bounds_report src =
  let result = Engine.analyze_sources [ ("t.f", src) ] in
  fst (Analyses.Bounds.run (ctx_of result))

(* bounds report columns: Proc Array Mode Line Via Verdict LB UB Stride *)
let verdict row = List.nth row 5
let summary_int (r : Analyses.Report.t) key =
  match List.assoc_opt key r.Analyses.Report.r_summary with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "summary key %s missing" key

let test_bounds_fig1 () =
  let result = Engine.analyze_sources [ Corpus.Small.fig1_f ] in
  let r = fst (Analyses.Bounds.run (ctx_of result)) in
  Alcotest.(check int) "accesses" 6 (summary_int r "accesses");
  Alcotest.(check int) "safe" 6 (summary_int r "safe");
  Alcotest.(check int) "eliminated = safe" (summary_int r "safe")
    (summary_int r "checks_eliminated");
  Alcotest.(check int) "residual = maybe" (summary_int r "maybe")
    (summary_int r "residual_checks");
  List.iter
    (fun row -> Alcotest.(check string) "verdict" "safe" (verdict row))
    r.Analyses.Report.r_rows

let oob_src =
  "      program oob\n\
  \      integer a(1:10), idx(1:10)\n\
  \      integer i, s\n\
  \      s = 0\n\
  \      do i = 1, 10\n\
  \        a(i + 5) = i\n\
  \      end do\n\
  \      do i = 1, 10\n\
  \        s = s + a(idx(i))\n\
  \      end do\n\
  \      do i = 12, 20\n\
  \        a(i) = 0\n\
  \      end do\n\
  \      print *, s\n\
  \      end\n"

let test_bounds_three_valued () =
  let r = bounds_report oob_src in
  Alcotest.(check int) "accesses" 4 (summary_int r "accesses");
  Alcotest.(check int) "safe" 1 (summary_int r "safe");
  Alcotest.(check int) "unsafe" 1 (summary_int r "unsafe");
  Alcotest.(check int) "maybe" 2 (summary_int r "maybe");
  (* the messy subscript a(idx(i)) clamps into the declared extents, so its
     interval box lies inside the array — the clamp marker must keep it out
     of "safe" (the region under-approximates the runtime accesses) *)
  List.iter
    (fun row ->
      if List.nth row 8 = "*" && List.nth row 1 = "a" then
        Alcotest.(check string) "clamped messy access" "maybe" (verdict row);
      if List.nth row 6 = "12" then
        Alcotest.(check string) "entirely-OOB loop" "unsafe" (verdict row))
    r.Analyses.Report.r_rows

(* permissions report columns: Proc Array Kind Permission LB UB Stride Exact
   Count *)
let test_permissions_fig1 () =
  let result = Engine.analyze_sources [ Corpus.Small.fig1_f ] in
  let r = fst (Analyses.Permissions.run (ctx_of result)) in
  Alcotest.(check int) "procedures" 3 (summary_int r "procedures");
  Alcotest.(check int) "reads" 2 (summary_int r "read_preconditions");
  Alcotest.(check int) "writes" 2 (summary_int r "write_preconditions");
  let has proc perm lb ub =
    List.exists
      (fun row ->
        List.nth row 0 = proc
        && List.nth row 3 = perm
        && List.nth row 4 = lb
        && List.nth row 5 = ub)
      r.Analyses.Report.r_rows
  in
  Alcotest.(check bool) "add writes a(1:100)" true
    (has "add" "write" "1|1" "100|100");
  Alcotest.(check bool) "add reads a(101:200)" true
    (has "add" "read" "101|101" "200|200");
  Alcotest.(check bool) "p1 writes" true (has "p1" "write" "1|1" "100|100");
  Alcotest.(check bool) "p2 reads" true (has "p2" "read" "101|101" "200|200")

let test_registry () =
  Alcotest.(check (list string))
    "builtins" [ "bounds"; "permissions"; "regions"; "diffcheck" ]
    (Analyses.Registry.names ());
  (match Analyses.Registry.parse_selection "bounds, permissions" with
  | Ok names ->
    Alcotest.(check (list string)) "parse" [ "bounds"; "permissions" ] names
  | Error e -> Alcotest.failf "parse_selection failed: %s" e);
  match Analyses.Registry.parse_selection "bounds,nope" with
  | Ok _ -> Alcotest.fail "unknown name accepted"
  | Error e ->
    Alcotest.(check bool) "message names the unknown" true
      (String.length e > 0
      && String.sub e 0 (String.length "unknown analyses") = "unknown analyses")

let test_report_schema () =
  let result = Engine.analyze_sources [ Corpus.Small.fig1_f ] in
  let ctx = ctx_of result in
  let reports =
    List.map fst
      (Analyses.Registry.run_selected
         ~selection:[ "bounds"; "permissions" ]
         ctx)
  in
  let json = Analyses.Report.json_of_reports reports in
  let prefix = "{\n  \"schema_version\": 1," in
  Alcotest.(check string) "versioned prefix" prefix
    (String.sub json 0 (String.length prefix));
  (* the dragon viewer parses and re-renders the same tables uhc printed *)
  match Dragon.Reportview.parse json with
  | Error e -> Alcotest.failf "reportview rejects own schema: %s" e
  | Ok t ->
    Alcotest.(check (list string))
      "names" [ "bounds"; "permissions" ]
      (Dragon.Reportview.names t);
    List.iter2
      (fun (r : Analyses.Report.t) rendered ->
        Alcotest.(check string) "render matches"
          (Format.asprintf "%a" Analyses.Report.render r)
          rendered)
      reports
      (List.map
         (fun n -> Dragon.Reportview.render ~only:n t)
         [ "bounds"; "permissions" ])

(* ------------------------------------------------------------------ *)
(* Differential fuzz: bounds verdicts against the interpreter.

   The generator, unlike test_fuzz's, deliberately produces subscripts
   that can run outside the declared extents, and keeps every loop
   non-empty, unconditional and affine so each statically described access
   point is actually executed.  Then:

   - all verdicts "safe"  => the run never traps (soundness of Safe);
   - any verdict "unsafe" => the run traps (Unsafe regions are entirely
     out of bounds in some dimension, and every described point runs). *)

open QCheck2

type fstmt =
  | Floop of string * int * int * fstmt list
  | Fstore of string * string * int  (* arr, var, offset *)
  | Faccum of string * string * int  (* s = s + arr(var + offset) *)

let sub_str v c =
  if c = 0 then v
  else if c > 0 then Printf.sprintf "%s + %d" v c
  else Printf.sprintf "%s - %d" v (-c)

let rec render_f indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Floop (v, lo, hi, body) ->
    Printf.sprintf "%sdo %s = %d, %d\n" pad v lo hi
    ^ String.concat "" (List.map (render_f (indent + 2)) body)
    ^ Printf.sprintf "%send do\n" pad
  | Fstore (arr, v, c) ->
    Printf.sprintf "%s%s(%s) = 1\n" pad arr (sub_str v c)
  | Faccum (arr, v, c) ->
    Printf.sprintf "%ss = s + %s(%s)\n" pad arr (sub_str v c)

let program_f stmts =
  "      program fuzz\n" ^ "      integer a(1:24), b(1:24)\n"
  ^ "      integer s, i, j, k\n" ^ "      s = 0\n"
  ^ String.concat "" (List.map (render_f 6) stmts)
  ^ "      print *, s\n" ^ "      end\n"

let rec gen_fstmt depth vars =
  Gen.(
    let unused =
      List.filter (fun v -> not (List.mem v vars)) [ "i"; "j"; "k" ]
    in
    let loop_gen () =
      let* v = oneofl unused in
      let* lo = int_range 1 4 in
      let* len = int_range 0 12 in
      let hi = min 20 (lo + len) in
      let* body =
        list_size (int_range 1 3) (gen_fstmt (depth - 1) (v :: vars))
      in
      return (Floop (v, lo, hi, body))
    in
    if vars = [] then loop_gen ()
    else
      let leaf =
        let* arr = oneofl [ "a"; "b" ] in
        let* v = oneofl vars in
        let* c = int_range (-4) 8 in
        oneofl [ Fstore (arr, v, c); Faccum (arr, v, c) ]
      in
      if depth = 0 || unused = [] then leaf
      else frequency [ (2, leaf); (1, loop_gen ()) ])

let gen_oob_program =
  Gen.(
    let* top = list_size (int_range 1 3) (gen_fstmt 2 []) in
    return (program_f top))

let prop_bounds_differential =
  Test.make ~name:"bounds verdicts vs interpreter ground truth" ~count:60
    gen_oob_program ~print:(fun s -> s)
    (fun src ->
      let result = Engine.analyze_sources [ ("fuzz.f", src) ] in
      let report = fst (Analyses.Bounds.run (ctx_of result)) in
      let verdicts = List.map verdict report.Analyses.Report.r_rows in
      let trapped =
        match Interp.run result.Ipa.Analyze.r_module with
        | (_ : Interp.outcome) -> false
        | exception Interp.Runtime_error _ -> true
      in
      if List.for_all (String.equal "safe") verdicts then not trapped
      else if List.exists (String.equal "unsafe") verdicts then trapped
      else true)

(* ------------------------------------------------------------------ *)
(* Determinism: report and diagnostics files are byte-identical at any
   --jobs setting, on every corpus. *)

let with_quiet_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_jobs_invariance () =
  List.iter
    (fun corpus ->
      let run jobs =
        let dir = Test_engine.fresh_dir () in
        let report = Filename.concat dir "report.json" in
        let diagnostics = Filename.concat dir "diag.json" in
        let cfg =
          Pipeline.make ~corpus
            ~analyses:[ "bounds"; "permissions"; "regions" ]
            ~report ~diagnostics ~jobs ()
        in
        let r = with_quiet_stdout (fun () -> Pipeline.run cfg) in
        Alcotest.(check int) (corpus ^ " exit code") 0 r.Pipeline.r_code;
        Alcotest.(check int)
          (corpus ^ " report count")
          3
          (List.length r.Pipeline.r_reports);
        (read_file report, read_file diagnostics)
      in
      let rep1, diag1 = run 1 in
      let rep4, diag4 = run 4 in
      Alcotest.(check string) (corpus ^ " report bytes") rep1 rep4;
      Alcotest.(check string) (corpus ^ " diagnostics bytes") diag1 diag4)
    [ "lu"; "matrix"; "fig1"; "stride" ]

let suite =
  [
    Alcotest.test_case "bounds: fig1 all safe" `Quick test_bounds_fig1;
    Alcotest.test_case "bounds: three-valued verdicts" `Quick
      test_bounds_three_valued;
    Alcotest.test_case "permissions: fig1 preconditions" `Quick
      test_permissions_fig1;
    Alcotest.test_case "registry: names and selection" `Quick test_registry;
    Alcotest.test_case "report schema + dragon viewer" `Quick
      test_report_schema;
    QCheck_alcotest.to_alcotest prop_bounds_differential;
    Alcotest.test_case "report/diagnostics jobs-invariant" `Slow
      test_jobs_invariance;
  ]
