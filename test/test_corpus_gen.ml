(* The seeded corpus generator (lib/corpus/gen): same seed means
   byte-identical files, shape invariants hold across a config sweep, and
   the pinned generated corpus produces jobs-invariant reports and
   ledger verdicts. *)

open QCheck2

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go acc i =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (acc + 1) (i + nn)
    else go acc (i + 1)
  in
  if nn = 0 then 0 else go 0 0

let contains hay needle = count_occurrences hay needle > 0

(* ------------------------------------------------------------------ *)
(* Seed determinism *)

let test_seed_determinism () =
  let a = Corpus.Gen.(generate default) in
  let b = Corpus.Gen.(generate default) in
  Alcotest.(check bool) "same seed, same bytes" true (a = b);
  let c = Corpus.Gen.(generate { default with g_seed = 43 }) in
  Alcotest.(check bool) "different seed, different bytes" true (a <> c);
  (* the pinned scale workload meets the advertised floors *)
  let std = Corpus.Gen.standard () in
  Alcotest.(check int) "standard seed pinned" 42 std.Corpus.Gen.g_seed;
  Alcotest.(check bool) "standard >= 200 files" true
    (std.Corpus.Gen.g_files >= 200);
  Alcotest.(check bool) "standard >= 2000 PUs" true
    (Corpus.Gen.pu_count std >= 2000)

let test_invalid_configs () =
  let bad cfg =
    match Corpus.Gen.generate cfg with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  let d = Corpus.Gen.default in
  Alcotest.(check bool) "no files" true (bad { d with Corpus.Gen.g_files = 0 });
  Alcotest.(check bool) "one PU per file" true
    (bad { d with Corpus.Gen.g_pus_per_file = 1 });
  Alcotest.(check bool) "tiny extents" true
    (bad { d with Corpus.Gen.g_ext_min = 4 });
  Alcotest.(check bool) "inverted extent range" true
    (bad { d with Corpus.Gen.g_ext_min = 20; g_ext_max = 16 });
  Alcotest.(check bool) "zero dag depth" true
    (bad { d with Corpus.Gen.g_dag_depth = 0 })

(* ------------------------------------------------------------------ *)
(* Config sweep: shape invariants under QCheck *)

let gen_config =
  Gen.(
    let* seed = int_range 0 9999 in
    let* files = int_range 1 4 in
    let* pus = int_range 2 5 in
    let* dag = int_range 1 3 in
    let* scc = int_range 0 10 in
    let* nest = int_range 1 3 in
    let* ext_min = int_range 8 16 in
    let* ext_span = int_range 0 16 in
    let* sparsity = int_range 0 10 in
    let* oob = int_range 0 10 in
    let* undeclared = int_range 0 10 in
    return
      {
        Corpus.Gen.g_seed = seed;
        g_files = files;
        g_pus_per_file = pus;
        g_dag_depth = dag;
        g_scc_density = float_of_int scc /. 10.;
        g_loop_depth = nest;
        g_ext_min = ext_min;
        g_ext_max = ext_min + ext_span;
        g_sparsity = float_of_int sparsity /. 10.;
        g_oob = float_of_int oob /. 10.;
        g_undeclared = float_of_int undeclared /. 10.;
      })

let print_config = Corpus.Gen.describe

let prop_shape_invariants =
  Test.make ~name:"config sweep: generated shape invariants" ~count:50
    gen_config ~print:print_config (fun cfg ->
      let files = Corpus.Gen.generate cfg in
      let again = Corpus.Gen.generate cfg in
      (* determinism holds for every config, not just the default *)
      if files <> again then QCheck2.Test.fail_report "not deterministic";
      if List.length files <> cfg.Corpus.Gen.g_files then
        QCheck2.Test.fail_report "file count";
      List.iteri
        (fun k (name, _) ->
          if name <> Printf.sprintf "gen_%03d.f" k then
            QCheck2.Test.fail_report "file naming")
        files;
      let all = String.concat "" (List.map snd files) in
      (* one main plus the advertised number of subroutines *)
      if count_occurrences all "      program main" <> 1 then
        QCheck2.Test.fail_report "main count";
      if not (contains (snd (List.hd files)) "program main") then
        QCheck2.Test.fail_report "main not in file 0";
      if
        count_occurrences all "      subroutine "
        <> Corpus.Gen.pu_count cfg - 1
      then QCheck2.Test.fail_report "subroutine count";
      (* every directive names an index array declared in the same file *)
      List.iter
        (fun (_, src) ->
          let props = Lang.Iprop.scan ~fortran:true src in
          List.iter
            (fun (name, ip) ->
              if Lang.Iprop.is_none ip then
                QCheck2.Test.fail_report "empty directive";
              if not (contains src ("integer " ^ name ^ "(")) then
                QCheck2.Test.fail_report ("undeclared index array " ^ name))
            props)
        files;
      true)

(* sampled end-to-end: every generated program analyzes cleanly and the
   differential harness holds (no proven-safe access faults at runtime,
   every observed fault sits under a maybe/unsafe row) *)
let summary_of (r : Analyses.Report.t) key =
  match List.assoc_opt key r.Analyses.Report.r_summary with
  | Some v -> v
  | None -> Alcotest.failf "summary key %s missing" key

let prop_generated_differential =
  Test.make ~name:"config sweep: differential harness holds" ~count:12
    gen_config ~print:print_config (fun cfg ->
      let cfg = { cfg with Corpus.Gen.g_files = min cfg.Corpus.Gen.g_files 2 } in
      let result = Engine.analyze_sources (Corpus.Gen.generate cfg) in
      let ctx =
        {
          Analyses.Analysis.ctx_module = result.Ipa.Analyze.r_module;
          Analyses.Analysis.ctx_result = result;
        }
      in
      let report = fst (Analyses.Diffcheck.run ctx) in
      summary_of report "ok" = "true")

(* ------------------------------------------------------------------ *)
(* Jobs invariance on the pinned generated corpus *)

let with_quiet_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_jobs_invariance () =
  let run jobs =
    let dir = Test_engine.fresh_dir () in
    let report = Filename.concat dir "report.json" in
    let cache = Filename.concat dir "cache" in
    let cfg =
      Pipeline.make ~corpus:"gen-small"
        ~analyses:[ "bounds"; "diffcheck" ]
        ~report ~cache_dir:cache ~jobs ()
    in
    let r = with_quiet_stdout (fun () -> Pipeline.run cfg) in
    Alcotest.(check int) "exit code" 0 r.Pipeline.r_code;
    (read_file report, cache)
  in
  let rep1, cache1 = run 1 in
  let rep8, cache8 = run 8 in
  Alcotest.(check string) "report bytes jobs 1 = jobs 8" rep1 rep8;
  (* ledger: the deterministic sections (verdict counts) agree; timing
     fields legitimately differ *)
  let verdicts cache =
    match Dragon.Ledgerview.load ~cache_dir:cache with
    | Error e -> Alcotest.fail e
    | Ok [ run ] ->
      List.map
        (fun k -> (k, Dragon.Ledgerview.metric run.Dragon.Ledgerview.record k))
        [
          "verdicts.bounds.safe";
          "verdicts.bounds.unsafe";
          "verdicts.bounds.maybe";
          "exit_code";
          "diagnostics";
        ]
    | Ok runs -> Alcotest.failf "expected one ledger run, got %d" (List.length runs)
  in
  Alcotest.(check bool) "ledger verdicts jobs 1 = jobs 8" true
    (verdicts cache1 = verdicts cache8)

let suite =
  [
    Alcotest.test_case "seed determinism + pinned floors" `Quick
      test_seed_determinism;
    Alcotest.test_case "degenerate configs rejected" `Quick
      test_invalid_configs;
    QCheck_alcotest.to_alcotest prop_shape_invariants;
    QCheck_alcotest.to_alcotest prop_generated_differential;
    Alcotest.test_case "gen-small jobs-invariant report + ledger" `Slow
      test_jobs_invariance;
  ]
