(* The hash-consed region algebra: interning soundness (equal ids iff
   structurally equal after normalization), the n-way union and the
   bucketed summary builder against their reference folds, and end-to-end
   byte-identity of the fast and reference join paths on every corpus. *)

open QCheck2

(* Run [f] under the given join path, restoring the default afterwards.
   [false] is the pre-interning reference configuration (per-entry summary
   folds, no interned-id short-circuit, no implies memo). *)
let with_join_path fast f =
  Regions.Region.set_fast_join fast;
  Linear.System.set_implies_memo_enabled fast;
  Fun.protect
    ~finally:(fun () ->
      Regions.Region.set_fast_join true;
      Linear.System.set_implies_memo_enabled true)
    f

let same_region (a : Regions.Region.t) (b : Regions.Region.t) =
  a.Regions.Region.ndims = b.Regions.Region.ndims
  && Linear.System.equal a.Regions.Region.sys b.Regions.Region.sys
  && Regions.Region.equal_display a b
  && a.Regions.Region.exact = b.Regions.Region.exact

(* ---- generators ------------------------------------------------------ *)

let d0 = Linear.Var.subscript 0
let d1 = Linear.Var.subscript 1

(* constraints over the two subscript dimensions, built from the public
   constructors only (so every term goes through the interner) *)
let gen_constr =
  Gen.(
    let* c = int_range (-10) 10 in
    let* dk = oneofl [ d0; d1 ] in
    oneofl
      [
        Linear.Constr.ge (Linear.Expr.var dk) (Linear.Expr.of_int c);
        Linear.Constr.le (Linear.Expr.var dk) (Linear.Expr.of_int c);
        Linear.Constr.le (Linear.Expr.var d0)
          (Linear.Expr.add (Linear.Expr.var d1) (Linear.Expr.of_int c));
        Linear.Constr.eq (Linear.Expr.var dk) (Linear.Expr.of_int c);
      ])

let gen_constrs = Gen.(list_size (int_range 1 4) gen_constr)

let gen_region =
  Gen.(
    let* cs = gen_constrs in
    let* exact = bool in
    return
      (Regions.Region.make ~ndims:2
         ~sys:(Linear.System.of_list cs)
         ~strides:[ Regions.Region.Sconst 1; Regions.Region.Sconst 1 ]
         ~exact))

(* ---- interning soundness --------------------------------------------- *)

let test_sharing () =
  let open Linear in
  let e1 = Expr.add (Expr.add (Expr.var d0) (Expr.var d1)) (Expr.of_int 3) in
  let e2 = Expr.add (Expr.var d0) (Expr.add (Expr.var d1) (Expr.of_int 3)) in
  Alcotest.(check bool) "assoc-equal exprs share one node" true (e1 == e2);
  Alcotest.(check int) "same id" (Expr.id e1) (Expr.id e2);
  let c1 = Constr.le e1 (Expr.of_int 7) in
  let c2 = Constr.le e2 (Expr.of_int 7) in
  Alcotest.(check bool) "normal-equal constrs share one node" true (c1 == c2);
  let s1 = System.of_list [ c1; Constr.ge (Expr.var d0) (Expr.of_int 0) ] in
  let s2 = System.of_list [ Constr.ge (Expr.var d0) (Expr.of_int 0); c2 ] in
  Alcotest.(check bool) "permuted systems share one node" true (s1 == s2);
  Alcotest.(check int) "same system id" (System.id s1) (System.id s2);
  Alcotest.(check bool) "distinct contents, distinct ids" false
    (System.equal s1 System.top)

let prop_intern_sound =
  Test.make ~name:"equal ids iff structurally equal (expr/constr/system)"
    ~count:300
    Gen.(pair gen_constrs gen_constrs)
    (fun (cs1, cs2) ->
      let s1 = Linear.System.of_list cs1 in
      let s2 = Linear.System.of_list cs2 in
      let structural =
        List.equal Linear.Constr.equal (Linear.System.to_list s1)
          (Linear.System.to_list s2)
      in
      Linear.System.equal s1 s2 = structural
      && (Linear.System.id s1 = Linear.System.id s2) = structural
      && List.for_all
           (fun c1 ->
             List.for_all
               (fun c2 ->
                 Linear.Constr.equal c1 c2 = (Linear.Constr.compare c1 c2 = 0)
                 && Linear.Expr.equal (Linear.Constr.expr c1)
                      (Linear.Constr.expr c2)
                    = (Linear.Expr.compare (Linear.Constr.expr c1)
                         (Linear.Constr.expr c2)
                      = 0))
               cs2)
           cs1)

(* ---- differential: n-way union vs reference fold --------------------- *)

let prop_union_many =
  Test.make ~name:"union_many = reference fold of union_approx" ~count:200
    Gen.(list_size (int_range 1 6) gen_region)
    (fun rs ->
      let fast =
        with_join_path true (fun () -> Regions.Region.union_many rs)
      in
      let reference =
        with_join_path false (fun () ->
            List.fold_left Regions.Region.union_approx (List.hd rs)
              (List.tl rs))
      in
      same_region fast reference)

(* ---- differential: bucketed summary builder vs add_entry fold -------- *)

let prop_builder =
  (* a small region pool + many picks exercises both the display-equal
     merge and the per-slot cap collapse of Summary.add_entry *)
  Test.make ~name:"Summary.add_entries = fold of add_entry" ~count:100
    Gen.(
      pair
        (list_size (return 12) gen_region)
        (list_size (int_range 0 40)
           (triple (int_range 0 3) bool (int_range 0 11))))
    (fun (pool, picks) ->
      let pool = Array.of_list pool in
      let entries =
        List.map
          (fun (k, use, ri) ->
            {
              Ipa.Summary.e_key =
                (if k < 2 then Ipa.Summary.Kglobal k
                 else Ipa.Summary.Kformal (k - 2));
              e_mode = (if use then Regions.Mode.USE else Regions.Mode.DEF);
              e_region = pool.(ri);
              e_count = 1 + (ri mod 3);
            })
          picks
      in
      let fast =
        with_join_path true (fun () -> Ipa.Summary.add_entries [] entries)
      in
      let reference =
        with_join_path false (fun () ->
            List.fold_left Ipa.Summary.add_entry [] entries)
      in
      List.length fast = List.length reference
      && List.for_all2
           (fun (a : Ipa.Summary.entry) (b : Ipa.Summary.entry) ->
             a.Ipa.Summary.e_key = b.Ipa.Summary.e_key
             && Regions.Mode.equal a.Ipa.Summary.e_mode b.Ipa.Summary.e_mode
             && a.Ipa.Summary.e_count = b.Ipa.Summary.e_count
             && same_region a.Ipa.Summary.e_region b.Ipa.Summary.e_region)
           fast reference)

(* ---- corpora: both join paths byte-identical at any --jobs ----------- *)

let test_corpus_identity () =
  List.iter
    (fun corpus ->
      let files = Test_engine.corpus_files corpus in
      let render_with ~fast ~jobs =
        with_join_path fast (fun () ->
            Linear.System.clear_cache ();
            Test_engine.render
              (Engine.run (Engine.config ~jobs ()) (Test_engine.lower files))
                .Engine.e_result)
      in
      let base = render_with ~fast:true ~jobs:1 in
      Test_engine.check_same_output (corpus ^ " reference jobs=1") base
        (render_with ~fast:false ~jobs:1);
      Test_engine.check_same_output (corpus ^ " reference jobs=4") base
        (render_with ~fast:false ~jobs:4);
      Test_engine.check_same_output (corpus ^ " fast jobs=4") base
        (render_with ~fast:true ~jobs:4))
    [ "lu"; "matrix"; "fig1"; "stride" ]

let suite =
  [
    Alcotest.test_case "interned terms are physically shared" `Quick
      test_sharing;
    QCheck_alcotest.to_alcotest prop_intern_sound;
    QCheck_alcotest.to_alcotest prop_union_many;
    QCheck_alcotest.to_alcotest prop_builder;
    Alcotest.test_case "corpora byte-identical (fast vs reference join)" `Slow
      test_corpus_identity;
  ]
