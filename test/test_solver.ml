(* The fast solver's contract: the packed/pruned/memoized query layer must
   be answer-identical to the pristine reference implementation kept in
   [Linear.System.Reference] — on random small systems (including ones with
   fractional coefficients, which exercise the reference fallback) and on
   every corpus end-to-end, where the emitted .rgn/.dgn/.cfg bytes must not
   move at all. *)

open Numeric
open Linear

let r = Rat.of_int
let x = Var.fresh ~name:"sx" Var.Ivar
let y = Var.fresh ~name:"sy" Var.Ivar
let z = Var.fresh ~name:"sz" Var.Ivar
let e_of_int = Expr.of_int

(* ---------- generators ---------- *)

let gen_coeff = QCheck2.Gen.int_range (-3) 3

(* constraints over x, y, z; a slice of them equalities, and a slice with a
   denominator-2 coefficient so packing fails and the reference fallback
   kicks in *)
let gen_constr =
  QCheck2.Gen.(
    let* a = gen_coeff and* b = gen_coeff and* c = gen_coeff in
    let* k = int_range (-8) 8 in
    let* halve = frequencyl [ (4, false); (1, true) ] in
    let* eq = frequencyl [ (5, false); (1, true) ] in
    let ca = if halve then Rat.make a 2 else r a in
    let e =
      Expr.add (Expr.monom ca x)
        (Expr.add (Expr.monom (r b) y)
           (Expr.add (Expr.monom (r c) z) (e_of_int k)))
    in
    return (Constr.make e (if eq then Constr.Eq else Constr.Le)))

let box =
  [
    Constr.ge (Expr.var x) (e_of_int (-6));
    Constr.le (Expr.var x) (e_of_int 6);
    Constr.ge (Expr.var y) (e_of_int (-6));
    Constr.le (Expr.var y) (e_of_int 6);
    Constr.ge (Expr.var z) (e_of_int (-6));
    Constr.le (Expr.var z) (e_of_int 6);
  ]

let gen_system =
  QCheck2.Gen.(
    map
      (fun cs -> System.meet (System.of_list cs) (System.of_list box))
      (list_size (int_range 0 5) gen_constr))

let print_system s = Format.asprintf "%a" System.pp s
let print_constr c = Format.asprintf "%a" Constr.pp c

(* run [f] once with the memo cache off and once with it on (cleared), and
   require both to agree with the reference answer *)
let both_cache_modes check =
  System.set_cache_enabled false;
  let off = check () in
  System.set_cache_enabled true;
  System.clear_cache ();
  let on = check () in
  off && on

let prop_feasible_agrees =
  QCheck2.Test.make ~name:"fast feasible = reference feasible" ~count:300
    gen_system ~print:print_system (fun s ->
      let expected = System.Reference.feasible s in
      both_cache_modes (fun () -> System.feasible s = expected))

let prop_implies_agrees =
  QCheck2.Test.make ~name:"fast implies = reference implies" ~count:300
    QCheck2.Gen.(pair gen_system gen_constr)
    ~print:QCheck2.Print.(pair print_system print_constr)
    (fun (s, c) ->
      let expected = System.Reference.implies s c in
      both_cache_modes (fun () -> System.implies s c = expected))

let prop_includes_agrees =
  QCheck2.Test.make ~name:"fast includes = reference includes" ~count:200
    QCheck2.Gen.(pair gen_system gen_system)
    ~print:QCheck2.Print.(pair print_system print_system)
    (fun (a, b) ->
      let expected = System.Reference.includes a b in
      both_cache_modes (fun () -> System.includes a b = expected))

let prop_disjoint_agrees =
  QCheck2.Test.make ~name:"fast disjoint = reference disjoint" ~count:200
    QCheck2.Gen.(pair gen_system gen_system)
    ~print:QCheck2.Print.(pair print_system print_system)
    (fun (a, b) ->
      let expected = System.Reference.disjoint a b in
      both_cache_modes (fun () -> System.disjoint a b = expected))

let rat_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Rat.equal a b
  | _ -> false

let prop_bounds_sample_agree =
  QCheck2.Test.make ~name:"bounds/sample = reference bounds/sample" ~count:200
    gen_system ~print:print_system (fun s ->
      let lo, hi = System.bounds x s
      and lo', hi' = System.Reference.bounds x s in
      rat_opt_equal lo lo' && rat_opt_equal hi hi'
      &&
      match (System.sample s, System.Reference.sample s) with
      | None, None -> true
      | Some a, Some b ->
        List.for_all (fun v -> Rat.equal (a v) (b v)) [ x; y; z ]
      | _ -> false)

(* ---------- end-to-end: corpora under reference mode ---------- *)

let corpus_files = function
  | "lu" -> Corpus.Nas_lu.files ()
  | "matrix" -> [ Corpus.Small.matrix_c ]
  | "fig1" -> [ Corpus.Small.fig1_f ]
  | "stride" -> [ Corpus.Small.stride_f ]
  | other -> Alcotest.failf "unknown corpus %s" other

let lower files = Whirl.Lower.lower (Lang.Frontend.load ~files)

let render (r : Ipa.Analyze.result) =
  let blocks =
    List.concat_map
      (fun (proc, cfg) ->
        Array.to_list
          (Array.map
             (fun (b : Cfg.block) ->
               {
                 Rgnfile.Files.cb_proc = proc;
                 cb_id = b.Cfg.id;
                 cb_label = b.Cfg.label;
                 cb_succs = b.Cfg.succs;
               })
             cfg.Cfg.blocks))
      r.Ipa.Analyze.r_cfgs
  in
  ( Rgnfile.Files.write_rgn r.Ipa.Analyze.r_rows,
    Rgnfile.Files.write_dgn r.Ipa.Analyze.r_dgn,
    Rgnfile.Files.write_cfg blocks )

let check_same_output name (rgn_a, dgn_a, cfg_a) (rgn_b, dgn_b, cfg_b) =
  Alcotest.(check bool) (name ^ " .rgn byte-identical") true (rgn_a = rgn_b);
  Alcotest.(check bool) (name ^ " .dgn byte-identical") true (dgn_a = dgn_b);
  Alcotest.(check bool) (name ^ " .cfg byte-identical") true (cfg_a = cfg_b)

let test_corpora_identical () =
  List.iter
    (fun corpus ->
      let files = corpus_files corpus in
      let fast = render (Engine.analyze (lower files)) in
      System.set_reference_mode true;
      let reference =
        Fun.protect
          ~finally:(fun () -> System.set_reference_mode false)
          (fun () -> render (Engine.analyze (lower files)))
      in
      check_same_output (corpus ^ " reference vs fast") reference fast)
    [ "lu"; "matrix"; "fig1"; "stride" ]

(* ---------- learned core: query sequences against shared systems ----------

   The learned contexts answer later queries from facts recorded by earlier
   ones (direction thresholds, variable bounds), so correctness depends on
   the whole query *sequence*, not single queries: ask every constraint
   twice against a shared feasible system and a shared infeasible one, and
   require each answer to equal the reference eliminator's.  (Clamped
   regions reuse these same systems through [Region.extent_check]; the
   corpus test below covers that end to end.) *)

let prop_learned_sequence =
  QCheck2.Test.make ~name:"learned context sequences = reference" ~count:150
    QCheck2.Gen.(pair gen_system (list_size (int_range 1 12) gen_constr))
    ~print:QCheck2.Print.(pair print_system (list print_constr))
    (fun (s, cs) ->
      System.set_solver_core `Learned;
      System.clear_cache ();
      (* [s] contains [box] (x <= 6), so demanding x >= 10 is infeasible *)
      let infeas = System.add (Constr.ge (Expr.var x) (e_of_int 10)) s in
      List.for_all
        (fun c ->
          let expected = System.Reference.implies s c in
          let expected_inf = System.Reference.implies infeas c in
          System.implies s c = expected
          && System.implies s c = expected
          && System.implies infeas c = expected_inf
          && System.implies infeas c = expected_inf
          && System.feasible s = System.Reference.feasible s
          && not (System.feasible infeas))
        cs)

(* every solver core, at jobs 1 and 4, must emit the same project bytes *)
let test_cores_jobs_identical () =
  List.iter
    (fun corpus ->
      let files = corpus_files corpus in
      let base = ref None in
      List.iter
        (fun (core, core_name) ->
          List.iter
            (fun jobs ->
              System.set_solver_core core;
              System.clear_cache ();
              let out =
                Fun.protect
                  ~finally:(fun () -> System.set_solver_core `Learned)
                  (fun () -> render (Engine.analyze ~jobs (lower files)))
              in
              let name =
                Printf.sprintf "%s %s jobs=%d vs baseline" corpus core_name
                  jobs
              in
              match !base with
              | None -> base := Some out
              | Some b -> check_same_output name b out)
            [ 1; 4 ])
        [ (`Learned, "learned"); (`Packed, "packed"); (`Reference, "reference") ])
    [ "lu"; "matrix" ]

(* [clear_cache] must flush the learned contexts and activity tables along
   with the memos: two identical runs from a cleared state produce the same
   deterministic stats block and re-create the same number of contexts —
   nothing carried over can shift either *)
let test_no_cross_run_leak () =
  let files = corpus_files "matrix" in
  let run () =
    System.clear_cache ();
    Solver_stats.reset ();
    ignore (render (Engine.analyze (lower files)));
    let d = Solver_stats.snapshot () in
    (Format.asprintf "%a" Solver_stats.pp_deterministic d,
     d.Solver_stats.ctx_contexts)
  in
  let det1, ctx1 = run () in
  let det2, ctx2 = run () in
  let det3, ctx3 = run () in
  Alcotest.(check string) "deterministic stats identical (run 2)" det1 det2;
  Alcotest.(check string) "deterministic stats identical (run 3)" det1 det3;
  Alcotest.(check int) "contexts re-created, not leaked (run 2)" ctx1 ctx2;
  Alcotest.(check int) "contexts re-created, not leaked (run 3)" ctx1 ctx3

let test_stats_move () =
  Solver_stats.reset ();
  System.clear_cache ();
  let s = System.of_list box in
  ignore (System.feasible s);
  ignore (System.feasible s);
  let d = Solver_stats.snapshot () in
  Alcotest.(check int) "two queries" 2 d.Solver_stats.queries;
  Alcotest.(check int) "one miss" 1 d.Solver_stats.cache_misses;
  Alcotest.(check int) "one hit" 1 d.Solver_stats.cache_hits

let suite =
  [
    QCheck_alcotest.to_alcotest prop_feasible_agrees;
    QCheck_alcotest.to_alcotest prop_implies_agrees;
    QCheck_alcotest.to_alcotest prop_includes_agrees;
    QCheck_alcotest.to_alcotest prop_disjoint_agrees;
    QCheck_alcotest.to_alcotest prop_bounds_sample_agree;
    QCheck_alcotest.to_alcotest prop_learned_sequence;
    Alcotest.test_case "corpora byte-identical (reference vs fast)" `Quick
      test_corpora_identical;
    Alcotest.test_case "corpora byte-identical (3 cores x jobs 1/4)" `Quick
      test_cores_jobs_identical;
    Alcotest.test_case "clear_cache leaves no cross-run state" `Quick
      test_no_cross_run_leak;
    Alcotest.test_case "solver stats count queries and memo hits" `Quick
      test_stats_move;
  ]
