(* The engine's contract: parallel and cached runs are byte-identical to the
   serial reference path, warm caches hit for every PU, and invalidation
   follows the call graph — a change re-analyzes exactly the changed PU
   (collection) and its transitive callers (summaries). *)

let corpus_files = function
  | "lu" -> Corpus.Nas_lu.files ()
  | "matrix" -> [ Corpus.Small.matrix_c ]
  | "fig1" -> [ Corpus.Small.fig1_f ]
  | "stride" -> [ Corpus.Small.stride_f ]
  | other -> Alcotest.failf "unknown corpus %s" other

let lower files = Whirl.Lower.lower (Lang.Frontend.load ~files)

(* the exact .rgn/.dgn/.cfg file contents uhc would write *)
let render (r : Ipa.Analyze.result) =
  let blocks =
    List.concat_map
      (fun (proc, cfg) ->
        Array.to_list
          (Array.map
             (fun (b : Cfg.block) ->
               {
                 Rgnfile.Files.cb_proc = proc;
                 cb_id = b.Cfg.id;
                 cb_label = b.Cfg.label;
                 cb_succs = b.Cfg.succs;
               })
             cfg.Cfg.blocks))
      r.Ipa.Analyze.r_cfgs
  in
  ( Rgnfile.Files.write_rgn r.Ipa.Analyze.r_rows,
    Rgnfile.Files.write_dgn r.Ipa.Analyze.r_dgn,
    Rgnfile.Files.write_cfg blocks )

let check_same_output name (rgn_a, dgn_a, cfg_a) (rgn_b, dgn_b, cfg_b) =
  Alcotest.(check bool) (name ^ " .rgn byte-identical") true (rgn_a = rgn_b);
  Alcotest.(check bool) (name ^ " .dgn byte-identical") true (dgn_a = dgn_b);
  Alcotest.(check bool) (name ^ " .cfg byte-identical") true (cfg_a = cfg_b)

let test_parallel_identical () =
  List.iter
    (fun corpus ->
      let files = corpus_files corpus in
      let serial = render (Engine.analyze (lower files)) in
      let par =
        Engine.run (Engine.config ~jobs:4 ()) (lower files)
      in
      Alcotest.(check int)
        (corpus ^ " parallel jobs") 4 par.Engine.e_stats.Engine.Stats.s_jobs;
      check_same_output (corpus ^ " parallel") serial
        (render par.Engine.e_result);
      (* warm in-memory cache, fresh lowering: everything re-interned *)
      let store = Engine_store.in_memory () in
      let cfg = Engine.config ~jobs:4 ~store () in
      let _cold = Engine.run cfg (lower files) in
      let warm = Engine.run cfg (lower files) in
      check_same_output (corpus ^ " warm") serial
        (render warm.Engine.e_result))
    [ "lu"; "matrix"; "fig1"; "stride" ]

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "engine_cache_%d_%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d

let test_disk_cache_full_hits () =
  let files = corpus_files "lu" in
  let dir = fresh_dir () in
  let cold =
    Engine.run
      (Engine.config ~jobs:4 ~store:(Engine_store.create ~dir ()) ())
      (lower files)
  in
  let st = cold.Engine.e_stats in
  Alcotest.(check int) "cold collect hits" 0 st.Engine.Stats.s_collect_hits;
  Alcotest.(check int) "cold summary hits" 0 st.Engine.Stats.s_summary_hits;
  (* a fresh store over the same directory simulates a second tool
     invocation: everything must come back from disk *)
  let warm =
    Engine.run
      (Engine.config ~jobs:4 ~store:(Engine_store.create ~dir ()) ())
      (lower files)
  in
  let wt = warm.Engine.e_stats in
  let n = wt.Engine.Stats.s_pus in
  Alcotest.(check bool) "has PUs" true (n > 0);
  Alcotest.(check int) "warm collect hits" n wt.Engine.Stats.s_collect_hits;
  Alcotest.(check int) "warm collect misses" 0 wt.Engine.Stats.s_collect_misses;
  Alcotest.(check int) "warm summary hits" n wt.Engine.Stats.s_summary_hits;
  Alcotest.(check int) "warm summary misses" 0 wt.Engine.Stats.s_summary_misses;
  check_same_output "disk warm" (render cold.Engine.e_result)
    (render warm.Engine.e_result)

(* main calls f and h; f calls g: a chain plus an unrelated leaf *)
let chain_src ~g_bound ~f_bound =
  ( "chain.f",
    Printf.sprintf
      {|      program main
      integer, dimension :: a(1:100)
      call f(a)
      call h(a)
      end

      subroutine f(a)
      integer, dimension :: a(1:100)
      integer i
      do i = 1, %d
        a(i) = i
      end do
      call g(a)
      end subroutine

      subroutine g(a)
      integer, dimension :: a(1:100)
      integer i
      do i = 1, %d
        a(i) = a(i) + 1
      end do
      end subroutine

      subroutine h(a)
      integer, dimension :: a(1:100)
      integer i
      do i = 1, 5
        a(i) = 0
      end do
      end subroutine
|}
      f_bound g_bound )

let run_chain store src =
  Engine.run (Engine.config ~jobs:2 ~store ()) (lower [ src ])

let test_invalidation_callers_only () =
  (* edit g: g recollects; g, f, main re-summarize; h stays cached *)
  let store = Engine_store.in_memory () in
  let _ = run_chain store (chain_src ~g_bound:10 ~f_bound:20) in
  let r2 = run_chain store (chain_src ~g_bound:30 ~f_bound:20) in
  let st = r2.Engine.e_stats in
  Alcotest.(check int) "PUs" 4 st.Engine.Stats.s_pus;
  Alcotest.(check int) "edit g: collect misses" 1
    st.Engine.Stats.s_collect_misses;
  Alcotest.(check int) "edit g: summary misses" 3
    st.Engine.Stats.s_summary_misses;
  Alcotest.(check int) "edit g: summary hits" 1
    st.Engine.Stats.s_summary_hits;
  (* the incremental result equals a from-scratch analysis *)
  let fresh =
    Engine.analyze (lower [ chain_src ~g_bound:30 ~f_bound:20 ])
  in
  check_same_output "edit g" (render fresh) (render r2.Engine.e_result);
  (* edit f: f recollects; f, main re-summarize; g and h stay cached *)
  let store = Engine_store.in_memory () in
  let _ = run_chain store (chain_src ~g_bound:10 ~f_bound:20) in
  let r3 = run_chain store (chain_src ~g_bound:10 ~f_bound:40) in
  let st = r3.Engine.e_stats in
  Alcotest.(check int) "edit f: collect misses" 1
    st.Engine.Stats.s_collect_misses;
  Alcotest.(check int) "edit f: summary misses" 2
    st.Engine.Stats.s_summary_misses;
  Alcotest.(check int) "edit f: summary hits" 2
    st.Engine.Stats.s_summary_hits

let test_unchanged_rerun_all_hits () =
  let store = Engine_store.in_memory () in
  let src = chain_src ~g_bound:10 ~f_bound:20 in
  let _ = run_chain store src in
  let r = run_chain store src in
  let st = r.Engine.e_stats in
  Alcotest.(check int) "collect misses" 0 st.Engine.Stats.s_collect_misses;
  Alcotest.(check int) "summary misses" 0 st.Engine.Stats.s_summary_misses

let suite =
  [
    Alcotest.test_case "parallel and warm byte-identical" `Slow
      test_parallel_identical;
    Alcotest.test_case "disk cache: second invocation all hits" `Slow
      test_disk_cache_full_hits;
    Alcotest.test_case "invalidation: changed PU + transitive callers" `Quick
      test_invalidation_callers_only;
    Alcotest.test_case "unchanged rerun: all hits" `Quick
      test_unchanged_rerun_all_hits;
  ]
