(* Edge cases and failure behaviour across the pipeline: recursion, parser
   diagnostics, CSV quoting, empty programs, deep nesting. *)

let analyze files = Engine.analyze_sources files

let test_recursion_handled () =
  (* direct recursion: the analysis must terminate and fall back to the
     opaque (whole-array) summary rather than loop *)
  let src =
    ( "rec.f",
      {|      program recmain
      integer a(1:16)
      common /g/ a
      call walk(1)
      print *, a(1)
      end

      subroutine walk(d)
      integer a(1:16)
      common /g/ a
      integer d
      a(d) = d
      if (d .lt. 8) then
        call walk(d + 1)
      end if
      end
|} )
  in
  let r = analyze [ src ] in
  Alcotest.(check bool) "recursive flagged" true
    (Ipa.Callgraph.is_recursive r.Ipa.Analyze.r_callgraph "walk");
  (* recmain still gets a conservative DEF of a through the call *)
  let s = Ipa.Analyze.summary_of r "recmain" in
  Alcotest.(check bool) "recmain sees a DEF of the global" true
    (List.exists
       (fun (e : Ipa.Summary.entry) ->
         Regions.Mode.equal e.Ipa.Summary.e_mode Regions.Mode.DEF)
       s);
  (* and the interpreter executes the recursion *)
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check string) "recursion runs" "1\n" o.Interp.out_text

let test_mutual_recursion () =
  let src =
    ( "mut.f",
      {|      program mutmain
      integer x
      x = 0
      call even(6, x)
      print *, x
      end

      subroutine even(n, r)
      integer n, r
      if (n .eq. 0) then
        r = 1
      else
        call odd(n - 1, r)
      end if
      end

      subroutine odd(n, r)
      integer n, r
      if (n .eq. 0) then
        r = 0
      else
        call even(n - 1, r)
      end if
      end
|} )
  in
  let r = analyze [ src ] in
  Alcotest.(check bool) "even in cycle" true
    (Ipa.Callgraph.is_recursive r.Ipa.Analyze.r_callgraph "even");
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check string) "mutual recursion runs" "1\n" o.Interp.out_text

let expect_error files fragment =
  try
    ignore (Lang.Frontend.load ~files);
    Alcotest.failf "expected an error mentioning %S" fragment
  with Lang.Diag.Frontend_error d ->
    let msg = d.Lang.Diag.message in
    let contains =
      let nh = String.length msg and nn = String.length fragment in
      let rec go i = i + nn <= nh && (String.sub msg i nn = fragment || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg fragment)
      true contains

let test_parser_diagnostics () =
  expect_error [ ("t.f", "      program t\n      do i = 1\n      end do\n      end\n") ] "expected";
  expect_error [ ("t.f", "      program t\n      integer a(1:\n      end\n") ] "expected";
  expect_error [ ("t.f", "      program t\n") ] "missing 'end'";
  expect_error [ ("t.c", "int main() { return 0;\n") ] "unterminated";
  expect_error [ ("t.zz", "") ] "unknown source extension"

let test_diag_locations () =
  try
    ignore
      (Lang.Frontend.load
         ~files:[ ("t.f", "      program t\n      integer a(2)\n      a(1, 2) = 0\n      end\n") ]);
    Alcotest.fail "expected rank error"
  with Lang.Diag.Frontend_error d ->
    Alcotest.(check int) "error on line 3" 3 (Lang.Loc.line d.Lang.Diag.loc)

let test_csv_quoting () =
  let fields = [ "plain"; "has,comma"; "has\"quote"; "multi\nline" ] in
  let line = Rgnfile.Files.join_csv fields in
  Alcotest.(check (list string)) "round trip" fields (Rgnfile.Files.split_csv line)

let test_empty_program () =
  let r = analyze [ ("t.f", "      program empty\n      end\n") ] in
  Alcotest.(check int) "no rows" 0 (List.length r.Ipa.Analyze.r_rows);
  Alcotest.(check int) "one proc" 1
    (Ipa.Callgraph.node_count r.Ipa.Analyze.r_callgraph);
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check string) "no output" "" o.Interp.out_text

let test_deep_nesting () =
  (* 8 nested loops over a tiny range: the region machinery handles deep
     contexts without blowup *)
  let body = ref "          a(i1 + i8) = i4\n" in
  for k = 8 downto 1 do
    body :=
      Printf.sprintf "      do i%d = 1, 2\n%s      end do\n" k !body
  done;
  let src =
    Printf.sprintf
      "      program deep\n      integer a(1:32)\n      integer i1, i2, i3, i4, i5, i6, i7, i8\n%s      end\n"
      !body
  in
  let r = analyze [ ("deep.f", src) ] in
  let row =
    List.find
      (fun (row : Rgnfile.Row.t) ->
        row.Rgnfile.Row.array = "a" && row.Rgnfile.Row.mode = "DEF")
      r.Ipa.Analyze.r_rows
  in
  Alcotest.(check string) "lb 2" "2" row.Rgnfile.Row.lb;
  Alcotest.(check string) "ub 4" "4" row.Rgnfile.Row.ub

let test_symbolic_step_is_conservative () =
  let src =
    ( "t.f",
      {|      program t
      integer a(1:64)
      integer i, s
      s = 3
      call go(s)
      end

      subroutine go(s)
      integer s, i
      integer a(1:64)
      common /g/ a
      do i = 1, 20, s
        a(i) = i
      end do
      end
|} )
  in
  let r = analyze [ src ] in
  let row =
    List.find
      (fun (row : Rgnfile.Row.t) ->
        row.Rgnfile.Row.array = "a" && row.Rgnfile.Row.mode = "DEF")
      r.Ipa.Analyze.r_rows
  in
  (* unknown step: bounds stay, stride is unknown *)
  Alcotest.(check string) "lb" "1" row.Rgnfile.Row.lb;
  Alcotest.(check string) "ub" "20" row.Rgnfile.Row.ub;
  Alcotest.(check string) "stride unknown" "*" row.Rgnfile.Row.stride

let test_many_files () =
  (* a program split over several units still links into one call graph *)
  let unit k =
    ( Printf.sprintf "u%d.f" k,
      Printf.sprintf
        "      subroutine s%d(x)\n      integer x\n      x = x + %d\n      end\n"
        k k )
  in
  let main =
    ( "main.f",
      "      program m\n      integer x\n      x = 0\n"
      ^ String.concat ""
          (List.init 6 (fun k -> Printf.sprintf "      call s%d(x)\n" (k + 1)))
      ^ "      print *, x\n      end\n" )
  in
  let r = analyze (main :: List.init 6 (fun k -> unit (k + 1))) in
  Alcotest.(check int) "7 procs" 7
    (Ipa.Callgraph.node_count r.Ipa.Analyze.r_callgraph);
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check string) "1+2+..+6" "21\n" o.Interp.out_text

let test_assumed_shape_negative_esize () =
  (* F90 assumed-shape formal: the paper's negative-element-size convention
     ("If it is negative, it specifies a non-contiguous array") plus the
     variable-length total-size-0 rule *)
  let src =
    ( "t.f",
      {|      program t
      double precision x(1:16)
      call scale(x)
      end

      subroutine scale(v)
      double precision v(:)
      integer i
      do i = 1, 8
        v(i) = v(i) * 2.0d0
      end do
      end
|} )
  in
  let r = analyze [ src ] in
  let row =
    List.find
      (fun (row : Rgnfile.Row.t) ->
        row.Rgnfile.Row.array = "v" && row.Rgnfile.Row.mode = "DEF")
      r.Ipa.Analyze.r_rows
  in
  Alcotest.(check int) "negative element size" (-8) row.Rgnfile.Row.element_size;
  Alcotest.(check int) "total size 0" 0 row.Rgnfile.Row.tot_size;
  Alcotest.(check int) "size bytes 0" 0 row.Rgnfile.Row.size_bytes;
  Alcotest.(check int) "density 0" 0 row.Rgnfile.Row.acc_density;
  Alcotest.(check string) "region still computed" "1" row.Rgnfile.Row.lb;
  Alcotest.(check string) "region still computed" "8" row.Rgnfile.Row.ub

let test_mixed_languages () =
  (* one program from a C unit and a Fortran unit: the shared IR makes the
     interprocedural analysis language-agnostic, as OpenUH's WHIRL does *)
  let c_main =
    ( "main.c",
      {|double buf[32];
int main() {
  int i;
  finit();
  for (i = 0; i < 32; i++) {
    buf[i] = buf[i] * 2.0;
  }
  printf("%g", buf[3]);
  return 0;
}
|} )
  in
  let f_helper =
    ( "finit.f",
      {|      subroutine finit
      double precision buf(0:31)
      common /global/ buf
      integer i
      do i = 0, 31
        buf(i) = i
      end do
      end
|} )
  in
  let r = analyze [ c_main; f_helper ] in
  Alcotest.(check int) "two procs" 2
    (Ipa.Callgraph.node_count r.Ipa.Analyze.r_callgraph);
  (* both sides' accesses meet on the shared global *)
  let buf_rows =
    List.filter
      (fun (row : Rgnfile.Row.t) -> row.Rgnfile.Row.array = "buf")
      r.Ipa.Analyze.r_rows
  in
  let files =
    List.map (fun (row : Rgnfile.Row.t) -> row.Rgnfile.Row.file) buf_rows
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "accessed from both objects"
    [ "finit.o"; "main.o" ] files;
  (* C rows display zero-based, Fortran rows honor the declared 0 lower
     bound: the loops on both sides produce a 0:31 region *)
  List.iter
    (fun file ->
      Alcotest.(check bool) (file ^ " loop region") true
        (List.exists
           (fun (row : Rgnfile.Row.t) ->
             row.Rgnfile.Row.file = file
             && row.Rgnfile.Row.lb = "0"
             && row.Rgnfile.Row.ub = "31")
           buf_rows))
    [ "finit.o"; "main.o" ];
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check string) "cross-language execution" "6" o.Interp.out_text

let test_nonunit_lower_bounds () =
  (* Fortran arrays with 0-based and negative lower bounds: the display
     must restore the declared base *)
  let src =
    ( "t.f",
      {|      program t
      integer a(0:9)
      integer b(-5:5)
      integer i
      do i = 0, 9
        a(i) = i
      end do
      do i = -5, 5
        b(i) = i
      end do
      end
|} )
  in
  let r = analyze [ src ] in
  let row name =
    List.find
      (fun (row : Rgnfile.Row.t) ->
        row.Rgnfile.Row.array = name && row.Rgnfile.Row.mode = "DEF")
      r.Ipa.Analyze.r_rows
  in
  let a = row "a" in
  Alcotest.(check string) "a lb 0" "0" a.Rgnfile.Row.lb;
  Alcotest.(check string) "a ub 9" "9" a.Rgnfile.Row.ub;
  Alcotest.(check int) "a tot" 10 a.Rgnfile.Row.tot_size;
  let b = row "b" in
  Alcotest.(check string) "b lb -5" "-5" b.Rgnfile.Row.lb;
  Alcotest.(check string) "b ub 5" "5" b.Rgnfile.Row.ub;
  Alcotest.(check int) "b tot" 11 b.Rgnfile.Row.tot_size;
  (* and the program runs: negative subscripts map correctly *)
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check string) "no output, no trap" "" o.Interp.out_text

let suite =
  [
    Alcotest.test_case "nonunit lower bounds" `Quick test_nonunit_lower_bounds;
    Alcotest.test_case "mixed C and Fortran" `Quick test_mixed_languages;
    Alcotest.test_case "assumed-shape negative esize" `Quick
      test_assumed_shape_negative_esize;
    Alcotest.test_case "direct recursion" `Quick test_recursion_handled;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "parser diagnostics" `Quick test_parser_diagnostics;
    Alcotest.test_case "diagnostic locations" `Quick test_diag_locations;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
    Alcotest.test_case "symbolic step conservative" `Quick
      test_symbolic_step_is_conservative;
    Alcotest.test_case "many compilation units" `Quick test_many_files;
  ]
