(* The IPL summary-file boundary: summaries survive the round trip through
   the textual .ipl format, including symbolic bounds, and still translate
   identically at call sites. *)

let result = lazy (Engine.analyze_sources [ Corpus.Small.fig1_f ])

let roundtrip () =
  let r = Lazy.force result in
  let m = r.Ipa.Analyze.r_module in
  let text = Ipa.Iplfile.write_unit m r.Ipa.Analyze.r_summaries in
  (m, r, text, Ipa.Iplfile.parse_unit m text)

let test_roundtrip_structure () =
  let _, r, _, parsed = roundtrip () in
  match parsed with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok summaries ->
    Alcotest.(check int) "same proc count"
      (List.length r.Ipa.Analyze.r_summaries)
      (List.length summaries);
    List.iter2
      (fun (p1, s1) (p2, s2) ->
        Alcotest.(check string) "proc name" p1 p2;
        Alcotest.(check int) (p1 ^ " entry count") (List.length s1)
          (List.length s2);
        List.iter2
          (fun (e1 : Ipa.Summary.entry) (e2 : Ipa.Summary.entry) ->
            Alcotest.(check bool) "key" true (e1.Ipa.Summary.e_key = e2.Ipa.Summary.e_key);
            Alcotest.(check string) "mode"
              (Regions.Mode.to_string e1.Ipa.Summary.e_mode)
              (Regions.Mode.to_string e2.Ipa.Summary.e_mode);
            Alcotest.(check int) "count" e1.Ipa.Summary.e_count e2.Ipa.Summary.e_count;
            Alcotest.(check bool) "display-equal regions" true
              (Regions.Region.equal_display e1.Ipa.Summary.e_region
                 e2.Ipa.Summary.e_region))
          s1 s2)
      r.Ipa.Analyze.r_summaries summaries

let test_roundtrip_semantics () =
  (* the reloaded regions must be semantically interchangeable: mutual
     convex inclusion with the originals *)
  let _, r, _, parsed = roundtrip () in
  match parsed with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok summaries ->
    List.iter2
      (fun (_, s1) (_, s2) ->
        List.iter2
          (fun (e1 : Ipa.Summary.entry) (e2 : Ipa.Summary.entry) ->
            Alcotest.(check bool) "r1 includes r2" true
              (Regions.Region.includes e1.Ipa.Summary.e_region
                 e2.Ipa.Summary.e_region);
            Alcotest.(check bool) "r2 includes r1" true
              (Regions.Region.includes e2.Ipa.Summary.e_region
                 e1.Ipa.Summary.e_region))
          s1 s2)
      r.Ipa.Analyze.r_summaries summaries

let test_translation_after_reload () =
  (* the Fig 1 independence verdict must hold with reloaded summaries *)
  let m, r, _, parsed = roundtrip () in
  match parsed with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok summaries -> (
    let info = List.assoc "add" r.Ipa.Analyze.r_infos in
    match info.Ipa.Collect.p_sites with
    | [ s1; s2 ] ->
      let conflicts =
        Ipa.Parallel.sites_independent m summaries
          ~caller:info.Ipa.Collect.p_pu s1 s2
      in
      Alcotest.(check int) "still independent" 0 (List.length conflicts)
    | _ -> Alcotest.fail "expected two sites")

let test_symbolic_bounds_roundtrip () =
  (* a summary whose region has a symbolic bound (do i = 1, n) *)
  let src =
    ( "t.f",
      {|      program t
      integer a(1:64)
      integer n
      n = 40
      call fill(a, n)
      end

      subroutine fill(b, n)
      integer b(1:64)
      integer n, i
      do i = 1, n
        b(i) = i
      end do
      end
|} )
  in
  let r = Engine.analyze_sources [ src ] in
  let m = r.Ipa.Analyze.r_module in
  let text = Ipa.Iplfile.write_unit m r.Ipa.Analyze.r_summaries in
  match Ipa.Iplfile.parse_unit m text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok summaries ->
    let fill = List.assoc "fill" summaries in
    (match fill with
    | [ e ] ->
      let d = List.hd (Regions.Region.dim_list e.Ipa.Summary.e_region) in
      (match d.Regions.Region.ub with
      | Regions.Region.Bsym expr ->
        Alcotest.(check string) "symbolic ub survives" "n - 1"
          (Linear.Expr.to_string expr)
      | _ -> Alcotest.fail "expected symbolic upper bound")
    | _ -> Alcotest.fail "expected one entry for fill")

let test_parse_errors () =
  let r = Lazy.force result in
  let m = r.Ipa.Analyze.r_module in
  (match Ipa.Iplfile.parse_unit m "entry F 0 ; USE ; 1 ; 1 ; 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "entry outside proc should fail");
  (match Ipa.Iplfile.parse_unit m "proc nosuch\nentry G missing ; USE ; 1 ; 1 ; 1\nstrides 1\nendentry\nendproc\n" with
  | Error e ->
    Alcotest.(check bool) "mentions unknown" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown global should fail");
  match Ipa.Iplfile.parse_unit m "proc p1\n" with
  | Error e -> Alcotest.(check string) "missing endproc" "missing endproc" e
  | Ok _ -> Alcotest.fail "should fail"

let test_file_save () =
  let dir = Filename.temp_file "ipl" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let r = Lazy.force result in
  let m = r.Ipa.Analyze.r_module in
  let text = Ipa.Iplfile.write_unit m r.Ipa.Analyze.r_summaries in
  let path = Ipa.Iplfile.save ~dir ~unit_name:"fig1" text in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  let loaded = Rgnfile.Files.load ~path in
  Alcotest.(check string) "contents identical" text loaded

let suite =
  [
    Alcotest.test_case "round trip structure" `Quick test_roundtrip_structure;
    Alcotest.test_case "round trip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "translation after reload" `Quick test_translation_after_reload;
    Alcotest.test_case "symbolic bounds round trip" `Quick test_symbolic_bounds_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "file save" `Quick test_file_save;
  ]
