let build_cfg src proc =
  let prog = Lang.Frontend.load ~files:[ ("t.f", src) ] in
  let m = Whirl.Lower.lower prog in
  Cfg.build (Option.get (Whirl.Ir.find_pu m proc))

let straight =
  {|      program s
      integer x
      x = 1
      x = x + 1
      print *, x
      end
|}

let with_if =
  {|      program s
      integer x
      x = 1
      if (x .gt. 0) then
        x = 2
      else
        x = 3
      end if
      print *, x
      end
|}

let with_loop =
  {|      program s
      integer i, s
      s = 0
      do i = 1, 10
        s = s + i
      end do
      print *, s
      end
|}

let with_return =
  {|      subroutine s(x)
      integer x
      if (x .gt. 0) then
        return
      end if
      x = 1
      end
|}

let test_straight_line () =
  let cfg = build_cfg straight "s" in
  (* entry -> body -> exit *)
  Alcotest.(check int) "3 blocks" 3 (Cfg.block_count cfg);
  Alcotest.(check int) "2 edges" 2 (Cfg.edge_count cfg)

let test_if_diamond () =
  let cfg = build_cfg with_if "s" in
  (* the cond block has two successors *)
  let cond_blocks =
    Array.to_list cfg.Cfg.blocks
    |> List.filter (fun (b : Cfg.block) -> List.length b.Cfg.succs = 2)
  in
  Alcotest.(check int) "one branch point" 1 (List.length cond_blocks);
  (* join reachable from both *)
  let idom = Cfg.dominators cfg in
  Alcotest.(check bool) "exit dominated by entry" true
    (idom.(cfg.Cfg.exit_) <> -1)

let test_loop_back_edge () =
  let cfg = build_cfg with_loop "s" in
  (* find the loop head: a block with an incoming back edge *)
  let rpo = Cfg.reverse_postorder cfg in
  let order = Array.make (Cfg.block_count cfg) (-1) in
  List.iteri (fun i b -> order.(b) <- i) rpo;
  let back_edges =
    Array.to_list cfg.Cfg.blocks
    |> List.concat_map (fun (b : Cfg.block) ->
           List.filter_map
             (fun s ->
               if order.(s) >= 0 && order.(b.Cfg.id) >= 0 && order.(s) <= order.(b.Cfg.id)
               then Some (b.Cfg.id, s)
               else None)
             b.Cfg.succs)
  in
  Alcotest.(check bool) "has a back edge" true (back_edges <> []);
  (* the loop head dominates the latch *)
  let latch, head = List.hd back_edges in
  Alcotest.(check bool) "head dominates latch" true (Cfg.dominates cfg head latch)

let test_return_edges_to_exit () =
  let cfg = build_cfg with_return "s" in
  let exit_preds = cfg.Cfg.blocks.(cfg.Cfg.exit_).Cfg.preds in
  Alcotest.(check bool) "two paths into exit" true (List.length exit_preds >= 2)

let test_rpo_starts_at_entry () =
  let cfg = build_cfg with_loop "s" in
  match Cfg.reverse_postorder cfg with
  | e :: _ -> Alcotest.(check int) "entry first" cfg.Cfg.entry e
  | [] -> Alcotest.fail "empty RPO"

let test_dot_and_ascii () =
  let cfg = build_cfg with_loop "s" in
  let dot = Cfg.to_dot cfg in
  let ascii = Cfg.to_ascii cfg in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dot digraph" true (contains dot "digraph");
  Alcotest.(check bool) "ascii header" true (contains ascii "CFG of s")

let suite =
  [
    Alcotest.test_case "straight line" `Quick test_straight_line;
    Alcotest.test_case "if diamond" `Quick test_if_diamond;
    Alcotest.test_case "loop back edge" `Quick test_loop_back_edge;
    Alcotest.test_case "returns edge to exit" `Quick test_return_edges_to_exit;
    Alcotest.test_case "RPO starts at entry" `Quick test_rpo_starts_at_entry;
    Alcotest.test_case "dot and ascii output" `Quick test_dot_and_ascii;
  ]
