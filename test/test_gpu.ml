let approx msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= 1e-9 +. (1e-6 *. Float.abs expected))

let test_transfer_time () =
  let link = { Gpu.Offload.latency_s = 1e-5; bandwidth_bps = 1e9 } in
  approx "zero bytes free" 0.0 (Gpu.Offload.transfer_time link ~bytes:0);
  approx "latency + payload" (1e-5 +. 1e-3)
    (Gpu.Offload.transfer_time link ~bytes:1_000_000)

let test_offload_time () =
  let link = { Gpu.Offload.latency_s = 0.0; bandwidth_bps = 1e9 } in
  let t =
    Gpu.Offload.offload_time link
      { Gpu.Offload.off_bytes_in = 500_000; off_bytes_out = 500_000; off_kernel_s = 0.25 }
  in
  approx "in + kernel + out" (0.0005 +. 0.25 +. 0.0005) t

let test_region_bytes () =
  let r =
    let i = Linear.Var.fresh ~name:"i" Linear.Var.Ivar in
    Regions.Region.of_subscripts ~extents:[ Some 100 ]
      ~loops:
        [
          {
            Regions.Region.lc_var = i;
            lc_lo = Regions.Affine.Affine (Linear.Expr.of_int 0);
            lc_hi = Regions.Affine.Affine (Linear.Expr.of_int 9);
            lc_step = Some 2;
          };
        ]
      [ Regions.Affine.Affine (Linear.Expr.var i) ]
  in
  (* 5 strided points, bounding box of 9 elements *)
  Alcotest.(check (option int)) "exact points * esize" (Some 40)
    (Gpu.Offload.region_bytes ~elem_size:8 r);
  Alcotest.(check (option int)) "box bytes" (Some 72)
    (Gpu.Offload.region_box_bytes ~elem_size:8 r)

let test_whole_array_bytes () =
  Alcotest.(check (option int)) "product" (Some 48)
    (Gpu.Offload.whole_array_bytes ~elem_size:4 ~extents:[ Some 3; Some 4 ]);
  Alcotest.(check (option int)) "unknown extent" None
    (Gpu.Offload.whole_array_bytes ~elem_size:4 ~extents:[ Some 3; None ])

let test_compare_copyin () =
  let r = Regions.Region.whole ~extents:[ Some 10 ] in
  match
    Gpu.Offload.compare_copyin ~label:"t" ~elem_size:8 ~extents:[ Some 1000 ] r
  with
  | None -> Alcotest.fail "expected comparison"
  | Some c ->
    Alcotest.(check int) "full" 8000 c.Gpu.Offload.cmp_full_bytes;
    Alcotest.(check int) "sub" 80 c.Gpu.Offload.cmp_sub_bytes;
    Alcotest.(check bool) "speedup > 1" true (c.Gpu.Offload.cmp_speedup > 1.0)

let test_speedup_monotone_in_bytes () =
  let t b = Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2 ~bytes:b in
  Alcotest.(check bool) "more bytes, more time" true (t 1000 < t 1_000_000);
  Alcotest.(check bool) "speedup consistent" true
    (Gpu.Offload.speedup ~baseline:(t 1_000_000) ~improved:(t 1000) > 1.0)

let test_omp_model () =
  let m = Gpu.Omp.default_2012 in
  let one = Gpu.Omp.region_overhead m ~threads:24 in
  approx "per-region" (5e-6 +. (24.0 *. 0.4e-6)) one;
  approx "two regions" (2.0 *. one) (Gpu.Omp.total_overhead m ~threads:24 ~regions:2);
  approx "fusion saves one region" one
    (Gpu.Omp.fusion_saving m ~threads:24 ~regions_before:2 ~regions_after:1);
  Alcotest.(check bool) "more threads cost more" true
    (Gpu.Omp.region_overhead m ~threads:24 > Gpu.Omp.region_overhead m ~threads:2)

let suite =
  [
    Alcotest.test_case "transfer time" `Quick test_transfer_time;
    Alcotest.test_case "offload time" `Quick test_offload_time;
    Alcotest.test_case "region bytes (strided)" `Quick test_region_bytes;
    Alcotest.test_case "whole-array bytes" `Quick test_whole_array_bytes;
    Alcotest.test_case "compare copyin" `Quick test_compare_copyin;
    Alcotest.test_case "speedup monotone" `Quick test_speedup_monotone_in_bytes;
    Alcotest.test_case "OpenMP overhead model" `Quick test_omp_model;
  ]
