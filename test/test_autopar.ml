(* Auto-parallelization: verdicts, private/reduction clauses, and source
   annotation. *)

let plan_of files =
  let r = Engine.analyze_sources files in
  (r, Ipa.Autopar.plan r.Ipa.Analyze.r_module r.Ipa.Analyze.r_summaries)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let test_fig1_plan () =
  let _, report = plan_of [ Corpus.Small.fig1_f ] in
  Alcotest.(check int) "two suggestions" 2
    (List.length report.Ipa.Autopar.rp_suggestions);
  Alcotest.(check int) "one rejection" 1
    (List.length report.Ipa.Autopar.rp_rejections);
  let p2 =
    List.find
      (fun s -> s.Ipa.Autopar.sg_proc = "p2")
      report.Ipa.Autopar.rp_suggestions
  in
  (* s accumulates: recognized as a sum reduction, k stays private *)
  Alcotest.(check string) "reduction clause"
    "!$omp parallel do private(k) reduction(+:s)" p2.Ipa.Autopar.sg_directive;
  let rej = List.hd report.Ipa.Autopar.rp_rejections in
  Alcotest.(check string) "add rejected" "add" rej.Ipa.Autopar.rj_proc;
  Alcotest.(check (list string)) "conflict on a" [ "a" ]
    rej.Ipa.Autopar.rj_arrays

let test_c_spelling () =
  let _, report = plan_of [ Corpus.Small.matrix_c ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) "pragma spelling" true
        (contains s.Ipa.Autopar.sg_directive "#pragma omp parallel for"))
    report.Ipa.Autopar.rp_suggestions;
  (* the propagating loop aarr[i+1] = aarr[i] must be rejected *)
  Alcotest.(check bool) "carried dependence rejected" true
    (List.exists
       (fun r -> r.Ipa.Autopar.rj_arrays = [ "aarr" ])
       report.Ipa.Autopar.rp_rejections)

let test_reduction_patterns () =
  let src =
    ( "t.f",
      {|      program t
      double precision a(1:32)
      double precision total, prod, peak
      integer i, scratch
      do i = 1, 32
        total = total + a(i)
      end do
      do i = 1, 32
        prod = prod * a(i)
      end do
      do i = 1, 32
        peak = max(peak, a(i))
      end do
      do i = 1, 32
        scratch = i * 2
        a(i) = a(i) + scratch
      end do
      end
|} )
  in
  let _, report = plan_of [ src ] in
  let dirs =
    List.map (fun s -> s.Ipa.Autopar.sg_directive) report.Ipa.Autopar.rp_suggestions
  in
  Alcotest.(check bool) "sum" true
    (List.exists (fun d -> contains d "reduction(+:total)") dirs);
  Alcotest.(check bool) "product" true
    (List.exists (fun d -> contains d "reduction(*:prod)") dirs);
  Alcotest.(check bool) "max" true
    (List.exists (fun d -> contains d "reduction(max:peak)") dirs);
  Alcotest.(check bool) "scratch is private, not a reduction" true
    (List.exists (fun d -> contains d "private(scratch)") dirs)

let test_interprocedural_autopar () =
  (* a loop whose body is a call: only the region summaries can prove it
     parallel (the paper: APO "can not" handle calls inside loops) *)
  let src =
    ( "t.f",
      {|      program t
      double precision rows(1:64, 1:64)
      common /g/ rows
      integer i
      do i = 1, 64
        call dorow(i)
      end do
      end

      subroutine dorow(r)
      double precision rows(1:64, 1:64)
      common /g/ rows
      integer r, j
      do j = 1, 64
        rows(r, j) = r + j
      end do
      end
|} )
  in
  let _, report = plan_of [ src ] in
  let main_sugg =
    List.filter
      (fun s -> s.Ipa.Autopar.sg_proc = "t")
      report.Ipa.Autopar.rp_suggestions
  in
  Alcotest.(check int) "call-in-loop proven parallel" 1 (List.length main_sugg)

let test_annotation () =
  let _, report = plan_of [ Corpus.Small.fig1_f ] in
  let annotated =
    Ipa.Autopar.annotate report ~file:"fig1.f" (snd Corpus.Small.fig1_f)
  in
  Alcotest.(check bool) "directive inserted" true
    (contains annotated "!$omp parallel do");
  (* the directive sits immediately before p1's do-loop line *)
  let lines = String.split_on_char '\n' annotated in
  let rec check = function
    | a :: b :: rest ->
      (if contains a "!$omp parallel do" then
         Alcotest.(check bool) "followed by a do" true (contains b "do "));
      check (b :: rest)
    | _ -> ()
  in
  check lines;
  (* annotation count matches suggestions for that file *)
  let count =
    List.length
      (List.filter (fun l -> contains l "!$omp parallel do") lines)
  in
  Alcotest.(check int) "two directives" 2 count

let suite =
  [
    Alcotest.test_case "fig1 plan" `Quick test_fig1_plan;
    Alcotest.test_case "C pragma spelling" `Quick test_c_spelling;
    Alcotest.test_case "reduction patterns" `Quick test_reduction_patterns;
    Alcotest.test_case "interprocedural (call in loop)" `Quick
      test_interprocedural_autopar;
    Alcotest.test_case "source annotation" `Quick test_annotation;
  ]
