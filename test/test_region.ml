open Linear
open Regions

let aff_int n = Affine.Affine (Expr.of_int n)
let aff_var v = Affine.Affine (Expr.var v)

let mk_loop ?(step = 1) var lo hi =
  {
    Region.lc_var = var;
    lc_lo = aff_int lo;
    lc_hi = aff_int hi;
    lc_step = Some step;
  }

let fresh_ivar name = Var.fresh ~name Var.Ivar

let check_dim ?(msg = "dim") d (lb, ub, st) =
  let open Region in
  (match d.lb, lb with
  | Bconst x, `C y -> Alcotest.(check int) (msg ^ " lb") y x
  | Bunknown, `U -> ()
  | Bsym _, `S -> ()
  | got, _ ->
    Alcotest.failf "%s lb mismatch: got %s" msg
      (Format.asprintf "%a" pp_bound got));
  (match d.ub, ub with
  | Bconst x, `C y -> Alcotest.(check int) (msg ^ " ub") y x
  | Bunknown, `U -> ()
  | Bsym _, `S -> ()
  | got, _ ->
    Alcotest.failf "%s ub mismatch: got %s" msg
      (Format.asprintf "%a" pp_bound got));
  match d.stride, st with
  | Sconst x, `C y -> Alcotest.(check int) (msg ^ " stride") y x
  | Sunknown, `U -> ()
  | got, _ ->
    Alcotest.failf "%s stride mismatch: got %s" msg
      (Format.asprintf "%a" pp_stride got)

let test_unit_loop () =
  let i = fresh_ivar "i" in
  let r =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop i 0 7 ]
      [ aff_var i ]
  in
  check_dim (List.hd (Region.dim_list r)) (`C 0, `C 7, `C 1);
  Alcotest.(check bool) "exact" true (Region.is_exact r);
  Alcotest.(check (option int)) "8 points" (Some 8) (Region.point_count r)

let test_strided_loop () =
  let i = fresh_ivar "i" in
  let r =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop ~step:2 i 2 6 ]
      [ aff_var i ]
  in
  check_dim (List.hd (Region.dim_list r)) (`C 2, `C 6, `C 2);
  Alcotest.(check (option int)) "3 points" (Some 3) (Region.point_count r);
  Alcotest.(check bool) "contains 4" true (Region.contains_point r [ 4 ]);
  Alcotest.(check bool) "not contains 3" false (Region.contains_point r [ 3 ])

let test_affine_subscript () =
  (* a(2i + 1), i = 0..4  ->  1:9:2 *)
  let i = fresh_ivar "i" in
  let sub =
    Affine.Affine
      (Expr.add (Expr.monom (Numeric.Rat.of_int 2) i) (Expr.of_int 1))
  in
  let r =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop i 0 4 ] [ sub ]
  in
  check_dim (List.hd (Region.dim_list r)) (`C 1, `C 9, `C 2)

let test_negative_step () =
  (* do i = 10, 1, -1; a(i) -> 1:10:1 *)
  let i = fresh_ivar "i" in
  let r =
    Region.of_subscripts ~extents:[ Some 20 ]
      ~loops:[ mk_loop ~step:(-1) i 10 1 ]
      [ aff_var i ]
  in
  check_dim (List.hd (Region.dim_list r)) (`C 1, `C 10, `C 1)

let test_two_dims_disjoint () =
  (* Fig 1: P1 defines (1:100,1:100), P2 uses (101:200,101:200); zero-based
     internally: 0:99 and 100:199 *)
  let i = fresh_ivar "i" and j = fresh_ivar "j" in
  let r1 =
    Region.of_subscripts
      ~extents:[ Some 200; Some 200 ]
      ~loops:[ mk_loop i 0 99; mk_loop j 0 99 ]
      [ aff_var i; aff_var j ]
  in
  let i2 = fresh_ivar "i2" and j2 = fresh_ivar "j2" in
  let r2 =
    Region.of_subscripts
      ~extents:[ Some 200; Some 200 ]
      ~loops:[ mk_loop i2 100 199; mk_loop j2 100 199 ]
      [ aff_var i2; aff_var j2 ]
  in
  Alcotest.(check bool) "disjoint" true (Region.disjoint r1 r2);
  Alcotest.(check bool) "not includes" false (Region.includes r1 r2);
  let u = Region.union_approx r1 r2 in
  Alcotest.(check bool) "union covers r1" true (Region.includes u r1);
  Alcotest.(check bool) "union covers r2" true (Region.includes u r2);
  Alcotest.(check bool) "union not exact" false (Region.is_exact u)

let test_symbolic_upper () =
  (* do i = 1, n; a(i - 1): lb 0, symbolic ub *)
  let i = fresh_ivar "i" in
  let n = Var.fresh ~name:"n" Var.Sym in
  let loop =
    { Region.lc_var = i; lc_lo = aff_int 1; lc_hi = aff_var n; lc_step = Some 1 }
  in
  let sub = Affine.Affine (Expr.sub (Expr.var i) (Expr.of_int 1)) in
  let r = Region.of_subscripts ~extents:[ None ] ~loops:[ loop ] [ sub ] in
  let d = List.hd (Region.dim_list r) in
  check_dim d (`C 0, `S, `C 1);
  (match d.Region.ub with
  | Region.Bsym e ->
    Alcotest.(check string) "ub is n - 1" "n - 1" (Expr.to_string e)
  | _ -> Alcotest.fail "expected symbolic ub")

let test_messy_subscript () =
  let r =
    Region.of_subscripts ~extents:[ Some 10 ] ~loops:[] [ Affine.Messy ]
  in
  check_dim (List.hd (Region.dim_list r)) (`C 0, `C 9, `U);
  Alcotest.(check bool) "not exact" false (Region.is_exact r)

let test_messy_no_extent () =
  let r = Region.of_subscripts ~extents:[ None ] ~loops:[] [ Affine.Messy ] in
  check_dim (List.hd (Region.dim_list r)) (`U, `U, `U)

let test_union_stride_phase () =
  let i = fresh_ivar "i" in
  let r1 =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop i 0 7 ]
      [ aff_var i ]
  in
  let j = fresh_ivar "j" in
  let r2 =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop ~step:2 j 2 6 ]
      [ aff_var j ]
  in
  let u = Region.union_approx r1 r2 in
  (* phases 0 and 2 with strides 1 and 2: gcd 1 *)
  check_dim (List.hd (Region.dim_list u)) (`C 0, `C 7, `C 1)

let test_point_and_whole () =
  let p = Region.point [ 3; 4 ] in
  Alcotest.(check (option int)) "1 point" (Some 1) (Region.point_count p);
  Alcotest.(check bool) "contains" true (Region.contains_point p [ 3; 4 ]);
  Alcotest.(check bool) "excludes" false (Region.contains_point p [ 4; 3 ]);
  let w = Region.whole ~extents:[ Some 5; Some 5 ] in
  Alcotest.(check (option int)) "25 points" (Some 25) (Region.point_count w);
  Alcotest.(check bool) "whole includes point" true (Region.includes w p);
  let wu = Region.whole ~extents:[ None ] in
  Alcotest.(check (option int)) "unknown count" None (Region.point_count wu);
  Alcotest.(check bool) "unknown not exact" false (Region.is_exact wu)

let test_shift_dim () =
  let i = fresh_ivar "i" in
  let r =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop i 0 4 ]
      [ aff_var i ]
  in
  let s = Region.shift_dim 0 3 r in
  check_dim (List.hd (Region.dim_list s)) (`C 3, `C 7, `C 1)

let test_subst_sym () =
  let i = fresh_ivar "i" in
  let n = Var.fresh ~name:"n2" Var.Sym in
  let loop =
    { Region.lc_var = i; lc_lo = aff_int 0; lc_hi = aff_var n; lc_step = Some 1 }
  in
  let r =
    Region.of_subscripts ~extents:[ Some 100 ] ~loops:[ loop ] [ aff_var i ]
  in
  let s = Region.subst_sym [ (n, Expr.of_int 9) ] r in
  check_dim (List.hd (Region.dim_list s)) (`C 0, `C 9, `C 1)

let test_equal_display () =
  let i = fresh_ivar "i" in
  let mk () =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop i 0 7 ]
      [ aff_var i ]
  in
  Alcotest.(check bool) "same display" true (Region.equal_display (mk ()) (mk ()));
  let j = fresh_ivar "j" in
  let other =
    Region.of_subscripts ~extents:[ Some 20 ] ~loops:[ mk_loop j 1 7 ]
      [ aff_var j ]
  in
  Alcotest.(check bool) "different display" false
    (Region.equal_display (mk ()) other)

(* Property: triplet projection agrees with brute-force enumeration for
   a(c*i + b) over i = lo..hi step s. *)
let prop_matches_enumeration =
  let gen =
    QCheck2.Gen.(
      let* c = int_range (-3) 3 in
      let* b = int_range (-5) 5 in
      let* lo = int_range (-10) 10 in
      let* len = int_range 0 12 in
      let* s = oneofl [ 1; 2; 3; -1; -2 ] in
      return (c, b, lo, len, s))
  in
  QCheck2.Test.make ~name:"region matches enumerated accesses" ~count:300 gen
    ~print:(fun (c, b, lo, len, s) ->
      Printf.sprintf "sub=%d*i+%d loop=%d..+%d step %d" c b lo len s)
    (fun (c, b, lo, len, s) ->
      let hi = if s > 0 then lo + len else lo - len in
      (* enumerate *)
      let points = ref [] in
      let i = ref lo in
      let continue () = if s > 0 then !i <= hi else !i >= hi in
      while continue () do
        points := ((c * !i) + b) :: !points;
        i := !i + s
      done;
      let points = List.sort_uniq compare !points in
      let iv = fresh_ivar "pi" in
      let sub =
        Affine.Affine
          (Expr.add (Expr.monom (Numeric.Rat.of_int c) iv) (Expr.of_int b))
      in
      let r =
        Region.of_subscripts ~extents:[ None ]
          ~loops:[ mk_loop ~step:s iv lo hi ]
          [ sub ]
      in
      match points with
      | [] -> true (* empty loop: nothing to check *)
      | _ ->
        let lo_pt = List.hd points and hi_pt = List.nth points (List.length points - 1) in
        let d = List.hd (Region.dim_list r) in
        let lb_ok =
          match d.Region.lb with Region.Bconst x -> x = lo_pt | _ -> false
        in
        let ub_ok =
          match d.Region.ub with Region.Bconst x -> x = hi_pt | _ -> false
        in
        let members_ok =
          List.for_all (fun p -> Region.contains_point r [ p ]) points
        in
        lb_ok && ub_ok && members_ok)

(* Property: union over-approximates both operands (convex part). *)
let prop_union_sound =
  let gen =
    QCheck2.Gen.(
      let* lo1 = int_range 0 10 in
      let* len1 = int_range 0 10 in
      let* lo2 = int_range 0 10 in
      let* len2 = int_range 0 10 in
      return (lo1, len1, lo2, len2))
  in
  QCheck2.Test.make ~name:"union_approx covers operands" ~count:200 gen
    ~print:(fun (a, b, c, d) -> Printf.sprintf "[%d,+%d] [%d,+%d]" a b c d)
    (fun (lo1, len1, lo2, len2) ->
      let i = fresh_ivar "u1" and j = fresh_ivar "u2" in
      let r1 =
        Region.of_subscripts ~extents:[ Some 64 ]
          ~loops:[ mk_loop i lo1 (lo1 + len1) ]
          [ aff_var i ]
      in
      let r2 =
        Region.of_subscripts ~extents:[ Some 64 ]
          ~loops:[ mk_loop j lo2 (lo2 + len2) ]
          [ aff_var j ]
      in
      let u = Region.union_approx r1 r2 in
      Region.includes u r1 && Region.includes u r2)

let test_lattice_disjoint () =
  (* even writes vs odd writes: convexly overlapping, lattice-disjoint *)
  let i = fresh_ivar "le" and j = fresh_ivar "lo" in
  let even =
    Region.of_subscripts ~extents:[ Some 64 ]
      ~loops:[ mk_loop i 0 31 ]
      [ Affine.Affine (Expr.monom (Numeric.Rat.of_int 2) i) ]
  in
  let odd =
    Region.of_subscripts ~extents:[ Some 64 ]
      ~loops:[ mk_loop j 0 31 ]
      [ Affine.Affine
          (Expr.add (Expr.monom (Numeric.Rat.of_int 2) j) (Expr.of_int 1)) ]
  in
  Alcotest.(check bool) "even/odd disjoint" true (Region.disjoint even odd);
  Alcotest.(check bool) "not intersecting" false (Region.intersects even odd);
  (* same lattice phase: NOT disjoint *)
  let k = fresh_ivar "lk" in
  let even2 =
    Region.of_subscripts ~extents:[ Some 64 ]
      ~loops:[ mk_loop k 0 31 ]
      [ Affine.Affine (Expr.monom (Numeric.Rat.of_int 2) k) ]
  in
  Alcotest.(check bool) "same phase overlaps" true
    (Region.intersects even even2);
  (* inexact regions must not use lattice reasoning *)
  let w = Region.whole ~extents:[ None ] in
  Alcotest.(check bool) "inexact conservative" true (Region.intersects w even)

let test_lattice_stride_3_4 () =
  (* strides 3 (phase 0) and 4 (phase 1): gcd 1, lattices intersect *)
  let i = fresh_ivar "s3" and j = fresh_ivar "s4" in
  let r3 =
    Region.of_subscripts ~extents:[ Some 64 ] ~loops:[ mk_loop ~step:3 i 0 30 ]
      [ aff_var i ]
  in
  let r4 =
    Region.of_subscripts ~extents:[ Some 64 ] ~loops:[ mk_loop ~step:4 j 1 29 ]
      [ aff_var j ]
  in
  Alcotest.(check bool) "gcd 1 lattices intersect" true
    (Region.intersects r3 r4);
  (* strides 4 (phase 0) and 4 (phase 2): gcd 4, disjoint *)
  let a = fresh_ivar "p0" and b = fresh_ivar "p2" in
  let r0 =
    Region.of_subscripts ~extents:[ Some 64 ] ~loops:[ mk_loop ~step:4 a 0 28 ]
      [ aff_var a ]
  in
  let r2 =
    Region.of_subscripts ~extents:[ Some 64 ] ~loops:[ mk_loop ~step:4 b 2 30 ]
      [ aff_var b ]
  in
  Alcotest.(check bool) "phase-2 apart" true (Region.disjoint r0 r2)

let suite =
  [
    Alcotest.test_case "lattice disjointness" `Quick test_lattice_disjoint;
    Alcotest.test_case "lattice strides 3/4" `Quick test_lattice_stride_3_4;
    Alcotest.test_case "unit-stride loop" `Quick test_unit_loop;
    Alcotest.test_case "strided loop" `Quick test_strided_loop;
    Alcotest.test_case "affine subscript 2i+1" `Quick test_affine_subscript;
    Alcotest.test_case "negative step" `Quick test_negative_step;
    Alcotest.test_case "Fig1 disjoint 2-D regions" `Quick test_two_dims_disjoint;
    Alcotest.test_case "symbolic upper bound" `Quick test_symbolic_upper;
    Alcotest.test_case "messy subscript clamps" `Quick test_messy_subscript;
    Alcotest.test_case "messy without extent" `Quick test_messy_no_extent;
    Alcotest.test_case "union stride/phase" `Quick test_union_stride_phase;
    Alcotest.test_case "point and whole" `Quick test_point_and_whole;
    Alcotest.test_case "shift_dim" `Quick test_shift_dim;
    Alcotest.test_case "subst_sym" `Quick test_subst_sym;
    Alcotest.test_case "equal_display" `Quick test_equal_display;
    QCheck_alcotest.to_alcotest prop_matches_enumeration;
    QCheck_alcotest.to_alcotest prop_union_sound;
  ]
