(* The observability layer's contract: histograms agree with an exact
   reference implementation on percentile rank, traces are well-formed
   (matched, properly nested begin/end pairs with monotone timestamps, and
   the parser rejects anything less), the metrics dump validates against
   its own reader, and — the part the analysis cares about — turning all of
   it on changes no output byte and the deterministic statistics rendering
   is byte-identical at any --jobs setting. *)

let corpus_files = function
  | "lu" -> Corpus.Nas_lu.files ()
  | "matrix" -> [ Corpus.Small.matrix_c ]
  | "fig1" -> [ Corpus.Small.fig1_f ]
  | "stride" -> [ Corpus.Small.stride_f ]
  | other -> Alcotest.failf "unknown corpus %s" other

let lower files = Whirl.Lower.lower (Lang.Frontend.load ~files)

let render (r : Ipa.Analyze.result) =
  let blocks =
    List.concat_map
      (fun (proc, cfg) ->
        Array.to_list
          (Array.map
             (fun (b : Cfg.block) ->
               {
                 Rgnfile.Files.cb_proc = proc;
                 cb_id = b.Cfg.id;
                 cb_label = b.Cfg.label;
                 cb_succs = b.Cfg.succs;
               })
             cfg.Cfg.blocks))
      r.Ipa.Analyze.r_cfgs
  in
  ( Rgnfile.Files.write_rgn r.Ipa.Analyze.r_rows,
    Rgnfile.Files.write_dgn r.Ipa.Analyze.r_dgn,
    Rgnfile.Files.write_cfg blocks )

(* ------------------------------------------------------------------ *)
(* Histogram percentiles vs an exact reference *)

(* deterministic pseudo-random stream (no Random: keep the test stable) *)
let lcg_stream seed n =
  let state = ref seed in
  List.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod 1_000_000)

let reference_rank_value samples p =
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
  List.nth sorted (rank - 1)

let test_hist_percentiles () =
  List.iter
    (fun (name, samples) ->
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.observe h) samples;
      Alcotest.(check int)
        (name ^ " count") (List.length samples) (Obs.Hist.count h);
      Alcotest.(check int)
        (name ^ " sum")
        (List.fold_left ( + ) 0 (List.map (max 0) samples))
        (Obs.Hist.sum h);
      List.iter
        (fun p ->
          let v_ref = max 0 (reference_rank_value samples p) in
          let lo, hi = Obs.Hist.bounds_of_value v_ref in
          let est = Obs.Hist.percentile h p in
          if not (float_of_int lo <= est && est <= float_of_int hi) then
            Alcotest.failf
              "%s p%.0f: estimate %.1f outside bucket [%d, %d] of reference %d"
              name (100. *. p) est lo hi v_ref)
        [ 0.5; 0.9; 0.95; 0.99; 1.0 ])
    [
      ("uniform", lcg_stream 42 5000);
      ("small", [ 0; 1; 2; 3; 3; 3; 4; 100 ]);
      ("constant", List.init 100 (fun _ -> 777));
      ("wide", List.map (fun v -> v * 4096) (lcg_stream 7 2000));
      ("negative-clamped", [ -5; -1; 0; 2 ]);
    ]

let test_hist_buckets () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) [ 0; 1; 5; 5; 1000; 1_000_000_000 ];
  let total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Obs.Hist.nonzero_buckets h)
  in
  Alcotest.(check int) "bucket counts sum to count" (Obs.Hist.count h) total;
  List.iter
    (fun (lo, hi, _) ->
      if hi < lo then Alcotest.failf "bucket [%d, %d] inverted" lo hi)
    (Obs.Hist.nonzero_buckets h);
  (* buckets ascend and partition: each value maps into exactly one *)
  List.iter
    (fun v ->
      let lo, hi = Obs.Hist.bounds_of_value v in
      if not (lo <= v && v <= hi) then
        Alcotest.failf "value %d outside its bucket [%d, %d]" v lo hi)
    [ 0; 1; 2; 3; 4; 7; 8; 100; 12345; 999_999_999; max_int ]

let test_hist_edge_cases () =
  (* empty: every percentile is 0, not an exception *)
  let h = Obs.Hist.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Hist.count h);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.)) "empty percentile" 0. (Obs.Hist.percentile h p))
    [ 0.5; 0.95; 0.99 ];
  (* a single sample: every percentile lands in that sample's bucket *)
  Obs.Hist.observe h 42;
  let lo, hi = Obs.Hist.bounds_of_value 42 in
  List.iter
    (fun p ->
      let est = Obs.Hist.percentile h p in
      if not (float_of_int lo <= est && est <= float_of_int hi) then
        Alcotest.failf "single-sample p%.0f = %.1f outside [%d, %d]"
          (100. *. p) est lo hi)
    [ 0.5; 0.95; 0.99 ];
  (* merging disjoint ranges: counts and sums add, the merged percentiles
     straddle the gap, and neither input is mutated *)
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  List.iter (Obs.Hist.observe a) [ 1; 2; 3 ];
  List.iter (Obs.Hist.observe b) [ 1000; 2000; 3000 ];
  let m = Obs.Hist.merge a b in
  Alcotest.(check int) "merged count" 6 (Obs.Hist.count m);
  Alcotest.(check int) "merged sum" 6006 (Obs.Hist.sum m);
  Alcotest.(check int) "merge leaves a alone" 3 (Obs.Hist.count a);
  Alcotest.(check int) "merge leaves b alone" 3 (Obs.Hist.count b);
  let p50 = Obs.Hist.percentile m 0.5 in
  if p50 > 4. then Alcotest.failf "merged p50 %.1f not in the low range" p50;
  let p99 = Obs.Hist.percentile m 0.99 in
  if p99 < 1000. then Alcotest.failf "merged p99 %.1f not in the high range" p99

(* ------------------------------------------------------------------ *)
(* JSON string escapes: strict RFC 8259 \uXXXX decoding *)

let parse_str raw =
  match Obs.Json.parse (Printf.sprintf "{\"s\":\"%s\"}" raw) with
  | Ok v -> (
    match Option.bind (Obs.Json.member "s" v) Obs.Json.to_string with
    | Some s -> Ok s
    | None -> Error "no string member")
  | Error e -> Error e

let test_json_unicode_escapes () =
  List.iter
    (fun (name, raw, expect) ->
      match parse_str raw with
      | Ok got -> Alcotest.(check string) name expect got
      | Error e -> Alcotest.failf "%s rejected: %s" name e)
    [
      ("ascii", {|\u0041|}, "A");
      ("two-byte", {|\u00e9|}, "\xc3\xa9");
      ("three-byte", {|\u20ac|}, "\xe2\x82\xac");
      ("surrogate pair", {|\ud83d\ude00|}, "\xf0\x9f\x98\x80");
      ("uppercase hex", {|\uD83D\uDE00|}, "\xf0\x9f\x98\x80");
      ("nul", {|\u0000|}, "\000");
      ("simple escapes", {|\b\f\n\r\t\/\\\"|}, "\b\012\n\r\t/\\\"");
      ("embedded", {|a\u00e9b|}, "a\xc3\xa9b");
    ];
  List.iter
    (fun (name, raw) ->
      match parse_str raw with
      | Ok got -> Alcotest.failf "%s accepted as %S" name got
      | Error _ -> ())
    [
      ("truncated hex", {|\u12|});
      ("non-hex digits", {|\uZZZZ|});
      ("lone high surrogate", {|\ud83d|});
      ("high surrogate then text", {|\ud83dAB|});
      ("high surrogate, bad low", {|\ud83dA|});
      ("lone low surrogate", {|\ude00|});
      ("unknown escape", {|\q|});
    ];
  (* whatever the writer escapes, the reader recovers byte for byte *)
  List.iter
    (fun s ->
      match parse_str (Obs.Json.escape s) with
      | Ok got -> Alcotest.(check string) "escape round-trip" s got
      | Error e -> Alcotest.failf "escaped form of %S rejected: %s" s e)
    [
      "plain";
      "quote\"back\\slash";
      "controls\x01\x02\n\t\x7f";
      "utf8 \xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80";
    ]

(* ------------------------------------------------------------------ *)
(* Ledger store round-trip *)

let test_ledger_roundtrip () =
  let cache_dir = Filename.temp_file "obs_ledger" "" in
  Sys.remove cache_dir;
  Sys.mkdir cache_dir 0o755;
  let id1 = Obs.Ledger.new_run_id () in
  let id2 = Obs.Ledger.new_run_id () in
  Alcotest.(check bool) "run ids ascend" true (id1 < id2);
  let record id n =
    Printf.sprintf "{\"schema_version\":%d,\"run_id\":\"%s\",\"n\":%d}"
      Obs.Ledger.schema_version id n
  in
  (* written newest first: read_all must still return run-id order *)
  ignore (Obs.Ledger.append ~cache_dir ~run_id:id2 (record id2 2));
  ignore (Obs.Ledger.append ~cache_dir ~run_id:id1 (record id1 1));
  (match Obs.Ledger.read_all ~cache_dir with
  | [ (a, va); (b, vb) ] ->
    Alcotest.(check string) "oldest first" id1 a;
    Alcotest.(check string) "newest last" id2 b;
    let n v = Option.bind (Obs.Json.member "n" v) Obs.Json.to_int in
    Alcotest.(check (option int)) "first payload" (Some 1) (n va);
    Alcotest.(check (option int)) "second payload" (Some 2) (n vb)
  | l -> Alcotest.failf "read_all returned %d record(s)" (List.length l));
  Alcotest.(check string)
    "suffixed path" "/x/trace-RUN.json"
    (Obs.Ledger.suffixed_path ~run_id:"RUN" "/x/trace.json");
  Alcotest.(check string)
    "suffixed path without extension" "/x/trace-RUN"
    (Obs.Ledger.suffixed_path ~run_id:"RUN" "/x/trace")

(* ------------------------------------------------------------------ *)
(* Span nesting and trace well-formedness *)

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false) f

let test_span_nesting () =
  with_tracing (fun () ->
      Obs.Span.with_ ~name:"outer" (fun () ->
          Obs.Span.with_ ~cat:"pu" ~name:"inner-1" (fun () -> ());
          Obs.Span.with_ ~cat:"pu" ~name:"inner-2" (fun () ->
              Obs.Span.with_ ~name:"leaf" (fun () -> ())));
      (* exception safety: the span must close when f raises *)
      (try Obs.Span.with_ ~name:"raises" (fun () -> failwith "boom")
       with Failure _ -> ()));
  let spans =
    match Obs.Trace.parse (Obs.Trace.export ()) with
    | Ok s -> s
    | Error e -> Alcotest.failf "trace does not parse: %s" e
  in
  Alcotest.(check int) "span count" 5 (List.length spans);
  let find name =
    List.find (fun s -> s.Obs.Trace.sp_name = name) spans
  in
  Alcotest.(check int) "outer depth" 0 (find "outer").Obs.Trace.sp_depth;
  Alcotest.(check int) "inner depth" 1 (find "inner-1").Obs.Trace.sp_depth;
  Alcotest.(check int) "leaf depth" 2 (find "leaf").Obs.Trace.sp_depth;
  Alcotest.(check int) "raises depth" 0 (find "raises").Obs.Trace.sp_depth;
  Alcotest.(check string) "category" "pu" (find "inner-2").Obs.Trace.sp_cat;
  (* children nest inside their parent's interval *)
  let outer = find "outer" in
  List.iter
    (fun name ->
      let c = find name in
      let fits =
        c.Obs.Trace.sp_ts_us >= outer.Obs.Trace.sp_ts_us
        && c.Obs.Trace.sp_ts_us +. c.Obs.Trace.sp_dur_us
           <= outer.Obs.Trace.sp_ts_us +. outer.Obs.Trace.sp_dur_us +. 0.0001
      in
      Alcotest.(check bool) (name ^ " inside outer") true fits)
    [ "inner-1"; "inner-2"; "leaf" ]

let test_trace_rejects_malformed () =
  let cases =
    [
      ("bad json", "{\"traceEvents\": [");
      ( "unmatched end",
        {|{"traceEvents": [{"ph":"E","name":"x","ts":1.0,"pid":1,"tid":1}]}|}
      );
      ( "misnested pair",
        {|{"traceEvents": [
            {"ph":"B","name":"a","cat":"t","ts":1.0,"pid":1,"tid":1},
            {"ph":"B","name":"b","cat":"t","ts":2.0,"pid":1,"tid":1},
            {"ph":"E","name":"a","ts":3.0,"pid":1,"tid":1},
            {"ph":"E","name":"b","ts":4.0,"pid":1,"tid":1}]}|} );
      ( "backwards clock",
        {|{"traceEvents": [
            {"ph":"B","name":"a","cat":"t","ts":5.0,"pid":1,"tid":1},
            {"ph":"E","name":"a","ts":3.0,"pid":1,"tid":1}]}|} );
      ( "unknown phase",
        {|{"traceEvents": [{"ph":"Q","name":"x","ts":1.0,"pid":1,"tid":1}]}|}
      );
    ]
  in
  List.iter
    (fun (name, raw) ->
      match Obs.Trace.parse raw with
      | Ok _ -> Alcotest.failf "%s accepted" name
      | Error _ -> ())
    cases

let test_disabled_records_nothing () =
  Obs.Trace.clear ();
  Obs.Span.with_ ~name:"invisible" (fun () -> ());
  match Obs.Trace.parse (Obs.Trace.export ()) with
  | Ok [] -> ()
  | Ok spans -> Alcotest.failf "%d spans recorded while disabled" (List.length spans)
  | Error e -> Alcotest.failf "empty trace does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_registry () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.Counter.set c 0;
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c' 2;
  Alcotest.(check int) "same instrument" 3 (Obs.Metrics.Counter.get c);
  (match Obs.Metrics.gauge "test.obs.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch not rejected");
  (* the dump parses and carries the counter *)
  match Obs.Json.parse (Obs.Metrics.dump_json ()) with
  | Error e -> Alcotest.failf "metrics dump does not parse: %s" e
  | Ok doc ->
    let entries =
      Option.get (Option.bind (Obs.Json.member "metrics" doc) Obs.Json.to_list)
    in
    let mine =
      List.find
        (fun e ->
          Option.bind (Obs.Json.member "name" e) Obs.Json.to_string
          = Some "test.obs.counter")
        entries
    in
    Alcotest.(check (option int))
      "dumped value" (Some 3)
      (Option.bind (Obs.Json.member "value" mine) Obs.Json.to_int)

(* ------------------------------------------------------------------ *)
(* Tracing on vs off: byte-identical analysis outputs *)

let test_outputs_unchanged () =
  List.iter
    (fun corpus ->
      let files = corpus_files corpus in
      let plain =
        render (Engine.run (Engine.config ~jobs:2 ()) (lower files)).Engine.e_result
      in
      Obs.Metrics.set_enabled true;
      let traced =
        with_tracing (fun () ->
            render
              (Engine.run (Engine.config ~jobs:2 ()) (lower files)).Engine.e_result)
      in
      Obs.Metrics.set_enabled false;
      Obs.Trace.clear ();
      let (rgn_a, dgn_a, cfg_a) = plain and (rgn_b, dgn_b, cfg_b) = traced in
      Alcotest.(check bool) (corpus ^ " .rgn byte-identical") true (rgn_a = rgn_b);
      Alcotest.(check bool) (corpus ^ " .dgn byte-identical") true (dgn_a = dgn_b);
      Alcotest.(check bool) (corpus ^ " .cfg byte-identical") true (cfg_a = cfg_b))
    [ "lu"; "matrix"; "fig1"; "stride" ]

(* ------------------------------------------------------------------ *)
(* Deterministic statistics: --jobs must not change the rendering *)

let det_stats jobs files =
  Linear.System.clear_cache ();
  Linear.Solver_stats.reset ();
  let r = Engine.run (Engine.config ~jobs ()) (lower files) in
  Format.asprintf "%a" Engine.Stats.pp_deterministic r.Engine.e_stats

let test_stats_deterministic () =
  List.iter
    (fun corpus ->
      let files = corpus_files corpus in
      let serial = det_stats 1 files in
      let parallel = det_stats 4 files in
      Alcotest.(check string) (corpus ^ " stats-det jobs-invariant") serial
        parallel;
      (* and stable across repetition at the same setting *)
      Alcotest.(check string)
        (corpus ^ " stats-det repeatable") parallel (det_stats 4 files))
    [ "lu"; "matrix" ]

(* ------------------------------------------------------------------ *)
(* Worker allocation attribution *)

let test_worker_alloc_attributed () =
  (* same analysis, serial vs 4 domains: with worker sinks merged, the
     parallel run's total attributed allocation cannot collapse to a tiny
     fraction of the serial one (it used to, when only the coordinator's
     delta was counted) *)
  let files = corpus_files "lu" in
  let alloc_of jobs =
    let r = Engine.run (Engine.config ~jobs ()) (lower files) in
    List.fold_left
      (fun acc p -> acc +. p.Engine.Stats.ph_alloc)
      0. r.Engine.e_stats.Engine.Stats.s_phases
  in
  (* warm the process-global term interner and packed-row caches first:
     they are never dropped, so whichever measured run goes first would
     otherwise allocate far more than the second regardless of jobs *)
  ignore (alloc_of 1);
  let serial = alloc_of 1 in
  let parallel = alloc_of 4 in
  Alcotest.(check bool)
    (Printf.sprintf "parallel alloc %.0f within 2x of serial %.0f" parallel
       serial)
    true
    (parallel >= serial /. 2. && parallel <= serial *. 2.)

let suite =
  [
    Alcotest.test_case "hist percentiles vs reference" `Quick
      test_hist_percentiles;
    Alcotest.test_case "hist buckets partition" `Quick test_hist_buckets;
    Alcotest.test_case "hist edge cases and merge" `Quick test_hist_edge_cases;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "ledger store round-trip" `Quick test_ledger_roundtrip;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "trace rejects malformed" `Quick
      test_trace_rejects_malformed;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "outputs unchanged under tracing" `Slow
      test_outputs_unchanged;
    Alcotest.test_case "stats deterministic across jobs" `Slow
      test_stats_deterministic;
    Alcotest.test_case "worker allocation attributed" `Slow
      test_worker_alloc_attributed;
  ]
