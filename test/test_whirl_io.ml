(* WHIRL file (.B analog) round-trips: trees, symbol tables, layout
   addresses, and — the real criterion — identical analysis results. *)

let roundtrip files =
  let m = Whirl.Lower.lower (Lang.Frontend.load ~files) in
  Whirl.Layout.assign m;
  let text = Whirl.Whirl_io.write m in
  match Whirl.Whirl_io.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m' -> (m, m')

let test_tree_roundtrip () =
  let m, m' = roundtrip [ Corpus.Small.fig1_f ] in
  List.iter2
    (fun pu pu' ->
      Alcotest.(check string) "pu name" pu.Whirl.Ir.pu_name pu'.Whirl.Ir.pu_name;
      Alcotest.(check bool)
        (pu.Whirl.Ir.pu_name ^ " tree identical")
        true
        (Whirl.Wn.equal_tree pu.Whirl.Ir.pu_body pu'.Whirl.Ir.pu_body);
      Alcotest.(check (list int)) "formals" pu.Whirl.Ir.pu_formals
        pu'.Whirl.Ir.pu_formals)
    m.Whirl.Ir.m_pus m'.Whirl.Ir.m_pus

let test_symtab_roundtrip () =
  let m, m' = roundtrip [ Corpus.Small.fig1_f ] in
  Alcotest.(check int) "global st count"
    (Whirl.Symtab.st_count m.Whirl.Ir.m_global)
    (Whirl.Symtab.st_count m'.Whirl.Ir.m_global);
  Whirl.Symtab.iter_st m.Whirl.Ir.m_global (fun i e ->
      let e' = Whirl.Symtab.st m'.Whirl.Ir.m_global i in
      Alcotest.(check string) "name" e.Whirl.Symtab.st_name e'.Whirl.Symtab.st_name;
      Alcotest.(check int) "ty idx" e.Whirl.Symtab.st_ty e'.Whirl.Symtab.st_ty;
      Alcotest.(check int) "mem loc" e.Whirl.Symtab.st_mem_loc
        e'.Whirl.Symtab.st_mem_loc;
      Alcotest.(check bool) "sclass" true
        (e.Whirl.Symtab.st_sclass = e'.Whirl.Symtab.st_sclass))

let test_analysis_equal_after_reload () =
  let m, m' = roundtrip (Corpus.Nas_lu.files ()) in
  let rows mm =
    (Engine.analyze mm).Ipa.Analyze.r_rows |> List.map Rgnfile.Row.to_fields
  in
  Alcotest.(check bool) "identical .rgn rows from reloaded WHIRL" true
    (rows m = rows m')

let test_interp_equal_after_reload () =
  let m, m' = roundtrip [ Corpus.Small.matrix_c ] in
  let o = Interp.run m and o' = Interp.run m' in
  Alcotest.(check string) "same output" o.Interp.out_text o'.Interp.out_text;
  Alcotest.(check int) "same step count" o.Interp.out_steps o'.Interp.out_steps

let test_floats_bit_exact () =
  let src =
    ( "t.f",
      {|      program t
      double precision x
      x = 0.1d0 + 1.0d-300
      print *, x
      end
|} )
  in
  let m, m' = roundtrip [ src ] in
  let o = Interp.run m and o' = Interp.run m' in
  Alcotest.(check string) "hex-float round trip preserves values"
    o.Interp.out_text o'.Interp.out_text

let test_parse_errors () =
  (match Whirl.Whirl_io.parse "garbage\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Whirl.Whirl_io.parse "whirl 1\nglobal\nendglobal\npu x 0 \"f\" \"f.o\" fortran 1 1 subroutine\nformals\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated pu accepted"

let suite =
  [
    Alcotest.test_case "tree round trip" `Quick test_tree_roundtrip;
    Alcotest.test_case "symtab round trip" `Quick test_symtab_roundtrip;
    Alcotest.test_case "analysis equal after reload" `Quick
      test_analysis_equal_after_reload;
    Alcotest.test_case "interp equal after reload" `Quick
      test_interp_equal_after_reload;
    Alcotest.test_case "floats bit-exact" `Quick test_floats_bit_exact;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
  ]
