(* Full-pipeline integration tests: source text -> frontend -> WHIRL ->
   IPL/IPA -> rows, on the paper's example programs. *)

open Ipa

let analyze files = Engine.analyze_sources files

let rows_of result ~scope ~array ~mode =
  List.filter
    (fun (r : Rgnfile.Row.t) ->
      r.Rgnfile.Row.scope = scope
      && r.Rgnfile.Row.array = array
      && r.Rgnfile.Row.mode = mode)
    result.Analyze.r_rows

let triplet (r : Rgnfile.Row.t) =
  (r.Rgnfile.Row.lb, r.Rgnfile.Row.ub, r.Rgnfile.Row.stride)

(* ------------------------------------------------------------------ *)
(* matrix.c (Fig 9 / Fig 10) *)

let matrix_result = lazy (analyze [ Corpus.Small.matrix_c ])

let test_fig9_def_rows () =
  let result = Lazy.force matrix_result in
  let defs = rows_of result ~scope:"@" ~array:"aarr" ~mode:"DEF" in
  Alcotest.(check int) "two DEF rows" 2 (List.length defs);
  let ts = List.map triplet defs |> List.sort compare in
  Alcotest.(check (list (triple string string string)))
    "DEF regions [0:7:1] and [1:8:1]"
    [ ("0", "7", "1"); ("1", "8", "1") ]
    ts;
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      Alcotest.(check int) "refs 2" 2 r.Rgnfile.Row.references;
      Alcotest.(check int) "density 2" 2 r.Rgnfile.Row.acc_density)
    defs

let test_fig9_use_rows () =
  let result = Lazy.force matrix_result in
  let uses = rows_of result ~scope:"@" ~array:"aarr" ~mode:"USE" in
  Alcotest.(check int) "three USE rows" 3 (List.length uses);
  let ts = List.map triplet uses |> List.sort compare in
  Alcotest.(check (list (triple string string string)))
    "USE regions"
    [ ("0", "7", "1"); ("0", "7", "1"); ("2", "6", "2") ]
    ts;
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      Alcotest.(check int) "refs 3" 3 r.Rgnfile.Row.references;
      Alcotest.(check int) "density 3" 3 r.Rgnfile.Row.acc_density)
    uses

let test_fig9_attributes () =
  let result = Lazy.force matrix_result in
  match rows_of result ~scope:"@" ~array:"aarr" ~mode:"DEF" with
  | r :: _ ->
    Alcotest.(check int) "element size 4" 4 r.Rgnfile.Row.element_size;
    Alcotest.(check string) "int" "int" r.Rgnfile.Row.data_type;
    Alcotest.(check string) "dim 20" "20" r.Rgnfile.Row.dim_size;
    Alcotest.(check int) "tot 20" 20 r.Rgnfile.Row.tot_size;
    Alcotest.(check int) "80 bytes" 80 r.Rgnfile.Row.size_bytes;
    Alcotest.(check string) "object file" "matrix.o" r.Rgnfile.Row.file;
    Alcotest.(check int) "1-D" 1 r.Rgnfile.Row.dimensions
  | [] -> Alcotest.fail "no DEF rows"

let test_fig9_mem_loc_shared () =
  let result = Lazy.force matrix_result in
  let all =
    rows_of result ~scope:"@" ~array:"aarr" ~mode:"DEF"
    @ rows_of result ~scope:"@" ~array:"aarr" ~mode:"USE"
  in
  match all with
  | r :: rest ->
    List.iter
      (fun (r' : Rgnfile.Row.t) ->
        Alcotest.(check string) "same Mem_Loc" r.Rgnfile.Row.mem_loc
          r'.Rgnfile.Row.mem_loc)
      rest
  | [] -> Alcotest.fail "no rows"

(* ------------------------------------------------------------------ *)
(* fig1.f: interprocedural regions and independence *)

let fig1_result = lazy (analyze [ Corpus.Small.fig1_f ])

let test_fig1_rows () =
  let result = Lazy.force fig1_result in
  (* p1 writes a(1:100,1:100): displayed row-major as 100|100 at lb 1|1 *)
  let defs = rows_of result ~scope:"p1" ~array:"a" ~mode:"DEF" in
  Alcotest.(check int) "one DEF row in p1" 1 (List.length defs);
  (match defs with
  | [ r ] ->
    Alcotest.(check string) "lb" "1|1" r.Rgnfile.Row.lb;
    Alcotest.(check string) "ub" "100|100" r.Rgnfile.Row.ub;
    Alcotest.(check string) "stride" "1|1" r.Rgnfile.Row.stride;
    Alcotest.(check string) "dims" "200|200" r.Rgnfile.Row.dim_size;
    Alcotest.(check int) "bytes" 160000 r.Rgnfile.Row.size_bytes
  | _ -> Alcotest.fail "unexpected");
  let uses = rows_of result ~scope:"p2" ~array:"a" ~mode:"USE" in
  (match uses with
  | [ r ] ->
    Alcotest.(check string) "lb" "101|101" r.Rgnfile.Row.lb;
    Alcotest.(check string) "ub" "200|200" r.Rgnfile.Row.ub
  | _ -> Alcotest.fail "expected one USE row in p2");
  (* FORMAL rows cover the whole declared array *)
  let formals = rows_of result ~scope:"p1" ~array:"a" ~mode:"FORMAL" in
  match formals with
  | [ r ] ->
    Alcotest.(check string) "formal lb" "1|1" r.Rgnfile.Row.lb;
    Alcotest.(check string) "formal ub" "200|200" r.Rgnfile.Row.ub
  | _ -> Alcotest.fail "expected one FORMAL row in p1"

let test_fig1_passed () =
  let result = Lazy.force fig1_result in
  let passed = rows_of result ~scope:"add" ~array:"a" ~mode:"PASSED" in
  Alcotest.(check int) "two PASSED rows in add" 2 (List.length passed);
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      Alcotest.(check int) "PASSED refs 2" 2 r.Rgnfile.Row.references)
    passed

let test_fig1_callgraph () =
  let result = Lazy.force fig1_result in
  let cg = result.Analyze.r_callgraph in
  Alcotest.(check int) "4 nodes" 4 (Callgraph.node_count cg);
  Alcotest.(check int) "3 edges" 3 (Callgraph.edge_count cg);
  Alcotest.(check (list string)) "roots" [ "fig1" ] (Callgraph.roots cg);
  Alcotest.(check (list string))
    "callees of add" [ "p1"; "p2" ] (Callgraph.callees cg "add");
  Alcotest.(check bool) "not recursive" false (Callgraph.is_recursive cg "add")

let test_fig1_summary () =
  let result = Lazy.force fig1_result in
  (* add's summary on formal#0 must contain a DEF and a USE region *)
  let s = Analyze.summary_of result "add" in
  let on_formal mode =
    List.filter
      (fun (e : Summary.entry) ->
        e.Summary.e_key = Summary.Kformal 0
        && Regions.Mode.equal e.Summary.e_mode mode)
      s
  in
  Alcotest.(check int) "one DEF region" 1 (List.length (on_formal Regions.Mode.DEF));
  Alcotest.(check int) "one USE region" 1 (List.length (on_formal Regions.Mode.USE))

let test_fig1_sites_independent () =
  let result = Lazy.force fig1_result in
  let m = result.Analyze.r_module in
  let info = List.assoc "add" result.Analyze.r_infos in
  let caller = info.Collect.p_pu in
  match info.Collect.p_sites with
  | [ s1; s2 ] ->
    Alcotest.(check string) "first callee" "p1" s1.Collect.s_callee;
    let conflicts =
      Parallel.sites_independent m result.Analyze.r_summaries ~caller s1 s2
    in
    Alcotest.(check int) "P1 and P2 are independent" 0 (List.length conflicts)
  | _ -> Alcotest.fail "expected two call sites in add"

let test_fig1_conflicting_sites () =
  (* variant where P2 reads what P1 writes: must report a conflict *)
  let src =
    ( "conflict.f",
      {|      program confl
      integer a(1:200, 1:200)
      integer j
      do j = 1, 10
        call w(a, j)
        call r(a, j)
      end do
      end

      subroutine w(a, j)
      integer a(1:200, 1:200)
      integer j, i
      do i = 1, 100
        a(i, j) = i
      end do
      end

      subroutine r(a, j)
      integer a(1:200, 1:200)
      integer j, i, s
      s = 0
      do i = 50, 150
        s = s + a(i, j)
      end do
      end
|} )
  in
  let result = analyze [ src ] in
  let m = result.Analyze.r_module in
  let info = List.assoc "confl" result.Analyze.r_infos in
  match info.Collect.p_sites with
  | [ s1; s2 ] ->
    let conflicts =
      Parallel.sites_independent m result.Analyze.r_summaries
        ~caller:info.Collect.p_pu s1 s2
    in
    Alcotest.(check bool) "conflict detected" true (conflicts <> [])
  | _ -> Alcotest.fail "expected two call sites"

let test_even_odd_sites_independent () =
  (* interleaved writers: only the stride lattice can prove independence *)
  let src =
    ( "eo.f",
      {|      program eo
      integer a(1:64)
      call evens(a)
      call odds(a)
      end

      subroutine evens(a)
      integer a(1:64)
      integer i
      do i = 2, 64, 2
        a(i) = i
      end do
      end

      subroutine odds(a)
      integer a(1:64)
      integer i
      do i = 1, 63, 2
        a(i) = i
      end do
      end
|} )
  in
  let result = analyze [ src ] in
  let m = result.Analyze.r_module in
  let info = List.assoc "eo" result.Analyze.r_infos in
  match info.Collect.p_sites with
  | [ s1; s2 ] ->
    let conflicts =
      Parallel.sites_independent m result.Analyze.r_summaries
        ~caller:info.Collect.p_pu s1 s2
    in
    Alcotest.(check int) "even/odd writers independent" 0
      (List.length conflicts)
  | _ -> Alcotest.fail "expected two call sites"

let test_loop_parallel () =
  let result = Lazy.force fig1_result in
  let m = result.Analyze.r_module in
  let p1 = Option.get (Whirl.Ir.find_pu m "p1") in
  (* find the outer DO loop in p1 *)
  let loop = ref None in
  Whirl.Wn.preorder
    (fun w ->
      if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP && !loop = None then
        loop := Some w)
    p1.Whirl.Ir.pu_body;
  let verdict =
    Parallel.loop_parallel m result.Analyze.r_summaries p1 (Option.get !loop)
  in
  Alcotest.(check bool) "p1 outer loop parallel" true verdict.Parallel.lv_parallel;
  (* the j loop in add repeats the same DEF region: not parallel *)
  let add = Option.get (Whirl.Ir.find_pu m "add") in
  let loop2 = ref None in
  Whirl.Wn.preorder
    (fun w ->
      if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP && !loop2 = None then
        loop2 := Some w)
    add.Whirl.Ir.pu_body;
  let verdict2 =
    Parallel.loop_parallel m result.Analyze.r_summaries add (Option.get !loop2)
  in
  Alcotest.(check bool) "add's j loop not parallel" false
    verdict2.Parallel.lv_parallel

(* ------------------------------------------------------------------ *)
(* stride.f: negative/non-unit strides, symbolic bound, messy subscript *)

let stride_result = lazy (analyze [ Corpus.Small.stride_f ])

let test_stride_rows () =
  let result = Lazy.force stride_result in
  let defs = rows_of result ~scope:"stride" ~array:"b" ~mode:"DEF" in
  let ts = List.map triplet defs |> List.sort compare in
  (* three DEF sites: [2:64:2] (downward strided), [1:n:1] (symbolic hi
     folds to 1:32? n is set before the loop, but the analysis treats it
     symbolically -> ub "n"), [1:64:*] (messy via idx) *)
  Alcotest.(check int) "three DEF rows" 3 (List.length ts);
  Alcotest.(check bool) "contains [2:64:2]" true
    (List.mem ("2", "64", "2") ts);
  Alcotest.(check bool) "contains messy [1:64:*]" true
    (List.mem ("1", "64", "*") ts);
  Alcotest.(check bool) "symbolic ub row present" true
    (List.exists (fun (_, ub, _) -> ub = "n") ts)

let test_stride_idx_use () =
  let result = Lazy.force stride_result in
  let uses = rows_of result ~scope:"stride" ~array:"idx" ~mode:"USE" in
  match uses with
  | [ r ] ->
    Alcotest.(check string) "idx use lb" "1" r.Rgnfile.Row.lb;
    Alcotest.(check string) "idx use ub" "10" r.Rgnfile.Row.ub
  | _ -> Alcotest.fail "expected one USE row for idx"

(* ------------------------------------------------------------------ *)
(* file round-trips *)

let test_rgn_roundtrip () =
  let result = Lazy.force matrix_result in
  let text = Rgnfile.Files.write_rgn result.Analyze.r_rows in
  match Rgnfile.Files.parse_rgn text with
  | Ok rows ->
    Alcotest.(check int) "row count" (List.length result.Analyze.r_rows)
      (List.length rows);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "row equal" true (Rgnfile.Row.equal a b))
      result.Analyze.r_rows rows
  | Error e -> Alcotest.fail e

let test_dgn_roundtrip () =
  let result = Lazy.force fig1_result in
  let text = Rgnfile.Files.write_dgn result.Analyze.r_dgn in
  match Rgnfile.Files.parse_dgn text with
  | Ok d ->
    Alcotest.(check int) "procs" 4 (List.length d.Rgnfile.Files.dgn_procs);
    Alcotest.(check int) "edges" 3 (List.length d.Rgnfile.Files.dgn_edges)
  | Error e -> Alcotest.fail e

let test_cfg_build () =
  let result = Lazy.force fig1_result in
  let cfg = List.assoc "p1" result.Analyze.r_cfgs in
  Alcotest.(check bool) "blocks > 4" true (Cfg.block_count cfg > 4);
  Alcotest.(check bool) "has edges" true (Cfg.edge_count cfg > 4);
  (* entry dominates everything reachable *)
  let idom = Cfg.dominators cfg in
  Alcotest.(check int) "entry self-dominated" cfg.Cfg.entry
    idom.(cfg.Cfg.entry)

let test_whirl2src () =
  let result = Lazy.force fig1_result in
  let m = result.Analyze.r_module in
  let p1 = Option.get (Whirl.Ir.find_pu m "p1") in
  let src = Whirl.Whirl2src.pu_to_string m p1 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions a(i, k)" true (contains src "a(i, k)")

let suite =
  [
    Alcotest.test_case "Fig9: aarr DEF rows" `Quick test_fig9_def_rows;
    Alcotest.test_case "Fig9: aarr USE rows" `Quick test_fig9_use_rows;
    Alcotest.test_case "Fig9: aarr attributes" `Quick test_fig9_attributes;
    Alcotest.test_case "Fig9: shared Mem_Loc" `Quick test_fig9_mem_loc_shared;
    Alcotest.test_case "Fig1: interprocedural rows" `Quick test_fig1_rows;
    Alcotest.test_case "Fig1: PASSED rows" `Quick test_fig1_passed;
    Alcotest.test_case "Fig1: call graph" `Quick test_fig1_callgraph;
    Alcotest.test_case "Fig1: add summary" `Quick test_fig1_summary;
    Alcotest.test_case "Fig1: P1/P2 independent" `Quick test_fig1_sites_independent;
    Alcotest.test_case "conflicting sites detected" `Quick test_fig1_conflicting_sites;
    Alcotest.test_case "loop parallelism verdicts" `Quick test_loop_parallel;
    Alcotest.test_case "even/odd lattice independence" `Quick
      test_even_odd_sites_independent;
    Alcotest.test_case "stride rows" `Quick test_stride_rows;
    Alcotest.test_case "idx USE row" `Quick test_stride_idx_use;
    Alcotest.test_case ".rgn round-trip" `Quick test_rgn_roundtrip;
    Alcotest.test_case ".dgn round-trip" `Quick test_dgn_roundtrip;
    Alcotest.test_case "CFG build" `Quick test_cfg_build;
    Alcotest.test_case "whirl2src" `Quick test_whirl2src;
  ]
