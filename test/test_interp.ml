open Regions

let run_src ?observer files =
  let prog = Lang.Frontend.load ~files in
  let m = Whirl.Lower.lower prog in
  Interp.run ?observer m

let test_arith_and_print () =
  let o =
    run_src
      [
        ( "t.f",
          {|      program t
      integer x, y
      x = 7
      y = x * 3 - 4
      print *, y, x ** 2
      end
|} );
      ]
  in
  Alcotest.(check string) "output" "17 49\n" o.Interp.out_text

let test_fortran_byref () =
  (* Fortran passes scalars by reference: the callee's assignment must be
     visible in the caller *)
  let o =
    run_src
      [
        ( "t.f",
          {|      program t
      integer x
      x = 1
      call bump(x)
      print *, x
      end

      subroutine bump(n)
      integer n
      n = n + 41
      end
|} );
      ]
  in
  Alcotest.(check string) "output" "42\n" o.Interp.out_text

let test_array_aliasing () =
  (* whole-array argument: callee writes through the formal *)
  let o =
    run_src
      [
        ( "t.f",
          {|      program t
      integer a(1:5)
      integer i
      call fill(a)
      do i = 1, 5
        print *, a(i)
      end do
      end

      subroutine fill(b)
      integer b(1:5)
      integer i
      do i = 1, 5
        b(i) = i * 10
      end do
      end
|} );
      ]
  in
  Alcotest.(check string) "output" "10\n20\n30\n40\n50\n" o.Interp.out_text

let test_strided_and_negative_loops () =
  let o =
    run_src
      [
        ( "t.f",
          {|      program t
      integer s, i
      s = 0
      do i = 10, 2, -2
        s = s + i
      end do
      print *, s
      end
|} );
      ]
  in
  Alcotest.(check string) "10+8+6+4+2" "30\n" o.Interp.out_text

let test_while_and_if () =
  let o =
    run_src
      [
        ( "t.f",
          {|      program t
      integer n, c
      n = 27
      c = 0
      do while (n .ne. 1)
        if (mod(n, 2) .eq. 0) then
          n = n / 2
        else
          n = 3 * n + 1
        end if
        c = c + 1
      end do
      print *, c
      end
|} );
      ]
  in
  Alcotest.(check string) "collatz(27)" "111\n" o.Interp.out_text

let test_c_program () =
  let o =
    run_src
      [
        ( "t.c",
          {|int a[8];
int main() {
  int i, s;
  s = 0;
  for (i = 0; i < 8; i++) {
    a[i] = i * i;
  }
  for (i = 0; i < 8; i += 2) {
    s += a[i];
  }
  printf("%d", s);
  return 0;
}
|} );
      ]
  in
  (* 0 + 4 + 16 + 36; printf "%d" formats without a newline *)
  Alcotest.(check string) "c output" "56" o.Interp.out_text

let test_out_of_bounds () =
  let src =
    ( "t.f",
      {|      program t
      integer a(1:5)
      a(9) = 1
      end
|} )
  in
  (try
     ignore (run_src [ src ]);
     Alcotest.fail "expected Runtime_error"
   with Interp.Runtime_error (msg, _) ->
     Alcotest.(check bool) "mentions bounds" true
       (String.length msg > 0))

let test_fuel () =
  let src =
    ( "t.f",
      {|      program t
      integer x
      x = 0
      do while (x .eq. 0)
        x = 0
      end do
      end
|} )
  in
  Alcotest.check_raises "out of fuel" Interp.Out_of_fuel (fun () ->
      let prog = Lang.Frontend.load ~files:[ src ] in
      let m = Whirl.Lower.lower prog in
      ignore (Interp.run ~fuel:1000 m))

let test_events_carry_layout_addresses () =
  let events = ref [] in
  let _ =
    run_src
      ~observer:(fun ev -> events := ev :: !events)
      [
        ( "t.f",
          {|      program t
      double precision a(1:4)
      integer i
      do i = 1, 4
        a(i) = i
      end do
      end
|} );
      ]
  in
  let writes = List.rev !events in
  Alcotest.(check int) "4 writes" 4 (List.length writes);
  let addrs = List.map (fun e -> e.Interp.ev_addr) writes in
  (* consecutive elements 8 bytes apart, ascending *)
  let rec deltas = function
    | a :: (b :: _ as rest) -> (b - a) :: deltas rest
    | _ -> []
  in
  Alcotest.(check (list int)) "stride 8 addresses" [ 8; 8; 8 ] (deltas addrs);
  List.iter
    (fun e ->
      Alcotest.(check bool) "write" true e.Interp.ev_write;
      Alcotest.(check string) "array name" "a" e.Interp.ev_array;
      Alcotest.(check int) "8 bytes" 8 e.Interp.ev_bytes)
    writes

(* dynamic sections must be covered by the static regions *)
let test_static_covers_dynamic () =
  let files = [ Corpus.Small.matrix_c ] in
  let result = Engine.analyze_sources files in
  let m = result.Ipa.Analyze.r_module in
  let outcome = Interp.run m in
  List.iter
    (fun dr ->
      match Methods.Section.dims dr.Interp.dr_section with
      | None -> ()
      | Some dims ->
        (* every dynamically touched coordinate must lie inside the union
           of the static rows' constant bounds for that (array, mode) *)
        let static =
          List.filter
            (fun (a : Ipa.Collect.access) ->
              Mode.equal a.Ipa.Collect.ac_mode dr.Interp.dr_mode)
            (List.concat_map
               (fun (_, info) -> info.Ipa.Collect.p_accesses)
               result.Ipa.Analyze.r_infos)
          |> List.filter (fun (a : Ipa.Collect.access) ->
                 (* match on name via region arity: matrix.c has only aarr *)
                 Region.dim_list a.Ipa.Collect.ac_region <> [])
        in
        let covered coords =
          List.exists
            (fun (a : Ipa.Collect.access) ->
              Region.contains_point a.Ipa.Collect.ac_region coords)
            static
        in
        List.iter
          (fun (d : Methods.Section.dim) ->
            Alcotest.(check bool)
              (Printf.sprintf "lo %d covered" d.Methods.Section.lo)
              true
              (covered [ d.Methods.Section.lo ]);
            Alcotest.(check bool)
              (Printf.sprintf "hi %d covered" d.Methods.Section.hi)
              true
              (covered [ d.Methods.Section.hi ]))
          dims)
    outcome.Interp.out_regions

let test_function_result () =
  (* regression: a user function in expression position returns its result
     (previously a silent 0) *)
  let o =
    run_src
      [
        ( "t.f",
          {|      program t
      integer r
      r = sq(7) + 1
      print *, r
      end

      integer function sq(n)
      integer n
      sq = n * n
      end
|} );
      ]
  in
  Alcotest.(check string) "49 + 1" "50
" o.Interp.out_text

let test_dynamic_call_feedback () =
  let prog = Lang.Frontend.load ~files:[ Corpus.Small.fig1_f ] in
  let m = Whirl.Lower.lower prog in
  let o = Interp.run m in
  (* the j loop runs m=50 times, calling p1 and p2 each iteration *)
  Alcotest.(check (option int)) "fig1 -> add once" (Some 1)
    (List.assoc_opt ("fig1", "add") o.Interp.out_calls);
  Alcotest.(check (option int)) "add -> p1 fifty times" (Some 50)
    (List.assoc_opt ("add", "p1") o.Interp.out_calls);
  Alcotest.(check (option int)) "add -> p2 fifty times" (Some 50)
    (List.assoc_opt ("add", "p2") o.Interp.out_calls)

let test_lu_class_s_runs () =
  (* the whole NAS-LU-shaped program executes at class S with few steps *)
  let files = Corpus.Nas_lu.files ~cls:'S' () in
  let prog = Lang.Frontend.load ~files in
  let m = Whirl.Lower.lower prog in
  (* shrink the iteration count via fuel rather than editing the corpus:
     class S with itmax=250 is ~hundreds of millions of statements, so run
     only until the budget trips and check we got deep into execution *)
  (try ignore (Interp.run ~fuel:2_000_000 m) with Interp.Out_of_fuel -> ());
  Alcotest.(check pass) "no runtime errors before the fuel limit" () ()

let suite =
  [
    Alcotest.test_case "arithmetic & print" `Quick test_arith_and_print;
    Alcotest.test_case "fortran by-reference scalars" `Quick test_fortran_byref;
    Alcotest.test_case "array argument aliasing" `Quick test_array_aliasing;
    Alcotest.test_case "negative-step loop" `Quick test_strided_and_negative_loops;
    Alcotest.test_case "while + if" `Quick test_while_and_if;
    Alcotest.test_case "C program" `Quick test_c_program;
    Alcotest.test_case "out-of-bounds detection" `Quick test_out_of_bounds;
    Alcotest.test_case "fuel limit" `Quick test_fuel;
    Alcotest.test_case "events carry layout addresses" `Quick test_events_carry_layout_addresses;
    Alcotest.test_case "static covers dynamic" `Quick test_static_covers_dynamic;
    Alcotest.test_case "function result" `Quick test_function_result;
    Alcotest.test_case "dynamic call feedback" `Quick test_dynamic_call_feedback;
    Alcotest.test_case "NAS LU class S executes" `Quick test_lu_class_s_runs;
  ]
