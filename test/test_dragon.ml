(* Dragon viewer: table rendering, find, browsing, graphs, advisor. *)

let project_of files =
  let result = Engine.analyze_sources files in
  ( result,
    Dragon.Project.make ~name:"t" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows ~sources:files () )

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let test_table_render () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let out = Dragon.Table.render p in
  Alcotest.(check bool) "global heading" true (contains out "== @ (global arrays) ==");
  Alcotest.(check bool) "has aarr" true (contains out "aarr");
  Alcotest.(check bool) "has density column" true (contains out "Dens")

let test_table_find_marks () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let out = Dragon.Table.render ~find:"aarr" p in
  Alcotest.(check bool) "marks matches" true (contains out "* aarr");
  Alcotest.(check bool) "reports count" true (contains out "find \"aarr\": 5 row(s)")

let test_table_find_color () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let options = { Dragon.Table.default_options with Dragon.Table.color = true } in
  let out = Dragon.Table.render ~options ~find:"aarr" p in
  Alcotest.(check bool) "green escapes" true (contains out "\027[32m")

let test_table_scope_filter () =
  let _, p = project_of [ Corpus.Small.fig1_f ] in
  let out = Dragon.Table.render ~scope:"p1" p in
  Alcotest.(check bool) "p1 shown" true (contains out "== p1 ==");
  Alcotest.(check bool) "p2 hidden" false (contains out "== p2 ==")

let test_scopes_order () =
  let _, p = project_of [ Corpus.Small.fig1_f ] in
  match Dragon.Project.scopes p with
  | [] -> Alcotest.fail "no scopes"
  | scopes ->
    (* "@" comes first when present; fig1.f has no global arrays *)
    Alcotest.(check bool) "no stray @ later" true
      (match scopes with
      | "@" :: rest -> not (List.mem "@" rest)
      | rest -> not (List.mem "@" rest))

let test_grep () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let hits = Dragon.Browse.grep p "aarr[i]" in
  Alcotest.(check bool) "substring hits" true (List.length hits >= 2);
  let word_hits = Dragon.Browse.grep_array p "i" in
  (* word match: 'i' appears as an identifier but not inside 'printf' *)
  Alcotest.(check bool) "word boundaries respected" true
    (List.for_all
       (fun h -> not (contains h.Dragon.Browse.h_text "sprintf"))
       word_hits)

let test_show_excerpt () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  match Dragon.Browse.show p ~file:"matrix.c" 8 with
  | None -> Alcotest.fail "expected excerpt"
  | Some s ->
    Alcotest.(check bool) "marks the line" true (contains s ">   8 |");
    Alcotest.(check bool) "has context" true (contains s "   6 |")

let test_locate_row () =
  let result, p = project_of [ Corpus.Small.matrix_c ] in
  let row =
    List.find
      (fun (r : Rgnfile.Row.t) ->
        r.Rgnfile.Row.array = "aarr" && r.Rgnfile.Row.mode = "DEF")
      result.Ipa.Analyze.r_rows
  in
  match Dragon.Browse.locate_row p row with
  | None -> Alcotest.fail "expected to locate the row"
  | Some excerpt -> Alcotest.(check bool) "shows aarr" true (contains excerpt "aarr")

let test_callgraph_views () =
  let result, _ = project_of [ Corpus.Small.fig1_f ] in
  let p =
    Dragon.Project.make ~name:"t" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows ~sources:[ Corpus.Small.fig1_f ] ()
  in
  let ascii = Dragon.Graphs.callgraph_ascii p in
  Alcotest.(check bool) "root first" true (contains ascii "- fig1");
  Alcotest.(check bool) "footer count" true (contains ascii "4 procedures");
  let dot = Dragon.Graphs.callgraph_dot p in
  Alcotest.(check bool) "dot edge" true (contains dot "\"add\" -> \"p1\"")

let test_cfg_views () =
  let result = Engine.analyze_sources [ Corpus.Small.fig1_f ] in
  let blocks =
    List.concat_map
      (fun (proc, cfg) ->
        Array.to_list cfg.Cfg.blocks
        |> List.map (fun (b : Cfg.block) ->
               {
                 Rgnfile.Files.cb_proc = proc;
                 cb_id = b.Cfg.id;
                 cb_label = b.Cfg.label;
                 cb_succs = b.Cfg.succs;
               }))
      result.Ipa.Analyze.r_cfgs
  in
  let p =
    Dragon.Project.make ~name:"t" ~dgn:result.Ipa.Analyze.r_dgn
      ~rows:result.Ipa.Analyze.r_rows ~cfg:blocks ()
  in
  Alcotest.(check bool) "p1 has a cfg" true
    (List.mem "p1" (Dragon.Graphs.cfg_procs p));
  (match Dragon.Graphs.cfg_ascii p ~proc:"p1" with
  | Some s -> Alcotest.(check bool) "loop head present" true (contains s "loop-head")
  | None -> Alcotest.fail "no ascii cfg");
  match Dragon.Graphs.cfg_dot p ~proc:"p1" with
  | Some s -> Alcotest.(check bool) "dot nodes" true (contains s "digraph")
  | None -> Alcotest.fail "no dot cfg"

let test_advisor_matrix () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let resizes = Dragon.Advisor.resize_suggestions p in
  (match resizes with
  | [ r ] ->
    Alcotest.(check string) "aarr" "aarr" r.Dragon.Advisor.rs_array;
    Alcotest.(check (list (pair int int))) "accessed span" [ (0, 8) ]
      r.Dragon.Advisor.rs_accessed;
    Alcotest.(check int) "saving (20-9)*4" 44 r.Dragon.Advisor.rs_saving_bytes
  | _ -> Alcotest.fail "expected exactly one resize suggestion");
  let copyins = Dragon.Advisor.copyin_suggestions p in
  (match copyins with
  | [ c ] ->
    Alcotest.(check string) "C pragma"
      "#pragma acc region for copyin(aarr[0:7])" c.Dragon.Advisor.ci_directive
  | _ -> Alcotest.fail "expected one copyin suggestion");
  let fusions = Dragon.Advisor.fusion_suggestions p in
  Alcotest.(check bool) "two identical USE regions fuse" true
    (List.exists
       (fun f -> f.Dragon.Advisor.fu_array = "aarr"
                 && List.length f.Dragon.Advisor.fu_lines >= 2)
       fusions)

let test_hotspots_sorted () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let hs = Dragon.Advisor.hotspots p in
  Alcotest.(check bool) "nonempty" true (hs <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Dragon.Advisor.hs_density >= b.Dragon.Advisor.hs_density && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "descending density" true (sorted hs)

let test_advisor_render () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let out = Dragon.Advisor.render p in
  Alcotest.(check bool) "has all four sections" true
    (contains out "Hotspot" && contains out "resize candidates"
    && contains out "Sub-array offload" && contains out "Mergeable loops")

let test_table_sort_density () =
  let _, p = project_of (Corpus.Nas_lu.files ()) in
  let options =
    { Dragon.Table.default_options with Dragon.Table.sort = Dragon.Table.By_density }
  in
  let out = Dragon.Table.render ~options ~scope:"@" p in
  (* the density-900 class row must come first in the @ scope *)
  let lines = String.split_on_char '
' out in
  (match lines with
  | _heading :: _header :: first :: _ ->
    Alcotest.(check bool) "class first" true (contains first "class")
  | _ -> Alcotest.fail "expected rows");
  (* mode filter *)
  let only_def =
    {
      Dragon.Table.default_options with
      Dragon.Table.modes = Some [ "DEF" ];
    }
  in
  let out = Dragon.Table.render ~options:only_def ~scope:"@" p in
  Alcotest.(check bool) "no USE rows" false (contains out " USE ")

let test_html_report () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let html = Dragon.Html.render p in
  Alcotest.(check bool) "doctype" true (contains html "<!DOCTYPE html>");
  Alcotest.(check bool) "table rows carry array names" true
    (contains html "data-array=\"aarr\"");
  Alcotest.(check bool) "find box" true (contains html "id=\"find\"");
  Alcotest.(check bool) "call graph embedded" true (contains html "- main");
  Alcotest.(check bool) "advisor embedded" true (contains html "Hotspot");
  Alcotest.(check bool) "source line anchors" true
    (contains html "id=\"matrix-8\"");
  (* escaping: no raw source < or > survive into HTML text *)
  let _, p2 =
    project_of
      [ ("esc.c", "int a[4];
int main() { if (1 < 2) { a[0] = 1; } return 0; }
") ]
  in
  let html2 = Dragon.Html.render p2 in
  Alcotest.(check bool) "less-than escaped" true (contains html2 "&lt;")

let test_repl () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  let st = Dragon.Repl.start p in
  let out cmd =
    match Dragon.Repl.eval st cmd with
    | `Output s -> s
    | `Quit -> Alcotest.failf "unexpected quit on %S" cmd
  in
  Alcotest.(check bool) "scopes lists @" true (contains (out "scopes") "@");
  Alcotest.(check bool) "table shows aarr" true (contains (out "table @") "aarr");
  Alcotest.(check bool) "find counts" true
    (contains (out "find aarr") "5 row(s)");
  Alcotest.(check bool) "grep hits" true (contains (out "grep aarr[i]") "hit(s)");
  Alcotest.(check bool) "locate shows source" true
    (contains (out "locate aarr") "aarr[i]");
  Alcotest.(check bool) "callgraph" true (contains (out "callgraph") "- main");
  Alcotest.(check bool) "advise" true (contains (out "advise") "Hotspot");
  Alcotest.(check bool) "sort feedback" true
    (contains (out "sort density") "sorting by density");
  Alcotest.(check bool) "bad sort usage" true (contains (out "sort nope") "usage");
  Alcotest.(check bool) "unknown command" true
    (contains (out "frobnicate") "unknown command");
  Alcotest.(check bool) "help" true (contains (out "help") "commands:");
  (match Dragon.Repl.eval st "quit" with
  | `Quit -> ()
  | `Output _ -> Alcotest.fail "quit should quit")

let test_diff () =
  let rows files wopt =
    let m = Whirl.Lower.lower (Lang.Frontend.load ~files) in
    let m = if wopt then fst (Wopt.Const_prop.run m) else m in
    (Engine.analyze m).Ipa.Analyze.r_rows
  in
  let before = rows [ Corpus.Small.stride_f ] false in
  let after = rows [ Corpus.Small.stride_f ] true in
  let d = Dragon.Diff.diff before after in
  Alcotest.(check bool) "not empty" false (Dragon.Diff.is_empty d);
  (* the symbolic rows become constant ones *)
  Alcotest.(check int) "two rows sharpened" 2 (List.length d.Dragon.Diff.added);
  Alcotest.(check int) "two rows gone" 2 (List.length d.Dragon.Diff.removed);
  let out = Dragon.Diff.render d in
  Alcotest.(check bool) "renders + and -" true
    (contains out "+ stride b" && contains out "- stride b");
  (* identical inputs: empty diff *)
  let d0 = Dragon.Diff.diff before before in
  Alcotest.(check bool) "self-diff empty" true (Dragon.Diff.is_empty d0);
  Alcotest.(check string) "self-diff message" "no differences\n"
    (Dragon.Diff.render d0);
  (* recounted: drop one USE site manually *)
  let fewer =
    List.filter
      (fun (r : Rgnfile.Row.t) ->
        not (r.Rgnfile.Row.mode = "USE" && r.Rgnfile.Row.array = "idx"))
      before
    |> List.map (fun (r : Rgnfile.Row.t) ->
           if r.Rgnfile.Row.array = "b" && r.Rgnfile.Row.mode = "DEF" then
             { r with Rgnfile.Row.references = r.Rgnfile.Row.references + 1 }
           else r)
  in
  let d2 = Dragon.Diff.diff before fewer in
  Alcotest.(check bool) "counts changed reported" true
    (d2.Dragon.Diff.recounted <> [])

let test_coverage () =
  let _, p = project_of [ Corpus.Small.matrix_c ] in
  (match Dragon.Advisor.coverage p with
  | [ c ] ->
    Alcotest.(check string) "aarr" "aarr" c.Dragon.Advisor.cv_array;
    (* accesses touch 0..8 = 9 of 20 elements *)
    Alcotest.(check int) "accessed" 9 c.Dragon.Advisor.cv_accessed;
    Alcotest.(check int) "declared" 20 c.Dragon.Advisor.cv_declared;
    Alcotest.(check int) "45 percent" 45 c.Dragon.Advisor.cv_percent
  | l -> Alcotest.failf "expected one coverage entry, got %d" (List.length l));
  (* disjoint intervals: union must not merge across gaps *)
  let gap_src =
    ( "gap.f",
      {|      program gap
      integer a(1:100)
      integer i
      do i = 1, 10
        a(i) = i
      end do
      do i = 51, 60
        a(i) = i
      end do
      end
|} )
  in
  let _, p2 = project_of [ gap_src ] in
  match Dragon.Advisor.coverage p2 with
  | [ c ] ->
    Alcotest.(check int) "two islands of 10" 20 c.Dragon.Advisor.cv_accessed;
    Alcotest.(check int) "20 percent" 20 c.Dragon.Advisor.cv_percent
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "coverage" `Quick test_coverage;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "repl" `Quick test_repl;
    Alcotest.test_case "html report" `Quick test_html_report;
    Alcotest.test_case "table sort + filter" `Quick test_table_sort_density;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table find marks" `Quick test_table_find_marks;
    Alcotest.test_case "table find color" `Quick test_table_find_color;
    Alcotest.test_case "table scope filter" `Quick test_table_scope_filter;
    Alcotest.test_case "scopes order" `Quick test_scopes_order;
    Alcotest.test_case "grep" `Quick test_grep;
    Alcotest.test_case "show excerpt" `Quick test_show_excerpt;
    Alcotest.test_case "locate row" `Quick test_locate_row;
    Alcotest.test_case "callgraph views" `Quick test_callgraph_views;
    Alcotest.test_case "cfg views" `Quick test_cfg_views;
    Alcotest.test_case "advisor on matrix.c" `Quick test_advisor_matrix;
    Alcotest.test_case "hotspots sorted" `Quick test_hotspots_sorted;
    Alcotest.test_case "advisor render" `Quick test_advisor_render;
  ]
