(* Integration suite on the NAS-LU-shaped corpus: asserts the numbers the
   paper reports in Fig 11, Fig 12/Table II, Fig 14/Table III and the Case 2
   directive. *)

let result = lazy (Engine.analyze_sources (Corpus.Nas_lu.files ()))

let rows pred = List.filter pred (Lazy.force result).Ipa.Analyze.r_rows

let test_fig11_callgraph () =
  let cg = (Lazy.force result).Ipa.Analyze.r_callgraph in
  Alcotest.(check int) "24 procedures (paper: Fig 11)" 24
    (Ipa.Callgraph.node_count cg);
  Alcotest.(check (list string)) "single root" [ "applu" ] (Ipa.Callgraph.roots cg);
  (* every one of the paper's procedures is present *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in graph") true
        (List.mem name (Ipa.Callgraph.procs cg)))
    Corpus.Nas_lu.proc_names;
  (* ssor drives the solver *)
  let ssor_callees = Ipa.Callgraph.callees cg "ssor" in
  List.iter
    (fun callee ->
      Alcotest.(check bool) ("ssor calls " ^ callee) true
        (List.mem callee ssor_callees))
    [ "rhs"; "jacld"; "blts"; "jacu"; "buts"; "l2norm" ]

let test_tab2_xcr () =
  let xcr_use =
    rows (fun r ->
        r.Rgnfile.Row.array = "xcr" && r.Rgnfile.Row.mode = "USE"
        && r.Rgnfile.Row.scope = "verify")
  in
  Alcotest.(check int) "4 USE rows" 4 (List.length xcr_use);
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      Alcotest.(check int) "refs 4 (Table II)" 4 r.Rgnfile.Row.references;
      Alcotest.(check string) "bounds 1:5" "1" r.Rgnfile.Row.lb;
      Alcotest.(check string) "bounds 1:5" "5" r.Rgnfile.Row.ub;
      Alcotest.(check string) "stride 1" "1" r.Rgnfile.Row.stride;
      Alcotest.(check int) "esize 8" 8 r.Rgnfile.Row.element_size;
      Alcotest.(check string) "double" "double" r.Rgnfile.Row.data_type;
      Alcotest.(check int) "40 bytes" 40 r.Rgnfile.Row.size_bytes;
      Alcotest.(check int) "density 10 (Table II)" 10 r.Rgnfile.Row.acc_density;
      Alcotest.(check string) "file verify.o" "verify.o" r.Rgnfile.Row.file)
    xcr_use;
  let xcr_formal =
    rows (fun r ->
        r.Rgnfile.Row.array = "xcr" && r.Rgnfile.Row.mode = "FORMAL")
  in
  (match xcr_formal with
  | [ r ] ->
    Alcotest.(check int) "FORMAL refs 1" 1 r.Rgnfile.Row.references;
    Alcotest.(check int) "FORMAL density 2 (Table II)" 2 r.Rgnfile.Row.acc_density
  | _ -> Alcotest.fail "expected exactly one FORMAL row for xcr")

let test_fig12_class () =
  let class_rows =
    rows (fun r -> r.Rgnfile.Row.array = "class" && r.Rgnfile.Row.mode = "DEF")
  in
  Alcotest.(check int) "9 DEF rows" 9 (List.length class_rows);
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      Alcotest.(check int) "refs 9 (Fig 12)" 9 r.Rgnfile.Row.references;
      Alcotest.(check string) "char" "char" r.Rgnfile.Row.data_type;
      Alcotest.(check int) "1 byte" 1 r.Rgnfile.Row.size_bytes;
      Alcotest.(check int) "density 900 (Fig 12)" 900 r.Rgnfile.Row.acc_density;
      Alcotest.(check string) "global scope" "@" r.Rgnfile.Row.scope)
    class_rows

let test_tab3_u () =
  let u_use =
    rows (fun r ->
        r.Rgnfile.Row.array = "u" && r.Rgnfile.Row.mode = "USE"
        && r.Rgnfile.Row.file = "rhs.o")
  in
  Alcotest.(check int) "110 USE rows in rhs.o (Table III)" 110
    (List.length u_use);
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      Alcotest.(check int) "References 110" 110 r.Rgnfile.Row.references;
      Alcotest.(check int) "4-D" 4 r.Rgnfile.Row.dimensions;
      Alcotest.(check string) "dims 64|65|65|5" "64|65|65|5" r.Rgnfile.Row.dim_size;
      Alcotest.(check int) "1352000 elements" 1352000 r.Rgnfile.Row.tot_size;
      Alcotest.(check int) "10816000 bytes" 10816000 r.Rgnfile.Row.size_bytes;
      Alcotest.(check int) "density 0" 0 r.Rgnfile.Row.acc_density)
    u_use

let test_fig14_corner_regions () =
  let corner =
    rows (fun r ->
        r.Rgnfile.Row.array = "u" && r.Rgnfile.Row.mode = "USE"
        && r.Rgnfile.Row.file = "rhs.o"
        && String.length r.Rgnfile.Row.ub >= 6
        && String.sub r.Rgnfile.Row.ub 0 6 = "3|5|10")
  in
  Alcotest.(check int) "four rows, last dim separate (Fig 14)" 4
    (List.length corner);
  let ubs =
    List.map (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.ub) corner
    |> List.sort compare
  in
  Alcotest.(check (list string)) "per-m regions"
    [ "3|5|10|1"; "3|5|10|2"; "3|5|10|3"; "3|5|10|4" ]
    ubs

let test_case2_directive () =
  let r = Lazy.force result in
  let project =
    Dragon.Project.make ~name:"lu" ~dgn:r.Ipa.Analyze.r_dgn
      ~rows:r.Ipa.Analyze.r_rows ~sources:(Corpus.Nas_lu.files ()) ()
  in
  let corner_lines =
    List.filter_map
      (fun (row : Rgnfile.Row.t) ->
        if
          row.Rgnfile.Row.array = "u" && row.Rgnfile.Row.mode = "USE"
          && String.length row.Rgnfile.Row.ub >= 6
          && String.sub row.Rgnfile.Row.ub 0 6 = "3|5|10"
        then Some row.Rgnfile.Row.line
        else None)
      r.Ipa.Analyze.r_rows
  in
  let first_line = List.fold_left min max_int corner_lines in
  let last_line = List.fold_left max 0 corner_lines in
  match
    Dragon.Advisor.copyin_for_lines project ~array:"u" ~first_line ~last_line
  with
  | None -> Alcotest.fail "expected copyin advice"
  | Some a ->
    Alcotest.(check string) "the paper's directive"
      "!$acc region copyin(u(1:3, 1:5, 1:10, 1:4))"
      a.Dragon.Advisor.ci_directive;
    Alcotest.(check int) "full bytes" 10816000 a.Dragon.Advisor.ci_bytes_full;
    Alcotest.(check int) "region bytes = 600 elems * 8" 4800
      a.Dragon.Advisor.ci_bytes_region

let test_tab4_shape () =
  (* the speedup grows monotonically with the class size *)
  let speedups =
    List.filter_map
      (fun cls ->
        let r = Engine.analyze_sources (Corpus.Nas_lu.files ~cls ()) in
        let u_row =
          List.find_opt
            (fun (row : Rgnfile.Row.t) ->
              row.Rgnfile.Row.array = "u" && row.Rgnfile.Row.mode = "USE")
            r.Ipa.Analyze.r_rows
        in
        Option.map
          (fun (row : Rgnfile.Row.t) ->
            let full = row.Rgnfile.Row.size_bytes in
            let t_full = Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2 ~bytes:full in
            let t_sub = Gpu.Offload.transfer_time Gpu.Offload.pcie_gen2 ~bytes:4800 in
            Gpu.Offload.speedup ~baseline:t_full ~improved:t_sub)
          u_row)
      [ 'S'; 'W'; 'A' ]
  in
  Alcotest.(check int) "three classes" 3 (List.length speedups);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "speedup grows with class (Table IV shape)" true
    (increasing speedups);
  Alcotest.(check bool) "subarray always wins" true
    (List.for_all (fun s -> s > 1.0) speedups)

let test_no_recursion () =
  let cg = (Lazy.force result).Ipa.Analyze.r_callgraph in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " not recursive") false
        (Ipa.Callgraph.is_recursive cg p))
    (Ipa.Callgraph.procs cg)

let test_class_parametrization () =
  (* class S shrinks the grid to 12^3: u(5,13,13,12) = 10140 elems *)
  let r = Engine.analyze_sources (Corpus.Nas_lu.files ~cls:'S' ()) in
  let u_row =
    List.find
      (fun (row : Rgnfile.Row.t) ->
        row.Rgnfile.Row.array = "u" && row.Rgnfile.Row.mode = "USE"
        && row.Rgnfile.Row.file = "rhs.o")
      r.Ipa.Analyze.r_rows
  in
  Alcotest.(check string) "class S dims" "12|13|13|5" u_row.Rgnfile.Row.dim_size;
  Alcotest.(check int) "class S elements" (12 * 13 * 13 * 5)
    u_row.Rgnfile.Row.tot_size;
  Alcotest.(check int) "class S still 110 refs" 110 u_row.Rgnfile.Row.references;
  (* the call structure is class-independent *)
  Alcotest.(check int) "24 procedures at class S" 24
    (Ipa.Callgraph.node_count r.Ipa.Analyze.r_callgraph)

let test_outputs_loadable_by_dragon () =
  let dir = Filename.temp_file "lu_proj" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let r = Lazy.force result in
  let _ = Ipa.Analyze.write_outputs r ~dir ~project:"lu" in
  List.iter
    (fun (name, contents) ->
      Rgnfile.Files.save ~path:(Filename.concat dir (Filename.basename name)) contents)
    (Corpus.Nas_lu.files ());
  match Dragon.Project.load ~dir ~project:"lu" with
  | Error e -> Alcotest.failf "project load failed: %s" e
  | Ok p ->
    Alcotest.(check int) "rows preserved"
      (List.length r.Ipa.Analyze.r_rows)
      (List.length p.Dragon.Project.rows);
    Alcotest.(check int) "24 procedures" 24
      (List.length (Dragon.Project.procedures p));
    Alcotest.(check bool) "sources loaded" true
      (List.length p.Dragon.Project.sources = List.length (Corpus.Nas_lu.files ()));
    (* the grep feature finds xcr in verify.f *)
    let hits = Dragon.Browse.grep_array p "xcr" in
    Alcotest.(check bool) "grep hits" true (List.length hits >= 4)

let test_analysis_speed () =
  (* regression guard: the whole class-A pipeline stays interactive *)
  let t0 = Unix.gettimeofday () in
  ignore (Engine.analyze_sources (Corpus.Nas_lu.files ()));
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "class A analysis under 2s (took %.2fs)" dt)
    true (dt < 2.0)

let suite =
  [
    Alcotest.test_case "analysis speed guard" `Quick test_analysis_speed;
    Alcotest.test_case "Fig 11: call graph" `Quick test_fig11_callgraph;
    Alcotest.test_case "Table II: xcr" `Quick test_tab2_xcr;
    Alcotest.test_case "Fig 12: class" `Quick test_fig12_class;
    Alcotest.test_case "Table III: u" `Quick test_tab3_u;
    Alcotest.test_case "Fig 14: corner regions" `Quick test_fig14_corner_regions;
    Alcotest.test_case "Case 2: copyin directive" `Quick test_case2_directive;
    Alcotest.test_case "Table IV: speedup shape" `Quick test_tab4_shape;
    Alcotest.test_case "no recursion" `Quick test_no_recursion;
    Alcotest.test_case "class parametrization" `Quick test_class_parametrization;
    Alcotest.test_case "Dragon loads written outputs" `Quick test_outputs_loadable_by_dragon;
  ]
