(* The additional HPC workloads: analysis sanity, parallelism verdicts,
   interpretation, and advisor output on each. *)

let analyze files = Engine.analyze_sources files

let first_loop pu =
  let loop = ref None in
  Whirl.Wn.preorder
    (fun w ->
      if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP && !loop = None then
        loop := Some w)
    pu.Whirl.Ir.pu_body;
  Option.get !loop

let test_jacobi_analysis () =
  let r = analyze [ Corpus.Apps.jacobi2d ] in
  let m = r.Ipa.Analyze.r_module in
  (* sweep reads grid's interior neighborhood and writes next's interior *)
  let sweep = Ipa.Analyze.summary_of r "sweep" in
  let globals_touched =
    List.filter_map
      (fun (e : Ipa.Summary.entry) ->
        match e.Ipa.Summary.e_key with
        | Ipa.Summary.Kglobal g ->
          let pu = Option.get (Whirl.Ir.find_pu m "sweep") in
          Some (Whirl.Ir.st_name m pu g, e.Ipa.Summary.e_mode)
        | _ -> None)
      sweep
  in
  Alcotest.(check bool) "sweep uses grid" true
    (List.mem ("grid", Regions.Mode.USE) globals_touched);
  Alcotest.(check bool) "sweep defines next" true
    (List.mem ("next", Regions.Mode.DEF) globals_touched);
  Alcotest.(check bool) "sweep never writes grid" false
    (List.mem ("grid", Regions.Mode.DEF) globals_touched)

let test_jacobi_sweep_parallel () =
  (* the classic Jacobi property: the sweep loop is parallel because reads
     (grid) and writes (next) target different arrays *)
  let r = analyze [ Corpus.Apps.jacobi2d ] in
  let m = r.Ipa.Analyze.r_module in
  let sweep = Option.get (Whirl.Ir.find_pu m "sweep") in
  let v =
    Ipa.Parallel.loop_parallel m r.Ipa.Analyze.r_summaries sweep
      (first_loop sweep)
  in
  Alcotest.(check bool) "jacobi sweep parallel" true v.Ipa.Parallel.lv_parallel

let test_jacobi_runs () =
  let r = analyze [ Corpus.Apps.jacobi2d ] in
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check bool) "produced output" true
    (String.length o.Interp.out_text > 0)

let test_matmul_analysis () =
  let r = analyze [ Corpus.Apps.matmul ] in
  (* dgemm: formal#2 (c) is DEF+USE, formals a and b are USE only *)
  let s = Ipa.Analyze.summary_of r "dgemm" in
  let modes_of p =
    List.filter_map
      (fun (e : Ipa.Summary.entry) ->
        if e.Ipa.Summary.e_key = Ipa.Summary.Kformal p then
          Some e.Ipa.Summary.e_mode
        else None)
      s
  in
  Alcotest.(check bool) "a read only" true
    (List.for_all (Regions.Mode.equal Regions.Mode.USE) (modes_of 0));
  Alcotest.(check bool) "b read only" true
    (List.for_all (Regions.Mode.equal Regions.Mode.USE) (modes_of 1));
  Alcotest.(check bool) "c written" true
    (List.exists (Regions.Mode.equal Regions.Mode.DEF) (modes_of 2))

let test_matmul_loop_verdicts () =
  let r = analyze [ Corpus.Apps.matmul ] in
  let m = r.Ipa.Analyze.r_module in
  let dgemm = Option.get (Whirl.Ir.find_pu m "dgemm") in
  (* the j loop writes disjoint columns of c: parallel *)
  let v =
    Ipa.Parallel.loop_parallel m r.Ipa.Analyze.r_summaries dgemm
      (first_loop dgemm)
  in
  Alcotest.(check bool) "outer j loop parallel" true v.Ipa.Parallel.lv_parallel;
  (* the k loop accumulates into the same c elements: not parallel *)
  let loops = ref [] in
  Whirl.Wn.preorder
    (fun w ->
      if w.Whirl.Wn.operator = Whirl.Wn.OPR_DO_LOOP then loops := w :: !loops)
    dgemm.Whirl.Ir.pu_body;
  let k_loop = List.nth (List.rev !loops) 1 in
  let vk =
    Ipa.Parallel.loop_parallel m r.Ipa.Analyze.r_summaries dgemm k_loop
  in
  Alcotest.(check bool) "k loop not parallel" false vk.Ipa.Parallel.lv_parallel

let test_matmul_runs () =
  let r = analyze [ Corpus.Apps.matmul ] in
  let o = Interp.run r.Ipa.Analyze.r_module in
  Alcotest.(check bool) "produced output" true
    (String.length o.Interp.out_text > 0)

let test_heat3d_analysis () =
  let r = analyze [ Corpus.Apps.heat3d ] in
  let rows =
    List.filter
      (fun (row : Rgnfile.Row.t) ->
        row.Rgnfile.Row.array = "t0" && row.Rgnfile.Row.mode = "USE"
        && row.Rgnfile.Row.file = "heat3d.o")
      r.Ipa.Analyze.r_rows
  in
  (* the 7-point stencil references t0 seven times plus the center *)
  Alcotest.(check bool) "stencil uses recorded" true (List.length rows >= 7);
  (* the shifted neighbors give interior regions like 1:8 / 2:9 / 3:10 *)
  let ubs =
    List.map (fun (row : Rgnfile.Row.t) -> row.Rgnfile.Row.ub) rows
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "shifted regions present" true (List.length ubs >= 3)

let test_heat3d_dynamic_within_static () =
  let r = analyze [ Corpus.Apps.heat3d ] in
  let m = r.Ipa.Analyze.r_module in
  let static =
    List.concat_map
      (fun (_, (info : Ipa.Collect.pu_info)) ->
        List.filter_map
          (fun (a : Ipa.Collect.access) ->
            match a.Ipa.Collect.ac_mode with
            | Regions.Mode.USE | Regions.Mode.DEF ->
              Some
                ( Whirl.Ir.st_name m info.Ipa.Collect.p_pu a.Ipa.Collect.ac_st,
                  a.Ipa.Collect.ac_region )
            | _ -> None)
          info.Ipa.Collect.p_accesses)
      r.Ipa.Analyze.r_infos
  in
  let bad = ref 0 in
  let _ =
    Interp.run
      ~observer:(fun ev ->
        let covered =
          List.exists
            (fun (name, region) ->
              name = ev.Interp.ev_array
              && Regions.Region.contains_point region ev.Interp.ev_coords)
            static
        in
        if not covered then incr bad)
      m
  in
  Alcotest.(check int) "all dynamic accesses covered" 0 !bad

let test_apps_advisor () =
  List.iter
    (fun (_, files) ->
      let r = analyze files in
      let p =
        Dragon.Project.make ~name:"app" ~dgn:r.Ipa.Analyze.r_dgn
          ~rows:r.Ipa.Analyze.r_rows ~sources:files ()
      in
      let out = Dragon.Advisor.render p in
      Alcotest.(check bool) "advisor renders" true (String.length out > 0))
    Corpus.Apps.all

let suite =
  [
    Alcotest.test_case "jacobi: summaries" `Quick test_jacobi_analysis;
    Alcotest.test_case "jacobi: sweep parallel" `Quick test_jacobi_sweep_parallel;
    Alcotest.test_case "jacobi: runs" `Quick test_jacobi_runs;
    Alcotest.test_case "matmul: summaries" `Quick test_matmul_analysis;
    Alcotest.test_case "matmul: loop verdicts" `Quick test_matmul_loop_verdicts;
    Alcotest.test_case "matmul: runs" `Quick test_matmul_runs;
    Alcotest.test_case "heat3d: stencil rows" `Quick test_heat3d_analysis;
    Alcotest.test_case "heat3d: dynamic within static" `Quick
      test_heat3d_dynamic_within_static;
    Alcotest.test_case "advisor on all apps" `Quick test_apps_advisor;
  ]
