(* The run ledger end to end: a cached Pipeline.run appends a record that
   parses and carries the cache/verdict/per-PU sections; turning the
   ledger on or off changes no output byte at any --jobs setting; the
   regress gate's pass/breach logic (including the same-config baseline
   filter); and explain pinning a re-analysis on the edited callee via
   the recorded Merkle keys. *)

let temp_dir () =
  let d = Filename.temp_file "ledger" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let metric run path = Dragon.Ledgerview.metric run.Dragon.Ledgerview.record path

let check_metric name run path expected =
  match metric run path with
  | Some v -> Alcotest.(check (float 0.)) name expected v
  | None -> Alcotest.failf "%s: metric %s missing" name path

(* ------------------------------------------------------------------ *)
(* A cached run writes one parseable record with the advertised shape *)

let test_record_written () =
  let cache = temp_dir () in
  let run () =
    (Pipeline.run
       (Pipeline.make ~corpus:"matrix" ~cache_dir:cache ~analyses:[ "bounds" ]
          ()))
      .Pipeline.r_code
  in
  Alcotest.(check int) "first run exits 0" 0 (run ());
  Alcotest.(check int) "second run exits 0" 0 (run ());
  match Dragon.Ledgerview.load ~cache_dir:cache with
  | Error e -> Alcotest.fail e
  | Ok runs -> (
    match runs with
    | [ r1; r2 ] ->
      Alcotest.(check bool)
        "run ids ascend" true
        (r1.Dragon.Ledgerview.run_id < r2.Dragon.Ledgerview.run_id);
      List.iter
        (fun r ->
          check_metric "schema_version" r "schema_version"
            (float_of_int Obs.Ledger.schema_version);
          check_metric "exit code recorded" r "exit_code" 0.;
          check_metric "no diagnostics" r "diagnostics" 0.;
          check_metric "bounds verdicts recorded" r "verdicts.bounds.safe" 8.)
        [ r1; r2 ];
      (* cold cache, then all hits: the incrementality story in numbers *)
      check_metric "first run misses" r1 "cache.summary_misses" 2.;
      check_metric "first run no hits" r1 "cache.summary_hits" 0.;
      check_metric "second run hits" r2 "cache.summary_hits" 2.;
      check_metric "second run no misses" r2 "cache.summary_misses" 0.;
      (* identical inputs: identical config digests and content keys *)
      let digest r =
        Option.bind
          (Obs.Json.member "config_digest" r.Dragon.Ledgerview.record)
          Obs.Json.to_string
      in
      Alcotest.(check bool) "config digests equal" true (digest r1 = digest r2);
      let keys r =
        List.map
          (fun p ->
            Dragon.Ledgerview.
              (p.pu_name, p.pu_key1, p.pu_key2, p.pu_callees))
          (Dragon.Ledgerview.pus_of r)
      in
      Alcotest.(check bool) "two PU entries" true (List.length (keys r1) = 2);
      Alcotest.(check bool) "stable content keys" true (keys r1 = keys r2)
    | l -> Alcotest.failf "expected 2 ledger records, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* The ledger changes no output byte, at any --jobs setting *)

let project_files dir =
  List.map
    (fun ext -> read_file (Filename.concat dir ("project" ^ ext)))
    [ ".rgn"; ".dgn"; ".cfg" ]

let test_outputs_unchanged () =
  List.iter
    (fun corpus ->
      List.iter
        (fun jobs ->
          let run ?cache_dir ?ledger () =
            let out = temp_dir () in
            let code =
              (Pipeline.run
                 (Pipeline.make ~corpus ~out_dir:out ~jobs ?cache_dir ?ledger
                    ()))
                .Pipeline.r_code
            in
            Alcotest.(check int) (corpus ^ " exits 0") 0 code;
            project_files out
          in
          let plain = run () in
          let ledgered = run ~cache_dir:(temp_dir ()) () in
          let disabled = run ~cache_dir:(temp_dir ()) ~ledger:false () in
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs %d: ledger on is byte-identical" corpus
               jobs)
            true (plain = ledgered);
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs %d: ledger off is byte-identical" corpus
               jobs)
            true (plain = disabled))
        [ 1; 4 ])
    [ "lu"; "matrix"; "fig1"; "stride" ]

(* ------------------------------------------------------------------ *)
(* The regress gate over synthetic records *)

let mk_run id fields =
  let raw = Printf.sprintf "{\"run_id\":\"%s\",%s}" id fields in
  match Obs.Json.parse raw with
  | Ok record -> { Dragon.Ledgerview.run_id = id; record }
  | Error e -> Alcotest.failf "bad synthetic record %s: %s" id e

let fields ~cfg ~queries =
  Printf.sprintf
    "\"config_digest\":\"%s\",\"verdicts\":{\"bounds\":{\"unsafe\":0,\"maybe\":0}},\"diagnostics\":0,\"solver\":{\"queries\":%d}"
    cfg queries

let regress ?baseline ~rules runs =
  match Dragon.Ledgerview.regress ?baseline ~rules runs with
  | Ok (report, breached) -> (report, breached)
  | Error e -> Alcotest.fail e

let test_regress_gate () =
  let r1 = mk_run "a" (fields ~cfg:"X" ~queries:50) in
  let r2 = mk_run "b" (fields ~cfg:"X" ~queries:50) in
  (* identical rerun, deterministic default rules: always passes *)
  let report, breached = regress ~rules:[] [ r1; r2 ] in
  Alcotest.(check bool) "identical rerun passes" false breached;
  Alcotest.(check bool) "report says OK" true (contains report "regress: OK");
  (* an injected breach: a negative threshold demands a decrease, so the
     identical rerun violates it (the verify.sh CI trick) *)
  let rule =
    match Dragon.Ledgerview.parse_rule "solver.queries=-50" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let report, breached = regress ~rules:[ rule ] [ r1; r2 ] in
  Alcotest.(check bool) "injected breach flags" true breached;
  Alcotest.(check bool)
    "report says REGRESSION" true
    (contains report "regress: REGRESSION");
  (* growth above an absolute-zero threshold breaches, growth within a
     generous percentage does not *)
  let grow = mk_run "c" (fields ~cfg:"X" ~queries:60) in
  let zero = { Dragon.Ledgerview.r_path = "solver.queries"; r_pct = 0. } in
  let loose = { Dragon.Ledgerview.r_path = "solver.queries"; r_pct = 50. } in
  Alcotest.(check bool)
    "growth breaches pct 0" true
    (snd (regress ~rules:[ zero ] [ r1; grow ]));
  Alcotest.(check bool)
    "growth within pct 50 passes" false
    (snd (regress ~rules:[ loose ] [ r1; grow ]));
  (* the baseline pool filters to the candidate's config digest: the
     same-config predecessor (50) gates, not the alien one (10) *)
  let alien = mk_run "b2" (fields ~cfg:"Y" ~queries:10) in
  Alcotest.(check bool)
    "same-config baseline chosen" false
    (snd (regress ~rules:[ zero ] [ r1; alien; r2 ]));
  (* malformed thresholds are rejected *)
  List.iter
    (fun s ->
      match Dragon.Ledgerview.parse_rule s with
      | Ok _ -> Alcotest.failf "threshold %S accepted" s
      | Error _ -> ())
    [ "no-equals"; "=5"; "path=" ]

(* ------------------------------------------------------------------ *)
(* explain: editing one callee names that callee, via the Merkle keys *)

let caller_f =
  "      program driver\n\
  \      integer a(1:100)\n\
  \      call work(a)\n\
  \      end\n"

let callee_f n =
  Printf.sprintf
    "      subroutine work(a)\n\
    \      integer a(1:100)\n\
    \      integer i\n\
    \      do i = 1, %d\n\
    \        a(i) = i\n\
    \      end do\n\
    \      end subroutine\n"
    n

let test_explain_names_callee () =
  let src = temp_dir () and cache = temp_dir () in
  let main_path = Filename.concat src "driver.f" in
  let work_path = Filename.concat src "work.f" in
  write_file main_path caller_f;
  write_file work_path (callee_f 50);
  let run () =
    (Pipeline.run
       (Pipeline.make ~paths:[ main_path; work_path ] ~cache_dir:cache ()))
      .Pipeline.r_code
  in
  Alcotest.(check int) "cold run exits 0" 0 (run ());
  Alcotest.(check int) "warm run exits 0" 0 (run ());
  write_file work_path (callee_f 60);
  Alcotest.(check int) "edited run exits 0" 0 (run ());
  match Dragon.Ledgerview.load ~cache_dir:cache with
  | Error e -> Alcotest.fail e
  | Ok runs ->
    (* the caller's own body is untouched: key1 stable, key2 moved, and
       the culprit callee is named with its key2 transition *)
    (match Dragon.Ledgerview.explain ~target:"driver" runs with
    | Error e -> Alcotest.fail e
    | Ok s ->
      Alcotest.(check bool)
        "caller blames a callee" true
        (contains s "a callee changed");
      Alcotest.(check bool)
        "the edited callee is named" true
        (contains s "changed callee: work"));
    (* the callee itself: its own content changed *)
    (match Dragon.Ledgerview.explain ~target:"work.f" runs with
    | Error e -> Alcotest.fail e
    | Ok s ->
      Alcotest.(check bool)
        "callee blames its own edit" true
        (contains s "its own content changed"));
    (* an unknown target errors and lists what is recorded *)
    match Dragon.Ledgerview.explain ~target:"nosuch" runs with
    | Ok _ -> Alcotest.fail "unknown target accepted"
    | Error e -> Alcotest.(check bool) "error lists PUs" true (contains e "driver")

let suite =
  [
    Alcotest.test_case "record written and parses" `Quick test_record_written;
    Alcotest.test_case "outputs unchanged by ledger" `Slow
      test_outputs_unchanged;
    Alcotest.test_case "regress gate logic" `Quick test_regress_gate;
    Alcotest.test_case "explain names the edited callee" `Quick
      test_explain_names_callee;
  ]
