(* Index-array sparse subscripts: the property lattice drives the bounds
   verdict (bounded boxes the region, injective+bounded over a covering
   loop is exact, monotonic alone stays a clamped maybe with a named
   inspector entry), the assumed-property bits survive the .ipl and .rgn
   round trips (unknown tokens degrade to conservative MESSY), and the
   refined regions are differentially checked against the interpreter —
   including a deliberately false declaration the harness must catch. *)

open QCheck2

let ctx_of (result : Ipa.Analyze.result) =
  {
    Analyses.Analysis.ctx_module = result.Ipa.Analyze.r_module;
    Analyses.Analysis.ctx_result = result;
  }

let summary_of (r : Analyses.Report.t) key =
  match List.assoc_opt key r.Analyses.Report.r_summary with
  | Some v -> v
  | None -> Alcotest.failf "summary key %s missing" key

let summary_int r key = int_of_string (summary_of r key)

(* bounds columns: Proc Array Mode Line Via Verdict LB UB Stride Inspector *)
let col_array row = List.nth row 1
let col_verdict row = List.nth row 5
let col_inspector row = List.nth row 9

(* one sparse USE+DEF of [a] through [idx], with a configurable directive
   and a configurable fill *)
let sparse_src ?(fill = "i") props =
  Printf.sprintf
    "      program sp\n\
    \      real a(1:10)\n\
    \      integer idx(1:10)\n\
    \      integer i\n\
     %s\
    \      do i = 1, 10\n\
    \        a(i) = 0.0\n\
    \      end do\n\
    \      do i = 1, 10\n\
    \        idx(i) = %s\n\
    \      end do\n\
    \      do i = 1, 10\n\
    \        a(idx(i)) = a(idx(i)) + 1.0\n\
    \      end do\n\
    \      print *, a(1)\n\
    \      end\n"
    (match props with
    | "" -> ""
    | p -> Printf.sprintf "!$uhc index idx %s\n" p)
    fill

let bounds_of src =
  let result = Engine.analyze_sources [ ("sp.f", src) ] in
  (result, fst (Analyses.Bounds.run (ctx_of result)))

(* the rows of the [a(idx(i))] statement, located by its source line *)
let sparse_rows src report =
  let line =
    let rec go n = function
      | [] -> Alcotest.fail "no sparse access in source"
      | l :: tl ->
        let has =
          let rec contains i =
            i + 9 <= String.length l
            && (String.sub l i 9 = "a(idx(i))" || contains (i + 1))
          in
          contains 0
        in
        if has then n else go (n + 1) tl
    in
    go 1 (String.split_on_char '\n' src)
  in
  List.filter
    (fun row -> col_array row = "a" && List.nth row 3 = string_of_int line)
    report.Analyses.Report.r_rows

(* every point of the property lattice: do the declared properties refine
   the MESSY subscript into something the bounds client can prove? *)
let test_lattice_verdicts () =
  let expect props ~verdict ~proven =
    let src = sparse_src props in
    let _, r = bounds_of src in
    let rows = sparse_rows src r in
    Alcotest.(check int) (props ^ ": sparse USE+DEF rows") 2 (List.length rows);
    List.iter
      (fun row ->
        Alcotest.(check string) (props ^ ": verdict") verdict (col_verdict row))
      rows;
    Alcotest.(check int) (props ^ ": sparse_proven") proven
      (summary_int r "sparse_proven");
    Alcotest.(check int) (props ^ ": unsafe") 0 (summary_int r "unsafe")
  in
  expect "" ~verdict:"maybe" ~proven:0;
  expect "monotonic" ~verdict:"maybe" ~proven:0;
  expect "injective" ~verdict:"maybe" ~proven:0;
  expect "bounded(1,10)" ~verdict:"safe" ~proven:2;
  expect "monotonic bounded(1,10)" ~verdict:"safe" ~proven:2;
  expect "injective bounded(1,10)" ~verdict:"safe" ~proven:2;
  expect "monotonic injective bounded(1,10)" ~verdict:"safe" ~proven:2

(* undecidable sparse accesses keep the index array's name in the
   inspector column — the runtime checker knows what to instrument *)
let test_inspector_naming () =
  let src = sparse_src "" in
  let _, r = bounds_of src in
  List.iter
    (fun row ->
      Alcotest.(check string) "undeclared names the index array" "idx"
        (col_inspector row))
    (sparse_rows src r);
  let src = sparse_src "bounded(1,10)" in
  let _, r = bounds_of src in
  List.iter
    (fun row ->
      Alcotest.(check string) "proven access has no inspector entry" "-"
        (col_inspector row))
    (sparse_rows src r)

(* injective + bounded over a loop covering the whole box: pigeonhole
   exactness — the region is exact, not just a safe over-approximation *)
let test_pigeonhole_exactness () =
  let exactness props =
    let result, _ = bounds_of (sparse_src props) in
    let sparse_regions =
      List.concat_map
        (fun (t : Ipa.Analyze.proc_table) ->
          List.filter_map
            (fun (a : Ipa.Collect.access) ->
              match a.Ipa.Collect.ac_mode with
              | Regions.Mode.USE | Regions.Mode.DEF
                when a.Ipa.Collect.ac_sparse <> None ->
                Some a.Ipa.Collect.ac_region
              | _ -> None)
            t.Ipa.Analyze.t_accesses)
        result.Ipa.Analyze.r_tables
    in
    Alcotest.(check bool) (props ^ ": found sparse regions") true
      (sparse_regions <> []);
    List.for_all Regions.Region.is_exact sparse_regions
  in
  Alcotest.(check bool) "injective+bounded covering loop is exact" true
    (exactness "injective bounded(1,10)");
  Alcotest.(check bool) "bounded alone is approximate" false
    (exactness "bounded(1,10)")

(* ------------------------------------------------------------------ *)
(* Round trips: the assumed-property provenance survives .ipl and .rgn *)

(* summaries only describe formals and globals, so the sparse access must
   sit in a callee for the .ipl file to carry its region *)
let callee_src =
  "      program sp\n\
  \      real a(1:10)\n\
  \      integer i\n\
  \      do i = 1, 10\n\
  \        a(i) = 0.0\n\
  \      end do\n\
  \      call work(a)\n\
  \      print *, a(1)\n\
  \      end\n\
  \      subroutine work(b)\n\
  \      real b(1:10)\n\
  \      integer idx(1:10)\n\
  \      integer i\n\
   !$uhc index idx bounded(1,10)\n\
  \      do i = 1, 10\n\
  \        idx(i) = i\n\
  \      end do\n\
  \      do i = 1, 10\n\
  \        b(idx(i)) = b(idx(i)) + 1.0\n\
  \      end do\n\
  \      end\n"

let test_ipl_roundtrip_props () =
  let result = Engine.analyze_sources [ ("sp.f", callee_src) ] in
  let m = result.Ipa.Analyze.r_module in
  let text = Ipa.Iplfile.write_unit m result.Ipa.Analyze.r_summaries in
  Alcotest.(check bool) "props serialized" true
    (List.exists
       (fun line -> String.length line > 2 && String.ends_with ~suffix:"; b" line)
       (String.split_on_char '\n' text));
  (match Ipa.Iplfile.parse_unit m text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok summaries ->
    let assumed =
      List.exists
        (fun (_, entries) ->
          List.exists
            (fun (e : Ipa.Summary.entry) ->
              Regions.Region.is_assumed e.Ipa.Summary.e_region)
            entries)
        summaries
    in
    Alcotest.(check bool) "assumed flag survives reload" true assumed);
  (* an unknown property token parses as conservative MESSY: clamped, no
     assumed flags — mirroring the clamped-bit handling of PR 6 *)
  let degraded =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.ends_with ~suffix:"; b" line then
             String.sub line 0 (String.length line - 1) ^ "q"
           else line)
         (String.split_on_char '\n' text))
  in
  match Ipa.Iplfile.parse_unit m degraded with
  | Error e -> Alcotest.failf "degraded parse failed: %s" e
  | Ok summaries ->
    List.iter
      (fun (_, entries) ->
        List.iter
          (fun (e : Ipa.Summary.entry) ->
            Alcotest.(check bool) "unknown props: no assumed flags" false
              (Regions.Region.is_assumed e.Ipa.Summary.e_region))
          entries)
      summaries

let test_rgn_row_props () =
  let row =
    {
      Rgnfile.Row.scope = "p";
      array = "a";
      file = "sp.o";
      mode = "DEF";
      references = 1;
      dimensions = 1;
      lb = "1";
      ub = "10";
      stride = "1";
      element_size = 4;
      data_type = "real";
      dim_size = "10";
      tot_size = 10;
      size_bytes = 40;
      mem_loc = "0x0";
      acc_density = 2;
      line = 3;
      props = "b";
    }
  in
  (* full round trip keeps the props column *)
  (match Rgnfile.Row.of_fields (Rgnfile.Row.to_fields row) with
  | Ok r -> Alcotest.(check string) "props round trip" "b" r.Rgnfile.Row.props
  | Error e -> Alcotest.failf "of_fields: %s" e);
  (* a legacy 17-field row (pre-props) still parses, conservatively *)
  (match
     Rgnfile.Row.of_fields
       (List.filteri (fun i _ -> i < 17) (Rgnfile.Row.to_fields row))
   with
  | Ok r -> Alcotest.(check string) "legacy row: no props" "-" r.Rgnfile.Row.props
  | Error e -> Alcotest.failf "legacy of_fields: %s" e);
  (* an unknown props token degrades the row's bounds to unknown: nothing
     downstream may treat the stale triplet as provable *)
  match
    Rgnfile.Row.of_fields
      (List.mapi
         (fun i f -> if i = 17 then "z" else f)
         (Rgnfile.Row.to_fields row))
  with
  | Ok r ->
    Alcotest.(check string) "unknown props: lb degraded" "*" r.Rgnfile.Row.lb;
    Alcotest.(check string) "unknown props: ub degraded" "*" r.Rgnfile.Row.ub;
    Alcotest.(check string) "unknown props: props cleared" "-"
      r.Rgnfile.Row.props
  | Error e -> Alcotest.failf "unknown props of_fields: %s" e

(* ------------------------------------------------------------------ *)
(* Differential: the harness accepts truthful declarations and catches a
   false one *)

let diffcheck_of src =
  let result = Engine.analyze_sources [ ("sp.f", src) ] in
  fst (Analyses.Diffcheck.run (ctx_of result))

let test_false_declaration_caught () =
  (* idx really reaches 15, but the directive swears bounded(1,10): the
     analysis proves the access safe, the runtime faults, and diffcheck
     must report the contradiction *)
  let r = diffcheck_of (sparse_src ~fill:"i + 5" "bounded(1,10)") in
  Alcotest.(check string) "ok is false" "false" (summary_of r "ok");
  Alcotest.(check bool) "safe faults reported" true
    (summary_int r "safe_faults" > 0);
  (* the truthful variant passes clean *)
  let r = diffcheck_of (sparse_src "bounded(1,10)") in
  Alcotest.(check string) "truthful ok" "true" (summary_of r "ok");
  Alcotest.(check int) "no faults" 0 (summary_int r "oob_events");
  (* monotonic-only with a real OOB: not provable, so no safe fault, and
     the inspector-flagged access covers the observed faults *)
  let r = diffcheck_of (sparse_src ~fill:"i + 2" "monotonic") in
  Alcotest.(check string) "inspector covers faults" "true" (summary_of r "ok");
  Alcotest.(check bool) "faults observed" true (summary_int r "oob_events" > 0);
  Alcotest.(check int) "all covered" 0 (summary_int r "uncovered")

(* QCheck: random index-array contents, truthful declarations only when
   the values honor them; analysis verdicts must never contradict the
   interpreter, and declared bounds must pay off as proven accesses *)
let gen_case =
  Gen.(
    let* ext = int_range 4 10 in
    let* vals = list_size (return ext) (int_range (-1) (ext + 2)) in
    return (ext, vals))

let print_case (ext, vals) =
  Printf.sprintf "ext=%d vals=[%s]" ext
    (String.concat ";" (List.map string_of_int vals))

let src_of_case (ext, vals) =
  let in_bounds = List.for_all (fun v -> v >= 1 && v <= ext) vals in
  let rec sorted = function
    | a :: (b :: _ as tl) -> a <= b && sorted tl
    | _ -> true
  in
  let distinct = List.length (List.sort_uniq compare vals) = List.length vals in
  let props =
    if not in_bounds then ""
    else
      String.concat " "
        (List.concat
           [
             (if sorted vals then [ "monotonic" ] else []);
             (if distinct then [ "injective" ] else []);
             [ Printf.sprintf "bounded(1,%d)" ext ];
           ])
  in
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "      program fz\n";
  bpf "      integer a(1:%d), idx(1:%d)\n" ext ext;
  bpf "      integer i, s\n";
  if props <> "" then bpf "!$uhc index idx %s\n" props;
  bpf "      s = 0\n";
  bpf "      do i = 1, %d\n" ext;
  bpf "        a(i) = i\n";
  bpf "      end do\n";
  List.iteri (fun i v -> bpf "      idx(%d) = %d\n" (i + 1) v) vals;
  bpf "      do i = 1, %d\n" ext;
  bpf "        s = s + a(idx(i))\n";
  bpf "      end do\n";
  bpf "      print *, s\n";
  bpf "      end\n";
  (in_bounds, props, Buffer.contents buf)

let prop_sparse_differential =
  Test.make ~name:"sparse refinement vs interpreter (OOB-capable fuzz)"
    ~count:80 gen_case ~print:print_case (fun case ->
      let in_bounds, props, src = src_of_case case in
      let result = Engine.analyze_sources [ ("fz.f", src) ] in
      let ctx = ctx_of result in
      let bounds = fst (Analyses.Bounds.run ctx) in
      let diff = fst (Analyses.Diffcheck.run ctx) in
      if summary_of diff "ok" <> "true" then
        QCheck2.Test.fail_report "differential harness failed";
      if int_of_string (summary_of diff "safe_faults") <> 0 then
        QCheck2.Test.fail_report "proven-safe access faulted";
      (* truthful bounds must promote the sparse access to proven *)
      if props <> "" && int_of_string (summary_of bounds "sparse_proven") < 1
      then QCheck2.Test.fail_report "declared bounds did not pay off";
      (* out-of-range contents must actually fault, and stay covered *)
      if not in_bounds then begin
        if int_of_string (summary_of diff "oob_events") = 0 then
          QCheck2.Test.fail_report "expected runtime faults";
        if int_of_string (summary_of diff "uncovered") <> 0 then
          QCheck2.Test.fail_report "fault not covered by an inspector row"
      end;
      true)

let suite =
  [
    Alcotest.test_case "property lattice drives verdicts" `Quick
      test_lattice_verdicts;
    Alcotest.test_case "inspector names the index array" `Quick
      test_inspector_naming;
    Alcotest.test_case "pigeonhole exactness" `Quick test_pigeonhole_exactness;
    Alcotest.test_case "ipl round trip keeps props" `Quick
      test_ipl_roundtrip_props;
    Alcotest.test_case "rgn rows keep props, degrade unknowns" `Quick
      test_rgn_row_props;
    Alcotest.test_case "false declaration caught, true ones pass" `Quick
      test_false_declaration_caught;
    QCheck_alcotest.to_alcotest prop_sparse_differential;
  ]
