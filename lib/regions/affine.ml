open Numeric
open Whirl

type env = {
  var_of_st : int -> Linear.Var.t option;
  const_of_st : int -> int option;
}

type result = Affine of Linear.Expr.t | Messy

let rec of_wn env (w : Wn.t) : result =
  match w.Wn.operator with
  | Wn.OPR_INTCONST -> Affine (Linear.Expr.of_int w.Wn.const_val)
  | Wn.OPR_LDID -> (
    match env.const_of_st w.Wn.st_idx with
    | Some v -> Affine (Linear.Expr.of_int v)
    | None -> (
      match env.var_of_st w.Wn.st_idx with
      | Some v -> Affine (Linear.Expr.var v)
      | None -> Messy))
  | Wn.OPR_NEG -> (
    match of_wn env (Wn.kid w 0) with
    | Affine e -> Affine (Linear.Expr.neg e)
    | Messy -> Messy)
  | Wn.OPR_ADD -> combine env w Linear.Expr.add
  | Wn.OPR_SUB -> combine env w Linear.Expr.sub
  | Wn.OPR_MPY -> (
    match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
    | Affine a, Affine b ->
      if Linear.Expr.is_const a then
        Affine (Linear.Expr.scale (Linear.Expr.constant a) b)
      else if Linear.Expr.is_const b then
        Affine (Linear.Expr.scale (Linear.Expr.constant b) a)
      else Messy
    | _, _ -> Messy)
  | Wn.OPR_DIV -> (
    (* exact constant division only *)
    match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
    | Affine a, Affine b when Linear.Expr.is_const a && Linear.Expr.is_const b
      ->
      let d = Linear.Expr.constant b in
      if Rat.equal d Rat.zero then Messy
      else Affine (Linear.Expr.const (Rat.div (Linear.Expr.constant a) d))
    | _, _ -> Messy)
  | _ -> Messy

and combine env w f =
  match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
  | Affine a, Affine b -> Affine (f a b)
  | _, _ -> Messy

let pp_result ppf = function
  | Affine e -> Linear.Expr.pp ppf e
  | Messy -> Format.pp_print_string ppf "MESSY"
