open Numeric
open Whirl

type sparse = {
  sp_st : int;
  sp_lo : int option;
  sp_hi : int option;
  sp_monotonic : bool;
  sp_injective : bool;
  sp_inner : Linear.Expr.t option;
}

type env = {
  var_of_st : int -> Linear.Var.t option;
  const_of_st : int -> int option;
  iprop_of_st : int -> Lang.Iprop.t;
}

type result = Affine of Linear.Expr.t | Sparse of sparse | Messy

let int_const_of = function
  | Affine e when Linear.Expr.is_const e ->
    let c = Linear.Expr.constant e in
    if Rat.is_integer c then Some (Rat.to_int c) else None
  | _ -> None

let shift_sparse s c =
  {
    s with
    sp_lo = Option.map (fun l -> l + c) s.sp_lo;
    sp_hi = Option.map (fun h -> h + c) s.sp_hi;
  }

(* c - s / -s: value bounds flip; monotone direction flips but the flag
   only records "monotone in the loop index", which negation preserves *)
let negate_sparse s =
  {
    s with
    sp_lo = Option.map (fun h -> -h) s.sp_hi;
    sp_hi = Option.map (fun l -> -l) s.sp_lo;
  }

let rec of_wn env (w : Wn.t) : result =
  match w.Wn.operator with
  | Wn.OPR_INTCONST -> Affine (Linear.Expr.of_int w.Wn.const_val)
  | Wn.OPR_LDID -> (
    match env.const_of_st w.Wn.st_idx with
    | Some v -> Affine (Linear.Expr.of_int v)
    | None -> (
      match env.var_of_st w.Wn.st_idx with
      | Some v -> Affine (Linear.Expr.var v)
      | None -> Messy))
  | Wn.OPR_NEG -> (
    match of_wn env (Wn.kid w 0) with
    | Affine e -> Affine (Linear.Expr.neg e)
    | Sparse s -> Sparse (negate_sparse s)
    | Messy -> Messy)
  | Wn.OPR_ADD -> (
    match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
    | Affine a, Affine b -> Affine (Linear.Expr.add a b)
    | (Sparse s, (Affine _ as other)) | ((Affine _ as other), Sparse s) -> (
      match int_const_of other with
      | Some c -> Sparse (shift_sparse s c)
      | None -> Messy)
    | _, _ -> Messy)
  | Wn.OPR_SUB -> (
    match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
    | Affine a, Affine b -> Affine (Linear.Expr.sub a b)
    | Sparse s, (Affine _ as other) -> (
      match int_const_of other with
      | Some c -> Sparse (shift_sparse s (-c))
      | None -> Messy)
    | (Affine _ as other), Sparse s -> (
      match int_const_of other with
      | Some c -> Sparse (shift_sparse (negate_sparse s) c)
      | None -> Messy)
    | _, _ -> Messy)
  | Wn.OPR_MPY -> (
    match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
    | Affine a, Affine b ->
      if Linear.Expr.is_const a then
        Affine (Linear.Expr.scale (Linear.Expr.constant a) b)
      else if Linear.Expr.is_const b then
        Affine (Linear.Expr.scale (Linear.Expr.constant b) a)
      else Messy
    | _, _ -> Messy)
  | Wn.OPR_DIV -> (
    (* exact constant division only *)
    match of_wn env (Wn.kid w 0), of_wn env (Wn.kid w 1) with
    | Affine a, Affine b when Linear.Expr.is_const a && Linear.Expr.is_const b
      ->
      let d = Linear.Expr.constant b in
      if Rat.equal d Rat.zero then Messy
      else Affine (Linear.Expr.const (Rat.div (Linear.Expr.constant a) d))
    | _, _ -> Messy)
  | Wn.OPR_ILOAD -> (
    (* a subscript loaded through an index array: usable when the array is
       1-D, carries declared properties, and is itself indexed linearly *)
    let addr = Wn.kid w 0 in
    if addr.Wn.operator <> Wn.OPR_ARRAY || Wn.num_dim addr <> 1 then Messy
    else
      let base = Wn.array_base addr in
      if base.Wn.operator <> Wn.OPR_LDA then Messy
      else
        (* even a property-less index array yields Sparse rather than
           Messy: the region still degrades to the clamp path, but the
           access keeps the array's name for runtime-inspector entries *)
        let ip = env.iprop_of_st base.Wn.st_idx in
        let inner =
          match of_wn env (Wn.array_index addr 0) with
          | Affine e -> Some e
          | Sparse _ | Messy -> None
        in
        Sparse
          {
            sp_st = base.Wn.st_idx;
            sp_lo = ip.Lang.Iprop.ip_lo;
            sp_hi = ip.Lang.Iprop.ip_hi;
            sp_monotonic = ip.Lang.Iprop.ip_monotonic;
            sp_injective = ip.Lang.Iprop.ip_injective;
            sp_inner = inner;
          })
  | _ -> Messy

let pp_result ppf = function
  | Affine e -> Linear.Expr.pp ppf e
  | Sparse s ->
    Format.fprintf ppf "SPARSE[st%d%s%s%s%s]" s.sp_st
      (match s.sp_lo with Some l -> Printf.sprintf " lo=%d" l | None -> "")
      (match s.sp_hi with Some h -> Printf.sprintf " hi=%d" h | None -> "")
      (if s.sp_monotonic then " mono" else "")
      (if s.sp_injective then " inj" else "")
  | Messy -> Format.pp_print_string ppf "MESSY"
