(** The three non-convex summarization methods of the paper's Figure 2
    taxonomy, implemented over enumerated reference tuples so the
    efficiency/accuracy trade-off can be measured (bench [fig2]):

    - {!Classic}: two bits per array (DEF/USE), whole-array granularity;
    - {!Reflist}: reference-list-based (Linearization / Atom-Images style) —
      exact, storage proportional to the number of references;
    - {!Section}: bounded regular sections (Havlak-Kennedy) — triplet per
      dimension.

    The convex method is {!Region} itself. *)

module Classic : sig
  type t

  val empty : int -> t
  (** [empty ndims] *)

  val add : Mode.t -> t -> t
  val accessed : Mode.t -> t -> bool

  val storage_bytes : t -> int
  (** Constant: 2 bits rounded up to 1 byte. *)

  val contains : t -> int list -> bool
  (** Whole-array: [true] whenever any access of any mode was recorded. *)

  val pp : Format.formatter -> t -> unit
end

module Reflist : sig
  type t

  val empty : int -> t
  val add : int list -> t -> t
  val cardinal : t -> int
  val contains : t -> int list -> bool
  val storage_bytes : t -> int
  (** [ndims * 8] bytes per stored reference (dedup applies). *)

  val to_list : t -> int list list
  val pp : Format.formatter -> t -> unit
end

module Section : sig
  type dim = { lo : int; hi : int; stride : int }
  type t

  val empty : int -> t
  val add : int list -> t -> t
  (** Triplet join: bounds widen, strides combine by gcd with the phase
      difference of the lower bounds. *)

  val dims : t -> dim list option
  (** [None] until the first point is added. *)

  val contains : t -> int list -> bool
  val storage_bytes : t -> int
  (** [3 * ndims * 8] bytes: lo/hi/stride per dimension. *)

  val cardinal : t -> int
  (** Number of tuples the section describes (0 when empty). *)

  val pp : Format.formatter -> t -> unit
end
