(** Bridge from WHIRL expressions to affine expressions.

    The region analysis only understands affine subscripts.  Whatever cannot
    be linearized — products of variables, loads through arrays, calls — is
    reported as {!Messy}, which the paper's ARA module marks MESSY on the
    corresponding bound. *)

type env = {
  var_of_st : int -> Linear.Var.t option;
      (** maps a WN [st_idx] to the linear variable standing for it (loop
          induction variables and symbolic scalars); [None] = not trackable *)
  const_of_st : int -> int option;
      (** scalars with a known constant value at this point, if any *)
}

type result = Affine of Linear.Expr.t | Messy

val of_wn : env -> Whirl.Wn.t -> result
(** Understands INTCONST, LDID, NEG, ADD, SUB, and MPY-by-constant.
    Anything else is {!Messy}. *)

val pp_result : Format.formatter -> result -> unit
