(** Bridge from WHIRL expressions to affine expressions.

    The region analysis only understands affine subscripts.  Whatever cannot
    be linearized — products of variables, loads through arrays, calls — is
    reported as {!Messy}, which the paper's ARA module marks MESSY on the
    corresponding bound.

    One exception carves the sparse workload out of MESSY: a load through a
    1-D integer array carrying declared index properties
    ([A(idx(i))] with [!$uhc index idx ...]) is reported as {!Sparse},
    keeping the declared value bounds (shifted through any constant
    offsets, e.g. the Fortran lower-bound rebase the lowering inserts) and
    property flags so {!Region.of_subscripts} can refine the dimension
    instead of clamping it. *)

type sparse = {
  sp_st : int;  (** WN st code of the index array (for inspector reports) *)
  sp_lo : int option;  (** value lower bound after constant offsets *)
  sp_hi : int option;  (** value upper bound after constant offsets *)
  sp_monotonic : bool;
  sp_injective : bool;
  sp_inner : Linear.Expr.t option;
      (** the affine subscript into the index array itself, when linear *)
}

type env = {
  var_of_st : int -> Linear.Var.t option;
      (** maps a WN [st_idx] to the linear variable standing for it (loop
          induction variables and symbolic scalars); [None] = not trackable *)
  const_of_st : int -> int option;
      (** scalars with a known constant value at this point, if any *)
  iprop_of_st : int -> Lang.Iprop.t;
      (** declared index-array properties for an array symbol
          ({!Lang.Iprop.none} when undeclared or not an array) *)
}

type result = Affine of Linear.Expr.t | Sparse of sparse | Messy

val of_wn : env -> Whirl.Wn.t -> result
(** Understands INTCONST, LDID, NEG, ADD, SUB, MPY-by-constant, and
    ILOAD-through-a-declared-1-D-index-array (which yields {!Sparse};
    constant offsets shift the declared bounds, negation flips them).
    Anything else is {!Messy}. *)

val pp_result : Format.formatter -> result -> unit
