module Classic = struct
  type t = { ndims : int; use : bool; def : bool; other : bool }

  let empty ndims = { ndims; use = false; def = false; other = false }

  let add mode t =
    match mode with
    | Mode.USE | Mode.RUSE -> { t with use = true }
    | Mode.DEF | Mode.RDEF -> { t with def = true }
    | Mode.FORMAL | Mode.PASSED -> { t with other = true }

  let accessed mode t =
    match mode with
    | Mode.USE | Mode.RUSE -> t.use
    | Mode.DEF | Mode.RDEF -> t.def
    | Mode.FORMAL | Mode.PASSED -> t.other

  let storage_bytes _ = 1

  let contains t _ = t.use || t.def || t.other

  let pp ppf t =
    Format.fprintf ppf "classic{use=%b; def=%b}" t.use t.def
end

module Tuple = struct
  type t = int list
  let compare = Stdlib.compare
end

module Tuple_set = Set.Make (Tuple)

module Reflist = struct
  type t = { ndims : int; refs : Tuple_set.t }

  let empty ndims = { ndims; refs = Tuple_set.empty }

  let add point t =
    if List.length point <> t.ndims then
      invalid_arg "Reflist.add: wrong arity";
    { t with refs = Tuple_set.add point t.refs }

  let cardinal t = Tuple_set.cardinal t.refs
  let contains t point = Tuple_set.mem point t.refs
  let storage_bytes t = cardinal t * t.ndims * 8
  let to_list t = Tuple_set.elements t.refs

  let pp ppf t =
    Format.fprintf ppf "reflist{%d refs}" (cardinal t)
end

module Section = struct
  type dim = { lo : int; hi : int; stride : int }

  type t = { ndims : int; dims : dim list option }

  let empty ndims = { ndims; dims = None }

  (* stride 0 means "single coordinate so far" (lattice undetermined); the
     first distinct coordinate fixes it, later ones widen it by gcd *)
  let join_dim d x =
    let lo = min d.lo x and hi = max d.hi x in
    let stride = Numeric.Rat.gcd d.stride (abs (x - d.lo)) in
    { lo; hi; stride }

  let add point t =
    if List.length point <> t.ndims then invalid_arg "Section.add: wrong arity";
    match t.dims with
    | None ->
      { t with dims = Some (List.map (fun x -> { lo = x; hi = x; stride = 0 }) point) }
    | Some dims -> { t with dims = Some (List.map2 join_dim dims point) }

  let dims t = t.dims

  let contains t point =
    match t.dims with
    | None -> false
    | Some dims ->
      List.for_all2
        (fun d x ->
          x >= d.lo && x <= d.hi
          && (if d.stride = 0 then x = d.lo else (x - d.lo) mod d.stride = 0))
        dims point

  let storage_bytes t = 3 * t.ndims * 8

  let cardinal t =
    match t.dims with
    | None -> 0
    | Some dims ->
      List.fold_left
        (fun acc d ->
          if d.stride = 0 then acc else acc * (((d.hi - d.lo) / d.stride) + 1))
        1 dims

  let pp ppf t =
    match t.dims with
    | None -> Format.pp_print_string ppf "section{}"
    | Some dims ->
      Format.fprintf ppf "section{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf d -> Format.fprintf ppf "%d:%d:%d" d.lo d.hi d.stride))
        dims
end
