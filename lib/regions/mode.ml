type t = USE | DEF | FORMAL | PASSED | RUSE | RDEF

let to_string = function
  | USE -> "USE"
  | DEF -> "DEF"
  | FORMAL -> "FORMAL"
  | PASSED -> "PASSED"
  | RUSE -> "RUSE"
  | RDEF -> "RDEF"

let of_string = function
  | "USE" -> Some USE
  | "DEF" -> Some DEF
  | "FORMAL" -> Some FORMAL
  | "PASSED" -> Some PASSED
  | "RUSE" -> Some RUSE
  | "RDEF" -> Some RDEF
  | _ -> None

let all = [ USE; DEF; FORMAL; PASSED; RUSE; RDEF ]

let rank = function
  | USE -> 0 | DEF -> 1 | FORMAL -> 2 | PASSED -> 3 | RUSE -> 4 | RDEF -> 5

let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let pp ppf t = Format.pp_print_string ppf (to_string t)
