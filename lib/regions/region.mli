(** Convex array regions (the paper's "Regions" method, Triolet/Creusillet
    lineage) together with their triplet-notation projection
    [LB:UB:Stride].

    A region over an [n]-dimensional array constrains the canonical
    subscript variables [Linear.Var.subscript 0 .. n-1] (internal row-major,
    zero-based coordinates — the WHIRL ARRAY convention).  Symbolic program
    values may appear free in the constraints; loop induction variables are
    eliminated by Fourier-Motzkin projection at construction time.

    Strides are not expressible in a convex system, so they are carried
    alongside, computed from the linearized subscripts and loop steps
    (gcd of |coefficient * step| over the induction variables involved) —
    this is what lets the tool report exact strides where the earlier Dragon
    normalized them away. *)

type bound =
  | Bconst of int
  | Bsym of Linear.Expr.t  (** bound depends on symbolic program values *)
  | Bunknown               (** the paper's MESSY / UNPROJECTED *)

type stride = Sconst of int | Sunknown

type dim = { lb : bound; ub : bound; stride : stride }

type t = private {
  ndims : int;
  sys : Linear.System.t;
  dims : dim list;  (** internal (row-major) order, length [ndims] *)
  exact : bool;     (** false once any approximation was taken *)
  clamped : bool;
      (** true when some step {e under}-approximated the runtime access set
          by clamping it into the declared extents (MESSY subscripts,
          opaque-callee summaries).  Such a region still over-approximates
          every {e valid} access, but can no longer witness that all
          runtime accesses are in bounds. *)
  assumed : Lang.Iprop.flags;
      (** which declared index-array properties this region leaned on
          (bounded / monotonic / injective); {!Lang.Iprop.no_flags} for a
          purely derived region.  Sticky through joins and translation, so
          bounds clients can report declaration-conditional proofs
          separately. *)
}

(** Description of one enclosing loop for {!of_subscripts}. *)
type loop_ctx = {
  lc_var : Linear.Var.t;        (** the induction variable *)
  lc_lo : Affine.result;
  lc_hi : Affine.result;
  lc_step : int option;         (** [None] = unknown (non-constant) step *)
}

val of_subscripts :
  extents:int option list ->
  loops:loop_ctx list ->
  Affine.result list ->
  t
(** Region of a single reference.  [extents] are the (row-major) declared
    dimension extents used to clamp MESSY subscripts; the subscript list
    gives one affine result per dimension.

    A {!Affine.Sparse} subscript with both declared value bounds becomes an
    unclamped box [lo..hi] (the declaration over-approximates the runtime
    set, so safety proofs remain available — flagged in [assumed]); with an
    injective declaration and an inner subscript covering exactly the box
    ([trip count = hi-lo+1], the pigeonhole argument) the dimension is even
    exact.  Sparse subscripts missing a bound fall back to the MESSY
    clamp. *)

val make :
  ndims:int -> sys:Linear.System.t -> strides:stride list -> exact:bool -> t
(** Rebuild a region from an arbitrary system (used by the interprocedural
    translation); triplets are recomputed by projection.  The result is not
    clamped; apply {!mark_clamped} when the source region was. *)

val whole : extents:int option list -> t
(** The entire array: what a whole-array argument or an unanalyzable
    reference summarizes to.  Compose with {!mark_clamped} when the
    underlying accesses are unknown (opaque callee), so bounds clients
    cannot read the clamp back as proof of safety. *)

val point : int list -> t
(** Single concrete element. *)

val union_approx : t -> t -> t
(** Convex over-approximation of the union: keeps the constraints of each
    operand the other one entails (the paper: "the union of regions is
    approximated since in some cases it does not form a convex hull").
    Strides combine by gcd, including the lower-bound phase difference. *)

val union_many : t list -> t
(** Left fold of {!union_approx} over the list (which is exactly its
    definition — the approximate join is not associative, so no tree
    reduction is attempted).  The n-way entry point exists so callers
    collapsing whole buckets at once go through the interned-system
    short-circuit and the [regions.union_many.calls] metric.
    @raise Invalid_argument on the empty list. *)

val set_fast_join : bool -> unit
(** Selects the join path.  [true] (default) lets {!union_approx} skip the
    entailment sweep when both operands carry the same interned constraint
    system, and lets the summary layer bucket entries by (array, mode)
    instead of scanning linearly.  [false] restores the pre-interning
    reference path; results are byte-identical either way (differential
    tests and the regions bench rely on this knob). *)

val fast_join_enabled : unit -> bool

val includes : t -> t -> bool
(** Convex inclusion (ignores strides, hence conservative: [includes a b]
    guarantees every element of [b] is inside [a]'s convex hull). *)

val disjoint : t -> t -> bool
(** No shared element even ignoring strides — the sound direction for the
    parallelization test. *)

val intersects : t -> t -> bool

val point_count : t -> int option
(** Number of elements described by the triplet view when fully constant. *)

val contains_point : t -> int list -> bool
(** Membership in the convex system {e and} the per-dimension stride
    lattice (for constant triplet dims). *)

val subst_sym : (Linear.Var.t * Linear.Expr.t) list -> t -> t
(** Substitute symbolic variables (formal-to-actual translation). *)

val map_vars : (Linear.Var.t -> Linear.Var.t) -> t -> t
(** Rename every variable, preserving (not recomputing) the triplet view —
    the engine cache uses this to re-intern deserialized regions onto the
    live symbolic-variable registry. *)

val close_under_loops : loop_ctx list -> t -> t
(** After a formal-to-actual substitution a region may mention the caller's
    induction variables; this conjoins the given loop constraints and
    projects those variables away — the last step of translating a callee
    summary at a call site that sits inside loops. *)

val shift_dim : int -> int -> t -> t
(** [shift_dim k off r]: translate dimension [k] by [off] elements
    (element-argument passing re-bases the callee's region). *)

val approximate : t -> t
(** Same region, with the exact flag cleared — used when a translation step
    had to over-approximate (element-argument passing, rank mismatch). *)

val mark_clamped : t -> t
(** Same region, with the clamped flag set — used when a translation step
    fell back to the declared extents without knowing the real accesses. *)

val dim_list : t -> dim list
val is_exact : t -> bool

val is_clamped : t -> bool
(** Whether any construction or translation step clamped the region into
    the declared extents (see {!type:t}). *)

val assumed_flags : t -> Lang.Iprop.flags
val is_assumed : t -> bool
(** Whether the region leans on declared index-array properties. *)

val set_assumed : Lang.Iprop.flags -> t -> t
(** Union the given provenance flags in (summary reload re-applies the
    flags recorded in .ipl/.rgn rows). *)

type extent_verdict =
  | In_bounds      (** every access the region admits is provably valid *)
  | Out_of_bounds  (** the region is non-empty and some dimension lies
                       entirely outside the declared extent — every access
                       it describes faults *)
  | Unknown_bounds (** neither proof went through: residual runtime check *)

val extent_check : extents:int option list -> t -> extent_verdict
(** Compare a region against the (row-major, zero-based) declared extents
    with the packed Fourier-Motzkin [implies] path.  [In_bounds] needs
    [0 <= d_k <= extent_k - 1] entailed for every dimension {e and} an
    unclamped region; [Out_of_bounds] needs some known-extent dimension
    entailed entirely outside ([d_k <= -1] or [d_k >= extent_k]) — sound
    even on over-approximated regions.  A solver step budget degrades
    failed entailments to [Unknown_bounds], never to a wrong verdict.
    @raise Invalid_argument on rank mismatch. *)

val equal_display : t -> t -> bool
(** Same triplet view (used to merge duplicate rows). *)

val pp_bound : Format.formatter -> bound -> unit
val pp_stride : Format.formatter -> stride -> unit
val pp_dim : Format.formatter -> dim -> unit
val pp : Format.formatter -> t -> unit
(** Triplet notation: [(lb:ub:stride, ...)]. *)
