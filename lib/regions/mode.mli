(** The four access modes the paper's ARA module distinguishes.

    "A statement S is a definition of v iff S is an assignment statement
    with left-hand side v.  S is a use of v iff during execution of S,
    right-hand side v is read.  FORMAL refers to the array as found in the
    function definition (parameter), while PASSED refers to the actual value
    passed (argument)." *)

type t =
  | USE
  | DEF
  | FORMAL
  | PASSED
  | RUSE  (** remote coarray read, [x(i)[p]] — the PGAS extension *)
  | RDEF  (** remote coarray write *)

val to_string : t -> string
val of_string : string -> t option
val all : t list
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
