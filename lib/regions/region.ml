open Numeric
open Linear

type bound =
  | Bconst of int
  | Bsym of Expr.t
  | Bunknown

type stride = Sconst of int | Sunknown

type dim = { lb : bound; ub : bound; stride : stride }

type t = {
  ndims : int;
  sys : System.t;
  dims : dim list;
  exact : bool;
  clamped : bool;
  assumed : Lang.Iprop.flags;
}

type loop_ctx = {
  lc_var : Var.t;
  lc_lo : Affine.result;
  lc_hi : Affine.result;
  lc_step : int option;
}

(* Join-path selector.  [true] (the default) lets {!union_approx} skip the
   per-constraint implies sweep when both operands carry the same interned
   system — provably the same result, since an exact [System.implies]
   entails every inequality of a system against itself.  [false] is the
   pre-interning reference path, kept runtime-selectable for differential
   tests and the regions bench ([--join-path reference]). *)
let fast_join = Atomic.make true
let set_fast_join b = Atomic.set fast_join b
let fast_join_enabled () = Atomic.get fast_join

let c_union_calls = Obs.Metrics.counter "regions.union.calls"
let c_union_many_calls = Obs.Metrics.counter "regions.union_many.calls"
let c_implies_saved = Obs.Metrics.counter "regions.union.implies_saved"

(* ------------------------------------------------------------------ *)
(* Triplet projection *)

(* Symbolic bound extraction for subscript variable [v]: given the system
   projected onto [v] plus the symbolic variables, read off a constraint
   that bounds [v] from the requested side. *)
let symbolic_bound side v projected =
  let candidates =
    List.filter_map
      (fun c ->
        let e = Constr.expr c in
        let a = Expr.coeff v e in
        if Rat.sign a = 0 then None
        else
          let rest = Expr.subst v Expr.zero e in
          let b = Expr.scale (Rat.div Rat.minus_one a) rest in
          match Constr.op c, side with
          | Constr.Eq, _ -> Some b
          | Constr.Le, `Upper when Rat.sign a > 0 -> Some b
          | Constr.Le, `Lower when Rat.sign a < 0 -> Some b
          | Constr.Le, _ -> None)
      (System.to_list projected)
  in
  match candidates with [] -> None | b :: _ -> Some b

let bound_of_side side v projected (clo, chi) =
  let const =
    match side with
    | `Lower -> Option.map (fun r -> Bconst (Rat.ceil r)) clo
    | `Upper -> Option.map (fun r -> Bconst (Rat.floor r)) chi
  in
  match const with
  | Some b -> b
  | None -> (
    match symbolic_bound side v (Lazy.force projected) with
    | Some e -> Bsym e
    | None -> Bunknown)

let triplets_of_sys ~ndims ~strides sys =
  (* indexed per dimension below; List.nth would make the loop O(ndims^2) *)
  let strides = Array.of_list strides in
  List.init ndims (fun k ->
      let v = Var.subscript k in
      let cb = System.bounds v sys in
      (* one shared projection per dimension, forced only when a side has no
         constant bound and must render symbolically (previously each side
         re-projected the full system) *)
      let projected =
        lazy
          (let keep =
             Var.Set.add v (Var.Set.filter Var.is_sym (System.vars sys))
           in
           System.project_onto keep sys)
      in
      let lb = bound_of_side `Lower v projected cb in
      let ub = bound_of_side `Upper v projected cb in
      { lb; ub; stride = strides.(k) })

let make ~ndims ~sys ~strides ~exact =
  if List.length strides <> ndims then
    invalid_arg "Region.make: strides length mismatch";
  let dims = triplets_of_sys ~ndims ~strides sys in
  { ndims; sys; dims; exact; clamped = false; assumed = Lang.Iprop.no_flags }

let mark_clamped t = if t.clamped then t else { t with clamped = true }

let set_assumed flags t =
  if Lang.Iprop.any_flag flags then
    { t with assumed = Lang.Iprop.flags_union t.assumed flags }
  else t

(* carry both provenance bits (clamp and assumed-property flags) from a
   source region onto a rebuilt one *)
let with_clamp_of src t =
  let t = if src.clamped then mark_clamped t else t in
  set_assumed src.assumed t

(* ------------------------------------------------------------------ *)
(* Construction from a reference *)

let stride_of_subscript loops = function
  | Affine.Messy -> Sunknown
  | Affine.Sparse s ->
    (* a bounded index array confines the dimension to a box; stride 1 is
       the box's (weakest, always sound) over-approximation — the same
       claim [whole] makes.  Without both bounds the dimension falls back
       to the clamp path, whose stride stays unknown like MESSY. *)
    if s.Affine.sp_lo <> None && s.Affine.sp_hi <> None then Sconst 1
    else Sunknown
  | Affine.Affine e ->
    let contributions =
      List.filter_map
        (fun lc ->
          let c = Expr.coeff lc.lc_var e in
          if Rat.sign c = 0 then None
          else
            match lc.lc_step with
            | None -> Some None
            | Some s ->
              if Rat.is_integer c then Some (Some (abs (Rat.to_int c * s)))
              else Some None)
        loops
    in
    if List.exists (fun x -> x = None) contributions then Sunknown
    else
      let g =
        List.fold_left
          (fun acc c -> match c with Some v -> Rat.gcd acc v | None -> acc)
          0 contributions
      in
      if g = 0 then Sconst 1 (* loop-invariant subscript: single element *)
      else Sconst g

(* Pigeonhole witness for an exactly-covered sparse dimension: an injective
   index array applied to [trip] distinct arguments lands on [trip] distinct
   values inside the declared box; when [trip] equals the box size, the
   accessed set IS the box.  The distinct-argument count is only recognized
   in the common shape: inner subscript [±i + c] over a single unit-step
   loop with constant bounds. *)
let sparse_distinct_args ~loops e =
  let contribs =
    List.filter_map
      (fun lc ->
        let c = Expr.coeff lc.lc_var e in
        if Rat.sign c = 0 then None else Some (lc, c))
      loops
  in
  match contribs with
  | [ (lc, c) ] when Rat.equal (Rat.abs c) Rat.one -> (
    match lc.lc_step, lc.lc_lo, lc.lc_hi with
    | Some 1, Affine.Affine lo, Affine.Affine hi
      when Expr.is_const lo && Expr.is_const hi ->
      let l = Expr.constant lo and h = Expr.constant hi in
      if Rat.is_integer l && Rat.is_integer h then
        let trip = Rat.to_int h - Rat.to_int l + 1 in
        if trip > 0 then Some trip else None
      else None
    | _ -> None)
  | _ -> None

let of_subscripts ~extents ~loops subscripts =
  let ndims = List.length subscripts in
  if List.length extents <> ndims then
    invalid_arg "Region.of_subscripts: extents length mismatch";
  let exact = ref true in
  let clamped = ref false in
  let assumed = ref Lang.Iprop.no_flags in
  let constraints = ref [] in
  let addc c = constraints := c :: !constraints in
  let extents_a = Array.of_list extents in
  let clamp_into k =
    match extents_a.(k) with
    | Some ext ->
      (* the clamp keeps the region inside the declared extent even
         though the runtime subscript might not be: an
         under-approximation in the bounds-checking direction, recorded
         in [clamped] so clients never prove safety from it *)
      clamped := true;
      let d = Expr.var (Var.subscript k) in
      addc (Constr.ge d Expr.zero);
      addc (Constr.le d (Expr.of_int (ext - 1)))
    | None -> ()
  in
  (* subscript equations *)
  List.iteri
    (fun k sub ->
      let d = Expr.var (Var.subscript k) in
      match sub with
      | Affine.Affine e -> addc (Constr.eq d e)
      | Affine.Sparse s -> (
        match s.Affine.sp_lo, s.Affine.sp_hi with
        | Some lo, Some hi ->
          (* declared value bounds box the dimension WITHOUT clamping: the
             assertion speaks about runtime values, so an In_bounds proof
             stays honest — conditional on the declaration, which the
             assumed flags record for reports and summaries *)
          List.iter addc (Constr.between d ~lo ~hi);
          assumed :=
            Lang.Iprop.flags_union !assumed
              {
                Lang.Iprop.f_bounded = true;
                f_monotonic = s.Affine.sp_monotonic;
                f_injective = s.Affine.sp_injective;
              };
          let covered =
            s.Affine.sp_injective
            &&
            match s.Affine.sp_inner with
            | Some inner ->
              sparse_distinct_args ~loops inner = Some (hi - lo + 1)
            | None -> false
          in
          if not covered then exact := false
        | _ ->
          (* partial or no value bounds: same conservative path as MESSY *)
          exact := false;
          clamp_into k)
      | Affine.Messy ->
        exact := false;
        clamp_into k)
    subscripts;
  (* loop constraints; strided loops get an auxiliary iteration counter *)
  List.iter
    (fun lc ->
      let i = Expr.var lc.lc_var in
      match lc.lc_lo, lc.lc_hi with
      | Affine.Affine lo, Affine.Affine hi -> (
        match lc.lc_step with
        | Some 1 | Some 0 ->
          addc (Constr.ge i lo);
          addc (Constr.le i hi)
        | None ->
          (* unknown step: direction assumed forward *)
          exact := false;
          addc (Constr.ge i lo);
          addc (Constr.le i hi)
        | Some s ->
          let k = Var.fresh ~name:(Var.name lc.lc_var ^ "#k") Var.Ivar in
          addc
            (Constr.eq i (Expr.add lo (Expr.monom (Rat.of_int s) k)));
          addc (Constr.ge (Expr.var k) Expr.zero);
          if s > 0 then addc (Constr.le i hi) else addc (Constr.ge i hi);
          (* with constant bounds the trip count is known exactly, which
             closes the rational/integer gap FM would otherwise leave
             (e.g. i = 0..1 step 2 reaches only 0, not 0..1) *)
          if Expr.is_const lo && Expr.is_const hi then begin
            let kmax =
              Rat.floor
                (Rat.div
                   (Rat.sub (Expr.constant hi) (Expr.constant lo))
                   (Rat.of_int s))
            in
            addc (Constr.le (Expr.var k) (Expr.of_int kmax))
          end)
      | _ ->
        (* unanalyzable loop bounds: the induction variable stays
           unconstrained and the projection will report UNPROJECTED *)
        exact := false)
    loops;
  let sys = System.of_list !constraints in
  (* eliminate every induction variable *)
  let ivars = Var.Set.filter Var.is_ivar (System.vars sys) in
  let sys = System.eliminate_all (Var.Set.elements ivars) sys in
  let strides = List.map (stride_of_subscript loops) subscripts in
  let r = make ~ndims ~sys ~strides ~exact:!exact in
  let r = if !clamped then mark_clamped r else r in
  set_assumed !assumed r

let whole ~extents =
  let ndims = List.length extents in
  let exact = ref true in
  let constraints =
    List.concat
      (List.mapi
         (fun k ext ->
           let d = Expr.var (Var.subscript k) in
           match ext with
           | Some e ->
             [ Constr.ge d Expr.zero; Constr.le d (Expr.of_int (e - 1)) ]
           | None ->
             exact := false;
             [ Constr.ge d Expr.zero ])
         extents)
  in
  make ~ndims
    ~sys:(System.of_list constraints)
    ~strides:(List.init ndims (fun _ -> Sconst 1))
    ~exact:!exact

let point coords =
  let ndims = List.length coords in
  let constraints =
    List.mapi
      (fun k c -> Constr.eq (Expr.var (Var.subscript k)) (Expr.of_int c))
      coords
  in
  make ~ndims ~sys:(System.of_list constraints)
    ~strides:(List.init ndims (fun _ -> Sconst 1))
    ~exact:true

(* ------------------------------------------------------------------ *)
(* Algebra *)

let union_strides la sa lb sb =
  match sa, sb with
  | Sconst a, Sconst b -> (
    let g = Rat.gcd a b in
    match la, lb with
    | Bconst x, Bconst y ->
      let g = Rat.gcd g (abs (x - y)) in
      if g = 0 then Sconst 1 else Sconst g
    | _ -> if g = 0 then Sconst 1 else Sconst g)
  | _ -> Sunknown

let union_approx a b =
  if a.ndims <> b.ndims then invalid_arg "Region.union_approx: rank mismatch";
  Obs.Metrics.Counter.incr c_union_calls;
  (* weak join: constraints of one side entailed by the other.  Equalities
     are split into inequality pairs first, otherwise joining two distinct
     points would keep nothing instead of their hull. *)
  let inequalities sys =
    List.concat_map
      (fun c ->
        match Constr.op c with
        | Constr.Le -> [ c ]
        | Constr.Eq ->
          let e = Constr.expr c in
          [ Constr.make e Constr.Le; Constr.make (Expr.neg e) Constr.Le ])
      (System.to_list sys)
  in
  let keep_entailed src other =
    let ineqs = inequalities src in
    if Atomic.get fast_join && System.equal src other then begin
      (* joining a system with itself: [implies] is exact and complete, so
         every inequality derived from [src] is entailed by [other] — keep
         them all without a single solver query (same result by
         construction, counted as saved work) *)
      Obs.Metrics.Counter.add c_implies_saved (List.length ineqs);
      ineqs
    end
    else List.filter (fun c -> System.implies other c) ineqs
  in
  let sys =
    System.of_list
      (keep_entailed a.sys b.sys @ keep_entailed b.sys a.sys)
  in
  let strides =
    List.map2
      (fun da db -> union_strides da.lb da.stride db.lb db.stride)
      a.dims b.dims
  in
  let r = make ~ndims:a.ndims ~sys ~strides ~exact:false in
  let r =
    {
      r with
      clamped = a.clamped || b.clamped;
      assumed = Lang.Iprop.flags_union a.assumed b.assumed;
    }
  in
  (* the join of two identical regions is that region, exactly *)
  if System.equal_semantic a.sys b.sys && a.dims = b.dims then
    { r with exact = a.exact && b.exact }
  else r

let union_many = function
  | [] -> invalid_arg "Region.union_many: empty list"
  | r :: rest ->
    (* [union_approx] is not associative (the weak join and the
       symbolic-bound choice depend on operand order), so the n-way join is
       defined as the left fold — byte-identical to folding by hand.  The
       win comes from the interned-id short-circuit firing per step inside
       [union_approx], which the summary cap-collapse path hits constantly
       (display-equal accesses carry the very same interned system). *)
    Obs.Metrics.Counter.incr c_union_many_calls;
    List.fold_left union_approx r rest

let includes a b =
  a.ndims = b.ndims
  && (System.equal a.sys b.sys || System.includes a.sys b.sys)

(* Stride-lattice separation: when both regions are exact, every access of a
   dimension lies on the lattice { lb + stride * k }; two lattices with
   constant anchors and strides share a point iff (lb1 - lb2) is divisible
   by gcd(s1, s2).  This proves e.g. even/odd interleavings disjoint, which
   the convex systems alone cannot. *)
let lattice_disjoint_dim d1 d2 =
  match d1.lb, d1.stride, d2.lb, d2.stride with
  | Bconst l1, Sconst s1, Bconst l2, Sconst s2 when s1 > 0 && s2 > 0 ->
    let g = Rat.gcd s1 s2 in
    g > 1 && (l1 - l2) mod g <> 0
  | _ -> false

let disjoint a b =
  (* lattice test first: it is a few gcds, while System.disjoint may run a
     full elimination.  Same verdict either way — [||] is commutative. *)
  a.ndims = b.ndims
  && ((a.exact && b.exact
      && List.exists2 lattice_disjoint_dim a.dims b.dims)
     || System.disjoint a.sys b.sys)

let intersects a b = a.ndims = b.ndims && not (disjoint a b)

let dim_point_count d =
  match d.lb, d.ub, d.stride with
  | Bconst l, Bconst u, Sconst s when s > 0 ->
    if u < l then Some 0 else Some (((u - l) / s) + 1)
  | _ -> None

let point_count t =
  List.fold_left
    (fun acc d ->
      match acc, dim_point_count d with
      | Some a, Some b -> Some (a * b)
      | _ -> None)
    (Some 1) t.dims

let contains_point t coords =
  if List.length coords <> t.ndims then false
  else
    let valuation =
      let tbl = Hashtbl.create 8 in
      List.iteri (fun k c -> Hashtbl.add tbl (Var.id (Var.subscript k)) c) coords;
      fun v ->
        match Hashtbl.find_opt tbl (Var.id v) with
        | Some c -> Rat.of_int c
        | None -> raise Not_found
    in
    let convex_ok =
      List.for_all
        (fun c ->
          match Constr.holds valuation c with
          | ok -> ok
          | exception Not_found -> true (* symbolic: cannot refute *))
        (System.to_list t.sys)
    in
    convex_ok
    && List.for_all2
         (fun d c ->
           match d.lb, d.stride with
           | Bconst l, Sconst s when s > 1 -> (c - l) mod s = 0
           | _ -> true)
         t.dims coords

let map_vars f t =
  (* Structural rename: the triplet view is carried over (with its bound
     expressions renamed), NOT recomputed, so that a region reloaded from
     the engine's cache renders byte-identically to the original. *)
  let map_bound = function
    | Bconst _ as b -> b
    | Bsym e -> Bsym (Expr.map_vars f e)
    | Bunknown -> Bunknown
  in
  {
    t with
    sys = System.map_vars f t.sys;
    dims =
      List.map
        (fun d -> { d with lb = map_bound d.lb; ub = map_bound d.ub })
        t.dims;
  }

let subst_sym substs t =
  let sys =
    List.fold_left
      (fun sys (v, e) -> System.subst v e sys)
      t.sys substs
  in
  let strides = List.map (fun d -> d.stride) t.dims in
  with_clamp_of t (make ~ndims:t.ndims ~sys ~strides ~exact:t.exact)

let close_under_loops loops t =
  let ivars = Var.Set.filter Var.is_ivar (System.vars t.sys) in
  if Var.Set.is_empty ivars then t
  else begin
    let exact = ref t.exact in
    let constraints = ref (System.to_list t.sys) in
    let addc c = constraints := c :: !constraints in
    List.iter
      (fun lc ->
        if Var.Set.mem lc.lc_var ivars then begin
          let i = Expr.var lc.lc_var in
          match lc.lc_lo, lc.lc_hi with
          | Affine.Affine lo, Affine.Affine hi ->
            (* stride of the caller loop is not folded into the region's
               per-dimension strides here; bounds stay exact, strides keep
               the callee's values, so mark approximate unless unit step *)
            addc (Constr.ge i lo);
            addc (Constr.le i hi);
            (match lc.lc_step with Some 1 -> () | _ -> exact := false)
          | _ -> exact := false
        end)
      loops;
    let sys = System.of_list !constraints in
    let sys = System.eliminate_all (Var.Set.elements ivars) sys in
    let strides = List.map (fun d -> d.stride) t.dims in
    with_clamp_of t (make ~ndims:t.ndims ~sys ~strides ~exact:!exact)
  end

let shift_dim k off t =
  if off = 0 then t
  else begin
    (* d_k := d_k - off in every constraint shifts the region by +off *)
    let v = Var.subscript k in
    let sys =
      System.subst v (Expr.add (Expr.var v) (Expr.of_int (-off))) t.sys
    in
    let strides = List.map (fun d -> d.stride) t.dims in
    with_clamp_of t (make ~ndims:t.ndims ~sys ~strides ~exact:t.exact)
  end

let approximate t = { t with exact = false }

let dim_list t = t.dims
let is_exact t = t.exact
let is_clamped t = t.clamped
let assumed_flags t = t.assumed
let is_assumed t = Lang.Iprop.any_flag t.assumed

(* ------------------------------------------------------------------ *)
(* Extent-vs-region queries (the bounds-checking client's core question) *)

type extent_verdict = In_bounds | Out_of_bounds | Unknown_bounds

let extent_check ~extents t =
  if List.length extents <> t.ndims then
    invalid_arg "Region.extent_check: rank mismatch";
  (* an empty region describes no access at all: trivially in bounds *)
  if not (System.feasible t.sys) then In_bounds
  else begin
    let extents_a = Array.of_list extents in
    let dims_a = Array.of_list t.dims in
    let all_in = ref true in
    let some_out = ref false in
    for k = 0 to t.ndims - 1 do
      let d = Expr.var (Var.subscript k) in
      (* proven inside: 0 <= d <= ext-1 entailed by the system.  Under a
         solver step budget [implies] degrades to "cannot prove", which
         lands the access in the Unknown (residual runtime check) bucket.

         The triplet's constant bounds decide most of these queries
         without a solver call: [Bconst l] is ceil of the exact rational
         infimum of [d] over the system and [Bconst u] the floor of its
         supremum ([System.bounds] projections), so e.g.
         [implies (d >= 0)] — infeasibility of [sys /\ d <= -1], i.e.
         inf > -1 — holds exactly when [l >= 0].  Each equivalence below
         is exact in both directions, so verdicts are identical to the
         implies-only path (under a step budget [bounds] stays exact, so
         the constant path may prove what a degraded [implies] cannot —
         strictly fewer residual checks, never a wrong verdict). *)
      let { lb; ub; _ } = dims_a.(k) in
      let low_in =
        match lb with
        | Bconst l -> l >= 0
        | Bsym _ | Bunknown -> System.implies t.sys (Constr.ge d Expr.zero)
      in
      let low_out =
        match ub with
        | Bconst u -> u < 0
        | Bsym _ | Bunknown ->
          System.implies t.sys (Constr.le d (Expr.of_int (-1)))
      in
      let high_in, high_out =
        match extents_a.(k) with
        | Some e ->
          let high_in =
            match ub with
            | Bconst u -> u <= e - 1
            | Bsym _ | Bunknown ->
              System.implies t.sys (Constr.le d (Expr.of_int (e - 1)))
          in
          let high_out =
            match lb with
            | Bconst l -> l >= e
            | Bsym _ | Bunknown ->
              System.implies t.sys (Constr.ge d (Expr.of_int e))
          in
          (high_in, high_out)
        | None -> (false, false)
      in
      if not (low_in && high_in) then all_in := false;
      if low_out || high_out then some_out := true
    done;
    (* entirely-out on one dimension condemns every access the region
       describes, so over-approximation does not weaken the verdict;
       proving In_bounds additionally requires the region not to have been
       clamped (the clamp under-approximates in exactly this direction) *)
    if !some_out then Out_of_bounds
    else if !all_in && not t.clamped then In_bounds
    else Unknown_bounds
  end

let bound_equal a b =
  match a, b with
  | Bconst x, Bconst y -> x = y
  | Bsym e, Bsym f -> Expr.equal e f
  | Bunknown, Bunknown -> true
  | (Bconst _ | Bsym _ | Bunknown), _ -> false

let dim_equal a b =
  bound_equal a.lb b.lb && bound_equal a.ub b.ub && a.stride = b.stride

let equal_display a b =
  a.ndims = b.ndims && List.for_all2 dim_equal a.dims b.dims

let pp_bound ppf = function
  | Bconst n -> Format.fprintf ppf "%d" n
  | Bsym e -> Expr.pp ppf e
  | Bunknown -> Format.pp_print_string ppf "*"

let pp_stride ppf = function
  | Sconst n -> Format.fprintf ppf "%d" n
  | Sunknown -> Format.pp_print_string ppf "*"

let pp_dim ppf d =
  Format.fprintf ppf "%a:%a:%a" pp_bound d.lb pp_bound d.ub pp_stride d.stride

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_dim)
    t.dims
