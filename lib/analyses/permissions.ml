(* Permission inference (Dohrau et al., "Permission Inference for Array
   Programs"): a procedure's read/write permission precondition is exactly
   its interprocedural summary — the USE entries are the array parts the
   caller must grant read permission on, the DEF entries the parts needing
   write permission.  FORMAL entries are preconditions proper; entries on
   globals are the procedure's footprint on shared state. *)

open Whirl

let name = "permissions"

let c_read = Obs.Metrics.counter "analyses.permissions.read"
let c_write = Obs.Metrics.counter "analyses.permissions.write"

let permission_of_mode = function
  | Regions.Mode.USE -> "read"
  | Regions.Mode.DEF -> "write"
  | m -> Regions.Mode.to_string m

let run (ctx : Analysis.ctx) =
  Obs.Span.with_ ~cat:"analysis" ~name:"analysis:permissions" @@ fun () ->
  let m = ctx.Analysis.ctx_module in
  let r = ctx.Analysis.ctx_result in
  let reads = ref 0 and writes = ref 0 and procs = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (proc, summary) ->
      match Ir.find_pu m proc with
      | None -> ()
      | Some pu ->
        if summary <> [] then incr procs;
        List.iter
          (fun (e : Ipa.Summary.entry) ->
            let target =
              match e.Ipa.Summary.e_key with
              | Ipa.Summary.Kformal p -> (
                match List.nth_opt pu.Ir.pu_formals p with
                | Some st -> Some (st, "formal")
                | None -> None)
              | Ipa.Summary.Kglobal g ->
                if Ir.is_global_idx g then Some (g, "global") else None
            in
            match target with
            | None -> ()
            | Some (st, kind) ->
              (match e.Ipa.Summary.e_mode with
              | Regions.Mode.USE -> incr reads
              | Regions.Mode.DEF -> incr writes
              | _ -> ());
              let lb, ub, stride =
                Ipa.Analyze.display_bounds m pu st e.Ipa.Summary.e_region
              in
              rows :=
                [
                  proc;
                  Ir.st_name m pu st;
                  kind;
                  permission_of_mode e.Ipa.Summary.e_mode;
                  lb;
                  ub;
                  stride;
                  (if Regions.Region.is_exact e.Ipa.Summary.e_region then "y"
                   else "n");
                  string_of_int e.Ipa.Summary.e_count;
                ]
                :: !rows)
          summary)
    r.Ipa.Analyze.r_summaries;
  Obs.Metrics.Counter.add c_read !reads;
  Obs.Metrics.Counter.add c_write !writes;
  let report =
    Report.make ~analysis:name
      ~summary:
        [
          ("procedures", string_of_int !procs);
          ("read_preconditions", string_of_int !reads);
          ("write_preconditions", string_of_int !writes);
        ]
      ~columns:
        [
          "Proc"; "Array"; "Kind"; "Permission"; "LB"; "UB"; "Stride";
          "Exact"; "Count";
        ]
      (List.rev !rows)
  in
  (report, [])
