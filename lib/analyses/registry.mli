(** Client registry: the shipped analyses ([bounds], [permissions],
    [regions]) plus any {!register}ed out-of-tree clients. *)

val find : string -> (module Analysis.CLIENT) option
val names : unit -> string list
(** Builtins first (bounds, permissions, regions), then registration
    order. *)

val register : (module Analysis.CLIENT) -> unit
(** @raise Invalid_argument on a duplicate name. *)

val parse_selection : string -> (string list, string) result
(** Parse a [--analyses] comma list ("bounds,permissions"); rejects unknown
    names with a message listing the available ones. *)

val run_selected :
  selection:string list ->
  Analysis.ctx ->
  (Report.t * Fault.Diag.t list) list
(** Run the named clients in the given order.
    @raise Invalid_argument on an unknown name (validate with
    {!parse_selection} first). *)
