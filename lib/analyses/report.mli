(** The versioned results surface every client analysis reports through.

    A report is one table plus a few scalar summary facts; a run of the
    pipeline yields one report per selected client.  The JSON rendering is
    deterministic (insertion order everywhere, no timestamps, no wall-clock
    numbers) so that reports are byte-identical at any [--jobs] setting —
    the same contract the [.rgn]/[.dgn] outputs honor. *)

val schema_version : int
(** Version stamped into the top-level JSON object.  Bump on any change to
    the shape below; [bench check-json] rejects unknown or missing
    versions. *)

type t = {
  r_analysis : string;  (** client name, e.g. ["bounds"] *)
  r_summary : (string * string) list;
      (** ordered scalar facts, e.g. [("safe", "12")] *)
  r_columns : string list;
  r_rows : string list list;  (** each row has [List.length r_columns] cells *)
}

val make :
  analysis:string ->
  summary:(string * string) list ->
  columns:string list ->
  string list list ->
  t
(** @raise Invalid_argument when some row's width disagrees with
    [columns]. *)

val json_of_reports : t list -> string
(** [{"schema_version": N, "reports": [{"analysis": ..., "summary": {...},
    "columns": [...], "rows": [[...] ...]}, ...]}] *)

val save : path:string -> t list -> unit
(** Writes {!json_of_reports} (reports in the given order). *)

val render : Format.formatter -> t -> unit
(** Human-readable table: summary line, then aligned columns. *)
