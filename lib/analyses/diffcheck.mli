(** Differential harness: static bounds verdicts vs one interpreted run.

    Executes the module under {!Interp.run} with [~record_oob:true] and
    cross-checks every observed out-of-bounds access against the bounds
    verdict table keyed by (executing procedure, array, direction, source
    line):

    - a fault whose every verdict row is safe is a [safe_fault] — the
      static analysis proved an access the runtime refuted;
    - a fault with no maybe/unsafe row is [uncovered] — no runtime
      inspector was emitted for it.

    Both must be zero for the summary's [ok] to read ["true"].  Columns:
    Proc, Array, Mode, Line, Coords, Kind, Covered, SafeFault — one row
    per out-of-bounds event in execution order.  Summary keys:
    [verdict_rows], [steps], [oob_events], [covered], [uncovered],
    [safe_faults], [ok]. *)

val name : string

val run : Analysis.ctx -> Report.t * Fault.Diag.t list
