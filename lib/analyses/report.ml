let schema_version = 1

type t = {
  r_analysis : string;
  r_summary : (string * string) list;
  r_columns : string list;
  r_rows : string list list;
}

let make ~analysis ~summary ~columns rows =
  let width = List.length columns in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Report.make: %s row has %d cells for %d columns"
             analysis (List.length row) width))
    rows;
  { r_analysis = analysis; r_summary = summary; r_columns = columns;
    r_rows = rows }

(* ------------------------------------------------------------------ *)
(* JSON *)

let bpf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let add_string_array b cells =
  Buffer.add_char b '[';
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ", ";
      bpf b "\"%s\"" (Obs.Json.escape c))
    cells;
  Buffer.add_char b ']'

let add_report b t =
  bpf b "    {\n      \"analysis\": \"%s\",\n" (Obs.Json.escape t.r_analysis);
  Buffer.add_string b "      \"summary\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      bpf b "\"%s\": \"%s\"" (Obs.Json.escape k) (Obs.Json.escape v))
    t.r_summary;
  Buffer.add_string b "},\n      \"columns\": ";
  add_string_array b t.r_columns;
  Buffer.add_string b ",\n      \"rows\": [";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n        ";
      add_string_array b row)
    t.r_rows;
  if t.r_rows <> [] then Buffer.add_string b "\n      ";
  Buffer.add_string b "]\n    }"

let json_of_reports reports =
  let b = Buffer.create 4096 in
  bpf b "{\n  \"schema_version\": %d,\n  \"reports\": [" schema_version;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      add_report b r)
    reports;
  if reports <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

let save ~path reports =
  let oc = open_out_bin path in
  output_string oc (json_of_reports reports);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Text table *)

let render ppf t =
  Format.fprintf ppf "== analysis: %s ==@," t.r_analysis;
  if t.r_summary <> [] then
    Format.fprintf ppf "%s@,"
      (String.concat "  "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) t.r_summary));
  if t.r_columns <> [] then begin
    let ncols = List.length t.r_columns in
    let widths = Array.make ncols 0 in
    let measure row =
      List.iteri
        (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
        row
    in
    measure t.r_columns;
    List.iter measure t.r_rows;
    let pad i c =
      (* last column unpadded: keeps lines free of trailing spaces *)
      if i = ncols - 1 then c
      else c ^ String.make (widths.(i) - String.length c) ' '
    in
    let line row =
      String.concat "  " (List.mapi pad row)
    in
    Format.fprintf ppf "%s@," (line t.r_columns);
    List.iter (fun row -> Format.fprintf ppf "%s@," (line row)) t.r_rows
  end
