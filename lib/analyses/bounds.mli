(** Bounds checking / check elimination client (three-valued verdicts in
    the style of Gange et al., over the interprocedurally substituted
    DEF/USE regions).  Registered as ["bounds"]. *)

val name : string

type verdict = Safe | Unsafe | Maybe

val verdict_name : verdict -> string

val classify : extents:int option list -> Regions.Region.t -> verdict
(** {!Regions.Region.extent_check} first, then the solver-free triplet
    bounding-box fallback for verdicts the (possibly budget-degraded)
    entailment path left unknown. *)

val run : Analysis.ctx -> Report.t * Fault.Diag.t list
(** Columns: Proc, Array, Mode, Line, Via (callee for call-propagated
    accesses), Verdict, LB, UB, Stride, Inspector.  Every [unsafe]
    verdict emits an error diagnostic, every [maybe] a ["runtime-check"]
    warning — the residual checks a bounds-checking compiler must keep.
    The Inspector column names the runtime-inspector target for every
    undecidable access: the index array behind an [A(idx(i))] subscript
    when one is known, ["extent"] otherwise, ["-"] on decided rows.  The
    summary carries [sparse_accesses] (accesses through an index array),
    [sparse_proven] (those proven safe via declared index-array
    properties) and [inspector_entries] (= the maybe count). *)
