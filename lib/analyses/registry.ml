(* Explicit builtin list: side-effect registration from library
   initializers is link-order dependent in wrapped libraries, so the three
   shipped clients are enumerated here and [register] exists for
   out-of-tree ones. *)

let builtin : (module Analysis.CLIENT) list =
  [
    (module Bounds);
    (module Permissions);
    (module Regions_client);
    (module Diffcheck);
  ]

let extra : (module Analysis.CLIENT) list ref = ref []

let all () = builtin @ List.rev !extra

let find name =
  List.find_opt
    (fun (module C : Analysis.CLIENT) -> String.equal C.name name)
    (all ())

let names () = List.map (fun (module C : Analysis.CLIENT) -> C.name) (all ())

let register (module C : Analysis.CLIENT) =
  if find C.name <> None then
    invalid_arg (Printf.sprintf "Registry.register: duplicate client %S" C.name);
  extra := (module C : Analysis.CLIENT) :: !extra

let parse_selection s =
  let tokens =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let unknown = List.filter (fun t -> find t = None) tokens in
  if unknown <> [] then
    Error
      (Printf.sprintf "unknown analyses: %s (available: %s)"
         (String.concat ", " unknown)
         (String.concat ", " (names ())))
  else Ok tokens

let run_selected ~selection ctx =
  List.map
    (fun token ->
      match find token with
      | Some (module C : Analysis.CLIENT) -> C.run ctx
      | None -> invalid_arg ("Registry.run_selected: unknown client " ^ token))
    selection
