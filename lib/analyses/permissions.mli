(** Permission inference client (Dohrau et al. style): per-procedure
    read/write permission preconditions on formal and global arrays, read
    directly off the interprocedural summaries.  Registered as
    ["permissions"]. *)

val name : string

val permission_of_mode : Regions.Mode.t -> string
(** [USE -> "read"], [DEF -> "write"]. *)

val run : Analysis.ctx -> Report.t * Fault.Diag.t list
(** Columns: Proc, Array, Kind (formal|global), Permission, LB, UB, Stride,
    Exact, Count.  A row [p, a, formal, write, lb, ub, s, ...] reads as the
    precondition "callers of [p] must hold write permission on
    [a\[lb:ub:s\]]". *)
