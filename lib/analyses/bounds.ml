(* Bounds checking / check elimination on the convex regions.

   Every USE/DEF access record in the per-PU tables — direct references and
   call-propagated ones (already substituted formal-to-actual) — is compared
   against the array's declared extents.  The packed Fourier-Motzkin
   [implies] path decides the three-valued verdict (Gange et al.'s
   partial-order reading: proven-safe / proven-unsafe / maybe); when a
   solver step budget degrades an entailment, the triplet bounding box
   computed at region-construction time serves as a solver-free fallback.
   Maybes are exactly the residual runtime checks a checking compiler would
   have to keep. *)

open Whirl
open Regions

let name = "bounds"

let c_safe = Obs.Metrics.counter "analyses.bounds.safe"
let c_unsafe = Obs.Metrics.counter "analyses.bounds.unsafe"
let c_maybe = Obs.Metrics.counter "analyses.bounds.maybe"
let c_memo = Obs.Metrics.counter "analyses.bounds.verdict_memo_hits"

type verdict = Safe | Unsafe | Maybe

let verdict_name = function
  | Safe -> "safe"
  | Unsafe -> "unsafe"
  | Maybe -> "maybe"

(* Solver-free fallback: the triplet view is a bounding box of the region
   (computed when the region was built, typically before any budget ran
   out).  Box inside the extents proves safety for unclamped regions; box
   entirely outside on one dimension condemns every described access. *)
let box_verdict ~extents region =
  let dims = Region.dim_list region in
  if List.length dims <> List.length extents then Maybe
  else begin
    let all_in = ref true in
    let some_out = ref false in
    List.iter2
      (fun (d : Region.dim) ext ->
        let lo = match d.Region.lb with Region.Bconst l -> Some l | _ -> None in
        let hi = match d.Region.ub with Region.Bconst u -> Some u | _ -> None in
        (match lo, hi, ext with
        | Some l, Some u, Some e -> if not (l >= 0 && u <= e - 1) then all_in := false
        | _ -> all_in := false);
        (match lo, ext with
        | Some l, Some e when l > e - 1 -> some_out := true
        | _ -> ());
        match hi with Some u when u < 0 -> some_out := true | _ -> ())
      dims extents;
    if !some_out then Unsafe
    else if !all_in && not (Region.is_clamped region) then Safe
    else Maybe
  end

let classify ~extents region =
  match Region.extent_check ~extents region with
  | Region.In_bounds -> Safe
  | Region.Out_of_bounds -> Unsafe
  | Region.Unknown_bounds -> box_verdict ~extents region

let run (ctx : Analysis.ctx) =
  Obs.Span.with_ ~cat:"analysis" ~name:"analysis:bounds" @@ fun () ->
  let m = ctx.Analysis.ctx_module in
  let r = ctx.Analysis.ctx_result in
  (* Call-propagated accesses repeat the same (region, extents) pair at
     every call site; the verdict is a pure function of the region's
     canonical system, its triplets, the clamped flag and the declared
     extents, so one solver round per distinct pair suffices.  The memo is
     local to the run — no state survives into the next pipeline run. *)
  let verdict_memo = Hashtbl.create 64 in
  let classify_memo ~extents region =
    let key =
      ( Linear.System.id region.Region.sys,
        Region.is_clamped region,
        Region.dim_list region,
        extents )
    in
    match Hashtbl.find_opt verdict_memo key with
    | Some v ->
      Obs.Metrics.Counter.incr c_memo;
      v
    | None ->
      let v = classify ~extents region in
      Hashtbl.add verdict_memo key v;
      v
  in
  let safe = ref 0 and unsafe = ref 0 and maybe = ref 0 in
  let sparse_accesses = ref 0 and sparse_proven = ref 0 in
  let inspector_entries = ref 0 in
  let rows = ref [] in
  let diags = ref [] in
  List.iter
    (fun (t : Ipa.Analyze.proc_table) ->
      match Ir.find_pu m t.Ipa.Analyze.t_proc with
      | None -> ()
      | Some pu ->
        List.iter
          (fun (a : Ipa.Collect.access) ->
            match a.Ipa.Collect.ac_mode with
            | Mode.USE | Mode.DEF ->
              let st = a.Ipa.Collect.ac_st in
              let extents = Ipa.Collect.extents_of m pu st in
              let region = a.Ipa.Collect.ac_region in
              let v = (classify_memo ~extents region : verdict) in
              (match v with
              | Safe -> incr safe
              | Unsafe -> incr unsafe
              | Maybe -> incr maybe);
              if Region.is_assumed region then begin
                incr sparse_accesses;
                if v = Safe then incr sparse_proven
              end;
              let arr = Ir.st_name m pu st in
              let line = Lang.Loc.line a.Ipa.Collect.ac_loc in
              let via =
                match a.Ipa.Collect.ac_via with None -> "" | Some c -> c
              in
              let lb, ub, stride = Ipa.Analyze.display_bounds m pu st region in
              (* undecidable access: a runtime-inspector entry naming what a
                 dynamic checker would have to watch — the index array the
                 subscript reads through, or the raw extent check *)
              let inspector =
                match v with
                | Maybe ->
                  incr inspector_entries;
                  Option.value a.Ipa.Collect.ac_sparse ~default:"extent"
                | Safe | Unsafe -> "-"
              in
              rows :=
                [
                  t.Ipa.Analyze.t_proc;
                  arr;
                  Mode.to_string a.Ipa.Collect.ac_mode;
                  string_of_int line;
                  via;
                  verdict_name v;
                  lb;
                  ub;
                  stride;
                  inspector;
                ]
                :: !rows;
              let where =
                if via = "" then Printf.sprintf "%s %s at line %d" arr
                    (Mode.to_string a.Ipa.Collect.ac_mode) line
                else
                  Printf.sprintf "%s %s via call to %s at line %d" arr
                    (Mode.to_string a.Ipa.Collect.ac_mode) via line
              in
              (match v with
              | Unsafe ->
                diags :=
                  Fault.Diag.make ~severity:Fault.Diag.Error
                    ~site:"analysis.bounds" ~pu:t.Ipa.Analyze.t_proc
                    ~action:"report"
                    (Printf.sprintf "%s: proven out of bounds" where)
                  :: !diags
              | Maybe ->
                diags :=
                  Fault.Diag.make ~site:"analysis.bounds"
                    ~pu:t.Ipa.Analyze.t_proc ~action:"runtime-check"
                    (Printf.sprintf "%s: not proven; keep runtime check" where)
                  :: !diags
              | Safe -> ())
            | Mode.FORMAL | Mode.PASSED | Mode.RUSE | Mode.RDEF -> ())
          t.Ipa.Analyze.t_accesses)
    r.Ipa.Analyze.r_tables;
  Obs.Metrics.Counter.add c_safe !safe;
  Obs.Metrics.Counter.add c_unsafe !unsafe;
  Obs.Metrics.Counter.add c_maybe !maybe;
  let total = !safe + !unsafe + !maybe in
  let report =
    Report.make ~analysis:name
      ~summary:
        [
          ("accesses", string_of_int total);
          ("safe", string_of_int !safe);
          ("unsafe", string_of_int !unsafe);
          ("maybe", string_of_int !maybe);
          ("checks_eliminated", string_of_int !safe);
          ("residual_checks", string_of_int !maybe);
          ("sparse_accesses", string_of_int !sparse_accesses);
          ("sparse_proven", string_of_int !sparse_proven);
          ("inspector_entries", string_of_int !inspector_entries);
        ]
      ~columns:
        [
          "Proc"; "Array"; "Mode"; "Line"; "Via"; "Verdict"; "LB"; "UB";
          "Stride"; "Inspector";
        ]
      (List.rev !rows)
  in
  (report, List.rev !diags)
