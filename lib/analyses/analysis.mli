(** The client-analysis interface: what a consumer of the region core must
    provide to run inside the pipeline and report through the versioned
    {!Report} surface.

    A client sees the finished interprocedural analysis — the lowered
    module plus the {!Ipa.Analyze.result} with per-PU access tables
    (direct accesses and call-propagated ones, already substituted
    formal-to-actual) and per-procedure summaries — and derives its own
    verdicts from it.  Clients must be deterministic functions of that
    input: the pipeline promises byte-identical reports at any [--jobs]
    setting, which holds exactly because the engine's result is itself
    schedule-invariant. *)

type ctx = {
  ctx_module : Whirl.Ir.module_;
  ctx_result : Ipa.Analyze.result;
}

module type CLIENT = sig
  val name : string
  (** Selector token for [uhc --analyses <name>,...]; unique. *)

  val run : ctx -> Report.t * Fault.Diag.t list
  (** One report plus any diagnostics to merge into the pipeline's
      diagnostics stream (e.g. a proven out-of-bounds access, or a
      residual runtime-check location). *)
end
