(* Differential harness: static verdicts vs the interpreter.

   The module is executed once under [Interp.run ~record_oob:true], which
   collects every out-of-bounds access of the run instead of trapping on
   the first.  Each observed fault is then looked up in the bounds
   verdict table under its executing procedure, array, direction and
   source line, and two soundness obligations are checked:

   - no proven-safe access may fault: if every verdict row at the fault's
     key says safe, the static analysis promised something the runtime
     refuted — a genuine analysis bug, reported as [safe_faults];
   - inspector coverage: every fault must sit under at least one
     maybe/unsafe row (i.e. a runtime-inspector entry or a proven
     violation).  A fault with no covering row means the analysis missed
     the access entirely, reported as [uncovered].

   Both counters must be zero for [ok=true].  The check is a pure
   function of the module and the analysis result, so its report is
   byte-identical across --jobs settings and solver cores like every
   other client. *)

open Whirl
open Regions

let name = "diffcheck"

let c_oob = Obs.Metrics.counter "analyses.diffcheck.oob_events"
let c_safe_faults = Obs.Metrics.counter "analyses.diffcheck.safe_faults"
let c_uncovered = Obs.Metrics.counter "analyses.diffcheck.uncovered"

type verdicts = { mutable v_safe : int; mutable v_other : int }

let run (ctx : Analysis.ctx) =
  Obs.Span.with_ ~cat:"analysis" ~name:"analysis:diffcheck" @@ fun () ->
  let m = ctx.Analysis.ctx_module in
  let r = ctx.Analysis.ctx_result in
  (* verdict table: (proc, array, mode, line) -> safe/other row counts,
     over direct and call-propagated USE/DEF accesses, classified exactly
     like the bounds client (shared memo keyed on region + extents) *)
  let memo = Hashtbl.create 64 in
  let classify ~extents region =
    let key =
      ( Linear.System.id region.Region.sys,
        Region.is_clamped region,
        Region.dim_list region,
        extents )
    in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v = Bounds.classify ~extents region in
      Hashtbl.add memo key v;
      v
  in
  let table : (string * string * Mode.t * int, verdicts) Hashtbl.t =
    Hashtbl.create 256
  in
  let n_rows = ref 0 in
  List.iter
    (fun (t : Ipa.Analyze.proc_table) ->
      match Ir.find_pu m t.Ipa.Analyze.t_proc with
      | None -> ()
      | Some pu ->
        List.iter
          (fun (a : Ipa.Collect.access) ->
            match a.Ipa.Collect.ac_mode with
            | Mode.USE | Mode.DEF ->
              let st = a.Ipa.Collect.ac_st in
              let extents = Ipa.Collect.extents_of m pu st in
              let v = classify ~extents a.Ipa.Collect.ac_region in
              let key =
                ( t.Ipa.Analyze.t_proc,
                  Ir.st_name m pu st,
                  a.Ipa.Collect.ac_mode,
                  Lang.Loc.line a.Ipa.Collect.ac_loc )
              in
              incr n_rows;
              let c =
                match Hashtbl.find_opt table key with
                | Some c -> c
                | None ->
                  let c = { v_safe = 0; v_other = 0 } in
                  Hashtbl.add table key c;
                  c
              in
              (match v with
              | Bounds.Safe -> c.v_safe <- c.v_safe + 1
              | Bounds.Unsafe | Bounds.Maybe -> c.v_other <- c.v_other + 1)
            | Mode.FORMAL | Mode.PASSED | Mode.RUSE | Mode.RDEF -> ())
          t.Ipa.Analyze.t_accesses)
    r.Ipa.Analyze.r_tables;
  (* one recorded run; faults are collected, not trapped *)
  let outcome = Interp.run ~record_oob:true m in
  let safe_faults = ref 0 and uncovered = ref 0 in
  let rows = ref [] in
  let diags = ref [] in
  List.iter
    (fun (o : Interp.oob) ->
      let mode = if o.Interp.oob_write then Mode.DEF else Mode.USE in
      let key = (o.Interp.oob_pu, o.Interp.oob_array, mode, o.Interp.oob_line) in
      let safe, other =
        match Hashtbl.find_opt table key with
        | Some c -> (c.v_safe, c.v_other)
        | None -> (0, 0)
      in
      let covered = other > 0 in
      let safe_fault = (not covered) && safe > 0 in
      if safe_fault then incr safe_faults;
      if not covered then begin
        incr uncovered;
        diags :=
          Fault.Diag.make
            ~severity:(if safe_fault then Fault.Diag.Error else Fault.Diag.Warning)
            ~site:"analysis.diffcheck" ~pu:o.Interp.oob_pu ~action:"report"
            (Printf.sprintf
               "%s %s at line %d faulted at runtime (%s) but %s"
               o.Interp.oob_array
               (Mode.to_string mode)
               o.Interp.oob_line
               (String.concat ","
                  (List.map string_of_int o.Interp.oob_coords))
               (if safe_fault then "was proven safe"
                else "has no covering verdict row"))
          :: !diags
      end;
      rows :=
        [
          o.Interp.oob_pu;
          o.Interp.oob_array;
          Mode.to_string mode;
          string_of_int o.Interp.oob_line;
          String.concat "," (List.map string_of_int o.Interp.oob_coords);
          (if o.Interp.oob_write then "write" else "read");
          (if covered then "yes" else "no");
          (if safe_fault then "yes" else "no");
        ]
        :: !rows)
    outcome.Interp.out_oob;
  let n_oob = List.length outcome.Interp.out_oob in
  let ok = !safe_faults = 0 && !uncovered = 0 in
  Obs.Metrics.Counter.add c_oob n_oob;
  Obs.Metrics.Counter.add c_safe_faults !safe_faults;
  Obs.Metrics.Counter.add c_uncovered !uncovered;
  let report =
    Report.make ~analysis:name
      ~summary:
        [
          ("verdict_rows", string_of_int !n_rows);
          ("steps", string_of_int outcome.Interp.out_steps);
          ("oob_events", string_of_int n_oob);
          ("covered", string_of_int (n_oob - !uncovered));
          ("uncovered", string_of_int !uncovered);
          ("safe_faults", string_of_int !safe_faults);
          ("ok", if ok then "true" else "false");
        ]
      ~columns:
        [
          "Proc"; "Array"; "Mode"; "Line"; "Coords"; "Kind"; "Covered";
          "SafeFault";
        ]
      (List.rev !rows)
  in
  (report, List.rev !diags)
