(** The array-region table itself, as a client report (same rows as the
    [.rgn] file).  Registered as ["regions"]. *)

val name : string
val run : Analysis.ctx -> Report.t * Fault.Diag.t list
