type ctx = {
  ctx_module : Whirl.Ir.module_;
  ctx_result : Ipa.Analyze.result;
}

module type CLIENT = sig
  val name : string
  val run : ctx -> Report.t * Fault.Diag.t list
end
