(* The classic .rgn table, re-published through the client-analysis report
   surface so all three consumers of the region core share one output
   path (and Dragon can render any of them with the same view). *)

let name = "regions"

let run (ctx : Analysis.ctx) =
  Obs.Span.with_ ~cat:"analysis" ~name:"analysis:regions" @@ fun () ->
  let r = ctx.Analysis.ctx_result in
  let rows = List.map Rgnfile.Row.to_fields r.Ipa.Analyze.r_rows in
  let report =
    Report.make ~analysis:name
      ~summary:
        [
          ("rows", string_of_int (List.length rows));
          ("procedures", string_of_int (List.length r.Ipa.Analyze.r_infos));
        ]
      ~columns:Rgnfile.Row.header rows
  in
  (report, [])
