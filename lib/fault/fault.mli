(** Deterministic, seed-driven fault injection.

    The pipeline calls {!inject} at tagged points; whether a point fires is
    a pure function of (seed, site, key) — the MD5 of the three mapped to a
    uniform draw in [0,1) and compared against the configured rate.  No
    counters or clocks are involved, so a given spec fires at exactly the
    same points on every run and at any [--jobs] setting; tests rely on
    this to assert byte-identity of the non-faulted remainder.

    Off by default: with no spec installed, {!inject} is a single atomic
    load (the {!Obs.Span} discipline).  Intended for tests and benchmarks
    only — production tolerance paths (cache self-healing, per-PU
    isolation, solver degradation) are exercised by injecting here. *)

type site =
  | Io_read  (** store file reads ("store.read") *)
  | Io_write  (** store file writes ("store.write") *)
  | Marshal  (** store entry decode ("store.marshal") *)
  | Pool  (** per-PU engine work on the domain pool ("pool") *)
  | Solver  (** linear-solver queries ("solver") *)

val all_sites : site list
val site_name : site -> string
val site_of_name : string -> site option

type spec = {
  sp_site : site;
  sp_rate : float;  (** firing probability in [0,1] *)
  sp_seed : int;
  sp_only : string option;
      (** when set, only keys containing this substring are eligible —
          lets a test poison one named PU ("pool:1.0:0:main") *)
}

exception Injected of site * string
(** Raised by {!inject} when the point fires; the string is the key. *)

val parse_spec : string -> (spec list, string) result
(** Grammar [SITE:RATE:SEED[:ONLY]]; [SITE] is a {!site_name} or ["all"]
    (which expands to one spec per site). *)

val parse_specs : string list -> (spec list, string) result
(** All-or-nothing over {!parse_spec}; the concatenated expansion. *)

val configure : spec list -> unit
(** Install the specs (replacing any previous ones); enables injection
    when the list is non-empty. *)

val clear : unit -> unit
val enabled : unit -> bool

val current_specs : unit -> spec list
(** The installed specs, in {!configure} order. *)

val spec_to_string : spec -> string
(** Render one spec back into the {!parse_spec} grammar — how a
    coordinator ships its fault configuration to shard workers. *)

val fires : site -> key:string -> bool
(** The pure decision, without raising or counting. *)

val inject : site -> key:string -> unit
(** @raise Injected when an installed spec fires on (site, key); counts
    the [fault.injected.<site>] metric first.  No-op when disabled. *)

val injected_count : site -> int
(** Cumulative fired count for the site (process lifetime). *)

(** Structured degradation diagnostics — what faulted, how bad, and what
    the pipeline did instead of aborting.  [uhc --diagnostics FILE] writes
    these as JSON ([{"diagnostics": [...]}], validated by
    [bench check-json]). *)
module Diag : sig
  type severity = Error | Warning

  type t = {
    d_site : string;  (** injection-site or subsystem name *)
    d_severity : severity;
    d_pu : string;  (** PU name, source file, or ["*"] *)
    d_action : string;  (** recovery action taken *)
    d_detail : string;
  }

  val make :
    ?severity:severity ->
    site:string ->
    pu:string ->
    action:string ->
    string ->
    t
  (** [severity] defaults to [Warning] — the run survived. *)

  val severity_name : severity -> string

  val compare : t -> t -> int
  (** Total order on content; {!save} sorts with it so the JSON report is
      byte-stable across domain-pool schedules. *)

  val pp : Format.formatter -> t -> unit

  val schema_version : int
  (** Version stamped into {!dump_json}'s top-level object; consumers
      ([bench check-json], Dragon) reject unknown or missing versions. *)

  val dump_json : t list -> string
  val save : path:string -> t list -> unit
end
