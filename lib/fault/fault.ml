(* Deterministic, seed-driven fault injection.

   The pipeline calls [inject site ~key] at a handful of tagged points
   (store reads/writes, marshal decode, pool workers, solver queries).
   Whether a point fires is a pure function of (seed, site, key): the first
   8 bytes of an MD5 over the three are mapped to a uniform in [0,1) and
   compared against the configured rate.  No counters, no clocks — the same
   spec over the same inputs fires at exactly the same points whatever the
   domain-pool schedule, which is what makes injected-fault runs
   reproducible and lets tests assert byte-identity of the non-faulted
   remainder.

   Off by default with a single-branch fast path: when no spec is
   installed, [inject] is one atomic load ([enabled ()] = false), the same
   discipline [Obs.Span]/[Obs.Metrics] follow. *)

type site = Io_read | Io_write | Marshal | Pool | Solver

let all_sites = [ Io_read; Io_write; Marshal; Pool; Solver ]

let site_name = function
  | Io_read -> "store.read"
  | Io_write -> "store.write"
  | Marshal -> "store.marshal"
  | Pool -> "pool"
  | Solver -> "solver"

let site_of_name = function
  | "store.read" -> Some Io_read
  | "store.write" -> Some Io_write
  | "store.marshal" -> Some Marshal
  | "pool" -> Some Pool
  | "solver" -> Some Solver
  | _ -> None

type spec = {
  sp_site : site;
  sp_rate : float;  (* probability in [0,1] that a point fires *)
  sp_seed : int;
  sp_only : string option;  (* substring filter over injection keys *)
}

exception Injected of site * string

let () =
  Printexc.register_printer (function
    | Injected (site, key) ->
      Some (Printf.sprintf "Fault.Injected(%s, %S)" (site_name site) key)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Spec grammar: SITE:RATE:SEED[:ONLY]; SITE may be "all". *)

let parse_spec s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ':' s with
  | site_s :: rate_s :: seed_s :: rest -> (
    let sites =
      if site_s = "all" then Some all_sites
      else Option.map (fun x -> [ x ]) (site_of_name site_s)
    in
    match sites with
    | None ->
      fail "unknown fault site %S (store.read|store.write|store.marshal|pool|solver|all)"
        site_s
    | Some sites -> (
      match (float_of_string_opt rate_s, int_of_string_opt seed_s) with
      | Some rate, Some seed when rate >= 0. && rate <= 1. ->
        (* ONLY is the remainder verbatim: injection keys contain colons
           ("summarize:main"), so the filter must be allowed to as well *)
        let only =
          match rest with [] -> None | _ -> Some (String.concat ":" rest)
        in
        Ok
          (List.map
             (fun sp_site ->
               { sp_site; sp_rate = rate; sp_seed = seed; sp_only = only })
             sites)
      | Some _, Some _ -> fail "fault rate %S out of [0,1]" rate_s
      | _ -> fail "malformed fault spec %S (expected SITE:RATE:SEED[:ONLY])" s))
  | _ -> fail "malformed fault spec %S (expected SITE:RATE:SEED[:ONLY])" s

let parse_specs strings =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | s :: rest -> (
      match parse_spec s with
      | Ok specs -> go (specs :: acc) rest
      | Error _ as e -> e)
  in
  go [] strings

(* ------------------------------------------------------------------ *)
(* Global configuration: an immutable spec array behind one atomic, so the
   hot-path read is a single load and reconfiguration never tears. *)

let state : spec array Atomic.t = Atomic.make [||]
let on = Atomic.make false

let configure specs =
  Atomic.set state (Array.of_list specs);
  Atomic.set on (specs <> [])

let clear () =
  Atomic.set state [||];
  Atomic.set on false

let enabled () = Atomic.get on
let current_specs () = Array.to_list (Atomic.get state)

let spec_to_string sp =
  (* the inverse of [parse_spec], so a configuration can be shipped to a
     worker process and re-parsed there *)
  Printf.sprintf "%s:%g:%d%s" (site_name sp.sp_site) sp.sp_rate sp.sp_seed
    (match sp.sp_only with None -> "" | Some only -> ":" ^ only)

(* one injected-faults counter per site (registered eagerly; counters count
   regardless of the Obs.Metrics enable flag, like the engine's) *)
let counters =
  List.map
    (fun s -> (s, Obs.Metrics.counter ("fault.injected." ^ site_name s)))
    all_sites

let injected_count site = Obs.Metrics.Counter.get (List.assq site counters)

(* ------------------------------------------------------------------ *)
(* The decision function: MD5(seed | site | key) -> uniform in [0,1). *)

let uniform ~seed site ~key =
  let d =
    Digest.string (string_of_int seed ^ "|" ^ site_name site ^ "|" ^ key)
  in
  let bits = ref 0 in
  for i = 0 to 5 do
    bits := (!bits lsl 8) lor Char.code d.[i]
  done;
  float_of_int !bits /. 281474976710656. (* 2^48 *)

let contains_sub ~sub s =
  let ns = String.length s and nb = String.length sub in
  let rec go i = i + nb <= ns && (String.sub s i nb = sub || go (i + 1)) in
  nb = 0 || go 0

let spec_fires sp site ~key =
  sp.sp_site = site
  && (match sp.sp_only with
     | None -> true
     | Some sub -> contains_sub ~sub key)
  && sp.sp_rate > 0.
  && uniform ~seed:sp.sp_seed site ~key < sp.sp_rate

let fires site ~key =
  Atomic.get on
  && Array.exists (fun sp -> spec_fires sp site ~key) (Atomic.get state)

let inject site ~key =
  if Atomic.get on then
    if Array.exists (fun sp -> spec_fires sp site ~key) (Atomic.get state)
    then begin
      Obs.Metrics.Counter.incr (List.assq site counters);
      Obs.Log.debug "fault.injected" (fun () ->
          [ ("site", site_name site); ("key", key) ]);
      raise (Injected (site, key))
    end

(* ------------------------------------------------------------------ *)
(* Structured diagnostics: what faulted, how bad, and what the pipeline
   degraded to instead of aborting.  These are what --diagnostics writes
   and bench check-json validates. *)

module Diag = struct
  type severity = Error | Warning

  type t = {
    d_site : string;  (* injection-site or subsystem name *)
    d_severity : severity;
    d_pu : string;  (* PU name, source file, or "*" *)
    d_action : string;  (* recovery action taken *)
    d_detail : string;
  }

  let make ?(severity = Warning) ~site ~pu ~action detail =
    { d_site = site; d_severity = severity; d_pu = pu; d_action = action;
      d_detail = detail }

  let severity_name = function Error -> "error" | Warning -> "warning"

  let compare a b =
    compare
      (a.d_site, a.d_pu, a.d_action, a.d_detail, severity_name a.d_severity)
      (b.d_site, b.d_pu, b.d_action, b.d_detail, severity_name b.d_severity)

  let pp ppf d =
    Format.fprintf ppf "%s: %s: pu=%s action=%s %s"
      (severity_name d.d_severity) d.d_site d.d_pu d.d_action d.d_detail

  let to_json d =
    Printf.sprintf
      "{\"site\": \"%s\", \"severity\": \"%s\", \"pu\": \"%s\", \"action\": \
       \"%s\", \"detail\": \"%s\"}"
      (Obs.Json.escape d.d_site)
      (severity_name d.d_severity)
      (Obs.Json.escape d.d_pu) (Obs.Json.escape d.d_action)
      (Obs.Json.escape d.d_detail)

  let schema_version = 1

  let dump_json diags =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "{\n  \"schema_version\": %d,\n  \"diagnostics\": ["
         schema_version);
    List.iteri
      (fun i d ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n    ";
        Buffer.add_string b (to_json d))
      diags;
    Buffer.add_string b "\n  ]\n}\n";
    Buffer.contents b

  let save ~path diags =
    let oc = open_out_bin path in
    output_string oc (dump_json (List.sort compare diags));
    close_out oc
end
