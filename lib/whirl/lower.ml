open Lang

module SM = Sema.String_map

type env = {
  global : Symtab.t;
  local : Symtab.t;
  symbols : Sema.symbol SM.t;
  lang : Ast.language;
  proc_text : (string, int) Hashtbl.t;  (* proc name -> global-encoded st *)
}

let ty_of_sig st (s : Sema.array_sig) =
  Symtab.intern_ty st
    (Symtab.Ty_array
       { elem = s.Sema.a_type; dims = s.Sema.a_dims;
         contiguous = s.Sema.a_contiguous })

(* resolve a name to a WN st index (local first, then global) *)
let lookup_st env name =
  match Symtab.find_st env.local name with
  | Some idx -> Some idx
  | None -> (
    match Symtab.find_st env.global name with
    | Some idx -> Some (Ir.encode_global idx)
    | None -> None)

let sym_of env name = SM.find_opt name env.symbols

let dtype_of_sym = function
  | Sema.Sym_scalar (d, _) -> d
  | Sema.Sym_array (s, _) -> s.Sema.a_type
  | Sema.Sym_const _ -> Ast.Int_t

(* ------------------------------------------------------------------ *)
(* Expressions *)

let binop_operator = function
  | Ast.Add -> Wn.OPR_ADD
  | Ast.Sub -> Wn.OPR_SUB
  | Ast.Mul -> Wn.OPR_MPY
  | Ast.Div -> Wn.OPR_DIV
  | Ast.Mod -> Wn.OPR_MOD
  | Ast.Eq -> Wn.OPR_EQ
  | Ast.Ne -> Wn.OPR_NE
  | Ast.Lt -> Wn.OPR_LT
  | Ast.Le -> Wn.OPR_LE
  | Ast.Gt -> Wn.OPR_GT
  | Ast.Ge -> Wn.OPR_GE
  | Ast.And -> Wn.OPR_LAND
  | Ast.Or -> Wn.OPR_LIOR
  | Ast.Pow -> Wn.OPR_INTRINSIC_OP (* handled separately *)

(* The ARRAY node for a reference a(i1,...,in): row-major zero-based. *)
let rec array_node env name indices loc =
  let st_code =
    match lookup_st env name with
    | Some c -> c
    | None -> Diag.error loc "array %s has no symbol" name
  in
  let dims, elem =
    match sym_of env name with
    | Some (Sema.Sym_array (s, _)) -> (s.Sema.a_dims, s.Sema.a_type)
    | _ -> Diag.error loc "%s is not an array" name
  in
  let lowered =
    List.map2
      (fun idx (lo, _) ->
        let e = lower_expr env idx in
        match lo with
        | Some 0 | None -> e
        | Some l -> Wn.binop ~loc Wn.OPR_SUB e (Wn.intconst ~loc l))
      indices dims
  in
  let extents =
    List.map
      (fun (lo, hi) ->
        match lo, hi with
        | Some l, Some h when h >= l -> Wn.intconst ~loc (h - l + 1)
        | _ -> Wn.intconst ~loc 0)
      dims
  in
  (* Fortran is column-major in source: reverse to row-major *)
  let lowered, extents =
    match env.lang with
    | Ast.Fortran -> (List.rev lowered, List.rev extents)
    | Ast.C -> (lowered, extents)
  in
  Wn.array ~loc ~elem_size:(Ast.dtype_size elem) ~base:(Wn.lda ~loc st_code)
    ~dims:extents lowered

and lower_expr env (e : Ast.expr) : Wn.t =
  match e with
  | Ast.Int_lit n -> Wn.intconst n
  | Ast.Real_lit f -> Wn.fltconst f
  | Ast.Str_lit s -> Wn.strconst s
  | Ast.Logic_lit b -> Wn.intconst (if b then 1 else 0)
  | Ast.Var_ref (name, loc) -> (
    match sym_of env name with
    | Some (Sema.Sym_const v) -> Wn.intconst ~loc v
    | Some (Sema.Sym_array _) ->
      (* bare array name in value position: address (whole array) *)
      (match lookup_st env name with
      | Some c -> Wn.lda ~loc c
      | None -> Diag.error loc "array %s has no symbol" name)
    | Some (Sema.Sym_scalar (d, _)) -> (
      match lookup_st env name with
      | Some c -> Wn.ldid ~loc ~res:d c
      | None -> Diag.error loc "scalar %s has no symbol" name)
    | None -> Diag.error loc "unresolved name %s" name)
  | Ast.Array_ref (name, indices, loc) ->
    let addr = array_node env name indices loc in
    let res = dtype_of_sym (Option.get (sym_of env name)) in
    Wn.iload ~loc ~res addr
  | Ast.Coarray_ref (name, indices, img, loc) ->
    let addr = array_node env name indices loc in
    let res = dtype_of_sym (Option.get (sym_of env name)) in
    Wn.iload ~loc ~res (Wn.coidx ~loc ~array:addr (lower_expr env img))
  | Ast.Binop (Ast.Pow, a, b) ->
    Wn.intrinsic "pow" [ lower_expr env a; lower_expr env b ]
  | Ast.Binop (op, a, b) ->
    Wn.binop (binop_operator op) (lower_expr env a) (lower_expr env b)
  | Ast.Unop (Ast.Neg, a) -> Wn.unop Wn.OPR_NEG (lower_expr env a)
  | Ast.Unop (Ast.Not, a) -> Wn.unop Wn.OPR_LNOT (lower_expr env a)
  | Ast.Call_expr (name, args, loc) ->
    if Sema.is_intrinsic name then
      Wn.intrinsic ~loc name (List.map (lower_expr env) args)
    else (
      match Hashtbl.find_opt env.proc_text name with
      | Some st -> Wn.call ~loc ~callee:st (List.map (lower_arg env) args)
      | None -> Diag.error loc "call to unknown procedure %s" name)

(* Arguments: lvalue-able things pass their address (Fortran by-reference);
   everything else passes the value. *)
and lower_arg env (e : Ast.expr) : Wn.t =
  match e with
  | Ast.Var_ref (name, loc) -> (
    match sym_of env name with
    | Some (Sema.Sym_array _) -> (
      match lookup_st env name with
      | Some c -> Wn.lda ~loc c
      | None -> Diag.error loc "array %s has no symbol" name)
    | Some (Sema.Sym_scalar _) when env.lang = Ast.Fortran -> (
      match lookup_st env name with
      | Some c -> Wn.lda ~loc c
      | None -> Diag.error loc "scalar %s has no symbol" name)
    | _ -> lower_expr env e)
  | Ast.Array_ref (name, indices, loc) when env.lang = Ast.Fortran ->
    (* address of an element: a section starting point *)
    array_node env name indices loc
  | _ -> lower_expr env e

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec lower_stmt env (s : Ast.stmt) : Wn.t =
  match s with
  | Ast.Assign (Ast.Lvar (name, lloc), rhs, loc) -> (
    ignore lloc;
    match lookup_st env name with
    | Some c -> Wn.stid ~loc c (lower_expr env rhs)
    | None -> Diag.error loc "assignment to unknown %s" name)
  | Ast.Assign (Ast.Larr (name, indices, lloc), rhs, loc) ->
    let addr = array_node env name indices lloc in
    Wn.istore ~loc ~rhs:(lower_expr env rhs) addr
  | Ast.Assign (Ast.Lcoarr (name, indices, img, lloc), rhs, loc) ->
    let addr = array_node env name indices lloc in
    Wn.istore ~loc ~rhs:(lower_expr env rhs)
      (Wn.coidx ~loc:lloc ~array:addr (lower_expr env img))
  | Ast.If (c, t, e, loc) ->
    Wn.if_then_else ~loc ~cond:(lower_expr env c)
      ~then_:(lower_block env loc t) (lower_block env loc e)
  | Ast.Do d ->
    let loc = d.Ast.do_loc in
    let ivar =
      match lookup_st env d.Ast.do_var with
      | Some c -> c
      | None -> Diag.error loc "unknown loop variable %s" d.Ast.do_var
    in
    let step =
      match d.Ast.do_step with
      | None -> Wn.intconst ~loc 1
      | Some e -> lower_expr env e
    in
    Wn.do_loop ~loc ~ivar ~init:(lower_expr env d.Ast.do_lo)
      ~upper:(lower_expr env d.Ast.do_hi) ~step
      (lower_block env loc d.Ast.do_body)
  | Ast.While (c, body, loc) ->
    Wn.while_do ~loc ~cond:(lower_expr env c) (lower_block env loc body)
  | Ast.Call (name, args, loc) -> (
    match Hashtbl.find_opt env.proc_text name with
    | Some st -> Wn.call ~loc ~callee:st (List.map (lower_arg env) args)
    | None ->
      if Sema.is_intrinsic name then
        Wn.intrinsic ~loc name (List.map (lower_expr env) args)
      else Diag.error loc "call to unknown procedure %s" name)
  | Ast.Return (v, loc) -> Wn.return_ ~loc (Option.map (lower_expr env) v)
  | Ast.Print (es, loc) ->
    (* printing reads values: array elements must lower to ILOADs so the
       analysis counts them as USEs (verify's xcr prints are 2 of its 4) *)
    Wn.io ~loc (List.map (lower_expr env) es)
  | Ast.Nop loc -> Wn.nop ~loc ()

and lower_block env loc stmts =
  Wn.block ~loc (List.map (lower_stmt env) stmts)

(* ------------------------------------------------------------------ *)

let lower (prog : Sema.program) : Ir.module_ =
  Obs.Span.with_ ~cat:"phase" ~name:"lower" @@ fun () ->
  let global = Symtab.create () in
  (* global arrays and scalars *)
  SM.iter
    (fun name (s, block) ->
      ignore
        (Symtab.enter_st global ~iprop:s.Sema.a_iprop ~name
           ~ty:(ty_of_sig global s) ~sclass:(Symtab.Sclass_common block)
           ~loc:s.Sema.a_decl_loc ()))
    prog.Sema.prog_globals;
  SM.iter
    (fun name (d, block) ->
      ignore
        (Symtab.enter_st global ~name
           ~ty:(Symtab.intern_ty global (Symtab.Ty_scalar d))
           ~sclass:(Symtab.Sclass_common block) ~loc:Loc.dummy ()))
    prog.Sema.prog_global_scalars;
  (* procedure entry symbols *)
  let proc_text = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let pi = SM.find name prog.Sema.prog_procs in
      let ret =
        match pi.Sema.pi_proc.Ast.proc_kind with
        | Ast.Function d -> d
        | Ast.Program | Ast.Subroutine -> Ast.Int_t
      in
      let st =
        Symtab.enter_st global ~name
          ~ty:(Symtab.intern_ty global (Symtab.Ty_scalar ret))
          ~sclass:Symtab.Sclass_text ~loc:pi.Sema.pi_proc.Ast.proc_loc ()
      in
      Hashtbl.replace proc_text name (Ir.encode_global st))
    prog.Sema.prog_order;
  (* each PU *)
  let pus =
    List.map
      (fun name ->
        let pi = SM.find name prog.Sema.prog_procs in
        let p = pi.Sema.pi_proc in
        let local = Symtab.create () in
        let enter_local n sym sclass =
          match sym with
          | Sema.Sym_scalar (d, _) ->
            ignore
              (Symtab.enter_st local ~name:n
                 ~ty:(Symtab.intern_ty local (Symtab.Ty_scalar d))
                 ~sclass ~loc:p.Ast.proc_loc ())
          | Sema.Sym_array (s, _) ->
            ignore
              (Symtab.enter_st local ~iprop:s.Sema.a_iprop ~name:n
                 ~ty:(ty_of_sig local s) ~sclass ~loc:s.Sema.a_decl_loc ())
          | Sema.Sym_const _ -> ()
        in
        (* formals first, in parameter order *)
        let formal_idxs =
          List.map
            (fun prm ->
              (match SM.find_opt prm pi.Sema.pi_symbols with
              | Some sym -> enter_local prm sym Symtab.Sclass_formal
              | None ->
                Diag.error p.Ast.proc_loc "formal %s has no symbol" prm);
              match Symtab.find_st local prm with
              | Some idx -> idx
              | None -> assert false)
            p.Ast.proc_params
        in
        (* locals: everything not formal, not global, not const *)
        SM.iter
          (fun n sym ->
            match sym with
            | Sema.Sym_scalar (_, Sema.Local) | Sema.Sym_array (_, Sema.Local)
              ->
              if Symtab.find_st local n = None then
                enter_local n sym Symtab.Sclass_auto
            | _ -> ())
          pi.Sema.pi_symbols;
        let env =
          {
            global;
            local;
            symbols = pi.Sema.pi_symbols;
            lang = pi.Sema.pi_language;
            proc_text;
          }
        in
        let body = lower_block env p.Ast.proc_loc p.Ast.proc_body in
        let pu_st = Hashtbl.find proc_text name in
        {
          Ir.pu_name = name;
          pu_st;
          pu_formals = formal_idxs;
          pu_body = Wn.func_entry ~loc:p.Ast.proc_loc ~st:pu_st body;
          pu_symtab = local;
          pu_loc = p.Ast.proc_loc;
          pu_file = pi.Sema.pi_file;
          pu_object = pi.Sema.pi_object;
          pu_lang = pi.Sema.pi_language;
        })
      prog.Sema.prog_order
  in
  { Ir.m_id = Ir.fresh_module_id (); m_global = global; m_pus = pus; m_program = prog }
