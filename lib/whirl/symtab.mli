(** WHIRL symbol tables: the TY table (types) and ST table (symbols).

    WHIRL nodes refer to symbols through [ST_IDX] and to types through
    [TY_IDX] (paper, Section IV-B); the region extractor reads array
    attributes -- element size, data type, dimension sizes, total size,
    memory location -- from here, never from the AST. *)

type ty_idx = int
type st_idx = int

type ty_kind =
  | Ty_scalar of Lang.Ast.dtype
  | Ty_array of {
      elem : Lang.Ast.dtype;
      dims : (int option * int option) list;
          (** source-order [lo, hi]; [None] when symbolic/assumed *)
      contiguous : bool;
          (** false for F90 assumed-shape arrays; {!elem_size} is then
              negative, per the WHIRL convention the paper relies on to
              "detect whether the array in Fortran90 is non-contiguous" *)
    }

type storage =
  | Sclass_auto            (** procedure-local *)
  | Sclass_formal
  | Sclass_common of string  (** COMMON block / C file scope *)
  | Sclass_text            (** procedure entry symbols *)

type st_entry = {
  st_name : string;
  st_ty : ty_idx;
  st_sclass : storage;
  st_loc : Lang.Loc.t;
  st_iprop : Lang.Iprop.t;
      (** declared index-array properties; {!Lang.Iprop.none} for ordinary
          symbols.  Serialized with the symtab (and folded into the engine's
          content keys: editing a directive re-analyzes its users). *)
  mutable st_mem_loc : int;  (** virtual address assigned by {!Layout} *)
}

type t

val create : unit -> t

val intern_ty : t -> ty_kind -> ty_idx
(** Structurally interned: equal kinds share an index. *)

val ty : t -> ty_idx -> ty_kind

val enter_st :
  t ->
  ?iprop:Lang.Iprop.t ->
  name:string ->
  ty:ty_idx ->
  sclass:storage ->
  loc:Lang.Loc.t ->
  unit ->
  st_idx
val st : t -> st_idx -> st_entry
val find_st : t -> string -> st_idx option
(** Lookup by name; with both scopes in one table per PU, names are unique
    within a procedure's view. *)

val st_count : t -> int
val iter_st : t -> (st_idx -> st_entry -> unit) -> unit

val elem_size : t -> ty_idx -> int
(** Element size in bytes for arrays, scalar size for scalars; negative for
    non-contiguous arrays (the magnitude is the true size). *)

val dtype_of_ty : t -> ty_idx -> Lang.Ast.dtype

val array_dims : t -> ty_idx -> (int option * int option) list
(** @raise Invalid_argument on a scalar type. *)

val total_elems : t -> ty_idx -> int
(** Product of known dimension extents; 0 when any extent is unknown (the
    paper: "For variable length arrays, the size of entire array will be
    displayed as zero"). *)

val size_bytes : t -> ty_idx -> int
(** [total_elems * elem_size]; 0 for variable-length arrays. *)

val pp_ty : t -> Format.formatter -> ty_idx -> unit
val pp_st : t -> Format.formatter -> st_idx -> unit
