(** Deterministic virtual-address assignment.

    The paper's Mem_Loc column shows the address of each array "in
    hexadecimal. It helps the user to find arrays pointing to the same
    memory location."  A real compiler reads these from the linker/stack
    layout; we simulate with a reproducible layout pass: global symbols are
    placed sequentially from {!global_page}, each procedure's formals and
    locals from a per-procedure page.  Addresses are 16-byte aligned, and a
    global array keeps one address program-wide. *)

val global_page : int
val local_page : int -> int
(** Page of the [i]-th procedure. *)

val assign : Ir.module_ -> unit
(** Fills [st_mem_loc] of every symbol in every table. *)
