let operator_symbol = function
  | Wn.OPR_ADD -> "+"
  | Wn.OPR_SUB -> "-"
  | Wn.OPR_MPY -> "*"
  | Wn.OPR_DIV -> "/"
  | Wn.OPR_MOD -> "mod"
  | Wn.OPR_EQ -> "=="
  | Wn.OPR_NE -> "!="
  | Wn.OPR_LT -> "<"
  | Wn.OPR_LE -> "<="
  | Wn.OPR_GT -> ">"
  | Wn.OPR_GE -> ">="
  | Wn.OPR_LAND -> ".and."
  | Wn.OPR_LIOR -> ".or."
  | op -> Wn.operator_name op

(* Reconstruct source-order, source-base subscript expressions from a
   row-major zero-based ARRAY node. *)
let source_indices m pu (w : Wn.t) =
  let n = Wn.num_dim w in
  let st = (Wn.array_base w).Wn.st_idx in
  let dims =
    match Ir.ty_of m pu st with
    | Symtab.Ty_array { dims; _ } -> dims
    | Symtab.Ty_scalar _ -> []
  in
  let internal = List.init n (Wn.array_index w) in
  let source_order =
    match pu.Ir.pu_lang with
    | Lang.Ast.Fortran -> List.rev internal
    | Lang.Ast.C -> internal
  in
  (* undo the zero-based shift *)
  let lows =
    if List.length dims = n then List.map fst dims else List.init n (fun _ -> None)
  in
  List.map2
    (fun e lo ->
      match lo with
      | Some 0 | None -> `Plain e
      | Some l -> `Shifted (e, l))
    source_order lows

let rec pp_expr m pu ppf (w : Wn.t) =
  match w.Wn.operator with
  | Wn.OPR_INTCONST -> Format.fprintf ppf "%d" w.Wn.const_val
  | Wn.OPR_CONST -> Format.fprintf ppf "%g" w.Wn.flt_val
  | Wn.OPR_STRCONST -> Format.fprintf ppf "%S" w.Wn.str_val
  | Wn.OPR_LDID | Wn.OPR_IDNAME | Wn.OPR_LDA ->
    Format.pp_print_string ppf (Ir.st_name m pu w.Wn.st_idx)
  | Wn.OPR_ILOAD -> pp_expr m pu ppf (Wn.kid w 0)
  | Wn.OPR_COIDX ->
    Format.fprintf ppf "%a[%a]" (pp_expr m pu) (Wn.kid w 0) (pp_expr m pu)
      (Wn.kid w 1)
  | Wn.OPR_ARRAY ->
    let name = Ir.st_name m pu (Wn.array_base w).Wn.st_idx in
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf -> function
           | `Plain e -> pp_expr m pu ppf e
           | `Shifted (e, l) ->
             (* print e + l, folding when e is constant *)
             (match e.Wn.operator with
             | Wn.OPR_INTCONST -> Format.fprintf ppf "%d" (e.Wn.const_val + l)
             | Wn.OPR_SUB
               when (Wn.kid e 1).Wn.operator = Wn.OPR_INTCONST
                    && (Wn.kid e 1).Wn.const_val = l ->
               (* (i - l) + l = i *)
               pp_expr m pu ppf (Wn.kid e 0)
             | _ -> Format.fprintf ppf "%a + %d" (pp_expr m pu) e l)))
      (source_indices m pu w)
  | Wn.OPR_NEG -> Format.fprintf ppf "(-%a)" (pp_expr m pu) (Wn.kid w 0)
  | Wn.OPR_LNOT -> Format.fprintf ppf "(.not. %a)" (pp_expr m pu) (Wn.kid w 0)
  | Wn.OPR_MOD ->
    Format.fprintf ppf "mod(%a, %a)" (pp_expr m pu) (Wn.kid w 0) (pp_expr m pu)
      (Wn.kid w 1)
  | Wn.OPR_ADD | Wn.OPR_SUB | Wn.OPR_MPY | Wn.OPR_DIV | Wn.OPR_EQ | Wn.OPR_NE
  | Wn.OPR_LT | Wn.OPR_LE | Wn.OPR_GT | Wn.OPR_GE | Wn.OPR_LAND | Wn.OPR_LIOR
    ->
    Format.fprintf ppf "(%a %s %a)" (pp_expr m pu) (Wn.kid w 0)
      (operator_symbol w.Wn.operator)
      (pp_expr m pu) (Wn.kid w 1)
  | Wn.OPR_INTRINSIC_OP ->
    Format.fprintf ppf "%s(%a)" w.Wn.str_val (pp_args m pu) w
  | Wn.OPR_CALL ->
    Format.fprintf ppf "%s(%a)" (Ir.st_name m pu w.Wn.st_idx) (pp_args m pu) w
  | Wn.OPR_PARM -> pp_expr m pu ppf (Wn.kid w 0)
  | op ->
    Format.fprintf ppf "<%s>" (Wn.operator_name op)

and pp_args m pu ppf w =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (pp_expr m pu) ppf
    (Array.to_list w.Wn.kids)

let rec pp_stmt m pu ppf (w : Wn.t) =
  match w.Wn.operator with
  | Wn.OPR_BLOCK ->
    Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_stmt m pu) ppf
      (Array.to_list w.Wn.kids)
  | Wn.OPR_STID ->
    Format.fprintf ppf "%s = %a" (Ir.st_name m pu w.Wn.st_idx) (pp_expr m pu)
      (Wn.kid w 0)
  | Wn.OPR_ISTORE ->
    Format.fprintf ppf "%a = %a" (pp_expr m pu) (Wn.kid w 1) (pp_expr m pu)
      (Wn.kid w 0)
  | Wn.OPR_DO_LOOP ->
    let iv = Ir.st_name m pu (Wn.kid w 0).Wn.st_idx in
    let step = Wn.kid w 3 in
    let pp_step ppf s =
      match s.Wn.operator with
      | Wn.OPR_INTCONST when s.Wn.const_val = 1 -> ()
      | _ -> Format.fprintf ppf ", %a" (pp_expr m pu) s
    in
    Format.fprintf ppf "@[<v 2>do %s = %a, %a%a@,%a@]@,end do" iv
      (pp_expr m pu) (Wn.kid w 1) (pp_expr m pu) (Wn.kid w 2) pp_step step
      (pp_stmt m pu) (Wn.kid w 4)
  | Wn.OPR_WHILE_DO ->
    Format.fprintf ppf "@[<v 2>do while (%a)@,%a@]@,end do" (pp_expr m pu)
      (Wn.kid w 0) (pp_stmt m pu) (Wn.kid w 1)
  | Wn.OPR_IF ->
    let has_else = Wn.kid_count (Wn.kid w 2) > 0 in
    if has_else then
      Format.fprintf ppf
        "@[<v 2>if (%a) then@,%a@]@,@[<v 2>else@,%a@]@,end if" (pp_expr m pu)
        (Wn.kid w 0) (pp_stmt m pu) (Wn.kid w 1) (pp_stmt m pu) (Wn.kid w 2)
    else
      Format.fprintf ppf "@[<v 2>if (%a) then@,%a@]@,end if" (pp_expr m pu)
        (Wn.kid w 0) (pp_stmt m pu) (Wn.kid w 1)
  | Wn.OPR_CALL ->
    Format.fprintf ppf "call %s(%a)" (Ir.st_name m pu w.Wn.st_idx)
      (pp_args m pu) w
  | Wn.OPR_INTRINSIC_OP ->
    Format.fprintf ppf "call %s(%a)" w.Wn.str_val (pp_args m pu) w
  | Wn.OPR_RETURN ->
    if Wn.kid_count w = 0 then Format.pp_print_string ppf "return"
    else Format.fprintf ppf "return %a" (pp_expr m pu) (Wn.kid w 0)
  | Wn.OPR_IO -> Format.fprintf ppf "print *, %a" (pp_args m pu) w
  | Wn.OPR_NOP -> Format.pp_print_string ppf "continue"
  | _ -> Format.fprintf ppf "! <%s>" (Wn.operator_name w.Wn.operator)

let pp_pu m ppf (pu : Ir.pu) =
  let formals =
    List.map
      (fun idx -> (Symtab.st pu.Ir.pu_symtab idx).Symtab.st_name)
      pu.Ir.pu_formals
  in
  Format.fprintf ppf "@[<v 2>subroutine %s(%s)@,%a@]@,end@." pu.Ir.pu_name
    (String.concat ", " formals)
    (pp_stmt m pu)
    (Wn.kid pu.Ir.pu_body 0)

let pu_to_string m pu = Format.asprintf "%a" (pp_pu m) pu

let module_to_string m =
  String.concat "\n" (List.map (pu_to_string m) m.Ir.m_pus)
