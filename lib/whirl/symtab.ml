type ty_idx = int
type st_idx = int

type ty_kind =
  | Ty_scalar of Lang.Ast.dtype
  | Ty_array of {
      elem : Lang.Ast.dtype;
      dims : (int option * int option) list;
      contiguous : bool;
    }

type storage =
  | Sclass_auto
  | Sclass_formal
  | Sclass_common of string
  | Sclass_text

type st_entry = {
  st_name : string;
  st_ty : ty_idx;
  st_sclass : storage;
  st_loc : Lang.Loc.t;
  st_iprop : Lang.Iprop.t;
  mutable st_mem_loc : int;
}

type t = {
  mutable tys : ty_kind array;
  mutable ty_count : int;
  ty_index : (ty_kind, ty_idx) Hashtbl.t;
  mutable sts : st_entry array;
  mutable st_count : int;
  st_index : (string, st_idx) Hashtbl.t;
}

let dummy_st =
  {
    st_name = "";
    st_ty = 0;
    st_sclass = Sclass_auto;
    st_loc = Lang.Loc.dummy;
    st_iprop = Lang.Iprop.none;
    st_mem_loc = 0;
  }

let create () =
  {
    tys = Array.make 16 (Ty_scalar Lang.Ast.Int_t);
    ty_count = 0;
    ty_index = Hashtbl.create 16;
    sts = Array.make 16 dummy_st;
    st_count = 0;
    st_index = Hashtbl.create 16;
  }

let grow arr count fill =
  if count >= Array.length arr then begin
    let bigger = Array.make (2 * Array.length arr) fill in
    Array.blit arr 0 bigger 0 count;
    bigger
  end
  else arr

let intern_ty t kind =
  match Hashtbl.find_opt t.ty_index kind with
  | Some idx -> idx
  | None ->
    t.tys <- grow t.tys t.ty_count (Ty_scalar Lang.Ast.Int_t);
    let idx = t.ty_count in
    t.tys.(idx) <- kind;
    t.ty_count <- idx + 1;
    Hashtbl.add t.ty_index kind idx;
    idx

let ty t idx =
  if idx < 0 || idx >= t.ty_count then invalid_arg "Symtab.ty: bad index";
  t.tys.(idx)

let enter_st t ?(iprop = Lang.Iprop.none) ~name ~ty ~sclass ~loc () =
  t.sts <- grow t.sts t.st_count dummy_st;
  let idx = t.st_count in
  t.sts.(idx) <-
    {
      st_name = name;
      st_ty = ty;
      st_sclass = sclass;
      st_loc = loc;
      st_iprop = iprop;
      st_mem_loc = 0;
    };
  t.st_count <- idx + 1;
  Hashtbl.replace t.st_index name idx;
  idx

let st t idx =
  if idx < 0 || idx >= t.st_count then invalid_arg "Symtab.st: bad index";
  t.sts.(idx)

let find_st t name = Hashtbl.find_opt t.st_index name

let st_count t = t.st_count

let iter_st t f =
  for i = 0 to t.st_count - 1 do
    f i t.sts.(i)
  done

let elem_size t idx =
  match ty t idx with
  | Ty_scalar d -> Lang.Ast.dtype_size d
  | Ty_array { elem; contiguous; _ } ->
    let z = Lang.Ast.dtype_size elem in
    if contiguous then z else -z

let dtype_of_ty t idx =
  match ty t idx with Ty_scalar d -> d | Ty_array { elem; _ } -> elem

let array_dims t idx =
  match ty t idx with
  | Ty_array { dims; _ } -> dims
  | Ty_scalar _ -> invalid_arg "Symtab.array_dims: scalar type"

let dim_extent (lo, hi) =
  match lo, hi with Some l, Some h when h >= l -> h - l + 1 | _ -> 0

let total_elems t idx =
  match ty t idx with
  | Ty_scalar _ -> 1
  | Ty_array { dims; _ } ->
    List.fold_left
      (fun acc d ->
        let e = dim_extent d in
        if e = 0 then 0 else acc * e)
      1 dims

let size_bytes t idx = total_elems t idx * elem_size t idx

let pp_ty t ppf idx =
  match ty t idx with
  | Ty_scalar d -> Lang.Ast.pp_dtype ppf d
  | Ty_array { elem; dims; contiguous = _ } ->
    Format.fprintf ppf "%a[%a]" Lang.Ast.pp_dtype elem
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
         (fun ppf d -> Format.fprintf ppf "%d" (dim_extent d)))
      dims

let pp_st t ppf idx =
  let e = st t idx in
  let sclass =
    match e.st_sclass with
    | Sclass_auto -> "auto"
    | Sclass_formal -> "formal"
    | Sclass_common b -> "common/" ^ b
    | Sclass_text -> "text"
  in
  Format.fprintf ppf "%s: %a (%s) @@0x%x" e.st_name (pp_ty t) e.st_ty sclass
    e.st_mem_loc
