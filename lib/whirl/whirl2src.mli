(** WHIRL-to-source translation (the whirl2f / whirl2c analog).

    High-level WHIRL keeps enough structure to print a faithful source form;
    subscripts are converted back from the internal row-major zero-based
    convention to the PU's source language (Fortran: reversed, shifted to
    declared lower bounds; C: as stored).  As the paper notes for WHIRL2c,
    the round trip "could incur minor loss of semantics" — e.g. PARAMETER
    constants reappear as literals. *)

val pp_pu : Ir.module_ -> Format.formatter -> Ir.pu -> unit
val pu_to_string : Ir.module_ -> Ir.pu -> string
val module_to_string : Ir.module_ -> string
