let global_page = 0xb7f0_0000
let local_page i = 0x5559_0000 + (i * 0x1_0000)

let align16 n = (n + 15) land lnot 15

let place symtab base =
  let cursor = ref base in
  Symtab.iter_st symtab (fun _ entry ->
      match entry.Symtab.st_sclass with
      | Symtab.Sclass_text -> entry.Symtab.st_mem_loc <- 0
      | _ ->
        entry.Symtab.st_mem_loc <- !cursor;
        let size = max 16 (Symtab.size_bytes symtab entry.Symtab.st_ty) in
        cursor := align16 (!cursor + size))

let assign (m : Ir.module_) =
  place m.Ir.m_global global_page;
  List.iteri (fun i pu -> place pu.Ir.pu_symtab (local_page i)) m.Ir.m_pus
