type operator =
  | OPR_FUNC_ENTRY
  | OPR_BLOCK
  | OPR_DO_LOOP
  | OPR_WHILE_DO
  | OPR_IF
  | OPR_STID
  | OPR_LDID
  | OPR_ISTORE
  | OPR_ILOAD
  | OPR_ARRAY
  | OPR_COIDX
  | OPR_LDA
  | OPR_IDNAME
  | OPR_CALL
  | OPR_PARM
  | OPR_INTCONST
  | OPR_CONST
  | OPR_STRCONST
  | OPR_ADD | OPR_SUB | OPR_MPY | OPR_DIV | OPR_MOD | OPR_NEG
  | OPR_EQ | OPR_NE | OPR_LT | OPR_LE | OPR_GT | OPR_GE
  | OPR_LAND | OPR_LIOR | OPR_LNOT
  | OPR_INTRINSIC_OP
  | OPR_RETURN
  | OPR_IO
  | OPR_NOP

type t = {
  operator : operator;
  kids : t array;
  linenum : Lang.Loc.t;
  offset : int;
  elem_size : int;
  const_val : int;
  flt_val : float;
  str_val : string;
  st_idx : int;
  res : Lang.Ast.dtype option;
}

let base_node operator loc =
  {
    operator;
    kids = [||];
    linenum = loc;
    offset = 0;
    elem_size = 0;
    const_val = 0;
    flt_val = 0.;
    str_val = "";
    st_idx = -1;
    res = None;
  }

let kid_count t = Array.length t.kids

let kid t i =
  if i < 0 || i >= Array.length t.kids then
    invalid_arg "Wn.kid: index out of range";
  t.kids.(i)

let num_dim t =
  if t.operator <> OPR_ARRAY then invalid_arg "Wn.num_dim: not an ARRAY";
  kid_count t lsr 1

let array_base t =
  if t.operator <> OPR_ARRAY then invalid_arg "Wn.array_base: not an ARRAY";
  t.kids.(0)

let array_dim t i =
  let n = num_dim t in
  if i < 0 || i >= n then invalid_arg "Wn.array_dim: dimension out of range";
  t.kids.(1 + i)

let array_index t i =
  let n = num_dim t in
  if i < 0 || i >= n then invalid_arg "Wn.array_index: dimension out of range";
  t.kids.(1 + n + i)

let dloc = Lang.Loc.dummy

let intconst ?(loc = dloc) n =
  { (base_node OPR_INTCONST loc) with const_val = n; res = Some Lang.Ast.Int_t }

let fltconst ?(loc = dloc) f =
  { (base_node OPR_CONST loc) with flt_val = f; res = Some Lang.Ast.Double_t }

let strconst ?(loc = dloc) s =
  { (base_node OPR_STRCONST loc) with str_val = s; res = Some Lang.Ast.Char_t }

let ldid ?(loc = dloc) ~res st =
  { (base_node OPR_LDID loc) with st_idx = st; res = Some res }

let stid ?(loc = dloc) st rhs =
  { (base_node OPR_STID loc) with st_idx = st; kids = [| rhs |] }

let lda ?(loc = dloc) st = { (base_node OPR_LDA loc) with st_idx = st }

let idname ?(loc = dloc) st = { (base_node OPR_IDNAME loc) with st_idx = st }

let array ?(loc = dloc) ~elem_size ~base ~dims indices =
  if List.length dims <> List.length indices then
    invalid_arg "Wn.array: dims and indices must have the same length";
  {
    (base_node OPR_ARRAY loc) with
    elem_size;
    kids = Array.of_list ((base :: dims) @ indices);
  }

let coidx ?(loc = dloc) ~array img =
  { (base_node OPR_COIDX loc) with kids = [| array; img |] }

let iload ?(loc = dloc) ~res addr =
  { (base_node OPR_ILOAD loc) with kids = [| addr |]; res = Some res }

let istore ?(loc = dloc) ~rhs addr =
  { (base_node OPR_ISTORE loc) with kids = [| rhs; addr |] }

let binop ?(loc = dloc) op a b =
  { (base_node op loc) with kids = [| a; b |] }

let unop ?(loc = dloc) op a = { (base_node op loc) with kids = [| a |] }

let intrinsic ?(loc = dloc) name args =
  { (base_node OPR_INTRINSIC_OP loc) with str_val = name; kids = Array.of_list args }

let block ?(loc = dloc) stmts =
  { (base_node OPR_BLOCK loc) with kids = Array.of_list stmts }

let do_loop ?(loc = dloc) ~ivar ~init ~upper ~step body =
  {
    (base_node OPR_DO_LOOP loc) with
    kids = [| idname ~loc ivar; init; upper; step; body |];
    st_idx = ivar;
  }

let while_do ?(loc = dloc) ~cond body =
  { (base_node OPR_WHILE_DO loc) with kids = [| cond; body |] }

let if_then_else ?(loc = dloc) ~cond ~then_ else_ =
  { (base_node OPR_IF loc) with kids = [| cond; then_; else_ |] }

let parm e = { (base_node OPR_PARM e.linenum) with kids = [| e |] }

let call ?(loc = dloc) ~callee args =
  {
    (base_node OPR_CALL loc) with
    st_idx = callee;
    kids = Array.of_list (List.map parm args);
  }

let return_ ?(loc = dloc) v =
  match v with
  | None -> base_node OPR_RETURN loc
  | Some e -> { (base_node OPR_RETURN loc) with kids = [| e |] }

let io ?(loc = dloc) args =
  { (base_node OPR_IO loc) with kids = Array.of_list (List.map parm args) }

let nop ?(loc = dloc) () = base_node OPR_NOP loc

let func_entry ?(loc = dloc) ~st body =
  { (base_node OPR_FUNC_ENTRY loc) with st_idx = st; kids = [| body |] }

let rec preorder f t =
  f t;
  Array.iter (preorder f) t.kids

let rec fold f acc t = Array.fold_left (fold f) (f acc t) t.kids

let count pred t = fold (fun acc n -> if pred n then acc + 1 else acc) 0 t

let rec equal_tree a b =
  a.operator = b.operator
  && a.offset = b.offset
  && a.elem_size = b.elem_size
  && a.const_val = b.const_val
  && a.flt_val = b.flt_val
  && String.equal a.str_val b.str_val
  && a.st_idx = b.st_idx
  && Array.length a.kids = Array.length b.kids
  && Array.for_all2 equal_tree a.kids b.kids

let operator_name = function
  | OPR_FUNC_ENTRY -> "FUNC_ENTRY"
  | OPR_BLOCK -> "BLOCK"
  | OPR_DO_LOOP -> "DO_LOOP"
  | OPR_WHILE_DO -> "WHILE_DO"
  | OPR_IF -> "IF"
  | OPR_STID -> "STID"
  | OPR_LDID -> "LDID"
  | OPR_ISTORE -> "ISTORE"
  | OPR_ILOAD -> "ILOAD"
  | OPR_ARRAY -> "ARRAY"
  | OPR_COIDX -> "COIDX"
  | OPR_LDA -> "LDA"
  | OPR_IDNAME -> "IDNAME"
  | OPR_CALL -> "CALL"
  | OPR_PARM -> "PARM"
  | OPR_INTCONST -> "INTCONST"
  | OPR_CONST -> "CONST"
  | OPR_STRCONST -> "STRCONST"
  | OPR_ADD -> "ADD"
  | OPR_SUB -> "SUB"
  | OPR_MPY -> "MPY"
  | OPR_DIV -> "DIV"
  | OPR_MOD -> "MOD"
  | OPR_NEG -> "NEG"
  | OPR_EQ -> "EQ"
  | OPR_NE -> "NE"
  | OPR_LT -> "LT"
  | OPR_LE -> "LE"
  | OPR_GT -> "GT"
  | OPR_GE -> "GE"
  | OPR_LAND -> "LAND"
  | OPR_LIOR -> "LIOR"
  | OPR_LNOT -> "LNOT"
  | OPR_INTRINSIC_OP -> "INTRINSIC_OP"
  | OPR_RETURN -> "RETURN"
  | OPR_IO -> "IO"
  | OPR_NOP -> "NOP"

let rec pp_indented ppf depth t =
  Format.fprintf ppf "%s%s" (String.make (2 * depth) ' ') (operator_name t.operator);
  (match t.operator with
  | OPR_INTCONST -> Format.fprintf ppf " %d" t.const_val
  | OPR_CONST -> Format.fprintf ppf " %g" t.flt_val
  | OPR_STRCONST -> Format.fprintf ppf " %S" t.str_val
  | OPR_INTRINSIC_OP -> Format.fprintf ppf " %s" t.str_val
  | OPR_ARRAY -> Format.fprintf ppf " ndim=%d esize=%d" (num_dim t) t.elem_size
  | _ -> ());
  if t.st_idx >= 0 then Format.fprintf ppf " st=%d" t.st_idx;
  Format.pp_print_newline ppf ();
  Array.iter (pp_indented ppf (depth + 1)) t.kids

let pp ppf t = pp_indented ppf 0 t
