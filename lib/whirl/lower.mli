(** AST to (high-level) WHIRL lowering.

    Follows the conventions the paper depends on (Section IV-C):

    - array references become [ILOAD(ARRAY)] / [ISTORE(_, ARRAY)] with the
      subscripting kept explicit — this is the "H WHIRL" level where "arrays
      keep their structures" and the ARRAY operator carries the shape;
    - [ARRAY] is emitted row-major and zero-based for both source languages
      (Fortran subscripts are reversed and shifted by their declared lower
      bounds; Dragon's renderer undoes this for display);
    - dimension-size kids of variable extents are [INTCONST 0];
    - whole-array arguments lower to [LDA] parameters (the by-reference
      passing the PASSED access mode summarizes);
    - PARAMETER/#define constants fold to [INTCONST]. *)

val lower : Lang.Sema.program -> Ir.module_
(** @raise Lang.Diag.Frontend_error on references the front end let through
    but the IR cannot express. *)
