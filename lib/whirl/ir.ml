type pu = {
  pu_name : string;
  pu_st : int;
  pu_formals : Symtab.st_idx list;
  pu_body : Wn.t;
  pu_symtab : Symtab.t;
  pu_loc : Lang.Loc.t;
  pu_file : string;
  pu_object : string;
  pu_lang : Lang.Ast.language;
}

type module_ = {
  m_id : int;
  m_global : Symtab.t;
  m_pus : pu list;
  m_program : Lang.Sema.program;
}

let module_counter = ref 0

let fresh_module_id () =
  incr module_counter;
  !module_counter

let global_base = 0x4000_0000

let encode_global idx = idx + global_base
let is_global_idx idx = idx >= global_base

let st_entry m pu idx =
  if is_global_idx idx then Symtab.st m.m_global (idx - global_base)
  else Symtab.st pu.pu_symtab idx

let ty_of m pu idx =
  let e = st_entry m pu idx in
  if is_global_idx idx then Symtab.ty m.m_global e.Symtab.st_ty
  else Symtab.ty pu.pu_symtab e.Symtab.st_ty

let st_name m pu idx = (st_entry m pu idx).Symtab.st_name

let find_pu m name =
  List.find_opt (fun p -> String.equal p.pu_name name) m.m_pus

let pu_count m = List.length m.m_pus
