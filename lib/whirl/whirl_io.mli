(** WHIRL file serialization — the analog of Open64's [.B] files: "The
    front-ends generate a WHIRL file that consists of WHIRL instructions and
    WHIRL symbol tables" (paper, Section IV-B).  [uhc --emit-whirl] writes
    one, and analysis can start from it instead of source, which is exactly
    how the real pipeline decouples front ends from IPA.

    The format is a line-oriented text dump: the global symbol table, then
    each PU with its local table, formals, and its WN tree in preorder with
    explicit depths.  Everything a WN carries (Table I's fields) round-trips
    bit-exactly; floats are written in hexadecimal notation. *)

val write : Ir.module_ -> string

val pu_to_string : Ir.module_ -> Ir.pu -> string
(** The serialized block of one PU exactly as it appears inside {!write}:
    header, formals, local symbol table (including [Mem_Loc]s), and the WN
    tree.  Because the format round-trips bit-exactly, this string is a
    faithful content key for the PU. *)

val symtab_to_string : Symtab.t -> string

val add_pu_content : Buffer.t -> Ir.module_ -> Ir.pu -> unit
(** Appends a compact binary image of everything {!pu_to_string} would
    serialize (header, formals, local symbol table including [Mem_Loc]s,
    the WN tree).  Same content, same bytes — but an order of magnitude
    cheaper to produce, which matters because the engine re-images every PU
    on every invocation to probe its cache.  Never parsed, only hashed. *)

val add_symtab_content : Buffer.t -> Symtab.t -> unit

val pu_digest : Ir.module_ -> Ir.pu -> Digest.t
(** MD5 of {!add_pu_content} — the stable per-PU content hash the
    incremental engine keys its collection cache with.  Note it covers the
    local symbol table but not the global one; the engine combines it with
    {!symtab_digest} of the global table. *)

val symtab_digest : Symtab.t -> Digest.t

val parse : string -> (Ir.module_, string) result
(** The reconstructed module carries a stub semantic program (empty
    procedure bodies, correct kinds and files): enough for the analysis,
    the interpreter, and the writers, but not for re-running Sema. *)

val save : path:string -> Ir.module_ -> unit
val load : path:string -> (Ir.module_, string) result
