(** WHIRL file serialization — the analog of Open64's [.B] files: "The
    front-ends generate a WHIRL file that consists of WHIRL instructions and
    WHIRL symbol tables" (paper, Section IV-B).  [uhc --emit-whirl] writes
    one, and analysis can start from it instead of source, which is exactly
    how the real pipeline decouples front ends from IPA.

    The format is a line-oriented text dump: the global symbol table, then
    each PU with its local table, formals, and its WN tree in preorder with
    explicit depths.  Everything a WN carries (Table I's fields) round-trips
    bit-exactly; floats are written in hexadecimal notation. *)

val write : Ir.module_ -> string

val parse : string -> (Ir.module_, string) result
(** The reconstructed module carries a stub semantic program (empty
    procedure bodies, correct kinds and files): enough for the analysis,
    the interpreter, and the writers, but not for re-running Sema. *)

val save : path:string -> Ir.module_ -> unit
val load : path:string -> (Ir.module_, string) result
