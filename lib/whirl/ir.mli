(** Whole-program WHIRL container.

    Like OpenUH, there is one global symbol table (COMMON blocks, C
    file-scope arrays, procedure entry symbols) and one local table per
    program unit (formals and locals).  WN nodes store a single [st_idx]
    integer; indices at or above {!global_base} address the global table.
    This keeps [Mem_Loc] of a global array identical in every procedure that
    touches it, which is what lets Dragon users "find arrays pointing to the
    same memory location". *)

type pu = {
  pu_name : string;
  pu_st : int;  (** global-encoded index of the entry symbol *)
  pu_formals : Symtab.st_idx list;  (** local indices, parameter order *)
  pu_body : Wn.t;  (** an [OPR_FUNC_ENTRY] *)
  pu_symtab : Symtab.t;
  pu_loc : Lang.Loc.t;
  pu_file : string;
  pu_object : string;
  pu_lang : Lang.Ast.language;
}

type module_ = {
  m_id : int;  (** unique per lowering run: keys caches that must not be
                   shared between independently analyzed modules *)
  m_global : Symtab.t;
  m_pus : pu list;
  m_program : Lang.Sema.program;
}

val fresh_module_id : unit -> int

val global_base : int

val encode_global : Symtab.st_idx -> int
val is_global_idx : int -> bool

val st_entry : module_ -> pu -> int -> Symtab.st_entry
(** Resolve a WN [st_idx] against the right table. *)

val ty_of : module_ -> pu -> int -> Symtab.ty_kind
val st_name : module_ -> pu -> int -> string

val find_pu : module_ -> string -> pu option

val pu_count : module_ -> int
