(** WHIRL nodes (WN).

    The tree mirrors the fields the paper lists in Table I: operator, kid
    count, linenum, offset, element size, number of dimensions, array
    dimensions/indices/base, 64-bit integer constant, ST index.  The
    [OPR_ARRAY] operator follows the WHIRL convention exactly (Section
    IV-C): it is n-ary with [kid_count = 1 + 2n]; kid 0 is the base address,
    kids 1..n the dimension sizes, kids n+1..2n the index expressions
    adjusted to zero lower bound, in row-major order; the address it denotes
    is [base + z * sum_i (y_i * prod_{j>i} h_j)]. *)

type operator =
  | OPR_FUNC_ENTRY
  | OPR_BLOCK
  | OPR_DO_LOOP  (** kids: idname, init, upper-bound, step, body *)
  | OPR_WHILE_DO (** kids: cond, body *)
  | OPR_IF       (** kids: cond, then-block, else-block *)
  | OPR_STID     (** scalar store; st_idx = target, kid 0 = rhs *)
  | OPR_LDID     (** scalar load; st_idx = source *)
  | OPR_ISTORE   (** kids: rhs, address (an ARRAY) *)
  | OPR_ILOAD    (** kid: address (an ARRAY) *)
  | OPR_ARRAY
  | OPR_COIDX    (** remote coarray address: kids = [ARRAY; image-expr]
                     (the future-work PGAS extension) *)
  | OPR_LDA      (** address of symbol st_idx *)
  | OPR_IDNAME   (** loop induction variable; st_idx *)
  | OPR_CALL     (** st_idx = callee entry; kids = PARM *)
  | OPR_PARM
  | OPR_INTCONST
  | OPR_CONST    (** floating constant *)
  | OPR_STRCONST
  | OPR_ADD | OPR_SUB | OPR_MPY | OPR_DIV | OPR_MOD | OPR_NEG
  | OPR_EQ | OPR_NE | OPR_LT | OPR_LE | OPR_GT | OPR_GE
  | OPR_LAND | OPR_LIOR | OPR_LNOT
  | OPR_INTRINSIC_OP (** intrinsic call; intrinsic name in [str_val] *)
  | OPR_RETURN   (** optional value kid *)
  | OPR_IO       (** print; kids = PARM *)
  | OPR_NOP

type t = {
  operator : operator;
  kids : t array;
  linenum : Lang.Loc.t;
  offset : int;
  elem_size : int;  (** ARRAY: element size in bytes; negative would mark a
                        non-contiguous (F90) array, per the WHIRL spec *)
  const_val : int;
  flt_val : float;
  str_val : string;
  st_idx : int;     (** -1 when absent *)
  res : Lang.Ast.dtype option;  (** result type *)
}

val kid_count : t -> int
val kid : t -> int -> t

val num_dim : t -> int
(** For [OPR_ARRAY]: inferred from kid-count shifted right by 1. *)

val array_base : t -> t
val array_dim : t -> int -> t
(** [array_dim w i] — size of dimension [i] (0-based, row-major). *)

val array_index : t -> int -> t
(** [array_index w i] — zero-based index expression for dimension [i]. *)

(** {2 Constructors} *)

val intconst : ?loc:Lang.Loc.t -> int -> t
val fltconst : ?loc:Lang.Loc.t -> float -> t
val strconst : ?loc:Lang.Loc.t -> string -> t
val ldid : ?loc:Lang.Loc.t -> res:Lang.Ast.dtype -> int -> t
val stid : ?loc:Lang.Loc.t -> int -> t -> t
val lda : ?loc:Lang.Loc.t -> int -> t
val idname : ?loc:Lang.Loc.t -> int -> t

val array :
  ?loc:Lang.Loc.t -> elem_size:int -> base:t -> dims:t list -> t list -> t
(** Last argument: the index expressions.
    @raise Invalid_argument when sizes and indices lengths differ. *)

val coidx : ?loc:Lang.Loc.t -> array:t -> t -> t
(** Last argument: the image expression. *)

val iload : ?loc:Lang.Loc.t -> res:Lang.Ast.dtype -> t -> t
val istore : ?loc:Lang.Loc.t -> rhs:t -> t -> t

val binop : ?loc:Lang.Loc.t -> operator -> t -> t -> t
val unop : ?loc:Lang.Loc.t -> operator -> t -> t
val intrinsic : ?loc:Lang.Loc.t -> string -> t list -> t
val block : ?loc:Lang.Loc.t -> t list -> t
val do_loop :
  ?loc:Lang.Loc.t -> ivar:int -> init:t -> upper:t -> step:t -> t -> t

val while_do : ?loc:Lang.Loc.t -> cond:t -> t -> t
val if_then_else : ?loc:Lang.Loc.t -> cond:t -> then_:t -> t -> t

val call : ?loc:Lang.Loc.t -> callee:int -> t list -> t
val parm : t -> t
val return_ : ?loc:Lang.Loc.t -> t option -> t
val io : ?loc:Lang.Loc.t -> t list -> t
val nop : ?loc:Lang.Loc.t -> unit -> t
val func_entry : ?loc:Lang.Loc.t -> st:int -> t -> t

(** {2 Traversal} *)

val preorder : (t -> unit) -> t -> unit
(** Visits every node, parents before kids, left to right — the order
    Algorithm 1 walks the tree in. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val count : (t -> bool) -> t -> int

val equal_tree : t -> t -> bool
(** Structural equality ignoring source locations. *)

val operator_name : operator -> string
val pp : Format.formatter -> t -> unit
(** Indented tree dump, ixwhirl-style. *)
