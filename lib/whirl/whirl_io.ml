(* Line-oriented WHIRL dump/reload.  See the .mli for the format sketch. *)

let all_operators =
  [
    Wn.OPR_FUNC_ENTRY; Wn.OPR_BLOCK; Wn.OPR_DO_LOOP; Wn.OPR_WHILE_DO;
    Wn.OPR_IF; Wn.OPR_STID; Wn.OPR_LDID; Wn.OPR_ISTORE; Wn.OPR_ILOAD;
    Wn.OPR_ARRAY; Wn.OPR_COIDX; Wn.OPR_LDA; Wn.OPR_IDNAME; Wn.OPR_CALL;
    Wn.OPR_PARM; Wn.OPR_INTCONST; Wn.OPR_CONST; Wn.OPR_STRCONST; Wn.OPR_ADD;
    Wn.OPR_SUB; Wn.OPR_MPY; Wn.OPR_DIV; Wn.OPR_MOD; Wn.OPR_NEG; Wn.OPR_EQ;
    Wn.OPR_NE; Wn.OPR_LT; Wn.OPR_LE; Wn.OPR_GT; Wn.OPR_GE; Wn.OPR_LAND;
    Wn.OPR_LIOR; Wn.OPR_LNOT; Wn.OPR_INTRINSIC_OP; Wn.OPR_RETURN; Wn.OPR_IO;
    Wn.OPR_NOP;
  ]

let operator_of_name =
  let tbl = Hashtbl.create 64 in
  List.iter (fun op -> Hashtbl.replace tbl (Wn.operator_name op) op) all_operators;
  fun name -> Hashtbl.find_opt tbl name

let dtype_name = Lang.Ast.dtype_name

let dtype_of_name = function
  | "int" -> Some Lang.Ast.Int_t
  | "real" -> Some Lang.Ast.Real_t
  | "double" -> Some Lang.Ast.Double_t
  | "char" -> Some Lang.Ast.Char_t
  | "logical" -> Some Lang.Ast.Logical_t
  | _ -> None

let res_name = function None -> "-" | Some d -> dtype_name d

let res_of_name = function "-" -> Ok None | s -> (
  match dtype_of_name s with
  | Some d -> Ok (Some d)
  | None -> Error (Printf.sprintf "bad result type %S" s))

let bound_str = function None -> "?" | Some n -> string_of_int n

let bound_of_str = function
  | "?" -> Ok None
  | s -> (
    match int_of_string_opt s with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "bad bound %S" s))

let sclass_str = function
  | Symtab.Sclass_auto -> "auto"
  | Symtab.Sclass_formal -> "formal"
  | Symtab.Sclass_common b -> "common:" ^ b
  | Symtab.Sclass_text -> "text"

let sclass_of_str s =
  match s with
  | "auto" -> Ok Symtab.Sclass_auto
  | "formal" -> Ok Symtab.Sclass_formal
  | "text" -> Ok Symtab.Sclass_text
  | _ ->
    if String.length s > 7 && String.sub s 0 7 = "common:" then
      Ok (Symtab.Sclass_common (String.sub s 7 (String.length s - 7)))
    else Error (Printf.sprintf "bad storage class %S" s)

(* ------------------------------------------------------------------ *)
(* Writing *)

let write_symtab buf st =
  (* types, in index order *)
  let rec tys i =
    match Symtab.ty st i with
    | exception Invalid_argument _ -> ()
    | Symtab.Ty_scalar d ->
      Buffer.add_string buf (Printf.sprintf "ty scalar %s\n" (dtype_name d));
      tys (i + 1)
    | Symtab.Ty_array { elem; dims; contiguous } ->
      Buffer.add_string buf
        (Printf.sprintf "ty array %s %d %d %s\n" (dtype_name elem)
           (if contiguous then 1 else 0)
           (List.length dims)
           (String.concat " "
              (List.map
                 (fun (lo, hi) -> bound_str lo ^ ":" ^ bound_str hi)
                 dims)));
      tys (i + 1)
  in
  tys 0;
  Symtab.iter_st st (fun _ e ->
      Buffer.add_string buf
        (Printf.sprintf "st %s %d %s %d %S %d %d %s\n" e.Symtab.st_name
           e.Symtab.st_ty (sclass_str e.Symtab.st_sclass) e.Symtab.st_mem_loc
           (Lang.Loc.file e.Symtab.st_loc)
           (Lang.Loc.line e.Symtab.st_loc)
           (Lang.Loc.col e.Symtab.st_loc)
           (Lang.Iprop.to_token e.Symtab.st_iprop)))

let rec write_wn buf depth (w : Wn.t) =
  Buffer.add_string buf
    (Printf.sprintf "wn %d %s %d %d %d %d %h %s %S %d %d %S\n" depth
       (Wn.operator_name w.Wn.operator)
       w.Wn.st_idx w.Wn.offset w.Wn.elem_size w.Wn.const_val w.Wn.flt_val
       (res_name w.Wn.res)
       (Lang.Loc.file w.Wn.linenum)
       (Lang.Loc.line w.Wn.linenum)
       (Lang.Loc.col w.Wn.linenum)
       w.Wn.str_val);
  Array.iter (write_wn buf (depth + 1)) w.Wn.kids

let kind_str = function
  | Lang.Ast.Program -> "program"
  | Lang.Ast.Subroutine -> "subroutine"
  | Lang.Ast.Function d -> "function:" ^ dtype_name d

let kind_of_str s =
  match s with
  | "program" -> Ok Lang.Ast.Program
  | "subroutine" -> Ok Lang.Ast.Subroutine
  | _ ->
    if String.length s > 9 && String.sub s 0 9 = "function:" then
      match dtype_of_name (String.sub s 9 (String.length s - 9)) with
      | Some d -> Ok (Lang.Ast.Function d)
      | None -> Error (Printf.sprintf "bad function kind %S" s)
    else Error (Printf.sprintf "bad procedure kind %S" s)

let proc_kind m name =
  match Lang.Sema.String_map.find_opt name m.Ir.m_program.Lang.Sema.prog_procs with
  | Some pi -> pi.Lang.Sema.pi_proc.Lang.Ast.proc_kind
  | None -> Lang.Ast.Subroutine

let write_pu buf (m : Ir.module_) pu =
  Buffer.add_string buf
    (Printf.sprintf "pu %s %d %S %S %s %d %d %s\n" pu.Ir.pu_name
       pu.Ir.pu_st pu.Ir.pu_file pu.Ir.pu_object
       (match pu.Ir.pu_lang with Lang.Ast.Fortran -> "fortran" | Lang.Ast.C -> "c")
       (Lang.Loc.line pu.Ir.pu_loc)
       (Lang.Loc.col pu.Ir.pu_loc)
       (kind_str (proc_kind m pu.Ir.pu_name)));
  Buffer.add_string buf
    (Printf.sprintf "formals %s\n"
       (String.concat " " (List.map string_of_int pu.Ir.pu_formals)));
  write_symtab buf pu.Ir.pu_symtab;
  write_wn buf 0 pu.Ir.pu_body;
  Buffer.add_string buf "endpu\n"

(* Content images for the engine's digests: a compact binary encoding of
   exactly the fields the textual format round-trips, minus the formatting
   cost (one [Printf.sprintf] per WN node is what makes [write] too slow to
   run on every cache probe).  Never parsed — only hashed. *)

let add_int buf x = Buffer.add_int64_le buf (Int64.of_int x)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_loc buf loc =
  add_str buf (Lang.Loc.file loc);
  add_int buf (Lang.Loc.line loc);
  add_int buf (Lang.Loc.col loc)

let add_symtab_content buf st =
  let rec tys i =
    match Symtab.ty st i with
    | exception Invalid_argument _ -> ()
    | Symtab.Ty_scalar d ->
      Buffer.add_char buf 'S';
      add_str buf (dtype_name d);
      tys (i + 1)
    | Symtab.Ty_array { elem; dims; contiguous } ->
      Buffer.add_char buf 'A';
      add_str buf (dtype_name elem);
      Buffer.add_char buf (if contiguous then 'c' else 'n');
      add_int buf (List.length dims);
      List.iter
        (fun (lo, hi) ->
          add_int buf (Option.value lo ~default:min_int);
          add_int buf (Option.value hi ~default:min_int))
        dims;
      tys (i + 1)
  in
  tys 0;
  Symtab.iter_st st (fun _ e ->
      Buffer.add_char buf 's';
      add_str buf e.Symtab.st_name;
      add_int buf e.Symtab.st_ty;
      add_str buf (sclass_str e.Symtab.st_sclass);
      add_int buf e.Symtab.st_mem_loc;
      add_loc buf e.Symtab.st_loc;
      (* index-array directives are analysis inputs: editing one must miss
         the content-addressed caches and re-analyze every user *)
      add_str buf (Lang.Iprop.to_token e.Symtab.st_iprop))

let add_i32 buf x = Buffer.add_int32_le buf (Int32.of_int x)

let operator_tag =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun i op -> Hashtbl.replace tbl op (Char.chr i)) all_operators;
  fun op -> try Hashtbl.find tbl op with Not_found -> '\255'

let dtype_tag = function
  | Lang.Ast.Int_t -> '\001'
  | Lang.Ast.Real_t -> '\002'
  | Lang.Ast.Double_t -> '\003'
  | Lang.Ast.Char_t -> '\004'
  | Lang.Ast.Logical_t -> '\005'

let res_tag = function None -> '\000' | Some d -> dtype_tag d

(* The file component of WN locations is almost always the same string
   (physically) as the previous node's, so it is run-length memoized; the
   fallback writes the full length-prefixed string, which keeps the
   encoding injective. *)
(* Small non-negative ints (nearly every field) take one byte; anything
   else pays a marker plus four bytes.  Decoding would be unambiguous, so
   the encoding stays injective. *)
let add_ci buf x =
  if x >= 0 && x < 255 then Buffer.add_char buf (Char.unsafe_chr x)
  else begin
    Buffer.add_char buf '\255';
    add_i32 buf x
  end

let rec add_wn_content buf last_file (w : Wn.t) =
  Buffer.add_char buf (operator_tag w.Wn.operator);
  add_ci buf w.Wn.st_idx;
  add_ci buf w.Wn.offset;
  add_ci buf w.Wn.elem_size;
  (* const_val/flt_val/str_val are zero/empty on all but constant nodes *)
  (if w.Wn.const_val = 0 then Buffer.add_char buf '\000'
   else begin
     Buffer.add_char buf '\001';
     add_int buf w.Wn.const_val
   end);
  (if Int64.bits_of_float w.Wn.flt_val = 0L then Buffer.add_char buf '\000'
   else begin
     Buffer.add_char buf '\001';
     Buffer.add_int64_le buf (Int64.bits_of_float w.Wn.flt_val)
   end);
  Buffer.add_char buf (res_tag w.Wn.res);
  let f = Lang.Loc.file w.Wn.linenum in
  if f == !last_file then Buffer.add_char buf '='
  else begin
    Buffer.add_char buf '#';
    add_str buf f;
    last_file := f
  end;
  add_ci buf (Lang.Loc.line w.Wn.linenum);
  add_ci buf (Lang.Loc.col w.Wn.linenum);
  (if w.Wn.str_val = "" then Buffer.add_char buf '\000'
   else begin
     Buffer.add_char buf '\001';
     add_ci buf (String.length w.Wn.str_val);
     Buffer.add_string buf w.Wn.str_val
   end);
  add_ci buf (Array.length w.Wn.kids);
  Array.iter (add_wn_content buf last_file) w.Wn.kids

let add_pu_content buf (m : Ir.module_) pu =
  add_str buf pu.Ir.pu_name;
  add_int buf pu.Ir.pu_st;
  add_str buf pu.Ir.pu_file;
  add_str buf pu.Ir.pu_object;
  Buffer.add_char buf
    (match pu.Ir.pu_lang with Lang.Ast.Fortran -> 'f' | Lang.Ast.C -> 'c');
  add_loc buf pu.Ir.pu_loc;
  add_str buf (kind_str (proc_kind m pu.Ir.pu_name));
  add_int buf (List.length pu.Ir.pu_formals);
  List.iter (add_int buf) pu.Ir.pu_formals;
  add_symtab_content buf pu.Ir.pu_symtab;
  add_wn_content buf (ref "") pu.Ir.pu_body

let write (m : Ir.module_) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "whirl 1\nglobal\n";
  write_symtab buf m.Ir.m_global;
  Buffer.add_string buf "endglobal\n";
  List.iter (write_pu buf m) m.Ir.m_pus;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let pu_to_string m pu =
  let buf = Buffer.create 1024 in
  write_pu buf m pu;
  Buffer.contents buf

let symtab_to_string st =
  let buf = Buffer.create 512 in
  write_symtab buf st;
  Buffer.contents buf

let pu_digest m pu =
  let buf = Buffer.create 65536 in
  add_pu_content buf m pu;
  Digest.string (Buffer.contents buf)

let symtab_digest st =
  let buf = Buffer.create 4096 in
  add_symtab_content buf st;
  Digest.string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Parsing *)

type cursor = { mutable lines : string list; mutable lineno : int }

exception Parse_error of string

let fail c fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" c.lineno s))) fmt

let peek_line c =
  match c.lines with [] -> None | l :: _ -> Some l

let next_line c =
  match c.lines with
  | [] -> fail c "unexpected end of file"
  | l :: rest ->
    c.lines <- rest;
    c.lineno <- c.lineno + 1;
    l

let expect_line c expected =
  let l = next_line c in
  if String.trim l <> expected then fail c "expected %S, got %S" expected l

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* read "ty"/"st" lines into a fresh symtab *)
let parse_symtab c =
  let st = Symtab.create () in
  let ok = ref true in
  while !ok do
    match peek_line c with
    | Some l when starts_with "ty " l ->
      ignore (next_line c);
      let parts =
        String.split_on_char ' ' (String.trim l) |> List.filter (( <> ) "")
      in
      (match parts with
      | [ "ty"; "scalar"; d ] -> (
        match dtype_of_name d with
        | Some d -> ignore (Symtab.intern_ty st (Symtab.Ty_scalar d))
        | None -> fail c "bad scalar type %S" d)
      | "ty" :: "array" :: d :: contig :: _n :: dims -> (
        match dtype_of_name d with
        | None -> fail c "bad array element type %S" d
        | Some elem ->
          let dims =
            List.map
              (fun spec ->
                match String.split_on_char ':' spec with
                | [ lo; hi ] -> (
                  match bound_of_str lo, bound_of_str hi with
                  | Ok lo, Ok hi -> (lo, hi)
                  | Error e, _ | _, Error e -> fail c "%s" e)
                | _ -> fail c "bad dimension spec %S" spec)
              dims
          in
          ignore
            (Symtab.intern_ty st
               (Symtab.Ty_array { elem; dims; contiguous = contig = "1" })))
      | _ -> fail c "bad ty line %S" l)
    | Some l when starts_with "st " l ->
      ignore (next_line c);
      (try
         Scanf.sscanf l "st %s %d %s %d %S %d %d %s"
           (fun name ty sclass mem file line col iptok ->
             match sclass_of_str sclass with
             | Error e -> fail c "%s" e
             | Ok sclass ->
               (* legacy lines have no property token; unknown tokens
                  degrade to no assertions — never strengthen an answer
                  from an unparsed field *)
               let iprop =
                 if iptok = "" then Lang.Iprop.none
                 else
                   Option.value
                     (Lang.Iprop.of_token iptok)
                     ~default:Lang.Iprop.none
               in
               let idx =
                 Symtab.enter_st st ~iprop ~name ~ty ~sclass
                   ~loc:(Lang.Loc.make ~file ~line ~col) ()
               in
               (Symtab.st st idx).Symtab.st_mem_loc <- mem)
       with Scanf.Scan_failure _ | Failure _ -> fail c "bad st line %S" l)
    | _ -> ok := false
  done;
  st

type proto_wn = {
  pw_depth : int;
  pw_node : Wn.t;  (* without kids *)
}

let parse_wn_lines c =
  let protos = ref [] in
  let ok = ref true in
  while !ok do
    match peek_line c with
    | Some l when starts_with "wn " l ->
      ignore (next_line c);
      (try
         Scanf.sscanf l "wn %d %s %d %d %d %d %h %s %S %d %d %S"
           (fun depth opname st_idx offset elem_size const_val flt_val res
                file line col str_val ->
             match operator_of_name opname, res_of_name res with
             | None, _ -> fail c "unknown operator %S" opname
             | _, Error e -> fail c "%s" e
             | Some operator, Ok res ->
               let node =
                 {
                   Wn.operator;
                   kids = [||];
                   linenum = Lang.Loc.make ~file ~line ~col;
                   offset;
                   elem_size;
                   const_val;
                   flt_val;
                   str_val;
                   st_idx;
                   res;
                 }
               in
               protos := { pw_depth = depth; pw_node = node } :: !protos)
       with Scanf.Scan_failure _ | Failure _ -> fail c "bad wn line %S" l)
    | _ -> ok := false
  done;
  List.rev !protos

(* rebuild the tree from the preorder/depth list *)
let rec build_tree protos depth =
  match protos with
  | p :: rest when p.pw_depth = depth ->
    let kids, rest = build_kids rest (depth + 1) in
    ({ p.pw_node with Wn.kids = Array.of_list kids }, rest)
  | _ -> raise (Parse_error "malformed WN tree")

and build_kids protos depth =
  match protos with
  | p :: _ when p.pw_depth = depth ->
    let kid, rest = build_tree protos depth in
    let kids, rest = build_kids rest depth in
    (kid :: kids, rest)
  | _ -> ([], protos)

let stub_proc name kind file line =
  {
    Lang.Ast.proc_name = name;
    proc_kind = kind;
    proc_params = [];
    proc_decls = [];
    proc_consts = [];
    proc_body = [];
    proc_loc = Lang.Loc.make ~file ~line ~col:1;
  }

let parse text =
  let c =
    { lines = String.split_on_char '\n' text
              |> List.filter (fun l -> String.trim l <> "");
      lineno = 0 }
  in
  try
    expect_line c "whirl 1";
    expect_line c "global";
    let global = parse_symtab c in
    expect_line c "endglobal";
    let pus = ref [] in
    let procs = ref Lang.Sema.String_map.empty in
    let order = ref [] in
    let files = ref [] in
    let ok = ref true in
    while !ok do
      match peek_line c with
      | Some l when starts_with "pu " l ->
        ignore (next_line c);
        Scanf.sscanf l "pu %s %d %S %S %s %d %d %s"
          (fun name pu_st file object_ lang line col kind ->
            let lang =
              match lang with
              | "fortran" -> Lang.Ast.Fortran
              | "c" -> Lang.Ast.C
              | other -> fail c "bad language %S" other
            in
            let kind =
              match kind_of_str kind with
              | Ok k -> k
              | Error e -> fail c "%s" e
            in
            let formals_line = next_line c in
            if not (starts_with "formals" formals_line) then
              fail c "expected formals line, got %S" formals_line;
            let formals =
              String.split_on_char ' ' (String.trim formals_line)
              |> List.tl
              |> List.filter (( <> ) "")
              |> List.map (fun s ->
                     match int_of_string_opt s with
                     | Some n -> n
                     | None -> fail c "bad formal index %S" s)
            in
            let symtab = parse_symtab c in
            let protos = parse_wn_lines c in
            let body, leftover = build_tree protos 0 in
            if leftover <> [] then fail c "trailing WN lines in %s" name;
            expect_line c "endpu";
            let pu =
              {
                Ir.pu_name = name;
                pu_st;
                pu_formals = formals;
                pu_body = body;
                pu_symtab = symtab;
                pu_loc = Lang.Loc.make ~file ~line ~col;
                pu_file = file;
                pu_object = object_;
                pu_lang = lang;
              }
            in
            pus := pu :: !pus;
            order := name :: !order;
            if not (List.mem file !files) then files := file :: !files;
            procs :=
              Lang.Sema.String_map.add name
                {
                  Lang.Sema.pi_proc = stub_proc name kind file line;
                  pi_symbols = Lang.Sema.String_map.empty;
                  pi_file = file;
                  pi_object = object_;
                  pi_language = lang;
                }
                !procs)
      | Some "endmodule" ->
        ignore (next_line c);
        ok := false
      | Some other -> fail c "unexpected line %S" other
      | None -> fail c "missing endmodule"
    done;
    let program =
      {
        Lang.Sema.prog_procs = !procs;
        prog_order = List.rev !order;
        prog_globals = Lang.Sema.String_map.empty;
        prog_global_scalars = Lang.Sema.String_map.empty;
        prog_files = List.rev !files;
        prog_warnings = [];
      }
    in
    Ok
      {
        Ir.m_id = Ir.fresh_module_id ();
        m_global = global;
        m_pus = List.rev !pus;
        m_program = program;
      }
  with
  | Parse_error e -> Error e
  | Scanf.Scan_failure e -> Error e

let save ~path m =
  let oc = open_out_bin path in
  output_string oc (write m);
  close_out oc

let load ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s
