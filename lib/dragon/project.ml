type t = {
  name : string;
  dgn : Rgnfile.Files.dgn;
  rows : Rgnfile.Row.t list;
  cfg : Rgnfile.Files.cfg_block list;
  sources : (string * string) list;
}

let ( let* ) = Result.bind

let read_if_exists path =
  if Sys.file_exists path then Some (Rgnfile.Files.load ~path) else None

let load ~dir ~project =
  let path ext = Filename.concat dir (project ^ ext) in
  let* dgn_text =
    match read_if_exists (path ".dgn") with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "missing %s" (path ".dgn"))
  in
  let* dgn = Rgnfile.Files.parse_dgn dgn_text in
  let* rows =
    match read_if_exists (path ".rgn") with
    | Some t -> Rgnfile.Files.parse_rgn t
    | None -> Ok []
  in
  let* cfg =
    match read_if_exists (path ".cfg") with
    | Some t -> Rgnfile.Files.parse_cfg t
    | None -> Ok []
  in
  let sources =
    List.filter_map
      (fun (src, _lang) ->
        let candidates =
          [ src; Filename.concat dir src; Filename.concat dir (Filename.basename src) ]
        in
        List.find_map
          (fun p ->
            if Sys.file_exists p then Some (src, Rgnfile.Files.load ~path:p)
            else None)
          candidates)
      dgn.Rgnfile.Files.dgn_sources
  in
  Ok { name = project; dgn; rows; cfg; sources }

let make ~name ~dgn ?(rows = []) ?(cfg = []) ?(sources = []) () =
  { name; dgn; rows; cfg; sources }

let scopes t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : Rgnfile.Row.t) ->
      let s = r.Rgnfile.Row.scope in
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        order := s :: !order
      end)
    t.rows;
  let rest = List.rev !order |> List.filter (fun s -> s <> "@") in
  if Hashtbl.mem seen "@" then "@" :: rest else rest

let procedures t =
  List.map (fun (name, _, _) -> name) t.dgn.Rgnfile.Files.dgn_procs

let rows_in_scope t scope =
  List.filter (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.scope = scope) t.rows

let arrays_in_scope t scope =
  rows_in_scope t scope
  |> List.map (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.array)
  |> List.sort_uniq String.compare

let source t name =
  match List.assoc_opt name t.sources with
  | Some s -> Some s
  | None ->
    List.find_map
      (fun (p, s) ->
        if String.equal (Filename.basename p) name then Some s else None)
      t.sources
