let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|<style>
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.4em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #ccc; padding: 2px 7px; text-align: left;
         font-family: monospace; }
th { background: #eee; position: sticky; top: 0; }
tr.hit { background: #c8f7c5; }
tr.mode-DEF td.mode, tr.mode-RDEF td.mode { color: #a40000; font-weight: bold; }
tr.mode-USE td.mode, tr.mode-RUSE td.mode { color: #204a87; }
tr.mode-FORMAL td.mode, tr.mode-PASSED td.mode { color: #5c3566; }
pre { background: #f7f7f7; border: 1px solid #ddd; padding: 0.6em;
      overflow-x: auto; font-size: 0.85em; }
details { margin: 0.4em 0; }
summary { cursor: pointer; font-weight: bold; }
#find { font-size: 1em; padding: 2px 6px; margin-bottom: 0.8em; }
.kw { color: #204a87; font-weight: bold; }
.comment { color: #4e9a06; font-style: italic; }
</style>|}

let script =
  {|<script>
function doFind() {
  var needle = document.getElementById('find').value.trim();
  var rows = document.querySelectorAll('tr[data-array]');
  var hits = 0;
  rows.forEach(function (tr) {
    var match = needle !== '' && tr.dataset.array === needle;
    tr.classList.toggle('hit', match);
    if (match) hits++;
  });
  document.getElementById('findcount').textContent =
    needle === '' ? '' : hits + ' row(s)';
}
</script>|}

(* MiniF/MiniC-aware highlighting-lite: keywords and comments only *)
let keywords =
  [ "program"; "subroutine"; "function"; "end"; "do"; "while"; "if"; "then";
    "else"; "call"; "return"; "print"; "common"; "parameter"; "integer";
    "double"; "precision"; "real"; "character"; "logical"; "dimension";
    "for"; "int"; "void"; "printf" ]

let highlight_line line =
  let trimmed = String.trim line in
  if
    String.length trimmed > 0
    && (trimmed.[0] = '!'
       || (String.length line > 0 && (line.[0] = 'c' || line.[0] = 'C')))
  then Printf.sprintf "<span class=\"comment\">%s</span>" (escape line)
  else begin
    (* word-wise keyword wrap on the escaped text *)
    let words = String.split_on_char ' ' (escape line) in
    String.concat " "
      (List.map
         (fun w ->
           if List.mem (String.lowercase_ascii w) keywords then
             Printf.sprintf "<span class=\"kw\">%s</span>" w
           else w)
         words)
  end

let table_section buf (p : Project.t) =
  Buffer.add_string buf
    "<h2>Array analysis graph</h2>\n\
     <input id=\"find\" placeholder=\"find array...\" oninput=\"doFind()\">\n\
     <span id=\"findcount\"></span>\n";
  List.iter
    (fun scope ->
      let rows = Project.rows_in_scope p scope in
      if rows <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "<details open><summary>%s</summary>\n<table>\n"
             (if scope = "@" then "@ (global arrays)" else escape scope));
        Buffer.add_string buf
          "<tr><th>Array</th><th>File</th><th>Mode</th><th>Refs</th>\
           <th>Dim</th><th>LB</th><th>UB</th><th>Stride</th><th>Esz</th>\
           <th>Type</th><th>Dim_size</th><th>Tot_size</th><th>Size_bytes</th>\
           <th>Mem_Loc</th><th>Dens</th><th>Line</th></tr>\n";
        List.iter
          (fun (r : Rgnfile.Row.t) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "<tr class=\"mode-%s\" data-array=\"%s\"><td>%s</td><td>%s</td>\
                  <td class=\"mode\">%s</td><td>%d</td><td>%d</td><td>%s</td>\
                  <td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td>\
                  <td>%d</td><td>%d</td><td>%s</td><td>%d</td>\
                  <td><a href=\"#%s-%d\">%d</a></td></tr>\n"
                 r.Rgnfile.Row.mode
                 (escape r.Rgnfile.Row.array)
                 (escape r.Rgnfile.Row.array)
                 (escape r.Rgnfile.Row.file)
                 r.Rgnfile.Row.mode r.Rgnfile.Row.references
                 r.Rgnfile.Row.dimensions
                 (escape r.Rgnfile.Row.lb)
                 (escape r.Rgnfile.Row.ub)
                 (escape r.Rgnfile.Row.stride)
                 r.Rgnfile.Row.element_size
                 (escape r.Rgnfile.Row.data_type)
                 (escape r.Rgnfile.Row.dim_size)
                 r.Rgnfile.Row.tot_size r.Rgnfile.Row.size_bytes
                 (escape r.Rgnfile.Row.mem_loc)
                 r.Rgnfile.Row.acc_density
                 (escape (Filename.remove_extension r.Rgnfile.Row.file))
                 r.Rgnfile.Row.line r.Rgnfile.Row.line))
          rows;
        Buffer.add_string buf "</table></details>\n"
      end)
    (Project.scopes p)

let callgraph_section buf p =
  Buffer.add_string buf "<h2>Call graph</h2>\n<pre>";
  Buffer.add_string buf (escape (Graphs.callgraph_ascii p));
  Buffer.add_string buf "</pre>\n<details><summary>Graphviz DOT</summary><pre>";
  Buffer.add_string buf (escape (Graphs.callgraph_dot p));
  Buffer.add_string buf "</pre></details>\n"

let sources_section buf (p : Project.t) =
  Buffer.add_string buf "<h2>Sources</h2>\n";
  List.iter
    (fun (path, contents) ->
      let base = Filename.remove_extension (Filename.basename path) in
      Buffer.add_string buf
        (Printf.sprintf "<details><summary>%s</summary>\n<pre>" (escape path));
      List.iteri
        (fun i line ->
          Buffer.add_string buf
            (Printf.sprintf "<span id=\"%s-%d\">%4d | %s</span>\n" (escape base)
               (i + 1) (i + 1) (highlight_line line)))
        (String.split_on_char '\n' contents);
      Buffer.add_string buf "</pre></details>\n")
    p.Project.sources

let advisor_section buf p =
  Buffer.add_string buf "<h2>Optimization advisor</h2>\n<pre>";
  Buffer.add_string buf (escape (Advisor.render p));
  Buffer.add_string buf "</pre>\n"

let render (p : Project.t) =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  Buffer.add_string buf
    (Printf.sprintf "<title>Dragon: %s</title>\n" (escape p.Project.name));
  Buffer.add_string buf style;
  Buffer.add_string buf script;
  Buffer.add_string buf "</head><body>\n";
  Buffer.add_string buf
    (Printf.sprintf "<h1>Dragon array region analysis &mdash; %s</h1>\n"
       (escape p.Project.name));
  table_section buf p;
  callgraph_section buf p;
  advisor_section buf p;
  sources_section buf p;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let save p ~path =
  let oc = open_out_bin path in
  output_string oc (render p);
  close_out oc
