(** Text-mode profile view over a [uhc --trace] file.

    Spans are grouped by category — pipeline phases, per-PU work, SCC
    propagation, file I/O — and aggregated by name into
    count / total / max / percent-of-wall tables, duration-descending.
    The same file loads graphically into Perfetto; this is the quick look
    without leaving the terminal. *)

val render : ?top:int -> Obs.Trace.span list -> string
(** [top] (default 20) bounds each per-PU/SCC/I-O table; the phase table is
    never truncated. *)

val of_file : ?top:int -> path:string -> unit -> (string, string) result
(** Parse a Chrome trace_event JSON file (via {!Obs.Trace.load}) and render
    it; [Error] carries the parse/validation failure. *)

val folded : Obs.Trace.span list -> string
(** Collapsed-stack rendering ([dragon profile --folded]): one line per
    distinct stack, [phase;parent;leaf <self_us>] — the input format of
    flamegraph.pl, inferno and speedscope.  Self time is the span's
    duration minus its direct children's (clamped at 0), whole
    microseconds; zero-self stacks are omitted and lines are sorted for
    determinism. *)

val folded_of_file : path:string -> (string, string) result
(** {!folded} over a loaded trace file. *)
