type resize = {
  rs_array : string;
  rs_scope : string;
  rs_declared : int list;
  rs_accessed : (int * int) list;
  rs_saving_bytes : int;
}

type copyin = {
  ci_array : string;
  ci_scope : string;
  ci_directive : string;
  ci_bytes_full : int;
  ci_bytes_region : int;
}

type fusion = {
  fu_array : string;
  fu_scope : string;
  fu_region : string;
  fu_lines : int list;
}

type hotspot = {
  hs_array : string;
  hs_scope : string;
  hs_mode : string;
  hs_density : int;
  hs_references : int;
}

(* "1|2|3" -> Some [1;2;3]; None if any field is symbolic *)
let parse_dims s =
  let parts = String.split_on_char '|' s in
  let ints = List.map int_of_string_opt parts in
  if List.for_all Option.is_some ints then Some (List.map Option.get ints)
  else None

let language_of (p : Project.t) (r : Rgnfile.Row.t) =
  let base = Filename.remove_extension r.Rgnfile.Row.file in
  let lang =
    List.find_map
      (fun (src, lang) ->
        if Filename.remove_extension (Filename.basename src) = base then
          Some lang
        else None)
      p.Project.dgn.Rgnfile.Files.dgn_sources
  in
  Option.value lang ~default:"fortran"

let group_by key rows =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let k = key r in
      (match Hashtbl.find_opt tbl k with
      | None ->
        order := k :: !order;
        Hashtbl.add tbl k [ r ]
      | Some rs -> Hashtbl.replace tbl k (r :: rs)))
    rows;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

(* ------------------------------------------------------------------ *)

let span_of_rows rows =
  (* per-dim [min lb, max ub] over rows with fully constant bounds *)
  let boxes =
    List.filter_map
      (fun (r : Rgnfile.Row.t) ->
        match parse_dims r.Rgnfile.Row.lb, parse_dims r.Rgnfile.Row.ub with
        | Some lbs, Some ubs when List.length lbs = List.length ubs ->
          Some (List.combine lbs ubs)
        | _ -> None)
      rows
  in
  if List.length boxes <> List.length rows then None
  else
    match boxes with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun acc box ->
             List.map2 (fun (l1, u1) (l2, u2) -> (min l1 l2, max u1 u2)) acc box)
           first rest)

let resize_suggestions (p : Project.t) =
  group_by
    (fun (r : Rgnfile.Row.t) -> (r.Rgnfile.Row.scope, r.Rgnfile.Row.array))
    p.Project.rows
  |> List.filter_map (fun ((scope, array), rows) ->
         let accesses =
           List.filter
             (fun (r : Rgnfile.Row.t) ->
               r.Rgnfile.Row.mode = "USE" || r.Rgnfile.Row.mode = "DEF")
             rows
         in
         match accesses, span_of_rows accesses with
         | [], _ | _, None -> None
         | (r0 : Rgnfile.Row.t) :: _, Some span ->
           (match parse_dims r0.Rgnfile.Row.dim_size with
           | None -> None
           | Some declared ->
             if List.length declared <> List.length span then None
             else begin
               let accessed_elems =
                 List.fold_left (fun a (l, u) -> a * (u - l + 1)) 1 span
               in
               let declared_elems = List.fold_left ( * ) 1 declared in
               if declared_elems > accessed_elems && declared_elems > 0 then
                 Some
                   {
                     rs_array = array;
                     rs_scope = scope;
                     rs_declared = declared;
                     rs_accessed = span;
                     rs_saving_bytes =
                       (declared_elems - accessed_elems)
                       * r0.Rgnfile.Row.element_size;
                   }
               else None
             end))

let copyin_of_rows p scope array rows =
  match rows, span_of_rows rows with
  | [], _ | _, None -> None
  | (r0 : Rgnfile.Row.t) :: _, Some span ->
    let lang = language_of p r0 in
    (* bounds are printed in the table's row-major order: the paper writes
       the directive as copyin(U(1:3,1:5,1:10,1:4)), matching Fig 14's rows
       rather than Fortran declaration order *)
    let bounds =
      List.map (fun (l, u) -> Printf.sprintf "%d:%d" l u) span
    in
    let directive =
      if lang = "fortran" then
        Printf.sprintf "!$acc region copyin(%s(%s))" array
          (String.concat ", " bounds)
      else
        Printf.sprintf "#pragma acc region for copyin(%s[%s])" array
          (String.concat "][" bounds)
    in
    let region_elems =
      List.fold_left (fun a (l, u) -> a * (u - l + 1)) 1 span
    in
    Some
      {
        ci_array = array;
        ci_scope = scope;
        ci_directive = directive;
        ci_bytes_full = r0.Rgnfile.Row.size_bytes;
        ci_bytes_region = region_elems * r0.Rgnfile.Row.element_size;
      }

let copyin_for_lines (p : Project.t) ~array ~first_line ~last_line =
  let rows =
    List.filter
      (fun (r : Rgnfile.Row.t) ->
        r.Rgnfile.Row.array = array
        && r.Rgnfile.Row.mode = "USE"
        && r.Rgnfile.Row.line >= first_line
        && r.Rgnfile.Row.line <= last_line)
      p.Project.rows
  in
  match rows with
  | [] -> None
  | (r0 : Rgnfile.Row.t) :: _ -> copyin_of_rows p r0.Rgnfile.Row.scope array rows

let copyin_suggestions (p : Project.t) =
  group_by
    (fun (r : Rgnfile.Row.t) -> (r.Rgnfile.Row.scope, r.Rgnfile.Row.array))
    p.Project.rows
  |> List.filter_map (fun ((scope, array), rows) ->
         let uses =
           List.filter (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.mode = "USE") rows
         in
         copyin_of_rows p scope array uses)

let fusion_suggestions (p : Project.t) =
  group_by
    (fun (r : Rgnfile.Row.t) ->
      ( r.Rgnfile.Row.scope,
        r.Rgnfile.Row.array,
        r.Rgnfile.Row.lb,
        r.Rgnfile.Row.ub,
        r.Rgnfile.Row.stride ))
    (List.filter (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.mode = "USE") p.Project.rows)
  |> List.filter_map (fun ((scope, array, lb, ub, stride), rows) ->
         let lines =
           List.map (fun (r : Rgnfile.Row.t) -> r.Rgnfile.Row.line) rows
           |> List.sort_uniq compare
         in
         if List.length lines >= 2 then
           Some
             {
               fu_array = array;
               fu_scope = scope;
               fu_region = Printf.sprintf "%s:%s:%s" lb ub stride;
               fu_lines = lines;
             }
         else None)

type coverage = {
  cv_array : string;
  cv_scope : string;
  cv_declared : int;
  cv_accessed : int;
  cv_percent : int;
}

(* exact union size of 1-D integer intervals *)
let union_size intervals =
  let sorted = List.sort compare intervals in
  let rec go acc cur = function
    | [] -> (match cur with None -> acc | Some (l, u) -> acc + (u - l + 1))
    | (l, u) :: rest -> (
      match cur with
      | None -> go acc (Some (l, u)) rest
      | Some (cl, cu) ->
        if l <= cu + 1 then go acc (Some (cl, max cu u)) rest
        else go (acc + (cu - cl + 1)) (Some (l, u)) rest)
  in
  go 0 None sorted

let coverage (p : Project.t) =
  group_by
    (fun (r : Rgnfile.Row.t) -> (r.Rgnfile.Row.scope, r.Rgnfile.Row.array))
    p.Project.rows
  |> List.filter_map (fun ((scope, array), rows) ->
         let accesses =
           List.filter
             (fun (r : Rgnfile.Row.t) ->
               r.Rgnfile.Row.mode = "USE" || r.Rgnfile.Row.mode = "DEF")
             rows
         in
         match accesses with
         | [] -> None
         | (r0 : Rgnfile.Row.t) :: _ ->
           let declared = r0.Rgnfile.Row.tot_size in
           if declared <= 0 then None
           else begin
             let boxes =
               List.filter_map
                 (fun (r : Rgnfile.Row.t) ->
                   match
                     parse_dims r.Rgnfile.Row.lb, parse_dims r.Rgnfile.Row.ub
                   with
                   | Some lbs, Some ubs when List.length lbs = List.length ubs
                     ->
                     Some (List.combine lbs ubs)
                   | _ -> None)
                 accesses
             in
             if List.length boxes <> List.length accesses || boxes = [] then
               None
             else begin
               let accessed =
                 match List.hd boxes with
                 | [ _ ] ->
                   (* 1-D: exact interval union *)
                   union_size (List.map List.hd boxes)
                 | _ ->
                   (* n-D: bounding box of all accesses *)
                   (match span_of_rows accesses with
                   | Some span ->
                     List.fold_left (fun a (l, u) -> a * (u - l + 1)) 1 span
                   | None -> 0)
               in
               let accessed = min accessed declared in
               Some
                 {
                   cv_array = array;
                   cv_scope = scope;
                   cv_declared = declared;
                   cv_accessed = accessed;
                   cv_percent = accessed * 100 / declared;
                 }
             end
           end)

let hotspots ?(top = 10) (p : Project.t) =
  group_by
    (fun (r : Rgnfile.Row.t) ->
      (r.Rgnfile.Row.scope, r.Rgnfile.Row.array, r.Rgnfile.Row.mode))
    p.Project.rows
  |> List.filter_map (fun ((scope, array, mode), rows) ->
         match rows with
         | (r : Rgnfile.Row.t) :: _ when mode = "USE" || mode = "DEF" ->
           Some
             {
               hs_array = array;
               hs_scope = scope;
               hs_mode = mode;
               hs_density = r.Rgnfile.Row.acc_density;
               hs_references = r.Rgnfile.Row.references;
             }
         | _ -> None)
  |> List.sort (fun a b -> compare b.hs_density a.hs_density)
  |> List.filteri (fun i _ -> i < top)

let render p =
  let buf = Buffer.create 1024 in
  let section title = Buffer.add_string buf (Printf.sprintf "--- %s ---\n" title) in
  section "Hotspot arrays (by access density)";
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %-4s in %-10s density=%-5d refs=%d\n" h.hs_array
           h.hs_mode h.hs_scope h.hs_density h.hs_references))
    (hotspots p);
  section "Element coverage (accessed / declared)";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s in %-10s %d/%d elements (%d%%)\n" c.cv_array
           c.cv_scope c.cv_accessed c.cv_declared c.cv_percent))
    (coverage p);
  section "Arrays defined larger than used (resize candidates)";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s in %-10s declared [%s], accessed [%s]: save %d bytes\n"
           r.rs_array r.rs_scope
           (String.concat "|" (List.map string_of_int r.rs_declared))
           (String.concat "|"
              (List.map (fun (l, u) -> Printf.sprintf "%d:%d" l u) r.rs_accessed))
           r.rs_saving_bytes))
    (resize_suggestions p);
  section "Sub-array offload directives (reduce host/device transfers)";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s in %-10s %s (%d B instead of %d B)\n" c.ci_array
           c.ci_scope c.ci_directive c.ci_bytes_region c.ci_bytes_full))
    (copyin_suggestions p);
  section "Mergeable loops (same USE region at several lines)";
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s in %-10s region [%s] at lines %s\n" f.fu_array
           f.fu_scope f.fu_region
           (String.concat ", " (List.map string_of_int f.fu_lines))))
    (fusion_suggestions p);
  Buffer.contents buf
