(* The viewer side of the run ledger (lib/obs/ledger.ml): trend tables
   with sparklines over any recorded metric (dragon history), a threshold
   regression gate suitable for CI (dragon regress), and per-PU
   incrementality explanations (dragon explain).

   Records are plain Obs.Json values; a "metric" is a dotted path into
   one record — "wall_s", "cache.summary_misses", "solver.fm_runs",
   "verdicts.bounds.maybe" — resolved member by member, with numeric
   strings accepted so verdict tallies written as strings still trend. *)

type run = { run_id : string; record : Obs.Json.t }

let load ~cache_dir =
  match Obs.Ledger.read_all ~cache_dir with
  | [] ->
    Error
      (Printf.sprintf "no ledger records under %s (run uhc --cache-dir %s)"
         (Obs.Ledger.dir ~cache_dir) cache_dir)
  | records ->
    Ok (List.map (fun (run_id, record) -> { run_id; record }) records)

let metric record path =
  let rec walk v = function
    | [] -> (
      match v with
      | Obs.Json.Num f -> Some f
      | Obs.Json.Str s -> float_of_string_opt s
      | Obs.Json.Bool b -> Some (if b then 1.0 else 0.0)
      | _ -> None)
    | k :: rest -> (
      match Obs.Json.member k v with Some v' -> walk v' rest | None -> None)
  in
  walk record (String.split_on_char '.' path)

(* ---- history ------------------------------------------------------- *)

let spark_blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left min infinity values in
    let hi = List.fold_left max neg_infinity values in
    let buf = Buffer.create (3 * List.length values) in
    List.iter
      (fun v ->
        let i =
          if hi <= lo then 3
          else
            let t = (v -. lo) /. (hi -. lo) in
            min 7 (max 0 (int_of_float (t *. 7.999)))
        in
        Buffer.add_string buf spark_blocks.(i))
      values;
    Buffer.contents buf

let take_last n l =
  let len = List.length l in
  if n <= 0 || len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let history ?(last = 10) ~metrics runs =
  let runs = take_last last runs in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "ledger: %d run(s), oldest first\n" (List.length runs));
  List.iter
    (fun path ->
      let present =
        List.filter_map
          (fun r ->
            match metric r.record path with
            | Some v -> Some (r, v)
            | None -> None)
          runs
      in
      if present = [] then
        Buffer.add_string buf
          (Printf.sprintf "\n%s: not recorded in these runs\n" path)
      else begin
        let values = List.map snd present in
        Buffer.add_string buf
          (Printf.sprintf "\n%s  %s\n" path (sparkline values));
        Buffer.add_string buf
          (Printf.sprintf "  %-28s %14s  %s\n" "run" "value" "when");
        List.iter
          (fun (r, v) ->
            let ts =
              match metric r.record "ts" with
              | Some t ->
                let tm = Unix.localtime t in
                Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d"
                  (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
                  tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
                  tm.Unix.tm_sec
              | None -> "-"
            in
            Buffer.add_string buf
              (Printf.sprintf "  %-28s %14s  %s\n" r.run_id
                 (render_value v) ts))
          present;
        let lo = List.fold_left min infinity values in
        let hi = List.fold_left max neg_infinity values in
        let n = List.length values in
        let mean = List.fold_left ( +. ) 0. values /. float_of_int n in
        Buffer.add_string buf
          (Printf.sprintf "  min %s  mean %s  max %s\n" (render_value lo)
             (render_value mean) (render_value hi))
      end)
    metrics;
  Buffer.contents buf

(* ---- regress ------------------------------------------------------- *)

(* A rule allows the candidate to exceed the baseline by [pct] percent;
   0 means "no increase at all", a negative value demands a decrease
   (the hook verify.sh uses to inject a guaranteed breach on identical
   runs).  A baseline of 0 breaches on any positive candidate. *)
type rule = { r_path : string; r_pct : float }

type verdict = {
  v_path : string;
  v_baseline : float;
  v_candidate : float;
  v_allowed : float;
  v_breached : bool;
}

(* Only deterministic counters by default: verdict tallies, diagnostics
   and the cache miss count are byte-stable across reruns of the same
   inputs at any --jobs or --workers setting, so a no-change rerun
   always passes.  cache.summary_misses in particular enforces
   worker-count invariance: a warm rerun of an unchanged corpus must
   recompute nothing regardless of topology.  Wall-clock and
   scheduling-dependent counters (topology.steals, busy_ns) regress only
   when asked to via --threshold. *)
let default_rules =
  [
    { r_path = "verdicts.bounds.unsafe"; r_pct = 0. };
    { r_path = "verdicts.bounds.maybe"; r_pct = 0. };
    { r_path = "diagnostics"; r_pct = 0. };
    { r_path = "cache.summary_misses"; r_pct = 0. };
  ]

let parse_rule s =
  match String.rindex_opt s '=' with
  | None -> Error (Printf.sprintf "bad threshold %S (want PATH=PCT)" s)
  | Some i -> (
    let path = String.sub s 0 i in
    let pct = String.sub s (i + 1) (String.length s - i - 1) in
    match float_of_string_opt pct with
    | Some p when path <> "" -> Ok { r_path = path; r_pct = p }
    | _ -> Error (Printf.sprintf "bad threshold %S (want PATH=PCT)" s))

let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* [regress ?baseline ~rules runs] gates the newest run against the mean
   of up to [baseline] preceding comparable runs (same config digest;
   default 1 = the immediately preceding run).  Returns the rendered
   report and whether any rule breached. *)
let regress ?(baseline = 1) ~rules runs =
  match List.rev runs with
  | [] -> Error "empty ledger"
  | candidate :: older -> (
    let comparable =
      let cand_cfg =
        Option.bind (Obs.Json.member "config_digest" candidate.record)
          Obs.Json.to_string
      in
      List.filter
        (fun r ->
          match cand_cfg with
          | None -> true
          | Some d ->
            Option.bind (Obs.Json.member "config_digest" r.record)
              Obs.Json.to_string
            = Some d)
        older
    in
    let pool = if comparable = [] then older else comparable in
    match take_last baseline (List.rev pool) with
    | [] -> Error "ledger has no baseline run to compare against"
    | base_runs ->
      let rules = if rules = [] then default_rules else rules in
      let verdicts =
        List.filter_map
          (fun rule ->
            match metric candidate.record rule.r_path with
            | None -> None
            | Some cand ->
              let bases =
                List.filter_map
                  (fun r -> metric r.record rule.r_path)
                  base_runs
              in
              if bases = [] then None
              else
                let base = mean bases in
                let allowed = base *. (1. +. (rule.r_pct /. 100.)) in
                Some
                  {
                    v_path = rule.r_path;
                    v_baseline = base;
                    v_candidate = cand;
                    v_allowed = allowed;
                    v_breached = cand > allowed;
                  })
          rules
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "regress: candidate %s vs %d baseline run(s)%s\n"
           candidate.run_id (List.length base_runs)
           (if comparable = [] && older <> [] then
              " (no same-config run: using latest regardless)"
            else ""));
      Buffer.add_string buf
        (Printf.sprintf "  %-32s %12s %12s %12s  %s\n" "metric" "baseline"
           "candidate" "allowed" "status");
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "  %-32s %12s %12s %12s  %s\n" v.v_path
               (render_value v.v_baseline)
               (render_value v.v_candidate)
               (render_value v.v_allowed)
               (if v.v_breached then "BREACH" else "ok")))
        verdicts;
      let breached = List.exists (fun v -> v.v_breached) verdicts in
      Buffer.add_string buf
        (if verdicts = [] then
           "regress: no rule matched any recorded metric\n"
         else if breached then "regress: REGRESSION\n"
         else "regress: OK\n");
      Ok (Buffer.contents buf, breached))

(* ---- explain ------------------------------------------------------- *)

type pu = {
  pu_name : string;
  pu_file : string;
  pu_key1 : string;
  pu_key2 : string;
  pu_collect_hit : bool;
  pu_summary_hit : bool;
  pu_callees : string list;
}

let pus_of run =
  match Option.bind (Obs.Json.member "pus" run.record) Obs.Json.to_list with
  | None -> []
  | Some entries ->
    List.filter_map
      (fun e ->
        let str k = Option.bind (Obs.Json.member k e) Obs.Json.to_string in
        let flag k =
          match Obs.Json.member k e with
          | Some (Obs.Json.Bool b) -> b
          | _ -> false
        in
        match (str "name", str "file", str "key1", str "key2") with
        | Some pu_name, Some pu_file, Some pu_key1, Some pu_key2 ->
          Some
            {
              pu_name;
              pu_file;
              pu_key1;
              pu_key2;
              pu_collect_hit = flag "collect_hit";
              pu_summary_hit = flag "summary_hit";
              pu_callees =
                (match
                   Option.bind (Obs.Json.member "callees" e) Obs.Json.to_list
                 with
                | Some l -> List.filter_map Obs.Json.to_string l
                | None -> []);
            }
        | _ -> None)
      entries

let short_key k = if String.length k > 12 then String.sub k 0 12 else k

(* Transitive callers of [name] over the recorded callee edges — the
   blast radius: everything that re-summarizes if [name] changes. *)
let callers_closure pus name =
  let callers = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun c ->
          let cur = try Hashtbl.find callers c with Not_found -> [] in
          Hashtbl.replace callers c (p.pu_name :: cur))
        p.pu_callees)
    pus;
  let seen = Hashtbl.create 16 in
  let rec go acc = function
    | [] -> acc
    | n :: rest ->
      if Hashtbl.mem seen n then go acc rest
      else begin
        Hashtbl.replace seen n ();
        let direct = try Hashtbl.find callers n with Not_found -> [] in
        go (List.rev_append direct acc) (List.rev_append direct rest)
      end
  in
  List.sort_uniq compare (go [] [ name ])

(* Why did [cur]'s summary miss, given the previous run's entries?  The
   Merkle keys localize the cause: key1 changed — the PU's own body (or
   the global symtab); key1 unchanged but key2 changed — some transitive
   callee, and diffing the callees' keys names the culprit(s). *)
let explain_pu buf ~prev_pus ~cur_pus (cur : pu) =
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "%s (%s)\n" cur.pu_name cur.pu_file;
  bpf "  last run: collect %s, summary %s\n"
    (if cur.pu_collect_hit then "HIT" else "MISS")
    (if cur.pu_summary_hit then "HIT" else "MISS");
  (match List.find_opt (fun p -> p.pu_name = cur.pu_name) prev_pus with
  | None ->
    if prev_pus = [] then
      bpf "  no earlier run recorded: cold cache, everything was computed\n"
    else bpf "  not present in the previous run: new procedure\n"
  | Some prev ->
    if cur.pu_key1 <> prev.pu_key1 then
      bpf
        "  cause: its own content changed — key1 %s.. -> %s.. (body or \
         global symbol table edit)\n"
        (short_key prev.pu_key1) (short_key cur.pu_key1)
    else if cur.pu_key2 <> prev.pu_key2 then begin
      bpf
        "  cause: body unchanged (key1 stable) but a callee changed — \
         key2 %s.. -> %s..\n"
        (short_key prev.pu_key2) (short_key cur.pu_key2);
      let changed =
        List.filter_map
          (fun c ->
            match
              ( List.find_opt (fun p -> p.pu_name = c) prev_pus,
                List.find_opt (fun p -> p.pu_name = c) cur_pus )
            with
            | Some p, Some q when p.pu_key2 <> q.pu_key2 -> Some (c, p, q)
            | None, Some q -> Some (c, q, q)
            | _ -> None)
          cur.pu_callees
      in
      if changed = [] then
        bpf "  (no direct callee key changed: an indirect callee did)\n"
      else
        List.iter
          (fun (c, p, q) ->
            if p == q then bpf "    changed callee: %s (new)\n" c
            else
              bpf "    changed callee: %s (key2 %s.. -> %s..)\n" c
                (short_key p.pu_key2) (short_key q.pu_key2))
          changed
    end
    else if cur.pu_summary_hit then
      bpf "  unchanged since the previous run: served from cache\n"
    else
      bpf
        "  keys unchanged yet re-analyzed: cache was cold or evicted (or \
         a degraded earlier run was never persisted)\n");
  let radius =
    List.filter (fun n -> n <> cur.pu_name) (callers_closure cur_pus cur.pu_name)
  in
  bpf "  blast radius: %d transitive caller(s)%s\n" (List.length radius)
    (if radius = [] then "" else ": " ^ String.concat ", " radius)

let verdict_delta buf prev_run cur_run =
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match
    ( Option.bind (Obs.Json.member "verdicts" prev_run.record) (fun v ->
          match v with Obs.Json.Obj kvs -> Some kvs | _ -> None),
      Option.bind (Obs.Json.member "verdicts" cur_run.record) (fun v ->
          match v with Obs.Json.Obj kvs -> Some kvs | _ -> None) )
  with
  | Some prev, Some cur when cur <> [] ->
    List.iter
      (fun (analysis, tallies) ->
        match tallies with
        | Obs.Json.Obj kvs ->
          let line =
            List.filter_map
              (fun (k, v) ->
                let now =
                  match v with
                  | Obs.Json.Num f -> Some f
                  | Obs.Json.Str s -> float_of_string_opt s
                  | _ -> None
                in
                let before =
                  Option.bind (List.assoc_opt analysis prev) (fun t ->
                      Option.bind (Obs.Json.member k t) (fun v ->
                          match v with
                          | Obs.Json.Num f -> Some f
                          | Obs.Json.Str s -> float_of_string_opt s
                          | _ -> None))
                in
                match (before, now) with
                | Some b, Some n ->
                  Some
                    (Printf.sprintf "%s %s->%s" k (render_value b)
                       (render_value n))
                | None, Some n ->
                  Some (Printf.sprintf "%s -:%s" k (render_value n))
                | _ -> None)
              kvs
          in
          bpf "  verdicts[%s]: %s\n" analysis (String.concat ", " line)
        | _ -> ())
      cur
  | _ -> ()

let explain ~target runs =
  match List.rev runs with
  | [] -> Error "empty ledger"
  | cur_run :: older ->
    let cur_pus = pus_of cur_run in
    if cur_pus = [] then
      Error
        (Printf.sprintf "run %s recorded no per-PU entries" cur_run.run_id)
    else
      let prev_run = List.nth_opt older 0 in
      let prev_pus =
        match prev_run with Some r -> pus_of r | None -> []
      in
      let matches =
        List.filter
          (fun p ->
            p.pu_name = target || p.pu_file = target
            || Filename.basename p.pu_file = target)
          cur_pus
      in
      if matches = [] then
        Error
          (Printf.sprintf "no PU or file %S in run %s (have: %s)" target
             cur_run.run_id
             (String.concat ", " (List.map (fun p -> p.pu_name) cur_pus)))
      else begin
        let buf = Buffer.create 1024 in
        Buffer.add_string buf
          (Printf.sprintf "explain: run %s%s\n" cur_run.run_id
             (match prev_run with
             | Some r -> Printf.sprintf " vs previous %s" r.run_id
             | None -> " (first recorded run)"));
        List.iter (explain_pu buf ~prev_pus ~cur_pus) matches;
        (match prev_run with
        | Some r -> verdict_delta buf r cur_run
        | None -> ());
        Ok (Buffer.contents buf)
      end
