(** The array-analysis graph: the tabular view of Figs 6, 9, 12 and 14,
    with the find functionality ("All accesses to Array aarr will be
    highlighted in green").  ANSI colors are optional so output stays
    testable. *)

type sort_key = By_source | By_density | By_references | By_size | By_array

type options = {
  color : bool;       (** emit ANSI escapes for find-highlighting *)
  max_width : int;    (** columns are truncated to keep rows on one line *)
  sort : sort_key;    (** row order within a scope; {!By_source} keeps the
                          reference order the compiler emitted *)
  modes : string list option;  (** restrict to these Mode values *)
}

val default_options : options

val sort_key_of_string : string -> sort_key option
(** "source" | "density" | "refs" | "size" | "array" *)

val render :
  ?options:options ->
  ?scope:string ->
  ?find:string ->
  Project.t ->
  string
(** Without [scope], every scope is shown, each under its own heading (the
    procedure list of Fig 6's left column).  [find] highlights (or, without
    color, marks with [*]) the rows whose Array column equals the needle,
    and reports the match count at the bottom like the find button. *)

val find_rows : Project.t -> string -> Rgnfile.Row.t list
(** Exact array-name matches across all scopes. *)
