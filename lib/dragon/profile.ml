(* Renders a uhc --trace file as per-phase / per-PU / per-file tables.

   This is the text-mode counterpart of loading the trace into Perfetto:
   spans are grouped by their category ("phase", "pu", "scc", "io", ...)
   and aggregated by name, so a thousand per-PU collection spans collapse
   into one line per procedure with count / total / mean columns. *)

type row = {
  r_name : string;
  r_count : int;
  r_total_us : float;
  r_max_us : float;
}

let aggregate spans =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Obs.Trace.span) ->
      let r =
        match Hashtbl.find_opt tbl s.Obs.Trace.sp_name with
        | Some r -> r
        | None ->
          { r_name = s.Obs.Trace.sp_name; r_count = 0; r_total_us = 0.; r_max_us = 0. }
      in
      Hashtbl.replace tbl s.Obs.Trace.sp_name
        {
          r with
          r_count = r.r_count + 1;
          r_total_us = r.r_total_us +. s.Obs.Trace.sp_dur_us;
          r_max_us = max r.r_max_us s.Obs.Trace.sp_dur_us;
        })
    spans;
  let rows = Hashtbl.fold (fun _ r acc -> r :: acc) tbl [] in
  (* duration-descending, name as tiebreak so equal-duration rows render
     in a stable order *)
  List.sort
    (fun a b ->
      match compare b.r_total_us a.r_total_us with
      | 0 -> compare a.r_name b.r_name
      | c -> c)
    rows

let wall_us spans =
  List.fold_left
    (fun acc (s : Obs.Trace.span) ->
      max acc (s.Obs.Trace.sp_ts_us +. s.Obs.Trace.sp_dur_us))
    0. spans

let ms us = us /. 1000.

let render_section buf ~title ~wall ~top rows =
  if rows <> [] then begin
    Buffer.add_string buf (Printf.sprintf "%s\n" title);
    Buffer.add_string buf
      (Printf.sprintf "  %-32s %7s %12s %12s %7s\n" "name" "count" "total ms"
         "max ms" "%");
    let shown = if top > 0 then List.filteri (fun i _ -> i < top) rows else rows in
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %7d %12.3f %12.3f %6.1f%%\n" r.r_name
             r.r_count (ms r.r_total_us) (ms r.r_max_us)
             (if wall > 0. then 100. *. r.r_total_us /. wall else 0.)))
      shown;
    let omitted = List.length rows - List.length shown in
    if omitted > 0 then
      Buffer.add_string buf (Printf.sprintf "  ... %d more\n" omitted);
    Buffer.add_char buf '\n'
  end

let render ?(top = 20) (spans : Obs.Trace.span list) =
  let buf = Buffer.create 4096 in
  let wall = wall_us spans in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d spans, %.3f ms wall\n\n" (List.length spans)
       (ms wall));
  let by_cat cat =
    List.filter (fun (s : Obs.Trace.span) -> s.Obs.Trace.sp_cat = cat) spans
  in
  let known = [ "phase"; "pu"; "scc"; "io" ] in
  render_section buf ~title:"phases" ~wall ~top:0 (aggregate (by_cat "phase"));
  render_section buf ~title:"per-PU" ~wall ~top (aggregate (by_cat "pu"));
  render_section buf ~title:"SCCs" ~wall ~top (aggregate (by_cat "scc"));
  render_section buf ~title:"I/O" ~wall ~top (aggregate (by_cat "io"));
  let other =
    List.filter
      (fun (s : Obs.Trace.span) -> not (List.mem s.Obs.Trace.sp_cat known))
      spans
  in
  render_section buf ~title:"other" ~wall ~top (aggregate other);
  Buffer.contents buf

let of_file ?top ~path () =
  Result.map (render ?top) (Obs.Trace.load ~path)

(* ---- collapsed stacks ("folded" flamegraph input) ------------------- *)

(* One line per distinct stack, [root;child;leaf <self_us>] — the input
   format of flamegraph.pl / inferno / speedscope.  Stacks are rebuilt
   per track from the parsed spans' timestamps and depths; a frame's
   self time is its duration minus its direct children's, so the lines
   of one track sum back to that track's wall time.  Lines are sorted by
   stack for determinism (the folded format is order-insensitive). *)
let folded (spans : Obs.Trace.span list) =
  let spans =
    List.sort
      (fun (a : Obs.Trace.span) (b : Obs.Trace.span) ->
        match compare a.Obs.Trace.sp_tid b.Obs.Trace.sp_tid with
        | 0 -> (
          match compare a.Obs.Trace.sp_ts_us b.Obs.Trace.sp_ts_us with
          | 0 -> compare a.Obs.Trace.sp_depth b.Obs.Trace.sp_depth
          | c -> c)
        | c -> c)
      spans
  in
  let totals = Hashtbl.create 64 in
  let add path self =
    if self > 0. then
      let cur = try Hashtbl.find totals path with Not_found -> 0. in
      Hashtbl.replace totals path (cur +. self)
  in
  (* open frames, innermost first: (stack-path, duration, children ref,
     depth) *)
  let stack = ref [] in
  let rec pop_to depth =
    match !stack with
    | (path, dur, children, d) :: rest when d >= depth ->
      add path (Float.max 0. (dur -. !children));
      stack := rest;
      pop_to depth
    | _ -> ()
  in
  let last_tid = ref min_int in
  List.iter
    (fun (s : Obs.Trace.span) ->
      if s.Obs.Trace.sp_tid <> !last_tid then begin
        pop_to 0;
        last_tid := s.Obs.Trace.sp_tid
      end
      else pop_to s.Obs.Trace.sp_depth;
      let path =
        match !stack with
        | (parent, _, children, _) :: _ ->
          children := !children +. s.Obs.Trace.sp_dur_us;
          parent ^ ";" ^ s.Obs.Trace.sp_name
        | [] -> s.Obs.Trace.sp_name
      in
      stack :=
        (path, s.Obs.Trace.sp_dur_us, ref 0., s.Obs.Trace.sp_depth) :: !stack)
    spans;
  pop_to 0;
  let lines =
    Hashtbl.fold
      (fun path us acc ->
        let n = int_of_float (Float.round us) in
        if n > 0 then Printf.sprintf "%s %d\n" path n :: acc else acc)
      totals []
  in
  String.concat "" (List.sort compare lines)

let folded_of_file ~path = Result.map folded (Obs.Trace.load ~path)
