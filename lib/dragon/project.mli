(** A loaded Dragon project: the [.dgn] project file plus the [.rgn] rows,
    [.cfg] blocks and source files it references (paper, Section V-B steps
    3-4: "Invoke our Dragon tool and load the .dgn project").

    Dragon deliberately depends only on the plain-file formats — it is the
    other side of the compiler/GUI boundary, exactly as in the paper where
    the Qt tool knows nothing about OpenUH internals. *)

type t = {
  name : string;
  dgn : Rgnfile.Files.dgn;
  rows : Rgnfile.Row.t list;
  cfg : Rgnfile.Files.cfg_block list;
  sources : (string * string) list;  (** (path, contents) *)
}

val load : dir:string -> project:string -> (t, string) result
(** Reads [<dir>/<project>.dgn], [.rgn], [.cfg], and every source file the
    .dgn lists (resolved relative to [dir], silently skipped if absent). *)

val make :
  name:string ->
  dgn:Rgnfile.Files.dgn ->
  ?rows:Rgnfile.Row.t list ->
  ?cfg:Rgnfile.Files.cfg_block list ->
  ?sources:(string * string) list ->
  unit ->
  t
(** In-memory construction (used when compiler and viewer run in one
    process).  [rows], [cfg] and [sources] default to empty — a bare
    call-graph or feedback view needs none of them. *)

val scopes : t -> string list
(** "@" first, then the procedures that have rows, in row order. *)

val procedures : t -> string list
(** All procedures listed by the .dgn, definition order. *)

val rows_in_scope : t -> string -> Rgnfile.Row.t list

val arrays_in_scope : t -> string -> string list

val source : t -> string -> string option
(** By basename or full path. *)
