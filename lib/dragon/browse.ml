type hit = {
  h_file : string;
  h_line : int;
  h_text : string;
}

let lines_of s = String.split_on_char '\n' s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then false
  else
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0

let grep (p : Project.t) needle =
  List.concat_map
    (fun (file, contents) ->
      List.mapi
        (fun i line ->
          if contains line needle then
            Some { h_file = file; h_line = i + 1; h_text = line }
          else None)
        (lines_of contents)
      |> List.filter_map Fun.id)
    p.Project.sources

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let word_occurs line word =
  let nl = String.length line and nw = String.length word in
  let rec go i =
    if i + nw > nl then false
    else if
      String.sub line i nw = word
      && (i = 0 || not (is_word_char line.[i - 1]))
      && (i + nw = nl || not (is_word_char line.[i + nw]))
    then true
    else go (i + 1)
  in
  nw > 0 && go 0

let grep_array (p : Project.t) name =
  List.concat_map
    (fun (file, contents) ->
      List.mapi
        (fun i line ->
          if word_occurs line name then
            Some { h_file = file; h_line = i + 1; h_text = line }
          else None)
        (lines_of contents)
      |> List.filter_map Fun.id)
    p.Project.sources

let show (p : Project.t) ?(context = 2) ~file line =
  match Project.source p file with
  | None -> None
  | Some contents ->
    let all = Array.of_list (lines_of contents) in
    let n = Array.length all in
    if line < 1 || line > n then None
    else begin
      let lo = max 1 (line - context) and hi = min n (line + context) in
      let buf = Buffer.create 256 in
      for i = lo to hi do
        Buffer.add_string buf
          (Printf.sprintf "%c%4d | %s\n"
             (if i = line then '>' else ' ')
             i
             all.(i - 1))
      done;
      Some (Buffer.contents buf)
    end

let locate_row p (r : Rgnfile.Row.t) =
  (* the File column names the object; recover the source by basename *)
  let base = Filename.remove_extension r.Rgnfile.Row.file in
  let candidate =
    List.find_map
      (fun (path, _) ->
        if Filename.remove_extension (Filename.basename path) = base then
          Some path
        else None)
      p.Project.sources
  in
  match candidate with
  | None -> None
  | Some file -> show p ~file r.Rgnfile.Row.line
