(** Self-contained HTML report: the closest a batch tool gets to the Qt
    GUI's claims — "support for multiple platforms", "syntax highlighting",
    "scalable layout of graphical items and real-time search functionality"
    (paper, Section V).  One file, no external assets; the find box filters
    table rows live, scopes fold, sources are browsable with line anchors,
    and the advisor's guidance is embedded. *)

val render : Project.t -> string
(** The complete page. *)

val save : Project.t -> path:string -> unit
