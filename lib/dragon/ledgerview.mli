(** Consumers of the persistent run ledger ({!Obs.Ledger}): trend tables
    ([dragon history]), a CI regression gate ([dragon regress]) and
    per-procedure incrementality explanations ([dragon explain]).

    All three render to strings; [bin/dragon] only prints them and maps
    [regress]'s breach flag onto the exit code. *)

type run = { run_id : string; record : Obs.Json.t }
(** One ledger record, identified by its lexicographically time-ordered
    run id. *)

val load : cache_dir:string -> (run list, string) result
(** Every record under [<cache_dir>/ledger/], oldest first.  [Error]
    with a human-readable message when there are none. *)

val metric : Obs.Json.t -> string -> float option
(** [metric record "cache.summary_misses"] resolves a dotted path into
    the record: numbers as-is, numeric strings parsed, booleans as 0/1,
    anything else (or a missing member) is [None]. *)

(** {1 History} *)

val sparkline : float list -> string
(** Unicode block-character trend line, one glyph per value, scaled to
    the list's min..max (mid-height when all values are equal). *)

val history : ?last:int -> metrics:string list -> run list -> string
(** Rendered trend report over the [last] (default 10) runs: for each
    dotted metric path a sparkline, a run/value/timestamp table and
    min/mean/max. *)

(** {1 Regress} *)

type rule = { r_path : string; r_pct : float }
(** Allow the candidate to exceed the baseline by [r_pct] percent on
    metric [r_path]; [0.] means no increase at all, a negative value
    demands a decrease (so equal values breach — the verify.sh trick for
    injecting a guaranteed failure). *)

val default_rules : rule list
(** Deterministic-only gates — bounds [unsafe]/[maybe] tallies and the
    diagnostics count may not grow — so a no-change rerun always passes
    regardless of scheduling or wall-clock noise. *)

val parse_rule : string -> (rule, string) result
(** ["PATH=PCT"], e.g. ["solver.queries=5"] or ["wall_s=20"]. *)

val regress :
  ?baseline:int -> rules:rule list -> run list -> (string * bool, string) result
(** Gate the newest run against the mean of up to [baseline] (default 1)
    preceding runs with the same [config_digest] (falling back to all
    preceding runs, with a note, when none match).  Empty [rules] means
    {!default_rules}.  Returns the rendered report and whether any rule
    breached; [Error] when the ledger has no candidate or no baseline. *)

(** {1 Explain} *)

type pu = {
  pu_name : string;
  pu_file : string;
  pu_key1 : string;
  pu_key2 : string;
  pu_collect_hit : bool;
  pu_summary_hit : bool;
  pu_callees : string list;
}
(** The per-PU ledger section ({!Engine.pu_entry} as recorded). *)

val pus_of : run -> pu list
(** The record's [pus] array; empty if absent or malformed. *)

val explain : target:string -> run list -> (string, string) result
(** Why was [target] (a PU name, recorded file path, or file basename)
    re-analyzed in the newest run?  Compares its content keys against
    the previous run: [key1] changed — its own body or the global symbol
    table; only [key2] changed — a callee, and the changed direct
    callee(s) are named (or flagged as indirect).  Also prints the blast
    radius (transitive callers over the recorded call edges) and the
    run-over-run verdict tally delta.  [Error] when the target matches
    nothing, listing the recorded PU names. *)
