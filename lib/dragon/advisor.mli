(** The optimization advisor: turns table rows into the three kinds of
    guidance the paper derives from them (Section I's three aspects).

    - {!resize_suggestions}: "the user can redefine array aarr to be
      (int aarr[9]) instead of (int aarr[20]) since the remaining elements
      have not been used anywhere in the program";
    - {!copyin_suggestions}: "#pragma acc region for copyin(aarr[2:7])" /
      "!$acc region copyin(u(1:3,1:5,1:10,1:4))" — the union of the USE
      regions, printed in source dimension order;
    - {!fusion_suggestions}: repeated identical USE regions of one array at
      different lines — Case 1's mergeable loops;
    - {!hotspots}: arrays ranked by access density ("identify the hotspot
      arrays in the program"). *)

type resize = {
  rs_array : string;
  rs_scope : string;
  rs_declared : int list;   (** extents, row-major *)
  rs_accessed : (int * int) list;  (** [lo, hi] per dim actually touched *)
  rs_saving_bytes : int;
}

type copyin = {
  ci_array : string;
  ci_scope : string;
  ci_directive : string;
  ci_bytes_full : int;
  ci_bytes_region : int;
}

type fusion = {
  fu_array : string;
  fu_scope : string;
  fu_region : string;  (** "lb:ub:stride" *)
  fu_lines : int list;
}

type hotspot = {
  hs_array : string;
  hs_scope : string;
  hs_mode : string;
  hs_density : int;
  hs_references : int;
}

val resize_suggestions : Project.t -> resize list

val copyin_for_lines :
  Project.t -> array:string -> first_line:int -> last_line:int -> copyin option
(** Union of the USE regions of [array] whose references fall in the given
    source-line range — the per-loop directive of Case 2, where only the
    corner loop's regions of [u] feed the copyin, not the whole
    procedure's. *)

val copyin_suggestions : Project.t -> copyin list
val fusion_suggestions : Project.t -> fusion list
type coverage = {
  cv_array : string;
  cv_scope : string;
  cv_declared : int;   (** elements *)
  cv_accessed : int;   (** elements in the union of access regions;
                           exact interval union for 1-D arrays, bounding
                           box for higher ranks *)
  cv_percent : int;
}

val coverage : Project.t -> coverage list
(** The paper's "arrays which have portions that are not being accessed
    through the whole program" view: how much of each array is touched. *)

val hotspots : ?top:int -> Project.t -> hotspot list

val render : Project.t -> string
(** All four reports, human-readable. *)
