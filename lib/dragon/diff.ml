type change = {
  ch_key : string;
  ch_before : Rgnfile.Row.t option;
  ch_after : Rgnfile.Row.t option;
}

type t = {
  added : Rgnfile.Row.t list;
  removed : Rgnfile.Row.t list;
  recounted : change list;
}

(* identity of a row: everything except the counters and the source line
   (transformations move lines around) *)
let key (r : Rgnfile.Row.t) =
  Printf.sprintf "%s %s %s %s [%s:%s:%s]" r.Rgnfile.Row.scope
    r.Rgnfile.Row.array r.Rgnfile.Row.file r.Rgnfile.Row.mode
    r.Rgnfile.Row.lb r.Rgnfile.Row.ub r.Rgnfile.Row.stride

let counters (r : Rgnfile.Row.t) =
  (r.Rgnfile.Row.references, r.Rgnfile.Row.acc_density)

(* set diff by key; rows present on both sides but with different counters
   are reported as recounted *)
let diff before after =
  let b_keys = Hashtbl.create 64 and a_keys = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace b_keys (key r) r) before;
  List.iter (fun r -> Hashtbl.replace a_keys (key r) r) after;
  let added = List.filter (fun r -> not (Hashtbl.mem b_keys (key r))) after in
  let removed =
    List.filter (fun r -> not (Hashtbl.mem a_keys (key r))) before
  in
  let recounted =
    List.filter_map
      (fun r ->
        match Hashtbl.find_opt a_keys (key r) with
        | Some r' when counters r <> counters r' ->
          Some { ch_key = key r; ch_before = Some r; ch_after = Some r' }
        | _ -> None)
      before
    |> List.sort_uniq (fun a b -> compare a.ch_key b.ch_key)
  in
  { added; removed; recounted }

let is_empty t = t.added = [] && t.removed = [] && t.recounted = []

let render t =
  if is_empty t then "no differences\n"
  else begin
    let buf = Buffer.create 512 in
    List.iter
      (fun r -> Buffer.add_string buf (Printf.sprintf "+ %s\n" (key r)))
      t.added;
    List.iter
      (fun r -> Buffer.add_string buf (Printf.sprintf "- %s\n" (key r)))
      t.removed;
    List.iter
      (fun c ->
        match c.ch_before, c.ch_after with
        | Some b, Some a ->
          Buffer.add_string buf
            (Printf.sprintf "~ %s refs %d -> %d, density %d -> %d\n" c.ch_key
               b.Rgnfile.Row.references a.Rgnfile.Row.references
               b.Rgnfile.Row.acc_density a.Rgnfile.Row.acc_density)
        | _ -> ())
      t.recounted;
    Buffer.contents buf
  end
