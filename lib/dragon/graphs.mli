(** Call-graph and CFG views rendered from the plain files (Fig 11's
    browseable call graph; the control-flow-graph feature of Fig 5). *)

val callgraph_ascii : ?feedback:((string * string) * int) list -> Project.t -> string
(** Indented tree from the roots, with the "N procedures" footer shown at
    the bottom of Fig 11.  With [feedback] (dynamic call counts from the
    interpreter), each edge is annotated "xN" — the dynamic call graph with
    feedback information of Fig 5. *)

val callgraph_dot : Project.t -> string

val cfg_ascii : Project.t -> proc:string -> string option
val cfg_dot : Project.t -> proc:string -> string option

val cfg_procs : Project.t -> string list
