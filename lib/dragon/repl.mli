(** A line-oriented interactive browser over a loaded project — the batch
    equivalent of "an interactive system with a powerful GUI ... helps the
    user to efficiently navigate through these structures" (paper, Section
    V).  Commands mirror the GUI actions:

    - [scopes] — the procedure list (Fig 6's left column);
    - [table <scope>] — the array-analysis rows of one scope;
    - [find <array>] — highlight matches across scopes, with the count;
    - [grep <text>] / [locate <array>] — source browsing (Fig 7/13);
    - [callgraph] / [cfg <proc>] — the graph views;
    - [advise] — the optimization guidance;
    - [sort <key>] — reorder subsequent tables;
    - [help], [quit].

    {!eval} processes one command and returns the output, so the loop is
    trivially testable; {!run} wires it to stdin/stdout. *)

type state

val start : Project.t -> state

val eval : state -> string -> [ `Output of string | `Quit ]

val run : ?input:in_channel -> ?output:out_channel -> Project.t -> unit
