type sort_key = By_source | By_density | By_references | By_size | By_array

type options = {
  color : bool;
  max_width : int;
  sort : sort_key;
  modes : string list option;
}

let default_options =
  { color = false; max_width = 200; sort = By_source; modes = None }

let sort_key_of_string = function
  | "source" -> Some By_source
  | "density" -> Some By_density
  | "refs" -> Some By_references
  | "size" -> Some By_size
  | "array" -> Some By_array
  | _ -> None

let apply_options options rows =
  let rows =
    match options.modes with
    | None -> rows
    | Some ms ->
      List.filter (fun (r : Rgnfile.Row.t) -> List.mem r.Rgnfile.Row.mode ms) rows
  in
  match options.sort with
  | By_source -> rows
  | By_density ->
    List.stable_sort
      (fun (a : Rgnfile.Row.t) (b : Rgnfile.Row.t) ->
        compare b.Rgnfile.Row.acc_density a.Rgnfile.Row.acc_density)
      rows
  | By_references ->
    List.stable_sort
      (fun (a : Rgnfile.Row.t) (b : Rgnfile.Row.t) ->
        compare b.Rgnfile.Row.references a.Rgnfile.Row.references)
      rows
  | By_size ->
    List.stable_sort
      (fun (a : Rgnfile.Row.t) (b : Rgnfile.Row.t) ->
        compare b.Rgnfile.Row.size_bytes a.Rgnfile.Row.size_bytes)
      rows
  | By_array ->
    List.stable_sort
      (fun (a : Rgnfile.Row.t) (b : Rgnfile.Row.t) ->
        String.compare a.Rgnfile.Row.array b.Rgnfile.Row.array)
      rows

let headers =
  [ "Array"; "File"; "Mode"; "Refs"; "Dim"; "LB"; "UB"; "Stride"; "Esz";
    "Type"; "Dim_size"; "Tot_size"; "Size_bytes"; "Mem_Loc"; "Dens"; "Line" ]

let row_cells (r : Rgnfile.Row.t) =
  [
    r.Rgnfile.Row.array;
    r.Rgnfile.Row.file;
    r.Rgnfile.Row.mode;
    string_of_int r.Rgnfile.Row.references;
    string_of_int r.Rgnfile.Row.dimensions;
    r.Rgnfile.Row.lb;
    r.Rgnfile.Row.ub;
    r.Rgnfile.Row.stride;
    string_of_int r.Rgnfile.Row.element_size;
    r.Rgnfile.Row.data_type;
    r.Rgnfile.Row.dim_size;
    string_of_int r.Rgnfile.Row.tot_size;
    string_of_int r.Rgnfile.Row.size_bytes;
    r.Rgnfile.Row.mem_loc;
    string_of_int r.Rgnfile.Row.acc_density;
    string_of_int r.Rgnfile.Row.line;
  ]

let green s = "\027[32m" ^ s ^ "\027[0m"

let render_rows ~options ~find buf rows =
  let cells = List.map row_cells rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map String.length headers)
      cells
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let emit_line mark row =
    let line =
      String.concat "  " (List.map2 pad widths row) |> String.trim
      |> fun s -> mark ^ s
    in
    let line =
      if String.length line > options.max_width then
        String.sub line 0 options.max_width
      else line
    in
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  emit_line "  " headers;
  List.iter2
    (fun (r : Rgnfile.Row.t) row ->
      let matched =
        match find with Some f -> String.equal f r.Rgnfile.Row.array | None -> false
      in
      if matched && options.color then
        emit_line "  " (List.map green row)
      else emit_line (if matched then "* " else "  ") row)
    rows cells

let find_rows (p : Project.t) needle =
  List.filter
    (fun (r : Rgnfile.Row.t) -> String.equal r.Rgnfile.Row.array needle)
    p.Project.rows

let render ?(options = default_options) ?scope ?find p =
  let buf = Buffer.create 1024 in
  let scopes =
    match scope with Some s -> [ s ] | None -> Project.scopes p
  in
  List.iter
    (fun s ->
      let rows = apply_options options (Project.rows_in_scope p s) in
      if rows <> [] then begin
        Buffer.add_string buf
          (if s = "@" then "== @ (global arrays) ==\n"
           else Printf.sprintf "== %s ==\n" s);
        render_rows ~options ~find buf rows
      end)
    scopes;
  (match find with
  | Some f ->
    Buffer.add_string buf
      (Printf.sprintf "find %S: %d row(s)\n" f (List.length (find_rows p f)))
  | None -> ());
  Buffer.contents buf
