(** Viewer for [uhc --report] JSON files: parse the schema-versioned
    report dump and render the same aligned tables [uhc --analyses]
    prints.  Dragon reads the serialized shape with {!Obs.Json}, so the
    viewer works on report files from any producer that follows the
    schema (see README, "Client analyses"). *)

type report = {
  rv_analysis : string;  (** client name, e.g. ["bounds"] *)
  rv_summary : (string * string) list;  (** headline counters, in order *)
  rv_columns : string list;
  rv_rows : string list list;  (** every row matches [rv_columns] width *)
}

type t = { rv_schema_version : int; rv_reports : report list }

val known_schema_version : int
(** The report schema this viewer understands (1). *)

val parse : string -> (t, string) result
(** Rejects missing/unknown [schema_version], missing [reports], and rows
    whose width disagrees with their columns. *)

val parse_file : path:string -> (t, string) result

val render : ?only:string -> t -> string
(** All reports in file order, or just the analysis named [only]. *)

val names : t -> string list
(** Analysis names present, in file order. *)
