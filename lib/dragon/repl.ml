type state = {
  project : Project.t;
  mutable options : Table.options;
}

let start project = { project; options = Table.default_options }

let help_text =
  "commands:\n\
  \  scopes            list procedures with rows (and @ for globals)\n\
  \  table [scope]     show the array analysis table\n\
  \  find <array>      highlight an array's rows everywhere\n\
  \  grep <text>       search the sources\n\
  \  locate <array>    show each access of an array in the source\n\
  \  callgraph         show the call graph\n\
  \  cfg <proc>        show a procedure's control-flow graph\n\
  \  advise            optimization guidance\n\
  \  sort <key>        source | density | refs | size | array\n\
  \  help              this text\n\
  \  quit              leave\n"

let split_command line =
  match String.index_opt line ' ' with
  | None -> (String.trim line, "")
  | Some i ->
    ( String.trim (String.sub line 0 i),
      String.trim (String.sub line i (String.length line - i)) )

let eval st line =
  let cmd, arg = split_command line in
  match cmd with
  | "" -> `Output ""
  | "quit" | "exit" | "q" -> `Quit
  | "help" -> `Output help_text
  | "scopes" ->
    `Output (String.concat "\n" (Project.scopes st.project) ^ "\n")
  | "table" ->
    let scope = if arg = "" then None else Some arg in
    `Output (Table.render ~options:st.options ?scope st.project)
  | "find" ->
    if arg = "" then `Output "usage: find <array>\n"
    else `Output (Table.render ~options:st.options ~find:arg st.project)
  | "grep" ->
    if arg = "" then `Output "usage: grep <text>\n"
    else begin
      let hits = Browse.grep st.project arg in
      let lines =
        List.map
          (fun h ->
            Printf.sprintf "%s:%d: %s" h.Browse.h_file h.Browse.h_line
              h.Browse.h_text)
          hits
      in
      `Output
        (String.concat "\n" lines
        ^ Printf.sprintf "\n%d hit(s)\n" (List.length hits))
    end
  | "locate" ->
    if arg = "" then `Output "usage: locate <array>\n"
    else begin
      let rows = Table.find_rows st.project arg in
      if rows = [] then `Output (Printf.sprintf "no rows for %s\n" arg)
      else begin
        let buf = Buffer.create 256 in
        List.iter
          (fun (r : Rgnfile.Row.t) ->
            Buffer.add_string buf
              (Printf.sprintf "%s %s [%s:%s:%s] at %s line %d\n"
                 r.Rgnfile.Row.array r.Rgnfile.Row.mode r.Rgnfile.Row.lb
                 r.Rgnfile.Row.ub r.Rgnfile.Row.stride r.Rgnfile.Row.file
                 r.Rgnfile.Row.line);
            match Browse.locate_row st.project r with
            | Some excerpt -> Buffer.add_string buf excerpt
            | None -> ())
          rows;
        `Output (Buffer.contents buf)
      end
    end
  | "callgraph" -> `Output (Graphs.callgraph_ascii st.project)
  | "cfg" -> (
    match Graphs.cfg_ascii st.project ~proc:arg with
    | Some s -> `Output s
    | None -> `Output (Printf.sprintf "no CFG for %S\n" arg))
  | "advise" -> `Output (Advisor.render st.project)
  | "sort" -> (
    match Table.sort_key_of_string arg with
    | Some key ->
      st.options <- { st.options with Table.sort = key };
      `Output (Printf.sprintf "sorting by %s\n" arg)
    | None -> `Output "usage: sort source|density|refs|size|array\n")
  | other -> `Output (Printf.sprintf "unknown command %S (try help)\n" other)

let run ?(input = stdin) ?(output = stdout) project =
  let st = start project in
  let rec loop () =
    output_string output "dragon> ";
    flush output;
    match input_line input with
    | exception End_of_file -> ()
    | line -> (
      match eval st line with
      | `Quit -> ()
      | `Output s ->
        output_string output s;
        flush output;
        loop ())
  in
  loop ()
