(** Source browsing: the "distinctly visualize the source code" and
    "find / UNIX-like grep" features of the Array Analysis GUI (Fig 7), and
    the row-to-source locate feature. *)

type hit = {
  h_file : string;
  h_line : int;
  h_text : string;
}

val grep : Project.t -> string -> hit list
(** Substring search over every source file, like the GUI's grep box. *)

val grep_array : Project.t -> string -> hit list
(** Word-boundary occurrences of an array name (so [u] does not match
    [utmp]). *)

val show : Project.t -> ?context:int -> file:string -> int -> string option
(** A numbered excerpt around [line], with a [>] marker — what clicking a
    table row displays. *)

val locate_row : Project.t -> Rgnfile.Row.t -> string option
(** Excerpt at the row's recorded source line. *)
