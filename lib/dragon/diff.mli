(** Compare two analysis results (e.g. before and after [uhc --fuse] or a
    hand transformation): which table rows appeared, disappeared, or changed
    their reference counts/regions.  This is how a user verifies that a
    transformation did what the advisor promised. *)

type change = {
  ch_key : string;  (** "scope array mode [lb:ub:stride]" *)
  ch_before : Rgnfile.Row.t option;
  ch_after : Rgnfile.Row.t option;
}

type t = {
  added : Rgnfile.Row.t list;
  removed : Rgnfile.Row.t list;
  recounted : change list;  (** same region, different References/density *)
}

val diff : Rgnfile.Row.t list -> Rgnfile.Row.t list -> t

val is_empty : t -> bool

val render : t -> string
