(* Render a uhc --report JSON file (Analyses.Report.json_of_reports) as
   the same aligned tables uhc prints, without depending on lib/analyses:
   dragon only needs the serialized shape, which Obs.Json parses. *)

type report = {
  rv_analysis : string;
  rv_summary : (string * string) list;
  rv_columns : string list;
  rv_rows : string list list;
}

type t = { rv_schema_version : int; rv_reports : report list }

let known_schema_version = 1

let string_items j =
  match Obs.Json.to_list j with
  | None -> None
  | Some items ->
    let strs = List.filter_map Obs.Json.to_string items in
    if List.length strs = List.length items then Some strs else None

let parse_report j =
  let ( let* ) = Option.bind in
  let* analysis = Option.bind (Obs.Json.member "analysis" j) Obs.Json.to_string in
  let* summary =
    match Obs.Json.member "summary" j with
    | Some (Obs.Json.Obj kvs) ->
      let pairs =
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Obs.Json.to_string v))
          kvs
      in
      if List.length pairs = List.length kvs then Some pairs else None
    | _ -> None
  in
  let* columns = Option.bind (Obs.Json.member "columns" j) string_items in
  let* rows =
    match Option.bind (Obs.Json.member "rows" j) Obs.Json.to_list with
    | None -> None
    | Some items ->
      let rows = List.filter_map string_items items in
      if List.length rows = List.length items then Some rows else None
  in
  if List.for_all (fun r -> List.length r = List.length columns) rows then
    Some { rv_analysis = analysis; rv_summary = summary;
           rv_columns = columns; rv_rows = rows }
  else None

let parse text =
  match Obs.Json.parse text with
  | Error e -> Error e
  | Ok j -> (
    match Option.bind (Obs.Json.member "schema_version" j) Obs.Json.to_int with
    | None -> Error "missing schema_version"
    | Some v when v <> known_schema_version ->
      Error (Printf.sprintf "unknown schema_version %d (expected %d)" v
               known_schema_version)
    | Some v -> (
      match Option.bind (Obs.Json.member "reports" j) Obs.Json.to_list with
      | None -> Error "missing reports array"
      | Some items -> (
        let reports = List.filter_map parse_report items in
        if List.length reports <> List.length items then
          Error "malformed report entry"
        else Ok { rv_schema_version = v; rv_reports = reports })))

let parse_file ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> parse text

let render_report buf (r : report) =
  Buffer.add_string buf (Printf.sprintf "== analysis: %s ==\n" r.rv_analysis);
  if r.rv_summary <> [] then begin
    Buffer.add_string buf
      (String.concat "  "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) r.rv_summary));
    Buffer.add_char buf '\n'
  end;
  if r.rv_rows <> [] then begin
    let widths =
      List.fold_left
        (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
        (List.map String.length r.rv_columns)
        r.rv_rows
    in
    let n = List.length widths in
    let emit row =
      List.iteri
        (fun i (w, c) ->
          if i = n - 1 then Buffer.add_string buf c
          else begin
            Buffer.add_string buf c;
            Buffer.add_string buf (String.make (max 0 (w - String.length c)) ' ');
            Buffer.add_string buf "  "
          end)
        (List.combine widths row);
      Buffer.add_char buf '\n'
    in
    emit r.rv_columns;
    List.iter emit r.rv_rows
  end

let render ?only t =
  let reports =
    match only with
    | None -> t.rv_reports
    | Some name -> List.filter (fun r -> String.equal r.rv_analysis name) t.rv_reports
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf '\n';
      render_report buf r)
    reports;
  Buffer.contents buf

let names t = List.map (fun r -> r.rv_analysis) t.rv_reports
