let edges (p : Project.t) =
  List.map (fun (a, b, _) -> (a, b)) p.Project.dgn.Rgnfile.Files.dgn_edges

let procs (p : Project.t) = Project.procedures p

let callees p name =
  edges p
  |> List.filter_map (fun (a, b) -> if a = name then Some b else None)
  |> List.fold_left (fun acc b -> if List.mem b acc then acc else acc @ [ b ]) []

let roots p =
  let called = List.map snd (edges p) in
  List.filter (fun n -> not (List.mem n called)) (procs p)

let callgraph_ascii ?(feedback = []) p =
  let buf = Buffer.create 512 in
  let visited = Hashtbl.create 16 in
  let rec walk depth parent name =
    let note =
      match parent with
      | None -> ""
      | Some caller -> (
        match List.assoc_opt (caller, name) feedback with
        | Some n -> Printf.sprintf "  x%d" n
        | None -> if feedback = [] then "" else "  (never called)")
    in
    Buffer.add_string buf
      (Printf.sprintf "%s- %s%s\n" (String.make (2 * depth) ' ') name note);
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      List.iter (walk (depth + 1) (Some name)) (callees p name)
    end
  in
  List.iter (walk 0 None) (roots p);
  List.iter
    (fun n -> if not (Hashtbl.mem visited n) then walk 0 None n)
    (procs p);
  Buffer.add_string buf
    (Printf.sprintf "%d procedures\n" (List.length (procs p)));
  Buffer.contents buf

let callgraph_dot p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph callgraph {\n  node [shape=ellipse];\n";
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" n))
    (procs p);
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" a b))
    (edges p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let blocks_of p proc =
  List.filter
    (fun (b : Rgnfile.Files.cfg_block) -> b.Rgnfile.Files.cb_proc = proc)
    p.Project.cfg

let cfg_procs (p : Project.t) =
  p.Project.cfg
  |> List.map (fun (b : Rgnfile.Files.cfg_block) -> b.Rgnfile.Files.cb_proc)
  |> List.sort_uniq String.compare

let cfg_ascii p ~proc =
  match blocks_of p proc with
  | [] -> None
  | blocks ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "CFG of %s\n" proc);
    List.iter
      (fun (b : Rgnfile.Files.cfg_block) ->
        Buffer.add_string buf
          (Printf.sprintf "  B%-3d %-12s -> [%s]\n" b.Rgnfile.Files.cb_id
             b.Rgnfile.Files.cb_label
             (String.concat ", "
                (List.map (Printf.sprintf "B%d") b.Rgnfile.Files.cb_succs))))
      blocks;
    Some (Buffer.contents buf)

let cfg_dot p ~proc =
  match blocks_of p proc with
  | [] -> None
  | blocks ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  node [shape=box];\n" proc);
    List.iter
      (fun (b : Rgnfile.Files.cfg_block) ->
        Buffer.add_string buf
          (Printf.sprintf "  b%d [label=\"B%d %s\"];\n" b.Rgnfile.Files.cb_id
             b.Rgnfile.Files.cb_id b.Rgnfile.Files.cb_label);
        List.iter
          (fun s ->
            Buffer.add_string buf
              (Printf.sprintf "  b%d -> b%d;\n" b.Rgnfile.Files.cb_id s))
          b.Rgnfile.Files.cb_succs)
      blocks;
    Buffer.add_string buf "}\n";
    Some (Buffer.contents buf)
