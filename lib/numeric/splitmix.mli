(** Splitmix64 — the repo's one seeded PRNG.

    Deterministic by construction: the same seed yields the same sequence
    on every host.  [Corpus.Gen] keys whole corpora on it; [Engine_store]
    keys retry-backoff jitter on it.  No global state. *)

type t
(** A mutable stream position. *)

val make : int -> t
(** [make seed] starts a stream at [seed]. *)

val mix64 : int64 -> int64
(** The stateless splitmix64 finalizer: a strong 64-bit mixer usable as a
    one-shot hash (e.g. to derive decorrelated jitter from a composite
    key) as well as the step function behind {!next}. *)

val next : t -> int64
(** The next raw 64-bit draw. *)

val rand_int : t -> int -> int
(** [rand_int t n] draws uniformly from [0 .. n-1]; [n] must be positive. *)

val rand_float : t -> float
(** A draw in [0, 1). *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)
