(* Splitmix64: the repo's one seeded PRNG.

   Hoisted out of [Corpus.Gen] so every consumer that needs deterministic
   pseudo-randomness (corpus generation, store retry jitter) draws from the
   same stream definition.  Everything derives from the seed: the same seed
   yields the same sequence on every host, which is what lets generated
   corpora serve as pinned benchmark workloads and lets retry jitter stay
   reproducible under fault drills.  No OCaml [Random], clock, or
   hashtable-order dependence anywhere. *)

type t = { mutable st : int64 }

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { st = Int64.of_int seed }

let next r =
  r.st <- Int64.add r.st 0x9e3779b97f4a7c15L;
  mix64 r.st

let rand_int r n =
  if n <= 0 then invalid_arg "Splitmix.rand_int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int n))

let rand_float r =
  Int64.to_float (Int64.shift_right_logical (next r) 11) /. 9007199254740992.0

let chance r p = rand_float r < p
