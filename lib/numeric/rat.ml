exception Overflow

type t = { num : int; den : int }

let rec gcd a b =
  let a = Stdlib.abs a and b = Stdlib.abs b in
  if b = 0 then a else gcd b (a mod b)

(* Overflow-checked primitives.  [max_int / |b|] bounds the admissible |a|
   for a checked product; additions are checked by sign analysis. *)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then raise Overflow;
    p
  end

let checked_add a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow;
  s

let checked_neg a = if a = min_int then raise Overflow else -a

let lcm a b = if a = 0 || b = 0 then 0 else checked_mul (a / gcd a b) b

let make num den =
  if den = 0 then raise Division_by_zero;
  let num, den = if den < 0 then (checked_neg num, checked_neg den) else (num, den) in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

let is_integer t = t.den = 1

let to_int t =
  if t.den <> 1 then invalid_arg "Rat.to_int: not an integer";
  t.num

let to_float t = float_of_int t.num /. float_of_int t.den

(* a/b + c/d computed over the lcm of denominators to delay overflow. *)
let add a b =
  let g = gcd a.den b.den in
  let bd = b.den / g in
  let num = checked_add (checked_mul a.num bd) (checked_mul b.num (a.den / g)) in
  make num (checked_mul a.den bd)

let neg t = { t with num = checked_neg t.num }

let sub a b = add a (neg b)

(* Cross-reduce before multiplying to keep intermediates small. *)
let mul a b =
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

let inv t =
  if t.num = 0 then raise Division_by_zero;
  if t.num < 0 then { num = checked_neg t.den; den = checked_neg t.num }
  else { num = t.den; den = t.num }

let div a b = mul a (inv b)

let sign t = compare t.num 0

let compare a b =
  (* Avoid overflow in the general case by comparing via subtraction only
     when needed; the common cases share a denominator. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  else sign (sub a b)

let equal a b = a.num = b.num && a.den = b.den

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let abs t = if t.num < 0 then neg t else t

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let floor t =
  let open Stdlib in
  if t.num >= 0 then t.num / t.den
  else (t.num / t.den) - (if t.num mod t.den = 0 then 0 else 1)

let ceil t = Stdlib.( ~- ) (floor (neg t))

let pp ppf t =
  if Stdlib.( = ) t.den 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t
