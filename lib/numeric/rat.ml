exception Overflow

type t = { num : int; den : int }

let rec gcd a b =
  let a = Stdlib.abs a and b = Stdlib.abs b in
  if b = 0 then a else gcd b (a mod b)

(* Overflow-checked primitives.  [max_int / |b|] bounds the admissible |a|
   for a checked product; additions are checked by sign analysis. *)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then raise Overflow;
    p
  end

let checked_add a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow;
  s

let checked_neg a = if a = min_int then raise Overflow else -a

let lcm a b = if a = 0 || b = 0 then 0 else checked_mul (a / gcd a b) b

let make num den =
  if den = 0 then raise Division_by_zero;
  let num, den = if den < 0 then (checked_neg num, checked_neg den) else (num, den) in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

let is_integer t = t.den = 1

let to_int t =
  if t.den <> 1 then invalid_arg "Rat.to_int: not an integer";
  t.num

let to_float t = float_of_int t.num /. float_of_int t.den

(* a/b + c/d computed over the lcm of denominators to delay overflow. *)
let add a b =
  let g = gcd a.den b.den in
  let bd = b.den / g in
  let num = checked_add (checked_mul a.num bd) (checked_mul b.num (a.den / g)) in
  make num (checked_mul a.den bd)

let neg t = { t with num = checked_neg t.num }

let sub a b = add a (neg b)

(* Cross-reduce before multiplying to keep intermediates small. *)
let mul a b =
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

let inv t =
  if t.num = 0 then raise Division_by_zero;
  if t.num < 0 then { num = checked_neg t.den; den = checked_neg t.num }
  else { num = t.den; den = t.num }

let div a b = mul a (inv b)

let sign t = compare t.num 0

(* Exact comparison of p/q and r/s (all positive) by continued-fraction
   descent: the integer parts decide, otherwise the fractional parts
   m1/q and m2/s compare as s/m2 vs q/m1 (both flips reverse the order
   twice).  Terminates like the Euclidean algorithm; never multiplies, so
   it cannot overflow for any operand magnitude. *)
let rec cmp_pos_64 p q r s =
  let d1 = Int64.div p q and d2 = Int64.div r s in
  if d1 <> d2 then Int64.compare d1 d2
  else
    let m1 = Int64.rem p q and m2 = Int64.rem r s in
    if m1 = 0L && m2 = 0L then 0
    else if m1 = 0L then -1
    else if m2 = 0L then 1
    else cmp_pos_64 s m2 q m1

let fits31 n = -0x4000_0000 <= n && n <= 0x4000_0000

let compare a b =
  (* Never via [sign (sub a b)]: the cross products there overflow for large
     denominators.  Same-denominator and opposite-sign cases are free; then
     widened (Int64) cross-multiplication when both products provably fit,
     and a multiplication-free Euclidean descent for the rest. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  else
    let sa = Stdlib.compare a.num 0 and sb = Stdlib.compare b.num 0 in
    if sa <> sb then Stdlib.compare sa sb
    else if sa = 0 then 0
    else if fits31 a.num && fits31 b.num && fits31 a.den && fits31 b.den then
      Int64.compare
        (Int64.mul (Int64.of_int a.num) (Int64.of_int b.den))
        (Int64.mul (Int64.of_int b.num) (Int64.of_int a.den))
    else
      let abs64 n = Int64.abs (Int64.of_int n) in
      if sa > 0 then
        cmp_pos_64 (abs64 a.num) (Int64.of_int a.den) (abs64 b.num)
          (Int64.of_int b.den)
      else
        cmp_pos_64 (abs64 b.num) (Int64.of_int b.den) (abs64 a.num)
          (Int64.of_int a.den)

let equal a b = a.num = b.num && a.den = b.den

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let abs t = if t.num < 0 then neg t else t

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let floor t =
  let open Stdlib in
  if t.num >= 0 then t.num / t.den
  else (t.num / t.den) - (if t.num mod t.den = 0 then 0 else 1)

let ceil t = Stdlib.( ~- ) (floor (neg t))

let pp ppf t =
  if Stdlib.( = ) t.den 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t
