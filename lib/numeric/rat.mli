(** Exact rational arithmetic over OCaml's native integers.

    The Fourier-Motzkin solver in {!Linear} needs exact arithmetic: floating
    point would silently turn empty systems into feasible ones.  Arbitrary
    precision is not available in this environment, so rationals are built on
    63-bit integers with overflow-checked multiplication; any overflow raises
    {!Overflow} rather than wrapping, which keeps the analysis sound (callers
    mark the offending bound as MESSY instead of reporting a wrong region). *)

exception Overflow

type t = private { num : int; den : int }
(** Invariant: [den > 0] and [gcd (abs num) den = 1]. *)

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val is_integer : t -> bool

val to_int : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on division by {!zero}. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
(** Total order.  Exact for every representable rational: compares via
    widened (Int64) cross-multiplication when the products provably fit,
    falling back to a multiplication-free Euclidean descent near [max_int]
    — unlike subtraction-based comparison, it never raises {!Overflow}. *)

val equal : t -> t -> bool
val sign : t -> int

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val floor : t -> int
(** Greatest integer [<= t]. *)

val ceil : t -> int
(** Least integer [>= t]. *)

val gcd : int -> int -> int
(** Non-negative gcd; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
