(** Integer intervals with optional unbounded endpoints.

    Used by the region machinery as the concrete lattice for a single array
    dimension after Fourier-Motzkin projection: a bound that the solver could
    not establish stays [None] (the paper marks these UNPROJECTED). *)

type bound = Finite of int | Infinite

type t = private { lo : bound; hi : bound }
(** Invariant: if both bounds are finite then [lo <= hi]. *)

val make : bound -> bound -> t option
(** [make lo hi] is [None] when the interval is empty (finite [lo > hi]). *)

val make_exn : bound -> bound -> t
(** @raise Invalid_argument on an empty interval. *)

val of_ints : int -> int -> t option
val point : int -> t
val full : t

val lo : t -> bound
val hi : t -> bound

val contains : t -> int -> bool
val is_bounded : t -> bool

val size : t -> int option
(** Number of integers in the interval, [None] if unbounded. *)

val join : t -> t -> t
(** Smallest interval containing both (convex union). *)

val meet : t -> t -> t option
(** Intersection; [None] when empty. *)

val subset : t -> t -> bool
(** [subset a b] iff every point of [a] is in [b]. *)

val disjoint : t -> t -> bool

val shift : t -> int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_bound : Format.formatter -> bound -> unit
