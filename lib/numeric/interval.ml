type bound = Finite of int | Infinite

type t = { lo : bound; hi : bound }

let bound_le_lo a b =
  (* lower-bound order: Infinite (= -oo) is the least *)
  match a, b with
  | Infinite, _ -> true
  | _, Infinite -> false
  | Finite x, Finite y -> x <= y

let bound_le_hi a b =
  (* upper-bound order: Infinite (= +oo) is the greatest *)
  match a, b with
  | _, Infinite -> true
  | Infinite, _ -> false
  | Finite x, Finite y -> x <= y

let is_empty lo hi =
  match lo, hi with Finite l, Finite h -> l > h | _ -> false

let make lo hi = if is_empty lo hi then None else Some { lo; hi }

let make_exn lo hi =
  match make lo hi with
  | Some t -> t
  | None -> invalid_arg "Interval.make_exn: empty interval"

let of_ints l h = make (Finite l) (Finite h)
let point n = { lo = Finite n; hi = Finite n }
let full = { lo = Infinite; hi = Infinite }

let lo t = t.lo
let hi t = t.hi

let contains t n =
  (match t.lo with Infinite -> true | Finite l -> l <= n)
  && (match t.hi with Infinite -> true | Finite h -> n <= h)

let is_bounded t =
  match t.lo, t.hi with Finite _, Finite _ -> true | _ -> false

let size t =
  match t.lo, t.hi with
  | Finite l, Finite h -> Some (h - l + 1)
  | _ -> None

let join a b =
  let lo = if bound_le_lo a.lo b.lo then a.lo else b.lo in
  let hi = if bound_le_hi a.hi b.hi then b.hi else a.hi in
  { lo; hi }

let meet a b =
  let lo = if bound_le_lo a.lo b.lo then b.lo else a.lo in
  let hi = if bound_le_hi a.hi b.hi then a.hi else b.hi in
  make lo hi

let subset a b = bound_le_lo b.lo a.lo && bound_le_hi a.hi b.hi

let disjoint a b = match meet a b with None -> true | Some _ -> false

let shift t n =
  let f = function Infinite -> Infinite | Finite x -> Finite (x + n) in
  { lo = f t.lo; hi = f t.hi }

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp_bound ppf = function
  | Infinite -> Format.pp_print_string ppf "*"
  | Finite n -> Format.fprintf ppf "%d" n

let pp ppf t = Format.fprintf ppf "[%a:%a]" pp_bound t.lo pp_bound t.hi
