(* Recursive-descent JSON reader over a string, reporting byte offsets on
   error.  Escapes are decoded loosely (\uXXXX below 0x80 becomes the byte,
   anything else keeps the escaped character verbatim) — the files this
   parses are our own ASCII emissions. *)

type t =
  | Obj of (string * t) list
  | List of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Fail of string * int

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos >= len then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c)
    else advance ()
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    skip_ws ();
    if peek () <> '"' then fail "expected string";
    advance ();
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '\000' -> fail "bad escape"
        | 'n' ->
          Buffer.add_char b '\n';
          advance ()
        | 't' ->
          Buffer.add_char b '\t';
          advance ()
        | 'r' ->
          Buffer.add_char b '\r';
          advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > len then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_string b ("\\u" ^ hex)
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | c ->
          Buffer.add_char b c;
          advance ());
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            items (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when is_num_char c ->
      let start = !pos in
      while is_num_char (peek ()) do
        advance ()
      done;
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number")
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, off) ->
    Error (Printf.sprintf "%s at offset %d" msg off)

let parse_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error e -> Error e

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
