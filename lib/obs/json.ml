(* Recursive-descent JSON reader over a string, reporting byte offsets on
   error.  String escapes follow RFC 8259: only the nine escape characters
   are accepted, and \uXXXX decodes to the UTF-8 encoding of the code
   point — surrogate pairs (a \uD800-\uDBFF escape immediately followed by
   a \uDC00-\uDFFF escape) combine into one supplementary-plane character;
   a lone or misordered surrogate is a parse error, not a silent byte. *)

type t =
  | Obj of (string * t) list
  | List of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Fail of string * int

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos >= len then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c)
    else advance ()
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else fail "bad literal"
  in
  (* exactly four hex digits after a \u; int_of_string would also accept
     forms like "0x1_2" or a leading sign, so the digits are checked
     explicitly *)
  let read_hex4 () =
    if !pos + 4 > len then fail "bad \\u escape";
    let v = ref 0 in
    for k = 0 to 3 do
      let d =
        match s.[!pos + k] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d
    done;
    pos := !pos + 4;
    !v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    skip_ws ();
    if peek () <> '"' then fail "expected string";
    advance ();
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '\000' -> fail "bad escape"
        | '"' ->
          Buffer.add_char b '"';
          advance ()
        | '\\' ->
          Buffer.add_char b '\\';
          advance ()
        | '/' ->
          Buffer.add_char b '/';
          advance ()
        | 'b' ->
          Buffer.add_char b '\b';
          advance ()
        | 'f' ->
          Buffer.add_char b '\012';
          advance ()
        | 'n' ->
          Buffer.add_char b '\n';
          advance ()
        | 't' ->
          Buffer.add_char b '\t';
          advance ()
        | 'r' ->
          Buffer.add_char b '\r';
          advance ()
        | 'u' ->
          advance ();
          let code = read_hex4 () in
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* high surrogate: the low half must follow as another escape *)
            if
              not
                (!pos + 2 <= len && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
            then fail "lone high surrogate";
            pos := !pos + 2;
            let low = read_hex4 () in
            if not (low >= 0xDC00 && low <= 0xDFFF) then
              fail "bad low surrogate";
            add_utf8 b
              (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail "lone low surrogate"
          else add_utf8 b code
        | _ -> fail "bad escape character");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            items (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when is_num_char c ->
      let start = !pos in
      while is_num_char (peek ()) do
        advance ()
      done;
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number")
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, off) ->
    Error (Printf.sprintf "%s at offset %d" msg off)

let parse_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error e -> Error e

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
