(** Structured key=value logging on stderr.

    One line per event: [level event key=value ...], values quoted when
    they contain spaces.  The level gate is a single atomic read; [debug]
    takes a thunk so attribute lists are only built when they will be
    printed. *)

type level = Quiet | Info | Debug

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> level option
(** ["quiet"], ["info"], ["debug"]. *)

val info : string -> (string * string) list -> unit
(** [info event attrs] — printed at [Info] and [Debug]. *)

val debug : string -> (unit -> (string * string) list) -> unit
(** [debug event attrs] — printed at [Debug] only. *)
