(** The persistent run ledger: one schema-versioned JSON record per
    pipeline run under [<cache-dir>/ledger/], giving the tool memory
    across invocations — [dragon history] trends any metric over the last
    N runs, [dragon regress] gates CI on deltas, [dragon explain] answers
    "why was this procedure re-analyzed".

    This module owns only the mechanics (ids, durable appends, reads);
    the pipeline assembles the record content and the dragon viewers
    interpret it.  Writes are per-run files via temp + rename, so any
    number of concurrent runs may share one cache directory and readers
    never observe a torn record. *)

val schema_version : int
(** Version stamped into (and required of) every record; currently 1. *)

val dir : cache_dir:string -> string
(** [<cache-dir>/ledger] — where records live. *)

val new_run_id : unit -> string
(** A fresh run id: [<start-ns:016x>-<pid:06d>-<seq:04d>].  Lexicographic
    order is wall-clock start order; distinct across concurrent processes
    (pid) and across runs within one process (seq). *)

val record_path : cache_dir:string -> run_id:string -> string
(** Where {!append} puts the record: [<cache-dir>/ledger/<run_id>.jsonl]. *)

val append : cache_dir:string -> run_id:string -> string -> string
(** [append ~cache_dir ~run_id record] durably writes one JSONL record
    (a newline is added if missing), creating the ledger directory as
    needed, and returns the path written. *)

val read_all : cache_dir:string -> (string * Json.t) list
(** Every parseable record, oldest first, as [(run_id, record)].  Missing
    directory reads as empty; unparsable lines and unreadable files are
    skipped (a concurrent writer may be mid-rename). *)

val suffixed_path : run_id:string -> string -> string
(** [suffixed_path ~run_id "out/trace.json"] is ["out/trace-<run_id>.json"]
    — the collision-safe naming [--trace]/[--metrics] use when the ledger
    is active, so concurrent runs sharing a directory keep distinct
    observation files. *)
