(* Name -> instrument registry behind a mutex; the instruments themselves
   are atomics, so registration is the only synchronized operation —
   lookups happen once per call site at module initialization, updates are
   lock-free from any domain. *)

module Counter = struct
  type t = int Atomic.t

  let incr = Atomic.incr
  let add c n = ignore (Atomic.fetch_and_add c n)
  let get = Atomic.get
  let set = Atomic.set
end

module Gauge = struct
  type t = int Atomic.t

  let set = Atomic.set
  let get = Atomic.get
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_hist of Hist.t

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let mutex = Mutex.create ()

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hist _ -> "histogram"

let register name make match_ =
  Mutex.lock mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some i -> (
      match match_ i with
      | Some x -> Ok x
      | None -> Error (kind_name i))
    | None ->
      let x, i = make () in
      Hashtbl.replace registry name i;
      Ok x
  in
  Mutex.unlock mutex;
  match r with
  | Ok x -> x
  | Error k ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name k)

let counter name =
  register name
    (fun () ->
      let c = Atomic.make 0 in
      (c, I_counter c))
    (function I_counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = Atomic.make 0 in
      (g, I_gauge g))
    (function I_gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h = Hist.create () in
      (h, I_hist h))
    (function I_hist h -> Some h | _ -> None)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let sorted_items () =
  Mutex.lock mutex;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) items

let names () = List.map fst (sorted_items ())

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_buckets : (int * int * int) list;
}

type snapshot = S_counter of int | S_gauge of int | S_hist of hist_snapshot

let snapshot_hist h =
  {
    h_count = Hist.count h;
    h_sum = Hist.sum h;
    h_p50 = Hist.percentile h 0.5;
    h_p95 = Hist.percentile h 0.95;
    h_p99 = Hist.percentile h 0.99;
    h_buckets = Hist.nonzero_buckets h;
  }

let snapshot () =
  List.map
    (fun (name, i) ->
      ( name,
        match i with
        | I_counter c -> S_counter (Counter.get c)
        | I_gauge g -> S_gauge (Gauge.get g)
        | I_hist h -> S_hist (snapshot_hist h) ))
    (sorted_items ())

let reset_all () =
  List.iter
    (fun (_, i) ->
      match i with
      | I_counter c -> Atomic.set c 0
      | I_gauge g -> Atomic.set g 0
      | I_hist h -> Hist.reset h)
    (sorted_items ())

let dump_json () =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n  \"metrics\": [";
  let first = ref true in
  List.iter
    (fun (name, i) ->
      if !first then first := false else bpf ",";
      bpf "\n    {\"name\": \"%s\", \"kind\": \"%s\"" (Json.escape name)
        (kind_name i);
      (match i with
      | I_counter c -> bpf ", \"value\": %d" (Counter.get c)
      | I_gauge g -> bpf ", \"value\": %d" (Gauge.get g)
      | I_hist h ->
        bpf ", \"count\": %d, \"sum\": %d" (Hist.count h) (Hist.sum h);
        bpf ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f"
          (Hist.percentile h 0.5) (Hist.percentile h 0.95)
          (Hist.percentile h 0.99);
        bpf ", \"buckets\": [";
        let bfirst = ref true in
        List.iter
          (fun (lo, hi, c) ->
            if !bfirst then bfirst := false else bpf ", ";
            bpf "{\"lo\": %d, \"hi\": %d, \"count\": %d}" lo
              (if hi = max_int then -1 else hi)
              c)
          (Hist.nonzero_buckets h);
        bpf "]");
      bpf "}")
    (sorted_items ());
  bpf "\n  ]\n}\n";
  Buffer.contents b

let save ~path =
  let oc = open_out_bin path in
  output_string oc (dump_json ());
  close_out oc
