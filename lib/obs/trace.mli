(** The trace-event store behind {!Span}: per-domain append-only event
    buffers, exported as Chrome [trace_event] JSON (loadable in Perfetto or
    [chrome://tracing]), plus the inverse — parsing such a file back into
    paired spans for [dragon profile] and the tests.

    Collection is off by default; when off, {!begin_}/{!end_} are never
    reached ({!Span.with_} checks {!enabled} first).  When on, each domain
    appends to its own buffer — no locks on the hot path — and buffers are
    merged at {!export} time, one Perfetto track per domain. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val now_ns : unit -> int
(** Nanoseconds since an arbitrary process-wide origin (reset by {!clear});
    the timestamp base of every recorded event.  Monotonic
    ([CLOCK_MONOTONIC] via a C stub), so it never goes backwards under
    NTP slews or manual clock adjustment. *)

val clear : unit -> unit
(** Drop all recorded events and restart the timestamp origin. *)

val begin_ : name:string -> cat:string -> attrs:(string * string) list -> unit
val end_ : name:string -> unit

val export : unit -> string
(** The Chrome JSON document: [{"traceEvents": [...]}] with one ["B"]/["E"]
    pair per span, thread-name metadata per domain track, microsecond
    timestamps. *)

val save : path:string -> unit

(** A begin/end pair reconstructed from a trace file. *)
type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;  (** the worker track (domain) the span ran on *)
  sp_ts_us : float;
  sp_dur_us : float;
  sp_depth : int;  (** 0 = top-level; parents are the enclosing spans *)
  sp_args : (string * string) list;
}

val parse : string -> (span list, string) result
(** Rejects malformed JSON, non-monotone per-track timestamps, and
    unmatched or misnested begin/end pairs. *)

val load : path:string -> (span list, string) result
