(* Log-scale histogram: HDR-style bucketing with 4 sub-buckets per octave.

   Index layout: bucket 0 holds value 0, buckets 1..3 hold the exact values
   1..3, and for v >= 4 with m = floor(log2 v) the bucket is
   4*(m-1) + ((v >> (m-2)) land 3) — four equal-width sub-buckets per
   octave, so bucket bounds are within a factor of 2^(1/4) ~ 1.19 of any
   member.  All updates are single atomic adds: safe from any domain. *)

let nbuckets = 256

type t = {
  counts : int Atomic.t array;
  total : int Atomic.t;
  sum : int Atomic.t;
}

let create () =
  {
    counts = Array.init nbuckets (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
  }

let msb v =
  (* position of the highest set bit; v >= 1 *)
  let rec go m v = if v <= 1 then m else go (m + 1) (v lsr 1) in
  go 0 v

let index_of v =
  if v <= 0 then 0
  else if v < 4 then v
  else
    let m = msb v in
    let i = (4 * (m - 1)) + ((v lsr (m - 2)) land 3) in
    if i >= nbuckets then nbuckets - 1 else i

let bounds_of_index i =
  if i <= 0 then (0, 0)
  else if i < 4 then (i, i)
  else
    let m = (i / 4) + 1 and sub = i mod 4 in
    let width = 1 lsl (m - 2) in
    let lo = (4 + sub) * width in
    if i = nbuckets - 1 then (lo, max_int) else (lo, lo + width - 1)

let bounds_of_value v = bounds_of_index (index_of v)

let observe t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.counts.(index_of v) 1);
  ignore (Atomic.fetch_and_add t.total 1);
  ignore (Atomic.fetch_and_add t.sum v)

let count t = Atomic.get t.total
let sum t = Atomic.get t.sum

let percentile t p =
  let n = count t in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    let acc = ref 0 and found = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + Atomic.get t.counts.(i);
         if !acc >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let lo, hi = bounds_of_index !found in
    if hi = max_int then float_of_int lo
    else (float_of_int lo +. float_of_int hi) /. 2.0
  end

let nonzero_buckets t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get t.counts.(i) in
    if c > 0 then
      let lo, hi = bounds_of_index i in
      out := (lo, hi, c) :: !out
  done;
  !out

let merge a b =
  let t = create () in
  for i = 0 to nbuckets - 1 do
    Atomic.set t.counts.(i) (Atomic.get a.counts.(i) + Atomic.get b.counts.(i))
  done;
  Atomic.set t.total (count a + count b);
  Atomic.set t.sum (sum a + sum b);
  t

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0;
  Atomic.set t.sum 0

let pp_summary ppf t =
  Format.fprintf ppf "n=%d sum=%d p50=%.0f p95=%.0f p99=%.0f" (count t)
    (sum t) (percentile t 0.5) (percentile t 0.95) (percentile t 0.99)
