/* Monotonic clock for trace timestamps and phase timing.
 *
 * CLOCK_MONOTONIC never jumps backwards under NTP slews or manual clock
 * adjustment, which is the invariant Trace.parse enforces on per-track
 * timestamps and the ledger assumes for phase walls.  Returned as an OCaml
 * immediate (nanoseconds fit 62 bits for ~146 years of uptime).
 */
#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value uhc_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}
