let enabled = Trace.enabled
let set_enabled = Trace.set_enabled

let with_ ?(cat = "task") ?(attrs = []) ~name f =
  if not (Trace.enabled ()) then f ()
  else begin
    Trace.begin_ ~name ~cat ~attrs;
    match f () with
    | r ->
      Trace.end_ ~name;
      r
    | exception e ->
      Trace.end_ ~name;
      raise e
  end

let instant ?(cat = "task") ?(attrs = []) name =
  if Trace.enabled () then begin
    Trace.begin_ ~name ~cat ~attrs;
    Trace.end_ ~name
  end
