(** Lock-free log-scale histograms for latency-style integer samples.

    Buckets are geometric with four sub-buckets per octave (relative width
    2^(1/4) at most), so any recorded value is off from its bucket bounds by
    less than 25% — precise enough for p50/p95/p99 while the whole histogram
    is a fixed 256-slot array of atomics that worker domains update without
    locks. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val count : t -> int
(** Samples recorded so far. *)

val sum : t -> int
(** Sum of all recorded samples. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,1] is the midpoint of the bucket holding
    the rank-[ceil (p * count)] sample (0 if the histogram is empty).  The
    true sample of that rank lies inside the same bucket, i.e. within
    [bounds_of_value (truncate (percentile t p))]. *)

val bounds_of_value : int -> int * int
(** The inclusive [lo, hi] range of the bucket a value falls into (exposed
    for the percentile-accuracy tests and the JSON export). *)

val nonzero_buckets : t -> (int * int * int) list
(** [(lo, hi, count)] for every bucket with a nonzero count, ascending. *)

val merge : t -> t -> t
(** A fresh histogram holding both inputs' samples: per-bucket counts,
    total and sum are added bucket-wise (exact — both sides bucket values
    identically), so percentiles of the merge are those of the combined
    sample stream.  The inputs are left untouched. *)

val reset : t -> unit
(** Zero every bucket (tests / bench harness). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/sum/p50/p95/p99] rendering. *)
