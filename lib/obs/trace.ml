(* Per-domain event buffers merged into one Chrome trace_event document.

   Each domain that records a span gets its own growable event array,
   created on first use and registered (under a mutex, once per domain)
   in a global list; recording afterwards is plain appends to domain-local
   state.  [export] walks the registered buffers after the workers have
   drained — the engine only exports once its pool batches have joined, so
   no synchronization with in-flight writers is needed. *)

type ev =
  | Ev_b of { ts : int; name : string; cat : string; args : (string * string) list }
  | Ev_e of { ts : int; name : string }

type buf = {
  tid : int;
  main : bool;
  mutable evs : ev array;
  mutable len : int;
  mutable depth : int;
}

let dummy = Ev_e { ts = 0; name = "" }

let buffers : buf list ref = ref []
let buffers_mutex = Mutex.create ()

let epoch_ns = Atomic.make 0

external raw_now_ns : unit -> int = "uhc_obs_monotonic_ns" [@@noalloc]
(* CLOCK_MONOTONIC, so per-track timestamps can't go backwards under
   clock adjustment (wall time stays only in run-id timestamps). *)

let () = Atomic.set epoch_ns (raw_now_ns ())

let now_ns () = raw_now_ns () - Atomic.get epoch_ns

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          main = Domain.is_main_domain ();
          evs = Array.make 256 dummy;
          len = 0;
          depth = 0;
        }
      in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let push b ev =
  if b.len = Array.length b.evs then begin
    let evs = Array.make (2 * b.len) dummy in
    Array.blit b.evs 0 evs 0 b.len;
    b.evs <- evs
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

let begin_ ~name ~cat ~attrs =
  let b = Domain.DLS.get buf_key in
  let attrs = ("depth", string_of_int b.depth) :: attrs in
  b.depth <- b.depth + 1;
  push b (Ev_b { ts = now_ns (); name; cat; args = attrs })

let end_ ~name =
  let b = Domain.DLS.get buf_key in
  b.depth <- (if b.depth > 0 then b.depth - 1 else 0);
  push b (Ev_e { ts = now_ns (); name })

let clear () =
  Mutex.lock buffers_mutex;
  List.iter
    (fun b ->
      b.len <- 0;
      b.depth <- 0)
    !buffers;
  Mutex.unlock buffers_mutex;
  Atomic.set epoch_ns (raw_now_ns ())

let snapshot_buffers () =
  Mutex.lock buffers_mutex;
  let bs = !buffers in
  Mutex.unlock buffers_mutex;
  List.sort (fun a b -> compare a.tid b.tid) bs

let us_of_ns ns = float_of_int ns /. 1e3

let export () =
  let b = Buffer.create 65536 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [";
  let first = ref true in
  List.iter
    (fun buf ->
      if buf.len > 0 then begin
        (if !first then first := false else bpf ",");
        bpf
          "\n  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \
           \"tid\": %d, \"args\": {\"name\": \"%s\"}}"
          buf.tid
          (if buf.main then "main" else Printf.sprintf "worker-%d" buf.tid);
        for i = 0 to buf.len - 1 do
          match buf.evs.(i) with
          | Ev_b { ts; name; cat; args } ->
            bpf
              ",\n  {\"ph\": \"B\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d, \
               \"name\": \"%s\", \"cat\": \"%s\", \"args\": {"
              (us_of_ns ts) buf.tid (Json.escape name) (Json.escape cat);
            List.iteri
              (fun j (k, v) ->
                if j > 0 then bpf ", ";
                bpf "\"%s\": \"%s\"" (Json.escape k) (Json.escape v))
              args;
            bpf "}}"
          | Ev_e { ts; name } ->
            bpf
              ",\n  {\"ph\": \"E\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d, \
               \"name\": \"%s\"}"
              (us_of_ns ts) buf.tid (Json.escape name)
        done
      end)
    (snapshot_buffers ());
  bpf "\n]}\n";
  Buffer.contents b

let save ~path =
  let oc = open_out_bin path in
  output_string oc (export ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing a trace file back into paired spans *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_ts_us : float;
  sp_dur_us : float;
  sp_depth : int;
  sp_args : (string * string) list;
}

type open_span = {
  os_name : string;
  os_cat : string;
  os_ts : float;
  os_args : (string * string) list;
}

let parse text =
  match Json.parse text with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok root -> (
    match Option.bind (Json.member "traceEvents" root) Json.to_list with
    | None -> Error "no \"traceEvents\" array"
    | Some events -> (
      let tracks : (int, float * open_span list) Hashtbl.t =
        Hashtbl.create 8
      in
      let out = ref [] in
      let err = ref None in
      let fail i msg =
        if !err = None then
          err := Some (Printf.sprintf "event %d: %s" i msg)
      in
      List.iteri
        (fun i ev ->
          if !err = None then begin
            let str k = Option.bind (Json.member k ev) Json.to_string in
            let num k = Option.bind (Json.member k ev) Json.to_float in
            match str "ph" with
            | None -> fail i "missing \"ph\""
            | Some "M" -> ()
            | Some (("B" | "E") as ph) -> (
              match (num "ts", Option.bind (Json.member "tid" ev) Json.to_int)
              with
              | None, _ -> fail i "missing numeric \"ts\""
              | _, None -> fail i "missing integer \"tid\""
              | Some ts, Some tid -> (
                let last, stack =
                  match Hashtbl.find_opt tracks tid with
                  | Some s -> s
                  | None -> (neg_infinity, [])
                in
                if ts < last then
                  fail i
                    (Printf.sprintf "timestamps not monotone on track %d" tid)
                else
                  let name = Option.value (str "name") ~default:"" in
                  match ph with
                  | "B" ->
                    let args =
                      match Json.member "args" ev with
                      | Some (Json.Obj kvs) ->
                        List.filter_map
                          (fun (k, v) ->
                            Option.map (fun s -> (k, s)) (Json.to_string v))
                          kvs
                      | _ -> []
                    in
                    Hashtbl.replace tracks tid
                      ( ts,
                        { os_name = name; os_cat =
                            Option.value (str "cat") ~default:"";
                          os_ts = ts; os_args = args }
                        :: stack )
                  | _ -> (
                    match stack with
                    | [] ->
                      fail i
                        (Printf.sprintf "unmatched end %S on track %d" name
                           tid)
                    | top :: rest ->
                      if name <> "" && name <> top.os_name then
                        fail i
                          (Printf.sprintf
                             "end %S does not match open span %S" name
                             top.os_name)
                      else begin
                        out :=
                          {
                            sp_name = top.os_name;
                            sp_cat = top.os_cat;
                            sp_tid = tid;
                            sp_ts_us = top.os_ts;
                            sp_dur_us = ts -. top.os_ts;
                            sp_depth = List.length rest;
                            sp_args = top.os_args;
                          }
                          :: !out;
                        Hashtbl.replace tracks tid (ts, rest)
                      end)))
            | Some other -> fail i (Printf.sprintf "unknown ph %S" other)
          end)
        events;
      (match !err with
      | None ->
        Hashtbl.iter
          (fun tid (_, stack) ->
            match stack with
            | [] -> ()
            | top :: _ ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf "span %S left open on track %d"
                       top.os_name tid))
          tracks
      | Some _ -> ());
      match !err with
      | Some e -> Error e
      | None ->
        Ok
          (List.sort
             (fun a b -> compare (a.sp_ts_us, a.sp_tid) (b.sp_ts_us, b.sp_tid))
             !out)))

let load ~path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error e -> Error e
