(* The persistent run ledger: one schema-versioned JSON record per
   pipeline run, appended under <cache-dir>/ledger/.

   This module is deliberately generic — lib/obs knows nothing about the
   engine — so it only owns the mechanics: run-id generation, durable
   appends, and reading the records back.  The record *content* is
   assembled by the pipeline (lib/engine) and consumed by dragon
   history/regress/explain.

   Concurrency: every run writes its own file, named by the run id, via
   write-to-temp + rename — two processes sharing a cache directory can
   never interleave bytes or clobber each other, and a reader only ever
   sees complete records.  Run ids order lexicographically by wall-clock
   start time (nanosecond hex, zero-padded), so a directory listing is the
   run history. *)

let schema_version = 1
let dir ~cache_dir = Filename.concat cache_dir "ledger"

(* <ns-since-epoch:016x>-<pid:06d>-<seq:04d>: time-ordered across
   machines-with-one-clock, collision-free across processes (pid) and
   within a process (seq). *)
let seq = Atomic.make 0

let new_run_id () =
  let ns = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  Printf.sprintf "%016Lx-%06d-%04d" ns
    (Unix.getpid () mod 1_000_000)
    (Atomic.fetch_and_add seq 1)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let record_path ~cache_dir ~run_id =
  Filename.concat (dir ~cache_dir) (run_id ^ ".jsonl")

let append ~cache_dir ~run_id record =
  let d = dir ~cache_dir in
  mkdir_p d;
  let final = record_path ~cache_dir ~run_id in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc record;
  if String.length record = 0 || record.[String.length record - 1] <> '\n'
  then output_char oc '\n';
  close_out oc;
  Sys.rename tmp final;
  final

(* Every parseable record in the ledger, oldest first.  A record's run id
   is read from the record itself when present (one file can hold several
   JSONL lines), falling back to the file name; unreadable or half-written
   files are skipped — a reader must tolerate a concurrent writer. *)
let read_all ~cache_dir =
  let d = dir ~cache_dir in
  let files =
    match Sys.readdir d with
    | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
      |> List.sort compare
    | exception Sys_error _ -> []
  in
  List.concat_map
    (fun file ->
      let path = Filename.concat d file in
      match
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      with
      | exception Sys_error _ -> []
      | contents ->
        String.split_on_char '\n' contents
        |> List.filter_map (fun line ->
               if String.trim line = "" then None
               else
                 match Json.parse line with
                 | Error _ -> None
                 | Ok record ->
                   let run_id =
                     match
                       Option.bind (Json.member "run_id" record)
                         Json.to_string
                     with
                     | Some id -> id
                     | None -> Filename.chop_suffix file ".jsonl"
                   in
                   Some (run_id, record)))
    files
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Collision-safe variant of a user-chosen output path: "out/trace.json"
   with run id R becomes "out/trace-R.json", so concurrent runs sharing a
   directory never overwrite each other's traces or metrics dumps. *)
let suffixed_path ~run_id path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let stem = Filename.remove_extension base in
  let ext = Filename.extension base in
  Filename.concat dir (stem ^ "-" ^ run_id ^ ext)
