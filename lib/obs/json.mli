(** A minimal dependency-free JSON reader.

    Just enough for the observability files this library emits (Chrome
    traces, metrics dumps, bench records): full JSON value grammar on the
    way in, no writer — emitters build their JSON with [Buffer] directly so
    the output formatting stays under their control. *)

type t =
  | Obj of (string * t) list
  | List of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

val parse : string -> (t, string) result
(** The error string includes the byte offset of the failure.  String
    escapes are RFC 8259-strict: only the nine escape characters are
    accepted, [\uXXXX] decodes to UTF-8 (surrogate pairs combine into one
    supplementary-plane character), and a lone surrogate, bad hex digit or
    unknown escape character is a parse error. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_float : t -> float option
val to_int : t -> int option

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON output
    (shared by every emitter in the tree). *)
