(* Mutex-guarded accumulator: contention is one lock per worker per batch,
   far off any hot path. *)

type t = {
  mutex : Mutex.t;
  mutable alloc : float;
  mutable busy : int;
  mutable n : int;
}

let create () = { mutex = Mutex.create (); alloc = 0.0; busy = 0; n = 0 }

let add t ~alloc_bytes ~busy_ns =
  Mutex.lock t.mutex;
  t.alloc <- t.alloc +. alloc_bytes;
  t.busy <- t.busy + busy_ns;
  t.n <- t.n + 1;
  Mutex.unlock t.mutex

let with_lock t f =
  Mutex.lock t.mutex;
  let r = f () in
  Mutex.unlock t.mutex;
  r

let alloc_bytes t = with_lock t (fun () -> t.alloc)
let busy_ns t = with_lock t (fun () -> t.busy)
let contributors t = with_lock t (fun () -> t.n)

let ambient : t option Atomic.t = Atomic.make None
let set_current s = Atomic.set ambient s
let current () = Atomic.get ambient
