(** The process-wide metrics registry: named counters, gauges and log-scale
    latency histograms.

    Instruments are registered once by name and shared from then on —
    [counter name] called twice returns the same counter, so modules can
    obtain their instruments idempotently at initialization.  Registering
    one name as two different instrument kinds raises [Invalid_argument]:
    a name identifies exactly one time series.

    Counters and gauges are always live (they back {!Linear.Solver_stats}
    and the engine statistics, which predate this registry).  Histogram
    *observation at timed call sites* is gated by {!enabled} so that hot
    paths pay one branch — no clock reads — when metrics are off. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val set : t -> int -> unit
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val get : t -> int
end

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : string -> Hist.t

val set_enabled : bool -> unit
(** Turn timed-histogram recording on ([uhc --metrics]). *)

val enabled : unit -> bool
(** One atomic read; call sites guard their clock reads with this. *)

val names : unit -> string list
(** Registered metric names, sorted. *)

(** A point-in-time reading of one histogram: count/sum, the three standard
    percentiles, and the nonzero [(lo, hi, count)] buckets (ascending;
    [hi = max_int] on the overflow bucket). *)
type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_buckets : (int * int * int) list;
}

type snapshot = S_counter of int | S_gauge of int | S_hist of hist_snapshot

val snapshot : unit -> (string * snapshot) list
(** Every registered instrument with its current value, sorted by name —
    the enumeration behind {!dump_json}, exposed so the run ledger (and any
    other exporter) can serialize the registry without re-parsing JSON. *)

val snapshot_hist : Hist.t -> hist_snapshot
(** Snapshot one histogram (shared by {!snapshot} and the ledger tests). *)

val reset_all : unit -> unit
(** Zero every registered instrument (tests / bench harness). *)

val dump_json : unit -> string
(** The full registry as a JSON document:
    [{"metrics":[{"name":..,"kind":..,...}, ...]}], metrics sorted by name,
    histograms carrying count/sum/p50/p95/p99 and their nonzero buckets. *)

val save : path:string -> unit
(** Write {!dump_json} to [path]. *)
