(** Per-domain attribution sinks.

    A sink collects allocation and busy-time contributions from worker
    domains during one engine phase; the coordinator installs it as the
    ambient sink ({!set_current}), workers report their deltas at batch
    drain, and the coordinator reads the merged totals after the pool
    barrier.  This is what makes worker-domain allocation attributable in
    [Engine.Stats] — the coordinating domain's own [Gc.allocated_bytes]
    delta only ever saw its own heap.

    Always on: one atomic load per batch participation, two
    [Gc.allocated_bytes] calls per worker per batch — nothing here needs
    the tracing or metrics switches. *)

type t

val create : unit -> t

val add : t -> alloc_bytes:float -> busy_ns:int -> unit
(** Merge one domain's contribution (thread-safe). *)

val alloc_bytes : t -> float
val busy_ns : t -> int

val contributors : t -> int
(** Number of contributions merged (one per worker per batch). *)

val set_current : t option -> unit
(** Install/remove the ambient sink (coordinator only). *)

val current : unit -> t option
