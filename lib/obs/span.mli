(** Hierarchical span tracing over {!Trace}.

    [with_ ~name f] runs [f] inside a begin/end pair on the calling
    domain's track.  With tracing disabled (the default) the call is one
    atomic load and a branch — no allocation, no clock read — so spans can
    stay in hot paths unconditionally.  Nesting is implicit: spans opened
    while another is open on the same domain become its children (the
    recorded [depth] attribute carries the parent link). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_ :
  ?cat:string -> ?attrs:(string * string) list -> name:string ->
  (unit -> 'a) -> 'a
(** [cat] defaults to ["task"]; it groups spans for [dragon profile]
    (["phase"], ["pu"], ["scc"], ["io"], ...).  The span is closed on
    exceptions too. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
(** A zero-duration marker span. *)
