type level = Quiet | Info | Debug

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let current = Atomic.make Quiet
let set_level l = Atomic.set current l
let level () = Atomic.get current

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let needs_quoting v =
  v = "" || String.exists (fun c -> c = ' ' || c = '=' || c = '"') v

let emit lvl event attrs =
  let b = Buffer.create 128 in
  Buffer.add_string b (match lvl with Debug -> "debug " | _ -> "info ");
  Buffer.add_string b event;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      if needs_quoting v then begin
        Buffer.add_char b '"';
        String.iter
          (fun c ->
            if c = '"' || c = '\\' then Buffer.add_char b '\\';
            Buffer.add_char b c)
          v;
        Buffer.add_char b '"'
      end
      else Buffer.add_string b v)
    attrs;
  Buffer.add_char b '\n';
  prerr_string (Buffer.contents b);
  flush stderr

let info event attrs =
  if rank (Atomic.get current) >= rank Info then emit Info event attrs

let debug event attrs =
  if rank (Atomic.get current) >= rank Debug then emit Debug event (attrs ())
