type config = {
  line_bytes : int;
  sets : int;
  ways : int;
}

let direct_mapped ~line_bytes ~lines = { line_bytes; sets = lines; ways = 1 }

let two_way ~line_bytes ~lines =
  { line_bytes; sets = lines / 2; ways = 2 }

type stats = {
  reads : int;
  writes : int;
  read_misses : int;
  write_misses : int;
  evictions : int;
}

let hits s = s.reads + s.writes - s.read_misses - s.write_misses
let misses s = s.read_misses + s.write_misses

let miss_rate s =
  let total = s.reads + s.writes in
  if total = 0 then 0.0 else float_of_int (misses s) /. float_of_int total

(* one slot per way: tag (-1 = invalid) and LRU timestamp *)
type t = {
  cfg : config;
  tags : int array;      (* sets * ways *)
  stamps : int array;
  mutable clock : int;
  mutable reads : int;
  mutable writes : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable evictions : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create cfg =
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if not (is_pow2 cfg.sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if cfg.ways < 1 then invalid_arg "Cache.create: ways must be >= 1";
  {
    cfg;
    tags = Array.make (cfg.sets * cfg.ways) (-1);
    stamps = Array.make (cfg.sets * cfg.ways) 0;
    clock = 0;
    reads = 0;
    writes = 0;
    read_misses = 0;
    write_misses = 0;
    evictions = 0;
  }

let touch_line t ~write line =
  let set = line land (t.cfg.sets - 1) in
  let tag = line lsr 0 in
  let base = set * t.cfg.ways in
  t.clock <- t.clock + 1;
  if write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
  (* hit? *)
  let hit = ref false in
  for w = 0 to t.cfg.ways - 1 do
    if t.tags.(base + w) = tag then begin
      hit := true;
      t.stamps.(base + w) <- t.clock
    end
  done;
  if not !hit then begin
    if write then t.write_misses <- t.write_misses + 1
    else t.read_misses <- t.read_misses + 1;
    (* LRU victim *)
    let victim = ref 0 in
    for w = 1 to t.cfg.ways - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    if t.tags.(base + !victim) >= 0 then t.evictions <- t.evictions + 1;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.clock
  end

let access t ~write ~addr ~bytes =
  if bytes <= 0 then invalid_arg "Cache.access: bytes must be positive";
  let first = addr / t.cfg.line_bytes in
  let last = (addr + bytes - 1) / t.cfg.line_bytes in
  for line = first to last do
    touch_line t ~write line
  done

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    read_misses = t.read_misses;
    write_misses = t.write_misses;
    evictions = t.evictions;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.read_misses <- 0;
  t.write_misses <- 0;
  t.evictions <- 0

let config t = t.cfg

let capacity_bytes cfg = cfg.line_bytes * cfg.sets * cfg.ways

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "reads=%d writes=%d misses=%d (r%d/w%d) evictions=%d miss-rate=%.4f"
    s.reads s.writes (misses s) s.read_misses s.write_misses s.evictions
    (miss_rate s)
