(** Set-associative LRU cache simulator.

    The paper motivates the tool with "compile time optimizations for cache
    behavior in hierarchical memory machines" and Case 1 claims the guided
    loop fusion "could optimize cache utilization ... by avoiding the delay
    resulting from fetching XCR from memory again"; this simulator, driven
    by the {!Interp} interpreter's memory trace, is what lets the benchmark
    suite measure that claim instead of asserting it. *)

type config = {
  line_bytes : int;  (** power of two *)
  sets : int;        (** power of two *)
  ways : int;
}

val direct_mapped : line_bytes:int -> lines:int -> config
val two_way : line_bytes:int -> lines:int -> config

type stats = {
  reads : int;
  writes : int;
  read_misses : int;
  write_misses : int;
  evictions : int;
}

val hits : stats -> int
val misses : stats -> int
val miss_rate : stats -> float

type t

val create : config -> t
(** @raise Invalid_argument unless line_bytes and sets are powers of two
    and ways >= 1. *)

val access : t -> write:bool -> addr:int -> bytes:int -> unit
(** Touches every line the [bytes]-wide access overlaps.  LRU replacement,
    write-allocate. *)

val stats : t -> stats
val reset : t -> unit
val config : t -> config

val capacity_bytes : config -> int
val pp_stats : Format.formatter -> stats -> unit
