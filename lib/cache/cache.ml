(* The main module re-exports the single-level simulator and the two-level
   hierarchy, so users write Cache.create / Cache.Hierarchy.create. *)
include Level
module Hierarchy = Hierarchy
