type t = {
  c1 : Level.t;
  c2 : Level.t;
}

type levels = {
  l1 : Level.stats;
  l2 : Level.stats;
}

let create ~l1 ~l2 = { c1 = Level.create l1; c2 = Level.create l2 }

let access t ~write ~addr ~bytes =
  let before = Level.misses (Level.stats t.c1) in
  Level.access t.c1 ~write ~addr ~bytes;
  let after = Level.misses (Level.stats t.c1) in
  (* every L1 line miss goes to L2; the line granularity difference is
     handled by issuing the same byte range *)
  if after > before then Level.access t.c2 ~write ~addr ~bytes

let stats t = { l1 = Level.stats t.c1; l2 = Level.stats t.c2 }

let reset t =
  Level.reset t.c1;
  Level.reset t.c2

let amat ?(l1_hit = 1.0) ?(l2_hit = 10.0) ?(memory = 100.0) levels =
  let accesses = levels.l1.Level.reads + levels.l1.Level.writes in
  if accesses = 0 then 0.0
  else begin
    let l1_misses = float_of_int (Level.misses levels.l1) in
    let l2_misses = float_of_int (Level.misses levels.l2) in
    let total = float_of_int accesses in
    l1_hit +. (l1_misses /. total *. l2_hit) +. (l2_misses /. total *. memory)
  end

let pp ppf levels =
  Format.fprintf ppf "L1[%a]@ L2[%a]@ amat=%.2f" Level.pp_stats levels.l1
    Level.pp_stats levels.l2 (amat levels)
