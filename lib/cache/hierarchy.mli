(** Two-level cache hierarchy: misses at L1 are looked up in L2 (inclusive,
    both write-allocate).  The paper's motivation speaks of "hierarchical
    memory machines"; the benches use this to report where the fusion/layout
    transformations move misses to. *)

type t

type levels = {
  l1 : Level.stats;
  l2 : Level.stats;
}

val create : l1:Level.config -> l2:Level.config -> t
val access : t -> write:bool -> addr:int -> bytes:int -> unit
val stats : t -> levels
val reset : t -> unit

val amat : ?l1_hit:float -> ?l2_hit:float -> ?memory:float -> levels -> float
(** Average memory access time in cycles per access, from hit counts and
    the given level latencies (defaults 1 / 10 / 100 cycles). *)

val pp : Format.formatter -> levels -> unit
