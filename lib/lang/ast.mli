(** Shared abstract syntax for the MiniF (Fortran-subset) and MiniC
    (C-subset) front ends.

    Both surface languages lower onto this single tree; the only
    language-specific fact that survives is {!Unit.language}, which the
    analysis uses to render bounds in the source language's indexing
    convention (the paper, Section V-B: "OpenUH uses (row major, zero
    indexing) for all languages ... we modify the bounds ... in Dragon"). *)

type language = Fortran | C

type dtype =
  | Int_t
  | Real_t       (** 4-byte float *)
  | Double_t
  | Char_t
  | Logical_t

val dtype_size : dtype -> int
(** Element size in bytes: int 4, real 4, double 8, char 1, logical 4. *)

val dtype_name : dtype -> string
(** The data-type string shown in the .rgn table ("int", "real", "double",
    "char", "logical"). *)

type binop =
  | Add | Sub | Mul | Div | Pow | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Real_lit of float
  | Str_lit of string
  | Logic_lit of bool
  | Var_ref of string * Loc.t
  | Array_ref of string * expr list * Loc.t
  | Coarray_ref of string * expr list * expr * Loc.t
      (** [x(i, j)[img]] — remote access to image [img] (Fortran 2008
          coarrays, the paper's future-work PGAS extension) *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call_expr of string * expr list * Loc.t

type lvalue =
  | Lvar of string * Loc.t
  | Larr of string * expr list * Loc.t
  | Lcoarr of string * expr list * expr * Loc.t

type stmt =
  | Assign of lvalue * expr * Loc.t
  | If of expr * stmt list * stmt list * Loc.t
  | Do of do_loop
  | While of expr * stmt list * Loc.t
  | Call of string * expr list * Loc.t
  | Return of expr option * Loc.t
  | Print of expr list * Loc.t
  | Nop of Loc.t

and do_loop = {
  do_var : string;
  do_lo : expr;
  do_hi : expr;
  do_step : expr option;  (** [None] means step 1 *)
  do_body : stmt list;
  do_loc : Loc.t;
}

(** Declared array dimension: [lower:upper].  C declarations [t a[n]] parse
    as [0:n-1].  [dim_hi = None] is an assumed-size dimension (Fortran
    [a(star)], C [a[]]); the paper displays such arrays with total size 0.
    [dim_assumed_shape] marks Fortran-90 [a(:)] dimensions: the array may be
    non-contiguous, which WHIRL encodes as a negative element size ("If it
    is negative, it specifies a non-contiguous array", paper Section IV-C). *)
type dim = { dim_lo : expr; dim_hi : expr option; dim_assumed_shape : bool }

type decl = {
  decl_name : string;
  decl_type : dtype;
  decl_dims : dim list;  (** empty for scalars *)
  decl_common : string option;  (** COMMON block name; [Some _] = global *)
  decl_coarray : bool;  (** declared with a codimension [[*]] *)
  decl_loc : Loc.t;
}

type proc_kind = Program | Subroutine | Function of dtype

type proc = {
  proc_name : string;
  proc_kind : proc_kind;
  proc_params : string list;
  proc_decls : decl list;
  proc_consts : (string * expr) list;  (** PARAMETER / #define constants *)
  proc_body : stmt list;
  proc_loc : Loc.t;
}

(** One compilation unit (one source file). *)
type unit_ = {
  unit_file : string;
  unit_language : language;
  unit_globals : decl list;  (** C file-scope declarations *)
  unit_consts : (string * expr) list;  (** [#define] constants *)
  unit_procs : proc list;
  unit_iprops : (string * Iprop.t) list;
      (** index-array property directives scanned from comments *)
}

val loc_of_expr : expr -> Loc.t
val loc_of_stmt : stmt -> Loc.t
val loc_of_lvalue : lvalue -> Loc.t

val lvalue_name : lvalue -> string

val pp_dtype : Format.formatter -> dtype -> unit
val pp_binop : Format.formatter -> binop -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_proc : Format.formatter -> proc -> unit
val pp_unit : Format.formatter -> unit_ -> unit

val expr_equal : expr -> expr -> bool
(** Structural equality ignoring locations. *)
