module String_map = Map.Make (String)

type var_class =
  | Local
  | Formal
  | Global of string

type array_sig = {
  a_type : Ast.dtype;
  a_dims : (int option * int option) list;
  a_coarray : bool;
  a_contiguous : bool;
  a_iprop : Iprop.t;
  a_decl_loc : Loc.t;
}

type symbol =
  | Sym_scalar of Ast.dtype * var_class
  | Sym_array of array_sig * var_class
  | Sym_const of int

type proc_info = {
  pi_proc : Ast.proc;
  pi_symbols : symbol String_map.t;
  pi_file : string;
  pi_object : string;
  pi_language : Ast.language;
}

type program = {
  prog_procs : proc_info String_map.t;
  prog_order : string list;
  prog_globals : (array_sig * string) String_map.t;
  prog_global_scalars : (Ast.dtype * string) String_map.t;
  prog_files : string list;
  prog_warnings : Diag.t list;
}

let intrinsics =
  [
    "mod"; "abs"; "min"; "max"; "sqrt"; "exp"; "log"; "sin"; "cos"; "tan";
    "dble"; "real"; "int"; "float"; "nint"; "sign"; "dabs"; "dsqrt"; "dexp";
    "dlog"; "fabs"; "pow"; "ceil"; "floor"; "this_image"; "num_images";
  ]

let is_intrinsic n = List.mem (String.lowercase_ascii n) intrinsics

let object_name file =
  let base = Filename.remove_extension (Filename.basename file) in
  base ^ ".o"

(* ------------------------------------------------------------------ *)
(* Constant folding *)

let rec const_eval env e =
  match e with
  | Ast.Int_lit n -> Some n
  | Ast.Var_ref (n, _) -> (
    match String_map.find_opt n env with
    | Some (Sym_const v) -> Some v
    | _ -> None)
  | Ast.Unop (Ast.Neg, e) -> Option.map (fun v -> -v) (const_eval env e)
  | Ast.Binop (op, a, b) -> (
    match const_eval env a, const_eval env b with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Mod -> if y = 0 then None else Some (x mod y)
      | Ast.Pow ->
        if y < 0 then None
        else
          let rec go acc i = if i = 0 then acc else go (acc * x) (i - 1) in
          Some (go 1 y)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Implicit Fortran typing *)

let implicit_dtype name =
  if String.length name > 0 && name.[0] >= 'i' && name.[0] <= 'n' then
    Ast.Int_t
  else Ast.Real_t

(* ------------------------------------------------------------------ *)

let fold_dims env loc dims =
  List.map
    (fun { Ast.dim_lo; dim_hi; dim_assumed_shape = _ } ->
      let lo = const_eval env dim_lo in
      let hi = match dim_hi with None -> None | Some e -> const_eval env e in
      ignore loc;
      (lo, hi))
    dims

let sig_of_decl ?(iprop = Iprop.none) env (d : Ast.decl) =
  {
    a_type = d.Ast.decl_type;
    a_dims = fold_dims env d.Ast.decl_loc d.Ast.decl_dims;
    a_coarray = d.Ast.decl_coarray;
    a_contiguous =
      not (List.exists (fun dm -> dm.Ast.dim_assumed_shape) d.Ast.decl_dims);
    a_iprop = iprop;
    a_decl_loc = d.Ast.decl_loc;
  }

let sig_equal a b = a.a_type = b.a_type && a.a_dims = b.a_dims

(* ------------------------------------------------------------------ *)
(* Name collection over statements: every referenced identifier *)

let rec expr_names acc e =
  match e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Str_lit _ | Ast.Logic_lit _ -> acc
  | Ast.Var_ref (n, _) -> n :: acc
  | Ast.Array_ref (n, idx, _) | Ast.Call_expr (n, idx, _) ->
    List.fold_left expr_names (n :: acc) idx
  | Ast.Coarray_ref (n, idx, img, _) ->
    expr_names (List.fold_left expr_names (n :: acc) idx) img
  | Ast.Binop (_, a, b) -> expr_names (expr_names acc a) b
  | Ast.Unop (_, e) -> expr_names acc e

let rec stmt_names acc s =
  match s with
  | Ast.Assign (lv, e, _) ->
    let acc =
      match lv with
      | Ast.Lvar (n, _) -> n :: acc
      | Ast.Larr (n, idx, _) -> List.fold_left expr_names (n :: acc) idx
      | Ast.Lcoarr (n, idx, img, _) ->
        expr_names (List.fold_left expr_names (n :: acc) idx) img
    in
    expr_names acc e
  | Ast.If (c, t, e, _) ->
    let acc = expr_names acc c in
    let acc = List.fold_left stmt_names acc t in
    List.fold_left stmt_names acc e
  | Ast.Do d ->
    let acc = d.Ast.do_var :: acc in
    let acc = expr_names acc d.Ast.do_lo in
    let acc = expr_names acc d.Ast.do_hi in
    let acc =
      match d.Ast.do_step with None -> acc | Some e -> expr_names acc e
    in
    List.fold_left stmt_names acc d.Ast.do_body
  | Ast.While (c, body, _) ->
    List.fold_left stmt_names (expr_names acc c) body
  | Ast.Call (_, args, _) -> List.fold_left expr_names acc args
  | Ast.Return (None, _) | Ast.Nop _ -> acc
  | Ast.Return (Some e, _) -> expr_names acc e
  | Ast.Print (es, _) -> List.fold_left expr_names acc es

(* ------------------------------------------------------------------ *)
(* Body rewriting: Array_ref -> Call_expr when the name is not an array *)

let rec rewrite_expr env proc_names e =
  let recur = rewrite_expr env proc_names in
  match e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Str_lit _ | Ast.Logic_lit _
  | Ast.Var_ref _ ->
    e
  | Ast.Array_ref (n, idx, loc) -> (
    let idx = List.map recur idx in
    match String_map.find_opt n env with
    | Some (Sym_array (s, _)) ->
      if List.length idx <> List.length s.a_dims then
        Diag.error loc "array %s has rank %d but is indexed with %d subscripts"
          n (List.length s.a_dims) (List.length idx);
      Ast.Array_ref (n, idx, loc)
    | Some (Sym_scalar _) ->
      Diag.error loc "scalar %s used with subscripts" n
    | Some (Sym_const _) -> Diag.error loc "constant %s used with subscripts" n
    | None ->
      if is_intrinsic n || List.mem n proc_names then Ast.Call_expr (n, idx, loc)
      else Diag.error loc "unknown array or function %s" n)
  | Ast.Coarray_ref (n, idx, img, loc) -> (
    let idx = List.map recur idx in
    let img = recur img in
    match String_map.find_opt n env with
    | Some (Sym_array (s, _)) ->
      if not s.a_coarray then
        Diag.error loc "%s is not a coarray (no codimension declared)" n;
      if List.length idx <> List.length s.a_dims then
        Diag.error loc "coarray %s has rank %d but is indexed with %d subscripts"
          n (List.length s.a_dims) (List.length idx);
      Ast.Coarray_ref (n, idx, img, loc)
    | _ -> Diag.error loc "%s is not a coarray" n)
  | Ast.Call_expr (n, args, loc) -> Ast.Call_expr (n, List.map recur args, loc)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, recur a, recur b)
  | Ast.Unop (op, e) -> Ast.Unop (op, recur e)

let rec rewrite_stmt env proc_names s =
  let re = rewrite_expr env proc_names in
  let rs = rewrite_stmt env proc_names in
  match s with
  | Ast.Assign (lv, e, loc) ->
    let lv =
      match lv with
      | Ast.Lvar _ -> lv
      | Ast.Larr (n, idx, lloc) -> (
        match String_map.find_opt n env with
        | Some (Sym_array (s, _)) ->
          if List.length idx <> List.length s.a_dims then
            Diag.error lloc
              "array %s has rank %d but is indexed with %d subscripts" n
              (List.length s.a_dims) (List.length idx);
          Ast.Larr (n, List.map re idx, lloc)
        | _ -> Diag.error lloc "assignment to subscripted non-array %s" n)
      | Ast.Lcoarr (n, idx, img, lloc) -> (
        match String_map.find_opt n env with
        | Some (Sym_array (s, _)) when s.a_coarray ->
          Ast.Lcoarr (n, List.map re idx, re img, lloc)
        | _ -> Diag.error lloc "%s is not a coarray" n)
    in
    Ast.Assign (lv, re e, loc)
  | Ast.If (c, t, e, loc) -> Ast.If (re c, List.map rs t, List.map rs e, loc)
  | Ast.Do d ->
    Ast.Do
      {
        d with
        Ast.do_lo = re d.Ast.do_lo;
        do_hi = re d.Ast.do_hi;
        do_step = Option.map re d.Ast.do_step;
        do_body = List.map rs d.Ast.do_body;
      }
  | Ast.While (c, body, loc) -> Ast.While (re c, List.map rs body, loc)
  | Ast.Call (n, args, loc) -> Ast.Call (n, List.map re args, loc)
  | Ast.Return (e, loc) -> Ast.Return (Option.map re e, loc)
  | Ast.Print (es, loc) -> Ast.Print (List.map re es, loc)
  | Ast.Nop _ -> s

(* ------------------------------------------------------------------ *)

let analyze units =
  let warnings = ref [] in
  let proc_names =
    List.concat_map
      (fun u -> List.map (fun p -> p.Ast.proc_name) u.Ast.unit_procs)
      units
  in
  (* pass 1: global symbols (COMMON members, C file-scope) *)
  let globals = ref String_map.empty in
  let global_scalars = ref String_map.empty in
  let register_global ~iprop env block (d : Ast.decl) =
    if d.Ast.decl_dims = [] then
      global_scalars :=
        String_map.add d.Ast.decl_name (d.Ast.decl_type, block) !global_scalars
    else begin
      let s = sig_of_decl ~iprop env d in
      match String_map.find_opt d.Ast.decl_name !globals with
      | Some (existing, _) when not (sig_equal existing s) ->
        Diag.error d.Ast.decl_loc
          "inconsistent COMMON declarations for %s" d.Ast.decl_name
      | Some (existing, eblock) ->
        (* assertions from every declaring unit conjoin *)
        globals :=
          String_map.add d.Ast.decl_name
            ( { s with a_iprop = Iprop.meet existing.a_iprop s.a_iprop },
              eblock )
            !globals
      | None -> globals := String_map.add d.Ast.decl_name (s, block) !globals
    end
  in
  List.iter
    (fun u ->
      let unit_consts =
        List.fold_left
          (fun env (n, e) ->
            match const_eval env e with
            | Some v -> String_map.add n (Sym_const v) env
            | None -> env)
          String_map.empty u.Ast.unit_consts
      in
      let iprop_of n = Iprop.lookup u.Ast.unit_iprops n in
      List.iter
        (fun (d : Ast.decl) ->
          let iprop = iprop_of d.Ast.decl_name in
          match d.Ast.decl_common with
          | Some block -> register_global ~iprop unit_consts block d
          | None -> register_global ~iprop unit_consts "global" d)
        u.Ast.unit_globals;
      (* Fortran COMMON declarations live inside procedures *)
      List.iter
        (fun (p : Ast.proc) ->
          let consts =
            List.fold_left
              (fun env (n, e) ->
                match const_eval env e with
                | Some v -> String_map.add n (Sym_const v) env
                | None -> env)
              unit_consts p.Ast.proc_consts
          in
          List.iter
            (fun (d : Ast.decl) ->
              match d.Ast.decl_common with
              | Some block ->
                register_global ~iprop:(iprop_of d.Ast.decl_name) consts block d
              | None -> ())
            p.Ast.proc_decls)
        u.Ast.unit_procs)
    units;
  (* pass 2: per-procedure environments and body rewriting *)
  let procs = ref String_map.empty in
  let order = ref [] in
  List.iter
    (fun u ->
      let unit_consts =
        List.fold_left
          (fun env (n, e) ->
            match const_eval env e with
            | Some v -> String_map.add n (Sym_const v) env
            | None -> env)
          String_map.empty u.Ast.unit_consts
      in
      List.iter
        (fun (p : Ast.proc) ->
          let env = ref unit_consts in
          let add n sym = env := String_map.add n sym !env in
          (* constants first: bounds may use them *)
          List.iter
            (fun (n, e) ->
              match const_eval !env e with
              | Some v -> add n (Sym_const v)
              | None ->
                warnings :=
                  Diag.warning p.Ast.proc_loc
                    "non-integer parameter %s ignored by the analysis" n
                  :: !warnings)
            p.Ast.proc_consts;
          (* globals visible everywhere (Fortran COMMON is program-wide
             here: a deliberate MiniF simplification) *)
          String_map.iter
            (fun n (s, block) -> add n (Sym_array (s, Global block)))
            !globals;
          String_map.iter
            (fun n (t, block) -> add n (Sym_scalar (t, Global block)))
            !global_scalars;
          (* declarations *)
          List.iter
            (fun (d : Ast.decl) ->
              let cls =
                if List.mem d.Ast.decl_name p.Ast.proc_params then Formal
                else
                  match d.Ast.decl_common with
                  | Some b -> Global b
                  | None -> Local
              in
              match cls with
              | Global _ -> ()  (* already registered *)
              | _ ->
                if d.Ast.decl_dims = [] then begin
                  (* a PARAMETER constant may carry a type declaration too;
                     the constant binding wins *)
                  match String_map.find_opt d.Ast.decl_name !env with
                  | Some (Sym_const _) -> ()
                  | _ -> add d.Ast.decl_name (Sym_scalar (d.Ast.decl_type, cls))
                end
                else
                  add d.Ast.decl_name
                    (Sym_array
                       ( sig_of_decl
                           ~iprop:(Iprop.lookup u.Ast.unit_iprops d.Ast.decl_name)
                           !env d,
                         cls )))
            p.Ast.proc_decls;
          (* undeclared formals: implicit typing *)
          List.iter
            (fun prm ->
              if not (String_map.mem prm !env) then
                add prm (Sym_scalar (implicit_dtype prm, Formal)))
            p.Ast.proc_params;
          (* function name acts as the return-value scalar *)
          (match p.Ast.proc_kind with
          | Ast.Function t -> add p.Ast.proc_name (Sym_scalar (t, Local))
          | Ast.Program | Ast.Subroutine -> ());
          (* undeclared referenced names: Fortran implicit scalars *)
          let referenced =
            List.fold_left stmt_names [] p.Ast.proc_body
            |> List.sort_uniq String.compare
          in
          List.iter
            (fun n ->
              if
                (not (String_map.mem n !env))
                && (not (List.mem n proc_names))
                && not (is_intrinsic n)
              then
                if u.Ast.unit_language = Ast.Fortran then
                  add n (Sym_scalar (implicit_dtype n, Local))
                else
                  Diag.error p.Ast.proc_loc "undeclared identifier %s in %s" n
                    p.Ast.proc_name)
            referenced;
          let body = List.map (rewrite_stmt !env proc_names) p.Ast.proc_body in
          let info =
            {
              pi_proc = { p with Ast.proc_body = body };
              pi_symbols = !env;
              pi_file = u.Ast.unit_file;
              pi_object = object_name u.Ast.unit_file;
              pi_language = u.Ast.unit_language;
            }
          in
          if String_map.mem p.Ast.proc_name !procs then
            Diag.error p.Ast.proc_loc "duplicate procedure %s" p.Ast.proc_name;
          procs := String_map.add p.Ast.proc_name info !procs;
          order := p.Ast.proc_name :: !order)
        u.Ast.unit_procs)
    units;
  {
    prog_procs = !procs;
    prog_order = List.rev !order;
    prog_globals = !globals;
    prog_global_scalars = !global_scalars;
    prog_files = List.map (fun u -> u.Ast.unit_file) units;
    prog_warnings = List.rev !warnings;
  }

let proc_arrays pi =
  String_map.fold
    (fun n sym acc ->
      match sym with
      | Sym_array (s, cls) -> (n, s, cls) :: acc
      | Sym_scalar _ | Sym_const _ -> acc)
    pi.pi_symbols []
