(** Front-end diagnostics. *)

type severity = Error | Warning

type t = { severity : severity; loc : Loc.t; message : string }

exception Frontend_error of t

val error : Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Formats the message and raises {!Frontend_error}. *)

val warning : Loc.t -> ('a, Format.formatter, unit, t) format4 -> 'a
(** Formats the message into a warning value (not raised). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
