open Ast

let kw p word =
  match Pstate.peek p with
  | Token.Ident s when String.equal s word -> true
  | _ -> false

let accept_kw p word =
  if kw p word then begin
    Pstate.skip p;
    true
  end
  else false

let expect_kw p word =
  if not (accept_kw p word) then
    Pstate.error p "expected keyword %S but found %s" word
      (Token.to_string (Pstate.peek p))

let punct s = Token.Punct s

let skip_newlines p =
  while Pstate.accept p Token.Newline do () done

let expect_eos p =
  (* end of statement *)
  match Pstate.peek p with
  | Token.Newline -> skip_newlines p
  | Token.Eof -> ()
  | other -> Pstate.error p "expected end of statement, found %s" (Token.to_string other)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr p = parse_or p

and parse_or p =
  let rec loop acc =
    if Pstate.accept p (punct "||") then loop (Binop (Or, acc, parse_and p))
    else acc
  in
  loop (parse_and p)

and parse_and p =
  let rec loop acc =
    if Pstate.accept p (punct "&&") then loop (Binop (And, acc, parse_not p))
    else acc
  in
  loop (parse_not p)

and parse_not p =
  if Pstate.accept p (punct "!") then Unop (Not, parse_not p)
  else parse_cmp p

and parse_cmp p =
  let lhs = parse_add p in
  let op =
    match Pstate.peek p with
    | Token.Punct "==" -> Some Eq
    | Token.Punct "!=" -> Some Ne
    | Token.Punct "<" -> Some Lt
    | Token.Punct "<=" -> Some Le
    | Token.Punct ">" -> Some Gt
    | Token.Punct ">=" -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    Pstate.skip p;
    Binop (op, lhs, parse_add p)

and parse_add p =
  let first =
    if Pstate.accept p (punct "-") then Unop (Neg, parse_mul p)
    else begin
      ignore (Pstate.accept p (punct "+"));
      parse_mul p
    end
  in
  let rec loop acc =
    if Pstate.accept p (punct "+") then loop (Binop (Add, acc, parse_mul p))
    else if Pstate.accept p (punct "-") then loop (Binop (Sub, acc, parse_mul p))
    else acc
  in
  loop first

and parse_mul p =
  let rec loop acc =
    if Pstate.accept p (punct "*") then loop (Binop (Mul, acc, parse_unary p))
    else if Pstate.accept p (punct "/") then loop (Binop (Div, acc, parse_unary p))
    else acc
  in
  loop (parse_unary p)

and parse_unary p =
  if Pstate.accept p (punct "-") then Unop (Neg, parse_unary p)
  else parse_power p

and parse_power p =
  let base = parse_primary p in
  if Pstate.accept p (punct "**") then Binop (Pow, base, parse_unary p)
  else base

and parse_primary p =
  let loc = Pstate.loc p in
  match Pstate.peek p with
  | Token.Int n ->
    Pstate.skip p;
    Int_lit n
  | Token.Float f ->
    Pstate.skip p;
    Real_lit f
  | Token.String s ->
    Pstate.skip p;
    Str_lit s
  | Token.Logic b ->
    Pstate.skip p;
    Logic_lit b
  | Token.Punct "(" ->
    Pstate.skip p;
    let e = parse_expr p in
    Pstate.expect p (punct ")");
    e
  | Token.Ident name ->
    Pstate.skip p;
    if Pstate.accept p (punct "(") then begin
      let args = parse_expr_list p in
      Pstate.expect p (punct ")");
      if Pstate.accept p (punct "[") then begin
        (* coarray remote reference: x(i, j)[img] *)
        let img = parse_expr p in
        Pstate.expect p (punct "]");
        Coarray_ref (name, args, img, loc)
      end
      else
        (* array reference or function call: Sema decides *)
        Array_ref (name, args, loc)
    end
    else Var_ref (name, loc)
  | other -> Pstate.error p "expected expression, found %s" (Token.to_string other)

and parse_expr_list p =
  if Token.equal (Pstate.peek p) (punct ")") then []
  else
    let rec loop acc =
      let e = parse_expr p in
      if Pstate.accept p (punct ",") then loop (e :: acc)
      else List.rev (e :: acc)
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Declarations *)

let is_type_start p =
  kw p "integer" || kw p "real" || kw p "double" || kw p "character"
  || kw p "logical"

let parse_dtype p =
  if accept_kw p "integer" then Int_t
  else if accept_kw p "real" then Real_t
  else if accept_kw p "double" then begin
    expect_kw p "precision";
    Double_t
  end
  else if accept_kw p "character" then Char_t
  else if accept_kw p "logical" then Logical_t
  else Pstate.error p "expected a type keyword"

(* one dimension spec: [e], [e1:e2], [*], [e1:*], or the F90 assumed-shape
   [:] (deferred bounds, possibly non-contiguous) *)
let parse_dim p =
  if Pstate.accept p (punct "*") then
    { dim_lo = Int_lit 1; dim_hi = None; dim_assumed_shape = false }
  else if Pstate.accept p (punct ":") then
    { dim_lo = Int_lit 1; dim_hi = None; dim_assumed_shape = true }
  else
    let e1 = parse_expr p in
    if Pstate.accept p (punct ":") then
      if Pstate.accept p (punct "*") then
        { dim_lo = e1; dim_hi = None; dim_assumed_shape = false }
      else
        { dim_lo = e1; dim_hi = Some (parse_expr p); dim_assumed_shape = false }
    else { dim_lo = Int_lit 1; dim_hi = Some e1; dim_assumed_shape = false }

let parse_dims p =
  Pstate.expect p (punct "(");
  let rec loop acc =
    let d = parse_dim p in
    if Pstate.accept p (punct ",") then loop (d :: acc)
    else begin
      Pstate.expect p (punct ")");
      List.rev (d :: acc)
    end
  in
  loop []

(* [integer a, b(5)], [integer, dimension(1:200,1:200) :: a, b],
   [double precision u(5,65,65,64)] *)
let parse_type_decl p =
  let loc = Pstate.loc p in
  let dtype = parse_dtype p in
  let attr_dims =
    if Pstate.accept p (punct ",") then begin
      expect_kw p "dimension";
      (* the paper's Fig 1 writes "Integer, Dimension:: A(1:200,1:200)":
         the parenthesized shape on the attribute is optional *)
      if Token.equal (Pstate.peek p) (punct "(") then Some (parse_dims p)
      else None
    end
    else None
  in
  ignore (Pstate.accept p (punct "::"));
  let rec names acc =
    let nloc = Pstate.loc p in
    let name = Pstate.expect_ident p in
    let dims =
      if Token.equal (Pstate.peek p) (punct "(") then parse_dims p
      else match attr_dims with Some d -> d | None -> []
    in
    (* codimension: x(10)[*] declares a coarray *)
    let coarray =
      if Pstate.accept p (punct "[") then begin
        Pstate.expect p (punct "*");
        Pstate.expect p (punct "]");
        true
      end
      else false
    in
    let d =
      {
        decl_name = name;
        decl_type = dtype;
        decl_dims = dims;
        decl_common = None;
        decl_coarray = coarray;
        decl_loc = nloc;
      }
    in
    if Pstate.accept p (punct ",") then names (d :: acc) else List.rev (d :: acc)
  in
  let ds = names [] in
  ignore loc;
  ds

(* [common /blk/ a, b] returns (block, names) *)
let parse_common p =
  expect_kw p "common";
  Pstate.expect p (punct "/");
  let block = Pstate.expect_ident p in
  Pstate.expect p (punct "/");
  let rec loop acc =
    let n = Pstate.expect_ident p in
    if Pstate.accept p (punct ",") then loop (n :: acc) else List.rev (n :: acc)
  in
  (block, loop [])

(* [parameter (n = 5, m = n + 1)] *)
let parse_parameter p =
  expect_kw p "parameter";
  Pstate.expect p (punct "(");
  let rec loop acc =
    let n = Pstate.expect_ident p in
    Pstate.expect p (punct "=");
    let e = parse_expr p in
    if Pstate.accept p (punct ",") then loop ((n, e) :: acc)
    else begin
      Pstate.expect p (punct ")");
      List.rev ((n, e) :: acc)
    end
  in
  loop []

(* [dimension a(10), b(2:5)] *)
let parse_dimension_stmt p =
  expect_kw p "dimension";
  let rec loop acc =
    let nloc = Pstate.loc p in
    let name = Pstate.expect_ident p in
    let dims = parse_dims p in
    let entry = (name, dims, nloc) in
    if Pstate.accept p (punct ",") then loop (entry :: acc)
    else List.rev (entry :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec parse_stmt p : stmt =
  let loc = Pstate.loc p in
  if accept_kw p "call" then begin
    let name = Pstate.expect_ident p in
    let args =
      if Pstate.accept p (punct "(") then begin
        let a = parse_expr_list p in
        Pstate.expect p (punct ")");
        a
      end
      else []
    in
    expect_eos p;
    Call (name, args, loc)
  end
  else if accept_kw p "return" then begin
    expect_eos p;
    Return (None, loc)
  end
  else if accept_kw p "continue" || accept_kw p "stop" then begin
    expect_eos p;
    Nop loc
  end
  else if accept_kw p "print" then begin
    Pstate.expect p (punct "*");
    let args =
      if Pstate.accept p (punct ",") then
        let rec loop acc =
          let e = parse_expr p in
          if Pstate.accept p (punct ",") then loop (e :: acc)
          else List.rev (e :: acc)
        in
        loop []
      else []
    in
    expect_eos p;
    Print (args, loc)
  end
  else if accept_kw p "write" then begin
    (* write (*, *) list  -- list-directed output, same as print *)
    Pstate.expect p (punct "(");
    Pstate.expect p (punct "*");
    Pstate.expect p (punct ",");
    Pstate.expect p (punct "*");
    Pstate.expect p (punct ")");
    let args =
      match Pstate.peek p with
      | Token.Newline | Token.Eof -> []
      | _ ->
        let rec loop acc =
          let e = parse_expr p in
          if Pstate.accept p (punct ",") then loop (e :: acc)
          else List.rev (e :: acc)
        in
        loop []
    in
    expect_eos p;
    Print (args, loc)
  end
  else if kw p "if" then parse_if p
  else if kw p "do" then parse_do p
  else begin
    (* assignment *)
    let nloc = Pstate.loc p in
    let name = Pstate.expect_ident p in
    let lv =
      if Token.equal (Pstate.peek p) (punct "(") then begin
        Pstate.skip p;
        let idx = parse_expr_list p in
        Pstate.expect p (punct ")");
        if Pstate.accept p (punct "[") then begin
          let img = parse_expr p in
          Pstate.expect p (punct "]");
          Lcoarr (name, idx, img, nloc)
        end
        else Larr (name, idx, nloc)
      end
      else Lvar (name, nloc)
    in
    Pstate.expect p (punct "=");
    let e = parse_expr p in
    expect_eos p;
    Assign (lv, e, loc)
  end

and parse_if p =
  let loc = Pstate.loc p in
  expect_kw p "if";
  Pstate.expect p (punct "(");
  let cond = parse_expr p in
  Pstate.expect p (punct ")");
  if accept_kw p "then" then begin
    expect_eos p;
    let then_body = parse_body p [ "else"; "elseif"; "endif"; "end" ] in
    parse_if_tail p loc cond then_body
  end
  else
    (* logical (one-line) if *)
    let s = parse_stmt p in
    If (cond, [ s ], [], loc)

and parse_if_tail p loc cond then_body =
  if accept_kw p "elseif" then begin
    (* elseif (cond) then *)
    Pstate.expect p (punct "(");
    let cond2 = parse_expr p in
    Pstate.expect p (punct ")");
    expect_kw p "then";
    expect_eos p;
    let body2 = parse_body p [ "else"; "elseif"; "endif"; "end" ] in
    let inner = parse_if_tail p loc cond2 body2 in
    If (cond, then_body, [ inner ], loc)
  end
  else if accept_kw p "else" then
    if accept_kw p "if" then begin
      Pstate.expect p (punct "(");
      let cond2 = parse_expr p in
      Pstate.expect p (punct ")");
      expect_kw p "then";
      expect_eos p;
      let body2 = parse_body p [ "else"; "elseif"; "endif"; "end" ] in
      let inner = parse_if_tail p loc cond2 body2 in
      If (cond, then_body, [ inner ], loc)
    end
    else begin
      expect_eos p;
      let else_body = parse_body p [ "endif"; "end" ] in
      close_if p;
      If (cond, then_body, else_body, loc)
    end
  else begin
    close_if p;
    If (cond, then_body, [], loc)
  end

and close_if p =
  if accept_kw p "endif" then expect_eos p
  else begin
    expect_kw p "end";
    expect_kw p "if";
    expect_eos p
  end

and parse_do p =
  let loc = Pstate.loc p in
  expect_kw p "do";
  if accept_kw p "while" then begin
    Pstate.expect p (punct "(");
    let cond = parse_expr p in
    Pstate.expect p (punct ")");
    expect_eos p;
    let body = parse_body p [ "enddo"; "end" ] in
    close_do p;
    While (cond, body, loc)
  end
  else begin
    let var = Pstate.expect_ident p in
    Pstate.expect p (punct "=");
    let lo = parse_expr p in
    Pstate.expect p (punct ",");
    let hi = parse_expr p in
    let step = if Pstate.accept p (punct ",") then Some (parse_expr p) else None in
    expect_eos p;
    let body = parse_body p [ "enddo"; "end" ] in
    close_do p;
    Do { do_var = var; do_lo = lo; do_hi = hi; do_step = step; do_body = body; do_loc = loc }
  end

and close_do p =
  if accept_kw p "enddo" then expect_eos p
  else begin
    expect_kw p "end";
    expect_kw p "do";
    expect_eos p
  end

(* Parses statements until one of the terminator keywords is next.  "end" is
   ambiguous (end if / end do / end of unit): callers must only pass "end"
   when the construct closes with [end <kw>] and the body cannot itself end
   the unit, which holds in MiniF because nesting is closed innermost-first. *)
and parse_body p terminators =
  skip_newlines p;
  let rec loop acc =
    if Token.equal (Pstate.peek p) Token.Eof then List.rev acc
    else if List.exists (fun t -> kw p t) terminators then List.rev acc
    else begin
      let s = parse_stmt p in
      skip_newlines p;
      loop (s :: acc)
    end
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Procedures and units *)

type decl_acc = {
  mutable decls : decl list;
  mutable consts : (string * expr) list;
  mutable commons : (string * string) list;  (* name -> block *)
  mutable dim_stmts : (string * dim list * Loc.t) list;
}

let finalize_decls acc =
  (* apply DIMENSION statements and COMMON membership *)
  let with_dims =
    List.map
      (fun d ->
        match
          List.find_opt (fun (n, _, _) -> String.equal n d.decl_name) acc.dim_stmts
        with
        | Some (_, dims, _) when d.decl_dims = [] -> { d with decl_dims = dims }
        | _ -> d)
      acc.decls
  in
  (* DIMENSION of names never typed: implicit typing (i-n integer, else real) *)
  let untyped =
    List.filter
      (fun (n, _, _) ->
        not (List.exists (fun d -> String.equal d.decl_name n) acc.decls))
      acc.dim_stmts
  in
  let implicit =
    List.map
      (fun (n, dims, loc) ->
        let dtype =
          if String.length n > 0 && n.[0] >= 'i' && n.[0] <= 'n' then Int_t
          else Real_t
        in
        {
          decl_name = n;
          decl_type = dtype;
          decl_dims = dims;
          decl_common = None;
          decl_coarray = false;
          decl_loc = loc;
        })
      untyped
  in
  List.map
    (fun d ->
      match List.assoc_opt d.decl_name acc.commons with
      | Some block -> { d with decl_common = Some block }
      | None -> d)
    (with_dims @ implicit)

let parse_proc_header p =
  let loc = Pstate.loc p in
  let kind, name =
    if accept_kw p "program" then (Program, Pstate.expect_ident p)
    else if accept_kw p "subroutine" then (Subroutine, Pstate.expect_ident p)
    else begin
      let dtype = parse_dtype p in
      expect_kw p "function";
      (Function dtype, Pstate.expect_ident p)
    end
  in
  let params =
    if Pstate.accept p (punct "(") then begin
      if Pstate.accept p (punct ")") then []
      else
        let rec loop acc =
          let n = Pstate.expect_ident p in
          if Pstate.accept p (punct ",") then loop (n :: acc)
          else begin
            Pstate.expect p (punct ")");
            List.rev (n :: acc)
          end
        in
        loop []
    end
    else []
  in
  expect_eos p;
  (kind, name, params, loc)

(* True when the cursor sits on "end" closing the unit: end [subroutine|
   function|program] possibly followed by a name, then EOL. *)
let at_unit_end p =
  kw p "end"
  && (match Pstate.peek2 p with
     | Token.Newline | Token.Eof -> true
     | Token.Ident ("subroutine" | "function" | "program") -> true
     | _ -> false)

let parse_proc p =
  let kind, name, params, loc = parse_proc_header p in
  let acc = { decls = []; consts = []; commons = []; dim_stmts = [] } in
  skip_newlines p;
  (* declaration section *)
  let rec decl_loop () =
    if is_type_start p && not (Token.equal (Pstate.peek2 p) (Token.Punct "=")) then begin
      (* "double precision function" never appears here: headers are done *)
      acc.decls <- acc.decls @ parse_type_decl p;
      expect_eos p;
      decl_loop ()
    end
    else if kw p "common" then begin
      let block, names = parse_common p in
      acc.commons <- acc.commons @ List.map (fun n -> (n, block)) names;
      expect_eos p;
      decl_loop ()
    end
    else if kw p "parameter" then begin
      acc.consts <- acc.consts @ parse_parameter p;
      expect_eos p;
      decl_loop ()
    end
    else if kw p "dimension" then begin
      acc.dim_stmts <- acc.dim_stmts @ parse_dimension_stmt p;
      expect_eos p;
      decl_loop ()
    end
    else if accept_kw p "implicit" then begin
      (* implicit none: accepted and ignored *)
      ignore (accept_kw p "none");
      expect_eos p;
      decl_loop ()
    end
  in
  decl_loop ();
  (* body *)
  let rec body_loop acc_stmts =
    skip_newlines p;
    if at_unit_end p then List.rev acc_stmts
    else if Token.equal (Pstate.peek p) Token.Eof then
      Pstate.error p "missing 'end' for %s" name
    else begin
      let s = parse_stmt p in
      body_loop (s :: acc_stmts)
    end
  in
  let body = body_loop [] in
  expect_kw p "end";
  (match Pstate.peek p with
  | Token.Ident ("subroutine" | "function" | "program") ->
    Pstate.skip p;
    (match Pstate.peek p with Token.Ident _ -> Pstate.skip p | _ -> ())
  | _ -> ());
  expect_eos p;
  {
    proc_name = name;
    proc_kind = kind;
    proc_params = params;
    proc_decls = finalize_decls acc;
    proc_consts = acc.consts;
    proc_body = body;
    proc_loc = loc;
  }

let parse ~file src =
  let p = Pstate.make (Lexer_f.tokenize ~file src) in
  skip_newlines p;
  let rec loop procs =
    skip_newlines p;
    if Token.equal (Pstate.peek p) Token.Eof then List.rev procs
    else loop (parse_proc p :: procs)
  in
  let procs = loop [] in
  {
    unit_file = file;
    unit_language = Fortran;
    unit_globals = [];
    unit_consts = [];
    unit_procs = procs;
    unit_iprops = Iprop.scan ~fortran:true src;
  }
