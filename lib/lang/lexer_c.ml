let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let two_char_puncts =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/="; "%=" ]

let one_char_puncts = "+-*/%<>=!(){}[];,&|#?:."

let tokenize ~file src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and bol = ref 0 in
  let loc_at i = Loc.make ~file ~line:!line ~col:(i - !bol + 1) in
  let emit tok loc = tokens := { Token.tok; loc } :: !tokens in
  let i = ref 0 in
  let in_directive = ref false in
  while !i < n do
    let c = src.[!i] in
    match c with
    | ' ' | '\t' | '\r' -> incr i
    | '\n' ->
      if !in_directive then begin
        emit Token.Newline (loc_at !i);
        in_directive := false
      end;
      incr i;
      incr line;
      bol := !i
    | '/' when !i + 1 < n && src.[!i + 1] = '/' ->
      while !i < n && src.[!i] <> '\n' do incr i done
    | '/' when !i + 1 < n && src.[!i + 1] = '*' ->
      let start = !i in
      i := !i + 2;
      let rec scan () =
        if !i + 1 >= n then Diag.error (loc_at start) "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i;
          scan ()
        end
      in
      scan ()
    | '"' ->
      let start = !i in
      let buf = Buffer.create 16 in
      incr i;
      let rec scan () =
        if !i >= n then Diag.error (loc_at start) "unterminated string"
        else if src.[!i] = '\\' && !i + 1 < n then begin
          (let c =
             match src.[!i + 1] with
             | 'n' -> '\n'
             | 't' -> '\t'
             | 'r' -> '\r'
             | '0' -> '\000'
             | c -> c
           in
           Buffer.add_char buf c);
          i := !i + 2;
          scan ()
        end
        else if src.[!i] = '"' then incr i
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          scan ()
        end
      in
      scan ();
      emit (Token.String (Buffer.contents buf)) (loc_at start)
    | '\'' ->
      let start = !i in
      incr i;
      if !i >= n then Diag.error (loc_at start) "unterminated character literal";
      let ch =
        if src.[!i] = '\\' && !i + 1 < n then begin
          i := !i + 2;
          match src.[!i - 1] with
          | 'n' -> '\n'
          | 't' -> '\t'
          | '0' -> '\000'
          | c -> c
        end
        else begin
          incr i;
          src.[!i - 1]
        end
      in
      if !i >= n || src.[!i] <> '\'' then
        Diag.error (loc_at start) "unterminated character literal";
      incr i;
      emit (Token.String (String.make 1 ch)) (loc_at start)
    | c when is_digit c ->
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && src.[!i] = '.' then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      (* suffixes f, l, u *)
      while
        !i < n
        && (match src.[!i] with 'f' | 'F' | 'l' | 'L' | 'u' | 'U' -> true | _ -> false)
      do
        incr i
      done;
      let text =
        String.sub src start (!i - start)
        |> String.to_seq
        |> Seq.filter (fun c ->
               not (List.mem c [ 'f'; 'F'; 'l'; 'L'; 'u'; 'U' ]))
        |> String.of_seq
      in
      if !is_float then emit (Token.Float (float_of_string text)) (loc_at start)
      else emit (Token.Int (int_of_string text)) (loc_at start)
    | c when is_alpha c ->
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      emit (Token.Ident (String.sub src start (!i - start))) (loc_at start)
    | '#' ->
      in_directive := true;
      emit (Token.Punct "#") (loc_at !i);
      incr i
    | _ ->
      let start = !i in
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if List.mem two two_char_puncts then begin
        i := !i + 2;
        emit (Token.Punct two) (loc_at start)
      end
      else if String.contains one_char_puncts c then begin
        incr i;
        emit (Token.Punct (String.make 1 c)) (loc_at start)
      end
      else Diag.error (loc_at start) "unexpected character %C" c
  done;
  if !in_directive then emit Token.Newline (loc_at !i);
  emit Token.Eof (loc_at !i);
  List.rev !tokens
