(** Declared index-array properties (the PLDI'19 sparse-dependence
    simplification vocabulary): assertions a user attaches to an integer
    array that is used to subscript other arrays, [A(idx(i))].

    Directives ride in comments the lexers already skip:

    - Fortran: [!$uhc index idx monotonic injective bounded(1,100)]
    - C:       [#pragma uhc index idx monotonic injective bounded(0,99)]

    Properties:
    - [bounded(lo,hi)]: every element value is in [lo..hi] (inclusive,
      source index terms);
    - [monotonic]: element values are non-decreasing in the subscript;
    - [injective]: no two elements hold the same value (a permutation
      fragment).

    An unknown property word makes the whole directive ignored — a
    conservative reading mirroring the clamped-bit handling for legacy
    summary rows: never let an unparsed assertion strengthen an answer. *)

type t = {
  ip_lo : int option;  (** declared minimum element value *)
  ip_hi : int option;  (** declared maximum element value *)
  ip_monotonic : bool;
  ip_injective : bool;
}

val none : t
(** No assertions: the MESSY status quo. *)

val is_none : t -> bool
val equal : t -> t -> bool

val meet : t -> t -> t
(** Conjunction of two assertion sets for the same array (e.g. COMMON
    redeclarations): property flags union, bounds intersect
    ([lo] max, [hi] min). *)

val to_token : t -> string
(** Single-token serialization for symbol-table lines: ["-"] for {!none},
    else comma-joined items among [m], [i], [l<int>], [h<int>]
    (e.g. ["m,i,l1,h100"]). Never contains spaces. *)

val of_token : string -> t option
(** Inverse of {!to_token}; [None] on any unknown item (callers must
    degrade to {!none} — conservative). *)

val pp : Format.formatter -> t -> unit

(** {2 Provenance flags}

    A region refined by declared properties records {e which} assertions it
    leaned on.  The flags ride through joins, summary files and the .rgn
    Props column, so a report reader can tell a proven-safe verdict that
    rests on declarations from one derived by the solver alone. *)

type flags = {
  f_bounded : bool;
  f_monotonic : bool;
  f_injective : bool;
}

val no_flags : flags
val flags_union : flags -> flags -> flags
val any_flag : flags -> bool

val flags_token : flags -> string
(** ["-"] for {!no_flags}, else the set letters in fixed [b m i] order
    (e.g. ["bi"]). *)

val flags_of_token : string -> flags option
(** [None] on any unknown letter — callers must degrade conservatively
    (drop to MESSY / clamped), mirroring the legacy clamped-bit rule. *)

val scan : fortran:bool -> string -> (string * t) list
(** Extract all index directives from raw source text. With [~fortran:true]
    the comment shape is [!$uhc ...] and names are lowercased to match the
    lexer's canonicalization; otherwise [#pragma uhc ...]. Directives
    naming the same array meet. Malformed or unknown directives are
    dropped. *)

val lookup : (string * t) list -> string -> t
(** Property set declared for [name], {!none} when absent. *)
