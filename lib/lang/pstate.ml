type t = { tokens : Token.spanned array; mutable pos : int }

let make tokens = { tokens = Array.of_list tokens; pos = 0 }

let nth t k =
  if t.pos + k < Array.length t.tokens then t.tokens.(t.pos + k)
  else { Token.tok = Token.Eof; loc = Loc.dummy }

let peek t = (nth t 0).Token.tok
let peek2 t = (nth t 1).Token.tok
let loc t = (nth t 0).Token.loc

let next t =
  let tok = peek t in
  if t.pos < Array.length t.tokens then t.pos <- t.pos + 1;
  tok

let skip t = ignore (next t)

let accept t tok =
  if Token.equal (peek t) tok then begin
    skip t;
    true
  end
  else false

let error t fmt = Diag.error (loc t) fmt

let expect t tok =
  if not (accept t tok) then
    error t "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek t))

let expect_ident t =
  match peek t with
  | Token.Ident s ->
    skip t;
    s
  | other -> error t "expected identifier but found %s" (Token.to_string other)
