(** Lexer for the MiniF Fortran subset.

    Free-form-ish: statements end at end of line, [&] at end of line
    continues onto the next, [!] starts a comment anywhere, and a [c], [C]
    or [*] in column 1 followed by a blank (or end of line) comments the
    whole line, as in fixed-form Fortran.  Identifiers and keywords are
    lowercased.  Dotted operators ([.lt.], [.and.], ...) are canonicalized
    to the symbolic spellings; [1.0d0]-style doubles are recognized. *)

val tokenize : file:string -> string -> Token.spanned list
(** @raise Diag.Frontend_error on an unrecognized character. *)
