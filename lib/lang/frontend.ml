let parse_string ~file src =
  match String.lowercase_ascii (Filename.extension file) with
  | ".f" | ".f77" | ".f90" | ".for" -> Parser_f.parse ~file src
  | ".c" -> Parser_c.parse ~file src
  | ext ->
    Diag.error
      (Loc.make ~file ~line:1 ~col:1)
      "unknown source extension %S (expected .f/.f90/.c)" ext

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ~file:path src

let load ~files =
  Sema.analyze (List.map (fun (file, src) -> parse_string ~file src) files)

let load_paths paths = Sema.analyze (List.map parse_file paths)
