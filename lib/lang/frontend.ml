let c_files = Obs.Metrics.counter "frontend.files"
let c_bytes = Obs.Metrics.counter "frontend.bytes"
let h_parse = Obs.Metrics.histogram "frontend.parse.ns"

let parse_string ~file src =
  Obs.Span.with_ ~cat:"pu" ~name:("parse:" ^ Filename.basename file)
  @@ fun () ->
  Obs.Metrics.Counter.incr c_files;
  Obs.Metrics.Counter.add c_bytes (String.length src);
  let mt = Obs.Metrics.enabled () in
  let t0 = if mt then Obs.Trace.now_ns () else 0 in
  let r =
    match String.lowercase_ascii (Filename.extension file) with
    | ".f" | ".f77" | ".f90" | ".for" -> Parser_f.parse ~file src
    | ".c" -> Parser_c.parse ~file src
    | ext ->
      Diag.error
        (Loc.make ~file ~line:1 ~col:1)
        "unknown source extension %S (expected .f/.f90/.c)" ext
  in
  if mt then Obs.Hist.observe h_parse (Obs.Trace.now_ns () - t0);
  r

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ~file:path src

let analyze asts =
  Obs.Span.with_ ~cat:"phase" ~name:"sema" (fun () -> Sema.analyze asts)

let load ~files =
  Obs.Span.with_ ~cat:"phase" ~name:"frontend" @@ fun () ->
  analyze (List.map (fun (file, src) -> parse_string ~file src) files)

let load_isolated ~files =
  Obs.Span.with_ ~cat:"phase" ~name:"frontend" @@ fun () ->
  let asts, bad =
    List.fold_left
      (fun (asts, bad) (file, src) ->
        match parse_string ~file src with
        | ast -> (ast :: asts, bad)
        | exception Diag.Frontend_error d -> (asts, (file, d) :: bad))
      ([], []) files
  in
  (analyze (List.rev asts), List.rev bad)

let load_paths paths =
  Obs.Span.with_ ~cat:"phase" ~name:"frontend" @@ fun () ->
  analyze (List.map parse_file paths)
