(** Recursive-descent parser for the MiniF Fortran subset.

    Supported constructs: [program] / [subroutine] / typed [function] units;
    type declarations (including [dimension] attributes, [a(lb:ub)] bounds,
    assumed-size [a(star)]); [common /blk/ names]; [parameter (n = e, ...)];
    [do] / [do while] / block and logical [if] / [call] / assignment /
    [return] / [print] / [continue] / [stop] statements; full expression
    grammar with Fortran operators.  Array references and function calls are
    both parsed as {!Ast.Array_ref}; {!Sema} disambiguates. *)

val parse : file:string -> string -> Ast.unit_
(** @raise Diag.Frontend_error on syntax errors. *)
