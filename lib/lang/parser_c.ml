open Ast

let punct s = Token.Punct s

let kw p word =
  match Pstate.peek p with
  | Token.Ident s when String.equal s word -> true
  | _ -> false

let accept_kw p word =
  if kw p word then begin
    Pstate.skip p;
    true
  end
  else false

let is_type_kw = function
  | "int" | "float" | "double" | "char" | "void" -> true
  | _ -> false

let dtype_of_kw p = function
  | "int" -> Some Int_t
  | "float" -> Some Real_t
  | "double" -> Some Double_t
  | "char" -> Some Char_t
  | "void" -> None
  | other -> Pstate.error p "unknown type %S" other

(* ------------------------------------------------------------------ *)
(* Expressions (C precedence, subset) *)

let rec parse_expr p = parse_or p

and parse_or p =
  let rec loop acc =
    if Pstate.accept p (punct "||") then loop (Binop (Or, acc, parse_and p))
    else acc
  in
  loop (parse_and p)

and parse_and p =
  let rec loop acc =
    if Pstate.accept p (punct "&&") then loop (Binop (And, acc, parse_eq p))
    else acc
  in
  loop (parse_eq p)

and parse_eq p =
  let rec loop acc =
    if Pstate.accept p (punct "==") then loop (Binop (Eq, acc, parse_rel p))
    else if Pstate.accept p (punct "!=") then loop (Binop (Ne, acc, parse_rel p))
    else acc
  in
  loop (parse_rel p)

and parse_rel p =
  let rec loop acc =
    match Pstate.peek p with
    | Token.Punct "<" ->
      Pstate.skip p;
      loop (Binop (Lt, acc, parse_add p))
    | Token.Punct "<=" ->
      Pstate.skip p;
      loop (Binop (Le, acc, parse_add p))
    | Token.Punct ">" ->
      Pstate.skip p;
      loop (Binop (Gt, acc, parse_add p))
    | Token.Punct ">=" ->
      Pstate.skip p;
      loop (Binop (Ge, acc, parse_add p))
    | _ -> acc
  in
  loop (parse_add p)

and parse_add p =
  let rec loop acc =
    if Pstate.accept p (punct "+") then loop (Binop (Add, acc, parse_mul p))
    else if Pstate.accept p (punct "-") then loop (Binop (Sub, acc, parse_mul p))
    else acc
  in
  loop (parse_mul p)

and parse_mul p =
  let rec loop acc =
    if Pstate.accept p (punct "*") then loop (Binop (Mul, acc, parse_unary p))
    else if Pstate.accept p (punct "/") then loop (Binop (Div, acc, parse_unary p))
    else if Pstate.accept p (punct "%") then loop (Binop (Mod, acc, parse_unary p))
    else acc
  in
  loop (parse_unary p)

and parse_unary p =
  if Pstate.accept p (punct "-") then Unop (Neg, parse_unary p)
  else if Pstate.accept p (punct "!") then Unop (Not, parse_unary p)
  else if Pstate.accept p (punct "+") then parse_unary p
  else parse_postfix p

and parse_postfix p =
  let loc = Pstate.loc p in
  match Pstate.peek p with
  | Token.Int n ->
    Pstate.skip p;
    Int_lit n
  | Token.Float f ->
    Pstate.skip p;
    Real_lit f
  | Token.String s ->
    Pstate.skip p;
    Str_lit s
  | Token.Punct "(" ->
    Pstate.skip p;
    let e = parse_expr p in
    Pstate.expect p (punct ")");
    e
  | Token.Ident name -> (
    Pstate.skip p;
    match Pstate.peek p with
    | Token.Punct "(" ->
      Pstate.skip p;
      let args = parse_args p in
      Call_expr (name, args, loc)
    | Token.Punct "[" ->
      let idx = parse_indices p in
      Array_ref (name, idx, loc)
    | _ -> Var_ref (name, loc))
  | other -> Pstate.error p "expected expression, found %s" (Token.to_string other)

and parse_args p =
  if Pstate.accept p (punct ")") then []
  else
    let rec loop acc =
      let e = parse_expr p in
      if Pstate.accept p (punct ",") then loop (e :: acc)
      else begin
        Pstate.expect p (punct ")");
        List.rev (e :: acc)
      end
    in
    loop []

and parse_indices p =
  let rec loop acc =
    if Pstate.accept p (punct "[") then begin
      let e = parse_expr p in
      Pstate.expect p (punct "]");
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Declarations *)

(* declarator after the type keyword: name, optional [n][m]... dims.
   C dimensions are 0-based: [n] declares 0:n-1; [] is assumed-size. *)
let parse_declarator p dtype =
  let loc = Pstate.loc p in
  let name = Pstate.expect_ident p in
  let rec dims acc =
    if Pstate.accept p (punct "[") then
      if Pstate.accept p (punct "]") then
        dims ({ dim_lo = Int_lit 0; dim_hi = None; dim_assumed_shape = false } :: acc)
      else begin
        let e = parse_expr p in
        Pstate.expect p (punct "]");
        dims
          ({ dim_lo = Int_lit 0; dim_hi = Some (Binop (Sub, e, Int_lit 1));
             dim_assumed_shape = false }
          :: acc)
      end
    else List.rev acc
  in
  let dims = dims [] in
  {
    decl_name = name;
    decl_type = dtype;
    decl_dims = dims;
    decl_common = None;
    decl_coarray = false;
    decl_loc = loc;
  }

(* ------------------------------------------------------------------ *)
(* Statements *)

type incr_kind =
  | Step of expr  (** loop variable changes by this per iteration *)
  | Other of stmt (** arbitrary update statement *)

(* Locals declared inside the function body currently being parsed; collected
   here and attached to the procedure at the end of the definition. *)
let current_locals : decl list ref = ref []

let record_local d = current_locals := d :: !current_locals

let rec parse_stmt p : stmt =
  let loc = Pstate.loc p in
  if Pstate.accept p (punct ";") then Nop loc
  else if Token.equal (Pstate.peek p) (punct "{") then begin
    (* anonymous block: flatten *)
    let body = parse_compound p in
    match body with [ s ] -> s | _ -> If (Logic_lit true, body, [], loc)
  end
  else if accept_kw p "if" then begin
    Pstate.expect p (punct "(");
    let cond = parse_expr p in
    Pstate.expect p (punct ")");
    let then_body = parse_block_or_stmt p in
    let else_body =
      if accept_kw p "else" then parse_block_or_stmt p else []
    in
    If (cond, then_body, else_body, loc)
  end
  else if accept_kw p "while" then begin
    Pstate.expect p (punct "(");
    let cond = parse_expr p in
    Pstate.expect p (punct ")");
    let body = parse_block_or_stmt p in
    While (cond, body, loc)
  end
  else if accept_kw p "for" then parse_for p loc
  else if accept_kw p "return" then begin
    if Pstate.accept p (punct ";") then Return (None, loc)
    else begin
      let e = parse_expr p in
      Pstate.expect p (punct ";");
      Return (Some e, loc)
    end
  end
  else begin
    let s = parse_simple_stmt p in
    Pstate.expect p (punct ";");
    s
  end

(* assignment / call / ++ / -- without the trailing ';' *)
and parse_simple_stmt p : stmt =
  let loc = Pstate.loc p in
  let name = Pstate.expect_ident p in
  match Pstate.peek p with
  | Token.Punct "(" ->
    Pstate.skip p;
    let args = parse_args p in
    if String.equal name "printf" then Print (args, loc) else Call (name, args, loc)
  | _ ->
    let lv =
      if Token.equal (Pstate.peek p) (punct "[") then
        Larr (name, parse_indices p, loc)
      else Lvar (name, loc)
    in
    let lv_expr =
      match lv with
      | Lvar (n, l) -> Var_ref (n, l)
      | Larr (n, i, l) -> Array_ref (n, i, l)
      | Lcoarr _ -> assert false (* MiniC has no coarrays *)
    in
    (match Pstate.peek p with
    | Token.Punct "=" ->
      Pstate.skip p;
      Assign (lv, parse_expr p, loc)
    | Token.Punct "++" ->
      Pstate.skip p;
      Assign (lv, Binop (Add, lv_expr, Int_lit 1), loc)
    | Token.Punct "--" ->
      Pstate.skip p;
      Assign (lv, Binop (Sub, lv_expr, Int_lit 1), loc)
    | Token.Punct "+=" ->
      Pstate.skip p;
      Assign (lv, Binop (Add, lv_expr, parse_expr p), loc)
    | Token.Punct "-=" ->
      Pstate.skip p;
      Assign (lv, Binop (Sub, lv_expr, parse_expr p), loc)
    | Token.Punct "*=" ->
      Pstate.skip p;
      Assign (lv, Binop (Mul, lv_expr, parse_expr p), loc)
    | Token.Punct "/=" ->
      Pstate.skip p;
      Assign (lv, Binop (Div, lv_expr, parse_expr p), loc)
    | other -> Pstate.error p "expected assignment operator, found %s" (Token.to_string other))

and parse_block_or_stmt p =
  if Token.equal (Pstate.peek p) (punct "{") then parse_compound p
  else [ parse_stmt p ]

and parse_compound p =
  Pstate.expect p (punct "{");
  let rec loop acc =
    if Pstate.accept p (punct "}") then List.rev acc
    else if Token.equal (Pstate.peek p) Token.Eof then
      Pstate.error p "unterminated block"
    else
      match Pstate.peek p with
      | Token.Ident t when is_type_kw t ->
        (* local declaration, possibly with initializer *)
        let stmts = parse_local_decl p in
        loop (List.rev_append stmts acc)
      | _ -> loop (parse_stmt p :: acc)
  in
  loop []

(* Local declarations are collected into the enclosing procedure via a side
   channel (see [current_locals]); initializers become assignments. *)
and parse_local_decl p =
  let tkw = Pstate.expect_ident p in
  let dtype =
    match dtype_of_kw p tkw with
    | Some d -> d
    | None -> Pstate.error p "void is not a value type"
  in
  let rec loop stmts =
    let d = parse_declarator p dtype in
    record_local d;
    let stmts =
      if Pstate.accept p (punct "=") then
        Assign (Lvar (d.decl_name, d.decl_loc), parse_expr p, d.decl_loc) :: stmts
      else stmts
    in
    if Pstate.accept p (punct ",") then loop stmts
    else begin
      Pstate.expect p (punct ";");
      List.rev stmts
    end
  in
  loop []

and parse_for p loc =
  Pstate.expect p (punct "(");
  let init = parse_simple_stmt p in
  Pstate.expect p (punct ";");
  let cond = parse_expr p in
  Pstate.expect p (punct ";");
  let incr = parse_incr p in
  Pstate.expect p (punct ")");
  let body = parse_block_or_stmt p in
  (* canonical pattern: i = e1; i <op> e2; i by step *)
  match init, incr with
  | Assign (Lvar (v, _), lo, _), Step step_e ->
    let bound =
      match cond with
      | Binop (Lt, Var_ref (v', _), e) when String.equal v v' ->
        Some (Binop (Sub, e, Int_lit 1))
      | Binop (Le, Var_ref (v', _), e) when String.equal v v' -> Some e
      | Binop (Gt, Var_ref (v', _), e) when String.equal v v' ->
        Some (Binop (Add, e, Int_lit 1))
      | Binop (Ge, Var_ref (v', _), e) when String.equal v v' -> Some e
      | _ -> None
    in
    (match bound with
    | Some hi ->
      let step = match step_e with Int_lit 1 -> None | e -> Some e in
      Do { do_var = v; do_lo = lo; do_hi = hi; do_step = step; do_body = body; do_loc = loc }
    | None ->
      let upd =
        Assign
          ( Lvar (v, loc),
            Binop (Add, Var_ref (v, loc), step_e),
            loc )
      in
      If (Logic_lit true, [ init; While (cond, body @ [ upd ], loc) ], [], loc))
  | _, Other upd -> If (Logic_lit true, [ init; While (cond, body @ [ upd ], loc) ], [], loc)
  | _, Step step_e ->
    let upd = Nop loc in
    ignore step_e;
    If (Logic_lit true, [ init; While (cond, body @ [ upd ], loc) ], [], loc)

and parse_incr p : incr_kind =
  let loc = Pstate.loc p in
  let name = Pstate.expect_ident p in
  match Pstate.peek p with
  | Token.Punct "++" ->
    Pstate.skip p;
    Step (Int_lit 1)
  | Token.Punct "--" ->
    Pstate.skip p;
    Step (Int_lit (-1))
  | Token.Punct "+=" ->
    Pstate.skip p;
    Step (parse_expr p)
  | Token.Punct "-=" ->
    Pstate.skip p;
    Step (Unop (Neg, parse_expr p))
  | Token.Punct "=" -> (
    Pstate.skip p;
    let e = parse_expr p in
    match e with
    | Binop (Add, Var_ref (v, _), step) when String.equal v name -> Step step
    | Binop (Sub, Var_ref (v, _), step) when String.equal v name ->
      Step (Unop (Neg, step))
    | _ -> Other (Assign (Lvar (name, loc), e, loc)))
  | other -> Pstate.error p "unsupported for-increment: %s" (Token.to_string other)

(* ------------------------------------------------------------------ *)
(* Top level *)

let parse_params p =
  Pstate.expect p (punct "(");
  if Pstate.accept p (punct ")") then []
  else if kw p "void" && Token.equal (Pstate.peek2 p) (punct ")") then begin
    Pstate.skip p;
    Pstate.skip p;
    []
  end
  else
    let rec loop acc =
      let tkw = Pstate.expect_ident p in
      let dtype =
        match dtype_of_kw p tkw with
        | Some d -> d
        | None -> Pstate.error p "void parameter must be alone"
      in
      let d = parse_declarator p dtype in
      if Pstate.accept p (punct ",") then loop (d :: acc)
      else begin
        Pstate.expect p (punct ")");
        List.rev (d :: acc)
      end
    in
    loop []

let parse ~file src =
  let p = Pstate.make (Lexer_c.tokenize ~file src) in
  let globals = ref [] in
  let consts = ref [] in
  let procs = ref [] in
  let rec loop () =
    match Pstate.peek p with
    | Token.Eof -> ()
    | Token.Newline ->
      Pstate.skip p;
      loop ()
    | Token.Punct "#" ->
      Pstate.skip p;
      let directive = Pstate.expect_ident p in
      (if String.equal directive "define" then begin
         let name = Pstate.expect_ident p in
         let value = parse_expr p in
         consts := (name, value) :: !consts
       end);
      (* skip the rest of the directive line *)
      let rec to_eol () =
        match Pstate.peek p with
        | Token.Newline ->
          Pstate.skip p
        | Token.Eof -> ()
        | _ ->
          Pstate.skip p;
          to_eol ()
      in
      to_eol ();
      loop ()
    | Token.Ident t when is_type_kw t ->
      Pstate.skip p;
      let dtype = dtype_of_kw p t in
      let name_loc = Pstate.loc p in
      let name = Pstate.expect_ident p in
      if Token.equal (Pstate.peek p) (punct "(") then begin
        (* function definition *)
        let params = parse_params p in
        current_locals := [];
        let body = parse_compound p in
        let locals = List.rev !current_locals in
        let kind =
          if String.equal name "main" then Program
          else
            match dtype with None -> Subroutine | Some d -> Function d
        in
        procs :=
          {
            proc_name = name;
            proc_kind = kind;
            proc_params = List.map (fun d -> d.decl_name) params;
            proc_decls = params @ locals;
            proc_consts = [];
            proc_body = body;
            proc_loc = name_loc;
          }
          :: !procs;
        loop ()
      end
      else begin
        (* global declaration(s) *)
        let dtype =
          match dtype with
          | Some d -> d
          | None -> Pstate.error p "void variable"
        in
        (* re-parse the declarator for [name]: dims follow *)
        let rec dims acc =
          if Pstate.accept p (punct "[") then begin
            let e = parse_expr p in
            Pstate.expect p (punct "]");
            dims
          ({ dim_lo = Int_lit 0; dim_hi = Some (Binop (Sub, e, Int_lit 1));
             dim_assumed_shape = false }
          :: acc)
          end
          else List.rev acc
        in
        let first =
          {
            decl_name = name;
            decl_type = dtype;
            decl_dims = dims [];
            decl_common = Some "global";
            decl_coarray = false;
            decl_loc = name_loc;
          }
        in
        let rec more acc =
          if Pstate.accept p (punct ",") then
            let d = parse_declarator p dtype in
            more ({ d with decl_common = Some "global" } :: acc)
          else begin
            Pstate.expect p (punct ";");
            List.rev acc
          end
        in
        globals := !globals @ more [ first ];
        loop ()
      end
    | other -> Pstate.error p "unexpected token at top level: %s" (Token.to_string other)
  in
  loop ();
  {
    unit_file = file;
    unit_language = C;
    unit_globals = !globals;
    unit_consts = List.rev !consts;
    unit_procs = List.rev !procs;
    unit_iprops = Iprop.scan ~fortran:false src;
  }
