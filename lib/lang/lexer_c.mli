(** Lexer for the MiniC subset: C89-style tokens, [//] and [/* */] comments,
    [#define]/[#include] preprocessor lines are tokenized as a ["#"] punct
    followed by the directive tokens up to end of line, terminated by a
    {!Token.Newline} (the only place MiniC emits one). *)

val tokenize : file:string -> string -> Token.spanned list
(** @raise Diag.Frontend_error on an unrecognized character. *)
