type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let dummy = { file = "<none>"; line = 0; col = 0 }
let file t = t.file
let line t = t.line
let col t = t.col
let equal a b = a.file = b.file && a.line = b.line && a.col = b.col

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let pp ppf t = Format.fprintf ppf "%s:%d:%d" t.file t.line t.col
let to_string t = Format.asprintf "%a" pp t
