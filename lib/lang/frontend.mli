(** Front-end driver: picks the parser by file extension and runs semantic
    analysis over a set of source files, mirroring how OpenUH's GNU front
    ends feed IPL with one summary per compilation unit. *)

val parse_file : string -> Ast.unit_
(** Dispatch on extension: [.f], [.f77], [.f90] to MiniF; [.c] to MiniC.
    @raise Diag.Frontend_error on unknown extensions or syntax errors. *)

val parse_string : file:string -> string -> Ast.unit_
(** Same dispatch, on an in-memory buffer whose [file] name carries the
    extension. *)

val load : files:(string * string) list -> Sema.program
(** [(name, contents)] pairs through parse + sema. *)

val load_isolated :
  files:(string * string) list -> Sema.program * (string * Diag.t) list
(** Like {!load}, but a file whose parse raises {!Diag.Frontend_error} is
    dropped from the program instead of aborting the batch; the returned
    association lists each failed file with its diagnostic, in input
    order.  Semantic analysis runs over the surviving files (and may still
    raise, e.g. when a survivor calls into a dropped file).  Backs
    [uhc --keep-going]. *)

val load_paths : string list -> Sema.program
(** Reads each path from disk. *)
