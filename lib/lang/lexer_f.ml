let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Dotted operator spellings and their canonical punctuation. *)
let dotted_ops =
  [
    ("lt", "<"); ("le", "<="); ("gt", ">"); ("ge", ">=");
    ("eq", "=="); ("ne", "/=:"); ("and", "&&"); ("or", "||"); ("not", "!");
  ]

let tokenize ~file src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and bol = ref 0 in
  let loc_at i = Loc.make ~file ~line:!line ~col:(i - !bol + 1) in
  let emit tok loc = tokens := { Token.tok; loc } :: !tokens in
  let last_significant () =
    match !tokens with { Token.tok; _ } :: _ -> Some tok | [] -> None
  in
  let i = ref 0 in
  (* comment line: 'c', 'C' or '*' in column 1 followed by blank/EOL *)
  let at_comment_line () =
    !i = !bol
    && !i < n
    && (match src.[!i] with
       | 'c' | 'C' | '*' ->
         !i + 1 >= n || src.[!i + 1] = ' ' || src.[!i + 1] = '\n'
           || src.[!i + 1] = '\t' || src.[!i + 1] = '\r'
       | _ -> false)
  in
  let skip_to_eol () =
    while !i < n && src.[!i] <> '\n' do incr i done
  in
  while !i < n do
    let c = src.[!i] in
    if at_comment_line () then skip_to_eol ()
    else
      match c with
      | ' ' | '\t' | '\r' -> incr i
      | '\n' ->
        (* collapse consecutive newlines; suppress newline after '&' *)
        (match last_significant () with
        | Some Token.Newline | None -> ()
        | Some _ -> emit Token.Newline (loc_at !i));
        incr i;
        incr line;
        bol := !i
      | '&' ->
        (* continuation: swallow to end of line including the newline *)
        incr i;
        skip_to_eol ();
        if !i < n then begin
          incr i;
          incr line;
          bol := !i
        end
      | '!' -> skip_to_eol ()
      | '\'' | '"' ->
        let quote = c in
        let start = !i in
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= n then Diag.error (loc_at start) "unterminated string"
          else if src.[!i] = quote then
            if !i + 1 < n && src.[!i + 1] = quote then begin
              Buffer.add_char buf quote;
              i := !i + 2;
              scan ()
            end
            else incr i
          else begin
            Buffer.add_char buf src.[!i];
            incr i;
            scan ()
          end
        in
        scan ();
        emit (Token.String (Buffer.contents buf)) (loc_at start)
      | '.' when !i + 1 < n && is_alpha src.[!i + 1] ->
        (* dotted operator or logical literal *)
        let start = !i in
        let j = ref (!i + 1) in
        while !j < n && is_alpha src.[!j] do incr j done;
        if !j < n && src.[!j] = '.' then begin
          let word = String.lowercase_ascii (String.sub src (!i + 1) (!j - !i - 1)) in
          i := !j + 1;
          match word with
          | "true" -> emit (Token.Logic true) (loc_at start)
          | "false" -> emit (Token.Logic false) (loc_at start)
          | _ -> (
            match List.assoc_opt word dotted_ops with
            | Some p ->
              let p = if p = "/=:" then "!=" else p in
              emit (Token.Punct p) (loc_at start)
            | None -> Diag.error (loc_at start) "unknown operator .%s." word)
        end
        else Diag.error (loc_at start) "stray '.'"
      | c when is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) ->
        let start = !i in
        while !i < n && is_digit src.[!i] do incr i done;
        let is_float = ref false in
        if
          !i < n && src.[!i] = '.'
          && not (!i + 1 < n && is_alpha src.[!i + 1])
          (* 1.lt.2 must not eat the dot *)
        then begin
          is_float := true;
          incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        (* exponent: e, d (double), with optional sign *)
        if
          !i < n
          && (match src.[!i] with 'e' | 'E' | 'd' | 'D' -> true | _ -> false)
          && (!i + 1 < n
             && (is_digit src.[!i + 1]
                || ((src.[!i + 1] = '+' || src.[!i + 1] = '-')
                   && !i + 2 < n && is_digit src.[!i + 2])))
        then begin
          is_float := true;
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        let text = String.sub src start (!i - start) in
        if !is_float then
          let text =
            String.map (function 'd' | 'D' -> 'e' | c -> c) text
          in
          emit (Token.Float (float_of_string text)) (loc_at start)
        else emit (Token.Int (int_of_string text)) (loc_at start)
      | c when is_alpha c ->
        let start = !i in
        while !i < n && is_alnum src.[!i] do incr i done;
        let word = String.lowercase_ascii (String.sub src start (!i - start)) in
        emit (Token.Ident word) (loc_at start)
      | _ ->
        let start = !i in
        let two =
          if !i + 1 < n then String.sub src !i 2 else ""
        in
        let punct, len =
          match two with
          | "**" | "==" | "/=" | "<=" | ">=" | "::" -> (two, 2)
          | _ -> (String.make 1 c, 1)
        in
        let punct = if punct = "/=" then "!=" else punct in
        (match punct with
        | "+" | "-" | "*" | "/" | "(" | ")" | "," | "=" | ":" | "<" | ">"
        | "[" | "]" | "**" | "==" | "!=" | "<=" | ">=" | "::" ->
          i := !i + len;
          emit (Token.Punct punct) (loc_at start)
        | _ -> Diag.error (loc_at start) "unexpected character %C" c)
  done;
  (match last_significant () with
  | Some Token.Newline | None -> ()
  | Some _ -> emit Token.Newline (loc_at !i));
  emit Token.Eof (loc_at !i);
  List.rev !tokens
