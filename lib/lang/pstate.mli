(** Token-stream cursor shared by both recursive-descent parsers. *)

type t

val make : Token.spanned list -> t

val peek : t -> Token.t
val peek2 : t -> Token.t
(** Token after the next one ({!Token.Eof} when exhausted). *)

val loc : t -> Loc.t
(** Location of the next token. *)

val next : t -> Token.t
(** Consumes and returns the next token. *)

val skip : t -> unit

val accept : t -> Token.t -> bool
(** Consumes the next token iff it equals the given one. *)

val expect : t -> Token.t -> unit
(** @raise Diag.Frontend_error when the next token differs. *)

val expect_ident : t -> string
(** Consumes an identifier and returns its text. *)

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
