(** Source positions.  Dragon's "locate the array in the source" feature and
    the [.rgn] file's line numbers both rely on every AST and WHIRL node
    carrying one of these. *)

type t = { file : string; line : int; col : int }

val make : file:string -> line:int -> col:int -> t
val dummy : t
val file : t -> string
val line : t -> int
val col : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
