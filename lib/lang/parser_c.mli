(** Recursive-descent parser for the MiniC subset.

    Supported: file-scope declarations (become globals), [#define] constants,
    [#include] (ignored), function definitions, block-local declarations with
    optional initializers, [if]/[else], [while], [for] (canonical
    [for (i = e1; i <op> e2; i++/i--/i+=c)] loops are normalized to
    {!Ast.Do}; anything else becomes {!Ast.While}), [return], assignment
    (including [+=]-family and [++]/[--]), calls, and [printf] (mapped to
    {!Ast.Print}).  Array indexing [a[i][j]] parses to {!Ast.Array_ref} with
    the declared 0-based bounds preserved. *)

val parse : file:string -> string -> Ast.unit_
(** @raise Diag.Frontend_error on syntax errors. *)
