(** Semantic analysis: merges compilation units into a whole program,
    resolves every name, disambiguates [a(i)] between array reference and
    function call (both parse as {!Ast.Array_ref} in MiniF), constant-folds
    declared bounds, and applies Fortran implicit typing to undeclared
    scalars.

    The result is the input the WHIRL lowering consumes; nothing downstream
    looks at raw names again. *)

module String_map : Map.S with type key = string

(** How a variable is stored; drives the paper's FORMAL/global-@ scoping. *)
type var_class =
  | Local
  | Formal
  | Global of string  (** COMMON block name / "global" for C file scope *)

type array_sig = {
  a_type : Ast.dtype;
  a_dims : (int option * int option) list;
      (** constant-folded [lo, hi] per dimension, [None] when symbolic or
          assumed-size (the paper displays total size 0 for those) *)
  a_coarray : bool;  (** declared with a codimension (Fortran 2008) *)
  a_contiguous : bool;
      (** false for assumed-shape [a(:)] arrays, which may be slices: WHIRL
          marks these with a negative element size *)
  a_iprop : Iprop.t;
      (** declared index-array properties ({!Iprop.none} when undeclared);
          COMMON redeclarations conjoin via {!Iprop.meet} *)
  a_decl_loc : Loc.t;
}

type symbol =
  | Sym_scalar of Ast.dtype * var_class
  | Sym_array of array_sig * var_class
  | Sym_const of int  (** PARAMETER / #define integer constant *)

type proc_info = {
  pi_proc : Ast.proc;  (** body rewritten: calls disambiguated *)
  pi_symbols : symbol String_map.t;
  pi_file : string;
  pi_object : string;  (** the .o name shown in the File column of .rgn *)
  pi_language : Ast.language;
}

type program = {
  prog_procs : proc_info String_map.t;
  prog_order : string list;  (** procedure names in definition order *)
  prog_globals : (array_sig * string) String_map.t;
      (** global arrays: signature and owning block *)
  prog_global_scalars : (Ast.dtype * string) String_map.t;
  prog_files : string list;
  prog_warnings : Diag.t list;
}

val intrinsics : string list
(** Names always treated as function calls (mod, sqrt, max, ...). *)

val is_intrinsic : string -> bool

val analyze : Ast.unit_ list -> program
(** @raise Diag.Frontend_error on semantic errors (rank mismatch,
    inconsistent COMMON declarations, calling a scalar, ...). *)

val const_eval : symbol String_map.t -> Ast.expr -> int option
(** Fold an integer-constant expression using PARAMETER/#define bindings. *)

val proc_arrays : proc_info -> (string * array_sig * var_class) list
(** All array symbols visible in the procedure, declaration order not
    guaranteed. *)
