type t = {
  ip_lo : int option;
  ip_hi : int option;
  ip_monotonic : bool;
  ip_injective : bool;
}

let none = { ip_lo = None; ip_hi = None; ip_monotonic = false; ip_injective = false }
let is_none t = t = none
let equal (a : t) (b : t) = a = b

let meet a b =
  {
    ip_lo =
      (match a.ip_lo, b.ip_lo with
      | Some x, Some y -> Some (max x y)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None);
    ip_hi =
      (match a.ip_hi, b.ip_hi with
      | Some x, Some y -> Some (min x y)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None);
    ip_monotonic = a.ip_monotonic || b.ip_monotonic;
    ip_injective = a.ip_injective || b.ip_injective;
  }

let to_token t =
  if is_none t then "-"
  else begin
    let items = ref [] in
    (match t.ip_hi with Some h -> items := ("h" ^ string_of_int h) :: !items | None -> ());
    (match t.ip_lo with Some l -> items := ("l" ^ string_of_int l) :: !items | None -> ());
    if t.ip_injective then items := "i" :: !items;
    if t.ip_monotonic then items := "m" :: !items;
    String.concat "," !items
  end

let of_token s =
  if s = "-" then Some none
  else
    let items = String.split_on_char ',' s in
    List.fold_left
      (fun acc item ->
        match acc with
        | None -> None
        | Some t -> (
          match item with
          | "m" -> Some { t with ip_monotonic = true }
          | "i" -> Some { t with ip_injective = true }
          | "" -> None
          | _ -> (
            let tag = item.[0] in
            let rest = String.sub item 1 (String.length item - 1) in
            match tag, int_of_string_opt rest with
            | 'l', Some v -> Some { t with ip_lo = Some v }
            | 'h', Some v -> Some { t with ip_hi = Some v }
            | _ -> None)))
      (Some none) items

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "none"
  else begin
    let first = ref true in
    let item fmt =
      Format.kasprintf
        (fun s ->
          if not !first then Format.pp_print_string ppf " ";
          first := false;
          Format.pp_print_string ppf s)
        fmt
    in
    if t.ip_monotonic then item "monotonic";
    if t.ip_injective then item "injective";
    match t.ip_lo, t.ip_hi with
    | Some l, Some h -> item "bounded(%d,%d)" l h
    | Some l, None -> item "bounded(%d,*)" l
    | None, Some h -> item "bounded(*,%d)" h
    | None, None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Provenance flags *)

type flags = {
  f_bounded : bool;
  f_monotonic : bool;
  f_injective : bool;
}

let no_flags = { f_bounded = false; f_monotonic = false; f_injective = false }

let flags_union a b =
  {
    f_bounded = a.f_bounded || b.f_bounded;
    f_monotonic = a.f_monotonic || b.f_monotonic;
    f_injective = a.f_injective || b.f_injective;
  }

let any_flag f = f.f_bounded || f.f_monotonic || f.f_injective

let flags_token f =
  if not (any_flag f) then "-"
  else
    (if f.f_bounded then "b" else "")
    ^ (if f.f_monotonic then "m" else "")
    ^ if f.f_injective then "i" else ""

let flags_of_token s =
  if s = "-" then Some no_flags
  else if s = "" then None
  else
    String.fold_left
      (fun acc ch ->
        match acc with
        | None -> None
        | Some f -> (
          match ch with
          | 'b' -> Some { f with f_bounded = true }
          | 'm' -> Some { f with f_monotonic = true }
          | 'i' -> Some { f with f_injective = true }
          | _ -> None))
      (Some no_flags) s

(* ------------------------------------------------------------------ *)
(* Directive scanning over raw source text *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* "bounded(LO,HI)" -> Some (lo, hi) *)
let parse_bounded w =
  let n = String.length w in
  if n >= 10 && String.sub w 0 8 = "bounded(" && w.[n - 1] = ')' then
    match String.split_on_char ',' (String.sub w 8 (n - 9)) with
    | [ lo; hi ] -> (
      match int_of_string_opt (String.trim lo), int_of_string_opt (String.trim hi) with
      | Some l, Some h -> Some (l, h)
      | _ -> None)
    | _ -> None
  else None

let parse_props words =
  List.fold_left
    (fun acc w ->
      match acc with
      | None -> None
      | Some t -> (
        match String.lowercase_ascii w with
        | "monotonic" -> Some { t with ip_monotonic = true }
        | "injective" -> Some { t with ip_injective = true }
        | lw -> (
          match parse_bounded lw with
          | Some (l, h) -> Some { t with ip_lo = Some l; ip_hi = Some h }
          | None -> None)))
    (Some none) words

let directive_rest ~fortran line =
  let line = String.trim line in
  let strip prefix =
    let n = String.length prefix in
    if
      String.length line >= n
      && String.lowercase_ascii (String.sub line 0 n) = prefix
    then Some (String.sub line n (String.length line - n))
    else None
  in
  if fortran then strip "!$uhc "
  else
    (* allow a space between '#' and 'pragma' *)
    match strip "#pragma uhc " with
    | Some _ as r -> r
    | None -> strip "# pragma uhc "

let scan ~fortran src =
  let found = ref [] in
  let add name t =
    let name = if fortran then String.lowercase_ascii name else name in
    found :=
      (match List.assoc_opt name !found with
      | Some prev -> (name, meet prev t) :: List.remove_assoc name !found
      | None -> (name, t) :: !found)
  in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         match directive_rest ~fortran line with
         | None -> ()
         | Some rest -> (
           match split_ws rest with
           | "index" :: name :: props when props <> [] -> (
             match parse_props props with
             | Some t when not (is_none t) -> add name t
             | _ -> ())
           | _ -> ()));
  List.rev !found

let lookup l name = Option.value (List.assoc_opt name l) ~default:none
