type language = Fortran | C

type dtype =
  | Int_t
  | Real_t
  | Double_t
  | Char_t
  | Logical_t

let dtype_size = function
  | Int_t -> 4
  | Real_t -> 4
  | Double_t -> 8
  | Char_t -> 1
  | Logical_t -> 4

let dtype_name = function
  | Int_t -> "int"
  | Real_t -> "real"
  | Double_t -> "double"
  | Char_t -> "char"
  | Logical_t -> "logical"

type binop =
  | Add | Sub | Mul | Div | Pow | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Real_lit of float
  | Str_lit of string
  | Logic_lit of bool
  | Var_ref of string * Loc.t
  | Array_ref of string * expr list * Loc.t
  | Coarray_ref of string * expr list * expr * Loc.t
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call_expr of string * expr list * Loc.t

type lvalue =
  | Lvar of string * Loc.t
  | Larr of string * expr list * Loc.t
  | Lcoarr of string * expr list * expr * Loc.t

type stmt =
  | Assign of lvalue * expr * Loc.t
  | If of expr * stmt list * stmt list * Loc.t
  | Do of do_loop
  | While of expr * stmt list * Loc.t
  | Call of string * expr list * Loc.t
  | Return of expr option * Loc.t
  | Print of expr list * Loc.t
  | Nop of Loc.t

and do_loop = {
  do_var : string;
  do_lo : expr;
  do_hi : expr;
  do_step : expr option;
  do_body : stmt list;
  do_loc : Loc.t;
}

type dim = { dim_lo : expr; dim_hi : expr option; dim_assumed_shape : bool }

type decl = {
  decl_name : string;
  decl_type : dtype;
  decl_dims : dim list;
  decl_common : string option;
  decl_coarray : bool;
  decl_loc : Loc.t;
}

type proc_kind = Program | Subroutine | Function of dtype

type proc = {
  proc_name : string;
  proc_kind : proc_kind;
  proc_params : string list;
  proc_decls : decl list;
  proc_consts : (string * expr) list;
  proc_body : stmt list;
  proc_loc : Loc.t;
}

type unit_ = {
  unit_file : string;
  unit_language : language;
  unit_globals : decl list;
  unit_consts : (string * expr) list;
  unit_procs : proc list;
  unit_iprops : (string * Iprop.t) list;
}

let rec loc_of_expr = function
  | Int_lit _ | Real_lit _ | Str_lit _ | Logic_lit _ -> Loc.dummy
  | Var_ref (_, l) | Array_ref (_, _, l) | Call_expr (_, _, l)
  | Coarray_ref (_, _, _, l) ->
    l
  | Binop (_, a, b) ->
    let la = loc_of_expr a in
    if Loc.equal la Loc.dummy then loc_of_expr b else la
  | Unop (_, e) -> loc_of_expr e

let loc_of_stmt = function
  | Assign (_, _, l) | If (_, _, _, l) | While (_, _, l)
  | Call (_, _, l) | Return (_, l) | Print (_, l) | Nop l -> l
  | Do d -> d.do_loc

let loc_of_lvalue = function
  | Lvar (_, l) | Larr (_, _, l) | Lcoarr (_, _, _, l) -> l

let lvalue_name = function
  | Lvar (n, _) | Larr (n, _, _) | Lcoarr (n, _, _, _) -> n

let pp_dtype ppf t = Format.pp_print_string ppf (dtype_name t)

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**"
  | Mod -> "mod" | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<="
  | Gt -> ">" | Ge -> ">=" | And -> ".and." | Or -> ".or."

let pp_binop ppf b = Format.pp_print_string ppf (binop_str b)

let rec pp_expr ppf = function
  | Int_lit n -> Format.fprintf ppf "%d" n
  | Real_lit f -> Format.fprintf ppf "%g" f
  | Str_lit s -> Format.fprintf ppf "%S" s
  | Logic_lit b -> Format.pp_print_string ppf (if b then ".true." else ".false.")
  | Var_ref (n, _) -> Format.pp_print_string ppf n
  | Array_ref (n, idx, _) ->
    Format.fprintf ppf "%s(%a)" n pp_expr_list idx
  | Coarray_ref (n, idx, img, _) ->
    Format.fprintf ppf "%s(%a)[%a]" n pp_expr_list idx pp_expr img
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf ppf "(.not. %a)" pp_expr e
  | Call_expr (n, args, _) -> Format.fprintf ppf "%s(%a)" n pp_expr_list args

and pp_expr_list ppf es =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf es

let pp_lvalue ppf = function
  | Lvar (n, _) -> Format.pp_print_string ppf n
  | Larr (n, idx, _) -> Format.fprintf ppf "%s(%a)" n pp_expr_list idx
  | Lcoarr (n, idx, img, _) ->
    Format.fprintf ppf "%s(%a)[%a]" n pp_expr_list idx pp_expr img

let rec pp_stmt ppf = function
  | Assign (lv, e, _) -> Format.fprintf ppf "@[%a = %a@]" pp_lvalue lv pp_expr e
  | If (c, t, [], _) ->
    Format.fprintf ppf "@[<v 2>if (%a) then@,%a@]@,end if" pp_expr c pp_body t
  | If (c, t, e, _) ->
    Format.fprintf ppf "@[<v 2>if (%a) then@,%a@]@,@[<v 2>else@,%a@]@,end if"
      pp_expr c pp_body t pp_body e
  | Do d ->
    let pp_step ppf = function
      | None -> ()
      | Some s -> Format.fprintf ppf ", %a" pp_expr s
    in
    Format.fprintf ppf "@[<v 2>do %s = %a, %a%a@,%a@]@,end do" d.do_var
      pp_expr d.do_lo pp_expr d.do_hi pp_step d.do_step pp_body d.do_body
  | While (c, body, _) ->
    Format.fprintf ppf "@[<v 2>do while (%a)@,%a@]@,end do" pp_expr c pp_body body
  | Call (n, args, _) -> Format.fprintf ppf "call %s(%a)" n pp_expr_list args
  | Return (None, _) -> Format.pp_print_string ppf "return"
  | Return (Some e, _) -> Format.fprintf ppf "return %a" pp_expr e
  | Print (es, _) -> Format.fprintf ppf "print *, %a" pp_expr_list es
  | Nop _ -> Format.pp_print_string ppf "continue"

and pp_body ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_dim ppf d =
  if d.dim_assumed_shape then Format.pp_print_string ppf ":"
  else
    match d.dim_hi with
    | Some hi -> Format.fprintf ppf "%a:%a" pp_expr d.dim_lo pp_expr hi
    | None -> Format.fprintf ppf "%a:*" pp_expr d.dim_lo

let pp_decl ppf d =
  match d.decl_dims with
  | [] -> Format.fprintf ppf "%a :: %s" pp_dtype d.decl_type d.decl_name
  | dims ->
    Format.fprintf ppf "%a :: %s(%a)" pp_dtype d.decl_type d.decl_name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_dim)
      dims

let pp_proc ppf p =
  let kind =
    match p.proc_kind with
    | Program -> "program"
    | Subroutine -> "subroutine"
    | Function _ -> "function"
  in
  Format.fprintf ppf "@[<v 2>%s %s(%a)@,%a@,%a@]@,end" kind p.proc_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    p.proc_params
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl)
    p.proc_decls pp_body p.proc_body

let pp_unit ppf u =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_proc)
    u.unit_procs

let rec expr_equal a b =
  match a, b with
  | Int_lit x, Int_lit y -> x = y
  | Real_lit x, Real_lit y -> x = y
  | Str_lit x, Str_lit y -> String.equal x y
  | Logic_lit x, Logic_lit y -> x = y
  | Var_ref (x, _), Var_ref (y, _) -> String.equal x y
  | Array_ref (x, xi, _), Array_ref (y, yi, _) ->
    String.equal x y && exprs_equal xi yi
  | Coarray_ref (x, xi, xm, _), Coarray_ref (y, yi, ym, _) ->
    String.equal x y && exprs_equal xi yi && expr_equal xm ym
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && expr_equal e1 e2
  | Call_expr (x, xs, _), Call_expr (y, ys, _) ->
    String.equal x y && exprs_equal xs ys
  | ( ( Int_lit _ | Real_lit _ | Str_lit _ | Logic_lit _ | Var_ref _
      | Array_ref _ | Coarray_ref _ | Binop _ | Unop _ | Call_expr _ ),
      _ ) ->
    false

and exprs_equal xs ys =
  List.length xs = List.length ys && List.for_all2 expr_equal xs ys
