(** Tokens shared by both front ends.  Keywords stay {!Ident}s; each parser
    recognizes its own keyword set (Fortran identifiers are lowercased by the
    lexer, so matching is effectively case-insensitive there). *)

type t =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Logic of bool   (** Fortran [.true.] / [.false.] *)
  | Punct of string (** operators and delimiters, canonical spelling *)
  | Newline         (** statement separator (Fortran EOL, C [;]) is NOT this;
                        only the Fortran lexer emits it *)
  | Eof

type spanned = { tok : t; loc : Loc.t }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
