type t =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Logic of bool
  | Punct of string
  | Newline
  | Eof

type spanned = { tok : t; loc : Loc.t }

let equal a b =
  match a, b with
  | Ident x, Ident y | String x, String y | Punct x, Punct y -> String.equal x y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Logic x, Logic y -> x = y
  | Newline, Newline | Eof, Eof -> true
  | (Ident _ | Int _ | Float _ | String _ | Logic _ | Punct _ | Newline | Eof), _
    ->
    false

let pp ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int n -> Format.fprintf ppf "integer %d" n
  | Float f -> Format.fprintf ppf "float %g" f
  | String s -> Format.fprintf ppf "string %S" s
  | Logic b -> Format.fprintf ppf "logical %b" b
  | Punct s -> Format.fprintf ppf "%S" s
  | Newline -> Format.pp_print_string ppf "end of line"
  | Eof -> Format.pp_print_string ppf "end of file"

let to_string t = Format.asprintf "%a" pp t
