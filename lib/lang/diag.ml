type severity = Error | Warning

type t = { severity : severity; loc : Loc.t; message : string }

exception Frontend_error of t

let error loc fmt =
  Format.kasprintf
    (fun message -> raise (Frontend_error { severity = Error; loc; message }))
    fmt

let warning loc fmt =
  Format.kasprintf
    (fun message -> { severity = Warning; loc; message })
    fmt

let pp ppf t =
  let tag = match t.severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "%a: %s: %s" Loc.pp t.loc tag t.message

let to_string t = Format.asprintf "%a" pp t
