(** One row of the array-analysis table — the unit of the [.rgn] file and of
    Dragon's tabular view (paper, Section V-A: "We output these information
    to a comma separated plain file .rgn, where each row maintains
    information about each region per access mode"). *)

type t = {
  scope : string;  (** procedure name, or "@" for the global scope *)
  array : string;
  file : string;   (** object file, e.g. "verify.o" *)
  mode : string;   (** USE / DEF / FORMAL / PASSED *)
  references : int;  (** reference count for (array, mode) in this scope *)
  dimensions : int;
  lb : string;     (** per-dimension, source order, "|"-separated *)
  ub : string;
  stride : string;
  element_size : int;
  data_type : string;
  dim_size : string;   (** "64|65|65|5" style *)
  tot_size : int;      (** total element count; 0 for variable-length *)
  size_bytes : int;
  mem_loc : string;    (** hexadecimal *)
  acc_density : int;   (** floor(100 * references / size_bytes) *)
  line : int;          (** source line of the reference (locate feature) *)
  props : string;
      (** declared index-array properties the region leaned on: ["-"] or a
          subset of [b m i] ({!Lang.Iprop.flags_token}) *)
}

val density : references:int -> size_bytes:int -> int
(** The paper's access density as an integer percentage; 0 when the array
    has no known size. *)

val header : string list

val legacy_header : string list
(** The pre-Props 17-column header, still accepted by the reader. *)

val to_fields : t -> string list

val of_fields : string list -> (t, string) result
(** Accepts both 17-field (legacy, [props = "-"]) and 18-field rows.  An
    unknown Props token conservatively degrades LB/UB/Stride to ["*"],
    mirroring the legacy clamped-bit rule for summary rows. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
