type dgn = {
  dgn_sources : (string * string) list;
  dgn_procs : (string * string * int) list;
  dgn_edges : (string * string * int) list;
}

type cfg_block = {
  cb_proc : string;
  cb_id : int;
  cb_label : string;
  cb_succs : int list;
}

(* minimal CSV with double-quote escaping *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let join_csv fields =
  String.concat ","
    (List.map (fun f -> if needs_quoting f then quote f else f) fields)

let split_csv line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    else if c = '"' then begin
      in_quotes := true;
      incr i
    end
    else if c = ',' then begin
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf;
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

let lines_of s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")

(* ------------------------------------------------------------------ *)
(* .rgn *)

let write_rgn rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (join_csv Row.header);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (join_csv (Row.to_fields r));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let parse_rgn s =
  match lines_of s with
  | [] -> Error "empty .rgn file"
  | header :: rows ->
    if
      let h = split_csv header in
      h <> Row.header && h <> Row.legacy_header
    then Error "bad .rgn header"
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match Row.of_fields (split_csv line) with
          | Ok r -> go (r :: acc) rest
          | Error e -> Error (Printf.sprintf "%s (line: %s)" e line))
      in
      go [] rows

(* ------------------------------------------------------------------ *)
(* .dgn *)

let write_dgn d =
  let buf = Buffer.create 512 in
  List.iter
    (fun (path, lang) ->
      Buffer.add_string buf (join_csv [ "source"; path; lang ]);
      Buffer.add_char buf '\n')
    d.dgn_sources;
  List.iter
    (fun (name, file, line) ->
      Buffer.add_string buf (join_csv [ "proc"; name; file; string_of_int line ]);
      Buffer.add_char buf '\n')
    d.dgn_procs;
  List.iter
    (fun (caller, callee, line) ->
      Buffer.add_string buf
        (join_csv [ "edge"; caller; callee; string_of_int line ]);
      Buffer.add_char buf '\n')
    d.dgn_edges;
  Buffer.contents buf

let parse_dgn s =
  let sources = ref [] and procs = ref [] and edges = ref [] in
  let err = ref None in
  List.iter
    (fun line ->
      if !err = None then
        match split_csv line with
        | [ "source"; path; lang ] -> sources := (path, lang) :: !sources
        | [ "proc"; name; file; ln ] -> (
          match int_of_string_opt ln with
          | Some ln -> procs := (name, file, ln) :: !procs
          | None -> err := Some ("bad proc line: " ^ line))
        | [ "edge"; caller; callee; ln ] -> (
          match int_of_string_opt ln with
          | Some ln -> edges := (caller, callee, ln) :: !edges
          | None -> err := Some ("bad edge line: " ^ line))
        | _ -> err := Some ("unrecognized .dgn line: " ^ line))
    (lines_of s);
  match !err with
  | Some e -> Error e
  | None ->
    Ok
      {
        dgn_sources = List.rev !sources;
        dgn_procs = List.rev !procs;
        dgn_edges = List.rev !edges;
      }

(* ------------------------------------------------------------------ *)
(* .cfg *)

let write_cfg blocks =
  let buf = Buffer.create 512 in
  List.iter
    (fun b ->
      Buffer.add_string buf
        (join_csv
           [
             b.cb_proc;
             string_of_int b.cb_id;
             b.cb_label;
             String.concat ";" (List.map string_of_int b.cb_succs);
           ]);
      Buffer.add_char buf '\n')
    blocks;
  Buffer.contents buf

let parse_cfg s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match split_csv line with
      | [ proc; id; label; succs ] -> (
        match int_of_string_opt id with
        | None -> Error ("bad block id: " ^ line)
        | Some id ->
          let succs =
            if succs = "" then []
            else
              String.split_on_char ';' succs
              |> List.filter_map int_of_string_opt
          in
          go ({ cb_proc = proc; cb_id = id; cb_label = label; cb_succs = succs } :: acc)
            rest)
      | _ -> Error ("unrecognized .cfg line: " ^ line))
  in
  go [] (lines_of s)

let c_saves = Obs.Metrics.counter "files.saves"
let c_save_bytes = Obs.Metrics.counter "files.save_bytes"
let c_loads = Obs.Metrics.counter "files.loads"
let c_load_bytes = Obs.Metrics.counter "files.load_bytes"

let save ~path contents =
  Obs.Span.with_ ~cat:"io" ~name:("save:" ^ Filename.basename path)
  @@ fun () ->
  Obs.Metrics.Counter.incr c_saves;
  Obs.Metrics.Counter.add c_save_bytes (String.length contents);
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let load ~path =
  Obs.Span.with_ ~cat:"io" ~name:("load:" ^ Filename.basename path)
  @@ fun () ->
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Obs.Metrics.Counter.incr c_loads;
  Obs.Metrics.Counter.add c_load_bytes len;
  s
