(** Writers and parsers for the three plain-file formats the compiler side
    emits and the Dragon side loads (paper, Section V-B step 2: "A bunch of
    files will be generated that includes .dgn, .cfg and .rgn files").

    - [.rgn]: CSV, one {!Row.t} per line, with a header line;
    - [.dgn]: the project file — source files, procedure list, and the call
      graph edges ("caller,callee,line" records);
    - [.cfg]: per-procedure control-flow blocks ("proc,block,label,succs"). *)

type dgn = {
  dgn_sources : (string * string) list;  (** (path, language) *)
  dgn_procs : (string * string * int) list;  (** (name, file, line) *)
  dgn_edges : (string * string * int) list;  (** (caller, callee, line) *)
}

type cfg_block = {
  cb_proc : string;
  cb_id : int;
  cb_label : string;
  cb_succs : int list;
}

val split_csv : string -> string list
(** Fields containing commas or quotes are double-quoted on output; this
    undoes that encoding. *)

val join_csv : string list -> string

val write_rgn : Row.t list -> string
val parse_rgn : string -> (Row.t list, string) result

val write_dgn : dgn -> string
val parse_dgn : string -> (dgn, string) result

val write_cfg : cfg_block list -> string
val parse_cfg : string -> (cfg_block list, string) result

val save : path:string -> string -> unit
val load : path:string -> string
