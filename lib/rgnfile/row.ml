type t = {
  scope : string;
  array : string;
  file : string;
  mode : string;
  references : int;
  dimensions : int;
  lb : string;
  ub : string;
  stride : string;
  element_size : int;
  data_type : string;
  dim_size : string;
  tot_size : int;
  size_bytes : int;
  mem_loc : string;
  acc_density : int;
  line : int;
  props : string;
}

let density ~references ~size_bytes =
  if size_bytes <= 0 then 0 else references * 100 / size_bytes

let header =
  [
    "Scope"; "Array"; "File"; "Mode"; "References"; "Dimensions"; "LB"; "UB";
    "Stride"; "Element_size"; "Data_type"; "Dim_size"; "Tot_size";
    "Size_bytes"; "Mem_Loc"; "Acc_density"; "Line"; "Props";
  ]

let legacy_header = List.filter (fun h -> h <> "Props") header

let valid_props s =
  s <> "" && String.for_all (fun c -> c = '-' || c = 'b' || c = 'm' || c = 'i') s

let to_fields t =
  [
    t.scope; t.array; t.file; t.mode;
    string_of_int t.references;
    string_of_int t.dimensions;
    t.lb; t.ub; t.stride;
    string_of_int t.element_size;
    t.data_type; t.dim_size;
    string_of_int t.tot_size;
    string_of_int t.size_bytes;
    t.mem_loc;
    string_of_int t.acc_density;
    string_of_int t.line;
    t.props;
  ]

let int_field name s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "field %s: %S is not an integer" name s)

let ( let* ) = Result.bind

let of_fields fields =
  match fields with
  | [
      scope; array; file; mode; references; dimensions; lb; ub; stride;
      element_size; data_type; dim_size; tot_size; size_bytes; mem_loc;
      acc_density; line;
    ]
  | [
      scope; array; file; mode; references; dimensions; lb; ub; stride;
      element_size; data_type; dim_size; tot_size; size_bytes; mem_loc;
      acc_density; line; _;
    ] ->
    let props =
      match List.nth_opt fields 17 with Some p -> p | None -> "-"
    in
    let* references = int_field "References" references in
    let* dimensions = int_field "Dimensions" dimensions in
    let* element_size = int_field "Element_size" element_size in
    let* tot_size = int_field "Tot_size" tot_size in
    let* size_bytes = int_field "Size_bytes" size_bytes in
    let* acc_density = int_field "Acc_density" acc_density in
    let* line = int_field "Line" line in
    (* an unreadable Props token means the region columns leaned on
       assertions this reader does not understand: degrade them to unknown
       rather than repeat bounds we cannot justify *)
    let lb, ub, stride, props =
      if valid_props props then (lb, ub, stride, props)
      else ("*", "*", "*", "-")
    in
    Ok
      {
        scope; array; file; mode; references; dimensions; lb; ub; stride;
        element_size; data_type; dim_size; tot_size; size_bytes; mem_loc;
        acc_density; line; props;
      }
  | fields ->
    Error
      (Printf.sprintf "expected %d fields, got %d" (List.length header)
         (List.length fields))

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "%s %s %s %s refs=%d dims=%d [%s:%s:%s] %s %d bytes @%s d=%d"
    t.scope t.array t.file t.mode t.references t.dimensions t.lb t.ub t.stride
    t.data_type t.size_bytes t.mem_loc t.acc_density
