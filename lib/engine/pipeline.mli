(** The full compiler-side pipeline (front ends, WOPT, analysis, LNO,
    output files) behind one configuration record.

    [bin/uhc] is a thin command-line wrapper over this module; programs
    embedding the tool call [make]/[exec] directly instead of threading a
    dozen positional flags around.  Analysis runs on {!Engine.run}, so
    [jobs]/[cache_dir]/[stats] select parallelism, the persistent
    content-addressed cache and per-phase statistics for every analysis the
    driver performs (including the [--fuse] re-analysis). *)

type config = {
  paths : string list;  (** source files, or a single [.B] WHIRL file *)
  corpus : string option;  (** built-in input: lu, matrix, fig1, stride *)
  out_dir : string option;  (** write [.rgn]/[.dgn]/[.cfg] project files *)
  project : string;  (** project (file base) name *)
  dump_whirl : bool;
  dump_src : bool;
  dump_callgraph : bool;
  dump_summaries : bool;
  loop_summaries : bool;
  execute : bool;  (** interpret the program after analysis *)
  wopt : bool;  (** constant propagation + DCE before analysis *)
  fuse : bool;  (** LNO fusion, then re-analyze *)
  autopar : bool;
  ipl_dir : string option;  (** per-unit [.ipl] summary files *)
  emit_whirl : string option;  (** serialize the WHIRL module *)
  jobs : int;  (** engine domains; 0 = all cores, 1 = serial *)
  workers : int;
      (** shard worker processes for the summarize phase
          ([uhc --workers]); 0 (default) = in-process only.  Outputs are
          byte-identical at every setting ({!Engine_shard}); the run
          ledger records the topology (workers/tasks/steals/busy wall)
          under a [topology] member *)
  cache_dir : string option;  (** persistent engine cache directory *)
  stats : bool;  (** print per-phase engine statistics *)
  stats_det : bool;
      (** print the scheduling-independent statistics subset
          ({!Engine.Stats.pp_deterministic}) — diffable across [jobs] *)
  trace : string option;
      (** record a hierarchical span trace of the whole invocation and
          write it to this path as Chrome [trace_event] JSON (load in
          Perfetto / [chrome://tracing], or render with [dragon profile]) *)
  metrics : string option;
      (** write the metrics registry (counters + latency histograms) to
          this path as JSON; also enables timed-histogram observation *)
  log_level : Obs.Log.level;
      (** structured [key=value] logging on stderr; default [Quiet] *)
  keep_going : bool;
      (** fault tolerance: unreadable/unparsable input files are skipped
          (with a diagnostic) and a procedure whose analysis fails is
          isolated to a conservative opaque summary instead of aborting
          the run ([uhc --keep-going]) *)
  fault_specs : string list;
      (** deterministic fault injection, [SITE:RATE:SEED[:ONLY]] per entry
          ({!Fault.parse_specs}); test/bench only — a malformed spec makes
          {!exec} return 2 without running anything *)
  diagnostics : string option;
      (** write every recovery diagnostic of the run to this path as JSON
          ([{"diagnostics":[...]}], sorted; validated by
          [bench check-json]) *)
  solver_budget : int option;
      (** per-query step budget for {!Linear.System.feasible}; over-budget
          queries degrade to the interval-box answer
          ({!Linear.System.set_step_budget}) *)
  join_path : [ `Fast | `Reference ];
      (** region-join implementation: [`Fast] (default) uses the
          hash-consed short-circuits, bucketed summary construction and
          the global implies memo; [`Reference] restores the pre-interning
          path ({!Regions.Region.set_fast_join},
          {!Linear.System.set_implies_memo_enabled}).  Outputs are
          byte-identical — the knob exists for differential tests and the
          [bench regions] before/after comparison ([uhc --join-path]) *)
  solver_core : [ `Learned | `Packed | `Reference ];
      (** feasibility/implication solver core
          ({!Linear.System.set_solver_core}): [`Learned] (default) adds
          persistent per-system contexts — learned Farkas cuts, bound
          witnesses, activity-ordered elimination and per-domain L1
          implies tables — on top of the packed integer solver; [`Packed]
          is the packed solver alone; [`Reference] the exact rational
          eliminator.  Outputs are byte-identical across all three
          ([uhc --solver-core], compared in verify.sh) *)
  analyses : string list;
      (** client analyses to run over the finished interprocedural result,
          in order ([uhc --analyses bounds,permissions,regions]); names
          from {!Analyses.Registry.names}.  Each prints its report table
          and contributes to {!result.r_reports} / the [report] file *)
  report : string option;
      (** write the analysis reports to this path as schema-versioned JSON
          ({!Analyses.Report.json_of_reports}); byte-identical at any
          [jobs] setting *)
  ledger : bool option;
      (** run-ledger control ([uhc --ledger]/[--no-ledger]): [None]
          (default) enables the ledger exactly when [cache_dir] is set;
          [Some true] forces it on (ignored with a warning when there is
          no cache directory to write into); [Some false] disables it.
          When active, every run appends one schema-versioned JSONL record
          to [<cache_dir>/ledger/] — config/corpus digests, wall and phase
          timings, the metrics snapshot, per-phase cache hit/miss counts,
          solver counters, analysis verdict tallies, and per-PU content
          keys — consumed by [dragon history]/[regress]/[explain].  The
          [trace]/[metrics] output paths are then suffixed with the run id
          ([trace.json] -> [trace-<run_id>.json],
          {!Obs.Ledger.suffixed_path}) so concurrent runs sharing a
          directory never collide.  Analysis outputs are byte-identical
          with the ledger on or off. *)
}

(** What a pipeline invocation produced, beyond its console output. *)
type result = {
  r_code : int;
      (** process exit code (0 ok, 1 failure, 2 on a malformed
          [fault_specs] entry; the empty-input [exit 2] still exits) *)
  r_outputs : string list;
      (** files written, in write order: project [.rgn]/[.dgn]/[.cfg],
          [.ipl] units, emitted WHIRL, report JSON, diagnostics JSON *)
  r_stats : Engine.Stats.t option;
      (** statistics of the last engine run ([None] when analysis never
          ran, e.g. parse failure) *)
  r_diags : Fault.Diag.t list;
      (** recovery diagnostics plus client-analysis findings, in a stable
          chronological order (the [diagnostics] file, by contrast, is
          sorted with {!Fault.Diag.compare}) *)
  r_reports : Analyses.Report.t list;
      (** one report per entry of [analyses], in selection order *)
}

val make :
  ?paths:string list ->
  ?corpus:string ->
  ?out_dir:string ->
  ?project:string ->
  ?dump_whirl:bool ->
  ?dump_src:bool ->
  ?dump_callgraph:bool ->
  ?dump_summaries:bool ->
  ?loop_summaries:bool ->
  ?execute:bool ->
  ?wopt:bool ->
  ?fuse:bool ->
  ?autopar:bool ->
  ?ipl_dir:string ->
  ?emit_whirl:string ->
  ?jobs:int ->
  ?workers:int ->
  ?cache_dir:string ->
  ?stats:bool ->
  ?stats_det:bool ->
  ?trace:string ->
  ?metrics:string ->
  ?log_level:Obs.Log.level ->
  ?keep_going:bool ->
  ?fault_specs:string list ->
  ?diagnostics:string ->
  ?solver_budget:int ->
  ?join_path:[ `Fast | `Reference ] ->
  ?solver_core:[ `Learned | `Packed | `Reference ] ->
  ?analyses:string list ->
  ?report:string ->
  ?ledger:bool ->
  unit ->
  config
(** Everything defaults to off/empty; [project] defaults to ["project"],
    [jobs] to [1]. *)

val run : config -> result
(** Runs the pipeline, printing to stdout/stderr like the [uhc] tool, and
    returns everything it produced as one {!result} record.  Fault
    injection, the solver budget and the solver memo cache are reset on
    exit — including on exceptions — so subsequent in-process runs are
    unaffected. *)

val exec : config -> int
  [@@deprecated "use Pipeline.run; exec cfg = (run cfg).r_code"]
(** @deprecated Thin wrapper kept for one release: [(run cfg).r_code]. *)

val exec_full : config -> int * Fault.Diag.t list
  [@@deprecated
    "use Pipeline.run; exec_full cfg = ((run cfg).r_code, (run cfg).r_diags)"]
(** @deprecated Thin wrapper kept for one release:
    [((run cfg).r_code, (run cfg).r_diags)]. *)
