(** The full compiler-side pipeline (front ends, WOPT, analysis, LNO,
    output files) behind one configuration record.

    [bin/uhc] is a thin command-line wrapper over this module; programs
    embedding the tool call [make]/[exec] directly instead of threading a
    dozen positional flags around.  Analysis runs on {!Engine.run}, so
    [jobs]/[cache_dir]/[stats] select parallelism, the persistent
    content-addressed cache and per-phase statistics for every analysis the
    driver performs (including the [--fuse] re-analysis). *)

type config = {
  paths : string list;  (** source files, or a single [.B] WHIRL file *)
  corpus : string option;  (** built-in input: lu, matrix, fig1, stride *)
  out_dir : string option;  (** write [.rgn]/[.dgn]/[.cfg] project files *)
  project : string;  (** project (file base) name *)
  dump_whirl : bool;
  dump_src : bool;
  dump_callgraph : bool;
  dump_summaries : bool;
  loop_summaries : bool;
  execute : bool;  (** interpret the program after analysis *)
  wopt : bool;  (** constant propagation + DCE before analysis *)
  fuse : bool;  (** LNO fusion, then re-analyze *)
  autopar : bool;
  ipl_dir : string option;  (** per-unit [.ipl] summary files *)
  emit_whirl : string option;  (** serialize the WHIRL module *)
  jobs : int;  (** engine domains; 0 = all cores, 1 = serial *)
  cache_dir : string option;  (** persistent engine cache directory *)
  stats : bool;  (** print per-phase engine statistics *)
  stats_det : bool;
      (** print the scheduling-independent statistics subset
          ({!Engine.Stats.pp_deterministic}) — diffable across [jobs] *)
  trace : string option;
      (** record a hierarchical span trace of the whole invocation and
          write it to this path as Chrome [trace_event] JSON (load in
          Perfetto / [chrome://tracing], or render with [dragon profile]) *)
  metrics : string option;
      (** write the metrics registry (counters + latency histograms) to
          this path as JSON; also enables timed-histogram observation *)
  log_level : Obs.Log.level;
      (** structured [key=value] logging on stderr; default [Quiet] *)
}

val make :
  ?paths:string list ->
  ?corpus:string ->
  ?out_dir:string ->
  ?project:string ->
  ?dump_whirl:bool ->
  ?dump_src:bool ->
  ?dump_callgraph:bool ->
  ?dump_summaries:bool ->
  ?loop_summaries:bool ->
  ?execute:bool ->
  ?wopt:bool ->
  ?fuse:bool ->
  ?autopar:bool ->
  ?ipl_dir:string ->
  ?emit_whirl:string ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?stats:bool ->
  ?stats_det:bool ->
  ?trace:string ->
  ?metrics:string ->
  ?log_level:Obs.Log.level ->
  unit ->
  config
(** Everything defaults to off/empty; [project] defaults to ["project"],
    [jobs] to [1]. *)

val exec : config -> int
(** Runs the pipeline, printing to stdout/stderr like the [uhc] tool;
    returns the process exit code (0 ok, 1 failure; exits with 2 on empty
    input, matching the CLI contract). *)
