(** Wire protocol between the shard coordinator and its worker processes
    (see {!Engine_shard}).

    Hand-framed binary over pipes — one tag byte, an 8-byte big-endian
    payload length, then the payload.  Modules, collect inputs and
    summaries are not given a second serialization: they cross the wire
    as the images the cache layer already defines ([Whirl_io.write] text
    for modules, [Engine_store.encode_collect]/[encode_summary] entry
    images for payloads).  Entry images are Marshal blobs, so they are
    only exchanged after the {!Hello} handshake has matched the two
    processes' {!Engine_store.schema} fingerprints. *)

type member = {
  mb_name : string;
  mb_poisoned : bool;
      (** collection already degraded this PU: the worker installs the
          opaque summary at this member's position instead of analyzing,
          preserving the serial path's member-by-member visibility *)
  mb_collect : string;
      (** [Engine_store.encode_collect] image; [""] when poisoned *)
  mb_key : string;
      (** the member's Merkle summary key ([Digest.t] bytes), letting the
          worker publish its computed summary straight into the shared
          tier; [""] when unknown *)
}

type task = {
  t_id : int;
  t_members : member list;
      (** the SCC's not-yet-summarized PUs, in call-graph order *)
  t_callees : (string * string) list;
      (** name -> [Engine_store.encode_summary] image for every already
          known summary the members may look up (lower levels and
          cache-hit co-members) *)
}

type outcome =
  | O_summary of string  (** computed; an [encode_summary] image *)
  | O_opaque  (** pre-poisoned member: opaque summary installed *)
  | O_poisoned of string * string * string
      (** (stage, diag site, error) — isolated under keep-going *)
  | O_failed of string * (string * string) option
      (** (error, injected (site, key)) — fatal without keep-going *)

type result = {
  r_id : int;
  r_busy_ns : int;  (** monotonic wall spent on the task worker-side *)
  r_degraded : int;  (** [solver.degraded] counter delta over the task *)
  r_solver : string;  (** Marshal image of the [Linear.Solver_stats.t] delta *)
  r_outcomes : (string * outcome) list;
}

type init = {
  in_module : string;  (** [Whirl_io.write] image of the module *)
  in_keep_going : bool;
  in_fault_specs : string list;  (** [Fault.spec_to_string] forms *)
  in_solver_budget : int option;
  in_solver_core : string;  (** ["learned" | "packed" | "reference"] *)
  in_fast_join : bool;
  in_implies_memo : bool;
  in_cache_dir : string option;  (** shared tier to publish into *)
}

type msg =
  | Hello of int * string  (** worker's (pid, schema fingerprint) *)
  | Init of init
  | Task of task
  | Result of result
  | Shutdown

val write_magic : Unix.file_descr -> unit
(** Written by the worker before its {!Hello}: a fixed sync marker, so
    the coordinator can discard anything a linked library printed to the
    worker's stdout at module-initialization time. *)

val read_magic : Unix.file_descr -> bool
(** Discard stream bytes until the sync marker has been read in full;
    [false] on end-of-stream or if no marker appears within 64 KiB (the
    spawned process is then not a protocol speaker at all). *)

val write_msg : Unix.file_descr -> msg -> unit
(** Frame and write the whole message (short writes retried). *)

val read_msg : Unix.file_descr -> msg option
(** Blocking read of one message; [None] on end-of-stream at a message
    boundary.  @raise Failure on a truncated or malformed stream. *)
