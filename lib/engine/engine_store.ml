(* Content-addressed store for per-PU analysis artifacts.

   Keys are MD5 digests computed by the engine from serialized WHIRL (see
   Engine): identical content — identical key, whatever process computed it.
   Values are Marshal images of collection results / summaries, plus enough
   metadata to re-intern their symbolic variables against the *current*
   process's registry:

   - [en_counter] is the variable-id counter snapshot at save time; loading
     advances the live counter past it so freshly minted ids can never
     collide with deserialized ones;
   - [en_syms] records, for every [Sym] variable in the value, which
     (procedure, st) it stood for.  On load those are looked up through
     [Ipa.Collect.sym_var], so a region loaded from disk constrains the very
     same variables a fresh analysis of the module would.

   Induction variables need no such treatment: they never escape their PU,
   so keeping their (counter-bumped) ids is enough.

   On-disk entries live under [dir/<schema>/], where <schema> is derived
   from the running executable — Marshal images are only safe to read back
   into the binary layout that produced them, so a rebuilt tool simply
   starts a fresh cache namespace. *)

open Regions

type collect_payload = {
  cp_accesses : Ipa.Collect.access list;
  cp_sites : Ipa.Collect.site list;
}

type summary_payload = {
  sp_summary : Ipa.Summary.t;
  sp_propagated : Ipa.Collect.access list;
}

type 'a entry = {
  en_counter : int;
  en_syms : (int * string * int * string) list;
      (* saved var id, owning procedure ("" = global), st code, name *)
  en_value : 'a;
}

type t = {
  dir : string option;
  mem : (string, string) Hashtbl.t; (* full key -> marshaled entry *)
  mutex : Mutex.t;
  mutable diags : Fault.Diag.t list; (* degradation events, newest first *)
}

let schema_token =
  lazy
    (try String.sub (Digest.to_hex (Digest.file Sys.executable_name)) 0 12
     with Sys_error _ -> "noexe")

let create ?dir () =
  (match dir with
  | Some d ->
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    let sub = Filename.concat d (Lazy.force schema_token) in
    if not (Sys.file_exists sub) then Sys.mkdir sub 0o755
  | None -> ());
  { dir; mem = Hashtbl.create 64; mutex = Mutex.create (); diags = [] }

let in_memory () = create ()

let path_of t ns key =
  Option.map
    (fun d ->
      Filename.concat
        (Filename.concat d (Lazy.force schema_token))
        (Printf.sprintf "%s-%s.bin" ns (Digest.to_hex key)))
    t.dir

let full_key ns key = ns ^ Digest.to_hex key

(* ------------------------------------------------------------------ *)
(* Variable bookkeeping *)

let add_expr e acc =
  List.fold_left (fun a v -> Linear.Var.Set.add v a) acc (Linear.Expr.vars e)

let add_affine r acc =
  match r with
  | Affine.Affine e -> add_expr e acc
  | Affine.Sparse { Affine.sp_inner = Some e; _ } -> add_expr e acc
  | Affine.Sparse _ | Affine.Messy -> acc

let add_region (r : Region.t) acc =
  let acc = Linear.Var.Set.union (Linear.System.vars r.Region.sys) acc in
  List.fold_left
    (fun a (d : Region.dim) ->
      let a =
        match d.Region.lb with Region.Bsym e -> add_expr e a | _ -> a
      in
      match d.Region.ub with Region.Bsym e -> add_expr e a | _ -> a)
    acc (Region.dim_list r)

let add_access (a : Ipa.Collect.access) acc =
  add_region a.Ipa.Collect.ac_region acc

let add_loop ((_, lc) : int * Region.loop_ctx) acc =
  Linear.Var.Set.add lc.Region.lc_var
    (add_affine lc.Region.lc_lo (add_affine lc.Region.lc_hi acc))

let add_site (s : Ipa.Collect.site) acc =
  let acc =
    List.fold_left
      (fun a arg ->
        match arg with
        | Ipa.Collect.Arg_array_elem (_, coords) ->
          List.fold_left (fun a c -> add_affine c a) a coords
        | Ipa.Collect.Arg_value r -> add_affine r a
        | Ipa.Collect.Arg_array_whole _ | Ipa.Collect.Arg_scalar_ref _ -> a)
      acc s.Ipa.Collect.s_args
  in
  List.fold_left (fun a l -> add_loop l a) acc s.Ipa.Collect.s_loops

let add_summary (s : Ipa.Summary.t) acc =
  List.fold_left
    (fun a (e : Ipa.Summary.entry) -> add_region e.Ipa.Summary.e_region a)
    acc s

let syms_of vars =
  Linear.Var.Set.fold
    (fun v acc ->
      if Linear.Var.is_sym v then
        match Ipa.Collect.sym_info v with
        | Some (owner, st) ->
          (Linear.Var.id v, owner, st, Linear.Var.name v) :: acc
        | None -> acc
      else acc)
    vars []

(* ------------------------------------------------------------------ *)
(* Re-interning *)

let remap_fn m syms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (id, owner, st, name) ->
      Hashtbl.replace tbl id (Ipa.Collect.sym_var ~m ~pu:owner ~st ~name))
    syms;
  fun v ->
    match Hashtbl.find_opt tbl (Linear.Var.id v) with
    | Some v' -> v'
    | None -> v

let map_affine f = function
  | Affine.Affine e -> Affine.Affine (Linear.Expr.map_vars f e)
  | Affine.Sparse s ->
    Affine.Sparse
      {
        s with
        Affine.sp_inner = Option.map (Linear.Expr.map_vars f) s.Affine.sp_inner;
      }
  | Affine.Messy -> Affine.Messy

let map_loop f ((st, lc) : int * Region.loop_ctx) =
  ( st,
    {
      Region.lc_var = f lc.Region.lc_var;
      lc_lo = map_affine f lc.Region.lc_lo;
      lc_hi = map_affine f lc.Region.lc_hi;
      lc_step = lc.Region.lc_step;
    } )

let map_access f (a : Ipa.Collect.access) =
  { a with Ipa.Collect.ac_region = Region.map_vars f a.Ipa.Collect.ac_region }

let map_site f (s : Ipa.Collect.site) =
  {
    s with
    Ipa.Collect.s_args =
      List.map
        (function
          | Ipa.Collect.Arg_array_elem (st, coords) ->
            Ipa.Collect.Arg_array_elem (st, List.map (map_affine f) coords)
          | Ipa.Collect.Arg_value r -> Ipa.Collect.Arg_value (map_affine f r)
          | (Ipa.Collect.Arg_array_whole _ | Ipa.Collect.Arg_scalar_ref _) as a
            -> a)
        s.Ipa.Collect.s_args;
    s_loops = List.map (map_loop f) s.Ipa.Collect.s_loops;
  }

let map_summary f (s : Ipa.Summary.t) : Ipa.Summary.t =
  List.map
    (fun (e : Ipa.Summary.entry) ->
      { e with Ipa.Summary.e_region = Region.map_vars f e.Ipa.Summary.e_region })
    s

(* ------------------------------------------------------------------ *)
(* Raw byte-level store *)

let mem_find t k =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.mem k in
  Mutex.unlock t.mutex;
  r

let mem_add t k v =
  Mutex.lock t.mutex;
  Hashtbl.replace t.mem k v;
  Mutex.unlock t.mutex

let mem_remove t k =
  Mutex.lock t.mutex;
  Hashtbl.remove t.mem k;
  Mutex.unlock t.mutex

(* store-layer observability: hit/miss counters per tier plus I/O latency
   histograms (the disk timings are only observed when metrics are on) *)
let c_mem_hits = Obs.Metrics.counter "store.mem.hits"
let c_disk_hits = Obs.Metrics.counter "store.disk.hits"
let c_misses = Obs.Metrics.counter "store.misses"
let c_disk_reads = Obs.Metrics.counter "store.disk.read_bytes"
let c_disk_writes = Obs.Metrics.counter "store.disk.write_bytes"
let c_write_errors = Obs.Metrics.counter "store.write_errors"
let c_read_errors = Obs.Metrics.counter "store.read_errors"
let c_retries = Obs.Metrics.counter "store.retries"
let c_quarantined = Obs.Metrics.counter "store.quarantined"
let c_publishes = Obs.Metrics.counter "store.publishes"
let c_publish_skips = Obs.Metrics.counter "store.publish_skips"
let h_find = Obs.Metrics.histogram "store.find.ns"
let h_add = Obs.Metrics.histogram "store.add.ns"

let record_diag t d =
  Mutex.lock t.mutex;
  t.diags <- d :: t.diags;
  Mutex.unlock t.mutex

let drain_diags t =
  Mutex.lock t.mutex;
  let ds = t.diags in
  t.diags <- [];
  Mutex.unlock t.mutex;
  List.rev ds

(* ------------------------------------------------------------------ *)
(* Checksummed on-disk entries with bounded retry.

   An entry is [magic | md5(payload) | payload]: truncation and bit-rot
   are caught by the digest check, not by Marshal blowing up mid-decode.
   A corrupt file is quarantined (renamed aside, so the evidence survives
   and the slot reads as a miss from then on) and the caller transparently
   recomputes.  Transient I/O errors — injected or real — are retried a
   few times with a short backoff; read exhaustion degrades to a cache
   miss, write exhaustion to an unpersisted (memory-only) entry.  Either
   way the analysis proceeds. *)

let entry_magic = "UHCS1\n"
let header_len = String.length entry_magic + 16
let max_attempts = 3

let backoff_s ~key attempt =
  (* exponential base with deterministic seeded jitter: splitmix64 over
     (pid, entry, attempt) spreads the sleep across [0.5x, 1.5x) so N
     workers hammering one shared tier don't retry in lockstep, while
     staying reproducible for any given process/key/attempt triple *)
  let base = 0.0005 *. float_of_int (1 lsl attempt) in
  let h = Hashtbl.hash (Unix.getpid (), key, attempt) in
  let bits =
    Int64.shift_right_logical (Numeric.Splitmix.mix64 (Int64.of_int h)) 11
  in
  base *. (0.5 +. (Int64.to_float bits /. 9007199254740992.0))

let seal payload = entry_magic ^ Digest.string payload ^ payload

let unseal blob =
  if
    String.length blob >= header_len
    && String.sub blob 0 (String.length entry_magic) = entry_magic
  then begin
    let payload = String.sub blob header_len (String.length blob - header_len) in
    let stored = String.sub blob (String.length entry_magic) 16 in
    if Digest.string payload = stored then Some payload else None
  end
  else None

let quarantine t ~path ~basename reason =
  Obs.Metrics.Counter.incr c_quarantined;
  (try Sys.rename path (path ^ ".quarantined")
   with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  Obs.Log.info "store.quarantined" [ ("entry", basename); ("reason", reason) ];
  record_diag t
    (Fault.Diag.make ~site:"store.marshal" ~pu:"*" ~action:"quarantined"
       (Printf.sprintf "cache entry %s: %s; recomputing" basename reason))

let read_file_once path =
  (* distinguishes "unreadable" (retryable) from "absent" (a plain miss) *)
  Fault.inject Fault.Io_read ~key:(Filename.basename path);
  if not (Sys.file_exists path) then `Absent
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    `Read s
  end

let read_file t path =
  let basename = Filename.basename path in
  let rec attempt k =
    match read_file_once path with
    | `Absent -> None
    | `Read s -> Some s
    | exception (Sys_error _ | End_of_file | Fault.Injected _) ->
      if k + 1 < max_attempts then begin
        Obs.Metrics.Counter.incr c_retries;
        Unix.sleepf (backoff_s ~key:basename k);
        attempt (k + 1)
      end
      else begin
        Obs.Metrics.Counter.incr c_read_errors;
        Obs.Log.info "store.read_failed"
          [ ("entry", basename); ("attempts", string_of_int max_attempts) ];
        record_diag t
          (Fault.Diag.make ~site:"store.read" ~pu:"*" ~action:"recomputed"
             (Printf.sprintf "cache read of %s failed after %d attempts"
                basename max_attempts));
        None
      end
  in
  attempt 0

let write_file_once path contents =
  Fault.inject Fault.Io_write ~key:(Filename.basename path);
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let write_file t path contents =
  let basename = Filename.basename path in
  let rec attempt k =
    match write_file_once path contents with
    | () -> true
    | exception (Sys_error _ | Fault.Injected _) ->
      if k + 1 < max_attempts then begin
        Obs.Metrics.Counter.incr c_retries;
        Unix.sleepf (backoff_s ~key:basename k);
        attempt (k + 1)
      end
      else begin
        Obs.Metrics.Counter.incr c_write_errors;
        Obs.Log.info "store.write_failed"
          [ ("entry", basename); ("attempts", string_of_int max_attempts) ];
        record_diag t
          (Fault.Diag.make ~site:"store.write" ~pu:"*" ~action:"unpersisted"
             (Printf.sprintf
                "cache write of %s failed after %d attempts; entry kept in \
                 memory only"
                basename max_attempts));
        false
      end
  in
  attempt 0

let observed h f =
  if not (Obs.Metrics.enabled ()) then f ()
  else begin
    let t0 = Obs.Trace.now_ns () in
    let r = f () in
    Obs.Hist.observe h (Obs.Trace.now_ns () - t0);
    r
  end

(* [find_raw] returns verified Marshal payloads: the in-memory tier holds
   payloads that already passed the digest check, and a disk read whose
   seal does not verify quarantines the file and reads as a miss. *)
let find_raw t ns key =
  observed h_find @@ fun () ->
  let k = full_key ns key in
  match mem_find t k with
  | Some bytes ->
    Obs.Metrics.Counter.incr c_mem_hits;
    Some (k, bytes)
  | None -> (
    match path_of t ns key with
    | None ->
      Obs.Metrics.Counter.incr c_misses;
      None
    | Some path -> (
      match read_file t path with
      | None ->
        Obs.Metrics.Counter.incr c_misses;
        None
      | Some blob -> (
        Obs.Metrics.Counter.add c_disk_reads (String.length blob);
        match unseal blob with
        | None ->
          quarantine t ~path ~basename:(Filename.basename path)
            "checksum mismatch (corrupt or truncated)";
          Obs.Metrics.Counter.incr c_misses;
          None
        | Some payload ->
          Obs.Metrics.Counter.incr c_disk_hits;
          mem_add t k payload;
          Some (k, payload))))

let add_raw t ns key bytes =
  observed h_add @@ fun () ->
  mem_add t (full_key ns key) bytes;
  match path_of t ns key with
  | None -> ()
  | Some path ->
    if Sys.file_exists path then
      (* single-writer discipline on the shared tier: keys are content
         addresses, so an existing file already holds these bytes —
         whoever published first wins and everyone else skips the write *)
      Obs.Metrics.Counter.incr c_publish_skips
    else begin
      let blob = seal bytes in
      if write_file t path blob then begin
        Obs.Metrics.Counter.incr c_publishes;
        Obs.Metrics.Counter.add c_disk_writes (String.length blob)
      end
    end

(* Decode a verified payload; a decode failure (an injected marshal fault,
   or corruption the checksum cannot see such as a stale schema) evicts the
   memory entry, quarantines the disk file, and reads as a miss. *)
let decode_entry (type a) t ns key (k : string) (bytes : string) :
    a entry option =
  match
    Fault.inject Fault.Marshal ~key:(full_key ns key);
    (Marshal.from_string bytes 0 : a entry)
  with
  | entry -> Some entry
  | exception (Failure _ | Invalid_argument _ | Fault.Injected _) ->
    mem_remove t k;
    (match path_of t ns key with
    | Some path when Sys.file_exists path ->
      quarantine t ~path ~basename:(Filename.basename path) "undecodable entry"
    | _ ->
      Obs.Metrics.Counter.incr c_quarantined;
      record_diag t
        (Fault.Diag.make ~site:"store.marshal" ~pu:"*" ~action:"recomputed"
           (Printf.sprintf "cache entry %s undecodable; recomputing"
              (full_key ns key))));
    None

(* ------------------------------------------------------------------ *)
(* Typed views.

   The encode/decode pairs are standalone pure codecs over entry images —
   the same bytes the store persists — so the shard wire protocol can ship
   summaries between processes in exactly the cache format.  The decode
   side of [find_*] additionally routes through [decode_entry] for fault
   injection and quarantine; the standalone decoders assume an already
   verified image (a wire payload, not an untrusted file). *)

let collect_of_entry ~m (entry : collect_payload entry) : collect_payload =
  Linear.Var.advance_past entry.en_counter;
  let f = remap_fn m entry.en_syms in
  let p = entry.en_value in
  {
    cp_accesses = List.map (map_access f) p.cp_accesses;
    cp_sites = List.map (map_site f) p.cp_sites;
  }

let summary_of_entry ~m (entry : summary_payload entry) : summary_payload =
  Linear.Var.advance_past entry.en_counter;
  let f = remap_fn m entry.en_syms in
  let p = entry.en_value in
  {
    sp_summary = map_summary f p.sp_summary;
    sp_propagated = List.map (map_access f) p.sp_propagated;
  }

let encode_collect (p : collect_payload) =
  let vars =
    List.fold_left
      (fun a s -> add_site s a)
      (List.fold_left (fun a x -> add_access x a) Linear.Var.Set.empty
         p.cp_accesses)
      p.cp_sites
  in
  Marshal.to_string
    { en_counter = Linear.Var.current (); en_syms = syms_of vars; en_value = p }
    []

let decode_collect ~m bytes : collect_payload =
  collect_of_entry ~m (Marshal.from_string bytes 0 : collect_payload entry)

let encode_summary (p : summary_payload) =
  let vars =
    add_summary p.sp_summary
      (List.fold_left
         (fun a x -> add_access x a)
         Linear.Var.Set.empty p.sp_propagated)
  in
  Marshal.to_string
    { en_counter = Linear.Var.current (); en_syms = syms_of vars; en_value = p }
    []

let decode_summary ~m bytes : summary_payload =
  summary_of_entry ~m (Marshal.from_string bytes 0 : summary_payload entry)

let add_collect t ~key (p : collect_payload) =
  add_raw t "c" key (encode_collect p)

let find_collect t ~m ~key : collect_payload option =
  match find_raw t "c" key with
  | None -> None
  | Some (k, bytes) -> (
    match (decode_entry t "c" key k bytes : collect_payload entry option) with
    | None -> None
    | Some entry -> Some (collect_of_entry ~m entry))

let add_summary t ~key (p : summary_payload) =
  add_raw t "s" key (encode_summary p)

let find_summary t ~m ~key : summary_payload option =
  match find_raw t "s" key with
  | None -> None
  | Some (k, bytes) -> (
    match (decode_entry t "s" key k bytes : summary_payload entry option) with
    | None -> None
    | Some entry -> Some (summary_of_entry ~m entry))

let publish_summary t ~key image = add_raw t "s" key image
let dir t = t.dir
let schema () = Lazy.force schema_token

let entry_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.mem in
  Mutex.unlock t.mutex;
  n
