(** A persistent work-queue domain pool for the per-PU stages of the
    engine.

    Worker domains are spawned once (on first parallel use) and parked
    between batches, so issuing a batch costs a broadcast, not a
    [Domain.spawn] — the engine issues several batches per run.

    [run ~jobs tasks] executes every task exactly once, with at most [jobs]
    domains (the calling one included) working on the batch, and returns
    after all of them finished; the completion handshake is a full barrier,
    so plain writes made by tasks are safely visible to the caller.  With
    [jobs <= 1] — or a single task — everything runs on the calling domain,
    which is the serial reference path.  The first task exception is
    re-raised in the caller after the batch drains.

    When an {!Obs.Sink} is installed as the ambient attribution sink,
    worker domains report their [Gc.allocated_bytes] delta and busy time
    for each batch they participate in — the engine merges those into its
    per-phase statistics after the barrier. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int -> int
(** Maps the CLI convention [0 = auto] to {!recommended}. *)

val run : jobs:int -> (unit -> unit) array -> unit
