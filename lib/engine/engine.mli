(** The parallel, incremental analysis engine.

    [run] produces the same {!Ipa.Analyze.result} as the (deprecated)
    serial [Ipa.Analyze.analyze] — byte-identical [.rgn]/[.dgn]/[.cfg]
    contents — while fanning per-PU collection and CFG construction across
    an OCaml domain pool and reusing content-addressed cached results:

    - collection results are keyed by a digest of the global symbol table
      plus the PU's serialized WHIRL body;
    - summaries are keyed by a Merkle digest that also folds in every
      (transitive) callee's key, so editing one PU re-summarizes exactly
      that PU and its transitive callers.

    With an on-disk store ({!Engine_store.create} [~dir]), the cache
    survives across tool invocations. *)

type config = {
  jobs : int;
  workers : int;
  store : Engine_store.t option;
  keep_going : bool;
}

val config :
  ?jobs:int ->
  ?workers:int ->
  ?store:Engine_store.t ->
  ?keep_going:bool ->
  unit ->
  config
(** [jobs] defaults to [1] (serial); [0] means
    [Domain.recommended_domain_count ()].  Without [store], nothing is
    cached.

    [workers] (default [0] = in-process only) spawns that many worker
    processes and shards the summarize phase's SCC levels across them via
    {!Engine_shard}, publishing computed summaries into the store's
    shared directory as they land.  Outputs are byte-identical at every
    [workers] setting; every failure mode falls back to in-process
    analysis.

    [keep_going] (default [false]) turns on per-PU error isolation: a PU
    whose collection or summarization raises — an injected {!Fault} or a
    genuine bug — degrades to conservative stand-ins (empty local
    collection, worst-case {!Ipa.Summary.opaque} summary, skeleton CFG)
    with a structured diagnostic in [e_diags], instead of aborting the
    run.  Degraded results are never persisted to the store.  Store-level
    faults (corrupt entries, I/O errors) are tolerated regardless of this
    flag — they self-heal inside {!Engine_store}. *)

module Stats : sig
  type phase = {
    ph_name : string;
    ph_wall : float;  (** seconds *)
    ph_alloc : float;
        (** bytes allocated during the phase, coordinating domain plus
            every worker domain that participated in the phase's pool
            batches (workers report their [Gc.allocated_bytes] deltas
            through the ambient {!Obs.Sink}) *)
  }

  type t = {
    s_jobs : int;
    s_pus : int;
    s_collect_hits : int;
    s_collect_misses : int;
    s_summary_hits : int;
    s_summary_misses : int;
    s_phases : phase list;  (** in execution order *)
    s_total_wall : float;
    s_solver : Linear.Solver_stats.t;
        (** solver-layer counter deltas attributed to this run (queries,
            memo hits, eliminations — see {!Linear.Solver_stats});
            includes counters absorbed from shard workers *)
    s_shard : Engine_shard.stats option;
        (** [Some] iff [workers > 0]: spawn/task/steal/busy telemetry.
            Scheduling-dependent, so excluded from {!pp_deterministic}. *)
  }

  val pp : Format.formatter -> t -> unit

  val pp_deterministic : Format.formatter -> t -> unit
  (** Like {!pp} but restricted to numbers that are reproducible at any
      [--jobs] setting: wall-clock and allocation columns (and the job
      count itself) are dropped, phase names and all cache/solver counters
      are kept.  Suitable for diffing in CI. *)
end

(** What the incrementality machinery knew about one PU this run — the
    per-PU section of the run ledger and the input to [dragon explain].
    [p_key1] addresses the local collection result (global symtab + PU
    body), [p_key2] the interprocedural summary (a Merkle digest folding
    [p_key1] with every transitive callee's key), so comparing two runs'
    entries tells you *why* a PU was re-analyzed: [p_key1] changed — its
    own body or the symbol table; only [p_key2] changed — some callee. *)
type pu_entry = {
  p_name : string;
  p_file : string;
  p_key1 : string;  (** hex digest of global symtab + PU body *)
  p_key2 : string;  (** hex Merkle summary digest ([""] if never keyed) *)
  p_collect_hit : bool;
  p_summary_hit : bool;
  p_callees : string list;  (** direct callees, call-graph order *)
}

type result = {
  e_result : Ipa.Analyze.result;
  e_stats : Stats.t;
  e_diags : Fault.Diag.t list;
      (** degradation diagnostics from this run: isolated PUs (in PU
          order) followed by store-level events; empty on a fault-free
          run *)
  e_pus : pu_entry list;  (** one entry per PU, module order *)
}

val run : config -> Whirl.Ir.module_ -> result
(** Also assigns the memory layout (Mem_Loc) if not yet done, like the
    serial path. *)

val analyze : ?jobs:int -> Whirl.Ir.module_ -> Ipa.Analyze.result
(** One uncached engine run, returning just the analysis result —
    the successor of the removed [Ipa.Analyze.analyze].  [jobs] defaults
    to [1]: the serial reference schedule. *)

val analyze_sources : ?jobs:int -> (string * string) list -> Ipa.Analyze.result
(** Front end + lowering + {!analyze} over [(filename, contents)] pairs —
    the successor of the removed [Ipa.Analyze.analyze_sources]. *)
