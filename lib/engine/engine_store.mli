(** Content-addressed store for per-PU analysis artifacts.

    Maps engine-computed digests (of serialized WHIRL content, see
    [Engine]) to collection results and interprocedural summaries.  Entries
    live in memory and, when the store was created with [~dir], also on
    disk — so repeated tool invocations over unchanged sources only
    re-analyze what changed.

    Loaded values are re-interned: symbolic variables inside cached regions
    are resolved through the current process's [Ipa.Collect.sym_var]
    registry, so a cache hit yields structures indistinguishable from a
    fresh analysis.  Lookups are safe to issue from several domains
    concurrently; additions are expected from the coordinating domain.

    The on-disk directory doubles as the {e shared tier} of the sharded
    execution mode: several processes may hold stores over one [~dir].
    Publication follows single-writer discipline — writes go to a
    process-private temp file promoted by atomic [rename], and a key whose
    file already exists is skipped ([store.publish_skips]) rather than
    rewritten, which is sound because keys are content addresses (same key
    = same bytes).  Readers therefore only ever observe absent or complete
    entries, never torn ones, and corrupt entries heal through the normal
    quarantine-then-recompute path. *)

type collect_payload = {
  cp_accesses : Ipa.Collect.access list;
  cp_sites : Ipa.Collect.site list;
}

type summary_payload = {
  sp_summary : Ipa.Summary.t;
  sp_propagated : Ipa.Collect.access list;
      (** accesses charged to callers via call sites ([ac_via] set) *)
}

type t

val create : ?dir:string -> unit -> t
(** With [~dir], entries are persisted under
    [dir/<schema>/{c,s}-<digest>.bin]; the schema component fingerprints the
    running executable, because Marshal images are only readable by the
    build that wrote them.  The directories are created as needed. *)

val in_memory : unit -> t
(** [create ()] — caching within one process only (e.g. across [--fuse]
    re-analysis). *)

val add_collect : t -> key:Digest.t -> collect_payload -> unit

val find_collect :
  t -> m:Whirl.Ir.module_ -> key:Digest.t -> collect_payload option
(** [None] on a genuine miss and on any unreadable/corrupt entry.

    The store self-heals: on-disk entries carry a checksum header, and an
    entry that fails the checksum or cannot be decoded is quarantined
    (renamed aside, counted in the [store.quarantined] metric, recorded as
    a {!Fault.Diag.t}) so the caller transparently recomputes it.
    Transient read/write failures are retried up to 3 times with a short
    backoff ([store.retries]); exhaustion degrades a read to a miss
    ([store.read_errors]) and a write to a memory-only entry
    ([store.write_errors]), never an exception. *)

val add_summary : t -> key:Digest.t -> summary_payload -> unit

val find_summary :
  t -> m:Whirl.Ir.module_ -> key:Digest.t -> summary_payload option

val encode_collect : collect_payload -> string
(** The entry image [add_collect] persists: a Marshal blob carrying the
    payload plus the variable-counter snapshot and symbol table needed to
    re-intern it in another process of the {e same binary}. *)

val decode_collect : m:Whirl.Ir.module_ -> string -> collect_payload
(** Re-intern an {!encode_collect} image against the current process.
    Assumes a verified image (e.g. one received over the shard wire
    protocol); unlike {!find_collect} it performs no fault injection or
    quarantine and raises [Failure] on a malformed blob. *)

val encode_summary : summary_payload -> string
val decode_summary : m:Whirl.Ir.module_ -> string -> summary_payload

val publish_summary : t -> key:Digest.t -> string -> unit
(** Publish a pre-encoded {!encode_summary} image under [key]: memory tier
    plus, when the store is disk-backed, an atomic-rename write to the
    shared tier unless the key is already published.  This is how shard
    workers make computed summaries visible to later levels without the
    coordinator re-encoding them. *)

val dir : t -> string option
(** The backing directory, if the store is disk-backed. *)

val schema : unit -> string
(** The running executable's schema fingerprint — the namespace component
    of on-disk paths.  Shard workers must agree on it with their
    coordinator before any Marshal image crosses the wire. *)

val entry_count : t -> int
(** Number of entries currently held in memory (loaded or added). *)

val drain_diags : t -> Fault.Diag.t list
(** Degradation events (quarantines, retry exhaustions) recorded since the
    last drain, oldest first.  {!Engine.run} drains them into its result. *)
