(** Content-addressed store for per-PU analysis artifacts.

    Maps engine-computed digests (of serialized WHIRL content, see
    [Engine]) to collection results and interprocedural summaries.  Entries
    live in memory and, when the store was created with [~dir], also on
    disk — so repeated tool invocations over unchanged sources only
    re-analyze what changed.

    Loaded values are re-interned: symbolic variables inside cached regions
    are resolved through the current process's [Ipa.Collect.sym_var]
    registry, so a cache hit yields structures indistinguishable from a
    fresh analysis.  Lookups are safe to issue from several domains
    concurrently; additions are expected from the coordinating domain. *)

type collect_payload = {
  cp_accesses : Ipa.Collect.access list;
  cp_sites : Ipa.Collect.site list;
}

type summary_payload = {
  sp_summary : Ipa.Summary.t;
  sp_propagated : Ipa.Collect.access list;
      (** accesses charged to callers via call sites ([ac_via] set) *)
}

type t

val create : ?dir:string -> unit -> t
(** With [~dir], entries are persisted under
    [dir/<schema>/{c,s}-<digest>.bin]; the schema component fingerprints the
    running executable, because Marshal images are only readable by the
    build that wrote them.  The directories are created as needed. *)

val in_memory : unit -> t
(** [create ()] — caching within one process only (e.g. across [--fuse]
    re-analysis). *)

val add_collect : t -> key:Digest.t -> collect_payload -> unit

val find_collect :
  t -> m:Whirl.Ir.module_ -> key:Digest.t -> collect_payload option
(** [None] on a genuine miss and on any unreadable/corrupt entry.

    The store self-heals: on-disk entries carry a checksum header, and an
    entry that fails the checksum or cannot be decoded is quarantined
    (renamed aside, counted in the [store.quarantined] metric, recorded as
    a {!Fault.Diag.t}) so the caller transparently recomputes it.
    Transient read/write failures are retried up to 3 times with a short
    backoff ([store.retries]); exhaustion degrades a read to a miss
    ([store.read_errors]) and a write to a memory-only entry
    ([store.write_errors]), never an exception. *)

val add_summary : t -> key:Digest.t -> summary_payload -> unit

val find_summary :
  t -> m:Whirl.Ir.module_ -> key:Digest.t -> summary_payload option

val entry_count : t -> int
(** Number of entries currently held in memory (loaded or added). *)

val drain_diags : t -> Fault.Diag.t list
(** Degradation events (quarantines, retry exhaustions) recorded since the
    last drain, oldest first.  {!Engine.run} drains them into its result. *)
