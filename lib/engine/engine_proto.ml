(* Wire protocol between the shard coordinator and its worker processes.

   Hand-framed binary over pipes: every message is one tag byte, an 8-byte
   big-endian payload length, and the payload; strings inside payloads are
   4-byte big-endian length-prefixed.  The interesting payloads — WHIRL
   modules, collect inputs, summaries — are not re-serialized for the
   wire: they travel as the exact images the cache layer already defines
   (the [Whirl_io] text format for modules, [Engine_store] entry images
   for collect/summary payloads), so a byte that crosses the wire is a
   byte that could equally have come off the shared tier.  Entry images
   are Marshal blobs and therefore only safe between processes of the same
   binary; the Hello handshake carries the store schema fingerprint so the
   coordinator can verify that before anything else is exchanged. *)

type member = {
  mb_name : string;
  mb_poisoned : bool;
      (* degraded during collection: the worker must install the opaque
         summary at this member's position instead of analyzing *)
  mb_collect : string;  (* [Engine_store.encode_collect] image; "" if poisoned *)
  mb_key : string;
      (* the member's Merkle summary key, so the worker can publish its
         computed summary straight into the shared tier; "" if unknown *)
}

type task = {
  t_id : int;
  t_members : member list;  (* the SCC's not-yet-summarized PUs, call-graph order *)
  t_callees : (string * string) list;
      (* name -> [Engine_store.encode_summary] image, for every summary the
         members may look up that is already known to the coordinator *)
}

type outcome =
  | O_summary of string  (* computed: [Engine_store.encode_summary] image *)
  | O_opaque  (* pre-poisoned member: opaque summary installed *)
  | O_poisoned of string * string * string
      (* (stage, diag site, error): isolated under keep-going worker-side;
         the coordinator re-raises the matching diagnostic *)
  | O_failed of string * (string * string) option
      (* (error, injected (site name, key)): fatal without keep-going; the
         coordinator re-raises *)

type result = {
  r_id : int;
  r_busy_ns : int;
  r_degraded : int;  (* solver.degraded counter delta over the task *)
  r_solver : string;  (* Marshal image of the [Linear.Solver_stats.t] delta *)
  r_outcomes : (string * outcome) list;
}

type init = {
  in_module : string;  (* [Whirl_io.write] image of the module under analysis *)
  in_keep_going : bool;
  in_fault_specs : string list;  (* [Fault.spec_to_string] forms *)
  in_solver_budget : int option;
  in_solver_core : string;  (* "learned" | "packed" | "reference" *)
  in_fast_join : bool;
  in_implies_memo : bool;
  in_cache_dir : string option;  (* shared tier to publish summaries into *)
}

type msg =
  | Hello of int * string  (* (pid, store schema fingerprint) *)
  | Init of init
  | Task of task
  | Result of result
  | Shutdown

(* ------------------------------------------------------------------ *)
(* Payload primitives *)

let put_u64 buf n =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (i * 8)) land 0xff))
  done

let put_u32 buf n =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (i * 8)) land 0xff))
  done

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_opt_str buf = function
  | None -> put_bool buf false
  | Some s ->
    put_bool buf true;
    put_str buf s

let put_list buf f xs =
  put_u32 buf (List.length xs);
  List.iter (f buf) xs

type cursor = { src : string; mutable pos : int }

let take c n =
  if c.pos + n > String.length c.src then failwith "Engine_proto: short payload";
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_u64 c =
  let s = take c 8 in
  let n = ref 0 in
  String.iter (fun ch -> n := (!n lsl 8) lor Char.code ch) s;
  !n

let get_u32 c =
  let s = take c 4 in
  let n = ref 0 in
  String.iter (fun ch -> n := (!n lsl 8) lor Char.code ch) s;
  !n

let get_bool c = take c 1 = "\001"
let get_str c = take c (get_u32 c)
let get_opt_str c = if get_bool c then Some (get_str c) else None

let get_list c f =
  let n = get_u32 c in
  List.init n (fun _ -> f c)

(* ------------------------------------------------------------------ *)
(* Message bodies *)

let put_member buf m =
  put_str buf m.mb_name;
  put_bool buf m.mb_poisoned;
  put_str buf m.mb_collect;
  put_str buf m.mb_key

let get_member c =
  let mb_name = get_str c in
  let mb_poisoned = get_bool c in
  let mb_collect = get_str c in
  let mb_key = get_str c in
  { mb_name; mb_poisoned; mb_collect; mb_key }

let put_pair buf (a, b) =
  put_str buf a;
  put_str buf b

let get_pair c =
  let a = get_str c in
  let b = get_str c in
  (a, b)

let put_outcome buf = function
  | O_summary s ->
    Buffer.add_char buf 'S';
    put_str buf s
  | O_opaque -> Buffer.add_char buf 'O'
  | O_poisoned (stage, site, err) ->
    Buffer.add_char buf 'P';
    put_str buf stage;
    put_str buf site;
    put_str buf err
  | O_failed (err, injected) -> (
    Buffer.add_char buf 'F';
    put_str buf err;
    match injected with
    | None -> put_bool buf false
    | Some (site, key) ->
      put_bool buf true;
      put_str buf site;
      put_str buf key)

let get_outcome c =
  match (take c 1).[0] with
  | 'S' -> O_summary (get_str c)
  | 'O' -> O_opaque
  | 'P' ->
    let stage = get_str c in
    let site = get_str c in
    let err = get_str c in
    O_poisoned (stage, site, err)
  | 'F' ->
    let err = get_str c in
    let injected =
      if get_bool c then
        let site = get_str c in
        let key = get_str c in
        Some (site, key)
      else None
    in
    O_failed (err, injected)
  | ch -> failwith (Printf.sprintf "Engine_proto: bad outcome tag %C" ch)

let put_named_outcome buf (name, o) =
  put_str buf name;
  put_outcome buf o

let get_named_outcome c =
  let name = get_str c in
  let o = get_outcome c in
  (name, o)

let encode msg =
  let buf = Buffer.create 256 in
  let tag =
    match msg with
    | Hello (pid, schema) ->
      put_u64 buf pid;
      put_str buf schema;
      'H'
    | Init i ->
      put_str buf i.in_module;
      put_bool buf i.in_keep_going;
      put_list buf put_str i.in_fault_specs;
      put_bool buf (i.in_solver_budget <> None);
      put_u64 buf (match i.in_solver_budget with Some b -> b | None -> 0);
      put_str buf i.in_solver_core;
      put_bool buf i.in_fast_join;
      put_bool buf i.in_implies_memo;
      put_opt_str buf i.in_cache_dir;
      'I'
    | Task t ->
      put_u64 buf t.t_id;
      put_list buf put_member t.t_members;
      put_list buf put_pair t.t_callees;
      'T'
    | Result r ->
      put_u64 buf r.r_id;
      put_u64 buf r.r_busy_ns;
      put_u64 buf r.r_degraded;
      put_str buf r.r_solver;
      put_list buf put_named_outcome r.r_outcomes;
      'R'
    | Shutdown -> 'Q'
  in
  (tag, Buffer.contents buf)

let decode tag payload =
  let c = { src = payload; pos = 0 } in
  match tag with
  | 'H' ->
    let pid = get_u64 c in
    let schema = get_str c in
    Hello (pid, schema)
  | 'I' ->
    let in_module = get_str c in
    let in_keep_going = get_bool c in
    let in_fault_specs = get_list c get_str in
    let has_budget = get_bool c in
    let budget = get_u64 c in
    let in_solver_budget = if has_budget then Some budget else None in
    let in_solver_core = get_str c in
    let in_fast_join = get_bool c in
    let in_implies_memo = get_bool c in
    let in_cache_dir = get_opt_str c in
    Init
      {
        in_module;
        in_keep_going;
        in_fault_specs;
        in_solver_budget;
        in_solver_core;
        in_fast_join;
        in_implies_memo;
        in_cache_dir;
      }
  | 'T' ->
    let t_id = get_u64 c in
    let t_members = get_list c get_member in
    let t_callees = get_list c get_pair in
    Task { t_id; t_members; t_callees }
  | 'R' ->
    let r_id = get_u64 c in
    let r_busy_ns = get_u64 c in
    let r_degraded = get_u64 c in
    let r_solver = get_str c in
    let r_outcomes = get_list c get_named_outcome in
    Result { r_id; r_busy_ns; r_degraded; r_solver; r_outcomes }
  | 'Q' -> Shutdown
  | ch -> failwith (Printf.sprintf "Engine_proto: bad message tag %C" ch)

(* ------------------------------------------------------------------ *)
(* Framing over file descriptors *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let write_msg fd msg =
  let tag, payload = encode msg in
  let header = Bytes.create 9 in
  Bytes.set header 0 tag;
  let n = String.length payload in
  for i = 0 to 7 do
    Bytes.set header (1 + i) (Char.chr ((n lsr ((7 - i) * 8)) land 0xff))
  done;
  (* one write for the common small case avoids interleaving hazards if a
     future caller ever shares a descriptor; large payloads stream *)
  write_all fd (Bytes.to_string header ^ payload)

(* A worker cannot guarantee its stdout is clean when the protocol
   starts: libraries linked into the host binary may print at module
   initialization, before main ever runs (qcheck's seed line in the test
   runner, for example).  The worker therefore leads with a fixed magic
   string, and the coordinator discards stream bytes until it sees it. *)
let magic = "\xfeUHC-SHARD\x01"

let write_magic fd = write_all fd magic

let read_magic fd =
  let n = String.length magic in
  let buf = Bytes.create 1 in
  (* magic.[0] appears nowhere else in [magic], so a failed match can
     only restart at position 0 or 1 *)
  let rec go matched budget =
    if matched = n then true
    else if budget = 0 then false
    else
      match Unix.read fd buf 0 1 with
      | 0 -> false
      | _ ->
        let c = Bytes.get buf 0 in
        if c = magic.[matched] then go (matched + 1) budget
        else go (if c = magic.[0] then 1 else 0) (budget - 1)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go matched budget
  in
  go 0 65536

let really_read fd n =
  (* [`Eof] only when the stream ends exactly on a message boundary *)
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> if off = 0 then `Eof else failwith "Engine_proto: truncated message"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_msg fd =
  match really_read fd 9 with
  | `Eof -> None
  | `Ok header ->
    let tag = header.[0] in
    let n = ref 0 in
    for i = 1 to 8 do
      n := (!n lsl 8) lor Char.code header.[i]
    done;
    let payload =
      if !n = 0 then ""
      else
        match really_read fd !n with
        | `Ok s -> s
        | `Eof -> failwith "Engine_proto: truncated message"
    in
    Some (decode tag payload)
