(* A persistent domain pool draining indexed work batches.

   Spawning a domain costs milliseconds (its minor heap alone), which would
   dwarf the per-PU work the engine fans out — one analysis run issues a
   batch per phase plus one per call-graph level.  So workers are spawned
   once, on first use, and parked on a condition variable between batches;
   submitting a batch is just a broadcast.

   Tasks are claimed with an atomic counter, so the assignment of tasks to
   domains is scheduling-dependent — which is why every task writes its
   result into its own pre-assigned slot and the stages the engine runs
   here are free of order-dependent side effects.  Completion is signalled
   through a mutex-guarded counter, giving the caller a happens-before edge
   over all plain writes the tasks made. *)

let recommended () = Domain.recommended_domain_count ()

let resolve_jobs jobs = if jobs <= 0 then recommended () else jobs

type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* next unclaimed task index *)
  finished : int Atomic.t;  (* completed tasks *)
  slots : int Atomic.t;  (* worker-participation permits left *)
  active : int Atomic.t;  (* workers drained but not yet published *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type pool = {
  mutex : Mutex.t;
  wake : Condition.t;  (* workers: a new batch (epoch bump) or shutdown *)
  done_ : Condition.t;  (* caller: batch completed *)
  mutable epoch : int;
  mutable current : batch option;
  mutable stop : bool;
  mutable spawned : int;
  mutable domains : unit Domain.t list;
}

let drain pool (b : batch) =
  let n = Array.length b.tasks in
  let rec claim () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then begin
      (if Atomic.get b.failure = None then
         try b.tasks.(i) ()
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set b.failure None (Some (e, bt))));
      if Atomic.fetch_and_add b.finished 1 + 1 = n then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.done_;
        Mutex.unlock pool.mutex
      end;
      claim ()
    end
  in
  claim ()

(* A worker's participation in one batch, bracketed with allocation and
   busy-time measurement reported to the ambient attribution sink (when the
   engine installed one for the current phase).  This is what lets
   [Engine.Stats] attribute worker-domain allocation: the coordinator's own
   [Gc.allocated_bytes] delta only sees its own heap.

   The [active] counter exists because finishing the batch's last task and
   publishing this measurement are separate steps: the caller must not treat
   the batch as complete until every participating worker has pushed its
   delta into the sink, or the phase reads the sink while the slowest
   worker — precisely the one holding most of the allocation — is still
   between its final [finished] increment and its [Sink.add]. *)
let drain_measured pool b =
  match Obs.Sink.current () with
  | None -> drain pool b
  | Some sink ->
    let t0 = Obs.Trace.now_ns () in
    let a0 = Gc.allocated_bytes () in
    drain pool b;
    Obs.Sink.add sink
      ~alloc_bytes:(Gc.allocated_bytes () -. a0)
      ~busy_ns:(Obs.Trace.now_ns () - t0)

let worker pool () =
  let rec wait_for_work last_epoch =
    Mutex.lock pool.mutex;
    while pool.epoch = last_epoch && not pool.stop do
      Condition.wait pool.wake pool.mutex
    done;
    let epoch = pool.epoch and batch = pool.current and stop = pool.stop in
    Mutex.unlock pool.mutex;
    if not stop then begin
      (match batch with
      | Some b when Atomic.fetch_and_add b.slots (-1) > 0 ->
        Atomic.incr b.active;
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock pool.mutex;
            Atomic.decr b.active;
            Condition.broadcast pool.done_;
            Mutex.unlock pool.mutex)
          (fun () -> drain_measured pool b)
      | _ -> ());
      wait_for_work epoch
    end
  in
  wait_for_work 0

let pool =
  lazy
    (let p =
       {
         mutex = Mutex.create ();
         wake = Condition.create ();
         done_ = Condition.create ();
         epoch = 0;
         current = None;
         stop = false;
         spawned = 0;
         domains = [];
       }
     in
     at_exit (fun () ->
         Mutex.lock p.mutex;
         p.stop <- true;
         Condition.broadcast p.wake;
         Mutex.unlock p.mutex;
         List.iter Domain.join p.domains;
         p.domains <- []);
     p)

let ensure_workers p count =
  if p.spawned < count then begin
    Mutex.lock p.mutex;
    while p.spawned < count do
      p.domains <- Domain.spawn (worker p) :: p.domains;
      p.spawned <- p.spawned + 1
    done;
    Mutex.unlock p.mutex
  end

let run ~jobs (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  let jobs = max 1 (min (resolve_jobs jobs) n) in
  if jobs <= 1 then Array.iter (fun t -> t ()) tasks
  else begin
    let p = Lazy.force pool in
    ensure_workers p (jobs - 1);
    let b =
      {
        tasks;
        next = Atomic.make 0;
        finished = Atomic.make 0;
        slots = Atomic.make (jobs - 1);
        active = Atomic.make 0;
        failure = Atomic.make None;
      }
    in
    Mutex.lock p.mutex;
    p.current <- Some b;
    p.epoch <- p.epoch + 1;
    Condition.broadcast p.wake;
    Mutex.unlock p.mutex;
    drain p b;
    Mutex.lock p.mutex;
    (* completion = every task done AND every joined worker has published
       its measurement to the ambient sink (see [drain_measured]) *)
    while Atomic.get b.finished < n || Atomic.get b.active > 0 do
      Condition.wait p.done_ p.mutex
    done;
    (match p.current with
    | Some b' when b' == b -> p.current <- None
    | _ -> ());
    Mutex.unlock p.mutex;
    match Atomic.get b.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
