(** Multi-process sharded execution of the summarize phase.

    The coordinator spawns worker processes of its own executable and
    shards each SCC-condensation level's not-yet-summarized SCCs across
    them over the {!Engine_proto} pipe protocol, with a work-stealing
    scheduler (home queue = task id mod workers; an idle worker steals
    from the tail of the longest queue).  Workers publish computed
    summaries straight into the shared [--cache-dir] tier.

    Outputs stay byte-identical at every topology: slot writes are
    per-PU, levels are barriers, and every degraded mode — schema
    mismatch at handshake, a worker dying mid-task, no worker surviving —
    falls back to running the affected SCCs in-process.  Steal counts,
    per-worker busy wall and queue depth are telemetry only
    ([shard.spawned]/[shard.tasks]/[shard.steals]/[shard.fallback_local]
    counters, [shard.queue_depth] gauge, {!stats}). *)

val core_name : [ `Learned | `Packed | `Reference ] -> string
(** The [Engine_proto.init] spelling of a solver core. *)

val worker_check_argv : unit -> unit
(** Call first thing in [main] of every binary that may coordinate a
    sharded run: when [Sys.argv.(1)] is the worker tag, this process
    {e is} a shard worker — serve the protocol on stdin/stdout and
    [exit] without returning.  A no-op otherwise. *)

type t
(** A coordinator handle, one per {!Engine.run}. *)

val create : workers:int -> init:(unit -> Engine_proto.init) -> t
(** [init] is forced once, at first spawn: it snapshots the module image
    and the knob state the workers must mirror.  No process is spawned
    until {!run_level} first has work. *)

type worker_stat = { ws_tasks : int; ws_steals : int; ws_busy_ns : int }

type stats = {
  st_requested : int;  (** the [--workers] value *)
  st_spawned : int;  (** processes that actually started *)
  st_tasks : int;  (** tasks dispatched over the wire *)
  st_steals : int;  (** tasks executed away from their home queue *)
  st_fallback_local : int;  (** tasks run in-process (death/spawn failure) *)
  st_workers : worker_stat list;  (** per worker, in id order *)
}

type task_spec = {
  ts_task : Engine_proto.task;
      (** wire form of one SCC; [t_id] is overwritten with the task's
          index in the level array *)
  ts_local : unit -> unit;  (** in-process fallback: run the SCC here *)
  ts_on_outcomes : (string * Engine_proto.outcome) list -> unit;
      (** applied on the coordinator for every completed wire task, in
          the member order the worker processed *)
}

val stats : t -> stats
val run_level : t -> task_spec array -> unit
(** Execute one condensation level to completion (a barrier).  Workers
    are spawned lazily at the first non-empty level — a fully warm run
    never pays a fork.  May re-raise an exception reconstructed from a
    worker's [O_failed] outcome (via [ts_on_outcomes]). *)

val shutdown : t -> unit
(** Retire every worker (close pipes, reap).  Idempotent; safe to call
    from a [Fun.protect] finalizer. *)
