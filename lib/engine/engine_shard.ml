(* Multi-process sharded execution of the summarize phase.

   The coordinator (the ordinary [Engine.run] process) spawns N fresh
   worker processes of its own executable ([Sys.executable_name], argv
   tagged [__shard-worker]) and, within each SCC-condensation level,
   shards the not-yet-summarized SCCs across them over the
   {!Engine_proto} pipe protocol.  Workers re-parse the module from its
   [Whirl_io] image, mirror the coordinator's solver/fault knobs from the
   Init message, analyze shipped SCCs member-by-member exactly as the
   in-process path does, and send summaries back as the same entry images
   the cache persists — publishing them into the shared [--cache-dir]
   tier on the way, so a summary computed by any worker is visible to
   every later run without re-derivation.

   Scheduling is work-stealing: each task's home queue is [id mod N]
   (deterministic), each worker holds at most one task in flight, and a
   worker whose own queue drains steals from the tail of the longest
   remaining queue.  Steal decisions depend on timing and are recorded
   only in telemetry (steal counts, per-worker busy wall, queue-depth
   gauge) — never in analysis outputs, which stay byte-identical at every
   topology because slot writes are per-PU and levels are barriers.

   Degraded modes all fall back to in-process analysis with identical
   results: a worker whose Hello handshake does not match the
   coordinator's store schema (a different binary — Marshal images would
   be unsafe) is discarded; a worker that dies mid-task has its task
   re-run locally; with every worker gone the level drains locally. *)

open Whirl

let worker_tag = "__shard-worker"

(* re-registrations resolve to the instruments other modules own *)
let c_degraded = Obs.Metrics.counter "solver.degraded"
let c_spawned = Obs.Metrics.counter "shard.spawned"
let c_tasks = Obs.Metrics.counter "shard.tasks"
let c_steals = Obs.Metrics.counter "shard.steals"
let c_fallback = Obs.Metrics.counter "shard.fallback_local"
let g_queue_depth = Obs.Metrics.gauge "shard.queue_depth"

(* ------------------------------------------------------------------ *)
(* Worker side *)

let core_name = function
  | `Learned -> "learned"
  | `Packed -> "packed"
  | `Reference -> "reference"

let core_of_name = function
  | "learned" -> `Learned
  | "packed" -> `Packed
  | "reference" -> `Reference
  | s -> failwith ("shard worker: unknown solver core " ^ s)

(* Mirrors [Engine]'s per-member summarize semantics exactly: members
   arrive in call-graph order; a pre-poisoned member installs the opaque
   summary at its position (so an earlier member of the cycle already saw
   [None] for it, like the serial schedule); a member that fails under
   keep-going poisons locally and processing continues; without
   keep-going the first failure stops the task and the coordinator
   re-raises. *)
let run_task ~m ~pu_of ~keep_going ~store (tk : Engine_proto.task) :
    Engine_proto.result =
  let t0 = Obs.Trace.now_ns () in
  let solver0 = Linear.Solver_stats.snapshot () in
  let deg0 = Obs.Metrics.Counter.get c_degraded in
  let callees = Hashtbl.create 16 in
  List.iter
    (fun (name, img) ->
      Hashtbl.replace callees name
        (lazy (Engine_store.decode_summary ~m img).Engine_store.sp_summary))
    tk.Engine_proto.t_callees;
  let member_names = Hashtbl.create 8 in
  List.iter
    (fun mb -> Hashtbl.replace member_names mb.Engine_proto.mb_name ())
    tk.Engine_proto.t_members;
  let local : (string, Ipa.Summary.t) Hashtbl.t = Hashtbl.create 8 in
  let lookup name =
    match Hashtbl.find_opt local name with
    | Some s -> Some s
    | None ->
      (* a co-member not yet summarized reads as [None], never as a stale
         shipped value *)
      if Hashtbl.mem member_names name then None
      else Option.map Lazy.force (Hashtbl.find_opt callees name)
  in
  let outcomes = ref [] in
  let fatal = ref false in
  List.iter
    (fun (mb : Engine_proto.member) ->
      if not !fatal then begin
        let name = mb.Engine_proto.mb_name in
        let pu = pu_of name in
        if mb.Engine_proto.mb_poisoned then begin
          Hashtbl.replace local name (Ipa.Summary.opaque m pu);
          outcomes := (name, Engine_proto.O_opaque) :: !outcomes
        end
        else begin
          let p = Engine_store.decode_collect ~m mb.Engine_proto.mb_collect in
          let info =
            {
              Ipa.Collect.p_pu = pu;
              p_accesses = p.Engine_store.cp_accesses;
              p_sites = p.Engine_store.cp_sites;
            }
          in
          match
            Fault.inject Fault.Pool ~key:("summarize:" ^ name);
            Obs.Span.with_ ~cat:"pu" ~name:("summarize:" ^ name) (fun () ->
                Ipa.Analyze.summarize_pu m ~lookup info)
          with
          | exported, extra ->
            Hashtbl.replace local name exported;
            let img =
              Engine_store.encode_summary
                { Engine_store.sp_summary = exported; sp_propagated = extra }
            in
            (match store with
            | Some st when mb.Engine_proto.mb_key <> "" ->
              Engine_store.publish_summary st ~key:mb.Engine_proto.mb_key img
            | _ -> ());
            outcomes := (name, Engine_proto.O_summary img) :: !outcomes
          | exception e when keep_going ->
            Hashtbl.replace local name (Ipa.Summary.opaque m pu);
            let site =
              match e with
              | Fault.Injected (s, _) -> Fault.site_name s
              | _ -> "engine"
            in
            outcomes :=
              (name,
                Engine_proto.O_poisoned
                  ("summarize", site, Printexc.to_string e))
              :: !outcomes
          | exception e ->
            let injected =
              match e with
              | Fault.Injected (s, k) -> Some (Fault.site_name s, k)
              | _ -> None
            in
            fatal := true;
            outcomes :=
              (name, Engine_proto.O_failed (Printexc.to_string e, injected))
              :: !outcomes
        end
      end)
    tk.Engine_proto.t_members;
  let solver_diff =
    Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) solver0
  in
  {
    Engine_proto.r_id = tk.Engine_proto.t_id;
    r_busy_ns = Obs.Trace.now_ns () - t0;
    r_degraded = Obs.Metrics.Counter.get c_degraded - deg0;
    r_solver = Marshal.to_string solver_diff [];
    r_outcomes = List.rev !outcomes;
  }

let worker_serve input output =
  Engine_proto.write_magic output;
  Engine_proto.write_msg output
    (Engine_proto.Hello (Unix.getpid (), Engine_store.schema ()));
  match Engine_proto.read_msg input with
  | None | Some Engine_proto.Shutdown -> ()
  | Some (Engine_proto.Init init) ->
    let m =
      match Whirl_io.parse init.Engine_proto.in_module with
      | Ok m -> m
      | Error e -> failwith ("shard worker: bad module image: " ^ e)
    in
    Layout.assign m;
    Ipa.Collect.intern_module_syms m;
    (match Fault.parse_specs init.Engine_proto.in_fault_specs with
    | Ok specs -> Fault.configure specs
    | Error e -> failwith ("shard worker: bad fault spec: " ^ e));
    Linear.System.set_step_budget init.Engine_proto.in_solver_budget;
    Linear.System.set_solver_core
      (core_of_name init.Engine_proto.in_solver_core);
    Regions.Region.set_fast_join init.Engine_proto.in_fast_join;
    Linear.System.set_implies_memo_enabled init.Engine_proto.in_implies_memo;
    let store =
      Option.map
        (fun dir -> Engine_store.create ~dir ())
        init.Engine_proto.in_cache_dir
    in
    let pu_tbl = Hashtbl.create 64 in
    List.iter (fun pu -> Hashtbl.replace pu_tbl pu.Ir.pu_name pu) m.Ir.m_pus;
    let pu_of name =
      match Hashtbl.find_opt pu_tbl name with
      | Some pu -> pu
      | None -> failwith ("shard worker: unknown PU " ^ name)
    in
    let rec serve () =
      match Engine_proto.read_msg input with
      | None | Some Engine_proto.Shutdown -> ()
      | Some (Engine_proto.Task tk) ->
        let r =
          run_task ~m ~pu_of ~keep_going:init.Engine_proto.in_keep_going
            ~store tk
        in
        Engine_proto.write_msg output (Engine_proto.Result r);
        serve ()
      | Some _ -> failwith "shard worker: unexpected message"
    in
    serve ()
  | Some _ -> failwith "shard worker: expected Init"

let worker_check_argv () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = worker_tag then begin
    let status =
      try
        let input = Unix.stdin in
        (* keep a private handle on the real stdout and point fd 1 at
           stderr, so any stray print in analysis code cannot corrupt the
           protocol stream *)
        let output = Unix.dup Unix.stdout in
        Unix.dup2 Unix.stderr Unix.stdout;
        worker_serve input output;
        0
      with e ->
        prerr_endline ("shard worker: " ^ Printexc.to_string e);
        2
    in
    exit status
  end

(* ------------------------------------------------------------------ *)
(* Coordinator side *)

type worker = {
  w_id : int;
  w_pid : int;
  w_to : Unix.file_descr;  (* coordinator -> worker (its stdin) *)
  w_from : Unix.file_descr;  (* worker -> coordinator (its stdout) *)
  mutable w_alive : bool;
  mutable w_busy_ns : int;
  mutable w_tasks : int;
  mutable w_steals : int;
}

type t = {
  sh_requested : int;
  sh_init : Engine_proto.init Lazy.t;
  mutable sh_workers : worker array;
  mutable sh_spawned : bool;
  mutable sh_steals : int;
  mutable sh_fallback : int;
  mutable sh_dispatched : int;
}

type worker_stat = { ws_tasks : int; ws_steals : int; ws_busy_ns : int }

type stats = {
  st_requested : int;
  st_spawned : int;
  st_tasks : int;
  st_steals : int;
  st_fallback_local : int;
  st_workers : worker_stat list;
}

let create ~workers ~init =
  {
    sh_requested = workers;
    sh_init = Lazy.from_fun init;
    sh_workers = [||];
    sh_spawned = false;
    sh_steals = 0;
    sh_fallback = 0;
    sh_dispatched = 0;
  }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reap_quiet pid =
  if pid > 0 then try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let mark_dead w =
  if w.w_alive then begin
    w.w_alive <- false;
    close_quiet w.w_to;
    close_quiet w.w_from;
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap_quiet w.w_pid
  end

let retire w =
  (* graceful: closing its stdin makes an idle worker exit by itself *)
  if w.w_alive then begin
    w.w_alive <- false;
    (try Engine_proto.write_msg w.w_to Engine_proto.Shutdown
     with Unix.Unix_error _ | Sys_error _ -> ());
    close_quiet w.w_to;
    close_quiet w.w_from;
    reap_quiet w.w_pid
  end

let spawn_one sh id =
  let task_r, task_w = Unix.pipe ~cloexec:true () in
  let res_r, res_w = Unix.pipe ~cloexec:true () in
  match
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; worker_tag |]
      task_r res_w Unix.stderr
  with
  | exception e ->
    List.iter close_quiet [ task_r; task_w; res_r; res_w ];
    Obs.Log.info "shard.spawn_failed"
      [ ("worker", string_of_int id); ("error", Printexc.to_string e) ];
    {
      w_id = id;
      w_pid = -1;
      w_to = task_w;
      w_from = res_r;
      w_alive = false;
      w_busy_ns = 0;
      w_tasks = 0;
      w_steals = 0;
    }
  | pid -> (
    Unix.close task_r;
    Unix.close res_w;
    let w =
      {
        w_id = id;
        w_pid = pid;
        w_to = task_w;
        w_from = res_r;
        w_alive = true;
        w_busy_ns = 0;
        w_tasks = 0;
        w_steals = 0;
      }
    in
    (* handshake before any Marshal image crosses the wire: a worker from
       a different binary is useless (and unsafe) — discard it and let the
       fallback path keep outputs identical *)
    match
      if Engine_proto.read_magic res_r then Engine_proto.read_msg res_r
      else None
    with
    | Some (Engine_proto.Hello (_, schema))
      when schema = Engine_store.schema () -> (
      match Engine_proto.write_msg task_w (Engine_proto.Init (Lazy.force sh.sh_init)) with
      | () ->
        Obs.Metrics.Counter.incr c_spawned;
        w
      | exception (Unix.Unix_error _ | Sys_error _) ->
        mark_dead w;
        w)
    | _ | (exception (Unix.Unix_error _ | Sys_error _ | Failure _ | End_of_file)) ->
      Obs.Log.info "shard.handshake_failed" [ ("worker", string_of_int id) ];
      mark_dead w;
      w)

let ensure_spawned sh =
  if not sh.sh_spawned then begin
    sh.sh_spawned <- true;
    (* writes to a worker that died must surface as EPIPE, not kill us *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    sh.sh_workers <- Array.init sh.sh_requested (fun id -> spawn_one sh id)
  end

let shutdown sh = Array.iter retire sh.sh_workers

let stats sh =
  {
    st_requested = sh.sh_requested;
    st_spawned =
      Array.fold_left
        (fun a w -> if w.w_pid > 0 then a + 1 else a)
        0 sh.sh_workers;
    st_tasks = sh.sh_dispatched;
    st_steals = sh.sh_steals;
    st_fallback_local = sh.sh_fallback;
    st_workers =
      Array.to_list
        (Array.map
           (fun w ->
             {
               ws_tasks = w.w_tasks;
               ws_steals = w.w_steals;
               ws_busy_ns = w.w_busy_ns;
             })
           sh.sh_workers);
  }

(* ------------------------------------------------------------------ *)
(* Level scheduler *)

type task_spec = {
  ts_task : Engine_proto.task;  (* [t_id] is overwritten with the array index *)
  ts_local : unit -> unit;  (* in-process fallback: run the SCC here *)
  ts_on_outcomes : (string * Engine_proto.outcome) list -> unit;
}

(* only pops after the initial fill, so a plain array slice suffices *)
type dq = { dq_arr : int array; mutable dq_hd : int; mutable dq_tl : int }

let dq_len q = q.dq_tl - q.dq_hd

let dq_pop_front q =
  if dq_len q = 0 then None
  else begin
    let v = q.dq_arr.(q.dq_hd) in
    q.dq_hd <- q.dq_hd + 1;
    Some v
  end

let dq_pop_back q =
  if dq_len q = 0 then None
  else begin
    q.dq_tl <- q.dq_tl - 1;
    Some q.dq_arr.(q.dq_tl)
  end

let run_local sh (spec : task_spec) =
  sh.sh_fallback <- sh.sh_fallback + 1;
  Obs.Metrics.Counter.incr c_fallback;
  spec.ts_local ()

let rec select_read fds =
  match Unix.select fds [] [] (-1.0) with
  | rs, _, _ -> rs
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_read fds

let run_level sh (specs : task_spec array) =
  let n = Array.length specs in
  if n = 0 then ()
  else begin
    ensure_spawned sh;
    let ws = sh.sh_workers in
    let w_cnt = Array.length ws in
    if not (Array.exists (fun w -> w.w_alive) ws) then
      Array.iter (fun s -> run_local sh s) specs
    else begin
      let queues =
        Array.init w_cnt (fun k ->
            let ids = ref [] in
            for id = n - 1 downto 0 do
              if id mod w_cnt = k then ids := id :: !ids
            done;
            let arr = Array.of_list !ids in
            { dq_arr = arr; dq_hd = 0; dq_tl = Array.length arr })
      in
      let inflight = Array.make w_cnt None in
      let remaining = ref n in
      let pick w =
        match dq_pop_front queues.(w.w_id) with
        | Some id -> Some id
        | None -> (
          (* steal from the tail of the longest queue (dead workers'
             queues included — their homework is up for grabs) *)
          let best = ref (-1) in
          let best_len = ref 0 in
          Array.iteri
            (fun k q ->
              let l = dq_len q in
              if l > !best_len then begin
                best := k;
                best_len := l
              end)
            queues;
          if !best < 0 then None
          else
            match dq_pop_back queues.(!best) with
            | Some id ->
              sh.sh_steals <- sh.sh_steals + 1;
              w.w_steals <- w.w_steals + 1;
              Obs.Metrics.Counter.incr c_steals;
              Some id
            | None -> None)
      in
      let handle_death w =
        (* the in-flight task (if any) re-runs locally; queued tasks stay
           stealable by the survivors *)
        let stuck = inflight.(w.w_id) in
        inflight.(w.w_id) <- None;
        mark_dead w;
        Obs.Log.info "shard.worker_died"
          [ ("worker", string_of_int w.w_id); ("pid", string_of_int w.w_pid) ];
        match stuck with
        | Some id ->
          run_local sh specs.(id);
          decr remaining
        | None -> ()
      in
      let rec try_dispatch w =
        if w.w_alive && inflight.(w.w_id) = None then
          match pick w with
          | None -> ()
          | Some id -> (
            let tk = { specs.(id).ts_task with Engine_proto.t_id = id } in
            match Engine_proto.write_msg w.w_to (Engine_proto.Task tk) with
            | () ->
              inflight.(w.w_id) <- Some id;
              w.w_tasks <- w.w_tasks + 1;
              sh.sh_dispatched <- sh.sh_dispatched + 1;
              Obs.Metrics.Counter.incr c_tasks
            | exception (Unix.Unix_error _ | Sys_error _) ->
              handle_death w;
              (* the picked task was never sent *)
              run_local sh specs.(id);
              decr remaining;
              try_dispatch w)
      in
      Array.iter try_dispatch ws;
      while !remaining > 0 do
        Obs.Metrics.Gauge.set g_queue_depth
          (Array.fold_left (fun a q -> a + dq_len q) 0 queues);
        let busy =
          Array.to_list ws
          |> List.filter (fun w -> w.w_alive && inflight.(w.w_id) <> None)
        in
        if busy = [] then begin
          (* every worker is gone: drain what's left in id order *)
          Array.iter
            (fun q ->
              let rec go () =
                match dq_pop_front q with
                | Some id ->
                  run_local sh specs.(id);
                  decr remaining;
                  go ()
                | None -> ()
              in
              go ())
            queues
        end
        else begin
          let rs = select_read (List.map (fun w -> w.w_from) busy) in
          List.iter
            (fun fd ->
              let w = List.find (fun w -> w.w_from == fd) busy in
              match Engine_proto.read_msg fd with
              | Some (Engine_proto.Result r) ->
                let id =
                  match inflight.(w.w_id) with
                  | Some id -> id
                  | None -> failwith "Engine_shard: result with nothing in flight"
                in
                if r.Engine_proto.r_id <> id then
                  failwith "Engine_shard: result id mismatch";
                inflight.(w.w_id) <- None;
                w.w_busy_ns <- w.w_busy_ns + r.Engine_proto.r_busy_ns;
                (Linear.Solver_stats.absorb
                   (Marshal.from_string r.Engine_proto.r_solver 0
                     : Linear.Solver_stats.t));
                Obs.Metrics.Counter.add c_degraded r.Engine_proto.r_degraded;
                decr remaining;
                (* completing before re-dispatching keeps the level's slot
                   writes ordered per task, like the pool's batches *)
                specs.(id).ts_on_outcomes r.Engine_proto.r_outcomes;
                try_dispatch w
              | None | Some _
              | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
                handle_death w)
            rs
        end
      done
    end
  end
