(* The parallel, incremental analysis engine.

   One [run] performs the same pipeline as the serial
   [Ipa.Analyze.analyze] — layout, collection, bottom-up summary
   propagation, assembly — but fans the per-PU stages (collection, CFG
   construction) across a domain pool and reuses cached results keyed by
   content digests:

   - [key1 pu] digests the global symbol table plus the PU's serialized
     body: it addresses the *local* collection result;
   - [key2 pu] is a Merkle digest folding [key1] of the PU together with
     the [key2] of everything it (transitively) calls: it addresses the
     *interprocedural* summary, so editing one PU invalidates exactly that
     PU and its transitive callers.

   Determinism: symbolic-variable ids are pre-assigned by
   [Collect.intern_module_syms] before any fan-out, every task writes only
   its own slot, and summary propagation runs level-by-level over the SCC
   DAG with the members of one SCC processed sequentially in call-graph
   order — the exact schedule the serial path uses.  Parallel, cached and
   serial runs therefore produce byte-identical outputs. *)

open Whirl

type config = {
  jobs : int;
  workers : int;
  store : Engine_store.t option;
  keep_going : bool;
}

let config ?(jobs = 1) ?(workers = 0) ?store ?(keep_going = false) () =
  { jobs; workers; store; keep_going }

module Stats = struct
  type phase = { ph_name : string; ph_wall : float; ph_alloc : float }

  type t = {
    s_jobs : int;
    s_pus : int;
    s_collect_hits : int;
    s_collect_misses : int;
    s_summary_hits : int;
    s_summary_misses : int;
    s_phases : phase list;
    s_total_wall : float;
    s_solver : Linear.Solver_stats.t;
    s_shard : Engine_shard.stats option;
        (* Some iff workers > 0; scheduling telemetry only, excluded from
           [pp_deterministic] (steal counts depend on timing) *)
  }

  let pp ppf t =
    Format.fprintf ppf "engine: %d job%s, %d PU%s@\n" t.s_jobs
      (if t.s_jobs = 1 then "" else "s")
      t.s_pus
      (if t.s_pus = 1 then "" else "s");
    Format.fprintf ppf "  cache: collect %d hit / %d miss, summary %d hit / %d miss@\n"
      t.s_collect_hits t.s_collect_misses t.s_summary_hits t.s_summary_misses;
    (match t.s_shard with
    | None -> ()
    | Some sh ->
      Format.fprintf ppf
        "  shard: %d/%d workers, %d task%s (%d stolen, %d local)@\n"
        sh.Engine_shard.st_spawned sh.Engine_shard.st_requested
        sh.Engine_shard.st_tasks
        (if sh.Engine_shard.st_tasks = 1 then "" else "s")
        sh.Engine_shard.st_steals sh.Engine_shard.st_fallback_local);
    List.iter
      (fun p ->
        Format.fprintf ppf "  %-10s %8.3fs %10.1f kB@\n" p.ph_name p.ph_wall
          (p.ph_alloc /. 1024.))
      t.s_phases;
    Format.fprintf ppf "  %-10s %8.3fs@\n" "total" t.s_total_wall;
    Linear.Solver_stats.pp ppf t.s_solver

  let pp_deterministic ppf t =
    (* wall/alloc columns dropped, phase names kept in execution order;
       every number printed here is reproducible at any --jobs setting *)
    Format.fprintf ppf "engine: %d PU%s@\n" t.s_pus
      (if t.s_pus = 1 then "" else "s");
    Format.fprintf ppf "  cache: collect %d hit / %d miss, summary %d hit / %d miss@\n"
      t.s_collect_hits t.s_collect_misses t.s_summary_hits t.s_summary_misses;
    Format.fprintf ppf "  phases:";
    List.iter (fun p -> Format.fprintf ppf " %s" p.ph_name) t.s_phases;
    Format.fprintf ppf "@\n";
    Linear.Solver_stats.pp_deterministic ppf t.s_solver
end

(* What the incrementality machinery knew about one PU this run — the raw
   material for the run ledger and [dragon explain]: the content keys say
   *why* a cache missed (key1 changed = the PU's own body or the global
   symtab; key1 same but key2 changed = some transitive callee), the
   callee list lets a reader walk blast radii without reloading sources. *)
type pu_entry = {
  p_name : string;
  p_file : string;
  p_key1 : string;  (* hex digest of global symtab + PU body *)
  p_key2 : string;  (* hex Merkle digest folding in transitive callees *)
  p_collect_hit : bool;
  p_summary_hit : bool;
  p_callees : string list;
}

type result = {
  e_result : Ipa.Analyze.result;
  e_stats : Stats.t;
  e_diags : Fault.Diag.t list;
  e_pus : pu_entry list;
}

let count_true a =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a

(* Conservative stand-ins for a PU whose analysis failed under
   [keep_going]: collection degrades to "no locally provable accesses"
   (the interprocedural layer stays sound because the PU's summary is
   forced to {!Ipa.Summary.opaque} below), the CFG to a bare
   entry->exit skeleton. *)
let empty_info pu =
  { Ipa.Collect.p_pu = pu; p_accesses = []; p_sites = [] }

let skeleton_cfg name =
  let entry =
    { Cfg.id = 0; stmts = []; label = "entry"; succs = [ 1 ]; preds = [] }
  in
  let exit_ =
    { Cfg.id = 1; stmts = []; label = "exit"; succs = []; preds = [ 0 ] }
  in
  { Cfg.proc = name; blocks = [| entry; exit_ |]; entry = 0; exit_ = 1 }

let c_isolated = Obs.Metrics.counter "engine.pu_isolated"

let diag_site_of_exn = function
  | Fault.Injected (site, _) -> Fault.site_name site
  | _ -> "engine"

(* string form, shared with the shard path: a worker ships (site, error)
   across the wire and the coordinator rebuilds the byte-identical diag *)
let isolation_diag_str ~stage ~pu ~action ~site ~error =
  Obs.Metrics.Counter.incr c_isolated;
  Obs.Log.info "engine.pu_isolated"
    [ ("stage", stage); ("pu", pu); ("error", error) ];
  Fault.Diag.make ~site ~pu ~action
    (Printf.sprintf "%s failed (%s); %s" stage error action)

let isolation_diag ~stage ~pu ~action e =
  isolation_diag_str ~stage ~pu ~action ~site:(diag_site_of_exn e)
    ~error:(Printexc.to_string e)

(* Cumulative registry mirrors of the per-run cache counters, plus one
   latency histogram per pipeline phase. *)
let c_runs = Obs.Metrics.counter "engine.runs"
let c_collect_hits = Obs.Metrics.counter "engine.collect.hits"
let c_collect_misses = Obs.Metrics.counter "engine.collect.misses"
let c_summary_hits = Obs.Metrics.counter "engine.summary.hits"
let c_summary_misses = Obs.Metrics.counter "engine.summary.misses"

let phase_hist =
  let tbl = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h = Obs.Metrics.histogram ("engine.phase." ^ name ^ ".wall_ns") in
      Hashtbl.replace tbl name h;
      h

let run (cfg : config) (m : Ir.module_) : result =
  let jobs = Engine_pool.resolve_jobs cfg.jobs in
  let solver0 = Linear.Solver_stats.snapshot () in
  let t_start = Obs.Trace.now_ns () in
  let phases = ref [] in
  let timed name f =
    (* the ambient sink collects worker-domain allocation and busy time for
       every pool batch this phase issues; the coordinator's own delta is
       measured directly *)
    let sink = Obs.Sink.create () in
    Obs.Sink.set_current (Some sink);
    let t0 = Obs.Trace.now_ns () in
    let a0 = Gc.allocated_bytes () in
    let r =
      Fun.protect
        ~finally:(fun () -> Obs.Sink.set_current None)
        (fun () -> Obs.Span.with_ ~cat:"phase" ~name f)
    in
    let wall_ns = Obs.Trace.now_ns () - t0 in
    let wall = float_of_int wall_ns /. 1e9 in
    let alloc = Gc.allocated_bytes () -. a0 +. Obs.Sink.alloc_bytes sink in
    if Obs.Metrics.enabled () then Obs.Hist.observe (phase_hist name) wall_ns;
    Obs.Log.debug "engine.phase" (fun () ->
        [
          ("name", name);
          ("wall_ms", Printf.sprintf "%.3f" (wall *. 1e3));
          ("alloc_kb", Printf.sprintf "%.1f" (alloc /. 1024.));
          ("worker_busy_ms",
           Printf.sprintf "%.3f" (float_of_int (Obs.Sink.busy_ns sink) /. 1e6));
        ]);
    phases :=
      { Stats.ph_name = name; ph_wall = wall; ph_alloc = alloc } :: !phases;
    r
  in
  (* ---- prepare: layout, symbolic variables, call graph -------------- *)
  let cg =
    timed "prepare" (fun () ->
        Layout.assign m;
        Ipa.Collect.intern_module_syms m;
        Ipa.Callgraph.build m)
  in
  let pus = Array.of_list m.Ir.m_pus in
  let n = Array.length pus in
  let idx_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i pu -> Hashtbl.replace idx_of pu.Ir.pu_name i) pus;
  let idx name = Hashtbl.find_opt idx_of name in
  (* ---- content digests (after layout: Mem_Locs are part of content) - *)
  let key1 =
    timed "digest" (fun () ->
        let gd = Digest.to_hex (Whirl_io.symtab_digest m.Ir.m_global) in
        let keys = Array.make n Digest.(string "") in
        let scratch = Domain.DLS.new_key (fun () -> Buffer.create 65536) in
        Engine_pool.run ~jobs
          (Array.init n (fun i () ->
               let buf = Domain.DLS.get scratch in
               Buffer.clear buf;
               Buffer.add_string buf gd;
               Whirl_io.add_pu_content buf m pus.(i);
               keys.(i) <- Digest.string (Buffer.contents buf)));
        keys)
  in
  (* ---- collection + CFGs, one task per PU --------------------------- *)
  let infos : Ipa.Collect.pu_info option array = Array.make n None in
  let cfgs : Cfg.t option array = Array.make n None in
  let collect_hit = Array.make n false in
  (* per-PU fault isolation (only under [keep_going]): a poisoned PU gets
     conservative stand-ins and a structured diagnostic instead of killing
     the whole run.  Every slot is written only by the PU's own task, so
     diagnostics are deterministic whatever the pool schedule. *)
  let poisoned = Array.make n false in
  let pu_diags : Fault.Diag.t list array = Array.make n [] in
  timed "collect" (fun () ->
      let task i () =
        let pu = pus.(i) in
        Obs.Span.with_ ~cat:"pu" ~name:("collect:" ^ pu.Ir.pu_name)
        @@ fun () ->
        (try
           Fault.inject Fault.Pool ~key:("collect:" ^ pu.Ir.pu_name);
           match cfg.store with
           | Some store -> (
             match Engine_store.find_collect store ~m ~key:key1.(i) with
             | Some p ->
               collect_hit.(i) <- true;
               infos.(i) <-
                 Some
                   {
                     Ipa.Collect.p_pu = pu;
                     p_accesses = p.Engine_store.cp_accesses;
                     p_sites = p.Engine_store.cp_sites;
                   }
             | None -> infos.(i) <- Some (Ipa.Collect.run_pu m pu))
           | None -> infos.(i) <- Some (Ipa.Collect.run_pu m pu)
         with e when cfg.keep_going ->
           poisoned.(i) <- true;
           infos.(i) <- Some (empty_info pu);
           pu_diags.(i) <-
             isolation_diag ~stage:"collect" ~pu:pu.Ir.pu_name
               ~action:"opaque-summary" e
             :: pu_diags.(i));
        try cfgs.(i) <- Some (Cfg.build pu)
        with e when cfg.keep_going ->
          poisoned.(i) <- true;
          cfgs.(i) <- Some (skeleton_cfg pu.Ir.pu_name);
          pu_diags.(i) <-
            isolation_diag ~stage:"cfg" ~pu:pu.Ir.pu_name
              ~action:"skeleton-cfg" e
            :: pu_diags.(i)
      in
      Engine_pool.run ~jobs (Array.init n task);
      match cfg.store with
      | None -> ()
      | Some store ->
        Array.iteri
          (fun i hit ->
            (* never persist a degraded collection result *)
            if (not hit) && not poisoned.(i) then
              match infos.(i) with
              | Some info ->
                Engine_store.add_collect store ~key:key1.(i)
                  {
                    Engine_store.cp_accesses = info.Ipa.Collect.p_accesses;
                    cp_sites = info.Ipa.Collect.p_sites;
                  }
              | None -> ())
          collect_hit);
  (* ---- summaries: Merkle keys, cache, then level-parallel SCCs ------ *)
  let summaries : Ipa.Summary.t option array = Array.make n None in
  let propagated : Ipa.Collect.access list array = Array.make n [] in
  let summary_hit = Array.make n false in
  let computed = Array.make n false in
  let key2 : Digest.t option array = Array.make n None in
  (* multi-process sharding: the init snapshot is only forced if a level
     actually dispatches work, so warm runs never pay a spawn *)
  let shard =
    if cfg.workers <= 0 then None
    else
      Some
        (Engine_shard.create ~workers:cfg.workers ~init:(fun () ->
             {
               Engine_proto.in_module = Whirl_io.write m;
               in_keep_going = cfg.keep_going;
               in_fault_specs =
                 List.map Fault.spec_to_string (Fault.current_specs ());
               in_solver_budget = Linear.System.get_step_budget ();
               in_solver_core =
                 Engine_shard.core_name (Linear.System.solver_core ());
               in_fast_join = Regions.Region.fast_join_enabled ();
               in_implies_memo = Linear.System.implies_memo_enabled ();
               in_cache_dir = Option.bind cfg.store Engine_store.dir;
             }))
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Engine_shard.shutdown shard)
  @@ fun () ->
  timed "summarize" (fun () ->
      let scc_arr = Array.of_list (Ipa.Callgraph.sccs cg) in
      (* Merkle digests, bottom-up: [sccs] lists callee SCCs first.  The
         members of one SCC share their input digest (they are mutually
         recursive: any change to one member's inputs re-summarizes the
         whole cycle), differing only by a name suffix. *)
      Array.iter
        (fun scc ->
          let buf = Buffer.create 256 in
          List.iter
            (fun name ->
              (match idx name with
              | None -> Buffer.add_string buf "@undef-member"
              | Some i -> Buffer.add_string buf key1.(i));
              List.iter
                (fun c ->
                  Buffer.add_string buf c;
                  match idx c with
                  | None -> Buffer.add_string buf "@undef"
                  | Some j ->
                    if List.mem c scc then Buffer.add_string buf "@rec"
                    else
                      Buffer.add_string buf
                        (match key2.(j) with
                        | Some k -> k
                        | None -> "@pending"))
                (Ipa.Callgraph.callees cg name))
            scc;
          let inputs = Buffer.contents buf in
          List.iter
            (fun name ->
              match idx name with
              | None -> ()
              | Some i -> key2.(i) <- Some (Digest.string (inputs ^ name)))
            scc)
        scc_arr;
      (* cache lookups, one task per PU *)
      (match cfg.store with
      | None -> ()
      | Some store ->
        let task i () =
          match key2.(i) with
          | None -> ()
          | Some key -> (
            match Engine_store.find_summary store ~m ~key with
            | Some p ->
              summary_hit.(i) <- true;
              summaries.(i) <- Some p.Engine_store.sp_summary;
              propagated.(i) <- p.Engine_store.sp_propagated
            | None -> ())
        in
        Engine_pool.run ~jobs (Array.init n task));
      (* level-parallel propagation over the SCC DAG: an SCC's level is one
         more than its deepest callee SCC, so everything a level-[l] SCC
         looks up was finished at level [< l].  Members of one SCC run
         sequentially in call-graph order; a not-yet-summarized member of
         the same cycle reads as [None] — the serial path's schedule. *)
      let level = Ipa.Callgraph.scc_levels cg in
      let lookup name =
        match idx name with Some j -> summaries.(j) | None -> None
      in
      let process_scc scc () =
        Obs.Span.with_ ~cat:"scc"
          ~name:("scc:" ^ String.concat "," scc)
          ~attrs:[ ("members", string_of_int (List.length scc)) ]
        @@ fun () ->
        List.iter
          (fun name ->
            match idx name with
            | None -> ()
            | Some i ->
              if not summary_hit.(i) then (
                match infos.(i) with
                | None -> ()
                | Some info ->
                  let pu = pus.(i) in
                  if poisoned.(i) then begin
                    (* collection already degraded: the only sound summary
                       is the worst-case one (whole-extent USE+DEF of every
                       global and formal array) *)
                    summaries.(i) <- Some (Ipa.Summary.opaque m pu);
                    propagated.(i) <- []
                  end
                  else
                    try
                      Fault.inject Fault.Pool ~key:("summarize:" ^ name);
                      let exported, extra =
                        Obs.Span.with_ ~cat:"pu" ~name:("summarize:" ^ name)
                          (fun () -> Ipa.Analyze.summarize_pu m ~lookup info)
                      in
                      summaries.(i) <- Some exported;
                      propagated.(i) <- extra;
                      computed.(i) <- true
                    with e when cfg.keep_going ->
                      poisoned.(i) <- true;
                      summaries.(i) <- Some (Ipa.Summary.opaque m pu);
                      propagated.(i) <- [];
                      pu_diags.(i) <-
                        isolation_diag ~stage:"summarize" ~pu:name
                          ~action:"opaque-summary" e
                        :: pu_diags.(i)))
          scc
      in
      let needs_work scc =
        List.exists
          (fun p ->
            match idx p with Some i -> not summary_hit.(i) | None -> false)
          scc
      in
      (* shard mode: the same level barrier, but each SCC ships to a
         worker process as (members in call-graph order, already-known
         callee summaries) and comes back as per-member outcomes applied
         to the same slots the in-process path writes *)
      let apply_outcomes outcomes =
        List.iter
          (fun (name, o) ->
            match idx name with
            | None -> ()
            | Some i -> (
              match (o : Engine_proto.outcome) with
              | Engine_proto.O_summary img ->
                let p = Engine_store.decode_summary ~m img in
                summaries.(i) <- Some p.Engine_store.sp_summary;
                propagated.(i) <- p.Engine_store.sp_propagated;
                computed.(i) <- true
              | Engine_proto.O_opaque ->
                summaries.(i) <- Some (Ipa.Summary.opaque m pus.(i));
                propagated.(i) <- []
              | Engine_proto.O_poisoned (stage, site, error) ->
                poisoned.(i) <- true;
                summaries.(i) <- Some (Ipa.Summary.opaque m pus.(i));
                propagated.(i) <- [];
                pu_diags.(i) <-
                  isolation_diag_str ~stage ~pu:name ~action:"opaque-summary"
                    ~site ~error
                  :: pu_diags.(i)
              | Engine_proto.O_failed (error, injected) -> (
                match injected with
                | Some (site, key) -> (
                  match Fault.site_of_name site with
                  | Some s -> raise (Fault.Injected (s, key))
                  | None -> failwith error)
                | None -> failwith error)))
          outcomes
      in
      let callee_img = Hashtbl.create 64 in
      let callee_image j =
        match Hashtbl.find_opt callee_img j with
        | Some img -> img
        | None ->
          let img =
            Engine_store.encode_summary
              {
                Engine_store.sp_summary =
                  (match summaries.(j) with
                  | Some s -> s
                  | None -> assert false);
                (* the lookup side only ever reads sp_summary *)
                sp_propagated = [];
              }
          in
          Hashtbl.replace callee_img j img;
          img
      in
      let shard_spec scc =
        let member_idx =
          List.filter_map
            (fun name ->
              match idx name with
              | Some i when not summary_hit.(i) -> Some (name, i)
              | _ -> None)
            scc
        in
        let members =
          List.filter_map
            (fun (name, i) ->
              match infos.(i) with
              | None -> None
              | Some info ->
                Some
                  {
                    Engine_proto.mb_name = name;
                    mb_poisoned = poisoned.(i);
                    mb_collect =
                      (if poisoned.(i) then ""
                       else
                         Engine_store.encode_collect
                           {
                             Engine_store.cp_accesses =
                               info.Ipa.Collect.p_accesses;
                             cp_sites = info.Ipa.Collect.p_sites;
                           });
                    mb_key =
                      (match key2.(i) with Some k -> k | None -> "");
                  })
            member_idx
        in
        let callees = ref [] in
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (name, _) ->
            List.iter
              (fun c ->
                if not (Hashtbl.mem seen c) then begin
                  Hashtbl.replace seen c ();
                  if not (List.mem_assoc c member_idx) then
                    match idx c with
                    | Some j when Option.is_some summaries.(j) ->
                      callees := (c, callee_image j) :: !callees
                    | _ -> ()
                end)
              (Ipa.Callgraph.callees cg name))
          member_idx;
        {
          Engine_shard.ts_task =
            {
              Engine_proto.t_id = 0;
              t_members = members;
              t_callees = List.rev !callees;
            };
          ts_local = process_scc scc;
          ts_on_outcomes = apply_outcomes;
        }
      in
      let max_level = Array.fold_left max 0 level in
      for lv = 0 to max_level do
        let work = ref [] in
        Array.iteri
          (fun si scc ->
            if level.(si) = lv && needs_work scc then work := scc :: !work)
          scc_arr;
        match shard with
        | None ->
          let tasks =
            Array.of_list (List.rev_map (fun scc -> process_scc scc) !work)
          in
          Engine_pool.run ~jobs tasks
        | Some sh ->
          Engine_shard.run_level sh
            (Array.of_list (List.rev_map shard_spec !work))
      done;
      (* persist what this run computed *)
      match cfg.store with
      | None -> ()
      | Some store ->
        Array.iteri
          (fun i c ->
            if c then
              match (key2.(i), summaries.(i)) with
              | Some key, Some s ->
                Engine_store.add_summary store ~key
                  {
                    Engine_store.sp_summary = s;
                    sp_propagated = propagated.(i);
                  }
              | _ -> ())
          computed);
  (* ---- assembly ----------------------------------------------------- *)
  let res =
    timed "assemble" (fun () ->
        let infos_l =
          Array.to_list
            (Array.mapi
               (fun i pu ->
                 match infos.(i) with
                 | Some info -> (pu.Ir.pu_name, info)
                 | None -> assert false)
               pus)
        in
        let cfgs_l =
          Array.to_list
            (Array.mapi
               (fun i pu ->
                 match cfgs.(i) with
                 | Some c -> (pu.Ir.pu_name, c)
                 | None -> assert false)
               pus)
        in
        Ipa.Analyze.assemble m cg ~infos:infos_l
          ~summaries:(fun name ->
            match idx name with Some i -> summaries.(i) | None -> None)
          ~propagated:(fun name ->
            match idx name with Some i -> propagated.(i) | None -> [])
          ~cfgs:cfgs_l)
  in
  let diags =
    let per_pu =
      Array.to_list (Array.map (fun ds -> List.rev ds) pu_diags)
      |> List.concat
    in
    let store_diags =
      match cfg.store with
      | Some store -> Engine_store.drain_diags store
      | None -> []
    in
    per_pu @ store_diags
  in
  let collect_hits = count_true collect_hit in
  let summary_hits = count_true summary_hit in
  Obs.Metrics.Counter.incr c_runs;
  Obs.Metrics.Counter.add c_collect_hits collect_hits;
  Obs.Metrics.Counter.add c_collect_misses (n - collect_hits);
  Obs.Metrics.Counter.add c_summary_hits summary_hits;
  Obs.Metrics.Counter.add c_summary_misses (n - summary_hits);
  let stats =
    {
      Stats.s_jobs = jobs;
      s_pus = n;
      s_collect_hits = collect_hits;
      s_collect_misses = n - collect_hits;
      s_summary_hits = summary_hits;
      s_summary_misses = n - summary_hits;
      s_phases = List.rev !phases;
      s_total_wall = float_of_int (Obs.Trace.now_ns () - t_start) /. 1e9;
      s_solver =
        Linear.Solver_stats.diff (Linear.Solver_stats.snapshot ()) solver0;
      s_shard = Option.map Engine_shard.stats shard;
    }
  in
  let e_pus =
    Array.to_list
      (Array.mapi
         (fun i pu ->
           {
             p_name = pu.Ir.pu_name;
             p_file = pu.Ir.pu_file;
             p_key1 = Digest.to_hex key1.(i);
             p_key2 =
               (match key2.(i) with Some k -> Digest.to_hex k | None -> "");
             p_collect_hit = collect_hit.(i);
             p_summary_hit = summary_hit.(i);
             p_callees = Ipa.Callgraph.callees cg pu.Ir.pu_name;
           })
         pus)
  in
  { e_result = res; e_stats = stats; e_diags = diags; e_pus }

(* Drop-in successors of the removed [Ipa.Analyze.analyze{,_sources}]
   reference entry points: one engine run, no store, serial by default. *)

let analyze ?(jobs = 1) m = (run (config ~jobs ()) m).e_result

let analyze_sources ?(jobs = 1) files =
  analyze ~jobs (Whirl.Lower.lower (Lang.Frontend.load ~files))
