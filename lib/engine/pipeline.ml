(* The compiler-side driver behind a single configuration record.

   This is the paper's usage steps 1-2 (compile with interprocedural array
   analysis enabled, obtain the .dgn/.cfg/.rgn files Dragon loads) as a
   library entry point: [bin/uhc] is now only command-line parsing over
   [make]/[exec].  Analysis itself goes through [Engine.run], so every
   driver feature (--fuse re-analysis, repeated invocations with
   --cache-dir) is parallel and incremental for free. *)

type config = {
  paths : string list;
  corpus : string option;
  out_dir : string option;
  project : string;
  dump_whirl : bool;
  dump_src : bool;
  dump_callgraph : bool;
  dump_summaries : bool;
  loop_summaries : bool;
  execute : bool;
  wopt : bool;
  fuse : bool;
  autopar : bool;
  ipl_dir : string option;
  emit_whirl : string option;
  jobs : int;
  workers : int;
  cache_dir : string option;
  stats : bool;
  stats_det : bool;
  trace : string option;
  metrics : string option;
  log_level : Obs.Log.level;
  keep_going : bool;
  fault_specs : string list;
  diagnostics : string option;
  solver_budget : int option;
  join_path : [ `Fast | `Reference ];
  solver_core : [ `Learned | `Packed | `Reference ];
  analyses : string list;
  report : string option;
  ledger : bool option;
}

type result = {
  r_code : int;
  r_outputs : string list;
  r_stats : Engine.Stats.t option;
  r_diags : Fault.Diag.t list;
  r_reports : Analyses.Report.t list;
}

let make ?(paths = []) ?corpus ?out_dir ?(project = "project")
    ?(dump_whirl = false) ?(dump_src = false) ?(dump_callgraph = false)
    ?(dump_summaries = false) ?(loop_summaries = false) ?(execute = false)
    ?(wopt = false) ?(fuse = false) ?(autopar = false) ?ipl_dir ?emit_whirl
    ?(jobs = 1) ?(workers = 0) ?cache_dir ?(stats = false)
    ?(stats_det = false) ?trace
    ?metrics ?(log_level = Obs.Log.Quiet) ?(keep_going = false)
    ?(fault_specs = []) ?diagnostics ?solver_budget ?(join_path = `Fast)
    ?(solver_core = `Learned) ?(analyses = []) ?report ?ledger () =
  {
    paths;
    corpus;
    out_dir;
    project;
    dump_whirl;
    dump_src;
    dump_callgraph;
    dump_summaries;
    loop_summaries;
    execute;
    wopt;
    fuse;
    autopar;
    ipl_dir;
    emit_whirl;
    jobs;
    workers;
    cache_dir;
    stats;
    stats_det;
    trace;
    metrics;
    log_level;
    keep_going;
    fault_specs;
    diagnostics;
    solver_budget;
    join_path;
    solver_core;
    analyses;
    report;
    ledger;
  }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let copy_sources ~dir files =
  List.iter
    (fun (name, contents) ->
      let dst = Filename.concat dir (Filename.basename name) in
      Rgnfile.Files.save ~path:dst contents)
    files

let load_inputs ~keep_going ~diags paths corpus =
  match corpus with
  | Some "lu" -> Corpus.Nas_lu.files ()
  | Some "matrix" -> [ Corpus.Small.matrix_c ]
  | Some "fig1" -> [ Corpus.Small.fig1_f ]
  | Some "stride" -> [ Corpus.Small.stride_f ]
  | Some "gen" -> Corpus.Gen.(generate (standard ()))
  | Some "gen-small" -> Corpus.Gen.(generate default)
  | Some other ->
    failwith
      (Printf.sprintf "unknown corpus %S (lu|matrix|fig1|stride|gen|gen-small)"
         other)
  | None ->
    List.filter_map
      (fun p ->
        match read_file p with
        | contents -> Some (p, contents)
        | exception Sys_error msg ->
          if not keep_going then failwith msg;
          Printf.eprintf "uhc: %s (skipped under --keep-going)\n" msg;
          diags :=
            Fault.Diag.make ~severity:Fault.Diag.Error ~site:"io.read"
              ~pu:(Filename.basename p) ~action:"skipped-file" msg
            :: !diags;
          None)
      paths

(* What the ledger record needs from inside the body: the digest of the
   inputs actually analyzed and the engine's per-PU cache entries (of the
   last analysis when --fuse re-analyzes). *)
type ledger_acc = {
  mutable la_corpus_digest : string;
  mutable la_pus : Engine.pu_entry list;
}

let exec_body ~diags ~outputs ~stats ~reports ~ledger_acc (cfg : config) =
  try
    (match
       List.filter (fun n -> Analyses.Registry.find n = None) cfg.analyses
     with
    | [] -> ()
    | unknown ->
      failwith
        (Printf.sprintf "unknown analyses: %s (available: %s)"
           (String.concat ", " unknown)
           (String.concat ", " (Analyses.Registry.names ()))));
    (* a single .B input resumes from a serialized WHIRL file, skipping the
       front ends entirely -- the paper's multi-phase pipeline *)
    let from_whirl =
      match (cfg.paths, cfg.corpus) with
      | [ p ], None when Filename.extension p = ".B" -> Some p
      | _ -> None
    in
    let files =
      match from_whirl with
      | Some _ -> []
      | None -> load_inputs ~keep_going:cfg.keep_going ~diags cfg.paths cfg.corpus
    in
    ledger_acc.la_corpus_digest <-
      (let b = Buffer.create 256 in
       (match from_whirl with
       | Some p -> (
         Buffer.add_string b p;
         try Buffer.add_string b (Digest.file p) with Sys_error _ -> ())
       | None ->
         List.iter
           (fun (name, contents) ->
             Buffer.add_string b name;
             Buffer.add_char b '\000';
             Buffer.add_string b (Digest.string contents))
           files);
       Digest.to_hex (Digest.string (Buffer.contents b)));
    if files = [] && from_whirl = None then begin
      prerr_endline "uhc: no input files";
      if cfg.keep_going && (cfg.paths <> [] || cfg.corpus <> None) then
        (* every input was skipped by a tolerated fault: degraded, not a
           usage error *)
        failwith "no analyzable input files survived"
      else exit 2
    end;
    let m0 =
      match from_whirl with
      | Some path -> (
        match Whirl.Whirl_io.load ~path with
        | Ok m -> m
        | Error e -> failwith (Printf.sprintf "%s: %s" path e))
      | None ->
        if not cfg.keep_going then Whirl.Lower.lower (Lang.Frontend.load ~files)
        else begin
          let prog, bad = Lang.Frontend.load_isolated ~files in
          List.iter
            (fun (file, d) ->
              Printf.eprintf "%s (skipped under --keep-going)\n"
                (Lang.Diag.to_string d);
              diags :=
                Fault.Diag.make ~severity:Fault.Diag.Error
                  ~site:"frontend.parse" ~pu:(Filename.basename file)
                  ~action:"skipped-file" (Lang.Diag.to_string d)
                :: !diags)
            bad;
          if bad <> [] && List.length bad = List.length files then
            failwith "all input files failed to parse";
          Whirl.Lower.lower prog
        end
    in
    let m0 =
      if cfg.wopt then begin
        let m1, cp =
          Obs.Span.with_ ~cat:"phase" ~name:"wopt:const_prop" (fun () ->
              Wopt.Const_prop.run m0)
        in
        let m2, dce =
          Obs.Span.with_ ~cat:"phase" ~name:"wopt:dce" (fun () ->
              Wopt.Dce.run m1)
        in
        Printf.printf
          "wopt: folded %d loads, %d ops, %d branches; removed %d statements, %d dead stores\n"
          cp.Wopt.Const_prop.folded_loads cp.Wopt.Const_prop.folded_ops
          cp.Wopt.Const_prop.folded_branches dce.Wopt.Dce.removed_stmts
          dce.Wopt.Dce.removed_stores;
        m2
      end
      else m0
    in
    (* one store for the whole invocation: the --fuse re-analysis hits it
       for every PU fusion left untouched *)
    let store =
      match cfg.cache_dir with
      | Some dir -> Some (Engine_store.create ~dir ())
      | None -> if cfg.fuse then Some (Engine_store.in_memory ()) else None
    in
    let engine_cfg =
      Engine.config ~jobs:cfg.jobs ~workers:cfg.workers ?store
        ~keep_going:cfg.keep_going ()
    in
    let analyze m =
      let r = Engine.run engine_cfg m in
      diags := List.rev_append r.Engine.e_diags !diags;
      stats := Some r.Engine.e_stats;
      ledger_acc.la_pus <- r.Engine.e_pus;
      if cfg.stats then Format.printf "%a" Engine.Stats.pp r.Engine.e_stats;
      if cfg.stats_det then
        Format.printf "%a" Engine.Stats.pp_deterministic r.Engine.e_stats;
      r.Engine.e_result
    in
    let result = analyze m0 in
    let result =
      if not cfg.fuse then result
      else begin
        (* LNO: dependence-legal fusion of adjacent compatible loops *)
        let m = result.Ipa.Analyze.r_module in
        let total = ref 0 in
        let pus =
          Obs.Span.with_ ~cat:"phase" ~name:"lno:fuse" @@ fun () ->
          List.map
            (fun pu ->
              let pu', n =
                Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu
              in
              total := !total + n;
              pu')
            m.Whirl.Ir.m_pus
        in
        Printf.printf "lno: fused %d loop pair(s)\n" !total;
        analyze { m with Whirl.Ir.m_pus = pus }
      end
    in
    let m = result.Ipa.Analyze.r_module in
    if cfg.dump_whirl then
      List.iter
        (fun pu ->
          Format.printf "=== %s ===@.%a@." pu.Whirl.Ir.pu_name Whirl.Wn.pp
            pu.Whirl.Ir.pu_body)
        m.Whirl.Ir.m_pus;
    if cfg.dump_src then print_string (Whirl.Whirl2src.module_to_string m);
    if cfg.dump_callgraph then
      print_string (Ipa.Callgraph.to_ascii_tree result.Ipa.Analyze.r_callgraph);
    if cfg.dump_summaries then
      List.iter
        (fun (name, summary) ->
          match Whirl.Ir.find_pu m name with
          | None -> ()
          | Some pu ->
            Format.printf "@[<v 2>summary of %s:@,%a@]@." name
              (Ipa.Summary.pp m pu) summary)
        result.Ipa.Analyze.r_summaries;
    if cfg.loop_summaries then
      List.iter
        (fun pu ->
          let lss = Ipa.Loopsum.of_pu m result.Ipa.Analyze.r_summaries pu in
          if lss <> [] then print_string (Ipa.Loopsum.render m pu lss))
        m.Whirl.Ir.m_pus;
    if cfg.autopar then begin
      let report = Ipa.Autopar.plan m result.Ipa.Analyze.r_summaries in
      print_string (Ipa.Autopar.render report);
      (* annotated sources *)
      List.iter
        (fun (name, contents) ->
          let annotated = Ipa.Autopar.annotate report ~file:name contents in
          if annotated <> contents then begin
            Printf.printf "--- %s (annotated) ---\n" name;
            print_string annotated
          end)
        files
    end;
    (* client analyses over the finished interprocedural result *)
    (match cfg.analyses with
    | [] -> ()
    | selection ->
      let ctx =
        {
          Analyses.Analysis.ctx_module = m;
          Analyses.Analysis.ctx_result = result;
        }
      in
      let outcomes =
        Obs.Span.with_ ~cat:"phase" ~name:"analyses" (fun () ->
            Analyses.Registry.run_selected ~selection ctx)
      in
      List.iter
        (fun (report, ds) ->
          reports := report :: !reports;
          diags := List.rev_append ds !diags;
          Format.printf "@[<v>%a@]@?" Analyses.Report.render report)
        outcomes);
    if cfg.execute then begin
      let outcome =
        Obs.Span.with_ ~cat:"phase" ~name:"execute" (fun () -> Interp.run m)
      in
      print_string outcome.Interp.out_text;
      Printf.printf "(%d statements executed)\n" outcome.Interp.out_steps;
      if cfg.dump_callgraph then begin
        (* the dynamic call graph with feedback information (Dragon Fig 5) *)
        let project =
          Dragon.Project.make ~name:cfg.project ~dgn:result.Ipa.Analyze.r_dgn
            ()
        in
        print_string
          (Dragon.Graphs.callgraph_ascii ~feedback:outcome.Interp.out_calls
             project)
      end
    end;
    (match cfg.out_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let written =
        Obs.Span.with_ ~cat:"io" ~name:"write_outputs" (fun () ->
            Ipa.Analyze.write_outputs result ~dir ~project:cfg.project)
      in
      copy_sources ~dir files;
      outputs := List.rev_append written !outputs;
      List.iter (Printf.printf "wrote %s\n") written);
    (match cfg.ipl_dir with
    | None -> ()
    | Some dir ->
      (* one .ipl per compilation unit, as the paper's IPL phase does *)
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let by_unit = Hashtbl.create 8 in
      List.iter
        (fun pu ->
          let unit_name =
            Filename.remove_extension (Filename.basename pu.Whirl.Ir.pu_file)
          in
          let cur = try Hashtbl.find by_unit unit_name with Not_found -> [] in
          match
            List.assoc_opt pu.Whirl.Ir.pu_name result.Ipa.Analyze.r_summaries
          with
          | Some s ->
            Hashtbl.replace by_unit unit_name
              (cur @ [ (pu.Whirl.Ir.pu_name, s) ])
          | None ->
            Printf.eprintf
              "uhc: warning: no summary for procedure %s; omitted from %s.ipl\n"
              pu.Whirl.Ir.pu_name unit_name)
        m.Whirl.Ir.m_pus;
      Hashtbl.iter
        (fun unit_name summaries ->
          let path =
            Ipa.Iplfile.save ~dir ~unit_name
              (Ipa.Iplfile.write_unit m summaries)
          in
          outputs := path :: !outputs;
          Printf.printf "wrote %s\n" path)
        by_unit);
    (match cfg.emit_whirl with
    | None -> ()
    | Some path ->
      Obs.Span.with_ ~cat:"io" ~name:"emit_whirl" (fun () ->
          Whirl.Whirl_io.save ~path m);
      outputs := path :: !outputs;
      Printf.printf "wrote %s\n" path);
    (match cfg.report with
    | None -> ()
    | Some path ->
      Obs.Span.with_ ~cat:"io" ~name:"emit:report" (fun () ->
          Analyses.Report.save ~path (List.rev !reports));
      outputs := path :: !outputs;
      Printf.printf "wrote %s\n" path);
    Printf.printf "analyzed %d procedures, %d call edges, %d array-region rows\n"
      (Ipa.Callgraph.node_count result.Ipa.Analyze.r_callgraph)
      (Ipa.Callgraph.edge_count result.Ipa.Analyze.r_callgraph)
      (List.length result.Ipa.Analyze.r_rows);
    0
  with
  | Lang.Diag.Frontend_error d ->
    Printf.eprintf "%s\n" (Lang.Diag.to_string d);
    1
  | Failure msg ->
    Printf.eprintf "uhc: %s\n" msg;
    1
  | Fault.Injected (site, key) ->
    (* an injected fault escaped every recovery layer (only possible
       without --keep-going, or at a site with no isolation boundary) *)
    Printf.eprintf "uhc: injected fault at %s (%s)\n" (Fault.site_name site)
      key;
    1
  | Sys_error msg ->
    Printf.eprintf "uhc: %s\n" msg;
    1

let solver_core_name = function
  | `Learned -> "learned"
  | `Packed -> "packed"
  | `Reference -> "reference"

let join_path_name = function `Fast -> "fast" | `Reference -> "reference"

(* Digest of the semantic configuration: two ledger records with equal
   config and corpus digests analyzed the same inputs the same way, so
   their deterministic counters are comparable.  [jobs], [workers] and
   the observation/output paths are deliberately excluded — outputs are
   byte-identical across those. *)
let config_digest (cfg : config) =
  let b = Buffer.create 256 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\000'
  in
  List.iter add cfg.paths;
  add (Option.value cfg.corpus ~default:"");
  add cfg.project;
  add (string_of_bool cfg.wopt);
  add (string_of_bool cfg.fuse);
  add (string_of_bool cfg.autopar);
  add (string_of_bool cfg.keep_going);
  List.iter add cfg.fault_specs;
  add (match cfg.solver_budget with Some n -> string_of_int n | None -> "");
  add (join_path_name cfg.join_path);
  add (solver_core_name cfg.solver_core);
  List.iter add cfg.analyses;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The schema_version 1 ledger record, as a single JSONL line.  Everything
   a later run (or dragon history/regress/explain) needs to compare itself
   against this one: identity (config/corpus digests), cost (wall, phases,
   metrics), cache effectiveness per phase, solver work, analysis verdict
   tallies, and the per-PU content keys that explain invalidations. *)
let ledger_record ~(cfg : config) ~run_id ~code ~wall_s ~corpus_digest ~pus
    ~stats ~reports ~diag_count ~trace_path ~metrics_path ~outputs =
  let b = Buffer.create 8192 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str s = bpf "\"%s\"" (Obs.Json.escape s) in
  let strings l =
    Buffer.add_char b '[';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        str s)
      l;
    Buffer.add_char b ']'
  in
  bpf "{\"schema_version\":%d," Obs.Ledger.schema_version;
  bpf "\"run_id\":\"%s\"," (Obs.Json.escape run_id);
  bpf "\"ts\":%.3f," (Unix.gettimeofday ());
  bpf "\"project\":\"%s\"," (Obs.Json.escape cfg.project);
  bpf "\"corpus\":\"%s\","
    (Obs.Json.escape (Option.value cfg.corpus ~default:"-"));
  bpf "\"jobs\":%d," cfg.jobs;
  bpf "\"solver_core\":\"%s\"," (solver_core_name cfg.solver_core);
  bpf "\"join_path\":\"%s\"," (join_path_name cfg.join_path);
  bpf "\"analyses\":";
  strings cfg.analyses;
  bpf ",\"config_digest\":\"%s\"," (config_digest cfg);
  bpf "\"corpus_digest\":\"%s\"," (Obs.Json.escape corpus_digest);
  bpf "\"exit_code\":%d," code;
  bpf "\"wall_s\":%.6f," wall_s;
  (match trace_path with
  | Some p -> bpf "\"trace_path\":\"%s\"," (Obs.Json.escape p)
  | None -> ());
  (match metrics_path with
  | Some p -> bpf "\"metrics_path\":\"%s\"," (Obs.Json.escape p)
  | None -> ());
  bpf "\"outputs\":";
  strings outputs;
  (* engine statistics: phases, per-phase cache effectiveness, solver *)
  (match stats with
  | None -> bpf ",\"analyzed\":false"
  | Some (s : Engine.Stats.t) ->
    bpf ",\"analyzed\":true,\"pus_analyzed\":%d" s.Engine.Stats.s_pus;
    bpf ",\"phases\":[";
    List.iteri
      (fun i (p : Engine.Stats.phase) ->
        if i > 0 then Buffer.add_char b ',';
        bpf "{\"name\":\"%s\",\"wall_s\":%.6f,\"alloc_bytes\":%.0f}"
          (Obs.Json.escape p.Engine.Stats.ph_name)
          p.Engine.Stats.ph_wall p.Engine.Stats.ph_alloc)
      s.Engine.Stats.s_phases;
    bpf "],\"cache\":{\"collect_hits\":%d,\"collect_misses\":%d,\"summary_hits\":%d,\"summary_misses\":%d}"
      s.Engine.Stats.s_collect_hits s.Engine.Stats.s_collect_misses
      s.Engine.Stats.s_summary_hits s.Engine.Stats.s_summary_misses;
    bpf ",\"solver\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        bpf "\"%s\":%d" k v)
      (Linear.Solver_stats.to_alist s.Engine.Stats.s_solver);
    bpf "}";
    (* sharded-execution topology: always present when analyzed so
       [dragon history --path topology.steals] works on every record;
       all-zero when workers = 0 *)
    let sh = s.Engine.Stats.s_shard in
    let shi f = match sh with None -> 0 | Some st -> f st in
    bpf
      ",\"topology\":{\"workers\":%d,\"spawned\":%d,\"jobs\":%d,\"tasks\":%d,\"steals\":%d,\"fallback_local\":%d,\"busy_ns\":["
      (shi (fun st -> st.Engine_shard.st_requested))
      (shi (fun st -> st.Engine_shard.st_spawned))
      cfg.jobs
      (shi (fun st -> st.Engine_shard.st_tasks))
      (shi (fun st -> st.Engine_shard.st_steals))
      (shi (fun st -> st.Engine_shard.st_fallback_local));
    (match sh with
    | None -> ()
    | Some st ->
      List.iteri
        (fun i (w : Engine_shard.worker_stat) ->
          if i > 0 then Buffer.add_char b ',';
          bpf "%d" w.Engine_shard.ws_busy_ns)
        st.Engine_shard.st_workers);
    bpf "]}");
  (* verdict tallies: each analysis' summary lines, e.g.
     verdicts.bounds.safe *)
  bpf ",\"verdicts\":{";
  List.iteri
    (fun i (r : Analyses.Report.t) ->
      if i > 0 then Buffer.add_char b ',';
      bpf "\"%s\":{" (Obs.Json.escape r.Analyses.Report.r_analysis);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          bpf "\"%s\":" (Obs.Json.escape k);
          match int_of_string_opt v with
          | Some n -> bpf "%d" n
          | None -> str v)
        r.Analyses.Report.r_summary;
      Buffer.add_char b '}')
    reports;
  bpf "},\"diagnostics\":%d" diag_count;
  (* the full metrics registry, same entry shape as uhc --metrics *)
  bpf ",\"metrics\":[";
  List.iteri
    (fun i (name, snap) ->
      if i > 0 then Buffer.add_char b ',';
      bpf "{\"name\":\"%s\"," (Obs.Json.escape name);
      match snap with
      | Obs.Metrics.S_counter v -> bpf "\"kind\":\"counter\",\"value\":%d}" v
      | Obs.Metrics.S_gauge v -> bpf "\"kind\":\"gauge\",\"value\":%d}" v
      | Obs.Metrics.S_hist h ->
        bpf
          "\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"buckets\":["
          h.Obs.Metrics.h_count h.Obs.Metrics.h_sum h.Obs.Metrics.h_p50
          h.Obs.Metrics.h_p95 h.Obs.Metrics.h_p99;
        List.iteri
          (fun j (lo, hi, c) ->
            if j > 0 then Buffer.add_char b ',';
            bpf "{\"lo\":%d,\"hi\":%d,\"count\":%d}" lo
              (if hi = max_int then -1 else hi)
              c)
          h.Obs.Metrics.h_buckets;
        bpf "]}")
    (Obs.Metrics.snapshot ());
  (* per-PU incrementality record: the content keys and hit flags this
     run saw, plus callee edges so a reader can walk blast radii *)
  bpf "],\"pus\":[";
  List.iteri
    (fun i (p : Engine.pu_entry) ->
      if i > 0 then Buffer.add_char b ',';
      bpf
        "{\"name\":\"%s\",\"file\":\"%s\",\"key1\":\"%s\",\"key2\":\"%s\",\"collect_hit\":%b,\"summary_hit\":%b,\"callees\":"
        (Obs.Json.escape p.Engine.p_name)
        (Obs.Json.escape p.Engine.p_file)
        p.Engine.p_key1 p.Engine.p_key2 p.Engine.p_collect_hit
        p.Engine.p_summary_hit;
      strings p.Engine.p_callees;
      Buffer.add_char b '}')
    pus;
  bpf "]}";
  Buffer.contents b

let run (cfg : config) =
  Obs.Log.set_level cfg.log_level;
  (* the ledger is on by default whenever there is a cache directory to
     put it in; --ledger without --cache-dir has nowhere to write *)
  let ledger_on =
    match (cfg.ledger, cfg.cache_dir) with
    | Some false, _ | None, None -> false
    | (Some true | None), Some _ -> true
    | Some true, None ->
      Printf.eprintf "uhc: --ledger requires --cache-dir; ledger disabled\n";
      false
  in
  let run_id = if ledger_on then Some (Obs.Ledger.new_run_id ()) else None in
  (* collision-safe observation paths: with the ledger active, --trace and
     --metrics files are suffixed with the run id (trace.json ->
     trace-<run_id>.json) so concurrent runs sharing a directory never
     clobber each other; without it the user's exact path is kept *)
  let obs_path path =
    match run_id with
    | Some id -> Obs.Ledger.suffixed_path ~run_id:id path
    | None -> path
  in
  let trace_path = Option.map obs_path cfg.trace in
  let metrics_path = Option.map obs_path cfg.metrics in
  if trace_path <> None then begin
    Obs.Trace.clear ();
    Obs.Span.set_enabled true
  end;
  if metrics_path <> None || ledger_on then Obs.Metrics.set_enabled true;
  (* fault injection and the solver budget are process-global knobs: set
     them up front, tear them down in [finally] so a library caller's next
     run starts clean *)
  let specs_ok =
    match Fault.parse_specs cfg.fault_specs with
    | Ok specs ->
      Fault.configure specs;
      true
    | Error msg ->
      Printf.eprintf "uhc: %s\n" msg;
      false
  in
  Linear.System.set_step_budget cfg.solver_budget;
  (* join-path selection: [`Reference] measures the pre-interning join
     (per-entry summary folds, no id short-circuit, no implies memo);
     outputs are byte-identical either way *)
  (match cfg.join_path with
  | `Fast ->
    Regions.Region.set_fast_join true;
    Linear.System.set_implies_memo_enabled true
  | `Reference ->
    Regions.Region.set_fast_join false;
    Linear.System.set_implies_memo_enabled false);
  (* solver-core selection ([--solver-core]): learned (default), packed
     (no learned contexts) or reference — outputs are byte-identical
     across all three, enforced by verify.sh and the solver tests *)
  Linear.System.set_solver_core cfg.solver_core;
  if cfg.solver_core <> `Learned || cfg.fault_specs <> []
     || cfg.solver_budget <> None then
    (* degraded answers are never memoized, but an earlier in-process run
       may have cached exact answers the faulted run should recompute (and
       vice versa for the run after) -- start from a cold solver cache *)
    Linear.System.clear_cache ();
  let c_degraded = Obs.Metrics.counter "solver.degraded" in
  let degraded0 = Obs.Metrics.Counter.get c_degraded in
  Obs.Log.info "pipeline.start"
    [
      ("inputs", string_of_int (List.length cfg.paths));
      ("corpus", Option.value cfg.corpus ~default:"-");
      ("jobs", string_of_int cfg.jobs);
      ("workers", string_of_int cfg.workers);
    ];
  let t0 = Obs.Trace.now_ns () in
  let diags = ref [] in
  let outputs = ref [] in
  let stats = ref None in
  let reports = ref [] in
  let ledger_acc = { la_corpus_digest = ""; la_pus = [] } in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Linear.System.set_step_budget None;
      Regions.Region.set_fast_join true;
      Linear.System.set_implies_memo_enabled true;
      Linear.System.set_solver_core `Learned;
      if cfg.solver_core <> `Learned || cfg.fault_specs <> []
         || cfg.solver_budget <> None then
        Linear.System.clear_cache ();
      (* flush observation files even when the pipeline failed: a trace of a
         crashed run is exactly what one wants to look at *)
      (match trace_path with
      | None -> ()
      | Some path ->
        Obs.Span.set_enabled false;
        Obs.Trace.save ~path;
        Obs.Log.info "trace.written" [ ("path", path) ]);
      match metrics_path with
      | None -> ()
      | Some path ->
        Obs.Metrics.save ~path;
        Obs.Log.info "metrics.written" [ ("path", path) ])
    (fun () ->
      let code =
        if not specs_ok then 2
        else
          Obs.Span.with_ ~cat:"phase" ~name:"pipeline" (fun () ->
              exec_body ~diags ~outputs ~stats ~reports ~ledger_acc cfg)
      in
      let degraded = Obs.Metrics.Counter.get c_degraded - degraded0 in
      if degraded > 0 then
        diags :=
          Fault.Diag.make ~site:"solver" ~pu:"*" ~action:"interval-box"
            (Printf.sprintf "%d quer%s answered from the interval box"
               degraded
               (if degraded = 1 then "y" else "ies"))
          :: !diags;
      let diags = List.rev !diags in
      (match cfg.diagnostics with
      | None -> ()
      | Some path ->
        Fault.Diag.save ~path diags;
        outputs := path :: !outputs;
        Printf.printf "wrote %s\n" path);
      if diags <> [] then
        Printf.eprintf "uhc: %d diagnostic(s) recorded%s\n"
          (List.length diags)
          (match cfg.diagnostics with
          | Some p -> Printf.sprintf " (see %s)" p
          | None -> "");
      (match (run_id, cfg.cache_dir) with
      | Some id, Some cache_dir -> (
        let wall_s = float_of_int (Obs.Trace.now_ns () - t0) /. 1e9 in
        let record =
          ledger_record ~cfg ~run_id:id ~code ~wall_s
            ~corpus_digest:ledger_acc.la_corpus_digest
            ~pus:ledger_acc.la_pus ~stats:!stats
            ~reports:(List.rev !reports) ~diag_count:(List.length diags)
            ~trace_path ~metrics_path ~outputs:(List.rev !outputs)
        in
        try
          let path = Obs.Ledger.append ~cache_dir ~run_id:id record in
          Obs.Log.info "ledger.written" [ ("path", path); ("run_id", id) ]
        with Sys_error e ->
          Printf.eprintf "uhc: ledger write failed: %s\n" e)
      | _ -> ());
      Obs.Log.info "pipeline.done"
        [
          ("exit", string_of_int code);
          ("diagnostics", string_of_int (List.length diags));
          ( "wall_ms",
            Printf.sprintf "%.1f"
              (float_of_int (Obs.Trace.now_ns () - t0) /. 1e6) );
        ];
      {
        r_code = code;
        r_outputs = List.rev !outputs;
        r_stats = !stats;
        r_diags = diags;
        r_reports = List.rev !reports;
      })

let exec (cfg : config) = (run cfg).r_code
let exec_full (cfg : config) =
  let r = run cfg in
  (r.r_code, r.r_diags)
