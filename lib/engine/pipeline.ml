(* The compiler-side driver behind a single configuration record.

   This is the paper's usage steps 1-2 (compile with interprocedural array
   analysis enabled, obtain the .dgn/.cfg/.rgn files Dragon loads) as a
   library entry point: [bin/uhc] is now only command-line parsing over
   [make]/[exec].  Analysis itself goes through [Engine.run], so every
   driver feature (--fuse re-analysis, repeated invocations with
   --cache-dir) is parallel and incremental for free. *)

type config = {
  paths : string list;
  corpus : string option;
  out_dir : string option;
  project : string;
  dump_whirl : bool;
  dump_src : bool;
  dump_callgraph : bool;
  dump_summaries : bool;
  loop_summaries : bool;
  execute : bool;
  wopt : bool;
  fuse : bool;
  autopar : bool;
  ipl_dir : string option;
  emit_whirl : string option;
  jobs : int;
  cache_dir : string option;
  stats : bool;
  stats_det : bool;
  trace : string option;
  metrics : string option;
  log_level : Obs.Log.level;
  keep_going : bool;
  fault_specs : string list;
  diagnostics : string option;
  solver_budget : int option;
  join_path : [ `Fast | `Reference ];
  solver_core : [ `Learned | `Packed | `Reference ];
  analyses : string list;
  report : string option;
}

type result = {
  r_code : int;
  r_outputs : string list;
  r_stats : Engine.Stats.t option;
  r_diags : Fault.Diag.t list;
  r_reports : Analyses.Report.t list;
}

let make ?(paths = []) ?corpus ?out_dir ?(project = "project")
    ?(dump_whirl = false) ?(dump_src = false) ?(dump_callgraph = false)
    ?(dump_summaries = false) ?(loop_summaries = false) ?(execute = false)
    ?(wopt = false) ?(fuse = false) ?(autopar = false) ?ipl_dir ?emit_whirl
    ?(jobs = 1) ?cache_dir ?(stats = false) ?(stats_det = false) ?trace
    ?metrics ?(log_level = Obs.Log.Quiet) ?(keep_going = false)
    ?(fault_specs = []) ?diagnostics ?solver_budget ?(join_path = `Fast)
    ?(solver_core = `Learned) ?(analyses = []) ?report () =
  {
    paths;
    corpus;
    out_dir;
    project;
    dump_whirl;
    dump_src;
    dump_callgraph;
    dump_summaries;
    loop_summaries;
    execute;
    wopt;
    fuse;
    autopar;
    ipl_dir;
    emit_whirl;
    jobs;
    cache_dir;
    stats;
    stats_det;
    trace;
    metrics;
    log_level;
    keep_going;
    fault_specs;
    diagnostics;
    solver_budget;
    join_path;
    solver_core;
    analyses;
    report;
  }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let copy_sources ~dir files =
  List.iter
    (fun (name, contents) ->
      let dst = Filename.concat dir (Filename.basename name) in
      Rgnfile.Files.save ~path:dst contents)
    files

let load_inputs ~keep_going ~diags paths corpus =
  match corpus with
  | Some "lu" -> Corpus.Nas_lu.files ()
  | Some "matrix" -> [ Corpus.Small.matrix_c ]
  | Some "fig1" -> [ Corpus.Small.fig1_f ]
  | Some "stride" -> [ Corpus.Small.stride_f ]
  | Some other ->
    failwith (Printf.sprintf "unknown corpus %S (lu|matrix|fig1|stride)" other)
  | None ->
    List.filter_map
      (fun p ->
        match read_file p with
        | contents -> Some (p, contents)
        | exception Sys_error msg ->
          if not keep_going then failwith msg;
          Printf.eprintf "uhc: %s (skipped under --keep-going)\n" msg;
          diags :=
            Fault.Diag.make ~severity:Fault.Diag.Error ~site:"io.read"
              ~pu:(Filename.basename p) ~action:"skipped-file" msg
            :: !diags;
          None)
      paths

let exec_body ~diags ~outputs ~stats ~reports (cfg : config) =
  try
    (match
       List.filter (fun n -> Analyses.Registry.find n = None) cfg.analyses
     with
    | [] -> ()
    | unknown ->
      failwith
        (Printf.sprintf "unknown analyses: %s (available: %s)"
           (String.concat ", " unknown)
           (String.concat ", " (Analyses.Registry.names ()))));
    (* a single .B input resumes from a serialized WHIRL file, skipping the
       front ends entirely -- the paper's multi-phase pipeline *)
    let from_whirl =
      match (cfg.paths, cfg.corpus) with
      | [ p ], None when Filename.extension p = ".B" -> Some p
      | _ -> None
    in
    let files =
      match from_whirl with
      | Some _ -> []
      | None -> load_inputs ~keep_going:cfg.keep_going ~diags cfg.paths cfg.corpus
    in
    if files = [] && from_whirl = None then begin
      prerr_endline "uhc: no input files";
      if cfg.keep_going && (cfg.paths <> [] || cfg.corpus <> None) then
        (* every input was skipped by a tolerated fault: degraded, not a
           usage error *)
        failwith "no analyzable input files survived"
      else exit 2
    end;
    let m0 =
      match from_whirl with
      | Some path -> (
        match Whirl.Whirl_io.load ~path with
        | Ok m -> m
        | Error e -> failwith (Printf.sprintf "%s: %s" path e))
      | None ->
        if not cfg.keep_going then Whirl.Lower.lower (Lang.Frontend.load ~files)
        else begin
          let prog, bad = Lang.Frontend.load_isolated ~files in
          List.iter
            (fun (file, d) ->
              Printf.eprintf "%s (skipped under --keep-going)\n"
                (Lang.Diag.to_string d);
              diags :=
                Fault.Diag.make ~severity:Fault.Diag.Error
                  ~site:"frontend.parse" ~pu:(Filename.basename file)
                  ~action:"skipped-file" (Lang.Diag.to_string d)
                :: !diags)
            bad;
          if bad <> [] && List.length bad = List.length files then
            failwith "all input files failed to parse";
          Whirl.Lower.lower prog
        end
    in
    let m0 =
      if cfg.wopt then begin
        let m1, cp =
          Obs.Span.with_ ~cat:"phase" ~name:"wopt:const_prop" (fun () ->
              Wopt.Const_prop.run m0)
        in
        let m2, dce =
          Obs.Span.with_ ~cat:"phase" ~name:"wopt:dce" (fun () ->
              Wopt.Dce.run m1)
        in
        Printf.printf
          "wopt: folded %d loads, %d ops, %d branches; removed %d statements, %d dead stores\n"
          cp.Wopt.Const_prop.folded_loads cp.Wopt.Const_prop.folded_ops
          cp.Wopt.Const_prop.folded_branches dce.Wopt.Dce.removed_stmts
          dce.Wopt.Dce.removed_stores;
        m2
      end
      else m0
    in
    (* one store for the whole invocation: the --fuse re-analysis hits it
       for every PU fusion left untouched *)
    let store =
      match cfg.cache_dir with
      | Some dir -> Some (Engine_store.create ~dir ())
      | None -> if cfg.fuse then Some (Engine_store.in_memory ()) else None
    in
    let engine_cfg =
      Engine.config ~jobs:cfg.jobs ?store ~keep_going:cfg.keep_going ()
    in
    let analyze m =
      let r = Engine.run engine_cfg m in
      diags := List.rev_append r.Engine.e_diags !diags;
      stats := Some r.Engine.e_stats;
      if cfg.stats then Format.printf "%a" Engine.Stats.pp r.Engine.e_stats;
      if cfg.stats_det then
        Format.printf "%a" Engine.Stats.pp_deterministic r.Engine.e_stats;
      r.Engine.e_result
    in
    let result = analyze m0 in
    let result =
      if not cfg.fuse then result
      else begin
        (* LNO: dependence-legal fusion of adjacent compatible loops *)
        let m = result.Ipa.Analyze.r_module in
        let total = ref 0 in
        let pus =
          Obs.Span.with_ ~cat:"phase" ~name:"lno:fuse" @@ fun () ->
          List.map
            (fun pu ->
              let pu', n =
                Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu
              in
              total := !total + n;
              pu')
            m.Whirl.Ir.m_pus
        in
        Printf.printf "lno: fused %d loop pair(s)\n" !total;
        analyze { m with Whirl.Ir.m_pus = pus }
      end
    in
    let m = result.Ipa.Analyze.r_module in
    if cfg.dump_whirl then
      List.iter
        (fun pu ->
          Format.printf "=== %s ===@.%a@." pu.Whirl.Ir.pu_name Whirl.Wn.pp
            pu.Whirl.Ir.pu_body)
        m.Whirl.Ir.m_pus;
    if cfg.dump_src then print_string (Whirl.Whirl2src.module_to_string m);
    if cfg.dump_callgraph then
      print_string (Ipa.Callgraph.to_ascii_tree result.Ipa.Analyze.r_callgraph);
    if cfg.dump_summaries then
      List.iter
        (fun (name, summary) ->
          match Whirl.Ir.find_pu m name with
          | None -> ()
          | Some pu ->
            Format.printf "@[<v 2>summary of %s:@,%a@]@." name
              (Ipa.Summary.pp m pu) summary)
        result.Ipa.Analyze.r_summaries;
    if cfg.loop_summaries then
      List.iter
        (fun pu ->
          let lss = Ipa.Loopsum.of_pu m result.Ipa.Analyze.r_summaries pu in
          if lss <> [] then print_string (Ipa.Loopsum.render m pu lss))
        m.Whirl.Ir.m_pus;
    if cfg.autopar then begin
      let report = Ipa.Autopar.plan m result.Ipa.Analyze.r_summaries in
      print_string (Ipa.Autopar.render report);
      (* annotated sources *)
      List.iter
        (fun (name, contents) ->
          let annotated = Ipa.Autopar.annotate report ~file:name contents in
          if annotated <> contents then begin
            Printf.printf "--- %s (annotated) ---\n" name;
            print_string annotated
          end)
        files
    end;
    (* client analyses over the finished interprocedural result *)
    (match cfg.analyses with
    | [] -> ()
    | selection ->
      let ctx =
        {
          Analyses.Analysis.ctx_module = m;
          Analyses.Analysis.ctx_result = result;
        }
      in
      let outcomes =
        Obs.Span.with_ ~cat:"phase" ~name:"analyses" (fun () ->
            Analyses.Registry.run_selected ~selection ctx)
      in
      List.iter
        (fun (report, ds) ->
          reports := report :: !reports;
          diags := List.rev_append ds !diags;
          Format.printf "@[<v>%a@]@?" Analyses.Report.render report)
        outcomes);
    if cfg.execute then begin
      let outcome =
        Obs.Span.with_ ~cat:"phase" ~name:"execute" (fun () -> Interp.run m)
      in
      print_string outcome.Interp.out_text;
      Printf.printf "(%d statements executed)\n" outcome.Interp.out_steps;
      if cfg.dump_callgraph then begin
        (* the dynamic call graph with feedback information (Dragon Fig 5) *)
        let project =
          Dragon.Project.make ~name:cfg.project ~dgn:result.Ipa.Analyze.r_dgn
            ()
        in
        print_string
          (Dragon.Graphs.callgraph_ascii ~feedback:outcome.Interp.out_calls
             project)
      end
    end;
    (match cfg.out_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let written =
        Obs.Span.with_ ~cat:"io" ~name:"write_outputs" (fun () ->
            Ipa.Analyze.write_outputs result ~dir ~project:cfg.project)
      in
      copy_sources ~dir files;
      outputs := List.rev_append written !outputs;
      List.iter (Printf.printf "wrote %s\n") written);
    (match cfg.ipl_dir with
    | None -> ()
    | Some dir ->
      (* one .ipl per compilation unit, as the paper's IPL phase does *)
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let by_unit = Hashtbl.create 8 in
      List.iter
        (fun pu ->
          let unit_name =
            Filename.remove_extension (Filename.basename pu.Whirl.Ir.pu_file)
          in
          let cur = try Hashtbl.find by_unit unit_name with Not_found -> [] in
          match
            List.assoc_opt pu.Whirl.Ir.pu_name result.Ipa.Analyze.r_summaries
          with
          | Some s ->
            Hashtbl.replace by_unit unit_name
              (cur @ [ (pu.Whirl.Ir.pu_name, s) ])
          | None ->
            Printf.eprintf
              "uhc: warning: no summary for procedure %s; omitted from %s.ipl\n"
              pu.Whirl.Ir.pu_name unit_name)
        m.Whirl.Ir.m_pus;
      Hashtbl.iter
        (fun unit_name summaries ->
          let path =
            Ipa.Iplfile.save ~dir ~unit_name
              (Ipa.Iplfile.write_unit m summaries)
          in
          outputs := path :: !outputs;
          Printf.printf "wrote %s\n" path)
        by_unit);
    (match cfg.emit_whirl with
    | None -> ()
    | Some path ->
      Obs.Span.with_ ~cat:"io" ~name:"emit_whirl" (fun () ->
          Whirl.Whirl_io.save ~path m);
      outputs := path :: !outputs;
      Printf.printf "wrote %s\n" path);
    (match cfg.report with
    | None -> ()
    | Some path ->
      Obs.Span.with_ ~cat:"io" ~name:"emit:report" (fun () ->
          Analyses.Report.save ~path (List.rev !reports));
      outputs := path :: !outputs;
      Printf.printf "wrote %s\n" path);
    Printf.printf "analyzed %d procedures, %d call edges, %d array-region rows\n"
      (Ipa.Callgraph.node_count result.Ipa.Analyze.r_callgraph)
      (Ipa.Callgraph.edge_count result.Ipa.Analyze.r_callgraph)
      (List.length result.Ipa.Analyze.r_rows);
    0
  with
  | Lang.Diag.Frontend_error d ->
    Printf.eprintf "%s\n" (Lang.Diag.to_string d);
    1
  | Failure msg ->
    Printf.eprintf "uhc: %s\n" msg;
    1
  | Fault.Injected (site, key) ->
    (* an injected fault escaped every recovery layer (only possible
       without --keep-going, or at a site with no isolation boundary) *)
    Printf.eprintf "uhc: injected fault at %s (%s)\n" (Fault.site_name site)
      key;
    1
  | Sys_error msg ->
    Printf.eprintf "uhc: %s\n" msg;
    1

let run (cfg : config) =
  Obs.Log.set_level cfg.log_level;
  if cfg.trace <> None then begin
    Obs.Trace.clear ();
    Obs.Span.set_enabled true
  end;
  if cfg.metrics <> None then Obs.Metrics.set_enabled true;
  (* fault injection and the solver budget are process-global knobs: set
     them up front, tear them down in [finally] so a library caller's next
     run starts clean *)
  let specs_ok =
    match Fault.parse_specs cfg.fault_specs with
    | Ok specs ->
      Fault.configure specs;
      true
    | Error msg ->
      Printf.eprintf "uhc: %s\n" msg;
      false
  in
  Linear.System.set_step_budget cfg.solver_budget;
  (* join-path selection: [`Reference] measures the pre-interning join
     (per-entry summary folds, no id short-circuit, no implies memo);
     outputs are byte-identical either way *)
  (match cfg.join_path with
  | `Fast ->
    Regions.Region.set_fast_join true;
    Linear.System.set_implies_memo_enabled true
  | `Reference ->
    Regions.Region.set_fast_join false;
    Linear.System.set_implies_memo_enabled false);
  (* solver-core selection ([--solver-core]): learned (default), packed
     (no learned contexts) or reference — outputs are byte-identical
     across all three, enforced by verify.sh and the solver tests *)
  Linear.System.set_solver_core cfg.solver_core;
  if cfg.solver_core <> `Learned || cfg.fault_specs <> []
     || cfg.solver_budget <> None then
    (* degraded answers are never memoized, but an earlier in-process run
       may have cached exact answers the faulted run should recompute (and
       vice versa for the run after) -- start from a cold solver cache *)
    Linear.System.clear_cache ();
  let c_degraded = Obs.Metrics.counter "solver.degraded" in
  let degraded0 = Obs.Metrics.Counter.get c_degraded in
  Obs.Log.info "pipeline.start"
    [
      ("inputs", string_of_int (List.length cfg.paths));
      ("corpus", Option.value cfg.corpus ~default:"-");
      ("jobs", string_of_int cfg.jobs);
    ];
  let t0 = Obs.Trace.now_ns () in
  let diags = ref [] in
  let outputs = ref [] in
  let stats = ref None in
  let reports = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Linear.System.set_step_budget None;
      Regions.Region.set_fast_join true;
      Linear.System.set_implies_memo_enabled true;
      Linear.System.set_solver_core `Learned;
      if cfg.solver_core <> `Learned || cfg.fault_specs <> []
         || cfg.solver_budget <> None then
        Linear.System.clear_cache ();
      (* flush observation files even when the pipeline failed: a trace of a
         crashed run is exactly what one wants to look at *)
      (match cfg.trace with
      | None -> ()
      | Some path ->
        Obs.Span.set_enabled false;
        Obs.Trace.save ~path;
        Obs.Log.info "trace.written" [ ("path", path) ]);
      match cfg.metrics with
      | None -> ()
      | Some path ->
        Obs.Metrics.save ~path;
        Obs.Log.info "metrics.written" [ ("path", path) ])
    (fun () ->
      let code =
        if not specs_ok then 2
        else
          Obs.Span.with_ ~cat:"phase" ~name:"pipeline" (fun () ->
              exec_body ~diags ~outputs ~stats ~reports cfg)
      in
      let degraded = Obs.Metrics.Counter.get c_degraded - degraded0 in
      if degraded > 0 then
        diags :=
          Fault.Diag.make ~site:"solver" ~pu:"*" ~action:"interval-box"
            (Printf.sprintf "%d quer%s answered from the interval box"
               degraded
               (if degraded = 1 then "y" else "ies"))
          :: !diags;
      let diags = List.rev !diags in
      (match cfg.diagnostics with
      | None -> ()
      | Some path ->
        Fault.Diag.save ~path diags;
        outputs := path :: !outputs;
        Printf.printf "wrote %s\n" path);
      if diags <> [] then
        Printf.eprintf "uhc: %d diagnostic(s) recorded%s\n"
          (List.length diags)
          (match cfg.diagnostics with
          | Some p -> Printf.sprintf " (see %s)" p
          | None -> "");
      Obs.Log.info "pipeline.done"
        [
          ("exit", string_of_int code);
          ("diagnostics", string_of_int (List.length diags));
          ( "wall_ms",
            Printf.sprintf "%.1f"
              (float_of_int (Obs.Trace.now_ns () - t0) /. 1e6) );
        ];
      {
        r_code = code;
        r_outputs = List.rev !outputs;
        r_stats = !stats;
        r_diags = diags;
        r_reports = List.rev !reports;
      })

let exec (cfg : config) = (run cfg).r_code
let exec_full (cfg : config) =
  let r = run cfg in
  (r.r_code, r.r_diags)
